package splice

import (
	"math/rand/v2"
	"testing"

	"realsum/internal/tcpip"
)

// fullMatrixConfigs returns the complete BuildOptions cross-product:
// every algorithm × placement × inversion × IP-header fill, all with
// the CRC check enabled.
func fullMatrixConfigs() []Config {
	var out []Config
	for _, alg := range []tcpip.ChecksumAlg{tcpip.AlgTCP, tcpip.AlgFletcher255, tcpip.AlgFletcher256} {
		for _, pl := range []tcpip.Placement{tcpip.PlacementHeader, tcpip.PlacementTrailer} {
			for _, noInv := range []bool{false, true} {
				for _, zeroIP := range []bool{false, true} {
					out = append(out, Config{
						Opts: tcpip.BuildOptions{
							Alg: alg, Placement: pl,
							NoInvert: noInv, ZeroIPHeader: zeroIP,
						},
						CheckCRC: true,
					})
				}
			}
		}
	}
	return out
}

// TestDifferentialFullMatrix drives ONE reused Enumerator through the
// full 24-configuration options matrix and all payload kinds, asserting
// bit-identical Counts against the retained naive reference enumerator
// (refEnumerate materializes every splice and classifies it with the
// reference verifiers).  Reusing a single enumerator across differing
// configs and geometries is the point: stale per-pair state from a
// previous (algorithm, placement, CRC) combination must never leak.
func TestDifferentialFullMatrix(t *testing.T) {
	rng := rand.New(rand.NewPCG(1995, 95))
	e := NewEnumerator()
	cfgs := fullMatrixConfigs()
	// Interleave a CheckCRC=false variant so the contribution tables go
	// stale between CRC-checked pairs.
	for ci, cfg := range cfgs {
		noCRC := cfg
		noCRC.CheckCRC = false
		for kind := 0; kind < 5; kind++ {
			// Alternate geometries, runts included, so buffers shrink and
			// grow across calls.
			sizes := [2]int{160, 160}
			switch kind {
			case 2:
				sizes = [2]int{7, 150}
			case 4:
				sizes = [2]int{97, 53}
			}
			flow := tcpip.NewLoopbackFlow(cfg.Opts)
			p1 := flow.NextPacket(nil, makePayload(rng, sizes[0], kind))
			p2 := flow.NextPacket(nil, makePayload(rng, sizes[1], kind))
			got := e.Pair(p1, p2, cfg)
			want := refEnumerate(p1, p2, cfg)
			if got != want {
				t.Errorf("cfg[%d] %+v kind %d:\n got %+v\nwant %+v", ci, cfg.Opts, kind, got, want)
			}
			gotNo := e.Pair(p1, p2, noCRC)
			wantNo := refEnumerate(p1, p2, noCRC)
			if gotNo != wantNo {
				t.Errorf("cfg[%d] %+v (no CRC) kind %d:\n got %+v\nwant %+v", ci, cfg.Opts, kind, gotNo, wantNo)
			}
		}
	}
}

// TestEnumeratorMatchesEnumeratePair pins the wrapper to the reusable
// path.
func TestEnumeratorMatchesEnumeratePair(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	cfg := Config{Opts: tcpip.BuildOptions{}, CheckCRC: true}
	flow := tcpip.NewLoopbackFlow(cfg.Opts)
	p1 := flow.NextPacket(nil, makePayload(rng, 256, 3))
	p2 := flow.NextPacket(nil, makePayload(rng, 256, 3))
	e := NewEnumerator()
	if got, want := e.Pair(p1, p2, cfg), EnumeratePair(p1, p2, cfg); got != want {
		t.Errorf("Enumerator.Pair diverges from EnumeratePair:\n got %+v\nwant %+v", got, want)
	}
}

// TestEnumeratorSteadyStateZeroAllocs is the allocation regression
// gate: once warm, enumerating a pair must not allocate, for the plain
// TCP path, the Fletcher/trailer path, and the CRC-checked path alike.
func TestEnumeratorSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 21))
	cases := []struct {
		name string
		cfg  Config
	}{
		{"tcp-crc", Config{Opts: tcpip.BuildOptions{}, CheckCRC: true}},
		{"tcp-nocrc", Config{Opts: tcpip.BuildOptions{}}},
		{"fletcher256-trailer-crc", Config{
			Opts:     tcpip.BuildOptions{Alg: tcpip.AlgFletcher256, Placement: tcpip.PlacementTrailer},
			CheckCRC: true,
		}},
		{"tcp-zeroip", Config{Opts: tcpip.BuildOptions{ZeroIPHeader: true}, CheckCRC: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			flow := tcpip.NewLoopbackFlow(tc.cfg.Opts)
			p1 := flow.NextPacket(nil, makePayload(rng, 256, 3))
			p2 := flow.NextPacket(nil, makePayload(rng, 256, 4))
			e := NewEnumerator()
			e.Pair(p1, p2, tc.cfg) // warm the buffers
			avg := testing.AllocsPerRun(50, func() {
				e.Pair(p1, p2, tc.cfg)
			})
			if avg != 0 {
				t.Errorf("steady-state Pair allocates %.1f objects/op, want 0", avg)
			}
		})
	}
}

// BenchmarkEnumeratorPair times the steady-state hot path the tables
// are built from: one warm enumerator classifying a 7-cell pair (923
// candidate splices) with the CRC check on.
func BenchmarkEnumeratorPair(b *testing.B) {
	flow := tcpip.NewLoopbackFlow(tcpip.BuildOptions{})
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i % 7)
	}
	p1 := flow.NextPacket(nil, payload)
	p2 := flow.NextPacket(nil, payload)
	cfg := Config{Opts: tcpip.BuildOptions{}, CheckCRC: true}
	e := NewEnumerator()
	e.Pair(p1, p2, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Pair(p1, p2, cfg)
	}
}
