package splice

import (
	"math/rand/v2"
	"testing"

	"realsum/internal/tcpip"
)

func TestVisitPairMatchesEnumerate(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	cfg := Config{Opts: tcpip.BuildOptions{}, CheckCRC: true}
	flow := tcpip.NewLoopbackFlow(cfg.Opts)
	p1 := flow.NextPacket(nil, makePayload(rng, 200, 4))
	p2 := flow.NextPacket(nil, makePayload(rng, 200, 4))

	want := EnumeratePair(p1, p2, cfg)

	var visited Counts
	visited.Pairs = 1
	got := VisitPair(p1, p2, cfg, false, func(s Splice) {
		visited.Total++
		switch s.Class {
		case ClassCaughtByHeader:
			visited.CaughtByHeader++
		case ClassIdentical:
			visited.Identical++
			if s.PassedChecksum {
				visited.IdenticalPassedChecksum++
			} else {
				visited.IdenticalFailedChecksum++
			}
		case ClassDetected, ClassMissed:
			visited.Remaining++
			if s.PassedChecksum {
				visited.MissedByChecksum++
			}
			if s.PassedCRC {
				visited.MissedByCRC++
			}
			if s.PassedChecksum && s.PassedCRC {
				visited.MissedByBoth++
			}
		}
		if s.CellsFromP1+s.CellsFromP2 == 0 {
			t.Error("empty provenance")
		}
		if s.CellsFromP1 != len(s.Selection)+1-s.CellsFromP2 && s.CellsFromP2 >= 1 {
			// Selection excludes the pinned trailer cell, which belongs
			// to packet 2.
			t.Errorf("provenance inconsistent: P1=%d P2=%d sel=%d",
				s.CellsFromP1, s.CellsFromP2, len(s.Selection))
		}
	})

	if got != want {
		t.Errorf("VisitPair counts:\n got %+v\nwant %+v", got, want)
	}
	// Cross-check the reconstruction from visitor events (length
	// buckets aren't reconstructed here).
	if visited.Total != want.Total || visited.CaughtByHeader != want.CaughtByHeader ||
		visited.Identical != want.Identical || visited.Remaining != want.Remaining ||
		visited.MissedByChecksum != want.MissedByChecksum ||
		visited.MissedByCRC != want.MissedByCRC {
		t.Errorf("visited reconstruction:\n got %+v\nwant %+v", visited, want)
	}
}

func TestVisitPairMaterializesSDU(t *testing.T) {
	cfg := Config{Opts: tcpip.BuildOptions{}}
	flow := tcpip.NewLoopbackFlow(cfg.Opts)
	p1 := flow.NextPacket(nil, make([]byte, 160))
	p2 := flow.NextPacket(nil, make([]byte, 160))
	n := 0
	VisitPair(p1, p2, cfg, true, func(s Splice) {
		n++
		if len(s.SDU) != len(p2) {
			t.Fatalf("SDU length %d, want %d", len(s.SDU), len(p2))
		}
	})
	if n == 0 {
		t.Fatal("no splices visited")
	}
	// Without materialize, SDU stays nil.
	VisitPair(p1, p2, cfg, false, func(s Splice) {
		if s.SDU != nil {
			t.Fatal("SDU should be nil without materialize")
		}
	})
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		ClassCaughtByHeader: "caught-by-header",
		ClassIdentical:      "identical",
		ClassDetected:       "detected",
		ClassMissed:         "missed",
		Class(99):           "unknown",
	} {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q", int(c), c.String())
		}
	}
}
