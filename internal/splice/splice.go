// Package splice implements the paper's central experiment: exhaustive
// enumeration of AAL5 packet splices over pairs of adjacent TCP/IP
// packets, and classification of every splice against the layered
// checks a receiver would apply — AAL5 framing, the syntactic TCP/IP
// header battery, the AAL5 CRC-32 and the transport checksum.
//
// A splice (§3.1) arises when cell losses leave an order-preserving
// subsequence of two adjacent packets' cells that still looks like one
// AAL5 packet.  Three structural constraints bound the space:
//
//   - the last cell of the splice must be an end-of-packet-marked cell,
//     and the only usable one is the second packet's trailer cell (the
//     first packet's marked cell may not appear in the interior);
//   - the splice's cell count must match the AAL5 length field carried
//     in that trailer cell;
//   - cells cannot be reordered.
//
// For two n-cell packets with the first packet's header cell kept, that
// yields C(2n−3, n−2) candidates — 462 for the 7-cell packets of a
// 256-byte transfer (§4.6).
//
// Enumeration is a depth-first walk that carries incremental checksum
// state per branch: the ones-complement sum composes across cells by
// plain addition (§4.1), the Fletcher pair composes with the positional
// shift B += A·off (§5.2), and the CRC-32 register is affine over GF(2)
// in the chosen cells, so each branch extends it with one XOR against a
// per-pair table of slot contributions (see crc.SlotContribs).  A full
// splice is therefore classified in O(cells) XOR/add steps instead of
// O(bytes), which is what makes whole-file-system enumeration cheap.
package splice

import (
	"realsum/internal/atm"
	"realsum/internal/crc"
	"realsum/internal/fletcher"
	"realsum/internal/inet"
	"realsum/internal/onescomp"
	"realsum/internal/tcpip"
)

// MaxCells bounds the per-packet cell count the length-bucketed
// counters track (a 65535-byte SDU is 1366 cells; buckets above
// MaxCells-1 are clamped).
const MaxCells = 32

// crcCoveredTail is how many bytes of the pinned trailer cell the AAL5
// CRC-32 covers: the whole payload minus the 4-byte CRC field itself.
const crcCoveredTail = atm.PayloadSize - 4

// Counts aggregates the classification of every inspected splice, in
// the row layout of Tables 1–3.
type Counts struct {
	Pairs uint64 // adjacent packet pairs enumerated

	Total          uint64 // candidate splices (identity excluded)
	CaughtByHeader uint64 // failed the §3.1 TCP/IP header battery
	Identical      uint64 // data identical to one original packet
	Remaining      uint64 // corrupted splices only the checksums can catch

	MissedByCRC      uint64 // Remaining splices the AAL5 CRC-32 passed
	MissedByChecksum uint64 // Remaining splices the transport checksum passed
	MissedByBoth     uint64 // Remaining splices both checks passed

	// IdenticalFailedChecksum counts identical-data splices the
	// transport checksum nonetheless rejected — zero for header
	// checksums, large for trailer checksums (Table 10's asymmetry).
	IdenticalFailedChecksum uint64

	// IdenticalPassedChecksum counts identical-data splices the
	// transport checksum accepted.
	IdenticalPassedChecksum uint64

	// RemainingByLen and MissedByLen bucket Remaining splices by
	// substitution length — the number of second-packet cells in the
	// splice — feeding Table 6's "Actual" rows.
	RemainingByLen [MaxCells]uint64
	MissedByLen    [MaxCells]uint64
}

// Add accumulates o into c.
func (c *Counts) Add(o Counts) {
	c.Pairs += o.Pairs
	c.Total += o.Total
	c.CaughtByHeader += o.CaughtByHeader
	c.Identical += o.Identical
	c.Remaining += o.Remaining
	c.MissedByCRC += o.MissedByCRC
	c.MissedByChecksum += o.MissedByChecksum
	c.MissedByBoth += o.MissedByBoth
	c.IdenticalFailedChecksum += o.IdenticalFailedChecksum
	c.IdenticalPassedChecksum += o.IdenticalPassedChecksum
	for i := range c.RemainingByLen {
		c.RemainingByLen[i] += o.RemainingByLen[i]
		c.MissedByLen[i] += o.MissedByLen[i]
	}
}

// MissRate returns missed/Remaining as a fraction (0 when no remaining
// splices) — the percentage columns of the tables.
func (c Counts) MissRate(missed uint64) float64 {
	if c.Remaining == 0 {
		return 0
	}
	return float64(missed) / float64(c.Remaining)
}

// Config selects which checks the enumeration applies.
type Config struct {
	// Opts describes how the packets were built; verification mirrors
	// construction (algorithm, placement, inversion, IP-header fill).
	Opts tcpip.BuildOptions
	// CheckCRC enables the AAL5 CRC-32 test (Tables 1–3, 7).  When
	// false MissedByCRC stays zero and enumeration is faster.
	CheckCRC bool
}

var crc32Table = crc.New(crc.CRC32)

// Enumerator owns the reusable per-pair state of the splice walk.  One
// enumerator processes any number of pairs sequentially; after the
// first few pairs warm its buffers, enumeration allocates nothing.  An
// Enumerator is not safe for concurrent use — give each worker its own.
type Enumerator struct {
	st             pairState
	cells1, cells2 []atm.Cell
}

// NewEnumerator returns an empty enumerator; buffers grow on first use.
func NewEnumerator() *Enumerator { return &Enumerator{} }

// Pair inspects every candidate splice of two adjacent packets (full
// IPv4 packets as built by tcpip.Flow) and returns the classification
// counts.  Packets too short to segment are ignored.
func (e *Enumerator) Pair(p1, p2 []byte, cfg Config) Counts {
	return e.pair(p1, p2, cfg, nil, false)
}

// VisitPair is Pair with a per-splice callback; see the package-level
// VisitPair for the callback contract.
func (e *Enumerator) VisitPair(p1, p2 []byte, cfg Config, materialize bool, fn func(Splice)) Counts {
	return e.pair(p1, p2, cfg, fn, materialize)
}

func (e *Enumerator) pair(p1, p2 []byte, cfg Config, visit func(Splice), visitSDU bool) Counts {
	var err1, err2 error
	e.cells1, err1 = atm.AppendSegment(e.cells1[:0], p1, 0, 32)
	e.cells2, err2 = atm.AppendSegment(e.cells2[:0], p2, 0, 32)
	if err1 != nil || err2 != nil {
		return Counts{}
	}
	st := &e.st
	st.reset(p1, p2, e.cells1, e.cells2, cfg)
	st.visit = visit
	st.visitSDU = visitSDU
	st.enumerate()
	st.visit = nil
	return st.counts
}

// EnumeratePair inspects every candidate splice of two adjacent packets
// with a throwaway enumerator.  Callers processing streams of pairs
// should hold an Enumerator instead to amortize the state.
func EnumeratePair(p1, p2 []byte, cfg Config) Counts {
	var e Enumerator
	return e.Pair(p1, p2, cfg)
}

// pairState holds the per-pair precomputation shared by all branches of
// one enumeration.  All slice fields are reusable buffers sized by
// reset; scalar fields are reassigned wholesale per pair.
type pairState struct {
	cfg Config

	l1, l2 int // SDU (IP packet) lengths
	n2     int // splice cell count = cells of packet 2

	pool     [][]byte // candidate cell payloads: P1[0..n1-2] then P2[0..n2-2]
	m1       int      // first m1 pool entries come from packet 1
	lastCell []byte   // pinned trailer cell payload (P2's last)

	// Header validity of each pool cell if it were the splice's first
	// cell, plus the same for the pinned last cell (the n2 == 1 case).
	headerOK     []bool
	lastHeaderOK bool

	// Incremental transport-checksum precomputation.
	pseudo   uint16 // pseudo-header sum for an L2-byte packet
	sum48    []uint16
	sumHead  []uint16 // cell bytes 20..48 (slot-0 contribution)
	sumLast  uint16   // last cell's SDU-prefix contribution
	lastLen  int      // SDU bytes carried by the last cell
	fmod     fletcher.Mod
	pair48   []fletcher.Pair
	pairHead []fletcher.Pair
	pairLast fletcher.Pair

	// Equality maps for identical-data detection, flattened with stride
	// n2: eq1[i*n2+s] ⇔ pool cell i placed at slot s matches packet 1's
	// SDU there (checksum field bytes excluded); likewise eq2 against
	// packet 2.
	eq1, eq2     []bool
	lastEq1      bool // pinned last cell vs packet 1's final slot
	sameLen      bool // l1 == l2, a precondition for identical-to-P1
	fieldOff     int  // checksum field offset within the SDU
	slowVerify   bool // incremental state invalid; materialize instead
	coverFull    bool // ZeroIPHeader: checksum covers the whole SDU
	p1sdu, p2sdu []byte

	// Affine CRC state: the register of a full splice decomposes as
	// base ⊕ Σ crcContrib[cell, slot], so each take-step is one XOR and
	// the leaf check is one comparison against crcWant (the trailer CRC
	// unfinalized and folded with the base term).  crcContrib is
	// flattened with stride crcSlots = n2−1.
	crcSlots   int
	crcContrib []uint64
	crcWant    uint64

	sel    []int  // shared DFS selection stack (pool indices)
	sdubuf []byte // scratch for materialized verification

	visit    func(Splice) // optional per-splice callback (VisitPair)
	visitSDU bool         // materialize SDU bytes for the callback

	counts Counts
}

// grow returns a length-n slice, reusing buf's capacity when possible.
// Contents are unspecified; callers overwrite every element.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// reset rebuilds the per-pair state in place for a new packet pair.
func (st *pairState) reset(p1, p2 []byte, cells1, cells2 []atm.Cell, cfg Config) {
	st.cfg = cfg
	st.l1, st.l2 = len(p1), len(p2)
	st.n2 = len(cells2)
	st.m1 = len(cells1) - 1
	st.sameLen = len(p1) == len(p2)
	st.p1sdu, st.p2sdu = p1, p2
	st.counts = Counts{Pairs: 1}
	st.sel = st.sel[:0]
	st.slowVerify = false
	st.coverFull = false
	st.pseudo = 0
	st.fmod = 0

	// Candidate pool: P1's cells except its marked trailer, then P2's
	// cells except the pinned trailer.
	st.pool = st.pool[:0]
	for i := 0; i < len(cells1)-1; i++ {
		st.pool = append(st.pool, cells1[i].Payload[:])
	}
	for i := 0; i < len(cells2)-1; i++ {
		st.pool = append(st.pool, cells2[i].Payload[:])
	}
	st.lastCell = cells2[len(cells2)-1].Payload[:]
	st.lastLen = st.l2 - (st.n2-1)*atm.PayloadSize
	if st.lastLen < 0 {
		// The last cell carries only padding and trailer, so a chosen
		// cell at the penultimate slot straddles the end of the SDU and
		// the incremental transport-checksum state overcounts.  Rare
		// (only runt packets hit it); verify those splices by
		// materializing the SDU instead.
		st.lastLen = 0
		st.slowVerify = true
	}
	if st.l2 < (st.n2-1)*atm.PayloadSize+2 && cfg.Opts.Placement == tcpip.PlacementTrailer {
		// Trailer checksum field straddles the final cell boundary.
		st.slowVerify = true
	}

	st.crcSlots = st.n2 - 1
	if cfg.CheckCRC {
		tr := atm.DecodeTrailer(st.lastCell)
		// Fold the init-propagation and pinned-cell terms of the affine
		// decomposition into the target, so a leaf's CRC test is a bare
		// comparison of the branch accumulator against crcWant.
		totalLen := st.crcSlots*atm.PayloadSize + crcCoveredTail
		base := crc32Table.RawShift(crc32Table.RawInit(), totalLen) ^
			crc32Table.RawUpdate(0, st.lastCell[:crcCoveredTail])
		st.crcWant = crc32Table.RawFromCRC(uint64(tr.CRC)) ^ base
	}

	st.fieldOff = cfg.Opts.ChecksumOffset(st.l2)
	if cfg.Opts.ZeroIPHeader {
		// §6.2 artifact mode: the checksum covers the whole SDU with no
		// separate pseudo-header.
		st.coverFull = true
	} else {
		st.pseudo = tcpip.PseudoHeaderSum([4]byte{127, 0, 0, 1}, [4]byte{127, 0, 0, 1}, st.l2-tcpip.IPv4HeaderLen)
	}

	switch cfg.Opts.Alg {
	case tcpip.AlgFletcher255:
		st.fmod = fletcher.Mod255
	case tcpip.AlgFletcher256:
		st.fmod = fletcher.Mod256
	}

	st.precomputeCells()
}

// precomputeCells fills the per-pool-cell tables.
func (st *pairState) precomputeCells() {
	n := len(st.pool)
	st.headerOK = grow(st.headerOK, n)
	st.sum48 = grow(st.sum48, n)
	st.sumHead = grow(st.sumHead, n)
	st.pair48 = grow(st.pair48, n)
	st.pairHead = grow(st.pairHead, n)
	st.eq1 = grow(st.eq1, n*st.n2)
	st.eq2 = grow(st.eq2, n*st.n2)
	if st.cfg.CheckCRC {
		st.crcContrib = grow(st.crcContrib, n*st.crcSlots)
	}

	for i, cell := range st.pool {
		st.headerOK[i] = st.headerValid(cell)
		st.sum48[i] = inet.Sum(cell)
		st.sumHead[i] = inet.Sum(cell[tcpip.IPv4HeaderLen:])
		if st.fmod != 0 {
			st.pair48[i] = st.fmod.Sum(cell)
			st.pairHead[i] = st.fmod.Sum(cell[tcpip.IPv4HeaderLen:])
		}
		st.eqSlots(st.eq1[i*st.n2:(i+1)*st.n2], st.p1sdu, cell)
		st.eqSlots(st.eq2[i*st.n2:(i+1)*st.n2], st.p2sdu, cell)
		if st.cfg.CheckCRC && st.crcSlots > 0 {
			crc32Table.SlotContribs(st.crcContrib[i*st.crcSlots:(i+1)*st.crcSlots],
				cell, atm.PayloadSize, crcCoveredTail)
		}
	}
	st.lastHeaderOK = st.headerValid(st.lastCell)
	st.sumLast = inet.Sum(st.lastCell[:st.lastLen])
	if st.fmod != 0 {
		st.pairLast = st.fmod.Sum(st.lastCell[:st.lastLen])
	}
	// Pinned last cell vs packet 1's final slot.
	st.lastEq1 = st.sameLen && st.eqAt(st.p1sdu, st.lastCell, st.n2-1)
}

// headerValid reports whether cell, as the splice's first cell, yields
// a syntactically valid 40-byte TCP/IP header consistent with the
// splice length l2 (§3.1's three requirements, transport-layer part).
func (st *pairState) headerValid(cell []byte) bool {
	if st.l2 < tcpip.HeadersLen || len(cell) < tcpip.HeadersLen {
		return false
	}
	var ip tcpip.IPv4Header
	if ip.DecodeFromBytes(cell) != nil {
		return false
	}
	if int(ip.TotalLength) != st.l2 || ip.Protocol != tcpip.ProtocolTCP {
		return false
	}
	if !st.cfg.Opts.ZeroIPHeader && !inet.Verify(cell[:tcpip.IPv4HeaderLen]) {
		return false
	}
	return tcpip.ValidateTCP(cell[tcpip.IPv4HeaderLen:tcpip.HeadersLen]) == nil
}

// eqSlots fills dst (length n2) with, for every slot s, whether cell
// matches orig's SDU bytes at slot s (checksum-field bytes excluded).
func (st *pairState) eqSlots(dst []bool, orig []byte, cell []byte) {
	for s := range dst {
		dst[s] = st.eqAt(orig, cell, s)
	}
}

// eqAt compares cell against orig's SDU at slot s, restricted to SDU
// bytes (offsets < l2 for P2-shaped splices; orig may be shorter) and
// excluding the checksum field at fieldOff.
func (st *pairState) eqAt(orig []byte, cell []byte, s int) bool {
	base := s * atm.PayloadSize
	for j := 0; j < atm.PayloadSize; j++ {
		off := base + j
		inOrig := off < len(orig)
		inSplice := off < st.l2
		if inOrig != inSplice {
			return false
		}
		if !inSplice {
			return true // past both SDUs: padding/trailer, irrelevant
		}
		if off == st.fieldOff || off == st.fieldOff+1 {
			continue
		}
		if orig[off] != cell[j] {
			return false
		}
	}
	return true
}

// branch is the DFS state carried down one enumeration path.
type branch struct {
	idx    int // next pool index to consider
	chosen int // cells selected so far
	fromP1 int // how many came from packet 1
	first  int // pool index of the slot-0 cell (-1 until chosen)
	tcpSum uint16
	fpair  fletcher.Pair
	crcAcc uint64 // XOR of the chosen cells' slot contributions
	eq1    bool
	eq2    bool
}

// enumerate walks every candidate splice.
func (st *pairState) enumerate() {
	need := st.n2 - 1
	b := branch{first: -1, eq1: st.sameLen, eq2: true}
	st.walk(b, need)
}

func (st *pairState) walk(b branch, need int) {
	if b.chosen == need {
		st.leaf(b)
		return
	}
	if len(st.pool)-b.idx < need-b.chosen {
		return // not enough cells left
	}
	// Skip pool[idx].
	skip := b
	skip.idx++
	st.walk(skip, need)

	// Take pool[idx] at slot b.chosen.
	take := b
	i := b.idx
	s := b.chosen
	take.idx++
	take.chosen++
	if i < st.m1 {
		take.fromP1++
	}
	if b.first == -1 {
		take.first = i
		if st.coverFull {
			take.tcpSum = onescomp.Add(b.tcpSum, st.sum48[i])
		} else {
			take.tcpSum = onescomp.Add(b.tcpSum, st.sumHead[i])
		}
		if st.fmod != 0 {
			take.fpair = st.fmod.Append(b.fpair, atm.PayloadSize-tcpip.IPv4HeaderLen, st.pairHead[i])
		}
	} else {
		take.tcpSum = onescomp.Add(b.tcpSum, st.sum48[i])
		if st.fmod != 0 {
			take.fpair = st.fmod.Append(b.fpair, atm.PayloadSize, st.pair48[i])
		}
	}
	if st.cfg.CheckCRC {
		take.crcAcc = b.crcAcc ^ st.crcContrib[i*st.crcSlots+s]
	}
	take.eq1 = b.eq1 && st.eq1[i*st.n2+s]
	take.eq2 = b.eq2 && st.eq2[i*st.n2+s]
	st.sel = append(st.sel, i)
	st.walk(take, need)
	st.sel = st.sel[:len(st.sel)-1]
}

// materializeSDU rebuilds the splice's SDU bytes from the current
// selection stack plus the pinned last cell.
func (st *pairState) materializeSDU() []byte {
	if cap(st.sdubuf) < st.n2*atm.PayloadSize {
		st.sdubuf = make([]byte, 0, st.n2*atm.PayloadSize)
	}
	buf := st.sdubuf[:0]
	for _, i := range st.sel {
		buf = append(buf, st.pool[i]...)
	}
	buf = append(buf, st.lastCell...)
	st.sdubuf = buf
	return buf[:st.l2]
}

// leaf finalizes one complete splice and classifies it.
func (st *pairState) leaf(b branch) {
	if b.fromP1 == 0 {
		return // the identity: packet 2 undamaged, packet 1 wholly lost
	}
	st.counts.Total++

	// Header battery.
	hdrOK := st.lastHeaderOK
	if b.first != -1 {
		hdrOK = st.headerOK[b.first]
	}
	if !hdrOK {
		st.counts.CaughtByHeader++
		st.emit(b, ClassCaughtByHeader, false, false)
		return
	}

	// Transport checksum over the completed splice.
	ckOK := st.checksumPasses(b)

	// Identical data?
	identical := b.eq2 || (b.eq1 && st.lastEq1)
	if identical {
		st.counts.Identical++
		if ckOK {
			st.counts.IdenticalPassedChecksum++
		} else {
			st.counts.IdenticalFailedChecksum++
		}
		st.emit(b, ClassIdentical, ckOK, false)
		return
	}

	st.counts.Remaining++
	subLen := st.n2 - b.fromP1 // cells taken from packet 2, incl. trailer
	if subLen >= MaxCells {
		subLen = MaxCells - 1
	}
	st.counts.RemainingByLen[subLen]++

	if ckOK {
		st.counts.MissedByChecksum++
		st.counts.MissedByLen[subLen]++
	}
	crcOK := false
	if st.cfg.CheckCRC && b.crcAcc == st.crcWant {
		crcOK = true
		st.counts.MissedByCRC++
		if ckOK {
			st.counts.MissedByBoth++
		}
	}
	class := ClassDetected
	if ckOK {
		class = ClassMissed
	}
	st.emit(b, class, ckOK, crcOK)
}

// emit invokes the visitor callback, if any.
func (st *pairState) emit(b branch, class Class, ckOK, crcOK bool) {
	if st.visit == nil {
		return
	}
	s := Splice{
		CellsFromP1:    b.fromP1,
		CellsFromP2:    st.n2 - b.fromP1,
		Selection:      st.sel,
		Class:          class,
		PassedChecksum: ckOK,
		PassedCRC:      crcOK,
	}
	if st.visitSDU {
		s.SDU = st.materializeSDU()
	}
	st.visit(s)
}

// checksumPasses evaluates the transport checksum of the completed
// splice from the branch's incremental state plus the pinned last cell.
// Runt-packet geometries that invalidate the incremental state fall
// back to materializing the SDU and running the reference verifier.
func (st *pairState) checksumPasses(b branch) bool {
	if st.slowVerify {
		return tcpip.VerifyPacket(st.materializeSDU(), st.cfg.Opts)
	}
	if st.fmod != 0 {
		acc := st.fmod.Append(b.fpair, st.lastLen, st.pairLast)
		return acc.A%uint16(st.fmod) == 0 && acc.B%uint16(st.fmod) == 0
	}
	// Internet checksum: total sum over pseudo-header + segment (bytes
	// 20..l2 of the splice), which includes the stored field.
	total := onescomp.Add(b.tcpSum, st.sumLast)
	total = onescomp.Add(total, st.pseudo)

	evenField := (st.fieldOff-tcpip.IPv4HeaderLen)%2 == 0
	if !st.cfg.Opts.NoInvert && evenField {
		// Standard inverted checksum at an aligned offset: the packet
		// verifies exactly when the total is a representation of
		// ones-complement zero.
		return onescomp.IsZero(total)
	}

	// Non-inverted or odd-offset fields need the stored value.
	var stored uint16
	if st.cfg.Opts.Placement == tcpip.PlacementHeader {
		cell := st.lastCell
		if b.first != -1 {
			cell = st.pool[b.first]
		}
		stored = uint16(cell[36])<<8 | uint16(cell[37])
	} else {
		off := st.fieldOff - (st.n2-1)*atm.PayloadSize
		stored = uint16(st.lastCell[off])<<8 | uint16(st.lastCell[off+1])
	}
	contrib := stored
	if !evenField {
		contrib = onescomp.Swap(stored)
	}
	sumZeroed := onescomp.Sub(total, contrib)
	want := onescomp.Neg(sumZeroed)
	if st.cfg.Opts.NoInvert {
		want = sumZeroed
	}
	return onescomp.Congruent(stored, want)
}
