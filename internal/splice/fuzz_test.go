package splice

import (
	"testing"

	"realsum/internal/tcpip"
)

// FuzzEnumerateMatchesBruteForce fuzzes the incremental splice engine
// against the materializing reference implementation across payload
// contents, sizes (runts included) and every checksum configuration.
// This is the deepest invariant in the repository: the O(cells)
// incremental classification must agree exactly with the O(bytes)
// reference on every one of the C(2n−2, n−1) candidates.
func FuzzEnumerateMatchesBruteForce(f *testing.F) {
	f.Add([]byte("some payload for packet one"), []byte("and some for packet two!"), uint8(0))
	f.Add(make([]byte, 96), make([]byte, 96), uint8(1))
	f.Add([]byte{0, 0, 0, 1}, []byte{0xFF, 0xFF}, uint8(2))
	f.Add(make([]byte, 150), make([]byte, 7), uint8(5))
	f.Fuzz(func(t *testing.T, pay1, pay2 []byte, cfgSel uint8) {
		// Bound sizes so the brute force stays fast: ≤ 5 cells each.
		const maxPay = 170
		if len(pay1) > maxPay {
			pay1 = pay1[:maxPay]
		}
		if len(pay2) > maxPay {
			pay2 = pay2[:maxPay]
		}
		if len(pay1) == 0 || len(pay2) == 0 {
			return
		}
		cfgs := allConfigs()
		cfg := cfgs[int(cfgSel)%len(cfgs)]
		flow := tcpip.NewLoopbackFlow(cfg.Opts)
		p1 := flow.NextPacket(nil, pay1)
		p2 := flow.NextPacket(nil, pay2)
		got := EnumeratePair(p1, p2, cfg)
		want := refEnumerate(p1, p2, cfg)
		if got != want {
			t.Fatalf("cfg %+v len1=%d len2=%d:\n got %+v\nwant %+v",
				cfg.Opts, len(pay1), len(pay2), got, want)
		}
	})
}
