package splice

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"realsum/internal/atm"
	"realsum/internal/crc"
	"realsum/internal/inet"
	"realsum/internal/tcpip"
)

// ---------------------------------------------------------------------
// Brute-force reference implementation: materialize every candidate
// splice and classify it with the reference (non-incremental) APIs.
// The fast enumerator must agree exactly.

var refCRC = crc.New(crc.CRC32)

func refEnumerate(p1, p2 []byte, cfg Config) Counts {
	cells1, err1 := atm.Segment(p1, 0, 32)
	cells2, err2 := atm.Segment(p2, 0, 32)
	if err1 != nil || err2 != nil {
		return Counts{}
	}
	var pool [][]byte
	for i := 0; i < len(cells1)-1; i++ {
		pool = append(pool, cells1[i].Payload[:])
	}
	m1 := len(cells1) - 1
	for i := 0; i < len(cells2)-1; i++ {
		pool = append(pool, cells2[i].Payload[:])
	}
	last := cells2[len(cells2)-1].Payload[:]
	n2 := len(cells2)
	need := n2 - 1

	var tr atm.Trailer
	tr, _ = atm.CheckFraming(cells2)

	counts := Counts{Pairs: 1}
	fieldOff := cfg.Opts.ChecksumOffset(len(p2))

	// Enumerate all order-preserving selections of `need` from pool.
	var sel []int
	var rec func(start, remaining int)
	rec = func(start, remaining int) {
		if remaining == 0 {
			classify(&counts, sel, pool, m1, last, p1, p2, n2, tr, fieldOff, cfg)
			return
		}
		for i := start; i <= len(pool)-remaining; i++ {
			sel = append(sel, i)
			rec(i+1, remaining-1)
			sel = sel[:len(sel)-1]
		}
	}
	rec(0, need)
	return counts
}

func classify(counts *Counts, sel []int, pool [][]byte, m1 int, last, p1, p2 []byte,
	n2 int, tr atm.Trailer, fieldOff int, cfg Config) {

	fromP1 := 0
	for _, i := range sel {
		if i < m1 {
			fromP1++
		}
	}
	if fromP1 == 0 {
		return // identity
	}
	counts.Total++

	// Materialize PDU and SDU.
	var pdu []byte
	for _, i := range sel {
		pdu = append(pdu, pool[i]...)
	}
	pdu = append(pdu, last...)
	sdu := pdu[:len(p2)]

	// Header battery via the reference validators.
	if tcpip.ValidateHeaders(sdu, cfg.Opts) != nil {
		counts.CaughtByHeader++
		return
	}

	ckOK := tcpip.VerifyPacket(sdu, cfg.Opts)

	// Identical to an original packet, checksum field excluded.
	eqExceptField := func(orig []byte) bool {
		if len(orig) != len(sdu) {
			return false
		}
		for i := range orig {
			if i == fieldOff || i == fieldOff+1 {
				continue
			}
			if orig[i] != sdu[i] {
				return false
			}
		}
		return true
	}
	if eqExceptField(p2) || eqExceptField(p1) {
		counts.Identical++
		if ckOK {
			counts.IdenticalPassedChecksum++
		} else {
			counts.IdenticalFailedChecksum++
		}
		return
	}

	counts.Remaining++
	subLen := n2 - fromP1
	if subLen >= MaxCells {
		subLen = MaxCells - 1
	}
	counts.RemainingByLen[subLen]++
	if ckOK {
		counts.MissedByChecksum++
		counts.MissedByLen[subLen]++
	}
	if cfg.CheckCRC {
		if uint32(refCRC.Checksum(pdu[:len(pdu)-4])) == tr.CRC {
			counts.MissedByCRC++
			if ckOK {
				counts.MissedByBoth++
			}
		}
	}
}

// ---------------------------------------------------------------------

// payloadKinds produce adversarial payload structure: zero-heavy and
// repetitive data maximize identical/missed cases so the comparison
// exercises every classification path.
func makePayload(rng *rand.Rand, n int, kind int) []byte {
	b := make([]byte, n)
	switch kind {
	case 0: // random
		for i := range b {
			b[i] = byte(rng.Uint32())
		}
	case 1: // all zero
	case 2: // 0x00/0xFF runs
		for i := range b {
			if (i/40)%2 == 0 {
				b[i] = 0xFF
			}
		}
	case 3: // repeated 48-byte motif: many identical cells
		for i := range b {
			b[i] = byte((i % 48) * 3)
		}
	case 4: // sparse counters, gmon-like
		for i := 0; i+2 <= n; i += 32 {
			b[i+1] = 1
		}
	}
	return b
}

func allConfigs() []Config {
	var out []Config
	for _, alg := range []tcpip.ChecksumAlg{tcpip.AlgTCP, tcpip.AlgFletcher255, tcpip.AlgFletcher256} {
		for _, pl := range []tcpip.Placement{tcpip.PlacementHeader, tcpip.PlacementTrailer} {
			out = append(out, Config{Opts: tcpip.BuildOptions{Alg: alg, Placement: pl}, CheckCRC: true})
		}
	}
	out = append(out,
		Config{Opts: tcpip.BuildOptions{Alg: tcpip.AlgTCP, NoInvert: true}, CheckCRC: true},
		Config{Opts: tcpip.BuildOptions{Alg: tcpip.AlgTCP, ZeroIPHeader: true}, CheckCRC: true},
	)
	return out
}

func TestEnumerateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 42))
	for _, cfg := range allConfigs() {
		for kind := 0; kind < 5; kind++ {
			flow := tcpip.NewLoopbackFlow(cfg.Opts)
			// Two adjacent segments of one transfer, modest size so the
			// brute force stays fast: 160-byte payloads → 5 cells.
			pay1 := makePayload(rng, 160, kind)
			pay2 := makePayload(rng, 160, kind)
			p1 := flow.NextPacket(nil, pay1)
			p2 := flow.NextPacket(nil, pay2)
			got := EnumeratePair(p1, p2, cfg)
			want := refEnumerate(p1, p2, cfg)
			if got != want {
				t.Errorf("cfg %+v kind %d:\n got %+v\nwant %+v", cfg.Opts, kind, got, want)
			}
		}
	}
}

func TestEnumerateMatchesBruteForceRunts(t *testing.T) {
	// Runt geometries: tiny payloads, odd lengths, trailer-straddling
	// sizes (payload ≡ 4..11 mod 48 exercise lastLen ≤ 1).
	rng := rand.New(rand.NewPCG(7, 7))
	sizes := []int{1, 2, 5, 7, 8, 9, 10, 11, 48, 52, 53, 54, 55, 96, 100, 101, 149, 150, 151, 152, 153, 199}
	for _, cfg := range []Config{
		{Opts: tcpip.BuildOptions{Alg: tcpip.AlgTCP}, CheckCRC: true},
		{Opts: tcpip.BuildOptions{Alg: tcpip.AlgTCP, Placement: tcpip.PlacementTrailer}, CheckCRC: true},
		{Opts: tcpip.BuildOptions{Alg: tcpip.AlgFletcher256, Placement: tcpip.PlacementTrailer}, CheckCRC: true},
	} {
		for _, n1 := range sizes {
			n2 := sizes[rng.IntN(len(sizes))]
			flow := tcpip.NewLoopbackFlow(cfg.Opts)
			p1 := flow.NextPacket(nil, makePayload(rng, n1, rng.IntN(5)))
			p2 := flow.NextPacket(nil, makePayload(rng, n2, rng.IntN(5)))
			got := EnumeratePair(p1, p2, cfg)
			want := refEnumerate(p1, p2, cfg)
			if got != want {
				t.Errorf("cfg %+v n1=%d n2=%d:\n got %+v\nwant %+v", cfg.Opts, n1, n2, got, want)
			}
		}
	}
}

func TestSpliceSpaceSize(t *testing.T) {
	// §4.6: for 7-cell packets the candidate space with both endpoint
	// cells pinned is C(11,5) = 462.  Our Total counts all candidates
	// that end in packet 2's trailer cell (the first cell need not be
	// pinned) minus the identity: C(12,6) − 1... with 256-byte payloads
	// both packets have 7 cells, pool = 6+6 = 12, choose 6 = 924, minus
	// the identity = 923.
	cfg := Config{Opts: tcpip.BuildOptions{}}
	flow := tcpip.NewLoopbackFlow(cfg.Opts)
	p1 := flow.NextPacket(nil, make([]byte, 256))
	p2 := flow.NextPacket(nil, make([]byte, 256))
	c := EnumeratePair(p1, p2, cfg)
	if c.Total != 923 {
		t.Errorf("Total = %d, want 923", c.Total)
	}
	// Splices keeping packet 1's header cell and passing the header
	// battery: C(11,5) = 462 of the 924 candidates have the header cell
	// first... all-zero payloads make header checks the only filter:
	// every candidate whose first cell is a data cell fails.  462
	// includes the identity-like selection (all-P2 middles after P1's
	// header? no — that has 6 P2 middles and the header: 7 choose...)
	// so just assert the passing count equals 462.
	passed := c.Total - c.CaughtByHeader
	if passed != 462 {
		t.Errorf("splices passing header checks = %d, want C(11,5) = 462", passed)
	}
}

func TestAllZeroPayloadSplices(t *testing.T) {
	// All-zero 256-byte payloads: every data cell is identical, so a
	// splice differs from an original packet only when it moves packet
	// 2's header cell into a data slot (the second-header case §5.3
	// analyzes).  With the IP header fully filled, that header cell is
	// distinguishable from a zero cell — §6.2's correction — so the
	// checksum catches every one of those Remaining splices.
	cfg := Config{Opts: tcpip.BuildOptions{}, CheckCRC: true}
	flow := tcpip.NewLoopbackFlow(cfg.Opts)
	p1 := flow.NextPacket(nil, make([]byte, 256))
	p2 := flow.NextPacket(nil, make([]byte, 256))
	c := EnumeratePair(p1, p2, cfg)
	if c.Total != c.CaughtByHeader+c.Identical+c.Remaining {
		t.Errorf("classification does not partition: %+v", c)
	}
	if c.Identical == 0 {
		t.Error("all-zero payloads must yield identical-data splices")
	}
	if c.Remaining == 0 {
		t.Error("second-header splices should be Remaining")
	}
	if c.MissedByChecksum != 0 {
		t.Errorf("filled IP headers should expose the second-header cell; missed %d", c.MissedByChecksum)
	}
	// The §6.2 ablation: with the IP header zeroed, the second header
	// cell hides among the zero cells far more easily.
	zcfg := Config{Opts: tcpip.BuildOptions{ZeroIPHeader: true}}
	zflow := tcpip.NewLoopbackFlow(zcfg.Opts)
	zp1 := zflow.NextPacket(nil, make([]byte, 256))
	zp2 := zflow.NextPacket(nil, make([]byte, 256))
	zc := EnumeratePair(zp1, zp2, zcfg)
	if zc.MissedByChecksum == 0 && zc.Identical == 0 {
		t.Error("zeroed IP headers should produce misses or identicals on zero data")
	}
}

func TestRandomPayloadsRarelyMissed(t *testing.T) {
	// Uniform payloads: the checksum should catch essentially all
	// corrupted splices (expected miss rate 2^-16 per splice).
	rng := rand.New(rand.NewPCG(1, 2))
	cfg := Config{Opts: tcpip.BuildOptions{}, CheckCRC: false}
	var c Counts
	flow := tcpip.NewLoopbackFlow(cfg.Opts)
	prev := flow.NextPacket(nil, makePayload(rng, 256, 0))
	for i := 0; i < 60; i++ {
		next := flow.NextPacket(nil, makePayload(rng, 256, 0))
		c.Add(EnumeratePair(prev, next, cfg))
		prev = next
	}
	if c.Remaining < 20000 {
		t.Fatalf("expected tens of thousands of remaining splices, got %d", c.Remaining)
	}
	// ~27k remaining; expected misses ≈ 27k/65536 < 1.  Allow a little.
	if c.MissedByChecksum > 5 {
		t.Errorf("uniform data missed %d/%d — far above 2^-16", c.MissedByChecksum, c.Remaining)
	}
}

func TestZeroHeavyPayloadsMissedOften(t *testing.T) {
	// The paper's headline: structured, zero-heavy data yields checksum
	// misses orders of magnitude above 2^-16.  gmon-like payloads give
	// many congruent-but-different cells.
	rng := rand.New(rand.NewPCG(3, 4))
	cfg := Config{Opts: tcpip.BuildOptions{}, CheckCRC: false}
	var c Counts
	flow := tcpip.NewLoopbackFlow(cfg.Opts)
	prev := flow.NextPacket(nil, makePayload(rng, 256, 4))
	for i := 0; i < 60; i++ {
		next := flow.NextPacket(nil, makePayload(rng, 256, 4))
		c.Add(EnumeratePair(prev, next, cfg))
		prev = next
	}
	if c.Remaining == 0 {
		t.Fatal("no remaining splices")
	}
	rate := c.MissRate(c.MissedByChecksum)
	if rate < 100.0/65536 {
		t.Errorf("gmon-like data miss rate %.6f not >> 2^-16", rate)
	}
}

func TestTrailerBeatsHeaderOnStructuredData(t *testing.T) {
	// Table 9's shape: trailer placement catches splices the header
	// checksum misses, on locally repetitive data.
	rng := rand.New(rand.NewPCG(5, 6))
	run := func(pl tcpip.Placement) Counts {
		cfg := Config{Opts: tcpip.BuildOptions{Placement: pl}}
		var c Counts
		flow := tcpip.NewLoopbackFlow(cfg.Opts)
		prev := flow.NextPacket(nil, makePayload(rng, 256, 4))
		r2 := rand.New(rand.NewPCG(5, 6)) // same payload stream per mode
		_ = r2
		for i := 0; i < 80; i++ {
			next := flow.NextPacket(nil, makePayload(rng, 256, 4))
			c.Add(EnumeratePair(prev, next, cfg))
			prev = next
		}
		return c
	}
	rng = rand.New(rand.NewPCG(5, 6))
	hdr := run(tcpip.PlacementHeader)
	rng = rand.New(rand.NewPCG(5, 6))
	trl := run(tcpip.PlacementTrailer)
	if hdr.MissedByChecksum == 0 {
		t.Skip("header checksum missed nothing; structured payload too weak")
	}
	if trl.MissRate(trl.MissedByChecksum) >= hdr.MissRate(hdr.MissedByChecksum) {
		t.Errorf("trailer miss rate %.6g not below header %.6g",
			trl.MissRate(trl.MissedByChecksum), hdr.MissRate(hdr.MissedByChecksum))
	}
	if trl.IdenticalFailedChecksum == 0 {
		t.Error("trailer checksums should reject identical splices (Table 10)")
	}
	if hdr.IdenticalFailedChecksum != 0 {
		t.Error("header checksums never reject identical splices (Table 10)")
	}
}

func TestCRCMissesAreRare(t *testing.T) {
	// The CRC-32 should essentially never pass a corrupted splice.
	rng := rand.New(rand.NewPCG(9, 9))
	cfg := Config{Opts: tcpip.BuildOptions{}, CheckCRC: true}
	var c Counts
	flow := tcpip.NewLoopbackFlow(cfg.Opts)
	prev := flow.NextPacket(nil, makePayload(rng, 256, 4))
	for i := 0; i < 40; i++ {
		next := flow.NextPacket(nil, makePayload(rng, 256, 4))
		c.Add(EnumeratePair(prev, next, cfg))
		prev = next
	}
	if c.MissedByCRC != 0 {
		t.Errorf("CRC-32 missed %d of %d splices", c.MissedByCRC, c.Remaining)
	}
	if c.MissedByBoth != 0 {
		t.Errorf("MissedByBoth = %d", c.MissedByBoth)
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{Pairs: 1, Total: 10, Remaining: 5, MissedByChecksum: 2}
	a.RemainingByLen[1] = 3
	b := Counts{Pairs: 2, Total: 20, Remaining: 7, MissedByChecksum: 1}
	b.RemainingByLen[1] = 4
	a.Add(b)
	if a.Pairs != 3 || a.Total != 30 || a.Remaining != 12 || a.MissedByChecksum != 3 {
		t.Errorf("%+v", a)
	}
	if a.RemainingByLen[1] != 7 {
		t.Errorf("byLen = %d", a.RemainingByLen[1])
	}
}

func TestMissRate(t *testing.T) {
	c := Counts{Remaining: 200, MissedByChecksum: 3}
	if got := c.MissRate(c.MissedByChecksum); got != 0.015 {
		t.Errorf("MissRate = %v", got)
	}
	var empty Counts
	if empty.MissRate(5) != 0 {
		t.Error("empty MissRate should be 0")
	}
}

func TestIncrementalSumEquivalence(t *testing.T) {
	// The §4.1 identity underlying the whole enumerator: a packet's
	// checksum is the sum of its cells' partial sums.
	rng := rand.New(rand.NewPCG(11, 11))
	data := make([]byte, 48*7)
	for i := range data {
		data[i] = byte(rng.Uint32())
	}
	var sum uint16
	for off := 0; off < len(data); off += 48 {
		sum = addOnes(sum, inet.Sum(data[off:off+48]))
	}
	if whole := inet.Sum(data); !bytes.Equal([]byte{byte(sum >> 8), byte(sum)}, []byte{byte(whole >> 8), byte(whole)}) && sum != whole {
		t.Errorf("cell-sum composition: %#04x != %#04x", sum, whole)
	}
}

func addOnes(a, b uint16) uint16 {
	s := uint32(a) + uint32(b)
	return uint16(s) + uint16(s>>16)
}
