package splice

// Class is the final classification of one candidate splice.
type Class int

const (
	// ClassCaughtByHeader means the §3.1 TCP/IP header battery fired.
	ClassCaughtByHeader Class = iota
	// ClassIdentical means the data matched an original packet (benign).
	ClassIdentical
	// ClassDetected means a corrupted splice that CRC or checksum (or
	// both, depending on configuration) would catch.
	ClassDetected
	// ClassMissed means a corrupted splice that passed the transport
	// checksum — undetected data corruption unless the CRC is present.
	ClassMissed
)

func (c Class) String() string {
	switch c {
	case ClassCaughtByHeader:
		return "caught-by-header"
	case ClassIdentical:
		return "identical"
	case ClassDetected:
		return "detected"
	case ClassMissed:
		return "missed"
	}
	return "unknown"
}

// Splice describes one enumerated candidate for a visitor.
type Splice struct {
	// CellsFromP1 and CellsFromP2 count the splice's provenance (the
	// pinned trailer cell counts toward P2).
	CellsFromP1, CellsFromP2 int
	// Selection holds the chosen pool indices: 0..m1−1 are packet 1's
	// non-trailer cells, m1.. are packet 2's non-trailer cells.  The
	// pinned trailer is not included.  The slice is only valid during
	// the callback.
	Selection []int
	// Class is the final classification.
	Class Class
	// PassedChecksum and PassedCRC report the individual integrity
	// checks (PassedCRC is meaningful only when Config.CheckCRC).
	PassedChecksum bool
	PassedCRC      bool
	// SDU is the spliced packet's bytes, valid only during the
	// callback, and only materialized when Config requests it via
	// VisitPair's materialize flag.
	SDU []byte
}

// VisitPair enumerates every candidate splice of the packet pair and
// invokes fn for each (identity excluded), returning the aggregate
// counts.  When materialize is true, each Splice carries its SDU bytes
// (slower).  The visitor must not retain Selection or SDU.
func VisitPair(p1, p2 []byte, cfg Config, materialize bool, fn func(Splice)) Counts {
	var e Enumerator
	return e.pair(p1, p2, cfg, fn, materialize)
}
