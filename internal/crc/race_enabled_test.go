//go:build race

package crc

// raceEnabled reports whether the race detector is compiled in.  Under
// -race the runtime's sync.Pool randomly drops Put items to surface
// reuse races, so pooled-scratch zero-alloc guarantees do not hold and
// alloc-count assertions must be skipped.
const raceEnabled = true
