package crc

import "encoding/binary"

// Slicing-by-8: the production fast path.  Eight derived tables let the
// engine consume 8 input bytes per step instead of 1.  slice[j][b] is
// the raw register (in the table's internal alignment) that results
// from processing byte b followed by j zero bytes, starting from a zero
// register; because the register evolution is linear over GF(2), the
// register advance over 8 message bytes decomposes into one table
// lookup per byte of (register ⊕ message), summed with XOR.
type slicing struct {
	tabs [8][256]uint64
}

// buildSlicing derives the seven extra tables from the byte table.
func (t *Table) buildSlicing() *slicing {
	s := &slicing{}
	for b := 0; b < 256; b++ {
		s.tabs[0][b] = t.tab[b]
	}
	for j := 1; j < 8; j++ {
		for b := 0; b < 256; b++ {
			x := s.tabs[j-1][b]
			if t.params.RefIn {
				s.tabs[j][b] = t.tab[byte(x)] ^ x>>8
			} else {
				s.tabs[j][b] = t.tab[byte(x>>56)] ^ x<<8
			}
		}
	}
	return s
}

// updateSlicing advances the raw register over data using the sliced
// tables for the bulk and the scalar loop for the tail.
func (t *Table) updateSlicing(reg uint64, data []byte) uint64 {
	s := t.slice
	if t.params.RefIn {
		for len(data) >= 8 {
			v := reg ^ binary.LittleEndian.Uint64(data)
			reg = s.tabs[7][byte(v)] ^
				s.tabs[6][byte(v>>8)] ^
				s.tabs[5][byte(v>>16)] ^
				s.tabs[4][byte(v>>24)] ^
				s.tabs[3][byte(v>>32)] ^
				s.tabs[2][byte(v>>40)] ^
				s.tabs[1][byte(v>>48)] ^
				s.tabs[0][byte(v>>56)]
			data = data[8:]
		}
	} else {
		for len(data) >= 8 {
			v := reg ^ binary.BigEndian.Uint64(data)
			reg = s.tabs[7][byte(v>>56)] ^
				s.tabs[6][byte(v>>48)] ^
				s.tabs[5][byte(v>>40)] ^
				s.tabs[4][byte(v>>32)] ^
				s.tabs[3][byte(v>>24)] ^
				s.tabs[2][byte(v>>16)] ^
				s.tabs[1][byte(v>>8)] ^
				s.tabs[0][byte(v)]
			data = data[8:]
		}
	}
	return t.updateScalar(reg, data)
}
