package crc

import (
	"encoding/binary"
	"math/bits"
)

// Nguyen-style wide-word CRC kernel (after Nguyen, "Fast CRCs",
// arXiv:1009.5949): the CRC is advanced one full 64-bit machine word
// per step through a sparse linear recurrence.  Nguyen's fast-CRC
// generators are chosen sparse so that the word recurrence is a few
// shifts and XORs; standard CRC-32/CRC-32C generators are dense, so
// the kernel runs the recurrence modulo a sparse *multiple* S of the
// generator instead (sparse.go) and reduces mod G only at the end —
// valid because G | S makes Z/S-arithmetic a refinement of Z/G.
//
// Concretely the state is a power-of-two ring of 64-bit words, the
// sliding span-word window of the stream rewrite: consuming word i
// (message word XOR accumulated folds) scatters it to the ring slots
// for word positions i+off for each word offset — the same identity
// the chorba kernel applies byte-wise, but with no scratch copy of the
// input, so the working set is the ring (2–4 KiB) regardless of input
// size.  The final span words drain through the chorba byte fold and
// the byte-at-a-time table.
func (t *Table) nguyen(reg uint64, data []byte) uint64 {
	sp := t.sp
	rp := sp.ringPool.Get().(*[]uint64)
	ring := *rp
	// Deriving the mask from len(ring) (a power of two) lets the
	// compiler drop the bounds check on every masked ring index.
	mask := len(ring) - 1
	nw := len(data) / 8
	k := nw - sp.span // words consumed by the ring recurrence

	// Fold the incoming register into the first message word.  A
	// reflected register occupies the low bytes of the little-endian
	// load; a left-aligned one the high bytes, which in the LE-loaded
	// word means byte-reversed placement.
	if t.params.RefIn {
		ring[0] ^= reg
	} else {
		ring[0] ^= bits.ReverseBytes64(reg)
	}

	words := data[: nw*8 : nw*8]
	switch len(sp.offs) {
	case 4:
		o0, o1, o2, o3 := sp.offs[0], sp.offs[1], sp.offs[2], sp.offs[3]
		for i := 0; i < k; i++ {
			j := i & mask
			w := binary.LittleEndian.Uint64(words[i*8:]) ^ ring[j]
			ring[j] = 0
			ring[(i+o0)&mask] ^= w
			ring[(i+o1)&mask] ^= w
			ring[(i+o2)&mask] ^= w
			ring[(i+o3)&mask] ^= w
		}
	case 5:
		o0, o1, o2, o3, o4 := sp.offs[0], sp.offs[1], sp.offs[2], sp.offs[3], sp.offs[4]
		for i := 0; i < k; i++ {
			j := i & mask
			w := binary.LittleEndian.Uint64(words[i*8:]) ^ ring[j]
			ring[j] = 0
			ring[(i+o0)&mask] ^= w
			ring[(i+o1)&mask] ^= w
			ring[(i+o2)&mask] ^= w
			ring[(i+o3)&mask] ^= w
			ring[(i+o4)&mask] ^= w
		}
	default:
		for i := 0; i < k; i++ {
			j := i & mask
			w := binary.LittleEndian.Uint64(words[i*8:]) ^ ring[j]
			ring[j] = 0
			for _, o := range sp.offs {
				ring[(i+o)&mask] ^= w
			}
		}
	}

	// Drain: the last span words (message XOR ring) plus the sub-word
	// tail form the residual byte stream; emptying consumed slots as we
	// go restores the all-zero invariant the pool relies on.
	bp := sp.bufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	var wb [8]byte
	for i := k; i < nw; i++ {
		j := i & mask
		binary.LittleEndian.PutUint64(wb[:], binary.LittleEndian.Uint64(words[i*8:])^ring[j])
		ring[j] = 0
		buf = append(buf, wb[:]...)
	}
	buf = append(buf, data[nw*8:]...)
	*bp = buf
	sp.ringPool.Put(rp)

	i := sp.fold(buf)
	reg = t.updateScalar(0, buf[i:])
	sp.bufPool.Put(bp)
	return reg
}
