package crc

import "sync"

// Sparse multiples of the CRC generator — the algebraic raw material of
// the table-free kernels.
//
// A low-weight multiple of the generator G with exponents
// e_{w-1} > ... > e_1 > e_0 = 0 (every exponent a multiple of the unit
// size u) yields the fold identity
//
//	x^{u·e_{w-1}}  ≡  x^{u·e_{w-2}} + ... + x^{u·e_1} + 1   (mod G)
//
// which, read over the message byte stream, says: a unit (byte or
// 64-bit word) at stream position i may be deleted and XORed instead
// into the positions i + (e_{w-1} − e_j) for every j < w−1 — each
// strictly later, each unit-aligned — without changing the CRC.  The
// chorba kernel applies the identity with u = 8 (byte offsets) over a
// scratch copy of the input; the nguyen kernel applies it with u = 64
// (word offsets) as a sliding-window word recurrence.  One exponent
// list serves both units: squaring is the Frobenius map on GF(2)[x], so
// S(x) | multiple ⇒ S(x^8) = S(x)^8 is also a multiple, i.e. a
// byte-aligned multiple lifts to a word-aligned multiple with the same
// exponents.
//
// The exponent lists below were found by an offline meet-in-the-middle
// search over x^{8j} mod G (minimal-span solutions preferred) and are
// re-verified in-repo by TestSparseMultiplesAreMultiples against the
// bitwise reference engine.  CRC-32C admits no odd-weight multiple at
// all — its generator is divisible by (x+1), which is exactly the §2
// "detects all odd-weight errors" guarantee — so it carries a weight-6
// list where CRC-32 carries a weight-5 one.
var sparseMultiples = map[uint64][]int{
	// CRC-32 (IEEE 802.3 / AAL5), poly 0x04C11DB7: weight 5, span 300
	// units: x^2400 + x^1240 + x^936 + x^712 + 1 in bit exponents.
	0x04C11DB7: {0, 89, 117, 155, 300},
	// CRC-32C (Castagnoli), poly 0x1EDC6F41: weight 6, span 209 units:
	// x^1672 + x^1152 + x^432 + x^312 + x^112 + 1 in bit exponents.
	0x1EDC6F41: {0, 14, 39, 54, 144, 209},
}

// sparseKernel holds the derived fold geometry and the scratch pools
// the chorba and nguyen kernels run on.  It is built once per Table at
// New time and is safe for concurrent use: all mutable state lives in
// pooled per-call scratch.
type sparseKernel struct {
	// exps is the ascending exponent list, exps[0] == 0.
	exps []int
	// offs are the fold offsets e_max − e_j for j < w−1, ascending;
	// the last entry equals span.  In bytes for the chorba fold, in
	// 64-bit words for the nguyen ring.
	offs []int
	// span is the largest exponent: the reach of one fold step.
	span int
	// bulkMin is the smallest input size (bytes) the fold kernels
	// handle: below one full word-stage reach the slicing path wins,
	// so mid-size packets never regress.
	bulkMin int
	// ringSize is the nguyen ring length in words: the smallest power
	// of two > span, so slot indexing is a mask and the live window of
	// span+1 logical positions never collides.
	ringSize int

	bufPool  sync.Pool // *[]byte: chorba scratch / nguyen drain buffer
	ringPool sync.Pool // *[]uint64: nguyen ring, all-zero between uses
}

// sparseFor returns the fold geometry for p, or nil when no sparse
// multiple of p's generator is catalogued.  Only the exponent list is
// polynomial-specific; the kernels themselves are pure byte-stream
// rewrites and work for any width and reflection convention.
func sparseFor(p Params) *sparseKernel {
	if p.Width != 32 {
		return nil
	}
	exps, ok := sparseMultiples[p.Poly&p.Mask()]
	if !ok {
		return nil
	}
	sp := &sparseKernel{exps: exps, span: exps[len(exps)-1]}
	for i := len(exps) - 2; i >= 0; i-- {
		sp.offs = append(sp.offs, sp.span-exps[i])
	}
	// Both kernels need more words than the span so at least one word
	// is consumed by the word-stage fold.
	sp.bulkMin = 8*sp.span + 16
	sp.ringSize = 1
	for sp.ringSize <= sp.span {
		sp.ringSize <<= 1
	}
	sp.bufPool.New = func() interface{} {
		b := make([]byte, 0, 4096)
		return &b
	}
	ringSize := sp.ringSize
	sp.ringPool.New = func() interface{} {
		r := make([]uint64, ringSize)
		return &r
	}
	return sp
}
