package crc

import (
	"hash/crc32"
	"math/rand/v2"
	"testing"
)

var checkInput = []byte("123456789")

func TestCatalogCheckValues(t *testing.T) {
	for _, p := range Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if got := New(p).Checksum(checkInput); got != p.Check {
				t.Errorf("table Checksum(%q) = %#x, want %#x", checkInput, got, p.Check)
			}
			if got := p.BitwiseChecksum(checkInput); got != p.Check {
				t.Errorf("bitwise Checksum(%q) = %#x, want %#x", checkInput, got, p.Check)
			}
		})
	}
}

func TestTableMatchesBitwise(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, p := range Catalog() {
		tab := New(p)
		for trial := 0; trial < 50; trial++ {
			data := make([]byte, rng.IntN(200))
			for i := range data {
				data[i] = byte(rng.Uint32())
			}
			if got, want := tab.Checksum(data), p.BitwiseChecksum(data); got != want {
				t.Fatalf("%s len %d: table %#x != bitwise %#x", p.Name, len(data), got, want)
			}
		}
	}
}

func TestCRC32MatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	tab := New(CRC32)
	for trial := 0; trial < 300; trial++ {
		data := make([]byte, rng.IntN(2000))
		for i := range data {
			data[i] = byte(rng.Uint32())
		}
		if got, want := uint32(tab.Checksum(data)), crc32.ChecksumIEEE(data); got != want {
			t.Fatalf("len %d: ours %#08x, stdlib %#08x", len(data), got, want)
		}
	}
}

func TestUpdateMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for _, p := range Catalog() {
		tab := New(p)
		data := make([]byte, 300)
		for i := range data {
			data[i] = byte(rng.Uint32())
		}
		whole := tab.Checksum(data)
		for _, cut := range []int{0, 1, 7, 150, 299, 300} {
			got := tab.Update(tab.Checksum(data[:cut]), data[cut:])
			if got != whole {
				t.Errorf("%s split %d: Update = %#x, want %#x", p.Name, cut, got, whole)
			}
		}
	}
}

func TestDigestStreaming(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for _, p := range Catalog() {
		tab := New(p)
		data := make([]byte, 777)
		for i := range data {
			data[i] = byte(rng.Uint32())
		}
		d := tab.NewDigest()
		i := 0
		for i < len(data) {
			n := 1 + rng.IntN(100)
			if i+n > len(data) {
				n = len(data) - i
			}
			d.Write(data[i : i+n])
			i += n
		}
		if d.Len() != len(data) {
			t.Fatalf("%s: Len = %d", p.Name, d.Len())
		}
		if got, want := d.CRC(), tab.Checksum(data); got != want {
			t.Fatalf("%s: streaming %#x != one-shot %#x", p.Name, got, want)
		}
		d.Reset()
		if d.CRC() != tab.Checksum(nil) || d.Len() != 0 {
			t.Errorf("%s: Reset did not restore initial state", p.Name)
		}
	}
}

func TestCombineMatchesConcatenation(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for _, p := range Catalog() {
		tab := New(p)
		for trial := 0; trial < 30; trial++ {
			a := make([]byte, rng.IntN(300))
			b := make([]byte, rng.IntN(300))
			for i := range a {
				a[i] = byte(rng.Uint32())
			}
			for i := range b {
				b[i] = byte(rng.Uint32())
			}
			whole := tab.Checksum(append(append([]byte{}, a...), b...))
			if got := tab.Combine(tab.Checksum(a), tab.Checksum(b), len(b)); got != whole {
				t.Fatalf("%s: Combine = %#x, want %#x (lenA=%d lenB=%d)",
					p.Name, got, whole, len(a), len(b))
			}
		}
	}
}

func TestCombineMatchesStdlibShape(t *testing.T) {
	// Cross-check our CRC-32 Combine against stdlib by concatenation.
	tab := New(CRC32)
	a := []byte("hello, ")
	b := []byte("world")
	want := crc32.ChecksumIEEE([]byte("hello, world"))
	got := tab.Combine(uint64(crc32.ChecksumIEEE(a)), uint64(crc32.ChecksumIEEE(b)), len(b))
	if uint32(got) != want {
		t.Errorf("Combine = %#08x, want %#08x", got, want)
	}
}

func TestZeroesMatchesUpdate(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	for _, p := range []Params{CRC32, CRC10, CRC16CCITT, CRC8HEC, CRC64} {
		tab := New(p)
		data := make([]byte, 100)
		for i := range data {
			data[i] = byte(rng.Uint32())
		}
		crc := tab.Checksum(data)
		for _, n := range []int{0, 1, 13, 48, 1000} {
			want := tab.Update(crc, make([]byte, n))
			if got := tab.Zeroes(crc, n); got != want {
				t.Errorf("%s Zeroes(%d) = %#x, want %#x", p.Name, n, got, want)
			}
		}
	}
}

func TestMakeParamsArbitraryWidths(t *testing.T) {
	// Exercise odd widths end-to-end: table must agree with bitwise for
	// widths that are not byte multiples.
	rng := rand.New(rand.NewPCG(7, 7))
	widths := []struct {
		w    uint8
		poly uint64
	}{
		{3, 0x3}, {5, 0x15}, {7, 0x65}, {10, 0x233}, {12, 0x80F},
		{13, 0x1CF5}, {21, 0x102899}, {31, 0x04C11DB7 >> 1}, {63, 0x42F0E1EBA9EA3693 >> 1},
	}
	for _, wp := range widths {
		p := MakeParams(wp.w, wp.poly)
		tab := New(p)
		for trial := 0; trial < 20; trial++ {
			data := make([]byte, rng.IntN(100))
			for i := range data {
				data[i] = byte(rng.Uint32())
			}
			if got, want := tab.Checksum(data), p.BitwiseChecksum(data); got != want {
				t.Fatalf("width %d: table %#x != bitwise %#x", wp.w, got, want)
			}
		}
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	for _, p := range []Params{
		{Name: "w0", Width: 0, Poly: 1},
		{Name: "w65", Width: 65, Poly: 1},
		{Name: "mixed", Width: 8, Poly: 7, RefIn: true, RefOut: false},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%s) should panic", p.Name)
				}
			}()
			New(p)
		}()
	}
}

func TestByName(t *testing.T) {
	if p, ok := ByName("CRC-32"); !ok || p.Poly != 0x04C11DB7 {
		t.Error("ByName(CRC-32) failed")
	}
	if _, ok := ByName("CRC-nonsense"); ok {
		t.Error("ByName should miss unknown names")
	}
}

func TestReflect(t *testing.T) {
	tests := []struct {
		v    uint64
		n    uint8
		want uint64
	}{
		{0b1, 1, 0b1},
		{0b10, 2, 0b01},
		{0xF0, 8, 0x0F},
		{0x04C11DB7, 32, 0xEDB88320}, // the famous reflected CRC-32 poly
		{0x1, 64, 1 << 63},
	}
	for _, tc := range tests {
		if got := Reflect(tc.v, tc.n); got != tc.want {
			t.Errorf("Reflect(%#x, %d) = %#x, want %#x", tc.v, tc.n, got, tc.want)
		}
	}
}

func BenchmarkCRC32_1500(b *testing.B) {
	tab := New(CRC32)
	data := make([]byte, 1500)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		tab.Checksum(data)
	}
}

func BenchmarkCRC10_1500(b *testing.B) {
	tab := New(CRC10)
	data := make([]byte, 1500)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		tab.Checksum(data)
	}
}
