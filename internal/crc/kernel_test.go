package crc

import (
	"fmt"
	"hash/crc32"
	"math/rand/v2"
	"testing"
)

// sparseParams are the parameterizations with catalogued sparse
// multiples, i.e. the ones the chorba and nguyen kernels accept.
func sparseParams() []Params { return []Params{CRC32, CRC32C} }

// TestSparseMultiplesAreMultiples re-derives the pinned exponent lists'
// defining property against the bitwise reference engine: the sum of
// x^{u·e} mod G over the exponents is zero for both the byte (u=8) and
// the lifted word (u=64) readings.  A wrong constant fails here before
// it can fail anywhere subtler.
func TestSparseMultiplesAreMultiples(t *testing.T) {
	for _, p := range sparseParams() {
		exps := sparseMultiples[p.Poly]
		if exps == nil || exps[0] != 0 {
			t.Fatalf("%s: missing or unnormalized exponent list %v", p.Name, exps)
		}
		for _, unitBytes := range []int{1, 8} { // x^8 and x^64 units
			// x^{u·e} mod G is the register after e unit-sized zero
			//"bytes" advance a register seeded with polynomial 1.
			// Work unreflected: seed register 1, shift in zero bytes.
			q := Params{Name: p.Name, Width: p.Width, Poly: p.Poly}
			acc := uint64(0)
			for _, e := range exps {
				reg := uint64(1)
				reg = q.bitwiseUpdate(reg, make([]byte, e*unitBytes))
				acc ^= reg
			}
			if acc != 0 {
				t.Errorf("%s: exponents %v (unit %d bytes) do not sum to a multiple of the generator (residue %#x)",
					p.Name, exps, unitBytes, acc)
			}
		}
	}
}

// TestKernelsDifferentialOracle races every kernel against the scalar
// engine across every catalogued parameterization on random lengths
// from 0 to 64 KiB, sliding the data through all 8 alignments of the
// 8-byte bulk loop, and pins the CRC-32/CRC-32C results to the
// standard library's hash/crc32.
func TestKernelsDifferentialOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	base := make([]byte, 64<<10+8)
	for i := range base {
		base[i] = byte(rng.Uint32())
	}
	lengths := []int{0, 1, 7, 8, 9, 16, 48, 300, 316, 1500, 2416, 2500}
	for i := 0; i < 12; i++ {
		lengths = append(lengths, rng.IntN(64<<10))
	}
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	for _, p := range Catalog() {
		tab := New(p)
		for _, kn := range tab.Kernels() {
			for _, n := range lengths {
				for align := 0; align < 8; align++ {
					data := base[align : align+n]
					want := tab.finalizeReg(tab.updateScalar(tab.initReg(), data))
					k, _ := kernelByName(kn)
					got := tab.finalizeReg(tab.kernelUpdate(k, tab.initReg(), data))
					if got != want {
						t.Fatalf("%s/%s: len=%d align=%d: %#x != scalar %#x",
							p.Name, kn, n, align, got, want)
					}
					switch p.Name {
					case "CRC-32":
						if std := uint64(crc32.ChecksumIEEE(data)); got != std {
							t.Fatalf("CRC-32/%s len=%d align=%d: %#x != hash/crc32 %#x", kn, n, align, got, std)
						}
					case "CRC-32C":
						if std := uint64(crc32.Checksum(data, castagnoli)); got != std {
							t.Fatalf("CRC-32C/%s len=%d align=%d: %#x != hash/crc32 %#x", kn, n, align, got, std)
						}
					}
				}
			}
		}
	}
}

// TestKernelShortInputs walks the dispatch tail path over every length
// from 0 through 64 bytes — the 0–7 byte sub-word tail is the classic
// off-by-one surface for wide-word CRC engines — comparing each kernel
// against the bitwise reference, at every alignment.
func TestKernelShortInputs(t *testing.T) {
	base := []byte("\x00\xff\x55\xaaThe quick brown fox jumps over the lazy dog 0123456789abcdef!!")
	for _, p := range sparseParams() {
		tab := New(p)
		for _, kn := range tab.Kernels() {
			k, _ := kernelByName(kn)
			for n := 0; n <= 56; n++ {
				for align := 0; align < 8; align++ {
					data := base[align : align+n]
					want := p.BitwiseChecksum(data)
					got := tab.finalizeReg(tab.kernelUpdate(k, tab.initReg(), data))
					if got != want {
						t.Fatalf("%s/%s len=%d align=%d: %#x != bitwise %#x", p.Name, kn, n, align, got, want)
					}
				}
			}
		}
	}
}

// TestKernelFoldBoundaries drives each fold kernel across its minimum
// reach one byte at a time, where the scratch-copy loop, the ring
// drain and the scalar tail exchange responsibility.
func TestKernelFoldBoundaries(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	for _, p := range sparseParams() {
		tab := New(p)
		if tab.sp == nil {
			t.Fatalf("%s: no sparse kernel", p.Name)
		}
		var lens []int
		for d := -9; d <= 9; d++ {
			// The dispatch floor, plus the interior hand-offs: word stage
			// to byte stage (span words in) and byte stage to scalar tail.
			lens = append(lens, tab.sp.bulkMin+d, tab.sp.bulkMin+8*tab.sp.span+d, 9*tab.sp.span+d)
		}
		for _, kid := range []kernelID{kernelChorba, kernelNguyen} {
			for _, n := range lens {
				data := make([]byte, n)
				for i := range data {
					data[i] = byte(rng.Uint32())
				}
				want := tab.updateScalar(tab.initReg(), data)
				if got := tab.kernelUpdate(kid, tab.initReg(), data); got != want {
					t.Fatalf("%s/%s len=%d: %#x != scalar %#x", p.Name, kernelNames[kid], n, got, want)
				}
			}
		}
	}
}

// TestSelectedKernelMatchesOracle pins the auto-selection contract CI
// relies on: whatever kernel New picked verifies cleanly against the
// scalar engine on the pinned vectors, and the choice is stable within
// a process (the per-Params cache).
func TestSelectedKernelMatchesOracle(t *testing.T) {
	for _, p := range Catalog() {
		tab := New(p)
		if err := tab.VerifyKernel(tab.Kernel()); err != nil {
			t.Errorf("%s: selected kernel fails the oracle: %v", p.Name, err)
		}
		if again := New(p); again.Kernel() != tab.Kernel() {
			t.Errorf("%s: selection not stable within process: %s then %s", p.Name, tab.Kernel(), again.Kernel())
		}
	}
	tab := New(CRC16) // no sparse multiple → slicing8 without racing
	if tab.Kernel() != "slicing8" {
		t.Errorf("CRC-16 selected %s, want slicing8", tab.Kernel())
	}
}

// TestSetKernel covers the override surface: every available kernel
// takes, unknown names and unsupported kernels error, and "auto"
// restores a raced choice.
func TestSetKernel(t *testing.T) {
	tab := New(CRC32)
	for _, kn := range tab.Kernels() {
		if err := tab.SetKernel(kn); err != nil {
			t.Fatalf("SetKernel(%s): %v", kn, err)
		}
		if tab.Kernel() != kn {
			t.Fatalf("Kernel() = %s after SetKernel(%s)", tab.Kernel(), kn)
		}
	}
	if err := tab.SetKernel("simd"); err == nil {
		t.Error("SetKernel(simd) succeeded")
	}
	if err := tab.SetKernel("auto"); err != nil {
		t.Errorf("SetKernel(auto): %v", err)
	}
	t16 := New(CRC16)
	if err := t16.SetKernel("chorba"); err == nil {
		t.Error("SetKernel(chorba) on CRC-16 succeeded; no sparse multiple exists")
	}
	if len(t16.Kernels()) != 2 {
		t.Errorf("CRC-16 kernels = %v, want scalar+slicing8 only", t16.Kernels())
	}
}

// TestKernelStreamingDigest checks that a Digest fed arbitrary chunk
// sizes through each kernel agrees with the one-shot checksum: the
// fold kernels must compose across Write boundaries via the raw
// register exactly like the table paths do.
func TestKernelStreamingDigest(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	data := make([]byte, 20000)
	for i := range data {
		data[i] = byte(rng.Uint32())
	}
	for _, p := range sparseParams() {
		tab := New(p)
		want := tab.Checksum(data)
		for _, kn := range tab.Kernels() {
			if err := tab.SetKernel(kn); err != nil {
				t.Fatal(err)
			}
			d := tab.NewDigest()
			for off := 0; off < len(data); {
				n := 1 + rng.IntN(4000)
				if off+n > len(data) {
					n = len(data) - off
				}
				d.Write(data[off : off+n])
				off += n
			}
			if got := d.CRC(); got != want {
				t.Errorf("%s/%s: streamed %#x != one-shot %#x", p.Name, kn, got, want)
			}
		}
		tab.SetKernel("auto")
	}
}

// TestKernelZeroAlloc pins the pooled-scratch contract: once warm, the
// fold kernels checksum bulk input without allocating.
func TestKernelZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops Puts under the race detector, so alloc counts are not meaningful")
	}
	data := pinnedBuf()[:64<<10]
	for _, p := range sparseParams() {
		tab := New(p)
		for _, kid := range []kernelID{kernelChorba, kernelNguyen} {
			kid := kid
			tab.kernelUpdate(kid, tab.initReg(), data) // warm the pools
			allocs := testing.AllocsPerRun(20, func() {
				raceSink ^= tab.kernelUpdate(kid, tab.initReg(), data)
			})
			if allocs > 0 {
				t.Errorf("%s/%s: %.1f allocs per 64 KiB checksum, want 0", p.Name, kernelNames[kid], allocs)
			}
		}
	}
}

// TestKernelConcurrent hammers one shared table from many goroutines
// (the registry's usage pattern: netsim workers share algo instances).
// Run under -race this doubles as the kernel data-race gate.
func TestKernelConcurrent(t *testing.T) {
	data := pinnedBuf()
	for _, p := range sparseParams() {
		tab := New(p)
		for _, kid := range []kernelID{kernelChorba, kernelNguyen} {
			want := tab.finalizeReg(tab.updateScalar(tab.initReg(), data))
			done := make(chan error, 8)
			for g := 0; g < 8; g++ {
				go func() {
					for i := 0; i < 25; i++ {
						if got := tab.finalizeReg(tab.kernelUpdate(kid, tab.initReg(), data)); got != want {
							done <- fmt.Errorf("%s/%s: concurrent checksum %#x != %#x", p.Name, kernelNames[kid], got, want)
							return
						}
					}
					done <- nil
				}()
			}
			for g := 0; g < 8; g++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestNguyenRingReturnsZeroed pins the pool invariant the ring kernel
// depends on: every Put returns an all-zero ring, including after
// inputs whose word count wraps the ring several times.
func TestNguyenRingReturnsZeroed(t *testing.T) {
	for _, p := range sparseParams() {
		tab := New(p)
		for _, n := range []int{tab.sp.bulkMin, tab.sp.bulkMin + 8191, 64 << 10} {
			tab.nguyen(tab.initReg(), pinnedBuf()[:n])
			rp := tab.sp.ringPool.Get().(*[]uint64)
			for i, w := range *rp {
				if w != 0 {
					t.Fatalf("%s: ring slot %d = %#x after len-%d input, want 0", p.Name, i, w, n)
				}
			}
			tab.sp.ringPool.Put(rp)
		}
	}
}

// FuzzKernels compares every kernel on arbitrary input against the
// scalar engine, and the CRC-32/CRC-32C results against hash/crc32.
// Seeds cover the empty input, the catalog check string, sub-word
// tails, and inputs beyond the fold kernels' minimum reach so the word
// stage, the byte stage and the scalar tail all execute.
func FuzzKernels(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("123456789"))
	f.Add(pinnedBuf()[:7])
	f.Add(pinnedBuf()[:301])
	f.Add(pinnedBuf()[:2416]) // CRC-32 bulkMin
	f.Add(pinnedBuf()[:3001])
	f.Add(pinnedBuf()[:5000])
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, p := range sparseParams() {
			tab := New(p)
			want := tab.finalizeReg(tab.updateScalar(tab.initReg(), data))
			for _, kn := range tab.Kernels() {
				k, _ := kernelByName(kn)
				if got := tab.finalizeReg(tab.kernelUpdate(k, tab.initReg(), data)); got != want {
					t.Fatalf("%s/%s: len=%d: %#x != scalar %#x", p.Name, kn, len(data), got, want)
				}
			}
			var std uint64
			switch p.Name {
			case "CRC-32":
				std = uint64(crc32.ChecksumIEEE(data))
			case "CRC-32C":
				std = uint64(crc32.Checksum(data, castagnoli))
			}
			if want != std {
				t.Fatalf("%s: len=%d: scalar %#x != hash/crc32 %#x", p.Name, len(data), want, std)
			}
		}
	})
}

// BenchmarkKernels races the engines on bulk and MTU-sized input; the
// BENCH_algo.json emitter is the committed record, this is the local
// view.
func BenchmarkKernels(b *testing.B) {
	for _, p := range sparseParams() {
		tab := New(p)
		for _, size := range []int{1500, 64 << 10} {
			data := pinnedBuf()[:size]
			for _, kn := range tab.Kernels() {
				k, _ := kernelByName(kn)
				b.Run(fmt.Sprintf("%s/%s/%d", p.Name, kn, size), func(b *testing.B) {
					b.SetBytes(int64(size))
					for i := 0; i < b.N; i++ {
						raceSink ^= tab.kernelUpdate(k, tab.initReg(), data)
					}
				})
			}
		}
	}
}
