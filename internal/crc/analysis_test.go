package crc

import (
	"math/rand/v2"
	"testing"
)

func TestAnalysisMatchesCatalogKnowledge(t *testing.T) {
	tests := []struct {
		p           Params
		oddErrors   bool
		irreducible bool
	}{
		{CRC32, false, true},  // primitive: no x+1 factor
		{CRC32C, true, false}, // (x+1)·primitive-31
		{CRC16, true, false},
		{CRC16CCITT, true, false},
		{CRC16XMODEM, true, false},
		{CRC10, true, false},
		{CRC8HEC, true, false},
		{CRC8, true, false},
	}
	for _, tc := range tests {
		if got := tc.p.DetectsOddErrors(); got != tc.oddErrors {
			t.Errorf("%s: DetectsOddErrors = %v, want %v", tc.p.Name, got, tc.oddErrors)
		}
		if got := tc.p.GeneratorIsIrreducible(); got != tc.irreducible {
			t.Errorf("%s: GeneratorIsIrreducible = %v, want %v", tc.p.Name, got, tc.irreducible)
		}
		if tc.p.MaxBurstDetected() != int(tc.p.Width) {
			t.Errorf("%s: MaxBurstDetected", tc.p.Name)
		}
	}
}

func TestAnalysisPredictsEmpiricalOddErrorBehaviour(t *testing.T) {
	// The algebraic prediction must match what random odd-weight error
	// injection observes: algorithms with the x+1 factor never miss,
	// and CRC-32's generator itself is an odd-weight miss (verified in
	// properties_test.go).
	rng := rand.New(rand.NewPCG(20, 20))
	base := make([]byte, 128)
	for i := range base {
		base[i] = byte(rng.Uint32())
	}
	for _, p := range []Params{CRC32C, CRC16, CRC10, CRC8HEC} {
		if !p.DetectsOddErrors() {
			t.Fatalf("%s should carry the x+1 factor", p.Name)
		}
		tab := New(p)
		orig := tab.Checksum(base)
		for trial := 0; trial < 3000; trial++ {
			weight := 1 + 2*rng.IntN(10)
			data := append([]byte{}, base...)
			seen := map[int]bool{}
			for len(seen) < weight {
				bit := rng.IntN(len(base) * 8)
				if !seen[bit] {
					seen[bit] = true
					data[bit/8] ^= 1 << uint(bit%8)
				}
			}
			if tab.Checksum(data) == orig {
				t.Fatalf("%s missed an odd-weight (%d) error despite the x+1 factor", p.Name, weight)
			}
		}
	}
}

func TestDetects2BitErrorsWithinPaperWindows(t *testing.T) {
	if !CRC32.Detects2BitErrorsWithin(2048) {
		t.Error("CRC-32 must detect 2-bit errors within the paper's 2048-bit window")
	}
	// CRC-16/CCITT order is 32767; confirm both sides of the boundary.
	if !CRC16CCITT.Detects2BitErrorsWithin(32766) {
		t.Error("CCITT within its order")
	}
	if CRC16CCITT.Detects2BitErrorsWithin(32767) {
		t.Error("CCITT beyond its order")
	}
}

func TestGeneratorDegreeMatchesWidth(t *testing.T) {
	for _, p := range Catalog() {
		if got := p.Generator().Degree(); got != int(p.Width) {
			t.Errorf("%s: generator degree %d != width %d", p.Name, got, p.Width)
		}
	}
}
