package crc

// This file exposes the affine structure of the raw register update to
// callers that classify many variants of one message — most importantly
// the splice enumerator, which checks hundreds of cell selections per
// packet pair against one AAL5 CRC.
//
// The table update is linear over GF(2) in the pair (register, input):
// for a message M of n bytes,
//
//	update(I, M) = update(I, 0ⁿ) ⊕ update(0, M)
//
// and update(0, M) itself decomposes over any partition of M into
// fixed-position slots, each slot's bytes contributing
// shift(update(0, slot), 8·bytesAfterSlot) independently of what the
// other slots hold.  A caller that precomputes those contributions can
// evaluate the CRC of any slot assignment with one XOR per slot and
// compare against a target register with one integer comparison.

// zeroBytes feeds the table-driven path of RawShift; the slicing-by-8
// kernel consumes it 8 bytes per step.
var zeroBytes [512]byte

// rawShiftCrossover is the zero-byte count above which the O(log n)
// square-and-multiply operator path beats the O(n) table loop.  The
// operator path costs ~log2(8n) matrix squarings of 64×64 bits each, a
// few tens of thousands of word operations, while the table loop costs
// n/8 slicing steps.
const rawShiftCrossover = 64 * 1024

// RawShift advances a raw register over n zero input bytes — the
// multiply-by-x^(8n) primitive of the affine decomposition.  It is
// equivalent to RawUpdate(reg, make([]byte, n)) without materializing
// the zeros.
func (t *Table) RawShift(reg uint64, n int) uint64 {
	if n < 0 {
		panic("crc: RawShift with negative length")
	}
	if n >= rawShiftCrossover {
		return t.shiftReg(reg, uint64(n)*8)
	}
	for n > len(zeroBytes) {
		reg = t.update(reg, zeroBytes[:])
		n -= len(zeroBytes)
	}
	return t.update(reg, zeroBytes[:n])
}

// RawFromCRC converts a published CRC value back into a raw register in
// the table's internal alignment — the inverse of RawCRC.  It lets a
// caller hoist the output transformation out of a comparison loop:
// instead of finalizing every candidate register, unfinalize the target
// once and compare raw registers directly.
func (t *Table) RawFromCRC(crc uint64) uint64 { return t.unfinalizeReg(crc) }

// SlotContribs fills dst[s], for each of the len(dst) slots, with the
// raw-register contribution of data when its bytes occupy slot s of a
// larger message.  Slot s starts at byte offset s·stride and is
// followed by (len(dst)−1−s)·stride + tail further message bytes.
//
// With I the initial raw register and cell_s the bytes chosen for slot
// s, the register after the whole message is
//
//	RawShift(I, totalLen) ⊕ Σ_s contrib(cell_s, s)
//
// so an enumeration over slot assignments pays one XOR per slot instead
// of one table pass per byte.
func (t *Table) SlotContribs(dst []uint64, data []byte, stride, tail int) {
	if len(dst) == 0 {
		return
	}
	if stride < 0 || tail < 0 {
		panic("crc: SlotContribs with negative geometry")
	}
	c := t.RawShift(t.update(0, data), tail)
	dst[len(dst)-1] = c
	for s := len(dst) - 2; s >= 0; s-- {
		c = t.RawShift(c, stride)
		dst[s] = c
	}
}
