package crc

import (
	"math/rand/v2"
	"testing"
)

// These tests verify the error-detection guarantees §2 of the paper
// states for CRCs, and pin down one place where the paper's wording is
// stronger than the mathematics (odd-weight errors under CRC-32).

// flipBurst XORs an error burst of the given bit length and pattern into
// data starting at stream-bit offset pos.  The CRC burst-detection
// guarantee holds for bursts that are contiguous in the order bits enter
// the shift register, so the mapping from stream bit to byte bit depends
// on the algorithm's input reflection: MSB-first when refIn is false,
// LSB-first when true.
func flipBurst(data []byte, pos, length int, pattern uint64, refIn bool) {
	for i := 0; i < length; i++ {
		if pattern&(1<<uint(length-1-i)) != 0 {
			bit := pos + i
			if refIn {
				data[bit/8] ^= 1 << uint(bit%8)
			} else {
				data[bit/8] ^= 0x80 >> uint(bit%8)
			}
		}
	}
}

func TestCRCDetectsAllShortBursts(t *testing.T) {
	// Every burst error spanning ≤ Width contiguous bits is detected,
	// for every burst pattern with set first and last bits.  Exhaustive
	// for the narrow CRCs, sampled for the wide ones.
	rng := rand.New(rand.NewPCG(10, 1))
	base := make([]byte, 64)
	for i := range base {
		base[i] = byte(rng.Uint32())
	}
	for _, p := range []Params{CRC8, CRC10, CRC16CCITT, CRC16, CRC32} {
		tab := New(p)
		orig := tab.Checksum(base)
		w := int(p.Width)
		for length := 1; length <= w; length++ {
			patterns := burstPatterns(rng, length, 64)
			for _, pattern := range patterns {
				pos := rng.IntN(len(base)*8 - length + 1)
				data := append([]byte{}, base...)
				flipBurst(data, pos, length, pattern, p.RefIn)
				if tab.Checksum(data) == orig {
					t.Fatalf("%s missed a %d-bit burst %#x at bit %d", p.Name, length, pattern, pos)
				}
			}
		}
	}
}

// burstPatterns returns burst patterns of exactly `length` bits (first
// and last bit set): exhaustive when few, sampled otherwise.
func burstPatterns(rng *rand.Rand, length, maxN int) []uint64 {
	if length == 1 {
		return []uint64{1}
	}
	hi := uint64(1) << uint(length-1)
	free := length - 2
	if free <= 6 { // ≤ 64 patterns: exhaustive
		var out []uint64
		for mid := uint64(0); mid < 1<<uint(free); mid++ {
			out = append(out, hi|mid<<1|1)
		}
		return out
	}
	out := make([]uint64, 0, maxN)
	for i := 0; i < maxN; i++ {
		mid := rng.Uint64() & ((1 << uint(free)) - 1)
		out = append(out, hi|mid<<1|1)
	}
	return out
}

func TestOddWeightErrorsDetectedWhenPolyHasX1Factor(t *testing.T) {
	// CRC-16 (x^16+x^15+x^2+1) and CRC-16/CCITT (x^16+x^12+x^5+1) both
	// factor as (x+1)·q(x), so every odd-weight error pattern is
	// detected.  Randomized over positions and weights.
	rng := rand.New(rand.NewPCG(10, 2))
	base := make([]byte, 256)
	for i := range base {
		base[i] = byte(rng.Uint32())
	}
	for _, p := range []Params{CRC16, CRC16CCITT} {
		tab := New(p)
		orig := tab.Checksum(base)
		for trial := 0; trial < 2000; trial++ {
			weight := 1 + 2*rng.IntN(8) // odd: 1,3,...,15
			data := append([]byte{}, base...)
			seen := map[int]bool{}
			flipped := 0
			for flipped < weight {
				bit := rng.IntN(len(base) * 8)
				if seen[bit] {
					continue
				}
				seen[bit] = true
				data[bit/8] ^= 0x80 >> uint(bit%8)
				flipped++
			}
			if tab.Checksum(data) == orig {
				t.Fatalf("%s missed an odd-weight (%d) error", p.Name, weight)
			}
		}
	}
}

func TestCRC32OddWeightCounterexample(t *testing.T) {
	// §2 of the paper claims CRC-32 "will detect all cases where there
	// are an odd number of errors".  The IEEE 802.3 generator has 15
	// terms (odd), so it is NOT divisible by (x+1), and the generator
	// itself is an undetectable error pattern of odd weight.  This test
	// documents that the paper's claim is slightly too strong — it has
	// no bearing on the paper's results, which treat the CRC-32 miss
	// rate as ≈2^-32 on splices.
	tab := New(CRC32)
	base := make([]byte, 16)
	orig := tab.Checksum(base)
	data := append([]byte{}, base...)
	// Error polynomial = generator (x^32 + ... + 1), 33 bits, 15 terms.
	// CRC-32 processes input LSB-first (RefIn), so lay the burst out in
	// stream order: stream bit p lives at data[p/8] bit (p%8).
	for i := 0; i < 33; i++ {
		if 0x104C11DB7&(uint64(1)<<uint(32-i)) != 0 {
			bit := 40 + i
			data[bit/8] ^= 1 << uint(bit%8)
		}
	}
	if got := tab.Checksum(data); got != orig {
		t.Fatalf("error pattern equal to the generator should be undetectable, got %#x vs %#x", got, orig)
	}
	// Confirm the pattern really has odd weight.
	weight := 0
	for _, b := range data {
		for ; b != 0; b &= b - 1 {
			weight++
		}
	}
	if weight%2 == 0 {
		t.Fatalf("counterexample weight %d is not odd", weight)
	}
}

func TestCRC32DoubleBitErrors(t *testing.T) {
	// §2: CRC-32 detects all 2-bit errors less than 2048 bits apart.
	// (The true figure for the 802.3 polynomial is much larger; we test
	// the paper's stated window.)  Sampled positions, all spacings
	// covered in slices.
	rng := rand.New(rand.NewPCG(10, 3))
	tab := New(CRC32)
	base := make([]byte, 2048/8+64)
	for i := range base {
		base[i] = byte(rng.Uint32())
	}
	orig := tab.Checksum(base)
	for spacing := 1; spacing < 2048; spacing += 1 + rng.IntN(3) {
		pos := rng.IntN(len(base)*8 - spacing - 1)
		data := append([]byte{}, base...)
		data[pos/8] ^= 0x80 >> uint(pos%8)
		q := pos + spacing
		data[q/8] ^= 0x80 >> uint(q%8)
		if tab.Checksum(data) == orig {
			t.Fatalf("CRC-32 missed a 2-bit error with spacing %d", spacing)
		}
	}
}

func TestUniformMissRateMatchesWidth(t *testing.T) {
	// For random substitution errors on uniform data, a w-bit CRC
	// misses at ≈2^-w.  Verify the *collision* behaviour for the narrow
	// CRCs by birthday-style sampling: the number of distinct CRC-10
	// values over many random 48-byte cells should cover the whole
	// 1024-value space roughly uniformly.
	rng := rand.New(rand.NewPCG(10, 4))
	tab := New(CRC10)
	counts := make([]int, 1024)
	const samples = 200000
	cell := make([]byte, 48)
	for i := 0; i < samples; i++ {
		for j := range cell {
			cell[j] = byte(rng.Uint32())
		}
		counts[tab.Checksum(cell)]++
	}
	// Chi-square against uniform: expected 195.3 per bucket; the 1023-df
	// statistic should be nowhere near a gross-skew value.  Use a loose
	// bound (3x) to keep the test robust.
	exp := float64(samples) / 1024
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	if chi2 > 3*1024 {
		t.Errorf("CRC-10 over uniform cells looks non-uniform: chi2 = %.0f over 1023 df", chi2)
	}
	for v, c := range counts {
		if c == 0 {
			t.Errorf("CRC-10 value %#x never occurred in %d samples", v, samples)
		}
	}
}
