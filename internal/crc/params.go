package crc

// Catalog of CRC algorithms used by the paper and its substrates.  Poly,
// Init, reflection, XorOut and Check values follow the Rocksoft/catalog
// conventions (CRC RevEng parameter database).
var (
	// CRC32 is the IEEE 802.3 / AAL5 / ISO-HDLC CRC-32: the algorithm
	// AAL5 uses in its CPCS trailer and the one the paper measures
	// against packet splices.  It detects all burst errors shorter than
	// 32 bits and all 2-bit errors less than 2048 bits apart (§2).
	CRC32 = Params{
		Name: "CRC-32", Width: 32, Poly: 0x04C11DB7,
		Init: 0xFFFFFFFF, RefIn: true, RefOut: true, XorOut: 0xFFFFFFFF,
		Check: 0xCBF43926,
	}

	// CRC32C is the Castagnoli CRC-32 (iSCSI, SCTP), included as the
	// strongest common 32-bit alternative.
	CRC32C = Params{
		Name: "CRC-32C", Width: 32, Poly: 0x1EDC6F41,
		Init: 0xFFFFFFFF, RefIn: true, RefOut: true, XorOut: 0xFFFFFFFF,
		Check: 0xE3069283,
	}

	// CRC10 is the ATM OAM CRC-10 (ITU-T I.610), the natural 10-bit CRC
	// to compare against: §7's headline observation is that the 16-bit
	// TCP checksum over real data performs about as well as a 10-bit CRC
	// over uniform data.
	CRC10 = Params{
		Name: "CRC-10", Width: 10, Poly: 0x233,
		Init: 0, RefIn: false, RefOut: false, XorOut: 0,
		Check: 0x199,
	}

	// CRC16 is the "ARC" CRC-16 (ANSI, x^16+x^15+x^2+1).  Its generator
	// contains the factor (x+1), so it detects all odd-weight errors.
	CRC16 = Params{
		Name: "CRC-16", Width: 16, Poly: 0x8005,
		Init: 0, RefIn: true, RefOut: true, XorOut: 0,
		Check: 0xBB3D,
	}

	// CRC16CCITT is the CCITT CRC-16 with 0xFFFF preset
	// (x^16+x^12+x^5+1, also divisible by x+1).
	CRC16CCITT = Params{
		Name: "CRC-16/CCITT", Width: 16, Poly: 0x1021,
		Init: 0xFFFF, RefIn: false, RefOut: false, XorOut: 0,
		Check: 0x29B1,
	}

	// CRC16XMODEM is the zero-preset CCITT polynomial variant.
	CRC16XMODEM = Params{
		Name: "CRC-16/XMODEM", Width: 16, Poly: 0x1021,
		Init: 0, RefIn: false, RefOut: false, XorOut: 0,
		Check: 0x31C3,
	}

	// CRC8HEC is the ATM Header Error Control CRC-8 (ITU-T I.432.1):
	// polynomial x^8+x^2+x+1 with the 0x55 coset XORed into the result
	// to improve cell delineation.
	CRC8HEC = Params{
		Name: "CRC-8/HEC", Width: 8, Poly: 0x07,
		Init: 0, RefIn: false, RefOut: false, XorOut: 0x55,
		Check: 0xA1,
	}

	// CRC8 is the plain SMBus CRC-8 over the same polynomial, without
	// the HEC coset.
	CRC8 = Params{
		Name: "CRC-8", Width: 8, Poly: 0x07,
		Init: 0, RefIn: false, RefOut: false, XorOut: 0,
		Check: 0xF4,
	}

	// CRC64 is the CRC-64/XZ (GO-ISO-reflected family) algorithm,
	// included to let the harness scale the "effective bits" comparison
	// above 32 bits.
	CRC64 = Params{
		Name: "CRC-64/XZ", Width: 64, Poly: 0x42F0E1EBA9EA3693,
		Init: 0xFFFFFFFFFFFFFFFF, RefIn: true, RefOut: true,
		XorOut: 0xFFFFFFFFFFFFFFFF, Check: 0x995DC9BBDF1939FA,
	}

	// The 5G NR polynomials (3GPP TS 38.212 §5.1, discussed in "Some
	// comments about CRC selection for the 5G NR specification").  All
	// are MSB-first, zero preset, zero XorOut — the raw algebraic CRC.

	// CRC24A attaches to NR transport blocks (also LTE; RevEng
	// CRC-24/LTE-A).  gCRC24A(D) = D^24+D^23+D^18+D^17+D^14+D^11+D^10+
	// D^7+D^6+D^5+D^4+D^3+D+1.
	CRC24A = Params{
		Name: "CRC-24/A", Width: 24, Poly: 0x864CFB,
		Init: 0, RefIn: false, RefOut: false, XorOut: 0,
		Check: 0xCDE703,
	}

	// CRC24B attaches to NR code-block segments (RevEng CRC-24/LTE-B).
	// gCRC24B(D) = D^24+D^23+D^6+D^5+D+1.
	CRC24B = Params{
		Name: "CRC-24/B", Width: 24, Poly: 0x800063,
		Init: 0, RefIn: false, RefOut: false, XorOut: 0,
		Check: 0x23EF52,
	}

	// CRC24C is the NR addition for polar-coded downlink control —
	// chosen for distance-4 at control-channel lengths.  gCRC24C(D) =
	// D^24+D^23+D^21+D^20+D^17+D^15+D^13+D^12+D^8+D^4+D^2+D+1.
	CRC24C = Params{
		Name: "CRC-24/C", Width: 24, Poly: 0xB2B117,
		Init: 0, RefIn: false, RefOut: false, XorOut: 0,
		Check: 0xF48279,
	}

	// CRC11NR protects NR uplink control information (polar-coded
	// PUCCH).  gCRC11(D) = D^11+D^10+D^9+D^5+1.
	CRC11NR = Params{
		Name: "CRC-11/NR", Width: 11, Poly: 0x621,
		Init: 0, RefIn: false, RefOut: false, XorOut: 0,
		Check: 0x5CA,
	}

	// CRC6NR is the short NR uplink-control CRC.  gCRC6(D) = D^6+D^5+1.
	CRC6NR = Params{
		Name: "CRC-6/NR", Width: 6, Poly: 0x21,
		Init: 0, RefIn: false, RefOut: false, XorOut: 0,
		Check: 0x15,
	}

	// CRC32K is Koopman's CRC-32K (normal form 0x741B8CD7), selected by
	// exhaustive search for HD=6 payloads an order of magnitude longer
	// than IEEE CRC-32 allows; run with the familiar reflected
	// 0xFFFFFFFF preset/XorOut convention so it drops into the same
	// framing as CRC-32.
	CRC32K = Params{
		Name: "CRC-32K", Width: 32, Poly: 0x741B8CD7,
		Init: 0xFFFFFFFF, RefIn: true, RefOut: true, XorOut: 0xFFFFFFFF,
		Check: 0x2D3DD0AE,
	}

	// CRC32K2 is Koopman's CRC-32K/2 (normal form 0x32583499), the
	// HD=4-to-long-lengths alternative from the same search family.
	CRC32K2 = Params{
		Name: "CRC-32K2", Width: 32, Poly: 0x32583499,
		Init: 0xFFFFFFFF, RefIn: true, RefOut: true, XorOut: 0xFFFFFFFF,
		Check: 0xEEB754CC,
	}
)

// Catalog lists every registered algorithm, for table-driven tests and
// the command-line tools.
func Catalog() []Params {
	return []Params{
		CRC32, CRC32C, CRC10, CRC16, CRC16CCITT, CRC16XMODEM, CRC8HEC, CRC8, CRC64,
		CRC24A, CRC24B, CRC24C, CRC11NR, CRC6NR, CRC32K, CRC32K2,
	}
}

// ByName returns the catalogued Params with the given name and whether
// it exists.
func ByName(name string) (Params, bool) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, true
		}
	}
	return Params{}, false
}

// MakeParams builds an unreflected, zero-preset CRC of arbitrary width
// over the given polynomial — the knob the "effective bits" experiment
// turns to compare the TCP checksum against w-bit CRCs on uniform data.
func MakeParams(width uint8, poly uint64) Params {
	return Params{
		Name:  "CRC-custom",
		Width: width,
		Poly:  poly,
	}
}
