package crc

import "realsum/internal/gf2poly"

// Generator returns the full generator polynomial of p, including the
// implicit x^Width term.
func (p Params) Generator() gf2poly.Poly {
	return gf2poly.FromCRC(p.Poly&p.Mask(), p.Width)
}

// DetectsOddErrors reports whether p detects every odd-weight error
// pattern: true exactly when the generator contains the factor x+1.
// §2 of the paper asserts this for CRC-32; the computation shows the
// assertion is false for the 802.3 polynomial (15 terms, no x+1
// factor) and true for the CRC-16 family and CRC-32C.
func (p Params) DetectsOddErrors() bool {
	return gf2poly.DetectsOddErrors(p.Generator())
}

// Detects2BitErrorsWithin reports whether p detects every 2-bit error
// whose positions differ by at most spacing bits — true when the
// multiplicative order of x modulo the generator exceeds spacing.
// Verifying §2's "all 2-bit errors less than 2048 bits apart" for
// CRC-32 takes 2048 modular multiplications.
func (p Params) Detects2BitErrorsWithin(spacing uint64) bool {
	return gf2poly.Detects2BitErrors(p.Generator(), spacing)
}

// MaxBurstDetected returns the largest burst length (in bits) for
// which detection is unconditional: the width of the CRC.  Any burst
// error of length ≤ Width corresponds to an error polynomial
// x^k·e(x) with deg(e) < Width, which a degree-Width generator with a
// nonzero constant term can never divide.
func (p Params) MaxBurstDetected() int { return int(p.Width) }

// GeneratorIsIrreducible reports whether the generator polynomial is
// irreducible over GF(2).
func (p Params) GeneratorIsIrreducible() bool {
	return gf2poly.IsIrreducible(p.Generator())
}
