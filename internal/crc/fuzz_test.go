package crc

import "testing"

// FuzzCombine checks the combine identity CRC(A‖B) =
// Combine(CRC(A), CRC(B), |B|) for arbitrary splits of arbitrary data,
// across a representative subset of the catalog.
func FuzzCombine(f *testing.F) {
	f.Add([]byte("hello"), []byte("world"))
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0}, []byte{0xFF, 0xFF, 0xFF})
	f.Add(make([]byte, 100), []byte("x"))
	tabs := []*Table{New(CRC32), New(CRC10), New(CRC16CCITT), New(CRC64)}
	f.Fuzz(func(t *testing.T, a, b []byte) {
		whole := append(append([]byte{}, a...), b...)
		for _, tab := range tabs {
			want := tab.Checksum(whole)
			got := tab.Combine(tab.Checksum(a), tab.Checksum(b), len(b))
			if got != want {
				t.Fatalf("%s: Combine %#x != %#x (lenA=%d lenB=%d)",
					tab.Params().Name, got, want, len(a), len(b))
			}
		}
	})
}

// FuzzSlicingEquivalence checks the slicing-by-8 path against the
// scalar loop for arbitrary input.
func FuzzSlicingEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	f.Add([]byte("0123456789abcdef0123456789abcdef!"))
	tabs := []*Table{New(CRC32), New(CRC8HEC), New(CRC64)}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, tab := range tabs {
			if got, want := tab.update(tab.initReg(), data), tab.updateScalar(tab.initReg(), data); got != want {
				t.Fatalf("%s: slicing %#x != scalar %#x (len %d)",
					tab.Params().Name, got, want, len(data))
			}
		}
	})
}
