package crc

import (
	"hash/crc32"
	"math/rand/v2"
	"testing"
)

func TestSlicingMatchesScalarEverywhere(t *testing.T) {
	rng := rand.New(rand.NewPCG(30, 30))
	for _, p := range Catalog() {
		tab := New(p)
		// Every length around the 8-byte and 16-byte boundaries, plus
		// bulk sizes, at every alignment of initial register state.
		for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 23, 24, 48, 100, 1000, 4097} {
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(rng.Uint32())
			}
			reg := tab.initReg()
			if rng.Uint32()&1 == 1 {
				reg = tab.updateScalar(reg, []byte{0xA5, 0x5A, 0x00})
			}
			if got, want := tab.update(reg, data), tab.updateScalar(reg, data); got != want {
				t.Fatalf("%s len %d: slicing %#x != scalar %#x", p.Name, n, got, want)
			}
		}
	}
}

func TestSlicingCRC32AgainstStdlibBulk(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 31))
	tab := New(CRC32)
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(rng.Uint32())
	}
	if got, want := uint32(tab.Checksum(data)), crc32.ChecksumIEEE(data); got != want {
		t.Fatalf("1 MiB: ours %#08x, stdlib %#08x", got, want)
	}
}

func BenchmarkSlicingVsScalar(b *testing.B) {
	tab := New(CRC32)
	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(i * 17)
	}
	b.Run("slicing8", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		reg := tab.initReg()
		for i := 0; i < b.N; i++ {
			reg = tab.update(reg, data)
		}
		benchSink = reg
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		reg := tab.initReg()
		for i := 0; i < b.N; i++ {
			reg = tab.updateScalar(reg, data)
		}
		benchSink = reg
	})
}

var benchSink uint64
