// Package crc implements a generic cyclic-redundancy-check engine over
// GF(2) for any width from 1 to 64 bits, parameterized in the Rocksoft
// model (width, polynomial, initial value, input/output reflection,
// final XOR).  It provides a bitwise reference implementation, a
// table-driven fast path, CRC combination for concatenated blocks, and a
// catalog of the algorithms the paper uses or mentions: CRC-32 (the
// AAL5/IEEE 802.3 polynomial), CRC-10 (the ATM OAM polynomial), the
// CRC-16 family, and the CRC-8 HEC of the ATM cell header.
//
// Bulk input dispatches through an interchangeable kernel layer
// (kernel.go): byte-at-a-time scalar, slicing-by-8, the table-free
// chorba fold and the wide-word nguyen recurrence.  New verifies each
// candidate against the scalar oracle and races the survivors, so
// callers get the fastest correct engine automatically; SetKernel and
// the REALSUM_CRC_KERNEL environment variable pin one for reproducible
// measurement.
//
// The CRC-32 path is verified bit-for-bit against the standard library's
// hash/crc32 and against the published catalog check values.
package crc

import "fmt"

// Params describes a CRC algorithm in the Rocksoft model.
type Params struct {
	// Name identifies the algorithm, e.g. "CRC-32".
	Name string
	// Width is the register size in bits, 1..64.
	Width uint8
	// Poly is the generator polynomial in normal (MSB-first)
	// representation without the implicit x^Width term.
	Poly uint64
	// Init is the initial register value (unreflected convention).
	Init uint64
	// RefIn reflects each input byte before processing.
	RefIn bool
	// RefOut reflects the final register before XorOut.
	RefOut bool
	// XorOut is XORed into the (possibly reflected) register to produce
	// the final CRC.
	XorOut uint64
	// Check is the CRC of the ASCII bytes "123456789", used to validate
	// the implementation against the published catalog (0 if unknown).
	Check uint64
}

func (p Params) String() string { return p.Name }

// Mask returns the low-Width-bits mask for p.
func (p Params) Mask() uint64 {
	if p.Width == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << p.Width) - 1
}

// Reflect reverses the low n bits of v; bits above n must be zero.
func Reflect(v uint64, n uint8) uint64 {
	var r uint64
	for i := uint8(0); i < n; i++ {
		r = r<<1 | v&1
		v >>= 1
	}
	return r
}

// bitwiseUpdate advances an unreflected, right-aligned register over
// data one bit at a time — the transparent reference implementation the
// table-driven path is validated against.  It works for any width ≥ 1.
func (p Params) bitwiseUpdate(reg uint64, data []byte) uint64 {
	mask := p.Mask()
	for _, b := range data {
		if p.RefIn {
			b = byte(Reflect(uint64(b), 8))
		}
		for bit := 7; bit >= 0; bit-- {
			in := uint64(b>>uint(bit)) & 1
			hi := (reg >> (p.Width - 1)) & 1
			reg = (reg << 1) & mask
			if hi^in == 1 {
				reg ^= p.Poly
			}
		}
	}
	return reg
}

// finalize converts a raw unreflected register value into the published
// CRC value (output reflection then final XOR).
func (p Params) finalize(reg uint64) uint64 {
	if p.RefOut {
		reg = Reflect(reg, p.Width)
	}
	return (reg ^ p.XorOut) & p.Mask()
}

// unfinalize inverts finalize.
func (p Params) unfinalize(crc uint64) uint64 {
	reg := (crc ^ p.XorOut) & p.Mask()
	if p.RefOut {
		reg = Reflect(reg, p.Width)
	}
	return reg
}

// BitwiseChecksum computes the CRC of data using the bitwise reference
// algorithm.  Use Table for anything performance-sensitive.
func (p Params) BitwiseChecksum(data []byte) uint64 {
	return p.finalize(p.bitwiseUpdate(p.Init&p.Mask(), data))
}

// Table is a 256-entry table-driven CRC engine for one Params.
//
// For reflected-input algorithms the register is kept in reflected form
// (the usual right-shift formulation); otherwise the register is kept
// left-aligned in a 64-bit word so any width from 1 to 64 shares one
// code path.
type Table struct {
	params Params
	tab    [256]uint64
	shift  uint8 // 64 − Width, for the left-aligned (non-reflected) path
	slice  *slicing
	sp     *sparseKernel // fold geometry, nil without a catalogued sparse multiple
	kern   kernelID      // selected bulk engine (see kernel.go)
}

// New builds the lookup table for p.  It panics if p.Width is outside
// 1..64 or if p.RefIn ≠ p.RefOut (no catalogued algorithm mixes input
// and output reflection, and the engine does not support it).
func New(p Params) *Table {
	if p.Width < 1 || p.Width > 64 {
		panic(fmt.Sprintf("crc: invalid width %d for %s", p.Width, p.Name))
	}
	if p.RefIn != p.RefOut {
		panic(fmt.Sprintf("crc: %s mixes RefIn and RefOut; unsupported", p.Name))
	}
	t := &Table{params: p, shift: 64 - p.Width}
	if p.RefIn {
		rpoly := Reflect(p.Poly&p.Mask(), p.Width)
		for b := 0; b < 256; b++ {
			reg := uint64(b)
			for i := 0; i < 8; i++ {
				if reg&1 != 0 {
					reg = reg>>1 ^ rpoly
				} else {
					reg >>= 1
				}
			}
			t.tab[b] = reg
		}
	} else {
		lpoly := (p.Poly & p.Mask()) << t.shift
		for b := 0; b < 256; b++ {
			reg := uint64(b) << 56
			for i := 0; i < 8; i++ {
				if reg&(1<<63) != 0 {
					reg = reg<<1 ^ lpoly
				} else {
					reg <<= 1
				}
			}
			t.tab[b] = reg
		}
	}
	t.slice = t.buildSlicing()
	t.sp = sparseFor(p)
	t.kern = t.selectKernel()
	return t
}

// TryNew is New with errors instead of panics, for callers (census
// candidate slates, fuzzers) that construct tables from untrusted or
// generated Params.
func TryNew(p Params) (t *Table, err error) {
	if p.Width < 1 || p.Width > 64 {
		return nil, fmt.Errorf("crc: invalid width %d for %q", p.Width, p.Name)
	}
	if p.RefIn != p.RefOut {
		return nil, fmt.Errorf("crc: %q mixes RefIn and RefOut; unsupported", p.Name)
	}
	if p.Poly&^p.Mask() != 0 {
		return nil, fmt.Errorf("crc: %q poly %#x exceeds width %d", p.Name, p.Poly, p.Width)
	}
	if p.Poly&1 == 0 {
		return nil, fmt.Errorf("crc: %q poly %#x has no +1 term; register bits would be unreachable", p.Name, p.Poly)
	}
	return New(p), nil
}

// Params returns the algorithm description the table was built from.
func (t *Table) Params() Params { return t.params }

// update advances a raw register (in the table's internal alignment)
// through the selected bulk kernel; inputs below a kernel's reach fall
// back to slicing-by-8, and sub-word tails to the scalar loop.
func (t *Table) update(reg uint64, data []byte) uint64 {
	return t.kernelUpdate(t.kern, reg, data)
}

// updateScalar is the one-byte-per-step reference loop.
func (t *Table) updateScalar(reg uint64, data []byte) uint64 {
	tab := &t.tab
	if t.params.RefIn {
		for _, b := range data {
			reg = tab[byte(reg)^b] ^ reg>>8
		}
		return reg
	}
	for _, b := range data {
		reg = tab[byte(reg>>56)^b] ^ reg<<8
	}
	return reg
}

// initReg returns the initial raw register in internal alignment.
func (t *Table) initReg() uint64 {
	p := t.params
	if p.RefIn {
		return Reflect(p.Init&p.Mask(), p.Width)
	}
	return (p.Init & p.Mask()) << t.shift
}

// finalizeReg converts an internal raw register to the published value.
func (t *Table) finalizeReg(reg uint64) uint64 {
	p := t.params
	if p.RefIn {
		// Register is already reflected; RefOut is true by construction.
		return (reg ^ p.XorOut) & p.Mask()
	}
	return (reg>>t.shift ^ p.XorOut) & p.Mask()
}

// unfinalizeReg inverts finalizeReg.
func (t *Table) unfinalizeReg(crc uint64) uint64 {
	p := t.params
	if p.RefIn {
		return (crc ^ p.XorOut) & p.Mask()
	}
	return ((crc ^ p.XorOut) & p.Mask()) << t.shift
}

// Checksum computes the CRC of data.
func (t *Table) Checksum(data []byte) uint64 {
	return t.finalizeReg(t.update(t.initReg(), data))
}

// Update extends a previously computed CRC with more data, as if the
// concatenation had been checksummed in one call.
func (t *Table) Update(crc uint64, data []byte) uint64 {
	return t.finalizeReg(t.update(t.unfinalizeReg(crc), data))
}

// RawInit returns the initial raw register state, for callers (like the
// splice enumerator) that thread a register through branching
// computations as a plain value.
func (t *Table) RawInit() uint64 { return t.initReg() }

// RawUpdate advances a raw register over data.
func (t *Table) RawUpdate(reg uint64, data []byte) uint64 { return t.update(reg, data) }

// RawCRC converts a raw register into the published CRC value.
func (t *Table) RawCRC(reg uint64) uint64 { return t.finalizeReg(reg) }

// Digest is a streaming CRC accumulator.
type Digest struct {
	t   *Table
	reg uint64
	n   int
}

// NewDigest returns a streaming digest over t's algorithm.
func (t *Table) NewDigest() *Digest { return &Digest{t: t, reg: t.initReg()} }

// Reset restores the digest to its initial state.
func (d *Digest) Reset() { d.reg, d.n = d.t.initReg(), 0 }

// Write absorbs data.  It never fails.
func (d *Digest) Write(data []byte) (int, error) {
	d.reg = d.t.update(d.reg, data)
	d.n += len(data)
	return len(data), nil
}

// CRC returns the CRC of everything written so far.
func (d *Digest) CRC() uint64 { return d.t.finalizeReg(d.reg) }

// Len returns the number of bytes written.
func (d *Digest) Len() int { return d.n }
