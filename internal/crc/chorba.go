package crc

import "encoding/binary"

// Chorba-style table-free CRC kernel (after "Chorba: A novel CRC32
// implementation", arXiv:2412.16398): instead of looking the register
// up in sliced tables, the message itself is used as the accumulator.
// Each 64-bit word is deleted from the stream and XORed into a handful
// of strictly-later positions given by a sparse multiple of the
// generator (see sparse.go) — a pure shift-fold with no table traffic
// in the bulk loop.
//
// The fold runs in two stages over a scratch copy of the input.  The
// bulk stage reads the exponent list at word granularity (the Frobenius
// lift), so every load and store is a word-aligned 64-bit operation;
// its reach is span words.  The last ≈ span·8 bytes, too short for the
// word identity, are reduced by the same fold at byte granularity
// (reach span bytes), and the surviving ≈ span-byte tail goes through
// the byte-at-a-time table.
//
// The incoming register is folded into the stream head first (the
// zero-padding trick the slicing path also relies on: processing 8
// bytes from register R equals processing those bytes XOR R from a
// zero register), so the whole fold runs over the homogeneous part.
func (t *Table) chorba(reg uint64, data []byte) uint64 {
	sp := t.sp
	bp := sp.bufPool.Get().(*[]byte)
	buf := append((*bp)[:0], data...)
	*bp = buf
	t.xorHead(buf, reg)
	i := sp.foldWords(buf)
	i += sp.fold(buf[i:])
	reg = t.updateScalar(0, buf[i:])
	sp.bufPool.Put(bp)
	return reg
}

// xorHead folds a raw register into the first 8 bytes of buf, in the
// byte placement the engine's alignment dictates: a reflected register
// occupies the low bytes (little-endian), a left-aligned one the high
// bytes (big-endian) — exactly the v = reg ^ load(data) identity the
// slicing path uses.
func (t *Table) xorHead(buf []byte, reg uint64) {
	if t.params.RefIn {
		binary.LittleEndian.PutUint64(buf, binary.LittleEndian.Uint64(buf)^reg)
	} else {
		binary.BigEndian.PutUint64(buf, binary.BigEndian.Uint64(buf)^reg)
	}
}

// xor64 XORs w into 8 bytes of b.  Loading and storing little-endian
// makes this a plain byte-wise XOR regardless of host endianness.
func xor64(b []byte, w uint64) {
	binary.LittleEndian.PutUint64(b, binary.LittleEndian.Uint64(b)^w)
}

// foldWords applies the sparse-multiple rewrite at word granularity —
// offsets of offs[j]·8 bytes, so consuming words at multiples of 8
// keeps every access word-aligned — and returns the index where the
// word identity can no longer reach.  Bytes before the returned index
// have been consumed: their CRC contribution now lives entirely in the
// bytes after it.  Two words per iteration; the smallest word offset
// (≥ 65 words for the catalogued lists) guarantees the second read is
// untouched by the first word's stores.
func (sp *sparseKernel) foldWords(buf []byte) int {
	n := len(buf)
	i := 0
	switch len(sp.offs) {
	case 4:
		o0, o1, o2, o3 := sp.offs[0]*8, sp.offs[1]*8, sp.offs[2]*8, sp.offs[3]*8
		for ; i+o3+16 <= n; i += 16 {
			w := binary.LittleEndian.Uint64(buf[i:])
			xor64(buf[i+o0:], w)
			xor64(buf[i+o1:], w)
			xor64(buf[i+o2:], w)
			xor64(buf[i+o3:], w)
			w = binary.LittleEndian.Uint64(buf[i+8:])
			xor64(buf[i+8+o0:], w)
			xor64(buf[i+8+o1:], w)
			xor64(buf[i+8+o2:], w)
			xor64(buf[i+8+o3:], w)
		}
		for ; i+o3+8 <= n; i += 8 {
			w := binary.LittleEndian.Uint64(buf[i:])
			xor64(buf[i+o0:], w)
			xor64(buf[i+o1:], w)
			xor64(buf[i+o2:], w)
			xor64(buf[i+o3:], w)
		}
	case 5:
		o0, o1, o2, o3, o4 := sp.offs[0]*8, sp.offs[1]*8, sp.offs[2]*8, sp.offs[3]*8, sp.offs[4]*8
		for ; i+o4+16 <= n; i += 16 {
			w := binary.LittleEndian.Uint64(buf[i:])
			xor64(buf[i+o0:], w)
			xor64(buf[i+o1:], w)
			xor64(buf[i+o2:], w)
			xor64(buf[i+o3:], w)
			xor64(buf[i+o4:], w)
			w = binary.LittleEndian.Uint64(buf[i+8:])
			xor64(buf[i+8+o0:], w)
			xor64(buf[i+8+o1:], w)
			xor64(buf[i+8+o2:], w)
			xor64(buf[i+8+o3:], w)
			xor64(buf[i+8+o4:], w)
		}
		for ; i+o4+8 <= n; i += 8 {
			w := binary.LittleEndian.Uint64(buf[i:])
			xor64(buf[i+o0:], w)
			xor64(buf[i+o1:], w)
			xor64(buf[i+o2:], w)
			xor64(buf[i+o3:], w)
			xor64(buf[i+o4:], w)
		}
	default:
		for ; i+sp.span*8+8 <= n; i += 8 {
			w := binary.LittleEndian.Uint64(buf[i:])
			for _, o := range sp.offs {
				xor64(buf[i+o*8:], w)
			}
		}
	}
	return i
}

// fold is the byte-granularity twin of foldWords: the same rewrite with
// offsets in bytes (reach span bytes), used to shrink the word stage's
// residue before the scalar tail.  It returns the index where the
// unfoldable tail begins.  The weight-5 and weight-6 shapes are
// unrolled; the generic loop keeps any future exponent list correct.
func (sp *sparseKernel) fold(buf []byte) int {
	n := len(buf)
	i := 0
	switch len(sp.offs) {
	case 4:
		o0, o1, o2, o3 := sp.offs[0], sp.offs[1], sp.offs[2], sp.offs[3]
		for ; i+o3+8 <= n; i += 8 {
			w := binary.LittleEndian.Uint64(buf[i:])
			xor64(buf[i+o0:], w)
			xor64(buf[i+o1:], w)
			xor64(buf[i+o2:], w)
			xor64(buf[i+o3:], w)
		}
	case 5:
		o0, o1, o2, o3, o4 := sp.offs[0], sp.offs[1], sp.offs[2], sp.offs[3], sp.offs[4]
		for ; i+o4+8 <= n; i += 8 {
			w := binary.LittleEndian.Uint64(buf[i:])
			xor64(buf[i+o0:], w)
			xor64(buf[i+o1:], w)
			xor64(buf[i+o2:], w)
			xor64(buf[i+o3:], w)
			xor64(buf[i+o4:], w)
		}
	default:
		for ; i+sp.span+8 <= n; i += 8 {
			w := binary.LittleEndian.Uint64(buf[i:])
			for _, o := range sp.offs {
				xor64(buf[i+o:], w)
			}
		}
	}
	return i
}
