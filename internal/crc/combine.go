package crc

// Combine computes the CRC of the concatenation A‖B given only
// crcA = CRC(A), crcB = CRC(B) and len(B), in O(log len(B)) time.
//
// The register evolution of a CRC is affine over GF(2): processing n
// zero bytes multiplies the register state by x^(8n) modulo the
// generator.  Writing R₀(M) for the register after message M from a
// zero register and I for the initial register,
//
//	reg(A‖B) = shift(reg(A) ⊕ I, 8·len(B)) ⊕ reg(B)
//
// which is what Combine evaluates after stripping the output
// transformation from both inputs.  This is the width-generic form of
// zlib's crc32_combine.
func (t *Table) Combine(crcA, crcB uint64, lenB int) uint64 {
	if lenB < 0 {
		panic("crc: Combine with negative length")
	}
	regA := t.unfinalizeReg(crcA)
	regB := t.unfinalizeReg(crcB)
	reg := t.shiftReg(regA^t.initReg(), uint64(lenB)*8) ^ regB
	return t.finalizeReg(reg)
}

// Zeroes returns the CRC obtained by extending crc with n zero bytes —
// useful on its own for length-extension analysis.
func (t *Table) Zeroes(crc uint64, n int) uint64 {
	if n < 0 {
		panic("crc: Zeroes with negative length")
	}
	// Extending the *message* with zero bytes is exactly update() with
	// zeros; in the linear domain that is an affine map.  Reuse Combine
	// with an empty B: reg' = shift(reg ⊕ I, 8n) ⊕ regEmptyFromInit,
	// where regEmptyFromInit = shift(I, 8n).
	reg := t.unfinalizeReg(crc)
	reg = t.shiftReg(reg^t.initReg(), uint64(n)*8) ^ t.shiftReg(t.initReg(), uint64(n)*8)
	return t.finalizeReg(reg)
}

// matrix is a linear operator on the 64-bit register state: column i is
// the image of the unit vector 1<<i.
type matrix [64]uint64

// times applies m to vector v.
func (m *matrix) times(v uint64) uint64 {
	var r uint64
	for i := 0; v != 0; i, v = i+1, v>>1 {
		if v&1 != 0 {
			r ^= m[i]
		}
	}
	return r
}

// square sets dst = m·m.
func (m *matrix) square(dst *matrix) {
	for i := 0; i < 64; i++ {
		dst[i] = m.times(m[i])
	}
}

// shiftOneBit builds the operator that advances the raw register by one
// zero input bit, in the table's internal register alignment.
func (t *Table) shiftOneBit() matrix {
	var m matrix
	p := t.params
	if p.RefIn {
		// Reflected register: reg' = reg>>1, XOR reflected poly if the
		// low bit was set.
		rpoly := Reflect(p.Poly&p.Mask(), p.Width)
		m[0] = rpoly
		for i := 1; i < 64; i++ {
			m[i] = 1 << (i - 1)
		}
		return m
	}
	// Left-aligned register: reg' = reg<<1, XOR left-aligned poly if the
	// top bit was set.
	lpoly := (p.Poly & p.Mask()) << t.shift
	for i := 0; i < 63; i++ {
		m[i] = 1 << (i + 1)
	}
	m[63] = lpoly
	return m
}

// shiftReg multiplies the raw register state by x^nbits modulo the
// generator, via square-and-multiply over the one-bit shift operator.
func (t *Table) shiftReg(reg uint64, nbits uint64) uint64 {
	if nbits == 0 || reg == 0 {
		return reg
	}
	even := t.shiftOneBit() // operator for 2^0 bits... squared below
	var odd matrix
	// Walk the bits of nbits, squaring the operator each step and
	// applying it when the corresponding bit is set.
	cur, next := &even, &odd
	for {
		if nbits&1 != 0 {
			reg = cur.times(reg)
		}
		nbits >>= 1
		if nbits == 0 {
			return reg
		}
		cur.square(next)
		cur, next = next, cur
	}
}
