//go:build !race

package crc

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
