package crc_test

import (
	"fmt"

	"realsum/internal/crc"
)

// One-shot CRC computation over the catalogued algorithms.
func ExampleTable_Checksum() {
	data := []byte("123456789")
	for _, p := range []crc.Params{crc.CRC32, crc.CRC10, crc.CRC8HEC} {
		fmt.Printf("%-9s %#x\n", p.Name, crc.New(p).Checksum(data))
	}
	// Output:
	// CRC-32    0xcbf43926
	// CRC-10    0x199
	// CRC-8/HEC 0xa1
}

// Combining CRCs of two buffers without touching the bytes again.
func ExampleTable_Combine() {
	t := crc.New(crc.CRC32)
	a, b := []byte("hello, "), []byte("world")
	combined := t.Combine(t.Checksum(a), t.Checksum(b), len(b))
	fmt.Printf("%#08x == %#08x\n", combined, t.Checksum([]byte("hello, world")))
	// Output:
	// 0xffab723a == 0xffab723a
}

// Computing, rather than quoting, an algorithm's error-detection
// guarantees.
func ExampleParams_DetectsOddErrors() {
	fmt.Println("CRC-32: ", crc.CRC32.DetectsOddErrors())
	fmt.Println("CRC-32C:", crc.CRC32C.DetectsOddErrors())
	fmt.Println("CRC-16: ", crc.CRC16.DetectsOddErrors())
	// Output:
	// CRC-32:  false
	// CRC-32C: true
	// CRC-16:  true
}
