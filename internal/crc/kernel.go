package crc

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// Kernel racing: every Table carries one of four interchangeable bulk
// engines — the byte-at-a-time scalar loop (the oracle), slicing-by-8,
// the table-free chorba fold and the wide-word nguyen recurrence.  New
// differentially verifies each candidate against the scalar engine on
// a pinned vector set and then races the verified ones on bulk input,
// so every consumer of a Table (splice enumeration, sim.Collect,
// netsim trials) gets the fastest correct kernel with zero call-site
// changes.  Selection is cached per Params and overridable through the
// REALSUM_CRC_KERNEL environment variable or Table.SetKernel (the
// -kernel flag on cmd/paper and cmd/cksum) for reproducible runs.

// kernelID names one bulk engine.  The zero value is slicing-by-8, the
// pre-kernel-layer default, so a zero Table behaves as before.
type kernelID uint8

const (
	kernelSlicing8 kernelID = iota
	kernelScalar
	kernelChorba
	kernelNguyen
	numKernels
)

var kernelNames = [numKernels]string{"slicing8", "scalar", "chorba", "nguyen"}

// KernelEnv is the environment variable that forces a kernel by name
// for every subsequently built Table ("auto" or empty restores racing;
// a kernel unavailable for some parameterization falls back to
// slicing-by-8 there).
const KernelEnv = "REALSUM_CRC_KERNEL"

// KernelNames lists every kernel the engine knows, selected or not.
func KernelNames() []string { return append([]string(nil), kernelNames[:]...) }

func kernelByName(name string) (kernelID, bool) {
	for id, n := range kernelNames {
		if n == name {
			return kernelID(id), true
		}
	}
	return 0, false
}

// Kernel returns the name of the bulk engine this table dispatches to.
func (t *Table) Kernel() string { return kernelNames[t.kern] }

// Kernels returns the kernels available for this table's
// parameterization: always scalar and slicing8, plus chorba and nguyen
// when a sparse multiple of the generator is catalogued.
func (t *Table) Kernels() []string {
	out := []string{}
	for _, k := range t.availableKernels() {
		out = append(out, kernelNames[k])
	}
	return out
}

func (t *Table) availableKernels() []kernelID {
	ks := []kernelID{kernelSlicing8, kernelScalar}
	if t.sp != nil {
		ks = append(ks, kernelChorba, kernelNguyen)
	}
	return ks
}

// SetKernel forces the table onto the named kernel after differentially
// verifying it against the scalar engine on the pinned vectors; "auto"
// re-runs verification and racing.  It errors on unknown names, on
// kernels the parameterization does not support, and on verification
// mismatch.  Reconfigure before sharing the table across goroutines:
// the kernel field itself is written unsynchronized.
func (t *Table) SetKernel(name string) error {
	if name == "auto" || name == "" {
		t.kern = t.selectKernel()
		return nil
	}
	k, ok := kernelByName(name)
	if !ok {
		return fmt.Errorf("crc: unknown kernel %q (known: %v)", name, KernelNames())
	}
	if (k == kernelChorba || k == kernelNguyen) && t.sp == nil {
		return fmt.Errorf("crc: kernel %q unavailable for %s (no sparse multiple catalogued)", name, t.params.Name)
	}
	if err := t.VerifyKernel(name); err != nil {
		return err
	}
	t.kern = k
	return nil
}

// VerifyKernel differentially checks the named kernel against the
// scalar oracle on the pinned vector set (all 8 alignments of the bulk
// loop, lengths from 0 through 64 KiB including the fold-reach
// boundaries, two register states) and returns the first mismatch.
func (t *Table) VerifyKernel(name string) error {
	k, ok := kernelByName(name)
	if !ok {
		return fmt.Errorf("crc: unknown kernel %q", name)
	}
	return t.verifyKernel(k)
}

// kernelUpdate advances a raw register over data with a specific
// kernel.  The chorba and nguyen engines hand inputs below their
// minimum reach to the slicing path, which in turn hands sub-word
// tails to the scalar loop — the dispatch every length from 0 up must
// survive (see TestKernelShortInputs).
func (t *Table) kernelUpdate(k kernelID, reg uint64, data []byte) uint64 {
	switch k {
	case kernelScalar:
		return t.updateScalar(reg, data)
	case kernelChorba:
		if len(data) >= t.sp.bulkMin {
			return t.chorba(reg, data)
		}
	case kernelNguyen:
		if len(data) >= t.sp.bulkMin {
			return t.nguyen(reg, data)
		}
	}
	if len(data) >= 16 {
		return t.updateSlicing(reg, data)
	}
	return t.updateScalar(reg, data)
}

// ---------------------------------------------------------------------
// Pinned verification vectors.

// pinnedBuf is 64 KiB + 64 of fixed splitmix64 output: every
// verification vector and the racing input are slices of it, so the
// oracle comparison is reproducible across runs and machines.
var pinnedBuf = sync.OnceValue(func() []byte {
	b := make([]byte, 64<<10+64)
	s := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < len(b); i += 8 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		z ^= z >> 31
		for j := 0; j < 8; j++ {
			b[i+j] = byte(z >> (8 * j))
		}
	}
	return b
})

// pinnedLengths covers the dispatch seams: every sub-word tail 0–9,
// the scalar/slicing boundary at 16, packet-ish sizes, the fold
// kernels' minimum-reach boundary plus the word/byte stage hand-off
// inside them, and full 64 KiB bulk.
func (t *Table) pinnedLengths() []int {
	ls := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 255, 256, 1500}
	if t.sp != nil {
		ls = append(ls,
			t.sp.bulkMin-1, t.sp.bulkMin, t.sp.bulkMin+7, t.sp.bulkMin+8,
			t.sp.bulkMin+15, t.sp.bulkMin+16, t.sp.bulkMin+21, t.sp.bulkMin+64)
	}
	ls = append(ls, 4096, 64<<10)
	return ls
}

func (t *Table) verifyKernel(k kernelID) error {
	buf := pinnedBuf()
	regs := [2]uint64{t.initReg(), t.updateScalar(t.initReg(), buf[:17])}
	for i, n := range t.pinnedLengths() {
		off := i & 7 // walk the bulk loop through all 8 alignments
		data := buf[off : off+n]
		for _, reg := range regs {
			want := t.updateScalar(reg, data)
			if got := t.kernelUpdate(k, reg, data); got != want {
				return fmt.Errorf("crc: kernel %s diverges from scalar oracle on %s (len=%d align=%d reg=%#x: got %#x want %#x)",
					kernelNames[k], t.params.Name, n, off, reg, got, want)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Selection: verify, then race.

// selCache memoizes auto-selection per Params so table-heavy callers
// (tests, the effective-bits polynomial sweeps) race each
// parameterization at most once per process.
var selCache sync.Map // Params -> kernelID

// raceSink keeps the racing loop's checksums live.
var raceSink uint64

func (t *Table) selectKernel() kernelID {
	if name := os.Getenv(KernelEnv); name != "" && name != "auto" {
		k, ok := kernelByName(name)
		if !ok {
			panic(fmt.Sprintf("crc: %s=%q names no kernel (known: %v)", KernelEnv, name, KernelNames()))
		}
		if (k == kernelChorba || k == kernelNguyen) && t.sp == nil {
			return kernelSlicing8
		}
		if err := t.verifyKernel(k); err != nil {
			panic(err)
		}
		return k
	}
	if t.sp == nil {
		// Without a sparse multiple the only candidates are scalar and
		// slicing-by-8; slicing dominates on bulk, and racing hundreds
		// of custom-polynomial tables would cost more than it returns.
		return kernelSlicing8
	}
	if k, ok := selCache.Load(t.params); ok {
		return k.(kernelID)
	}
	var verified []kernelID
	for _, k := range t.availableKernels() {
		if t.verifyKernel(k) == nil {
			verified = append(verified, k)
		}
	}
	best := t.raceKernels(verified)
	selCache.Store(t.params, best)
	return best
}

// raceKernels times each verified candidate on the pinned 64 KiB bulk
// buffer and returns the fastest.  Rounds are interleaved across the
// candidates — each round times every kernel once, and a candidate's
// score is its minimum over nine rounds — so a transient stall (this
// is tuned for noisy shared-CPU containers) penalizes whoever it hits
// rather than whoever ran last.  Earlier candidates win ties, so the
// slicing default survives a dead heat.
func (t *Table) raceKernels(cands []kernelID) kernelID {
	if len(cands) == 0 {
		return kernelScalar
	}
	buf := pinnedBuf()[:64<<10]
	reg := t.initReg()
	minT := make([]time.Duration, len(cands))
	for i, k := range cands {
		minT[i] = time.Duration(1 << 62)
		raceSink ^= t.kernelUpdate(k, reg, buf) // warm pools and caches
	}
	for round := 0; round < 9; round++ {
		for i, k := range cands {
			start := time.Now()
			raceSink ^= t.kernelUpdate(k, reg, buf)
			if d := time.Since(start); d < minT[i] {
				minT[i] = d
			}
		}
	}
	best := 0
	for i := range cands {
		if minT[i] < minT[best] {
			best = i
		}
	}
	return cands[best]
}
