package crc

import (
	"math/rand/v2"
	"testing"
)

// affineParams covers both register alignments (reflected and
// left-aligned) and a spread of widths.
var affineParams = []Params{CRC32, CRC32C, CRC10, CRC16, CRC16CCITT, CRC16XMODEM, CRC8HEC, CRC64}

func TestRawShiftMatchesZeroUpdate(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	lens := []int{0, 1, 2, 7, 8, 44, 48, 511, 512, 513, 1000, 4096}
	for _, p := range affineParams {
		tab := New(p)
		reg := tab.RawInit()
		for _, n := range lens {
			zeros := make([]byte, n)
			if got, want := tab.RawShift(reg, n), tab.RawUpdate(reg, zeros); got != want {
				t.Errorf("%s: RawShift(init, %d) = %#x, want %#x", p.Name, n, got, want)
			}
			// Also from a data-derived register.
			msg := make([]byte, 37)
			for i := range msg {
				msg[i] = byte(rng.Uint32())
			}
			r2 := tab.RawUpdate(reg, msg)
			if got, want := tab.RawShift(r2, n), tab.RawUpdate(r2, zeros); got != want {
				t.Errorf("%s: RawShift(reg, %d) = %#x, want %#x", p.Name, n, got, want)
			}
		}
	}
}

func TestRawShiftCrossoverAgrees(t *testing.T) {
	// The table loop below the crossover and the square-and-multiply
	// operator above it must implement the same map.
	for _, p := range []Params{CRC32, CRC16XMODEM} {
		tab := New(p)
		reg := tab.RawUpdate(tab.RawInit(), []byte("crossover probe"))
		n := rawShiftCrossover + 13
		want := tab.RawUpdate(reg, make([]byte, n))
		if got := tab.RawShift(reg, n); got != want {
			t.Errorf("%s: RawShift above crossover = %#x, want %#x", p.Name, got, want)
		}
	}
}

func TestRawFromCRCInvertsRawCRC(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for _, p := range affineParams {
		tab := New(p)
		msg := make([]byte, 64)
		for trial := 0; trial < 8; trial++ {
			for i := range msg {
				msg[i] = byte(rng.Uint32())
			}
			reg := tab.RawUpdate(tab.RawInit(), msg)
			crc := tab.RawCRC(reg)
			if back := tab.RawFromCRC(crc); back != reg {
				t.Errorf("%s: RawFromCRC(RawCRC(%#x)) = %#x", p.Name, reg, back)
			}
			if crc != tab.Checksum(msg) {
				t.Errorf("%s: raw pipeline disagrees with Checksum", p.Name)
			}
		}
	}
}

// TestSlotContribsDecomposition is the identity the splice fast path
// rests on: base ⊕ Σ contrib[slot] equals the register of the whole
// message, for every algorithm and assorted geometries.
func TestSlotContribsDecomposition(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	type geom struct{ slots, stride, tail int }
	geoms := []geom{
		{1, 48, 44}, {6, 48, 44}, {3, 48, 0}, {5, 17, 9}, {2, 48, 48},
	}
	for _, p := range affineParams {
		tab := New(p)
		for _, g := range geoms {
			total := g.slots*g.stride + g.tail
			msg := make([]byte, total)
			for i := range msg {
				msg[i] = byte(rng.Uint32())
			}
			base := tab.RawShift(tab.RawInit(), total)
			if g.tail > 0 {
				base ^= tab.RawUpdate(0, msg[g.slots*g.stride:])
			}
			acc := base
			contrib := make([]uint64, g.slots)
			for s := 0; s < g.slots; s++ {
				cell := msg[s*g.stride : s*g.stride+g.stride]
				tab.SlotContribs(contrib, cell, g.stride, g.tail+(0)*g.stride)
				// SlotContribs fills every slot's contribution for this
				// cell; pick the one where the cell actually sits.
				acc ^= contrib[s]
			}
			want := tab.RawUpdate(tab.RawInit(), msg)
			if acc != want {
				t.Errorf("%s: geom %+v: affine register %#x, want %#x", p.Name, g, acc, want)
			}
			if tab.RawCRC(acc) != tab.Checksum(msg) {
				t.Errorf("%s: geom %+v: finalized CRC mismatch", p.Name, g)
			}
		}
	}
}

// TestSlotContribsAgainstShiftReg pins each contribution to its
// first-principles definition via the existing combine operator.
func TestSlotContribsAgainstShiftReg(t *testing.T) {
	tab := New(CRC32)
	cell := []byte("forty-eight bytes of cell payload, more or less!")[:48]
	const slots, stride, tail = 6, 48, 44
	var got [slots]uint64
	tab.SlotContribs(got[:], cell, stride, tail)
	for s := 0; s < slots; s++ {
		after := (slots-1-s)*stride + tail
		want := tab.shiftReg(tab.RawUpdate(0, cell), uint64(after)*8)
		if got[s] != want {
			t.Errorf("slot %d: contrib %#x, want %#x", s, got[s], want)
		}
	}
}

func BenchmarkSlotContribs(b *testing.B) {
	tab := New(CRC32)
	cell := make([]byte, 48)
	for i := range cell {
		cell[i] = byte(i * 7)
	}
	var dst [6]uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.SlotContribs(dst[:], cell, 48, 44)
	}
}
