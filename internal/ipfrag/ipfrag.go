// Package ipfrag implements IPv4 fragmentation and reassembly, plus the
// fragment-substitution error model the paper's abstract points at:
// "for fragmentation-and-reassembly error models, the checksum
// contribution of each fragment [is], in effect, coloured by the
// fragment's offset in the splice."
//
// The model here is a buggy reassembler (or an IP-ID collision) that
// stitches a packet together from fragments of two adjacent packets.
// Because IP fragment offsets pin each fragment to its byte position,
// the substituted data lands at the *same* offset it came from — unlike
// AAL5 splices, where dropped cells shift every later cell.  The
// coloring theory therefore predicts that Fletcher's positional term
// buys nothing against same-offset fragment swaps: its failure
// condition degenerates to the same equal-sums condition as the TCP
// checksum.  The FragSwap experiment confirms exactly that.
package ipfrag

import (
	"bytes"
	"errors"

	"realsum/internal/inet"
	"realsum/internal/tcpip"
)

// Errors from fragmentation and reassembly.
var (
	ErrShortPacket   = errors.New("ipfrag: packet shorter than an IPv4 header")
	ErrBadMTU        = errors.New("ipfrag: MTU cannot carry a header and 8 payload bytes")
	ErrNoFragments   = errors.New("ipfrag: nothing to reassemble")
	ErrMixedID       = errors.New("ipfrag: fragments from different datagrams")
	ErrGap           = errors.New("ipfrag: fragment offsets not contiguous")
	ErrNoLast        = errors.New("ipfrag: missing final fragment")
	ErrBadFragHeader = errors.New("ipfrag: invalid fragment header")
)

// Fragment splits a complete IPv4 packet into fragments that fit mtu
// bytes each.  Payload splits on 8-byte boundaries as IPv4 requires;
// every fragment carries a copy of the header with its offset, MF flag,
// length and header checksum set.
func Fragment(pkt []byte, mtu int) ([][]byte, error) {
	if len(pkt) < tcpip.IPv4HeaderLen {
		return nil, ErrShortPacket
	}
	maxData := (mtu - tcpip.IPv4HeaderLen) &^ 7
	if maxData < 8 {
		return nil, ErrBadMTU
	}
	payload := pkt[tcpip.IPv4HeaderLen:]
	if len(payload) <= maxData {
		out := append([]byte(nil), pkt...)
		return [][]byte{out}, nil
	}
	var frags [][]byte
	for off := 0; off < len(payload); off += maxData {
		end := off + maxData
		if end > len(payload) {
			end = len(payload)
		}
		frag := make([]byte, tcpip.IPv4HeaderLen+end-off)
		copy(frag, pkt[:tcpip.IPv4HeaderLen])
		copy(frag[tcpip.IPv4HeaderLen:], payload[off:end])

		var h tcpip.IPv4Header
		if err := h.DecodeFromBytes(frag); err != nil {
			return nil, err
		}
		h.TotalLength = uint16(len(frag))
		h.FragOffset = uint16(off / 8)
		h.Flags &^= 1 // clear MF
		if end < len(payload) {
			h.Flags |= 1 // more fragments
		}
		h.ComputeChecksum()
		h.SerializeTo(frag)
		frags = append(frags, frag)
	}
	return frags, nil
}

// fragMeta decodes the reassembly-relevant fields of one fragment.
type fragMeta struct {
	h    tcpip.IPv4Header
	data []byte
}

// Reassemble reconstructs the original packet from its fragments (any
// order).  It enforces the IPv4 invariants: one datagram identity,
// contiguous offsets from zero, exactly one final fragment, and valid
// per-fragment header checksums.
func Reassemble(frags [][]byte) ([]byte, error) {
	if len(frags) == 0 {
		return nil, ErrNoFragments
	}
	metas := make([]fragMeta, 0, len(frags))
	for _, f := range frags {
		var h tcpip.IPv4Header
		if err := h.DecodeFromBytes(f); err != nil {
			return nil, err
		}
		if int(h.TotalLength) != len(f) || !inet.Verify(f[:tcpip.IPv4HeaderLen]) {
			return nil, ErrBadFragHeader
		}
		metas = append(metas, fragMeta{h: h, data: f[tcpip.IPv4HeaderLen:]})
	}
	first := metas[0].h
	for _, m := range metas[1:] {
		if m.h.ID != first.ID || m.h.Src != first.Src || m.h.Dst != first.Dst || m.h.Protocol != first.Protocol {
			return nil, ErrMixedID
		}
	}
	// Sort by offset (insertion; fragment counts are tiny).
	for i := 1; i < len(metas); i++ {
		for j := i; j > 0 && metas[j].h.FragOffset < metas[j-1].h.FragOffset; j-- {
			metas[j], metas[j-1] = metas[j-1], metas[j]
		}
	}
	var payload []byte
	for i, m := range metas {
		if int(m.h.FragOffset)*8 != len(payload) {
			return nil, ErrGap
		}
		last := i == len(metas)-1
		if (m.h.Flags&1 == 0) != last {
			return nil, ErrNoLast
		}
		payload = append(payload, m.data...)
	}
	out := make([]byte, tcpip.IPv4HeaderLen+len(payload))
	copy(out, frags[0][:tcpip.IPv4HeaderLen])
	copy(out[tcpip.IPv4HeaderLen:], payload)
	h := first
	h.TotalLength = uint16(len(out))
	h.Flags &^= 1
	h.FragOffset = 0
	h.ComputeChecksum()
	h.SerializeTo(out)
	return out, nil
}

// SwapResult tallies the fragment-substitution error model over one
// adjacent packet pair.
type SwapResult struct {
	Substitutions uint64 // same-offset swaps attempted
	Identical     uint64 // swapped fragment was byte-identical (benign)
	Remaining     uint64 // corrupted reassemblies
	Missed        uint64 // corrupted reassemblies the checksum passed
}

// Add accumulates another result.
func (r *SwapResult) Add(o SwapResult) {
	r.Substitutions += o.Substitutions
	r.Identical += o.Identical
	r.Remaining += o.Remaining
	r.Missed += o.Missed
}

// MissRate returns Missed/Remaining.
func (r SwapResult) MissRate() float64 {
	if r.Remaining == 0 {
		return 0
	}
	return float64(r.Missed) / float64(r.Remaining)
}

// SwapPair fragments two adjacent packets at mtu and tries every
// single-fragment same-offset substitution of a packet-2 fragment into
// packet 1 (the ID-collision mis-reassembly).  For each corrupted
// reassembly it asks whether the transport checksum (per opts) still
// verifies.  Swaps of the first fragment replace the TCP header and
// checksum field themselves and are almost always detected; the
// interesting cases are the data-fragment swaps, where the substituted
// bytes land at exactly the offset they came from.
func SwapPair(p1, p2 []byte, mtu int, opts tcpip.BuildOptions) (SwapResult, error) {
	var res SwapResult
	f1, err := Fragment(p1, mtu)
	if err != nil {
		return res, err
	}
	f2, err := Fragment(p2, mtu)
	if err != nil {
		return res, err
	}
	n := len(f1)
	if len(f2) < n {
		n = len(f2)
	}
	for i := 0; i < n; i++ {
		// The substituted fragment must be interchangeable at the IP
		// level: same offset and same length (the final fragments of
		// different-size packets are not).
		if !sameFragShape(f1[i], f2[i]) {
			continue
		}
		res.Substitutions++
		mixed := make([][]byte, len(f1))
		copy(mixed, f1)
		// Patch packet 2's fragment to carry packet 1's ID, as an
		// ID-collision would present it.
		patched := append([]byte(nil), f2[i]...)
		var h1, h2 tcpip.IPv4Header
		h1.DecodeFromBytes(f1[i])
		h2.DecodeFromBytes(patched)
		h2.ID = h1.ID
		h2.ComputeChecksum()
		h2.SerializeTo(patched)
		mixed[i] = patched

		out, err := Reassemble(mixed)
		if err != nil {
			continue // rejected before any checksum
		}
		if bytes.Equal(out, p1) {
			res.Identical++
			continue
		}
		res.Remaining++
		if tcpip.VerifyPacket(out, opts) {
			res.Missed++
		}
	}
	return res, nil
}

// sameFragShape reports whether two fragments occupy the same offset
// with the same length.
func sameFragShape(a, b []byte) bool {
	var ha, hb tcpip.IPv4Header
	if ha.DecodeFromBytes(a) != nil || hb.DecodeFromBytes(b) != nil {
		return false
	}
	return ha.FragOffset == hb.FragOffset && len(a) == len(b)
}
