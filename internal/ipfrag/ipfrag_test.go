package ipfrag

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"realsum/internal/tcpip"
)

func buildPacket(rng *rand.Rand, n int, opts tcpip.BuildOptions) []byte {
	flow := tcpip.NewLoopbackFlow(opts)
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(rng.Uint32())
	}
	return flow.NextPacket(nil, payload)
}

func TestFragmentReassembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, size := range []int{1, 7, 8, 100, 256, 1000, 1480} {
		for _, mtu := range []int{68, 96, 576, 1500} {
			pkt := buildPacket(rng, size, tcpip.BuildOptions{})
			frags, err := Fragment(pkt, mtu)
			if err != nil {
				t.Fatalf("size %d mtu %d: %v", size, mtu, err)
			}
			for _, f := range frags {
				if len(f) > mtu {
					t.Fatalf("fragment of %d bytes exceeds MTU %d", len(f), mtu)
				}
				if err := tcpip.ValidateIPv4(f, true); err != nil && err != tcpip.ErrBadLength {
					// Fragments parse with valid header checksums; the
					// full Validate length check compares against the
					// fragment, which is fine.
					t.Fatalf("fragment header invalid: %v", err)
				}
			}
			out, err := Reassemble(frags)
			if err != nil {
				t.Fatalf("size %d mtu %d: reassemble: %v", size, mtu, err)
			}
			if !bytes.Equal(out, pkt) {
				t.Fatalf("size %d mtu %d: round trip mismatch", size, mtu)
			}
		}
	}
}

func TestFragmentErrors(t *testing.T) {
	if _, err := Fragment(make([]byte, 10), 576); err != ErrShortPacket {
		t.Errorf("short packet: %v", err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	pkt := buildPacket(rng, 100, tcpip.BuildOptions{})
	if _, err := Fragment(pkt, 20); err != ErrBadMTU {
		t.Errorf("tiny MTU: %v", err)
	}
}

func TestReassembleOutOfOrder(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	pkt := buildPacket(rng, 500, tcpip.BuildOptions{})
	frags, _ := Fragment(pkt, 96)
	if len(frags) < 3 {
		t.Fatalf("want several fragments, got %d", len(frags))
	}
	// Reverse order.
	rev := make([][]byte, len(frags))
	for i := range frags {
		rev[len(frags)-1-i] = frags[i]
	}
	out, err := Reassemble(rev)
	if err != nil || !bytes.Equal(out, pkt) {
		t.Fatalf("out-of-order reassembly: %v", err)
	}
}

func TestReassembleRejects(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	pkt := buildPacket(rng, 500, tcpip.BuildOptions{})
	frags, _ := Fragment(pkt, 96)

	if _, err := Reassemble(nil); err != ErrNoFragments {
		t.Errorf("empty: %v", err)
	}
	// Missing middle fragment.
	missing := append(append([][]byte{}, frags[:1]...), frags[2:]...)
	if _, err := Reassemble(missing); err != ErrGap {
		t.Errorf("gap: %v", err)
	}
	// Missing last fragment.
	if _, err := Reassemble(frags[:len(frags)-1]); err != ErrNoLast {
		t.Errorf("no last: %v", err)
	}
	// Mixed datagram IDs: a second packet of the same flow carries the
	// next IP ID.
	flow := tcpip.NewLoopbackFlow(tcpip.BuildOptions{})
	flow.NextPacket(nil, make([]byte, 10))
	other := flow.NextPacket(nil, randPayload(rng, 500))
	frags2, _ := Fragment(other, 96)
	mixed := append(append([][]byte{}, frags[:1]...), frags2[1:]...)
	if _, err := Reassemble(mixed); err != ErrMixedID {
		t.Errorf("mixed IDs: %v", err)
	}
	// Corrupted fragment header checksum.
	bad := append([]byte(nil), frags[0]...)
	bad[4] ^= 0xFF
	if _, err := Reassemble(append([][]byte{bad}, frags[1:]...)); err != ErrBadFragHeader {
		t.Errorf("bad header: %v", err)
	}
}

func TestSwapPairDetectsRandomData(t *testing.T) {
	// Uniform payloads: every same-offset swap changes the sum with
	// overwhelming probability; misses ≈ 2^-16.
	rng := rand.New(rand.NewPCG(5, 5))
	var res SwapResult
	flow := tcpip.NewLoopbackFlow(tcpip.BuildOptions{})
	prev := flow.NextPacket(nil, randPayload(rng, 512))
	for i := 0; i < 200; i++ {
		next := flow.NextPacket(nil, randPayload(rng, 512))
		r, err := SwapPair(prev, next, 96, tcpip.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res.Add(r)
		prev = next
	}
	if res.Substitutions == 0 || res.Remaining == 0 {
		t.Fatalf("no substitutions exercised: %+v", res)
	}
	if res.Missed > 2 {
		t.Errorf("uniform swaps missed %d of %d", res.Missed, res.Remaining)
	}
}

func randPayload(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Uint32())
	}
	return b
}

func zeroHeavyPayload(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := 0; i+2 <= n; i += 32 {
		b[i+1] = 1
	}
	b[rng.IntN(n)] = byte(rng.Uint32())
	return b
}

func TestSameOffsetSwapsAttenuateFletcherAdvantage(t *testing.T) {
	// When substituted data stays at its own offset, Fletcher loses the
	// inter-fragment colouring that drives its AAL5-splice advantage
	// (it keeps intra-fragment positional sensitivity, so it does not
	// fully degenerate).  On this matched corpus, where both sums see
	// plenty of congruent fragments, the two miss at comparable rates —
	// in contrast to AAL5 splices (Table 8), where Fletcher wins by an
	// order of magnitude.
	run := func(opts tcpip.BuildOptions) SwapResult {
		rng := rand.New(rand.NewPCG(6, 6))
		var res SwapResult
		flow := tcpip.NewLoopbackFlow(opts)
		prev := flow.NextPacket(nil, zeroHeavyPayload(rng, 512))
		for i := 0; i < 300; i++ {
			next := flow.NextPacket(nil, zeroHeavyPayload(rng, 512))
			r, err := SwapPair(prev, next, 96, opts)
			if err != nil {
				t.Fatal(err)
			}
			res.Add(r)
			prev = next
		}
		return res
	}
	tcp := run(tcpip.BuildOptions{})
	f256 := run(tcpip.BuildOptions{Alg: tcpip.AlgFletcher256})
	if tcp.Missed == 0 {
		t.Skip("zero-heavy corpus produced no TCP misses at this size")
	}
	ratio := f256.MissRate() / tcp.MissRate()
	if ratio < 0.2 {
		t.Errorf("Fletcher-256 still wins on same-offset swaps (ratio %.3f); coloring theory violated", ratio)
	}
}

func TestSwapResultHelpers(t *testing.T) {
	r := SwapResult{Remaining: 10, Missed: 2}
	if r.MissRate() != 0.2 {
		t.Error("MissRate")
	}
	var empty SwapResult
	if empty.MissRate() != 0 {
		t.Error("empty MissRate")
	}
}
