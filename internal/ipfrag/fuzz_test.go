package ipfrag

import (
	"bytes"
	"testing"

	"realsum/internal/tcpip"
)

// fuzzPacket wraps payload in a checksummed IPv4 header, the
// precondition Fragment documents.
func fuzzPacket(payload []byte) []byte {
	pkt := make([]byte, tcpip.IPv4HeaderLen+len(payload))
	h := tcpip.IPv4Header{
		TotalLength: uint16(len(pkt)),
		ID:          0x3A7,
		TTL:         64,
		Protocol:    tcpip.ProtocolUDP,
		Src:         [4]byte{10, 0, 0, 1},
		Dst:         [4]byte{10, 0, 0, 2},
	}
	h.ComputeChecksum()
	h.SerializeTo(pkt)
	copy(pkt[tcpip.IPv4HeaderLen:], payload)
	return pkt
}

// FuzzReassemble checks the fragmentation round trip on arbitrary
// payloads and MTUs, and that Reassemble never panics — and never
// silently accepts a wrong packet — when the fragment set is mangled
// the ways the netsim receiver path can mangle it: fragments reversed,
// dropped, or with a flipped byte.  Run with `go test -fuzz
// FuzzReassemble ./internal/ipfrag`; the seed corpus runs in normal
// test mode.
func FuzzReassemble(f *testing.F) {
	f.Add([]byte{}, 28, uint16(0), byte(0))
	f.Add([]byte{1, 2, 3}, 28, uint16(1), byte(0xFF))
	f.Add(bytes.Repeat([]byte{0xA5}, 300), 68, uint16(40), byte(0x80))
	f.Add(make([]byte, 2000), 576, uint16(500), byte(1))
	f.Add(bytes.Repeat([]byte{0, 0xFF}, 750), 96, uint16(1499), byte(0x10))
	f.Fuzz(func(t *testing.T, payload []byte, mtu int, manglePos uint16, mangleXor byte) {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		// Clamp the MTU into Fragment's legal range; offsets must fit
		// the 13-bit field, so keep payloads/MTUs consistent.
		if mtu < tcpip.IPv4HeaderLen+8 {
			mtu = tcpip.IPv4HeaderLen + 8
		}
		if mtu > 1500 {
			mtu = 1500
		}
		pkt := fuzzPacket(payload)
		frags, err := Fragment(pkt, mtu)
		if err != nil {
			t.Fatalf("Fragment(%d bytes, mtu %d): %v", len(pkt), mtu, err)
		}

		// Round trip, in order.
		out, err := Reassemble(frags)
		if err != nil {
			t.Fatalf("Reassemble: %v", err)
		}
		if !bytes.Equal(out, pkt) {
			t.Fatal("round trip mismatch")
		}

		// Order independence: reversed fragments reassemble identically.
		rev := make([][]byte, len(frags))
		for i := range frags {
			rev[i] = frags[len(frags)-1-i]
		}
		out, err = Reassemble(rev)
		if err != nil {
			t.Fatalf("Reassemble(reversed): %v", err)
		}
		if !bytes.Equal(out, pkt) {
			t.Fatal("reversed round trip mismatch")
		}

		// Dropping any single fragment must yield an error, never a
		// silently short packet.
		if len(frags) > 1 {
			drop := int(manglePos) % len(frags)
			rest := append(append([][]byte(nil), frags[:drop]...), frags[drop+1:]...)
			if _, err := Reassemble(rest); err == nil {
				t.Fatalf("Reassemble accepted a set missing fragment %d of %d", drop, len(frags))
			}
		}

		// A flipped byte must not panic; if the mangled set is still
		// accepted the flip was in a payload, so only that fragment's
		// span may differ and the IPv4 invariants must still hold.
		if mangleXor != 0 {
			mangled := make([][]byte, len(frags))
			for i, fr := range frags {
				mangled[i] = append([]byte(nil), fr...)
			}
			fi := int(manglePos) % len(frags)
			fb := int(manglePos) / len(frags) % len(mangled[fi])
			mangled[fi][fb] ^= mangleXor
			out, err := Reassemble(mangled)
			if err != nil {
				return // rejected; fine
			}
			if fb < tcpip.IPv4HeaderLen {
				// Header flips that survive DecodeFromBytes + checksum
				// verification are vanishingly rare but possible (e.g. a
				// flip inside a field the checks don't bind, which the
				// IPv4 header has none of — so reaching here means the
				// checksum held by collision).  The packet must still
				// parse coherently.
				var h tcpip.IPv4Header
				if err := h.DecodeFromBytes(out); err != nil {
					t.Fatalf("accepted reassembly does not parse: %v", err)
				}
				return
			}
			if len(out) != len(pkt) {
				t.Fatalf("payload flip changed reassembled length %d -> %d", len(pkt), len(out))
			}
		}
	})
}
