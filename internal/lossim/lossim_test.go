package lossim

import (
	"math/rand/v2"
	"testing"

	"realsum/internal/tcpip"
)

// buildStream builds n adjacent 256-byte packets of one flow with the
// given payload generator.
func buildStream(n int, opts tcpip.BuildOptions, gen func(i int) []byte) [][]byte {
	flow := tcpip.NewLoopbackFlow(opts)
	out := make([][]byte, n)
	for i := range out {
		out[i] = flow.NextPacket(nil, gen(i))
	}
	return out
}

func zeroHeavy(rng *rand.Rand) func(int) []byte {
	return func(int) []byte {
		p := make([]byte, 256)
		for i := 0; i+2 <= len(p); i += 32 {
			p[i+1] = 1
		}
		if rng != nil {
			p[rng.IntN(len(p))] = byte(rng.Uint32())
		}
		return p
	}
}

func TestNoLossDeliversEverything(t *testing.T) {
	pkts := buildStream(50, tcpip.BuildOptions{}, zeroHeavy(rand.New(rand.NewPCG(1, 1))))
	st := Run(pkts, RandomLoss{P: 0}, tcpip.BuildOptions{}, 1)
	if st.Intact != 50 || st.Undetected != 0 || st.CleanLost != 0 || st.CellsDropped != 0 {
		t.Errorf("lossless run: %+v", st)
	}
}

func TestTotalLossDeliversNothing(t *testing.T) {
	pkts := buildStream(20, tcpip.BuildOptions{}, zeroHeavy(nil))
	st := Run(pkts, RandomLoss{P: 1}, tcpip.BuildOptions{}, 1)
	if st.Accepted() != 0 || st.CleanLost != 20 {
		t.Errorf("total loss: %+v", st)
	}
	if st.CellsDropped != st.CellsSent {
		t.Errorf("dropped %d of %d", st.CellsDropped, st.CellsSent)
	}
}

func TestRandomLossProducesDetectedDamage(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	pkts := buildStream(400, tcpip.BuildOptions{}, zeroHeavy(rng))
	st := Run(pkts, RandomLoss{P: 0.05}, tcpip.BuildOptions{}, 7)
	detected := st.DetectedFraming + st.DetectedCRC + st.DetectedHeader + st.DetectedChecksum
	if detected == 0 {
		t.Error("5% cell loss should produce detectable damage")
	}
	if st.Intact == 0 {
		t.Error("most packets should still arrive intact")
	}
	// The CRC-32 backstop makes end-to-end undetected corruption
	// essentially impossible at this sample size.
	if st.Undetected != 0 {
		t.Errorf("undetected corruption with CRC on: %d", st.Undetected)
	}
}

func TestPPDConvertsSplicesToLengthErrors(t *testing.T) {
	// §7: with PPD a trailer is only delivered when all preceding cells
	// of its packet were delivered, so candidate PDUs either reassemble
	// exactly or carry stranded prefix cells that fail the length check
	// — the CRC is never consulted.
	rng := rand.New(rand.NewPCG(3, 3))
	pkts := buildStream(400, tcpip.BuildOptions{}, zeroHeavy(rng))
	st := Run(pkts, &PPD{P: 0.05}, tcpip.BuildOptions{}, 8)
	if st.DetectedCRC != 0 {
		t.Errorf("PPD should leave nothing for the CRC to catch, got %d", st.DetectedCRC)
	}
	if st.DetectedFraming == 0 {
		t.Error("PPD should produce framing-detected partial packets")
	}
	if st.Undetected != 0 {
		t.Errorf("undetected corruption under PPD: %d", st.Undetected)
	}
	if st.DetectedChecksum != 0 {
		t.Errorf("PPD should never reach the transport checksum: %d", st.DetectedChecksum)
	}
}

func TestEPDProducesOnlyCleanLoss(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	pkts := buildStream(400, tcpip.BuildOptions{}, zeroHeavy(rng))
	st := Run(pkts, &EPD{PacketP: 0.2}, tcpip.BuildOptions{}, 9)
	detected := st.DetectedFraming + st.DetectedCRC + st.DetectedHeader + st.DetectedChecksum
	if detected != 0 {
		t.Errorf("EPD should never deliver damaged PDUs, got %d detections", detected)
	}
	if st.Undetected != 0 {
		t.Errorf("EPD undetected corruption: %d", st.Undetected)
	}
	if st.CleanLost == 0 || st.Intact == 0 {
		t.Errorf("EPD at 20%% should both lose and deliver packets: %+v", st)
	}
	if st.Intact+st.CleanLost != st.PacketsSent {
		t.Errorf("EPD accounting: %+v", st)
	}
}

func TestSplicesFormWithoutCRC(t *testing.T) {
	// With the AAL5 CRC disabled (receiver trusting the TCP checksum
	// alone, as over SLIP — §7's caution), random loss over zero-heavy
	// data eventually yields accepted-but-corrupt packets.  We can't
	// disable the CRC in the receiver, so instead verify the precursor:
	// candidate PDUs that pass framing and headers but fail only the
	// CRC exist — exactly the splices Tables 1–3 count.
	rng := rand.New(rand.NewPCG(5, 5))
	pkts := buildStream(3000, tcpip.BuildOptions{}, zeroHeavy(rng))
	st := Run(pkts, RandomLoss{P: 0.12}, tcpip.BuildOptions{}, 10)
	if st.DetectedCRC+st.DetectedChecksum == 0 {
		t.Errorf("no splice candidates survived framing+header at 12%% loss: %+v", st)
	}
}

func TestDeterminism(t *testing.T) {
	pkts := buildStream(100, tcpip.BuildOptions{}, zeroHeavy(rand.New(rand.NewPCG(6, 6))))
	a := Run(pkts, RandomLoss{P: 0.1}, tcpip.BuildOptions{}, 42)
	b := Run(pkts, RandomLoss{P: 0.1}, tcpip.BuildOptions{}, 42)
	if a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestPolicyNames(t *testing.T) {
	if (RandomLoss{}).Name() != "random" || (&PPD{}).Name() != "ppd" || (&EPD{}).Name() != "epd" {
		t.Error("policy names")
	}
}
