package lossim

import (
	"math/rand/v2"
	"testing"

	"realsum/internal/tcpip"
)

// buildStream builds n adjacent 256-byte packets of one flow with the
// given payload generator.
func buildStream(n int, opts tcpip.BuildOptions, gen func(i int) []byte) [][]byte {
	flow := tcpip.NewLoopbackFlow(opts)
	out := make([][]byte, n)
	for i := range out {
		out[i] = flow.NextPacket(nil, gen(i))
	}
	return out
}

func zeroHeavy(rng *rand.Rand) func(int) []byte {
	return func(int) []byte {
		p := make([]byte, 256)
		for i := 0; i+2 <= len(p); i += 32 {
			p[i+1] = 1
		}
		if rng != nil {
			p[rng.IntN(len(p))] = byte(rng.Uint32())
		}
		return p
	}
}

func TestNoLossDeliversEverything(t *testing.T) {
	pkts := buildStream(50, tcpip.BuildOptions{}, zeroHeavy(rand.New(rand.NewPCG(1, 1))))
	st := Run(pkts, RandomLoss{P: 0}, tcpip.BuildOptions{}, 1)
	if st.Intact != 50 || st.Undetected != 0 || st.CleanLost != 0 || st.CellsDropped != 0 {
		t.Errorf("lossless run: %+v", st)
	}
}

func TestTotalLossDeliversNothing(t *testing.T) {
	pkts := buildStream(20, tcpip.BuildOptions{}, zeroHeavy(nil))
	st := Run(pkts, RandomLoss{P: 1}, tcpip.BuildOptions{}, 1)
	if st.Accepted() != 0 || st.CleanLost != 20 {
		t.Errorf("total loss: %+v", st)
	}
	if st.CellsDropped != st.CellsSent {
		t.Errorf("dropped %d of %d", st.CellsDropped, st.CellsSent)
	}
}

func TestRandomLossProducesDetectedDamage(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	pkts := buildStream(400, tcpip.BuildOptions{}, zeroHeavy(rng))
	st := Run(pkts, RandomLoss{P: 0.05}, tcpip.BuildOptions{}, 7)
	detected := st.DetectedFraming + st.DetectedCRC + st.DetectedHeader + st.DetectedChecksum
	if detected == 0 {
		t.Error("5% cell loss should produce detectable damage")
	}
	if st.Intact == 0 {
		t.Error("most packets should still arrive intact")
	}
	// The CRC-32 backstop makes end-to-end undetected corruption
	// essentially impossible at this sample size.
	if st.Undetected != 0 {
		t.Errorf("undetected corruption with CRC on: %d", st.Undetected)
	}
}

func TestPPDConvertsSplicesToLengthErrors(t *testing.T) {
	// §7: with PPD a trailer is only delivered when all preceding cells
	// of its packet were delivered, so candidate PDUs either reassemble
	// exactly or carry stranded prefix cells that fail the length check
	// — the CRC is never consulted.
	rng := rand.New(rand.NewPCG(3, 3))
	pkts := buildStream(400, tcpip.BuildOptions{}, zeroHeavy(rng))
	st := Run(pkts, &PPD{P: 0.05}, tcpip.BuildOptions{}, 8)
	if st.DetectedCRC != 0 {
		t.Errorf("PPD should leave nothing for the CRC to catch, got %d", st.DetectedCRC)
	}
	if st.DetectedFraming == 0 {
		t.Error("PPD should produce framing-detected partial packets")
	}
	if st.Undetected != 0 {
		t.Errorf("undetected corruption under PPD: %d", st.Undetected)
	}
	if st.DetectedChecksum != 0 {
		t.Errorf("PPD should never reach the transport checksum: %d", st.DetectedChecksum)
	}
}

func TestEPDProducesOnlyCleanLoss(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	pkts := buildStream(400, tcpip.BuildOptions{}, zeroHeavy(rng))
	st := Run(pkts, &EPD{PacketP: 0.2}, tcpip.BuildOptions{}, 9)
	detected := st.DetectedFraming + st.DetectedCRC + st.DetectedHeader + st.DetectedChecksum
	if detected != 0 {
		t.Errorf("EPD should never deliver damaged PDUs, got %d detections", detected)
	}
	if st.Undetected != 0 {
		t.Errorf("EPD undetected corruption: %d", st.Undetected)
	}
	if st.CleanLost == 0 || st.Intact == 0 {
		t.Errorf("EPD at 20%% should both lose and deliver packets: %+v", st)
	}
	if st.Intact+st.CleanLost != st.PacketsSent {
		t.Errorf("EPD accounting: %+v", st)
	}
}

func TestSplicesFormWithoutCRC(t *testing.T) {
	// With the AAL5 CRC disabled (receiver trusting the TCP checksum
	// alone, as over SLIP — §7's caution), random loss over zero-heavy
	// data eventually yields accepted-but-corrupt packets.  We can't
	// disable the CRC in the receiver, so instead verify the precursor:
	// candidate PDUs that pass framing and headers but fail only the
	// CRC exist — exactly the splices Tables 1–3 count.
	rng := rand.New(rand.NewPCG(5, 5))
	pkts := buildStream(3000, tcpip.BuildOptions{}, zeroHeavy(rng))
	st := Run(pkts, RandomLoss{P: 0.12}, tcpip.BuildOptions{}, 10)
	if st.DetectedCRC+st.DetectedChecksum == 0 {
		t.Errorf("no splice candidates survived framing+header at 12%% loss: %+v", st)
	}
}

func TestDeterminism(t *testing.T) {
	pkts := buildStream(100, tcpip.BuildOptions{}, zeroHeavy(rand.New(rand.NewPCG(6, 6))))
	a := Run(pkts, RandomLoss{P: 0.1}, tcpip.BuildOptions{}, 42)
	b := Run(pkts, RandomLoss{P: 0.1}, tcpip.BuildOptions{}, 42)
	if a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestPolicyNames(t *testing.T) {
	if (RandomLoss{}).Name() != "random" || (&PPD{}).Name() != "ppd" || (&EPD{}).Name() != "epd" {
		t.Error("policy names")
	}
	if (&GilbertElliott{}).Name() != "ge" || (&BurstDrop{}).Name() != "burstdrop" {
		t.Error("correlated policy names")
	}
}

// TestPolicyStateContract pins the Policy state contract by driving
// policies across a packet boundary: per-packet state (PPD's damaged
// latch, EPD's drop decision) must reset at StartPacket, while stream
// state (the Gilbert–Elliott chain, BurstDrop's run latch) must survive
// StartPacket and reset only at StartStream.  This is the reset bug the
// contract exists to prevent: a correlated policy whose StartPacket
// clears the chain is i.i.d. in disguise.
func TestPolicyStateContract(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))

	// PPD: packet state. Damage in packet 1 must not leak into packet 2.
	p := &PPD{P: 0}
	p.StartStream(rng)
	p.StartPacket(rng)
	p.damaged = true
	if !p.Drop(rng, false) {
		t.Error("PPD: damaged packet must keep dropping")
	}
	p.StartPacket(rng)
	if p.Drop(rng, false) {
		t.Error("PPD: damaged latch must reset at packet start")
	}

	// EPD: packet state. A dropping decision dies with its packet (P=0
	// means the next packet is never dropped).
	e := &EPD{PacketP: 0}
	e.StartStream(rng)
	e.dropping = true
	e.StartPacket(rng)
	if e.Drop(rng, false) {
		t.Error("EPD: drop decision must be re-sampled at packet start")
	}

	// GilbertElliott: stream state. A Bad chain entered during packet 1
	// must still be Bad at the first cell of packet 2, and reset only at
	// stream start. PBadGood=0 pins the chain; DropBad=1/DropGood=0 make
	// the state observable through Drop.
	g := &GilbertElliott{PGoodBad: 0, PBadGood: 0, DropGood: 0, DropBad: 1}
	g.StartStream(rng)
	g.bad = true
	g.StartPacket(rng)
	if !g.Drop(rng, false) {
		t.Error("GilbertElliott: chain state must survive the packet boundary")
	}
	g.StartStream(rng)
	g.StartPacket(rng)
	if g.Drop(rng, false) {
		t.Error("GilbertElliott: chain must restart Good at stream start")
	}

	// The same, driven behaviourally across two packets: with
	// PGoodBad=1, DropGood=0, DropBad=1, PBadGood=0 the first cell of
	// the stream survives and flips the chain Bad; every later cell of
	// *both* packets is dropped.  A per-packet reset would deliver the
	// first cell of packet 2.
	g2 := &GilbertElliott{PGoodBad: 1, PBadGood: 0, DropGood: 0, DropBad: 1}
	g2.StartStream(rng)
	g2.StartPacket(rng)
	if g2.Drop(rng, false) {
		t.Error("GilbertElliott: first Good cell must survive")
	}
	if !g2.Drop(rng, false) {
		t.Error("GilbertElliott: chain must have gone Bad inside packet 1")
	}
	g2.StartPacket(rng)
	if !g2.Drop(rng, false) {
		t.Error("GilbertElliott: Bad sojourn must cross into packet 2")
	}

	// BurstDrop: stream state. An active run claims the head of the next
	// packet (Continue=1 pins the run).
	b := &BurstDrop{Start: 0, Continue: 1}
	b.StartStream(rng)
	b.inRun = true
	b.StartPacket(rng)
	if !b.Drop(rng, false) {
		t.Error("BurstDrop: active run must survive the packet boundary")
	}
	b.StartStream(rng)
	b.StartPacket(rng)
	if b.Drop(rng, false) {
		t.Error("BurstDrop: run latch must reset at stream start")
	}
}

// drive feeds n cells through a policy (fresh stream, one giant packet)
// and returns the drop pattern.
func drive(pol Policy, n int, seed uint64) []bool {
	rng := rand.New(rand.NewPCG(seed, seed))
	out := make([]bool, n)
	pol.StartStream(rng)
	pol.StartPacket(rng)
	for i := range out {
		out[i] = pol.Drop(rng, false)
	}
	return out
}

// TestCorrelatedMatchedAverageLoss checks both halves of the "matched
// average rate" construction: the closed-form AvgLoss of the *At
// constructors equals the requested rate exactly, and the empirical
// rate over a long stream agrees for all three processes.
func TestCorrelatedMatchedAverageLoss(t *testing.T) {
	const rate = 0.01
	ge := GilbertElliottAt(rate, 5, 0.002, 0.402)
	bd := BurstDropAt(rate, 4)
	if got := ge.AvgLoss(); got < rate-1e-12 || got > rate+1e-12 {
		t.Errorf("GilbertElliottAt(%v).AvgLoss() = %v", rate, got)
	}
	if got := bd.AvgLoss(); got < rate-1e-12 || got > rate+1e-12 {
		t.Errorf("BurstDropAt(%v).AvgLoss() = %v", rate, got)
	}
	const n = 400000
	for _, pol := range []Policy{RandomLoss{P: rate}, ge, bd} {
		drops := 0
		for _, d := range drive(pol, n, 99) {
			if d {
				drops++
			}
		}
		got := float64(drops) / n
		if got < 0.8*rate || got > 1.2*rate {
			t.Errorf("%s: empirical loss %.5f, want ≈ %.3f", pol.Name(), got, rate)
		}
	}
}

// TestCorrelatedLossClusters measures P(drop | previous cell dropped):
// at a 1%% average rate it stays ≈1%% for the i.i.d. process but is an
// order of magnitude higher for both correlated processes — the
// clustering the channels exist to inject.
func TestCorrelatedLossClusters(t *testing.T) {
	const rate, n = 0.01, 400000
	cond := func(pol Policy) float64 {
		drops := drive(pol, n, 7)
		after, both := 0, 0
		for i := 1; i < n; i++ {
			if drops[i-1] {
				after++
				if drops[i] {
					both++
				}
			}
		}
		return float64(both) / float64(after)
	}
	if p := cond(RandomLoss{P: rate}); p > 0.05 {
		t.Errorf("i.i.d. conditional drop probability %.3f, want ≈ %.2f", p, rate)
	}
	if p := cond(GilbertElliottAt(rate, 5, 0.002, 0.402)); p < 0.1 {
		t.Errorf("Gilbert–Elliott conditional drop probability %.3f, want ≫ %.2f", p, rate)
	}
	if p := cond(BurstDropAt(rate, 4)); p < 0.5 {
		t.Errorf("BurstDrop conditional drop probability %.3f, want ≈ Continue (0.75)", p)
	}
}

// TestCorrelatedEndToEnd runs the full receiver over both correlated
// policies: determinism, accounting, and no undetected corruption with
// the CRC on.
func TestCorrelatedEndToEnd(t *testing.T) {
	pkts := buildStream(400, tcpip.BuildOptions{}, zeroHeavy(rand.New(rand.NewPCG(8, 8))))
	for _, mk := range []func() Policy{
		func() Policy { return GilbertElliottAt(0.03, 5, 0.002, 0.402) },
		func() Policy { return BurstDropAt(0.03, 4) },
	} {
		pol := mk()
		st := Run(pkts, pol, tcpip.BuildOptions{}, 21)
		if st.CellsDropped == 0 || st.CleanLost == 0 {
			t.Errorf("%s: no losses at 3%%: %+v", pol.Name(), st)
		}
		if st.Undetected != 0 {
			t.Errorf("%s: undetected corruption with CRC on: %d", pol.Name(), st.Undetected)
		}
		if st.Intact == 0 {
			t.Errorf("%s: nothing delivered intact", pol.Name())
		}
		if again := Run(pkts, mk(), tcpip.BuildOptions{}, 21); again != st {
			t.Errorf("%s: nondeterministic: %+v vs %+v", pol.Name(), st, again)
		}
	}
}
