// Package lossim simulates an ATM link that loses cells, and measures
// what a standard AAL5/TCP receiver makes of the survivors — the
// end-to-end counterpart of the exhaustive splice enumeration, and the
// executable form of §7's "good news":
//
//   - under plain random cell loss, adjacent-packet splices reach the
//     reassembler and occasionally pass every check;
//   - Partial Packet Discard (drop the rest of a damaged packet but
//     let its marked trailer cell through) turns almost every splice
//     into a detectable length error;
//   - Early Packet Discard (drop whole packets at the switch) produces
//     clean losses only — no splice can ever form.
//
// The receiver applies exactly the layered checks of the paper: AAL5
// framing and length, the TCP/IP header battery, the AAL5 CRC-32 and
// the transport checksum.
package lossim

import (
	"hash/fnv"
	"math/rand/v2"

	"realsum/internal/atm"
	"realsum/internal/tcpip"
)

// Policy models a cell-loss process with switch-side discard behaviour.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// StartPacket is called at the first cell of each packet.
	StartPacket(rng *rand.Rand)
	// Drop is called per cell (eop marks the packet's final cell) and
	// reports whether the link/switch drops it.
	Drop(rng *rand.Rand, eop bool) bool
}

// RandomLoss drops each cell independently with probability P —
// corruption-style loss with no switch assistance.
type RandomLoss struct {
	P float64
}

// Name implements Policy.
func (RandomLoss) Name() string { return "random" }

// StartPacket implements Policy.
func (RandomLoss) StartPacket(*rand.Rand) {}

// Drop implements Policy.
func (l RandomLoss) Drop(rng *rand.Rand, eop bool) bool {
	return rng.Float64() < l.P
}

// PPD is Partial Packet Discard, exactly as §7 describes: an
// underlying random process drops cells; once any cell of a packet is
// lost the switch drops *all* subsequent cells of that packet,
// trailer included.  A trailer is therefore only ever delivered when
// all preceding cells of its packet were delivered, and the stranded
// prefix cells of damaged packets pile onto the next delivered packet
// where the AAL5 length check flags them — the CRC is never needed.
type PPD struct {
	P       float64
	damaged bool
}

// Name implements Policy.
func (*PPD) Name() string { return "ppd" }

// StartPacket implements Policy.
func (p *PPD) StartPacket(*rand.Rand) { p.damaged = false }

// Drop implements Policy.
func (p *PPD) Drop(rng *rand.Rand, eop bool) bool {
	if p.damaged {
		return true
	}
	if rng.Float64() < p.P {
		p.damaged = true
		return true
	}
	return false
}

// EPD is Early Packet Discard: the switch decides at packet start
// whether to drop the entire packet (trailer included).  PacketP is the
// whole-packet drop probability.
type EPD struct {
	PacketP  float64
	dropping bool
}

// Name implements Policy.
func (*EPD) Name() string { return "epd" }

// StartPacket implements Policy.
func (e *EPD) StartPacket(rng *rand.Rand) { e.dropping = rng.Float64() < e.PacketP }

// Drop implements Policy.
func (e *EPD) Drop(*rand.Rand, bool) bool { return e.dropping }

// Stats aggregates one run.
type Stats struct {
	PacketsSent  uint64
	CellsSent    uint64
	CellsDropped uint64

	// Reassembly outcomes, one per delivered trailer cell.
	Intact           uint64 // accepted, byte-identical to a sent packet
	DetectedFraming  uint64 // AAL5 length/marking checks fired
	DetectedCRC      uint64 // AAL5 CRC-32 fired
	DetectedHeader   uint64 // TCP/IP header battery fired
	DetectedChecksum uint64 // transport checksum fired
	Undetected       uint64 // accepted, but matches no sent packet
	CleanLost        uint64 // packets whose trailer never arrived
}

// Accepted returns the number of packets the receiver handed up.
func (s Stats) Accepted() uint64 { return s.Intact + s.Undetected }

// Run transmits the packets (complete IPv4 packets built under opts)
// as AAL5 cell streams through the loss policy and collects the
// receiver-side statistics.  Deterministic for a given seed.
func Run(packets [][]byte, policy Policy, opts tcpip.BuildOptions, seed uint64) Stats {
	rng := rand.New(rand.NewPCG(seed, 0x10551))
	var st Stats

	sent := make(map[uint64]bool, len(packets))
	hashOf := func(b []byte) uint64 {
		h := fnv.New64a()
		h.Write(b)
		return h.Sum64()
	}
	for _, p := range packets {
		sent[hashOf(p)] = true
	}

	var buf []atm.Cell
	trailersDelivered := uint64(0)
	for _, pkt := range packets {
		cells, err := atm.Segment(pkt, 0, 32)
		if err != nil {
			continue
		}
		st.PacketsSent++
		policy.StartPacket(rng)
		for i := range cells {
			st.CellsSent++
			eop := cells[i].Header.EndOfPacket()
			if policy.Drop(rng, eop) {
				st.CellsDropped++
				continue
			}
			buf = append(buf, cells[i])
			if !eop {
				continue
			}
			trailersDelivered++
			st.classify(buf, sent, hashOf, opts)
			buf = buf[:0]
		}
	}
	st.CleanLost = st.PacketsSent - trailersDelivered
	return st
}

// classify runs the receiver checks on one reassembly buffer.
func (st *Stats) classify(cells []atm.Cell, sent map[uint64]bool, hashOf func([]byte) uint64, opts tcpip.BuildOptions) {
	tr, err := atm.CheckFraming(cells)
	if err != nil {
		st.DetectedFraming++
		return
	}
	sdu, err := atm.Reassemble(cells)
	if err != nil {
		st.DetectedCRC++
		return
	}
	_ = tr
	if err := tcpip.ValidateHeaders(sdu, opts); err != nil {
		st.DetectedHeader++
		return
	}
	if !tcpip.VerifyPacket(sdu, opts) {
		st.DetectedChecksum++
		return
	}
	if sent[hashOf(sdu)] {
		st.Intact++
	} else {
		st.Undetected++
	}
}
