// Package lossim simulates an ATM link that loses cells, and measures
// what a standard AAL5/TCP receiver makes of the survivors — the
// end-to-end counterpart of the exhaustive splice enumeration, and the
// executable form of §7's "good news":
//
//   - under plain random cell loss, adjacent-packet splices reach the
//     reassembler and occasionally pass every check;
//   - Partial Packet Discard (drop the rest of a damaged packet but
//     let its marked trailer cell through) turns almost every splice
//     into a detectable length error;
//   - Early Packet Discard (drop whole packets at the switch) produces
//     clean losses only — no splice can ever form.
//
// The receiver applies exactly the layered checks of the paper: AAL5
// framing and length, the TCP/IP header battery, the AAL5 CRC-32 and
// the transport checksum.
package lossim

import (
	"hash/fnv"
	"math/rand/v2"

	"realsum/internal/atm"
	"realsum/internal/tcpip"
)

// Policy models a cell-loss process with switch-side discard behaviour.
//
// State contract.  A policy may carry two kinds of mutable state, with
// distinct reset points the caller drives:
//
//   - Stream state lives for a whole cell stream (one lossim.Run, one
//     netsim trial) and is (re)initialised only in StartStream.  The
//     Gilbert–Elliott channel condition and the BurstDrop run latch are
//     stream state: their whole point is that losses stay correlated
//     *across* packet boundaries, exactly as a fading link doesn't
//     recover because one AAL5 PDU ended.
//   - Packet state lives for one packet and is reset in StartPacket:
//     PPD's damaged latch and EPD's whole-packet drop decision.
//
// StartPacket must never touch stream state — resetting the
// Gilbert–Elliott chain at each packet boundary would silently
// decorrelate the loss process back to (blockwise) i.i.d. and void the
// burst-vs-random contrast the correlated channels exist to measure.
// Callers invoke StartStream exactly once per stream, StartPacket at the
// first cell of every packet, then Drop once per cell.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// StartStream is called once before the first cell of a stream and
	// resets all policy state, stream state included.  Runs driven from
	// equal RNG states are therefore identical — the determinism contract
	// netsim trials rely on.
	StartStream(rng *rand.Rand)
	// StartPacket is called at the first cell of each packet and resets
	// per-packet state only.
	StartPacket(rng *rand.Rand)
	// Drop is called per cell (eop marks the packet's final cell) and
	// reports whether the link/switch drops it.
	Drop(rng *rand.Rand, eop bool) bool
}

// RandomLoss drops each cell independently with probability P —
// corruption-style loss with no switch assistance.
type RandomLoss struct {
	P float64
}

// Name implements Policy.
func (RandomLoss) Name() string { return "random" }

// StartStream implements Policy; RandomLoss is stateless.
func (RandomLoss) StartStream(*rand.Rand) {}

// StartPacket implements Policy.
func (RandomLoss) StartPacket(*rand.Rand) {}

// Drop implements Policy.
func (l RandomLoss) Drop(rng *rand.Rand, eop bool) bool {
	return rng.Float64() < l.P
}

// PPD is Partial Packet Discard, exactly as §7 describes: an
// underlying random process drops cells; once any cell of a packet is
// lost the switch drops *all* subsequent cells of that packet,
// trailer included.  A trailer is therefore only ever delivered when
// all preceding cells of its packet were delivered, and the stranded
// prefix cells of damaged packets pile onto the next delivered packet
// where the AAL5 length check flags them — the CRC is never needed.
type PPD struct {
	P       float64
	damaged bool
}

// Name implements Policy.
func (*PPD) Name() string { return "ppd" }

// StartStream implements Policy.
func (p *PPD) StartStream(*rand.Rand) { p.damaged = false }

// StartPacket implements Policy; the damaged latch is packet state.
func (p *PPD) StartPacket(*rand.Rand) { p.damaged = false }

// Drop implements Policy.
func (p *PPD) Drop(rng *rand.Rand, eop bool) bool {
	if p.damaged {
		return true
	}
	if rng.Float64() < p.P {
		p.damaged = true
		return true
	}
	return false
}

// EPD is Early Packet Discard: the switch decides at packet start
// whether to drop the entire packet (trailer included).  PacketP is the
// whole-packet drop probability.
type EPD struct {
	PacketP  float64
	dropping bool
}

// Name implements Policy.
func (*EPD) Name() string { return "epd" }

// StartStream implements Policy.
func (e *EPD) StartStream(*rand.Rand) { e.dropping = false }

// StartPacket implements Policy; the drop decision is packet state.
func (e *EPD) StartPacket(rng *rand.Rand) { e.dropping = rng.Float64() < e.PacketP }

// Drop implements Policy.
func (e *EPD) Drop(*rand.Rand, bool) bool { return e.dropping }

// GilbertElliott is the classical two-state Markov loss model: the link
// is either Good or Bad, each state drops cells at its own rate, and the
// state evolves per cell with the given transition probabilities.  The
// state is stream state — it persists across packet boundaries (see the
// Policy contract), which is what makes losses cluster: a Bad sojourn
// straddling a packet boundary damages *both* packets, the correlated
// regime where splice formation diverges from the i.i.d. prediction.
//
// Per cell, Drop first decides the cell's fate under the current state,
// then advances the chain.  The chain starts Good at StartStream.
type GilbertElliott struct {
	PGoodBad float64 // per-cell P(Good → Bad)
	PBadGood float64 // per-cell P(Bad → Good); mean Bad sojourn = 1/PBadGood cells
	DropGood float64 // per-cell drop probability in Good
	DropBad  float64 // per-cell drop probability in Bad

	bad bool
}

// Name implements Policy.
func (*GilbertElliott) Name() string { return "ge" }

// StartStream implements Policy: the chain restarts in the Good state.
func (g *GilbertElliott) StartStream(*rand.Rand) { g.bad = false }

// StartPacket implements Policy.  It deliberately does nothing: the
// channel condition is stream state and survives packet boundaries.
func (g *GilbertElliott) StartPacket(*rand.Rand) {}

// Drop implements Policy.
func (g *GilbertElliott) Drop(rng *rand.Rand, eop bool) bool {
	p := g.DropGood
	if g.bad {
		p = g.DropBad
	}
	drop := rng.Float64() < p
	if g.bad {
		if rng.Float64() < g.PBadGood {
			g.bad = false
		}
	} else if rng.Float64() < g.PGoodBad {
		g.bad = true
	}
	return drop
}

// AvgLoss returns the stationary average cell-loss rate
// πG·DropGood + πB·DropBad, with πB = PGoodBad/(PGoodBad+PBadGood).
func (g *GilbertElliott) AvgLoss() float64 {
	denom := g.PGoodBad + g.PBadGood
	if denom == 0 {
		return g.DropGood
	}
	piB := g.PGoodBad / denom
	return (1-piB)*g.DropGood + piB*g.DropBad
}

// GilbertElliottAt builds a chain whose stationary average loss rate is
// exactly rate, with the given mean Bad sojourn (in cells) and per-state
// drop rates: the Bad-state occupancy πB = (rate−dropGood)/(dropBad−dropGood)
// is solved for, then PGoodBad = PBadGood·πB/(1−πB).  Requires
// dropGood ≤ rate < dropBad and meanBadRun ≥ 1, so channels can be
// matched to an i.i.d. baseline at identical average severity.
func GilbertElliottAt(rate, meanBadRun, dropGood, dropBad float64) *GilbertElliott {
	if !(dropGood <= rate && rate < dropBad) || meanBadRun < 1 {
		panic("lossim: GilbertElliottAt needs dropGood <= rate < dropBad and meanBadRun >= 1")
	}
	pBadGood := 1 / meanBadRun
	piB := (rate - dropGood) / (dropBad - dropGood)
	return &GilbertElliott{
		PGoodBad: pBadGood * piB / (1 - piB),
		PBadGood: pBadGood,
		DropGood: dropGood,
		DropBad:  dropBad,
	}
}

// BurstDrop loses whole runs of consecutive cells: a run begins at any
// cell with probability Start and, once begun, claims each next cell
// with probability Continue — geometric run lengths with mean
// 1/(1−Continue).  The run latch is stream state: a run crossing a
// packet boundary takes the tail of one packet and the head of the
// next, the exact loss pattern that strands prefix cells onto a later
// trailer.
type BurstDrop struct {
	Start    float64 // per-cell probability a new drop run begins
	Continue float64 // probability an active run extends to the next cell

	inRun bool
}

// Name implements Policy.
func (*BurstDrop) Name() string { return "burstdrop" }

// StartStream implements Policy: no run is active.
func (b *BurstDrop) StartStream(*rand.Rand) { b.inRun = false }

// StartPacket implements Policy.  It deliberately does nothing: an
// active drop run is stream state and survives packet boundaries.
func (b *BurstDrop) StartPacket(*rand.Rand) {}

// Drop implements Policy.
func (b *BurstDrop) Drop(rng *rand.Rand, eop bool) bool {
	if b.inRun || rng.Float64() < b.Start {
		b.inRun = rng.Float64() < b.Continue
		return true
	}
	return false
}

// AvgLoss returns the stationary average cell-loss rate.  With s = Start
// and r = Continue, a cell is dropped iff a run is active or starts, and
// the run latch after a dropped cell is set with probability r, so the
// drop rate d satisfies d = d·r + (1−d·r)·s.
func (b *BurstDrop) AvgLoss() float64 {
	return b.Start / (1 - b.Continue + b.Continue*b.Start)
}

// BurstDropAt builds a run-loss process whose stationary average loss
// rate is exactly rate with the given mean run length (≥ 1 cell) —
// inverting AvgLoss for Start at Continue = 1 − 1/meanRun.
func BurstDropAt(rate, meanRun float64) *BurstDrop {
	if rate < 0 || rate >= 1 || meanRun < 1 {
		panic("lossim: BurstDropAt needs 0 <= rate < 1 and meanRun >= 1")
	}
	r := 1 - 1/meanRun
	return &BurstDrop{Start: rate * (1 - r) / (1 - rate*r), Continue: r}
}

// Stats aggregates one run.
type Stats struct {
	PacketsSent  uint64
	CellsSent    uint64
	CellsDropped uint64

	// Reassembly outcomes, one per delivered trailer cell.
	Intact           uint64 // accepted, byte-identical to a sent packet
	DetectedFraming  uint64 // AAL5 length/marking checks fired
	DetectedCRC      uint64 // AAL5 CRC-32 fired
	DetectedHeader   uint64 // TCP/IP header battery fired
	DetectedChecksum uint64 // transport checksum fired
	Undetected       uint64 // accepted, but matches no sent packet
	CleanLost        uint64 // packets whose trailer never arrived
}

// Accepted returns the number of packets the receiver handed up.
func (s Stats) Accepted() uint64 { return s.Intact + s.Undetected }

// Run transmits the packets (complete IPv4 packets built under opts)
// as AAL5 cell streams through the loss policy and collects the
// receiver-side statistics.  Deterministic for a given seed.
func Run(packets [][]byte, policy Policy, opts tcpip.BuildOptions, seed uint64) Stats {
	rng := rand.New(rand.NewPCG(seed, 0x10551))
	var st Stats

	sent := make(map[uint64]bool, len(packets))
	hashOf := func(b []byte) uint64 {
		h := fnv.New64a()
		h.Write(b)
		return h.Sum64()
	}
	for _, p := range packets {
		sent[hashOf(p)] = true
	}

	var buf []atm.Cell
	trailersDelivered := uint64(0)
	policy.StartStream(rng)
	for _, pkt := range packets {
		cells, err := atm.Segment(pkt, 0, 32)
		if err != nil {
			continue
		}
		st.PacketsSent++
		policy.StartPacket(rng)
		for i := range cells {
			st.CellsSent++
			eop := cells[i].Header.EndOfPacket()
			if policy.Drop(rng, eop) {
				st.CellsDropped++
				continue
			}
			buf = append(buf, cells[i])
			if !eop {
				continue
			}
			trailersDelivered++
			st.classify(buf, sent, hashOf, opts)
			buf = buf[:0]
		}
	}
	st.CleanLost = st.PacketsSent - trailersDelivered
	return st
}

// classify runs the receiver checks on one reassembly buffer.
func (st *Stats) classify(cells []atm.Cell, sent map[uint64]bool, hashOf func([]byte) uint64, opts tcpip.BuildOptions) {
	tr, err := atm.CheckFraming(cells)
	if err != nil {
		st.DetectedFraming++
		return
	}
	sdu, err := atm.Reassemble(cells)
	if err != nil {
		st.DetectedCRC++
		return
	}
	_ = tr
	if err := tcpip.ValidateHeaders(sdu, opts); err != nil {
		st.DetectedHeader++
		return
	}
	if !tcpip.VerifyPacket(sdu, opts) {
		st.DetectedChecksum++
		return
	}
	if sent[hashOf(sdu)] {
		st.Intact++
	} else {
		st.Undetected++
	}
}
