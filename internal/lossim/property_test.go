package lossim

import (
	"math"
	"math/rand/v2"
	"testing"
)

// driveWithPackets feeds n cells through a policy with a StartPacket
// call every pktCells cells (0 = one giant packet) and returns the drop
// pattern.
func driveWithPackets(pol Policy, n, pktCells int, seed uint64) []bool {
	rng := rand.New(rand.NewPCG(seed, seed))
	out := make([]bool, n)
	pol.StartStream(rng)
	for i := range out {
		if pktCells == 0 && i == 0 || pktCells > 0 && i%pktCells == 0 {
			pol.StartPacket(rng)
		}
		out[i] = pol.Drop(rng, false)
	}
	return out
}

// TestCorrelatedRateGridProperty sweeps a parameter grid of both
// matched-rate constructors and checks, for every point, that (a) the
// closed-form AvgLoss equals the requested rate exactly and (b) the
// measured loss over 10⁶ cells lands within 3σ of it.  Because the
// processes are correlated, σ cannot be the i.i.d. √(p(1−p)/n) — runs
// inflate the variance — so the standard error is estimated from the
// means of 100 independent-enough blocks of 10⁴ cells (block length ≫
// mean run length, so block means decorrelate).
func TestCorrelatedRateGridProperty(t *testing.T) {
	const (
		nCells    = 1_000_000
		blockSize = 10_000
		nBlocks   = nCells / blockSize
	)
	type point struct {
		name string
		rate float64
		mk   func() Policy
	}
	var grid []point
	for _, rate := range []float64{0.005, 0.01, 0.04} {
		for _, run := range []float64{2, 5, 10} {
			rate, run := rate, run
			grid = append(grid,
				point{"ge", rate, func() Policy { return GilbertElliottAt(rate, run, rate/5, 0.402) }},
				point{"burstdrop", rate, func() Policy { return BurstDropAt(rate, run) }},
			)
		}
	}
	for gi, pt := range grid {
		pol := pt.mk()
		type avgLosser interface{ AvgLoss() float64 }
		if got := pol.(avgLosser).AvgLoss(); math.Abs(got-pt.rate) > 1e-12 {
			t.Errorf("%s[%d]: AvgLoss() = %v, want exactly %v", pt.name, gi, got, pt.rate)
		}
		drops := driveWithPackets(pol, nCells, 0, uint64(1000+gi))
		var mean float64
		blockMeans := make([]float64, nBlocks)
		for b := 0; b < nBlocks; b++ {
			c := 0
			for i := b * blockSize; i < (b+1)*blockSize; i++ {
				if drops[i] {
					c++
				}
			}
			blockMeans[b] = float64(c) / blockSize
			mean += blockMeans[b]
		}
		mean /= nBlocks
		var vsum float64
		for _, m := range blockMeans {
			vsum += (m - mean) * (m - mean)
		}
		se := math.Sqrt(vsum / (nBlocks - 1) / nBlocks)
		if se == 0 {
			t.Fatalf("%s[%d]: zero block variance; grid point is degenerate", pt.name, gi)
		}
		if diff := math.Abs(mean - pt.rate); diff > 3*se {
			t.Errorf("%s[%d] rate=%v: measured %v is %.1fσ off (σ=%v)",
				pt.name, gi, pt.rate, mean, diff/se, se)
		}
	}
}

// TestCorrelatedStatePersistsAcrossPacketBoundaries is the behavioural
// regression for the PR 4 StartStream/StartPacket contract: both
// correlated policies' StartPacket is a no-op that consumes no RNG, so
// the drop pattern of a stream cut into 100-cell packets must be
// bit-identical to the same stream as one giant packet.  A policy that
// reset its chain (or burned randomness) at packet boundaries would
// diverge within a few packets.
func TestCorrelatedStatePersistsAcrossPacketBoundaries(t *testing.T) {
	const n = 100_000
	for _, mk := range []func() Policy{
		func() Policy { return GilbertElliottAt(0.01, 5, 0.002, 0.402) },
		func() Policy { return BurstDropAt(0.01, 4) },
	} {
		whole := driveWithPackets(mk(), n, 0, 77)
		cut := driveWithPackets(mk(), n, 100, 77)
		name := mk().Name()
		drops := 0
		for i := range whole {
			if whole[i] != cut[i] {
				t.Fatalf("%s: drop pattern diverges at cell %d once packet boundaries are added", name, i)
			}
			if whole[i] {
				drops++
			}
		}
		if drops == 0 {
			t.Fatalf("%s: no drops in %d cells; test is vacuous", name, n)
		}
	}
}
