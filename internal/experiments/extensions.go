package experiments

import (
	"fmt"

	"realsum/internal/adler"
	"realsum/internal/corpus"
	"realsum/internal/crc"
	"realsum/internal/dist"
	"realsum/internal/fletcher"
	"realsum/internal/inet"
	"realsum/internal/ipfrag"
	"realsum/internal/lossim"
	"realsum/internal/report"
	"realsum/internal/sim"
	"realsum/internal/tcpip"
)

// The experiments in this file go beyond the paper's evaluation along
// the directions its §7 sketches: the end-to-end consequence of switch
// discard policies, and how the checksum generation that followed
// (Adler-32) fares on the same data.

// EndToEndRow is one loss policy's receiver-side outcome.
type EndToEndRow struct {
	Policy string
	Stats  lossim.Stats
}

// EndToEnd transmits a zero-heavy corpus stream through three loss
// policies at equal underlying severity and reports what the receiver
// saw — §7's argument that Early Packet Discard removes the splice
// threat entirely, executed.
func EndToEnd(cfg Config) []EndToEndRow {
	p := corpus.SICSOpt().Scale(cfg.scale() * 0.3)
	fs := p.Build()
	opts := tcpip.BuildOptions{}
	flow := tcpip.NewLoopbackFlow(opts)
	var packets [][]byte
	fs.Walk(func(path string, data []byte) error {
		for off := 0; off < len(data); off += 256 {
			end := off + 256
			if end > len(data) {
				end = len(data)
			}
			packets = append(packets, flow.NextPacket(nil, data[off:end]))
		}
		return nil
	})

	const cellLoss = 0.03
	// A 256-byte packet spans 7 cells; EPD's whole-packet probability
	// matching the same per-cell process is 1−(1−p)^7.
	pktLoss := 1.0
	for i := 0; i < 7; i++ {
		pktLoss *= 1 - cellLoss
	}
	pktLoss = 1 - pktLoss

	var out []EndToEndRow
	for _, pol := range []lossim.Policy{
		lossim.RandomLoss{P: cellLoss},
		&lossim.PPD{P: cellLoss},
		&lossim.EPD{PacketP: pktLoss},
	} {
		out = append(out, EndToEndRow{
			Policy: pol.Name(),
			Stats:  lossim.Run(packets, pol, opts, 0xE2E),
		})
	}
	return out
}

// EndToEndReport renders the policy comparison.
func EndToEndReport(rows []EndToEndRow) string {
	t := report.Table{
		Title: "§7 extension: receiver outcomes under cell-loss policies (3% cell loss)",
		Headers: []string{"policy", "sent", "intact", "clean-lost",
			"framing", "CRC", "header", "checksum", "undetected"},
	}
	for _, r := range rows {
		s := r.Stats
		t.AddRow(r.Policy,
			report.Count(s.PacketsSent), report.Count(s.Intact), report.Count(s.CleanLost),
			report.Count(s.DetectedFraming), report.Count(s.DetectedCRC),
			report.Count(s.DetectedHeader), report.Count(s.DetectedChecksum),
			report.Count(s.Undetected))
	}
	return t.Render()
}

// AdlerRow compares one algorithm's cell-level self-collision
// probability over the Stanford corpus.
type AdlerRow struct {
	Algorithm string
	Bits      int
	Collision float64
	Uniform   float64
}

// AdlerComparison extends Figure 3's distribution study with the
// 32-bit generation: Adler-32 and CRC-32 over the same 48-byte cells
// as the 16-bit sums.  The 16-bit checks collide ~10× above their
// uniform floor; the 32-bit checks have so much head-room that real
// data collisions come almost entirely from identical cells.
func AdlerComparison(cfg Config) []AdlerRow {
	fs := corpus.StanfordU1().Scale(cfg.scale()).Build()
	crc32tab := crc.New(crc.CRC32)

	tcpS := dist.NewSparse()
	f255S := dist.NewSparse()
	f256S := dist.NewSparse()
	adlerS := dist.NewSparse()
	crcS := dist.NewSparse()

	fs.Walk(func(path string, data []byte) error {
		for off := 0; off+dist.CellSize <= len(data); off += dist.CellSize {
			cell := data[off : off+dist.CellSize]
			tcpS.Add(uint64(cellTCPSum(cell)))
			f255S.Add(uint64(fletcher255(cell)))
			f256S.Add(uint64(fletcher256(cell)))
			adlerS.Add(uint64(adler.Checksum(cell)))
			crcS.Add(crc32tab.Checksum(cell))
		}
		return nil
	})

	return []AdlerRow{
		{"IP/TCP", 16, tcpS.CollisionProbability(), 1.0 / 65535},
		{"Fletcher-255", 16, f255S.CollisionProbability(), 1.0 / (255 * 255)},
		{"Fletcher-256", 16, f256S.CollisionProbability(), 1.0 / 65536},
		{"Adler-32", 32, adlerS.CollisionProbability(), adlerUniform()},
		{"CRC-32", 32, crcS.CollisionProbability(), 1.0 / (1 << 32)},
	}
}

// adlerUniform is Adler-32's effective uniform collision floor for
// 48-byte inputs: with so few bytes the A sum spans only ~48·255
// values and B a similarly bounded range, so the usable space is far
// smaller than 2^32 (Adler's known weakness on short inputs).
func adlerUniform() float64 {
	// A ∈ [1, 1+48·255], B bounded by ~48·(1+48·255)/… — rather than
	// model it, report the 2^-32 floor; the measured value's distance
	// from it is the point.
	return 1.0 / (1 << 32)
}

func cellTCPSum(cell []byte) uint16  { return inet.Sum(cell) }
func fletcher255(cell []byte) uint16 { return fletcher.Mod255.Sum(cell).Checksum16() }
func fletcher256(cell []byte) uint16 { return fletcher.Mod256.Sum(cell).Checksum16() }

// FragSwapRow compares one checksum's miss rate under the same-offset
// fragment-substitution model against its AAL5-splice miss rate.
type FragSwapRow struct {
	Algorithm    string
	FragMissRate float64 // same-offset fragment swaps (ipfrag model)
	AAL5MissRate float64 // cell splices on the same corpus (Table 8 model)
}

// FragSwap runs the abstract's fragmentation-and-reassembly error
// model: fragments of adjacent packets substituted at equal offsets
// (an IP-ID collision in a buggy reassembler).  Because substituted
// data keeps its own offset, Fletcher loses the *inter-fragment*
// colouring that drives its AAL5-splice advantage — though it keeps
// intra-fragment positional sensitivity (two fragments with equal byte
// sums still differ in the weighted term unless their bytes agree
// position-wise), so it does not fully degenerate to the TCP
// condition.  The reproducible headline is the TCP one: same-offset
// swaps on real data are missed at rates far above uniform, just like
// cell splices.
func FragSwap(cfg Config) []FragSwapRow {
	p := corpus.SICSOpt().Scale(cfg.scale() * 0.5)
	var out []FragSwapRow
	for _, alg := range []tcpip.ChecksumAlg{tcpip.AlgTCP, tcpip.AlgFletcher256} {
		opts := tcpip.BuildOptions{Alg: alg}

		// Fragment-swap model: packetize at 512 bytes, fragment at a
		// 96-byte MTU, swap same-shape fragments.
		var frag ipfrag.SwapResult
		flow := tcpip.NewLoopbackFlow(opts)
		var prev []byte
		p.Build().Walk(func(path string, data []byte) error {
			prev = nil
			for off := 0; off < len(data); off += 512 {
				end := off + 512
				if end > len(data) {
					end = len(data)
				}
				pkt := flow.NextPacket(nil, data[off:end])
				if prev != nil {
					r, err := ipfrag.SwapPair(prev, pkt, 96, opts)
					if err != nil {
						return err
					}
					frag.Add(r)
				}
				prev = pkt
			}
			return nil
		})

		// AAL5 splice model on the same corpus for contrast.
		res, err := sim.Run(p.Build(), p.Name, sim.Options{Build: opts})
		if err != nil {
			panic(err)
		}
		out = append(out, FragSwapRow{
			Algorithm:    alg.String(),
			FragMissRate: frag.MissRate(),
			AAL5MissRate: res.MissRate(res.MissedByChecksum),
		})
	}
	return out
}

// FragSwapReport renders the comparison.
func FragSwapReport(rows []FragSwapRow) string {
	t := report.Table{
		Title:   "Abstract's frag-reassembly model: same-offset swaps vs AAL5 splices (sics:/opt)",
		Headers: []string{"algorithm", "frag-swap miss", "AAL5-splice miss"},
	}
	for _, r := range rows {
		t.AddRow(r.Algorithm, report.Percent(r.FragMissRate), report.Percent(r.AAL5MissRate))
	}
	return t.Render() + "\nsame-offset substitution removes the inter-fragment colouring that cell\n" +
		"splices exhibit; the TCP checksum misses both models at rates far above\n" +
		"the uniform 0.00153%.\n"
}

// AdlerReport renders the comparison.
func AdlerReport(rows []AdlerRow) string {
	t := report.Table{
		Title:   "Extension: cell-level collision probability, 16-bit vs 32-bit checks (smeg:/u1)",
		Headers: []string{"algorithm", "bits", "measured collision", "uniform floor"},
	}
	for _, r := range rows {
		t.AddRow(r.Algorithm, fmt.Sprintf("%d", r.Bits),
			report.Percent(r.Collision), report.Percent(r.Uniform))
	}
	return t.Render()
}
