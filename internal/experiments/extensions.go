package experiments

import (
	"fmt"

	"realsum/internal/algo"
	"realsum/internal/corpus"
	"realsum/internal/dist"
	"realsum/internal/ipfrag"
	"realsum/internal/lossim"
	"realsum/internal/report"
	"realsum/internal/sim"
	"realsum/internal/tcpip"
)

// The experiments in this file go beyond the paper's evaluation along
// the directions its §7 sketches: the end-to-end consequence of switch
// discard policies, and how the checksum generation that followed
// (Adler-32) fares on the same data.

// EndToEndRow is one loss policy's receiver-side outcome.
type EndToEndRow struct {
	Policy string
	Stats  lossim.Stats
}

// EndToEnd transmits a zero-heavy corpus stream through three loss
// policies at equal underlying severity and reports what the receiver
// saw — §7's argument that Early Packet Discard removes the splice
// threat entirely, executed.
func EndToEnd(cfg Config) []EndToEndRow {
	p := corpus.SICSOpt().Scale(cfg.scale() * 0.3)
	p.Seed ^= cfg.Seed
	fs := p.Build()
	opts := tcpip.BuildOptions{}
	flow := tcpip.NewLoopbackFlow(opts)
	var packets [][]byte
	fs.Walk(func(path string, data []byte) error {
		for off := 0; off < len(data); off += 256 {
			end := off + 256
			if end > len(data) {
				end = len(data)
			}
			packets = append(packets, flow.NextPacket(nil, data[off:end]))
		}
		return nil
	})

	const cellLoss = 0.03
	// A 256-byte packet spans 7 cells; EPD's whole-packet probability
	// matching the same per-cell process is 1−(1−p)^7.
	pktLoss := 1.0
	for i := 0; i < 7; i++ {
		pktLoss *= 1 - cellLoss
	}
	pktLoss = 1 - pktLoss

	var out []EndToEndRow
	for _, pol := range []lossim.Policy{
		lossim.RandomLoss{P: cellLoss},
		&lossim.PPD{P: cellLoss},
		&lossim.EPD{PacketP: pktLoss},
	} {
		out = append(out, EndToEndRow{
			Policy: pol.Name(),
			Stats:  lossim.Run(packets, pol, opts, 0xE2E^cfg.Seed),
		})
	}
	return out
}

// EndToEndReport renders the policy comparison.
func EndToEndReport(rows []EndToEndRow) string {
	t := report.Table{
		Title: "§7 extension: receiver outcomes under cell-loss policies (3% cell loss)",
		Headers: []string{"policy", "sent", "intact", "clean-lost",
			"framing", "CRC", "header", "checksum", "undetected"},
	}
	for _, r := range rows {
		s := r.Stats
		t.AddRow(r.Policy,
			report.Count(s.PacketsSent), report.Count(s.Intact), report.Count(s.CleanLost),
			report.Count(s.DetectedFraming), report.Count(s.DetectedCRC),
			report.Count(s.DetectedHeader), report.Count(s.DetectedChecksum),
			report.Count(s.Undetected))
	}
	return t.Render()
}

// AdlerRow compares one algorithm's cell-level self-collision
// probability over the Stanford corpus.
type AdlerRow struct {
	Algorithm string
	Bits      int
	Collision float64
	Uniform   float64
}

// adlerAlgos maps the comparison's display labels onto registry names,
// in table order.
var adlerAlgos = []struct{ Label, Algo string }{
	{"IP/TCP", "tcp"},
	{"Fletcher-255", "f255"},
	{"Fletcher-256", "f256"},
	{"Adler-32", "adler32"},
	{"CRC-32", "crc32"},
}

// AdlerComparison extends Figure 3's distribution study with the
// 32-bit generation: Adler-32 and CRC-32 over the same 48-byte cells
// as the 16-bit sums.  The 16-bit checks collide ~10× above their
// uniform floor; the 32-bit checks have so much head-room that real
// data collisions come almost entirely from identical cells.
//
// All five algorithms come from the algo registry, and the cell scan
// runs through the sharded collection engine with one sparse census per
// algorithm per worker.
func AdlerComparison(cfg Config) []AdlerRow {
	fs := cfg.build(corpus.StanfordU1())
	algos := make([]algo.Algorithm, len(adlerAlgos))
	for i, s := range adlerAlgos {
		algos[i] = algo.MustLookup(s.Algo)
	}

	censuses, err := sim.Collect(cfg.ctx(), fs, cfg.collectOptions(),
		func() []*dist.Sparse {
			out := make([]*dist.Sparse, len(algos))
			for i := range out {
				out[i] = dist.NewSparse()
			}
			return out
		},
		func(shard []*dist.Sparse, _ int, data []byte) {
			for off := 0; off+dist.CellSize <= len(data); off += dist.CellSize {
				cell := data[off : off+dist.CellSize]
				for i, a := range algos {
					shard[i].Add(a.Sum(cell))
				}
			}
		},
		func(dst, src []*dist.Sparse) {
			for i := range dst {
				dst[i].Merge(src[i])
			}
		},
	)
	if err != nil {
		panic(err)
	}

	rows := make([]AdlerRow, len(algos))
	for i, a := range algos {
		rows[i] = AdlerRow{
			Algorithm: adlerAlgos[i].Label,
			Bits:      a.Width(),
			Collision: censuses[i].CollisionProbability(),
			Uniform:   a.UniformP(),
		}
	}
	return rows
}

// FragSwapRow compares one checksum's miss rate under the same-offset
// fragment-substitution model against its AAL5-splice miss rate.
type FragSwapRow struct {
	Algorithm    string
	FragMissRate float64 // same-offset fragment swaps (ipfrag model)
	AAL5MissRate float64 // cell splices on the same corpus (Table 8 model)
}

// FragSwap runs the abstract's fragmentation-and-reassembly error
// model: fragments of adjacent packets substituted at equal offsets
// (an IP-ID collision in a buggy reassembler).  Because substituted
// data keeps its own offset, Fletcher loses the *inter-fragment*
// colouring that drives its AAL5-splice advantage — though it keeps
// intra-fragment positional sensitivity (two fragments with equal byte
// sums still differ in the weighted term unless their bytes agree
// position-wise), so it does not fully degenerate to the TCP
// condition.  The reproducible headline is the TCP one: same-offset
// swaps on real data are missed at rates far above uniform, just like
// cell splices.
func FragSwap(cfg Config) []FragSwapRow {
	p := corpus.SICSOpt().Scale(cfg.scale() * 0.5)
	p.Seed ^= cfg.Seed
	var out []FragSwapRow
	for _, alg := range []tcpip.ChecksumAlg{tcpip.AlgTCP, tcpip.AlgFletcher256} {
		opts := tcpip.BuildOptions{Alg: alg}

		// Fragment-swap model: packetize at 512 bytes, fragment at a
		// 96-byte MTU, swap same-shape fragments.
		var frag ipfrag.SwapResult
		flow := tcpip.NewLoopbackFlow(opts)
		var prev []byte
		p.Build().Walk(func(path string, data []byte) error {
			prev = nil
			for off := 0; off < len(data); off += 512 {
				end := off + 512
				if end > len(data) {
					end = len(data)
				}
				pkt := flow.NextPacket(nil, data[off:end])
				if prev != nil {
					r, err := ipfrag.SwapPair(prev, pkt, 96, opts)
					if err != nil {
						return err
					}
					frag.Add(r)
				}
				prev = pkt
			}
			return nil
		})

		// AAL5 splice model on the same corpus for contrast.
		res, err := sim.Run(cfg.ctx(), p.Build(), p.Name, cfg.simOptions(sim.Options{Build: opts}))
		if err != nil {
			panic(err)
		}
		out = append(out, FragSwapRow{
			Algorithm:    alg.String(),
			FragMissRate: frag.MissRate(),
			AAL5MissRate: res.MissRate(res.MissedByChecksum),
		})
	}
	return out
}

// FragSwapReport renders the comparison.
func FragSwapReport(rows []FragSwapRow) string {
	t := report.Table{
		Title:   "Abstract's frag-reassembly model: same-offset swaps vs AAL5 splices (sics:/opt)",
		Headers: []string{"algorithm", "frag-swap miss", "AAL5-splice miss"},
	}
	for _, r := range rows {
		t.AddRow(r.Algorithm, report.Percent(r.FragMissRate), report.Percent(r.AAL5MissRate))
	}
	return t.Render() + "\nsame-offset substitution removes the inter-fragment colouring that cell\n" +
		"splices exhibit; the TCP checksum misses both models at rates far above\n" +
		"the uniform 0.00153%.\n"
}

// AdlerReport renders the comparison.
func AdlerReport(rows []AdlerRow) string {
	t := report.Table{
		Title:   "Extension: cell-level collision probability, 16-bit vs 32-bit checks (smeg:/u1)",
		Headers: []string{"algorithm", "bits", "measured collision", "uniform floor"},
	}
	for _, r := range rows {
		t.AddRow(r.Algorithm, fmt.Sprintf("%d", r.Bits),
			report.Percent(r.Collision), report.Percent(r.Uniform))
	}
	return t.Render()
}
