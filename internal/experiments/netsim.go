package experiments

import (
	"strings"

	"realsum/internal/corpus"
	"realsum/internal/netsim"
	"realsum/internal/scenario"
)

// NetSimData holds the §7 fault-injection results: the TCP/IPv4
// pipeline over the full default channel battery (raw and
// lz-compressed payloads), and the UDP + IP-fragmentation pipeline
// over the corruption channels.
type NetSimData struct {
	TCP *netsim.Tally
	// TCPLZ is the TCP pass rerun with the internal/lz payload stage —
	// the same channels, seed and corpus, near-uniform bytes on the wire.
	// NetSimReport contrasts it against TCP, the Table 7 axis measured
	// by injection.
	TCPLZ *netsim.Tally
	UDP   *netsim.Tally
}

// NetSim runs the Monte Carlo end-to-end pipeline over the Stanford /u1
// profile — the corpus whose zero-run structure drives the paper's §7
// claims about burst errors and the ones-complement sum.  All passes
// are declared as scenario.Scenario profiles — the same objects
// cmd/netsim flags alias and cmd/cksumd serves — so the experiment, the
// CLI and the service provably run one code path.  All inherit the
// Config's root seed, worker count and progress plumbing; output is
// byte-identical at any worker count.
func NetSim(cfg Config) NetSimData {
	// The UDP pass skips the three drop channels and the duplication
	// channel: fragment loss (correlated or not) just exercises ipfrag's
	// gap rejection, duplicated cells die at the AAL5 length check, and
	// the datagram-level story is about what corruption survives
	// reassembly.  The TCP pass runs the full battery, including the
	// i.i.d.-vs-correlated loss contrast at matched average rate, and
	// runs twice — raw and lz-compressed payloads — for the Table 7
	// contrast.
	// The raw TCP pass also closes the retransmission loop: the report
	// gains the residual-error and goodput tables plus the
	// residual-vs-miss-rate contrast over the matched-rate drop channels
	// (i.i.d. vs correlated).  The lz and UDP passes stay open-loop —
	// retransmission economics are a transport-layer story, told once.
	profile := corpus.StanfordU1().Name
	tcpScen := scenario.Scenario{
		Name:    "paper-netsim-tcp",
		Profile: profile,
		Scale:   cfg.scale() * 0.25,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
		Retrans: true,
	}
	lzScen := tcpScen
	lzScen.Name = "paper-netsim-tcp-lz"
	lzScen.Compress = true
	lzScen.Retrans = false
	udpScen := scenario.Scenario{
		Name:     "paper-netsim-udpfrag",
		Profile:  profile,
		Scale:    cfg.scale() * 0.1,
		Mode:     "udpfrag",
		Channels: []string{"bitflip", "burst", "reorder", "misinsert"},
		Seed:     cfg.Seed,
		Workers:  cfg.Workers,
	}

	tcp, err := tcpScen.Run(cfg.ctx(), cfg.Progress)
	if err != nil {
		panic(err)
	}
	tcpLZ, err := lzScen.Run(cfg.ctx(), cfg.Progress)
	if err != nil {
		panic(err)
	}
	udp, err := udpScen.Run(cfg.ctx(), cfg.Progress)
	if err != nil {
		panic(err)
	}
	return NetSimData{TCP: tcp, TCPLZ: tcpLZ, UDP: udp}
}

// NetSimReport renders the tallies plus the raw-vs-compressed contrast
// section.
func NetSimReport(d NetSimData) string {
	var b strings.Builder
	b.WriteString("NetSim: Monte Carlo fault injection, §7 alternative error models\n")
	b.WriteString(d.TCP.Report())
	b.WriteByte('\n')
	b.WriteString(d.TCPLZ.Report())
	b.WriteByte('\n')
	b.WriteString(netsim.RawVsCompressedReport(d.TCP, d.TCPLZ))
	b.WriteByte('\n')
	b.WriteString(d.UDP.Report())
	return b.String()
}
