package experiments

import (
	"fmt"

	"realsum/internal/corpus"
	"realsum/internal/report"
	"realsum/internal/sim"
	"realsum/internal/stats"
)

// CensusRow summarizes one file population's byte-level structure —
// the §1 motivation ("much of the data is character data, which has
// distinct skewing towards certain values... binary data has a
// propensity to contain zeros") made measurable.
type CensusRow struct {
	Type       corpus.FileType
	Bytes      uint64
	ZeroFrac   float64 // fraction of 0x00 bytes
	FFFrac     float64 // fraction of 0xFF bytes
	TopByte    byte
	TopFrac    float64
	EntropyBpB float64 // Shannon entropy, bits per byte
}

// DataCensus generates a sample of every file population and measures
// its byte histogram.
func DataCensus(cfg Config) []CensusRow {
	const perType = 512 * 1024 // bytes sampled per population
	n := int(float64(perType) * cfg.scale())
	if n < 4096 {
		n = 4096
	}
	var out []CensusRow
	for _, ft := range corpus.AllFileTypes() {
		spec := corpus.NewFileSpec(ft, n, 0xCE9505+uint64(ft))
		data := spec.Generate()
		var counts [256]uint64
		for _, b := range data {
			counts[b]++
		}
		var topB byte
		var topC uint64
		for b, c := range counts {
			if c > topC {
				topB, topC = byte(b), c
			}
		}
		total := float64(len(data))
		out = append(out, CensusRow{
			Type:       ft,
			Bytes:      uint64(len(data)),
			ZeroFrac:   float64(counts[0x00]) / total,
			FFFrac:     float64(counts[0xFF]) / total,
			TopByte:    topB,
			TopFrac:    float64(topC) / total,
			EntropyBpB: stats.ShannonEntropy(counts[:]),
		})
	}
	return out
}

// LocalityOfFailure reproduces §5.5's methodology: run the splice
// simulation with per-file attribution and show how concentrated the
// undetected splices are — a handful of pathological files carry most
// of the misses.
type LocalityOfFailure struct {
	Result     sim.Result
	TopShare   float64 // share of all misses carried by the top 5 files
	FilesOfAll float64 // those files as a share of all files
}

// Locality runs the attribution over the Stanford /u1 profile.
func Locality(cfg Config) LocalityOfFailure {
	p := corpus.StanfordU1()
	res, err := sim.Run(cfg.ctx(), cfg.build(p), p.Name,
		cfg.simOptions(sim.Options{TrackWorst: 10}))
	if err != nil {
		panic(err)
	}
	var top uint64
	n := 5
	if n > len(res.WorstFiles) {
		n = len(res.WorstFiles)
	}
	for _, f := range res.WorstFiles[:n] {
		top += f.Missed
	}
	out := LocalityOfFailure{Result: res}
	if res.MissedByChecksum > 0 {
		out.TopShare = float64(top) / float64(res.MissedByChecksum)
	}
	if res.Files > 0 {
		out.FilesOfAll = float64(n) / float64(res.Files)
	}
	return out
}

// LocalityReport renders the worst-file attribution.
func LocalityReport(d LocalityOfFailure) string {
	t := report.Table{
		Title:   "§5.5: locality of failure — files with the most undetected splices (smeg:/u1)",
		Headers: []string{"file", "remaining splices", "missed", "rate"},
	}
	for _, f := range d.Result.WorstFiles {
		rate := 0.0
		if f.Remaining > 0 {
			rate = float64(f.Missed) / float64(f.Remaining)
		}
		t.AddRow(f.Path, report.Count(f.Remaining), report.Count(f.Missed), report.Percent(rate))
	}
	s := t.Render()
	s += fmt.Sprintf("\ntop 5 files (%.1f%% of all files) carry %.1f%% of all missed splices\n",
		100*d.FilesOfAll, 100*d.TopShare)
	return s
}

// DataCensusReport renders the census.
func DataCensusReport(rows []CensusRow) string {
	t := report.Table{
		Title:   "§1 motivation: byte-level structure of each file population",
		Headers: []string{"population", "zero bytes", "0xFF bytes", "top byte", "top share", "entropy (bits/B)"},
	}
	for _, r := range rows {
		t.AddRow(r.Type.String(),
			report.Percent(r.ZeroFrac), report.Percent(r.FFFrac),
			fmt.Sprintf("%#02x", r.TopByte), report.Percent(r.TopFrac),
			fmt.Sprintf("%.2f", r.EntropyBpB))
	}
	return t.Render()
}
