package experiments

import (
	"fmt"
	"math"
	"strings"

	"realsum/internal/corpus"
	"realsum/internal/dist"
	"realsum/internal/report"
	"realsum/internal/sim"
	"realsum/internal/stats"
	"realsum/internal/tcpip"
)

// table6Systems are the four file systems Table 6 compares.
func table6Systems() []corpus.Profile {
	return []corpus.Profile{
		corpus.StanfordU1(), corpus.SICSOpt(), corpus.SICSSrc(1), corpus.SICSSrc(2),
	}
}

// Table6System holds one system's predicted-vs-actual comparison for
// substitution lengths k = 1..4.
type Table6System struct {
	System string
	K      []int
	// PredictedGlobal is the i.i.d. global model (Table 4's column).
	PredictedGlobal []float64
	// MeasuredGlobal is the measured global congruence.
	MeasuredGlobal []float64
	// LocalCongruent and ExcludeIdentical restrict to the 512-byte
	// window.
	LocalCongruent   []float64
	ExcludeIdentical []float64
	// Corrected applies the §5.4 cell-colouring factor
	// C(n−2,k−1)/C(n−1,k−1) = (n−k)/(n−1) for n = 7.
	Corrected []float64
	// Actual is the splice simulation's per-length miss rate.
	Actual []float64
}

// Table6 runs the full predicted-vs-actual comparison.
func Table6(cfg Config) []Table6System {
	var out []Table6System
	for _, p := range table6Systems() {
		fs := cfg.build(p)

		single, err := sim.CollectGlobal(cfg.ctx(), fs, 1, cfg.collectOptions())
		if err != nil {
			panic(err)
		}
		p1 := dist.FromHistogram(single.Histogram())
		pk := p1

		res, err := sim.Run(cfg.ctx(), cfg.build(p), p.Name, cfg.simOptions(sim.Options{}))
		if err != nil {
			panic(err)
		}

		sys := Table6System{System: p.Name}
		const n = 7 // cells per 256-byte packet
		for k := 1; k <= 4; k++ {
			g, err := sim.CollectGlobal(cfg.ctx(), fs, k, cfg.collectOptions())
			if err != nil {
				panic(err)
			}
			loc, err := sim.CollectLocal(cfg.ctx(), fs, k, 512, cfg.collectOptions())
			if err != nil {
				panic(err)
			}
			excl := loc.ExcludeIdenticalP()
			factor := float64(n-k) / float64(n-1)
			var actual float64
			if res.RemainingByLen[k] > 0 {
				actual = float64(res.MissedByLen[k]) / float64(res.RemainingByLen[k])
			}
			sys.K = append(sys.K, k)
			sys.PredictedGlobal = append(sys.PredictedGlobal, pk.SelfMatch())
			sys.MeasuredGlobal = append(sys.MeasuredGlobal, g.CongruentProbability())
			sys.LocalCongruent = append(sys.LocalCongruent, loc.CongruentP())
			sys.ExcludeIdentical = append(sys.ExcludeIdentical, excl)
			sys.Corrected = append(sys.Corrected, excl*factor)
			sys.Actual = append(sys.Actual, actual)
			if k < 4 {
				pk = pk.Convolve(p1)
			}
		}
		out = append(out, sys)
	}
	return out
}

// Table6Report renders Table 6.
func Table6Report(systems []Table6System) string {
	var b strings.Builder
	b.WriteString("Table 6: Checksum failures on real data — probability (%) of congruence for k-cell blocks\n")
	for _, s := range systems {
		t := report.Table{
			Title:   s.System,
			Headers: []string{"k", "Predicted", "Meas.Global", "Local Congruence", "Exclude Identical", "Corrected (§5.4)", "Actual"},
		}
		for i, k := range s.K {
			t.AddRow(fmt.Sprintf("%d", k),
				report.Percent(s.PredictedGlobal[i]),
				report.Percent(s.MeasuredGlobal[i]),
				report.Percent(s.LocalCongruent[i]),
				report.Percent(s.ExcludeIdentical[i]),
				report.Percent(s.Corrected[i]),
				report.Percent(s.Actual[i]))
		}
		b.WriteString(t.Render())
		b.WriteString("\n")
	}
	return b.String()
}

// Table7 reproduces the compression experiment: the /opt system before
// and after LZW compression.
func Table7(cfg Config) (plain, compressed sim.Result) {
	p := corpus.SICSOpt()
	opt := cfg.simOptions(sim.Options{CheckCRC: true})
	var err error
	plain, err = sim.Run(cfg.ctx(), cfg.build(p), p.Name, opt)
	if err != nil {
		panic(err)
	}
	opt.Compress = true
	compressed, err = sim.Run(cfg.ctx(), cfg.build(p), p.Name+" compressed", opt)
	if err != nil {
		panic(err)
	}
	return plain, compressed
}

// Table7Report renders Table 7 with the uniform expectation alongside.
func Table7Report(plain, compressed sim.Result) string {
	t := report.Table{
		Title:   "Table 7: CRC and TCP Checksum Results, Compressed Data (256-byte packets)",
		Headers: []string{"system", "Remaining", "Missed by TCP", "rate", "uniform expectation"},
	}
	for _, r := range []sim.Result{plain, compressed} {
		t.AddRow(r.System, report.Count(r.Remaining),
			report.Count(r.MissedByChecksum),
			report.Percent(r.MissRate(r.MissedByChecksum)),
			report.Percent(stats.UniformMissRate(16)))
	}
	return t.Render()
}

// table8Systems are the five systems Table 8 and Table 9 compare.
func table8Systems() []corpus.Profile {
	return []corpus.Profile{
		corpus.SICSOpt(), corpus.StanfordU1(), corpus.StanfordUsrLocal(),
		corpus.SICSSrc(1), corpus.SICSSrc(2),
	}
}

// packetAlgos lists the algo-registry names the packet builder can
// carry end-to-end, in table order.  Table 8 and the §5.5 pathological
// comparison iterate this list and dispatch through the registry plus
// tcpip.AlgByName — there is no per-algorithm switch anywhere in the
// experiment layer.
var packetAlgos = []string{"tcp", "f255", "f256"}

// AlgResult is one algorithm's splice-simulation outcome inside a
// multi-algorithm comparison row.
type AlgResult struct {
	// Algo is the internal/algo registry name.
	Algo string
	// Label is the packet builder's display name ("TCP", "F-255", ...).
	Label string
	Res   sim.Result
}

// Table8Row is one system's registry-driven checksum comparison.
type Table8Row struct {
	System  string
	Results []AlgResult
}

// Get returns the result for one registry name; it panics on a name the
// row does not carry, which is always a programming error.
func (r Table8Row) Get(name string) sim.Result {
	for _, e := range r.Results {
		if e.Algo == name {
			return e.Res
		}
	}
	panic(fmt.Sprintf("experiments: row %q has no algorithm %q", r.System, name))
}

// runPacketAlgos simulates one profile under every packetAlgos entry.
func runPacketAlgos(cfg Config, p corpus.Profile) []AlgResult {
	var out []AlgResult
	for _, name := range packetAlgos {
		alg, ok := tcpip.AlgByName(name)
		if !ok {
			panic(fmt.Sprintf("experiments: packet builder cannot carry %q", name))
		}
		res, err := sim.Run(cfg.ctx(), cfg.build(p), p.Name,
			cfg.simOptions(sim.Options{Build: tcpip.BuildOptions{Alg: alg}}))
		if err != nil {
			panic(err)
		}
		out = append(out, AlgResult{Algo: name, Label: alg.String(), Res: res})
	}
	return out
}

// Table8 runs the Fletcher comparison.
func Table8(cfg Config) []Table8Row {
	var out []Table8Row
	for _, p := range table8Systems() {
		out = append(out, Table8Row{System: p.Name, Results: runPacketAlgos(cfg, p)})
	}
	return out
}

// Table8Report renders Table 8.
func Table8Report(rows []Table8Row) string {
	t := report.Table{
		Title:   "Table 8: Fletcher's Checksum Results (256-byte packets)",
		Headers: []string{"System", "by", "Missed", "% splices"},
	}
	for _, r := range rows {
		for _, e := range r.Results {
			t.AddRow(r.System, e.Label, report.Count(e.Res.MissedByChecksum),
				report.Percent(e.Res.MissRate(e.Res.MissedByChecksum)))
		}
		t.AddRow("", "", "", "")
	}
	return t.Render()
}

// Table9Row compares header vs trailer checksum placement.
type Table9Row struct {
	System  string
	Header  sim.Result
	Trailer sim.Result
}

// Table9 runs the trailer-checksum experiment.
func Table9(cfg Config) []Table9Row {
	var out []Table9Row
	for _, p := range table8Systems() {
		hdr, err := sim.Run(cfg.ctx(), cfg.build(p), p.Name, cfg.simOptions(sim.Options{}))
		if err != nil {
			panic(err)
		}
		trl, err := sim.Run(cfg.ctx(), cfg.build(p), p.Name,
			cfg.simOptions(sim.Options{Build: tcpip.BuildOptions{Placement: tcpip.PlacementTrailer}}))
		if err != nil {
			panic(err)
		}
		out = append(out, Table9Row{System: p.Name, Header: hdr, Trailer: trl})
	}
	return out
}

// Table9Report renders Table 9.
func Table9Report(rows []Table9Row) string {
	t := report.Table{
		Title:   "Table 9: Trailer Checksum Results (256-byte packets)",
		Headers: []string{"Filesystem", "TCP Misses", "Trailer Misses", "Uniform"},
	}
	for _, r := range rows {
		t.AddRow(r.System,
			report.Percent(r.Header.MissRate(r.Header.MissedByChecksum)),
			report.Percent(r.Trailer.MissRate(r.Trailer.MissedByChecksum)),
			report.Percent(stats.UniformMissRate(16)))
	}
	return t.Render()
}

// Table10 compares header vs trailer false positives/negatives on the
// Stanford /u1 system.
type Table10Data struct {
	Header  sim.Result
	Trailer sim.Result
}

// Table10 runs the 2×2 comparison.
func Table10(cfg Config) Table10Data {
	p := corpus.StanfordU1()
	hdr, err := sim.Run(cfg.ctx(), cfg.build(p), p.Name, cfg.simOptions(sim.Options{}))
	if err != nil {
		panic(err)
	}
	trl, err := sim.Run(cfg.ctx(), cfg.build(p), p.Name,
		cfg.simOptions(sim.Options{Build: tcpip.BuildOptions{Placement: tcpip.PlacementTrailer}}))
	if err != nil {
		panic(err)
	}
	return Table10Data{Header: hdr, Trailer: trl}
}

// Table10Report renders Table 10.
func Table10Report(d Table10Data) string {
	t := report.Table{
		Title:   "Table 10: Header vs Trailer Checksum Failure Rates (smeg:/u1)",
		Headers: []string{"False Positive/Negative", "header", "trailer"},
	}
	t.AddRow("Fails checksum, data identical",
		report.Count(d.Header.IdenticalFailedChecksum),
		report.Count(d.Trailer.IdenticalFailedChecksum))
	t.AddRow("Passes checksum, data changed",
		report.Count(d.Header.MissedByChecksum),
		report.Count(d.Trailer.MissedByChecksum))
	hID := d.Header.Counts
	tID := d.Trailer.Counts
	t.AddRow("Fails checksum, data identical (%)",
		report.Percent(ratio(hID.IdenticalFailedChecksum, hID.Total)),
		report.Percent(ratio(tID.IdenticalFailedChecksum, tID.Total)))
	t.AddRow("Passes checksum, data changed (%)",
		report.Percent(hID.MissRate(hID.MissedByChecksum)),
		report.Percent(tID.MissRate(tID.MissedByChecksum)))
	return t.Render()
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// EffectiveBitsRow is the §7 headline computation for one system.
type EffectiveBitsRow struct {
	System        string
	MissRate      float64
	EffectiveBits float64
}

// EffectiveBits computes, for each Table 1–3 system, how many bits of
// uniform-data CRC the measured TCP miss rate corresponds to.
func EffectiveBits(results []sim.Result) []EffectiveBitsRow {
	var out []EffectiveBitsRow
	for _, r := range results {
		rate := r.MissRate(r.MissedByChecksum)
		out = append(out, EffectiveBitsRow{
			System:        r.System,
			MissRate:      rate,
			EffectiveBits: stats.EffectiveBits(rate),
		})
	}
	return out
}

// EffectiveBitsReport renders the §7 comparison.
func EffectiveBitsReport(rows []EffectiveBitsRow) string {
	t := report.Table{
		Title:   "§7: Effective strength of the 16-bit TCP checksum over real data",
		Headers: []string{"System", "miss rate", "effective bits", "10-bit CRC (uniform)"},
	}
	for _, r := range rows {
		eb := "inf"
		if !math.IsInf(r.EffectiveBits, 1) {
			eb = fmt.Sprintf("%.1f", r.EffectiveBits)
		}
		t.AddRow(r.System, report.Percent(r.MissRate), eb, report.Percent(stats.UniformMissRate(10)))
	}
	return t.Render()
}

// Ablations runs the §6.2 and §6.3 checks over the Stanford profile.
type AblationData struct {
	Baseline     sim.Result // filled IP header, inverted checksum
	ZeroIPHeader sim.Result // §6.2 artifact reproduced
	NoInvert     sim.Result // §6.3 non-inverted checksum
}

// Ablations runs all three configurations on the same corpus.
func Ablations(cfg Config) AblationData {
	p := corpus.SICSOpt()
	base, err := sim.Run(cfg.ctx(), cfg.build(p), p.Name, cfg.simOptions(sim.Options{}))
	if err != nil {
		panic(err)
	}
	zero, err := sim.Run(cfg.ctx(), cfg.build(p), p.Name,
		cfg.simOptions(sim.Options{Build: tcpip.BuildOptions{ZeroIPHeader: true}}))
	if err != nil {
		panic(err)
	}
	noinv, err := sim.Run(cfg.ctx(), cfg.build(p), p.Name,
		cfg.simOptions(sim.Options{Build: tcpip.BuildOptions{NoInvert: true}}))
	if err != nil {
		panic(err)
	}
	return AblationData{Baseline: base, ZeroIPHeader: zero, NoInvert: noinv}
}

// AblationsReport renders the ablation comparison.
func AblationsReport(d AblationData) string {
	t := report.Table{
		Title:   "§6.2/§6.3 ablations (sics.se:/opt)",
		Headers: []string{"configuration", "Remaining", "Missed by TCP", "rate"},
	}
	for _, e := range []struct {
		name string
		res  sim.Result
	}{
		{"baseline (filled IP header, inverted)", d.Baseline},
		{"zeroed IP header (SIGCOMM '95 artifact)", d.ZeroIPHeader},
		{"non-inverted checksum", d.NoInvert},
	} {
		t.AddRow(e.name, report.Count(e.res.Remaining),
			report.Count(e.res.MissedByChecksum),
			report.Percent(e.res.MissRate(e.res.MissedByChecksum)))
	}
	return t.Render()
}

// Pathological runs the §5.5 pathological corpora under every packet
// algorithm the registry and builder share.
type PathologicalRow struct {
	Corpus  string
	Results []AlgResult
}

// Get returns the result for one registry name (panics if absent).
func (r PathologicalRow) Get(name string) sim.Result {
	for _, e := range r.Results {
		if e.Algo == name {
			return e.Res
		}
	}
	panic(fmt.Sprintf("experiments: row %q has no algorithm %q", r.Corpus, name))
}

// Pathological measures the §5.5 cases.
func Pathological(cfg Config) []PathologicalRow {
	var out []PathologicalRow
	for _, p := range []corpus.Profile{
		corpus.PathologicalPBM(), corpus.PathologicalPSHex(), corpus.PathologicalGmon(),
	} {
		out = append(out, PathologicalRow{Corpus: p.Name, Results: runPacketAlgos(cfg, p)})
	}
	return out
}

// PathologicalReport renders the §5.5 comparison.
func PathologicalReport(rows []PathologicalRow) string {
	headers := []string{"corpus"}
	if len(rows) > 0 {
		for _, e := range rows[0].Results {
			headers = append(headers, e.Label)
		}
	}
	t := report.Table{
		Title:   "§5.5: Pathological data patterns",
		Headers: headers,
	}
	for _, r := range rows {
		cells := []string{r.Corpus}
		for _, e := range r.Results {
			cells = append(cells, report.Percent(e.Res.MissRate(e.Res.MissedByChecksum)))
		}
		t.AddRow(cells...)
	}
	return t.Render()
}
