package experiments

import (
	"strings"
	"testing"
)

func TestEndToEndPolicies(t *testing.T) {
	rows := EndToEnd(Config{Scale: 0.3})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]int{}
	for i, r := range rows {
		byName[r.Policy] = i
		if r.Stats.PacketsSent == 0 {
			t.Fatalf("%s: nothing sent", r.Policy)
		}
		if r.Stats.Undetected != 0 {
			t.Errorf("%s: undetected corruption with CRC backstop: %d", r.Policy, r.Stats.Undetected)
		}
	}
	rnd := rows[byName["random"]].Stats
	ppd := rows[byName["ppd"]].Stats
	epd := rows[byName["epd"]].Stats

	// Random loss leaves damage for CRC/checksum layers; PPD moves it
	// to framing; EPD leaves no damage at all.
	if rnd.DetectedFraming == 0 {
		t.Error("random loss should produce framing-detected damage")
	}
	if ppd.DetectedCRC != 0 {
		t.Errorf("PPD should leave nothing for the CRC: %d", ppd.DetectedCRC)
	}
	if epd.DetectedFraming+epd.DetectedCRC+epd.DetectedHeader+epd.DetectedChecksum != 0 {
		t.Error("EPD should deliver only intact packets")
	}
	if epd.CleanLost == 0 {
		t.Error("EPD at matched severity should lose whole packets")
	}
	if !strings.Contains(EndToEndReport(rows), "epd") {
		t.Error("report malformed")
	}
}

func TestDataCensusShape(t *testing.T) {
	rows := DataCensus(Config{Scale: 0.1})
	byName := map[string]CensusRow{}
	for _, r := range rows {
		byName[r.Type.String()] = r
		if r.Bytes == 0 {
			t.Fatalf("%v: empty sample", r.Type)
		}
		if r.EntropyBpB < 0 || r.EntropyBpB > 8.0001 {
			t.Fatalf("%v: entropy %v out of range", r.Type, r.EntropyBpB)
		}
	}
	// §1's claims, quantified: text skews to letters with mid entropy;
	// binaries and profiles are zero-heavy; compressed/random are
	// near 8 bits/byte; PBM is essentially all 0x00/0xFF.
	if e := byName["text"].EntropyBpB; e < 3.5 || e > 5.5 {
		t.Errorf("text entropy %v, want ≈4.5", e)
	}
	if z := byName["gmon"].ZeroFrac; z < 0.9 {
		t.Errorf("gmon zero fraction %v", z)
	}
	if z := byName["exec"].ZeroFrac; z < 0.15 {
		t.Errorf("exec zero fraction %v", z)
	}
	if e := byName["random"].EntropyBpB; e < 7.9 {
		t.Errorf("random entropy %v", e)
	}
	if e := byName["compressed"].EntropyBpB; e < 7.5 {
		t.Errorf("compressed entropy %v", e)
	}
	if bw := byName["pbm"].ZeroFrac + byName["pbm"].FFFrac; bw < 0.98 {
		t.Errorf("pbm not black-and-white: %v", bw)
	}
	if !strings.Contains(DataCensusReport(rows), "entropy") {
		t.Error("census report malformed")
	}
}

func TestAdlerComparisonShape(t *testing.T) {
	rows := AdlerComparison(Config{Scale: 0.3})
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(name string) AdlerRow {
		for _, r := range rows {
			if r.Algorithm == name {
				return r
			}
		}
		t.Fatalf("missing %s", name)
		return AdlerRow{}
	}
	tcp := get("IP/TCP")
	adl := get("Adler-32")
	c32 := get("CRC-32")
	// All the 16-bit checks collide well above the 32-bit ones on real
	// cells.
	if tcp.Collision <= adl.Collision {
		t.Errorf("TCP collision %.3g not above Adler-32 %.3g", tcp.Collision, adl.Collision)
	}
	// On real data even 32-bit checks collide above their uniform floor
	// (identical cells guarantee it), and Adler ≥ CRC-32 because of its
	// short-input weakness.
	if adl.Collision < c32.Collision {
		t.Errorf("Adler-32 %.3g below CRC-32 %.3g — short-input weakness missing",
			adl.Collision, c32.Collision)
	}
	if !strings.Contains(AdlerReport(rows), "Adler-32") {
		t.Error("report malformed")
	}
}

func TestLocalityOfFailure(t *testing.T) {
	d := Locality(Config{Scale: 0.4})
	if d.Result.MissedByChecksum == 0 {
		t.Skip("no misses at this scale")
	}
	if len(d.Result.WorstFiles) == 0 {
		t.Fatal("no attribution recorded")
	}
	// §5.5: failures are concentrated — the top 5 files (a few percent
	// of the corpus) should carry a large share of all misses.
	if d.TopShare < 0.3 {
		t.Errorf("top-5 files carry only %.1f%% of misses; expected sharp locality", 100*d.TopShare)
	}
	if d.FilesOfAll > 0.2 {
		t.Errorf("top files are %.1f%% of the corpus; attribution degenerate", 100*d.FilesOfAll)
	}
	// Sorted descending by misses.
	w := d.Result.WorstFiles
	for i := 1; i < len(w); i++ {
		if w[i].Missed > w[i-1].Missed {
			t.Fatal("WorstFiles not sorted")
		}
	}
	if !strings.Contains(LocalityReport(d), "locality of failure") {
		t.Error("report malformed")
	}
}

func TestFragSwapColoringPrediction(t *testing.T) {
	rows := FragSwap(Config{Scale: 0.4})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var tcp, f256 FragSwapRow
	for _, r := range rows {
		switch r.Algorithm {
		case "TCP":
			tcp = r
		case "F-256":
			f256 = r
		}
	}
	if tcp.FragMissRate == 0 {
		t.Skip("no fragment-swap misses at this scale")
	}
	// On AAL5 splices Fletcher wins decisively.
	if tcp.AAL5MissRate > 0 && f256.AAL5MissRate >= tcp.AAL5MissRate {
		t.Errorf("AAL5: Fletcher %.4g not below TCP %.4g", f256.AAL5MissRate, tcp.AAL5MissRate)
	}
	// The TCP checksum misses same-offset fragment swaps far above the
	// uniform 2^-16, just as it misses cell splices — the abstract's
	// fragmentation-and-reassembly claim.
	if tcp.FragMissRate < 2.0/65536 {
		t.Errorf("TCP frag-swap miss rate %.4g shows no degradation over uniform", tcp.FragMissRate)
	}
	if !strings.Contains(FragSwapReport(rows), "frag-swap miss") {
		t.Error("report malformed")
	}
}
