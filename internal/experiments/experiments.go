// Package experiments regenerates every table and figure in the
// paper's evaluation.  Each function runs one experiment end to end —
// building the synthetic corpora, driving the splice simulation or
// distribution collection, and rendering the result in the paper's
// layout — at a configurable corpus scale so the same code backs both
// the full `cmd/paper` runs and the fast benchmark harness.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"realsum/internal/algo"
	"realsum/internal/corpus"
	"realsum/internal/dist"
	"realsum/internal/report"
	"realsum/internal/sim"
)

// Config scales and plumbs the experiments.
type Config struct {
	// Scale multiplies every profile's file count (1.0 = the default
	// corpus sizes; benchmarks use less).
	Scale float64
	// Workers bounds per-pass parallelism (default GOMAXPROCS).  Every
	// pass is deterministic in its output at any worker count.
	Workers int
	// Seed is the single root seed for every randomized pass: corpus
	// generation, local any-cells sampling, end-to-end loss runs and
	// netsim trials all derive their seeds from it.  Zero reproduces the
	// historical per-pass seeds, so the committed goldens correspond to
	// Seed 0.
	Seed uint64
	// Progress, when non-nil, receives per-file throughput updates from
	// every pass — the source of cmd/paper -progress.
	Progress *sim.Progress
	// Ctx cancels long passes between files (nil means Background).
	Ctx context.Context
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

func (c Config) ctx() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// collectOptions carries the Config's plumbing into a collection pass.
func (c Config) collectOptions() sim.CollectOptions {
	return sim.CollectOptions{Workers: c.Workers, Seed: c.Seed, Progress: c.Progress}
}

// build scales a profile and folds the Config's root seed into its
// corpus seed — the one place every experiment materializes a corpus,
// so -seed reshapes every synthetic file system coherently.
func (c Config) build(p corpus.Profile) *corpus.FS {
	p = p.Scale(c.scale())
	p.Seed ^= c.Seed
	return p.Build()
}

// simOptions applies the Config's plumbing to splice-run options.
func (c Config) simOptions(opt sim.Options) sim.Options {
	opt.Workers = c.Workers
	opt.Progress = c.Progress
	return opt
}

// runSystems simulates a list of profiles under opt.
func runSystems(cfg Config, profiles []corpus.Profile, opt sim.Options) []sim.Result {
	var out []sim.Result
	for _, p := range profiles {
		fs := cfg.build(p)
		res, err := sim.Run(cfg.ctx(), fs, p.Name, cfg.simOptions(opt))
		if err != nil {
			panic(fmt.Sprintf("experiments: %s: %v", p.Name, err))
		}
		out = append(out, res)
	}
	return out
}

// Tables123 reproduces Tables 1–3: CRC and TCP checksum results over
// the NSC, SICS and Stanford systems with 256-byte packets.
func Tables123(cfg Config) []sim.Result {
	return runSystems(cfg, corpus.AllProfiles(), sim.Options{CheckCRC: true})
}

// Table1Report renders the NSC slice of Tables123.
func Table1Report(results []sim.Result) string {
	return "Table 1: CRC and TCP Checksum Results (256-byte packets, NSC systems)\n" +
		report.SpliceTable(filterSystems(results, "nsc"), "TCP")
}

// Table2Report renders the SICS slice.
func Table2Report(results []sim.Result) string {
	return "Table 2: CRC and TCP Checksum Results (256-byte packets, SICS systems)\n" +
		report.SpliceTable(filterSystems(results, "sics.se"), "TCP")
}

// Table3Report renders the Stanford slice.
func Table3Report(results []sim.Result) string {
	return "Table 3: CRC and TCP Checksum Results (256-byte packets, Stanford systems)\n" +
		report.SpliceTable(filterSystems(results, "stanford"), "TCP")
}

func filterSystems(results []sim.Result, substr string) []sim.Result {
	var out []sim.Result
	for _, r := range results {
		if strings.Contains(r.System, substr) {
			out = append(out, r)
		}
	}
	return out
}

// Figure2 reproduces the distribution study of §4.3–4.4 over the
// Stanford /u1 profile: sorted PDFs of the TCP checksum over blocks of
// k = 1, 2, 4 cells, the convolution prediction for k = 2, and the
// CDFs of the most common 65 values.
type Figure2Data struct {
	PDF     map[int][]float64 // k -> sorted descending PDF
	CDF65   map[int][]float64 // k -> CDF over top 65 values
	Predict []float64         // sorted PDF of the k=2 convolution prediction
	// TopShare is the share of probability mass carried by the top 65
	// single-cell values (≈0.1% of the space) — §4.3's "the top 0.1% of
	// the checksum values occurred 2.5% of the time".
	TopShare float64
	// PMaxValue and PMaxP identify the single most common value.
	PMaxValue uint16
	PMaxP     float64
}

// Figure2 collects the Figure 2 series.
func Figure2(cfg Config) Figure2Data {
	fs := cfg.build(corpus.StanfordU1())
	out := Figure2Data{PDF: map[int][]float64{}, CDF65: map[int][]float64{}}
	var single *dist.Histogram
	for _, k := range []int{1, 2, 4} {
		h, err := sim.CollectBlockHistogram(cfg.ctx(), fs, k, cfg.collectOptions())
		if err != nil {
			panic(err)
		}
		out.PDF[k] = h.SortedPDF()
		out.CDF65[k] = h.CDF(65)
		if k == 1 {
			single = h
		}
	}
	p1 := dist.FromHistogram(single)
	p2 := p1.Convolve(p1)
	out.Predict = sortedDesc(p2)
	out.TopShare = single.TopShare(65)
	out.PMaxValue, out.PMaxP = single.PMax()
	return out
}

func sortedDesc(p dist.PMF) []float64 {
	var out []float64
	for _, v := range p.P {
		if v > 0 {
			out = append(out, v)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// Figure2Report renders the headline numbers and a short TSV.
func Figure2Report(d Figure2Data) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: TCP checksum distribution over smeg:/u1 blocks\n")
	fmt.Fprintf(&b, "  most common cell value: %#04x (p = %s)\n", d.PMaxValue, report.Percent(d.PMaxP))
	fmt.Fprintf(&b, "  top-65 cell values carry %s of the mass (uniform would be %s)\n",
		report.Percent(d.TopShare), report.Percent(65.0/65535))
	series := []report.Series{
		{Name: "k=1", Y: d.PDF[1]},
		{Name: "k=2", Y: d.PDF[2]},
		{Name: "k=4", Y: d.PDF[4]},
		{Name: "predict2", Y: d.Predict},
	}
	b.WriteString(report.TSV(series, 20))
	return b.String()
}

// figure3Algos maps the figure's series labels onto registry names.
// Dispatch is data: the pass below iterates this table and pulls each
// algorithm from the algo registry.
var figure3Algos = []struct{ Label, Algo string }{
	{"IP/TCP", "tcp"},
	{"F255", "f255"},
	{"F256", "f256"},
}

// Figure3 reproduces the PDF comparison of TCP vs Fletcher-255 vs
// Fletcher-256 over 48-byte cells (most common 256 values).
func Figure3(cfg Config) map[string][]float64 {
	fs := cfg.build(corpus.StanfordU1())
	out := map[string][]float64{}
	for _, s := range figure3Algos {
		h, err := sim.CollectCellHistogram(cfg.ctx(), fs, algo.MustLookup(s.Algo), cfg.collectOptions())
		if err != nil {
			panic(err)
		}
		pdf := h.SortedPDF()
		if len(pdf) > 256 {
			pdf = pdf[:256]
		}
		out[s.Label] = pdf
	}
	return out
}

// Figure3Report renders the Figure 3 series as TSV.
func Figure3Report(d map[string][]float64) string {
	return "Figure 3: PDF of TCP, F255, F256 over 48-byte cells (top 256)\n" +
		report.TSV([]report.Series{
			{Name: "IP/TCP", Y: d["IP/TCP"]},
			{Name: "F255", Y: d["F255"]},
			{Name: "F256", Y: d["F256"]},
		}, 16)
}

// Table4Row is one line of Table 4: the probability that two k-cell
// blocks drawn from the file system have congruent checksums.
type Table4Row struct {
	K         int
	Uniform   float64 // 1/65535
	Predicted float64 // i.i.d.-cell convolution model
	Measured  float64 // actual global block sampling
}

// Table4 computes the match probabilities for k = 1..5.
func Table4(cfg Config) []Table4Row {
	fs := cfg.build(corpus.StanfordU1())
	single, err := sim.CollectGlobal(cfg.ctx(), fs, 1, cfg.collectOptions())
	if err != nil {
		panic(err)
	}
	p1 := dist.FromHistogram(single.Histogram())
	var rows []Table4Row
	pk := p1
	for k := 1; k <= 5; k++ {
		g, err := sim.CollectGlobal(cfg.ctx(), fs, k, cfg.collectOptions())
		if err != nil {
			panic(err)
		}
		rows = append(rows, Table4Row{
			K:         k,
			Uniform:   1.0 / 65535,
			Predicted: pk.SelfMatch(),
			Measured:  g.CongruentProbability(),
		})
		if k < 5 {
			pk = pk.Convolve(p1)
		}
	}
	return rows
}

// Table4Report renders Table 4.
func Table4Report(rows []Table4Row) string {
	t := report.Table{
		Title:   "Table 4: Probability (%) of checksum match for substitutions of length k cells",
		Headers: []string{"Length", "Uniform", "Predicted", "Measured"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.K),
			report.Percent(r.Uniform), report.Percent(r.Predicted), report.Percent(r.Measured))
	}
	return t.Render()
}

// Table5Row is one line of Table 5: global vs local congruence.
type Table5Row struct {
	K                  int
	Global             float64
	Local              float64
	ExcludingIdentical float64
	// NonContiguous uses the paper's actual sampling method: k-cell
	// blocks assembled from any cells of the window, not just adjacent
	// runs (§4.6).
	NonContiguous float64
	// NonContiguousExcl excludes byte-identical non-contiguous pairs.
	NonContiguousExcl float64
}

// Table5 computes locality-restricted congruence for k = 1..4 over the
// Stanford profile, with the paper's 512-byte window.
func Table5(cfg Config) []Table5Row {
	fs := cfg.build(corpus.StanfordU1())
	var rows []Table5Row
	for k := 1; k <= 4; k++ {
		g, err := sim.CollectGlobal(cfg.ctx(), fs, k, cfg.collectOptions())
		if err != nil {
			panic(err)
		}
		loc, err := sim.CollectLocal(cfg.ctx(), fs, k, 512, cfg.collectOptions())
		if err != nil {
			panic(err)
		}
		nc, err := sim.CollectLocalAnyCells(cfg.ctx(), fs, k, 512, 8, cfg.collectOptions())
		if err != nil {
			panic(err)
		}
		rows = append(rows, Table5Row{
			K:                  k,
			Global:             g.CongruentProbability(),
			Local:              loc.CongruentP(),
			ExcludingIdentical: loc.ExcludeIdenticalP(),
			NonContiguous:      nc.CongruentP(),
			NonContiguousExcl:  nc.ExcludeIdenticalP(),
		})
	}
	return rows
}

// Table5Report renders Table 5.
func Table5Report(rows []Table5Row) string {
	t := report.Table{
		Title: "Table 5: Probability (%) of checksum match for k-cell blocks, local data (512-byte window)",
		Headers: []string{"Length", "Globally Congruent", "Locally Congruent", "Excluding Identical",
			"Non-contig Congruent", "Non-contig Excl.Ident"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.K),
			report.Percent(r.Global), report.Percent(r.Local), report.Percent(r.ExcludingIdentical),
			report.Percent(r.NonContiguous), report.Percent(r.NonContiguousExcl))
	}
	return t.Render()
}
