package experiments

import (
	"math"
	"strings"
	"testing"
)

// tiny runs the sim-heavy experiments at 5% scale so the full suite
// stays fast; small gives the distribution experiments enough blocks
// for their pair estimators to stabilize.  Assertions are about shape,
// not magnitude.
var (
	tiny  = Config{Scale: 0.05}
	small = Config{Scale: 0.4}
)

func TestTables123ShapeClaims(t *testing.T) {
	results := Tables123(tiny)
	if len(results) != 19 {
		t.Fatalf("expected 19 systems (9 NSC + 8 SICS + 2 Stanford), got %d", len(results))
	}
	var worst float64
	for _, r := range results {
		if r.Remaining == 0 {
			t.Errorf("%s: no remaining splices", r.System)
			continue
		}
		rate := r.MissRate(r.MissedByChecksum)
		if rate > worst {
			worst = rate
		}
		// CRC-32 misses should be zero (rate 2^-32 needs ~10^9 splices
		// to observe even once).
		if r.MissedByCRC != 0 {
			t.Errorf("%s: CRC missed %d", r.System, r.MissedByCRC)
		}
	}
	// At least one system should show the paper's 10–100× degradation
	// over the uniform 0.0015%.
	if worst < 10.0/65536 {
		t.Errorf("worst TCP miss rate %.6g shows no degradation over uniform", worst)
	}
	for _, render := range []string{
		Table1Report(results), Table2Report(results), Table3Report(results),
	} {
		if !strings.Contains(render, "Missed by TCP") {
			t.Error("report missing expected rows")
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	d := Figure2(tiny)
	for _, k := range []int{1, 2, 4} {
		if len(d.PDF[k]) == 0 {
			t.Fatalf("k=%d: empty PDF", k)
		}
		// Sorted descending.
		for i := 1; i < len(d.PDF[k]); i++ {
			if d.PDF[k][i] > d.PDF[k][i-1] {
				t.Fatalf("k=%d: PDF not sorted at %d", k, i)
			}
		}
		if len(d.CDF65[k]) == 0 || d.CDF65[k][len(d.CDF65[k])-1] > 1+1e-9 {
			t.Fatalf("k=%d: bad CDF", k)
		}
	}
	// §4.3: hot spots — the top 65 values carry far more than the
	// uniform 65/65535 ≈ 0.1%.
	if d.TopShare < 0.01 {
		t.Errorf("top-65 share %.4f shows no hot spots", d.TopShare)
	}
	// Larger blocks are more uniform: PMax decreases with k.
	if d.PDF[4][0] > d.PDF[1][0] {
		t.Errorf("PMax grew with block size: k=1 %.4g, k=4 %.4g", d.PDF[1][0], d.PDF[4][0])
	}
	// The k=2 measured distribution should be less uniform than the
	// i.i.d. prediction (local correlation, §4.4).
	if len(d.Predict) > 0 && d.PDF[2][0] < d.Predict[0] {
		t.Errorf("measured k=2 PMax %.4g below i.i.d. prediction %.4g", d.PDF[2][0], d.Predict[0])
	}
	if !strings.Contains(Figure2Report(d), "most common cell value") {
		t.Error("Figure2Report malformed")
	}
}

func TestFigure3Shape(t *testing.T) {
	d := Figure3(tiny)
	for _, name := range []string{"IP/TCP", "F255", "F256"} {
		if len(d[name]) == 0 {
			t.Fatalf("%s: empty PDF", name)
		}
		// All three should show comparable single-cell non-uniformity
		// (§5.2: "a similar non-uniform curve").
		if d[name][0] < 0.001 {
			t.Errorf("%s: PMax %.5g suspiciously uniform", name, d[name][0])
		}
	}
	if !strings.Contains(Figure3Report(d), "F255") {
		t.Error("Figure3Report malformed")
	}
}

func TestTable4Shape(t *testing.T) {
	rows := Table4(small)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.K != i+1 {
			t.Errorf("row %d: K=%d", i, r.K)
		}
		if r.Predicted < r.Uniform*0.99 {
			t.Errorf("k=%d: predicted %.3g below uniform %.3g", r.K, r.Predicted, r.Uniform)
		}
	}
	// Small-k estimates have plenty of pairs: measured ≥ uniform there
	// (higher k suffers sampling noise at test scale).
	for _, r := range rows[:3] {
		if r.Measured < r.Uniform {
			t.Errorf("k=%d: measured %.3g below uniform %.3g", r.K, r.Measured, r.Uniform)
		}
	}
	// Predicted tends toward uniform as k grows.
	if rows[4].Predicted > rows[0].Predicted {
		t.Error("prediction should become more uniform with k")
	}
	// Measured stays above predicted at k=2 (the paper's locality gap).
	if rows[1].Measured < rows[1].Predicted {
		t.Errorf("k=2: measured %.3g below predicted %.3g — locality gap missing",
			rows[1].Measured, rows[1].Predicted)
	}
	if !strings.Contains(Table4Report(rows), "Measured") {
		t.Error("Table4Report malformed")
	}
}

func TestTable5Shape(t *testing.T) {
	rows := Table5(small)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ExcludingIdentical > r.Local {
			t.Errorf("k=%d: excluding identical cannot exceed local", r.K)
		}
	}
	// The locality effect is unambiguous at small k, where the window
	// yields plenty of pairs.
	for _, r := range rows[:2] {
		if r.Local < r.Global {
			t.Errorf("k=%d: local %.4g below global %.4g — locality effect missing",
				r.K, r.Local, r.Global)
		}
	}
	if !strings.Contains(Table5Report(rows), "Locally Congruent") {
		t.Error("Table5Report malformed")
	}
}

// TestDistributionReportsDeterministicAcrossWorkers is the tentpole
// guarantee: the rendered figure/table text — not just the numbers — is
// byte-identical at any worker count.
func TestDistributionReportsDeterministicAcrossWorkers(t *testing.T) {
	passes := []struct {
		name string
		run  func(cfg Config) string
	}{
		{"figure2", func(cfg Config) string { return Figure2Report(Figure2(cfg)) }},
		{"figure3", func(cfg Config) string { return Figure3Report(Figure3(cfg)) }},
		{"table4", func(cfg Config) string { return Table4Report(Table4(cfg)) }},
		{"table5", func(cfg Config) string { return Table5Report(Table5(cfg)) }},
		{"table6", func(cfg Config) string { return Table6Report(Table6(cfg)) }},
	}
	for _, p := range passes {
		base := p.run(Config{Scale: 0.05, Workers: 1})
		for _, w := range []int{2, 8} {
			if got := p.run(Config{Scale: 0.05, Workers: w}); got != base {
				t.Errorf("%s: output differs between 1 and %d workers:\n--- workers=1\n%s\n--- workers=%d\n%s",
					p.name, w, base, w, got)
			}
		}
	}
}

func TestTable6Shape(t *testing.T) {
	systems := Table6(tiny)
	if len(systems) != 4 {
		t.Fatalf("systems = %d", len(systems))
	}
	for _, s := range systems {
		for i := range s.K {
			if s.Corrected[i] > s.ExcludeIdentical[i]+1e-12 {
				t.Errorf("%s k=%d: correction increased the prediction", s.System, s.K[i])
			}
		}
	}
	if !strings.Contains(Table6Report(systems), "Corrected") {
		t.Error("Table6Report malformed")
	}
}

func TestTable7CompressionRestoresUniformity(t *testing.T) {
	plain, comp := Table7(tiny)
	pr := plain.MissRate(plain.MissedByChecksum)
	cr := comp.MissRate(comp.MissedByChecksum)
	if pr > 0 && cr > pr {
		t.Errorf("compression raised the miss rate: %.4g -> %.4g", pr, cr)
	}
	// Compressed should be within a couple of counts of zero at this
	// scale (uniform expectation ≈ remaining/65536).
	expected := float64(comp.Remaining) / 65536
	if float64(comp.MissedByChecksum) > 10*(expected+1) {
		t.Errorf("compressed misses %d far above uniform expectation %.2f",
			comp.MissedByChecksum, expected)
	}
	if !strings.Contains(Table7Report(plain, comp), "compressed") {
		t.Error("Table7Report malformed")
	}
}

func TestTable8FletcherWins(t *testing.T) {
	rows := Table8(tiny)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	var tcpTotal, f256Total uint64
	var remTCP, remF256 uint64
	for _, r := range rows {
		tcp, f256 := r.Get("tcp"), r.Get("f256")
		tcpTotal += tcp.MissedByChecksum
		f256Total += f256.MissedByChecksum
		remTCP += tcp.Remaining
		remF256 += f256.Remaining
	}
	if remTCP == 0 || remF256 == 0 {
		t.Fatal("no remaining splices")
	}
	// Aggregate shape: Fletcher-256 beats TCP.
	if float64(f256Total)/float64(remF256) > float64(tcpTotal)/float64(remTCP) {
		t.Errorf("Fletcher-256 aggregate miss rate above TCP: %d/%d vs %d/%d",
			f256Total, remF256, tcpTotal, remTCP)
	}
	if !strings.Contains(Table8Report(rows), "F-256") {
		t.Error("Table8Report malformed")
	}
}

func TestTable9TrailerWins(t *testing.T) {
	rows := Table9(tiny)
	var hdr, trl, remH, remT uint64
	for _, r := range rows {
		hdr += r.Header.MissedByChecksum
		trl += r.Trailer.MissedByChecksum
		remH += r.Header.Remaining
		remT += r.Trailer.Remaining
	}
	if remH == 0 || remT == 0 {
		t.Fatal("no remaining splices")
	}
	if float64(trl)/float64(remT) > float64(hdr)/float64(remH) {
		t.Errorf("trailer aggregate miss rate above header: %d/%d vs %d/%d", trl, remT, hdr, remH)
	}
	if !strings.Contains(Table9Report(rows), "Trailer Misses") {
		t.Error("Table9Report malformed")
	}
}

func TestTable10Asymmetry(t *testing.T) {
	d := Table10(tiny)
	if d.Header.IdenticalFailedChecksum != 0 {
		t.Errorf("header mode rejected %d identical splices", d.Header.IdenticalFailedChecksum)
	}
	if d.Trailer.Identical > 0 && d.Trailer.IdenticalFailedChecksum == 0 {
		t.Error("trailer mode should reject identical splices")
	}
	if !strings.Contains(Table10Report(d), "data identical") {
		t.Error("Table10Report malformed")
	}
}

func TestEffectiveBitsHeadline(t *testing.T) {
	results := Tables123(tiny)
	rows := EffectiveBits(results)
	if len(rows) != len(results) {
		t.Fatal("row count mismatch")
	}
	// §7: on real data the 16-bit checksum behaves like a much narrower
	// check on at least some systems (the paper says ≈10 bits).
	min := math.Inf(1)
	for _, r := range rows {
		if r.MissRate > 0 && r.EffectiveBits < min {
			min = r.EffectiveBits
		}
	}
	if math.IsInf(min, 1) {
		t.Skip("no misses at this scale")
	}
	if min > 15 {
		t.Errorf("weakest system still shows %.1f effective bits — degradation missing", min)
	}
	if !strings.Contains(EffectiveBitsReport(rows), "effective bits") {
		t.Error("EffectiveBitsReport malformed")
	}
}

func TestAblations(t *testing.T) {
	d := Ablations(tiny)
	zr := d.ZeroIPHeader.MissRate(d.ZeroIPHeader.MissedByChecksum)
	br := d.Baseline.MissRate(d.Baseline.MissedByChecksum)
	if zr < br {
		t.Errorf("§6.2: zeroed IP header rate %.4g below baseline %.4g", zr, br)
	}
	// §6.3: non-inversion makes little difference; allow a wide factor.
	nr := d.NoInvert.MissRate(d.NoInvert.MissedByChecksum)
	if br > 0 && (nr > br*20 || br > nr*20+1) {
		t.Errorf("§6.3: non-inverted rate %.4g wildly differs from baseline %.4g", nr, br)
	}
	if !strings.Contains(AblationsReport(d), "zeroed IP header") {
		t.Error("AblationsReport malformed")
	}
}

func TestPathologicalCases(t *testing.T) {
	rows := Pathological(tiny)
	if len(rows) != 3 {
		t.Fatal("want 3 pathological corpora")
	}
	var pbm PathologicalRow
	for _, r := range rows {
		if strings.Contains(r.Corpus, "pbm") {
			pbm = r
		}
	}
	// §5.5's dramatic case: on 0x00/0xFF bitmaps, Fletcher-255 performs
	// WORSE than the TCP checksum.
	f255res, tcpres := pbm.Get("f255"), pbm.Get("tcp")
	f255 := f255res.MissRate(f255res.MissedByChecksum)
	tcp := tcpres.MissRate(tcpres.MissedByChecksum)
	if f255 <= tcp {
		t.Errorf("PBM corpus: Fletcher-255 rate %.4g not above TCP %.4g", f255, tcp)
	}
	if !strings.Contains(PathologicalReport(rows), "pbm") {
		t.Error("PathologicalReport malformed")
	}
}
