package experiments

import (
	"strings"
	"testing"

	"realsum/internal/netsim"
)

// TestNetSimReportDeterministicAcrossWorkers extends the tentpole
// worker-independence guarantee to the fault-injection pass: the
// rendered netsim report is byte-identical at any worker count, and at
// any root seed.
func TestNetSimReportDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{0, 99} {
		base := NetSimReport(NetSim(Config{Scale: 0.03, Workers: 1, Seed: seed}))
		for _, w := range []int{2, 8} {
			if got := NetSimReport(NetSim(Config{Scale: 0.03, Workers: w, Seed: seed})); got != base {
				t.Errorf("seed %d: netsim output differs between 1 and %d workers", seed, w)
			}
		}
	}
}

// TestNetSimShapeClaims pins the §7 acceptance claim at experiment
// scale: under the solid-burst channel the TCP checksum is the weakest
// registered algorithm and CRC-32 stays at its uniform (zero) rate.
func TestNetSimShapeClaims(t *testing.T) {
	d := NetSim(Config{Scale: 0.1, Workers: 4})
	for _, s := range d.TCP.Shapes() {
		if !strings.HasPrefix(s.Channel, "burst") {
			continue
		}
		if s.Corrupted == 0 {
			t.Fatal("burst channel corrupted nothing at scale 0.1")
		}
		if s.Weakest != "tcp" {
			t.Errorf("weakest under bursts = %s (%d of %d), want tcp", s.Weakest, s.WeakestUndetect, s.Corrupted)
		}
		if s.CRC32Undetected != 0 {
			t.Errorf("CRC-32 missed %d bursts, want 0", s.CRC32Undetected)
		}
	}
	if !strings.Contains(NetSimReport(d), "shape[tcp/burst]") {
		t.Error("NetSimReport missing shape lines")
	}

	// The correlated-loss tentpole at experiment scale: all three drop
	// channels run at a matched 1% average rate, yet the Gilbert–Elliott
	// and burst-drop channels form a measurably different number of
	// splice candidates than i.i.d. drop, and the rendered report
	// carries the contrast section.
	iid, ok1 := d.TCP.Channel("drop")
	ge, ok2 := d.TCP.Channel("drop-ge")
	bd, ok3 := d.TCP.Channel("drop-burst")
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("TCP tally missing one of the drop/drop-ge/drop-burst channels")
	}
	if iid.Corrupted == 0 {
		t.Fatal("i.i.d. drop corrupted nothing at scale 0.1")
	}
	for _, c := range []*netsim.ChannelTally{ge, bd} {
		loss := 1 - float64(c.CellsDelivered)/float64(c.CellsSent)
		iidLoss := 1 - float64(iid.CellsDelivered)/float64(iid.CellsSent)
		if loss < 0.7*iidLoss || loss > 1.3*iidLoss {
			t.Errorf("%s: measured loss %.4f vs i.i.d. %.4f, want matched", c.Name, loss, iidLoss)
		}
		if c.Corrupted == iid.Corrupted {
			t.Errorf("%s: splice-candidate count %d identical to i.i.d.", c.Name, c.Corrupted)
		}
	}
	if !strings.Contains(NetSimReport(d), "i.i.d. vs correlated cell loss at matched average rate") {
		t.Error("NetSimReport missing the loss-contrast section")
	}

	// The Table 7 axis at experiment scale: the compressed pass ran the
	// same battery, its ratio stats landed, and the rendered report
	// carries both the +lz pin lines and the raw-vs-compressed contrast
	// section, with the bellwether burst misses collapsing toward the
	// uniform floor.
	if d.TCPLZ == nil || !d.TCPLZ.Compressed {
		t.Fatal("NetSim did not run the compressed TCP pass")
	}
	if d.TCPLZ.Comp.Files == 0 || d.TCPLZ.Comp.MeanRatio() <= 0 || d.TCPLZ.Comp.MeanRatio() >= 1 {
		t.Errorf("compressed pass ratio stats: %+v", d.TCPLZ.Comp)
	}
	// Convergence is asserted on the per-segment span: the e2e span
	// includes the AAL5 zero padding, where a solid burst cancels in the
	// ones-complement sum regardless of payload content, flooring the
	// e2e rate at the padding fraction.
	rawBurst, _ := d.TCP.Channel("burst")
	lzBurst, _ := d.TCPLZ.Channel("burst")
	rawTCP, _ := rawBurst.Placement(netsim.PlaceSegment.String()).Algo("tcp")
	lzTCP, _ := lzBurst.Placement(netsim.PlaceSegment.String()).Algo("tcp")
	if rawTCP.Undetected == 0 {
		t.Fatal("raw burst pass: tcp missed nothing at scale 0.1")
	}
	if lzTCP.Undetected > rawTCP.Undetected/8 {
		t.Errorf("tcp burst misses did not converge: raw=%d lz=%d", rawTCP.Undetected, lzTCP.Undetected)
	}
	report := NetSimReport(d)
	for _, want := range []string{
		"shape[tcp+lz/burst]",
		"raw vs lz-compressed payload",
		"compress[tcp/burst]:",
		"lz payload stage:",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("NetSimReport missing %q", want)
		}
	}
}

// TestNetSimSeedChangesResults: the root seed must actually reach the
// trial RNGs — different seeds, different fault patterns.
func TestNetSimSeedChangesResults(t *testing.T) {
	a := NetSimReport(NetSim(Config{Scale: 0.03, Workers: 2, Seed: 1}))
	b := NetSimReport(NetSim(Config{Scale: 0.03, Workers: 2, Seed: 2}))
	if a == b {
		t.Error("netsim report identical under different root seeds")
	}
}
