//go:build !race

package algo

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
