// Package algo defines the unified checksum-algorithm interface the
// rest of the repository dispatches through, plus a registry of every
// algorithm the study touches.
//
// Before this package existed every consumer — cmd/cksum, the Table 8
// Fletcher comparison, the Figure 3 distribution pass, the Adler
// extension — reached each algorithm through a different hand-coded
// call shape (inet.Checksum here, fletcher.Mod255.Sum(...).Checksum16()
// there, crc.New(params).Checksum elsewhere).  The Algorithm interface
// normalizes all of them to one shape: a canonical name, a width in
// bits, a one-shot Sum, and a streaming Digest.  Algorithms whose
// mathematics admit O(1) recombination of fragment checksums (the §4.1
// partial-sum machinery the paper's analysis rests on) additionally
// implement Combiner.
package algo

import (
	"fmt"
	"io"
	"slices"
	"sync"

	"realsum/internal/crc"
)

// Algorithm is one checksum or CRC under a uniform calling convention.
// Sum and the Digest produce the algorithm's canonical value — the one
// written to the wire or printed by cksum — right-aligned in a uint64.
type Algorithm interface {
	// Name is the registry key: short, lowercase, stable ("tcp",
	// "f255", "crc32", ...).
	Name() string
	// Width is the checksum width in bits.
	Width() int
	// Sum computes the checksum of data in one shot.
	Sum(data []byte) uint64
	// New returns a fresh streaming digest.
	New() Digest
	// UniformP is the probability that two independent uniformly
	// distributed inputs produce congruent checksums — the collision
	// floor every measured distribution is compared against.  It
	// reflects the algorithm's true value space: 1/65535 for the TCP
	// sum (double zero), 1/255² for Fletcher-255, 1/2^w for a w-bit
	// CRC.
	UniformP() float64
}

// Digest is a streaming checksum accumulator.  Write never fails.
type Digest interface {
	io.Writer
	// Sum64 returns the checksum of everything written so far.
	Sum64() uint64
	// Reset restores the initial state.
	Reset()
}

// Sum computes a's checksum of data in one shot.  It is the documented
// choke point for hot scoring loops — netsim scores every delivered
// segment through it — and carries the performance contract the loops
// rely on: one virtual call per buffer, no Digest construction, and
// zero steady-state allocations for every registry algorithm (pinned by
// TestSumZeroAlloc).  Bulk CRC input dispatches through the raced
// kernel layer underneath (see internal/crc and SetCRCKernel).
func Sum(a Algorithm, data []byte) uint64 { return a.Sum(data) }

// KernelControl is implemented by algorithms whose bulk engine is
// selectable at runtime — the CRC family's kernel layer.  Reconfigure
// before sharing an algorithm across goroutines.
type KernelControl interface {
	// Kernel names the bulk engine in use ("slicing8", "nguyen", ...).
	Kernel() string
	// Kernels lists the engines available for this algorithm.
	Kernels() []string
	// SetKernel forces the named engine after differential
	// verification against the scalar oracle; "auto" restores racing.
	SetKernel(name string) error
}

// SetCRCKernel points every registered CRC algorithm at the named bulk
// kernel, with the same semantics as the REALSUM_CRC_KERNEL environment
// variable: "auto" (or "") restores per-table racing, and algorithms
// whose parameterization lacks the named kernel fall back to
// slicing-by-8 rather than erroring, so one flag value applies across
// the whole registry.  Unknown kernel names and verification failures
// error.
func SetCRCKernel(name string) error {
	if name != "auto" && name != "" && !slices.Contains(crc.KernelNames(), name) {
		return fmt.Errorf("algo: unknown CRC kernel %q (known: %v)", name, crc.KernelNames())
	}
	for _, a := range All() {
		kc, ok := a.(KernelControl)
		if !ok {
			continue
		}
		want := name
		if want != "auto" && want != "" && !slices.Contains(kc.Kernels(), want) {
			want = "slicing8"
		}
		if err := kc.SetKernel(want); err != nil {
			return fmt.Errorf("algo: %s: %w", a.Name(), err)
		}
	}
	return nil
}

// Combiner is implemented by algorithms whose checksum over a
// concatenation A‖B is recoverable from the standalone checksums of A
// and B and their lengths — the per-cell partial + combine structure
// the paper's §4.1 composition argument formalizes for the TCP sum and
// §5.2 for Fletcher's positional colouring.
type Combiner interface {
	Algorithm
	// Combine returns Sum(A‖B) given a = Sum(A), b = Sum(B) and the
	// fragment lengths in bytes.
	Combine(a, b uint64, lenA, lenB int) uint64
}

var registry = struct {
	mu     sync.RWMutex
	order  []Algorithm
	byName map[string]Algorithm
}{byName: make(map[string]Algorithm)}

// Register adds an algorithm to the registry.  It panics on a duplicate
// name: names are the dispatch keys the whole harness relies on.
func Register(a Algorithm) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.byName[a.Name()]; dup {
		panic(fmt.Sprintf("algo: duplicate registration of %q", a.Name()))
	}
	registry.byName[a.Name()] = a
	registry.order = append(registry.order, a)
}

// Lookup returns the registered algorithm with the given name.
func Lookup(name string) (Algorithm, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	a, ok := registry.byName[name]
	return a, ok
}

// MustLookup is Lookup for names the caller knows are registered.
func MustLookup(name string) Algorithm {
	a, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("algo: unknown algorithm %q", name))
	}
	return a
}

// All returns every registered algorithm in registration order, which
// is fixed for the built-ins so table layouts are deterministic.
func All() []Algorithm {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]Algorithm, len(registry.order))
	copy(out, registry.order)
	return out
}

// Names returns the registered names in registration order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, a := range all {
		out[i] = a.Name()
	}
	return out
}
