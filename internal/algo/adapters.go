package algo

import (
	"math"

	"realsum/internal/adler"
	"realsum/internal/crc"
	"realsum/internal/fletcher"
	"realsum/internal/inet"
	"realsum/internal/onescomp"
)

// The built-in registrations, in the display order the tools inherit.
func init() {
	Register(tcpAlgo{})
	Register(fletcherAlgo{m: fletcher.Mod255, name: "f255", space: 255 * 255})
	Register(fletcherAlgo{m: fletcher.Mod256, name: "f256", space: 65536})
	Register(fletcher32Algo{})
	Register(adlerAlgo{})
	for _, p := range []crc.Params{
		crc.CRC32, crc.CRC32C, crc.CRC10, crc.CRC16, crc.CRC16CCITT, crc.CRC8, crc.CRC64,
	} {
		Register(newCRCAlgo(p))
	}
}

// ---------------------------------------------------------------------
// TCP / Internet checksum.

type tcpAlgo struct{}

func (tcpAlgo) Name() string { return "tcp" }
func (tcpAlgo) Width() int   { return 16 }
func (tcpAlgo) New() Digest  { return &tcpDigest{d: inet.New()} }
func (tcpAlgo) Sum(data []byte) uint64 {
	return uint64(inet.Checksum(data))
}

// UniformP reflects the ones-complement double zero: 65535 classes.
func (tcpAlgo) UniformP() float64 { return 1.0 / 65535 }

// Combine rebuilds the wire checksum of A‖B from the fragments' wire
// checksums via the §4.1 partial composition, including the byte-swap
// when A has odd length.
func (tcpAlgo) Combine(a, b uint64, lenA, lenB int) uint64 {
	pa := inet.Partial{Sum: onescomp.Neg(uint16(a)), Len: lenA}
	pb := inet.Partial{Sum: onescomp.Neg(uint16(b)), Len: lenB}
	return uint64(onescomp.Neg(pa.Append(pb).Sum))
}

type tcpDigest struct{ d *inet.Digest }

func (t *tcpDigest) Write(p []byte) (int, error) { return t.d.Write(p) }
func (t *tcpDigest) Sum64() uint64               { return uint64(t.d.Checksum16()) }
func (t *tcpDigest) Reset()                      { t.d.Reset() }

// ---------------------------------------------------------------------
// Fletcher over bytes, mod 255 and mod 256.

type fletcherAlgo struct {
	m     fletcher.Mod
	name  string
	space float64
}

func (f fletcherAlgo) Name() string { return f.name }
func (fletcherAlgo) Width() int     { return 16 }
func (f fletcherAlgo) New() Digest  { return &fletcherDigest{d: fletcher.New(f.m)} }
func (f fletcherAlgo) Sum(data []byte) uint64 {
	return uint64(f.m.Sum(data).Checksum16())
}
func (f fletcherAlgo) UniformP() float64 { return 1.0 / f.space }

// Combine shifts A's pair past B's lenB positions (B' = B + A·lenB mod
// M) and adds — the positional recombination of §5.2.
func (f fletcherAlgo) Combine(a, b uint64, lenA, lenB int) uint64 {
	pa := fletcher.Pair{A: uint16(a) & 0xFF, B: uint16(a) >> 8}
	pb := fletcher.Pair{A: uint16(b) & 0xFF, B: uint16(b) >> 8}
	return uint64(f.m.Append(pa, lenB, pb).Checksum16())
}

type fletcherDigest struct{ d *fletcher.Digest }

func (f *fletcherDigest) Write(p []byte) (int, error) { return f.d.Write(p) }
func (f *fletcherDigest) Sum64() uint64               { return uint64(f.d.Pair().Checksum16()) }
func (f *fletcherDigest) Reset()                      { f.d.Reset() }

// ---------------------------------------------------------------------
// Fletcher-32 over 16-bit words mod 65535.

type fletcher32Algo struct{}

func (fletcher32Algo) Name() string { return "fletcher32" }
func (fletcher32Algo) Width() int   { return 32 }
func (fletcher32Algo) New() Digest  { return &fletcher32Digest{} }
func (fletcher32Algo) Sum(data []byte) uint64 {
	return uint64(fletcher.Sum32(data).Checksum32())
}
func (fletcher32Algo) UniformP() float64 { return 1.0 / (65535.0 * 65535.0) }

// fletcher32Digest streams the 16-bit-word Fletcher sum, carrying a
// pending odd byte across Write boundaries; a trailing odd byte is
// zero-padded on Sum64, matching fletcher.Sum32.
type fletcher32Digest struct {
	a, b    uint64
	n       int // words accumulated since the last reduction
	pending byte
	odd     bool
}

// reduceEvery32 matches fletcher.Sum32's reduction cadence.
const reduceEvery32 = 21845

func (d *fletcher32Digest) Write(p []byte) (int, error) {
	written := len(p)
	if d.odd && len(p) > 0 {
		d.word(uint64(d.pending)<<8 | uint64(p[0]))
		d.odd = false
		p = p[1:]
	}
	for ; len(p) >= 2; p = p[2:] {
		d.word(uint64(p[0])<<8 | uint64(p[1]))
	}
	if len(p) == 1 {
		d.pending, d.odd = p[0], true
	}
	return written, nil
}

func (d *fletcher32Digest) word(w uint64) {
	d.a += w
	d.b += d.a
	if d.n++; d.n == reduceEvery32 {
		d.reduce()
	}
}

func (d *fletcher32Digest) reduce() {
	d.a %= 65535
	d.b %= 65535
	d.n = 0
}

func (d *fletcher32Digest) Sum64() uint64 {
	a, b := d.a, d.b
	if d.odd {
		a += uint64(d.pending) << 8
		b += a
	}
	a %= 65535
	b %= 65535
	return b<<16 | a
}

func (d *fletcher32Digest) Reset() { *d = fletcher32Digest{} }

// ---------------------------------------------------------------------
// Adler-32.

type adlerAlgo struct{}

func (adlerAlgo) Name() string           { return "adler32" }
func (adlerAlgo) Width() int             { return 32 }
func (adlerAlgo) New() Digest            { return &adlerDigest{d: adler.New()} }
func (adlerAlgo) Sum(data []byte) uint64 { return uint64(adler.Checksum(data)) }
func (adlerAlgo) UniformP() float64      { return 1.0 / (1 << 32) }
func (adlerAlgo) Combine(a, b uint64, lenA, lenB int) uint64 {
	return uint64(adler.Combine(uint32(a), uint32(b), lenB))
}

type adlerDigest struct{ d *adler.Digest }

func (a *adlerDigest) Write(p []byte) (int, error) { return a.d.Write(p) }
func (a *adlerDigest) Sum64() uint64               { return uint64(a.d.Sum32()) }
func (a *adlerDigest) Reset()                      { a.d.Reset() }

// ---------------------------------------------------------------------
// Table-driven CRCs.

type crcAlgo struct {
	t    *crc.Table
	name string
}

// crcNames maps catalog names onto registry keys.
var crcNames = map[string]string{
	"CRC-32":       "crc32",
	"CRC-32C":      "crc32c",
	"CRC-10":       "crc10",
	"CRC-16":       "crc16",
	"CRC-16/CCITT": "crc16-ccitt",
	"CRC-8":        "crc8",
	"CRC-64/XZ":    "crc64",
}

func newCRCAlgo(p crc.Params) crcAlgo {
	name, ok := crcNames[p.Name]
	if !ok {
		name = p.Name
	}
	return crcAlgo{t: crc.New(p), name: name}
}

// NewCRC wraps arbitrary CRC params as an Algorithm under an explicit
// registry key, for callers (the polynomial census) that bring their own
// slate instead of the built-in catalog subset.  The result rides the
// same kernel verify-then-race table and zero-alloc Sum path as the
// built-ins; pass it to Register to make it visible to the tools.
func NewCRC(p crc.Params, name string) Algorithm {
	return crcAlgo{t: crc.New(p), name: name}
}

func (c crcAlgo) Name() string           { return c.name }
func (c crcAlgo) Width() int             { return int(c.t.Params().Width) }
func (c crcAlgo) Sum(data []byte) uint64 { return c.t.Checksum(data) }
func (c crcAlgo) New() Digest            { return &crcDigest{d: c.t.NewDigest()} }
func (c crcAlgo) UniformP() float64 {
	// Ldexp avoids the 1<<64 overflow for CRC-64.
	return math.Ldexp(1, -int(c.t.Params().Width))
}
func (c crcAlgo) Combine(a, b uint64, lenA, lenB int) uint64 {
	return c.t.Combine(a, b, lenB)
}

// Kernel, Kernels and SetKernel expose the table's bulk-engine layer —
// the KernelControl surface SetCRCKernel and the -kernel flags drive.
func (c crcAlgo) Kernel() string              { return c.t.Kernel() }
func (c crcAlgo) Kernels() []string           { return c.t.Kernels() }
func (c crcAlgo) SetKernel(name string) error { return c.t.SetKernel(name) }

type crcDigest struct{ d *crc.Digest }

func (c *crcDigest) Write(p []byte) (int, error) { return c.d.Write(p) }
func (c *crcDigest) Sum64() uint64               { return c.d.CRC() }
func (c *crcDigest) Reset()                      { c.d.Reset() }
