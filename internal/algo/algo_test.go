package algo

import (
	"math/rand/v2"
	"testing"

	"realsum/internal/adler"
	"realsum/internal/crc"
	"realsum/internal/fletcher"
	"realsum/internal/inet"
)

func randData(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Uint32())
	}
	return b
}

func TestRegistryBuiltins(t *testing.T) {
	for _, name := range []string{
		"tcp", "f255", "f256", "fletcher32", "adler32",
		"crc32", "crc32c", "crc10", "crc16", "crc16-ccitt", "crc8", "crc64",
	} {
		a, ok := Lookup(name)
		if !ok {
			t.Fatalf("builtin %q not registered", name)
		}
		if a.Name() != name {
			t.Errorf("%q: Name() = %q", name, a.Name())
		}
		if a.Width() < 8 || a.Width() > 64 {
			t.Errorf("%q: width %d", name, a.Width())
		}
		if p := a.UniformP(); p <= 0 || p > 1.0/255 {
			t.Errorf("%q: UniformP = %g", name, p)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
	if len(All()) != len(Names()) || len(All()) < 12 {
		t.Errorf("All/Names inconsistent: %d vs %d", len(All()), len(Names()))
	}
}

// TestSumMatchesDirect pins every adapter to the implementation it
// wraps, so the registry can never drift from the packages the paper's
// experiments use directly.
func TestSumMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	crc32t := crc.New(crc.CRC32)
	for _, n := range []int{0, 1, 2, 47, 48, 255, 1000} {
		data := randData(rng, n)
		checks := []struct {
			name string
			want uint64
		}{
			{"tcp", uint64(inet.Checksum(data))},
			{"f255", uint64(fletcher.Mod255.Sum(data).Checksum16())},
			{"f256", uint64(fletcher.Mod256.Sum(data).Checksum16())},
			{"fletcher32", uint64(fletcher.Sum32(data).Checksum32())},
			{"adler32", uint64(adler.Checksum(data))},
			{"crc32", crc32t.Checksum(data)},
		}
		for _, c := range checks {
			if got := MustLookup(c.name).Sum(data); got != c.want {
				t.Errorf("n=%d %s: Sum = %#x, want %#x", n, c.name, got, c.want)
			}
		}
	}
}

// TestDigestMatchesSum streams each algorithm over arbitrary write
// boundaries (including odd splits, the Fletcher-32 pending-byte case)
// and checks the digest agrees with the one-shot Sum.
func TestDigestMatchesSum(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	data := randData(rng, 1537)
	for _, a := range All() {
		d := a.New()
		for off := 0; off < len(data); {
			n := 1 + rng.IntN(97)
			if off+n > len(data) {
				n = len(data) - off
			}
			d.Write(data[off : off+n])
			off += n
		}
		if got, want := d.Sum64(), a.Sum(data); got != want {
			t.Errorf("%s: streamed %#x != one-shot %#x", a.Name(), got, want)
		}
		d.Reset()
		d.Write(data[:10])
		if got, want := d.Sum64(), a.Sum(data[:10]); got != want {
			t.Errorf("%s: after Reset %#x != %#x", a.Name(), got, want)
		}
	}
}

// TestSumHelper pins the package-level one-shot helper to the method it
// wraps, for every registry algorithm.
func TestSumHelper(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for _, n := range []int{0, 9, 64, 1500, 5000, 64 << 10} {
		data := randData(rng, n)
		for _, a := range All() {
			if got, want := Sum(a, data), a.Sum(data); got != want {
				t.Errorf("%s n=%d: Sum helper %#x != method %#x", a.Name(), n, got, want)
			}
		}
	}
}

// TestSumZeroAlloc pins the hot-loop contract netsim's per-segment
// scoring relies on: once kernels and pools are warm, Sum allocates
// nothing for any registry algorithm at cell, MTU and bulk sizes.
func TestSumZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops Puts under the race detector, so alloc counts are not meaningful")
	}
	rng := rand.New(rand.NewPCG(5, 5))
	data := randData(rng, 64<<10)
	var sink uint64
	for _, a := range All() {
		for _, n := range []int{48, 1500, 64 << 10} {
			d := data[:n]
			sink ^= Sum(a, d) // warm kernel scratch pools
			allocs := testing.AllocsPerRun(20, func() {
				sink ^= Sum(a, d)
			})
			if allocs > 0 {
				t.Errorf("%s n=%d: %.1f allocs per Sum, want 0", a.Name(), n, allocs)
			}
		}
	}
	_ = sink
}

// TestKernelControl covers the registry-wide kernel override: CRC
// algorithms expose KernelControl, checksums do not, SetCRCKernel
// applies a forced kernel (falling back to slicing-by-8 where the
// parameterization lacks it) and "auto" restores racing — with the
// checksum value unchanged throughout.
func TestKernelControl(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	data := randData(rng, 8192)
	want := map[string]uint64{}
	for _, a := range All() {
		want[a.Name()] = a.Sum(data)
	}
	if _, ok := MustLookup("crc32").(KernelControl); !ok {
		t.Fatal("crc32 does not implement KernelControl")
	}
	if _, ok := MustLookup("tcp").(KernelControl); ok {
		t.Fatal("tcp implements KernelControl")
	}
	if err := SetCRCKernel("bogus"); err == nil {
		t.Error("SetCRCKernel(bogus) succeeded")
	}
	for _, kn := range append(crc.KernelNames(), "auto") {
		if err := SetCRCKernel(kn); err != nil {
			t.Fatalf("SetCRCKernel(%s): %v", kn, err)
		}
		if kn == "nguyen" {
			if got := MustLookup("crc32").(KernelControl).Kernel(); got != "nguyen" {
				t.Errorf("crc32 kernel = %s after SetCRCKernel(nguyen)", got)
			}
			if got := MustLookup("crc16").(KernelControl).Kernel(); got != "slicing8" {
				t.Errorf("crc16 kernel = %s after SetCRCKernel(nguyen), want slicing8 fallback", got)
			}
		}
		for _, a := range All() {
			if got := a.Sum(data); got != want[a.Name()] {
				t.Errorf("%s under kernel %s: Sum %#x != %#x", a.Name(), kn, got, want[a.Name()])
			}
		}
	}
}

// TestCombinerMatchesDirect checks the O(1) recombination law for every
// algorithm that claims it: Sum(A‖B) from Sum(A), Sum(B) and lengths,
// over random data and split points including odd-length A (the TCP
// byte-swap case).
func TestCombinerMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	var combiners []Combiner
	for _, a := range All() {
		if c, ok := a.(Combiner); ok {
			combiners = append(combiners, c)
		}
	}
	if len(combiners) < 5 {
		t.Fatalf("only %d combiners registered", len(combiners))
	}
	for trial := 0; trial < 50; trial++ {
		data := randData(rng, 1+rng.IntN(900))
		cut := rng.IntN(len(data) + 1)
		a, b := data[:cut], data[cut:]
		for _, c := range combiners {
			got := c.Combine(c.Sum(a), c.Sum(b), len(a), len(b))
			want := c.Sum(data)
			if got != want {
				t.Errorf("%s: Combine(|A|=%d, |B|=%d) = %#x, want %#x",
					c.Name(), len(a), len(b), got, want)
			}
		}
	}
}
