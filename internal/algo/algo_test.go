package algo

import (
	"math/rand/v2"
	"testing"

	"realsum/internal/adler"
	"realsum/internal/crc"
	"realsum/internal/fletcher"
	"realsum/internal/inet"
)

func randData(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Uint32())
	}
	return b
}

func TestRegistryBuiltins(t *testing.T) {
	for _, name := range []string{
		"tcp", "f255", "f256", "fletcher32", "adler32",
		"crc32", "crc32c", "crc10", "crc16", "crc16-ccitt", "crc8", "crc64",
	} {
		a, ok := Lookup(name)
		if !ok {
			t.Fatalf("builtin %q not registered", name)
		}
		if a.Name() != name {
			t.Errorf("%q: Name() = %q", name, a.Name())
		}
		if a.Width() < 8 || a.Width() > 64 {
			t.Errorf("%q: width %d", name, a.Width())
		}
		if p := a.UniformP(); p <= 0 || p > 1.0/255 {
			t.Errorf("%q: UniformP = %g", name, p)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
	if len(All()) != len(Names()) || len(All()) < 12 {
		t.Errorf("All/Names inconsistent: %d vs %d", len(All()), len(Names()))
	}
}

// TestSumMatchesDirect pins every adapter to the implementation it
// wraps, so the registry can never drift from the packages the paper's
// experiments use directly.
func TestSumMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	crc32t := crc.New(crc.CRC32)
	for _, n := range []int{0, 1, 2, 47, 48, 255, 1000} {
		data := randData(rng, n)
		checks := []struct {
			name string
			want uint64
		}{
			{"tcp", uint64(inet.Checksum(data))},
			{"f255", uint64(fletcher.Mod255.Sum(data).Checksum16())},
			{"f256", uint64(fletcher.Mod256.Sum(data).Checksum16())},
			{"fletcher32", uint64(fletcher.Sum32(data).Checksum32())},
			{"adler32", uint64(adler.Checksum(data))},
			{"crc32", crc32t.Checksum(data)},
		}
		for _, c := range checks {
			if got := MustLookup(c.name).Sum(data); got != c.want {
				t.Errorf("n=%d %s: Sum = %#x, want %#x", n, c.name, got, c.want)
			}
		}
	}
}

// TestDigestMatchesSum streams each algorithm over arbitrary write
// boundaries (including odd splits, the Fletcher-32 pending-byte case)
// and checks the digest agrees with the one-shot Sum.
func TestDigestMatchesSum(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	data := randData(rng, 1537)
	for _, a := range All() {
		d := a.New()
		for off := 0; off < len(data); {
			n := 1 + rng.IntN(97)
			if off+n > len(data) {
				n = len(data) - off
			}
			d.Write(data[off : off+n])
			off += n
		}
		if got, want := d.Sum64(), a.Sum(data); got != want {
			t.Errorf("%s: streamed %#x != one-shot %#x", a.Name(), got, want)
		}
		d.Reset()
		d.Write(data[:10])
		if got, want := d.Sum64(), a.Sum(data[:10]); got != want {
			t.Errorf("%s: after Reset %#x != %#x", a.Name(), got, want)
		}
	}
}

// TestCombinerMatchesDirect checks the O(1) recombination law for every
// algorithm that claims it: Sum(A‖B) from Sum(A), Sum(B) and lengths,
// over random data and split points including odd-length A (the TCP
// byte-swap case).
func TestCombinerMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	var combiners []Combiner
	for _, a := range All() {
		if c, ok := a.(Combiner); ok {
			combiners = append(combiners, c)
		}
	}
	if len(combiners) < 5 {
		t.Fatalf("only %d combiners registered", len(combiners))
	}
	for trial := 0; trial < 50; trial++ {
		data := randData(rng, 1+rng.IntN(900))
		cut := rng.IntN(len(data) + 1)
		a, b := data[:cut], data[cut:]
		for _, c := range combiners {
			got := c.Combine(c.Sum(a), c.Sum(b), len(a), len(b))
			want := c.Sum(data)
			if got != want {
				t.Errorf("%s: Combine(|A|=%d, |B|=%d) = %#x, want %#x",
					c.Name(), len(a), len(b), got, want)
			}
		}
	}
}
