package onescomp

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestAddKnownValues(t *testing.T) {
	tests := []struct {
		a, b, want uint16
	}{
		{0x0000, 0x0000, 0x0000},
		{0x0001, 0x0002, 0x0003},
		{0xFFFF, 0x0000, 0xFFFF},
		{0xFFFF, 0xFFFF, 0xFFFF}, // -0 + -0 = -0
		{0xFFFF, 0x0001, 0x0001}, // end-around carry: 0x10000 -> 0x0001
		{0x8000, 0x8000, 0x0001},
		{0xF000, 0x1000, 0x0001},
		{0x1234, 0xEDCB, 0xFFFF}, // x + ~x = -0
		{0xAAAA, 0x5555, 0xFFFF},
		{0xFFFE, 0x0003, 0x0002},
	}
	for _, tc := range tests {
		if got := Add(tc.a, tc.b); got != tc.want {
			t.Errorf("Add(%#04x, %#04x) = %#04x, want %#04x", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAddCommutative(t *testing.T) {
	f := func(a, b uint16) bool { return Add(a, b) == Add(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddAssociative(t *testing.T) {
	f := func(a, b, c uint16) bool { return Add(Add(a, b), c) == Add(a, Add(b, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddNegIsZero(t *testing.T) {
	f := func(a uint16) bool { return IsZero(Add(a, Neg(a))) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubInvertsAdd(t *testing.T) {
	// a + b - b is congruent to a for all a, b.
	f := func(a, b uint16) bool { return Congruent(Sub(Add(a, b), b), a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFoldMatchesRepeatedAdd(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		n := 1 + rng.IntN(64)
		var acc uint64
		var ref uint16
		for j := 0; j < n; j++ {
			w := uint16(rng.Uint32())
			acc += uint64(w)
			ref = Add(ref, w)
		}
		// Fold and repeated Add may differ only in zero representation
		// when the true sum is zero.
		if got := Fold(acc); !Congruent(got, ref) {
			t.Fatalf("Fold(%d words) = %#04x, want congruent to %#04x", n, got, ref)
		}
	}
}

func TestFoldLargeAccumulator(t *testing.T) {
	// 2^32 copies of 0xFFFF: sum is congruent to -0.
	acc := uint64(0xFFFF) * (1 << 32)
	if got := Fold(acc); !IsZero(got) {
		t.Errorf("Fold(max accumulator) = %#04x, want a zero representation", got)
	}
}

func TestSumBytesKnown(t *testing.T) {
	tests := []struct {
		name string
		data []byte
		want uint16
	}{
		{"empty", nil, 0x0000},
		{"one byte", []byte{0xAB}, 0xAB00},
		{"one word", []byte{0x12, 0x34}, 0x1234},
		{"two words", []byte{0x12, 0x34, 0x56, 0x78}, 0x68AC},
		{"carry", []byte{0xFF, 0xFF, 0x00, 0x01}, 0x0001},
		{"odd tail", []byte{0x12, 0x34, 0x56}, 0x1234 + 0x5600},
		{"rfc1071 example", []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}, 0xddf2},
	}
	for _, tc := range tests {
		if got := SumBytes(tc.data); got != tc.want {
			t.Errorf("%s: SumBytes = %#04x, want %#04x", tc.name, got, tc.want)
		}
	}
}

func TestSumBytesAllZeroAndAllOnes(t *testing.T) {
	zeros := make([]byte, 48)
	if got := SumBytes(zeros); got != 0 {
		t.Errorf("SumBytes(48 zero bytes) = %#04x, want 0", got)
	}
	ones := make([]byte, 48)
	for i := range ones {
		ones[i] = 0xFF
	}
	// 24 words of 0xFFFF sum (ones-complement) to 0xFFFF: the two data
	// patterns are congruent — the weakness §2 describes.
	if got := SumBytes(ones); !IsZero(got) {
		t.Errorf("SumBytes(48 0xFF bytes) = %#04x, want a zero representation", got)
	}
	if !Congruent(SumBytes(zeros), SumBytes(ones)) {
		t.Error("all-zero and all-one cells should have congruent sums")
	}
}

func TestSumBytesSplitsAnywhereEven(t *testing.T) {
	// Partial sums over word-aligned fragments add up to the whole sum.
	rng := rand.New(rand.NewPCG(3, 4))
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(rng.Uint32())
	}
	whole := SumBytes(data)
	for cut := 0; cut <= len(data); cut += 2 {
		if got := Add(SumBytes(data[:cut]), SumBytes(data[cut:])); !Congruent(got, whole) {
			t.Fatalf("split at %d: %#04x, want %#04x", cut, got, whole)
		}
	}
}

func TestSwapLemma(t *testing.T) {
	// RFC 1071 byte-order independence: summing the byte-swapped data
	// gives the byte-swapped sum (for even-length data).
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 200; trial++ {
		n := 2 * (1 + rng.IntN(100))
		data := make([]byte, n)
		swapped := make([]byte, n)
		for i := 0; i < n; i += 2 {
			data[i], data[i+1] = byte(rng.Uint32()), byte(rng.Uint32())
			swapped[i], swapped[i+1] = data[i+1], data[i]
		}
		if got, want := SumBytes(swapped), Swap(SumBytes(data)); !Congruent(got, want) {
			t.Fatalf("swapped sum = %#04x, want %#04x", got, want)
		}
	}
}

func TestUpdateWordRFC1624(t *testing.T) {
	// Worked example from RFC 1624 §4: old checksum field 0xDD2F,
	// m = 0x5555 changes to m' = 0x3285; new field is 0x0000... the RFC's
	// point is that the naive RFC 1141 equation gives 0xFFFF instead.
	if got := UpdateWord(0xDD2F, 0x5555, 0x3285); got != 0x0000 {
		t.Errorf("UpdateWord RFC1624 example = %#04x, want 0x0000", got)
	}
}

func TestUpdateWordMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	data := make([]byte, 64)
	for trial := 0; trial < 500; trial++ {
		for i := range data {
			data[i] = byte(rng.Uint32())
		}
		field := Neg(SumBytes(data)) // checksum as stored in a header
		pos := 2 * rng.IntN(len(data)/2)
		from := uint16(data[pos])<<8 | uint16(data[pos+1])
		to := uint16(rng.Uint32())
		data[pos], data[pos+1] = byte(to>>8), byte(to)
		want := Neg(SumBytes(data))
		got := UpdateWord(field, from, to)
		if !Congruent(got, want) {
			t.Fatalf("UpdateWord = %#04x, recompute = %#04x", got, want)
		}
		field = got
	}
}

func TestUpdateSumMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	data := make([]byte, 48)
	for trial := 0; trial < 500; trial++ {
		for i := range data {
			data[i] = byte(rng.Uint32())
		}
		sum := SumBytes(data)
		pos := 2 * rng.IntN(len(data)/2)
		from := uint16(data[pos])<<8 | uint16(data[pos+1])
		to := uint16(rng.Uint32())
		data[pos], data[pos+1] = byte(to>>8), byte(to)
		if got, want := UpdateSum(sum, from, to), SumBytes(data); !Congruent(got, want) {
			t.Fatalf("UpdateSum = %#04x, recompute = %#04x", got, want)
		}
	}
}

func TestNormalizeAndCongruent(t *testing.T) {
	if Normalize(0xFFFF) != 0 || Normalize(0) != 0 || Normalize(0x1234) != 0x1234 {
		t.Error("Normalize misbehaves")
	}
	if !Congruent(0xFFFF, 0x0000) {
		t.Error("0xFFFF and 0x0000 must be congruent")
	}
	if Congruent(0x0001, 0x0002) {
		t.Error("distinct nonzero values must not be congruent")
	}
}

func TestSixteenBitBurstWeakness(t *testing.T) {
	// §2: the only undetectable 16-bit burst error swaps an aligned
	// 0x0000 word with 0xFFFF.  Verify both that this is undetected and
	// that every other single-word substitution is detected.
	base := []byte{0x12, 0x34, 0x00, 0x00, 0xAB, 0xCD}
	sum := SumBytes(base)
	modified := []byte{0x12, 0x34, 0xFF, 0xFF, 0xAB, 0xCD}
	if !Congruent(SumBytes(modified), sum) {
		t.Error("0x0000 -> 0xFFFF substitution should be undetectable")
	}
	for w := 1; w < 0xFFFF; w++ { // every other replacement of that word
		modified[2], modified[3] = byte(w>>8), byte(w)
		if Congruent(SumBytes(modified), sum) {
			t.Fatalf("substitution 0x0000 -> %#04x undetected", w)
		}
	}
}

func BenchmarkSumBytes1500(b *testing.B) {
	data := make([]byte, 1500)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		SumBytes(data)
	}
}

func TestAddMatchesResidueModel(t *testing.T) {
	// Ones-complement 16-bit addition is exactly addition in ℤ/65535
	// once both zero representations are identified: for all a, b,
	// Normalize(Add(a,b)) ≡ (a' + b') mod 65535, where x' = x mod 65535
	// maps 0xFFFF onto 0.  Exhaustive over a stratified sample plus the
	// full boundary set.
	model := func(a, b uint16) uint16 {
		s := (uint32(a)%65535 + uint32(b)%65535) % 65535
		return uint16(s)
	}
	check := func(a, b uint16) {
		if got, want := Normalize(Add(a, b)), model(a, b); got != want {
			t.Fatalf("Add(%#04x, %#04x): %#04x, model %#04x", a, b, got, want)
		}
	}
	boundary := []uint16{0, 1, 2, 0x7FFF, 0x8000, 0x8001, 0xFFFD, 0xFFFE, 0xFFFF}
	for _, a := range boundary {
		for _, b := range boundary {
			check(a, b)
		}
	}
	rng := rand.New(rand.NewPCG(77, 77))
	for i := 0; i < 200000; i++ {
		check(uint16(rng.Uint32()), uint16(rng.Uint32()))
	}
	// And every b for a few fixed a — exhaustive slices of the table.
	for _, a := range []uint16{0, 0x1234, 0xFFFF} {
		for b := 0; b <= 0xFFFF; b++ {
			check(a, uint16(b))
		}
	}
}
