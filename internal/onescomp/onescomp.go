// Package onescomp implements 16-bit ones-complement arithmetic, the
// substrate of the Internet (IP/TCP/UDP) checksum studied by the paper.
//
// Ones-complement arithmetic on 16-bit quantities has two representations
// of zero (0x0000 and 0xFFFF) and uses end-around carry: any carry out of
// the top bit is added back into the low bit.  The Internet checksum is
// the ones-complement of the ones-complement sum of the 16-bit words of
// the data (RFC 1071).  Several of the paper's observations — notably
// that replacing sixteen 1-bits by sixteen 0-bits is undetectable, and
// that "zero is special because it is represented by both 0x0000 and
// 0xFFFF" (§6.1) — are properties of this arithmetic, so it lives in its
// own package with exhaustive tests.
package onescomp

import "encoding/binary"

// Add returns the 16-bit ones-complement sum of a and b, performing the
// end-around carry.  Add is commutative and associative, which is what
// lets a packet checksum be assembled from per-cell partial sums (§4.1).
func Add(a, b uint16) uint16 {
	s := uint32(a) + uint32(b)
	return uint16(s) + uint16(s>>16)
}

// Fold reduces an arbitrary 64-bit accumulator of 16-bit word sums to a
// 16-bit ones-complement value by repeatedly adding the carries back in.
func Fold(x uint64) uint16 {
	x = (x >> 32) + (x & 0xFFFFFFFF) // at most 33 bits
	x = (x >> 32) + (x & 0xFFFFFFFF) // at most 32 bits
	x = (x >> 16) + (x & 0xFFFF)     // at most 17 bits
	x = (x >> 16) + (x & 0xFFFF)     // 16 bits
	return uint16(x)
}

// Neg returns the ones-complement negation (bitwise complement) of x.
// In ones-complement arithmetic, Add(x, Neg(x)) is a representation of
// zero for every x.
func Neg(x uint16) uint16 { return ^x }

// Sub returns the ones-complement difference a − b.
func Sub(a, b uint16) uint16 { return Add(a, Neg(b)) }

// IsZero reports whether x is one of the two ones-complement
// representations of zero.  The TCP checksum cannot distinguish a run of
// sixteen 1-bits from a run of sixteen 0-bits precisely because of this
// double zero (§2, §6.1).
func IsZero(x uint16) bool { return x == 0x0000 || x == 0xFFFF }

// Normalize maps the negative zero 0xFFFF onto 0x0000 so congruent sums
// compare equal with ==.  All other values are returned unchanged.
func Normalize(x uint16) uint16 {
	if x == 0xFFFF {
		return 0
	}
	return x
}

// Congruent reports whether a and b are equal as ones-complement values,
// treating 0x0000 and 0xFFFF as the same number.
func Congruent(a, b uint16) bool { return Normalize(a) == Normalize(b) }

// SumBytes returns the ones-complement sum of data taken as a sequence of
// big-endian 16-bit words, padding a trailing odd byte with zero, exactly
// as RFC 1071 specifies.  The returned value is the raw sum; the Internet
// checksum transmitted on the wire is its complement.
//
// The fast path exploits 2^16 ≡ 1 (mod 2^16−1): any power-of-two-sized
// chunk of the byte stream may be accumulated as a wide big-endian
// integer and folded at the end, so the inner loop consumes 16 bytes
// per iteration as four 32-bit loads — the "one or two additions per
// machine word" cost model of the paper's §2.
func SumBytes(data []byte) uint16 {
	var acc, acc2 uint64
	i := 0
	for ; i+16 <= len(data); i += 16 {
		v1 := binary.BigEndian.Uint64(data[i:])
		v2 := binary.BigEndian.Uint64(data[i+8:])
		acc += v1>>32 + v1&0xFFFFFFFF
		acc2 += v2>>32 + v2&0xFFFFFFFF
	}
	// Each accumulator gains < 2^33 per iteration, so a uint64 absorbs
	// ≥ 32 GiB of input — far beyond any packet or cell buffer.
	acc = uint64(Fold(acc)) + uint64(Fold(acc2))
	for ; i+4 <= len(data); i += 4 {
		acc += uint64(binary.BigEndian.Uint32(data[i:]))
	}
	for ; i+2 <= len(data); i += 2 {
		acc += uint64(data[i])<<8 | uint64(data[i+1])
	}
	if i < len(data) {
		acc += uint64(data[i]) << 8
	}
	return Fold(acc)
}

// Swap exchanges the two bytes of x.  The ones-complement sum is
// byte-order independent up to this swap (RFC 1071 §2(B)): summing
// byte-swapped words yields the byte-swapped sum.  Swap is what lets a
// partial sum computed over a fragment that starts at an odd byte offset
// be folded into a word-aligned total.
func Swap(x uint16) uint16 { return x<<8 | x>>8 }

// UpdateWord implements the corrected incremental-update equation of
// RFC 1624: given the checksum field value old (the complemented sum, as
// stored in a header) and a 16-bit word of the covered data changing from
// from to to, it returns the new checksum field value.
//
//	HC' = ~(~HC + ~m + m')
func UpdateWord(old, from, to uint16) uint16 {
	return Neg(Add(Add(Neg(old), Neg(from)), to))
}

// UpdateSum adjusts a raw (uncomplemented) sum for a 16-bit word of the
// covered data changing from from to to.
func UpdateSum(sum, from, to uint16) uint16 {
	return Add(Add(sum, Neg(from)), to)
}
