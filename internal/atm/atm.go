// Package atm implements the ATM cell format and AAL5 (ATM Adaptation
// Layer 5) segmentation and reassembly, the transport substrate of the
// paper's splice experiments.
//
// AAL5 carries a packet (the CPCS-SDU) as a sequence of 48-byte cell
// payloads: the packet, zero padding, and an 8-byte CPCS trailer holding
// the user-to-user byte, the common part indicator, the 16-bit SDU
// length, and a CRC-32 over the entire CPCS-PDU.  The final cell of a
// packet is marked with the ATM-user-to-ATM-user bit of the cell
// header's PTI field; a receiver accumulates payloads until it sees a
// marked cell.  A "packet splice" (§3.1) happens when cell losses leave
// a subsequence of two adjacent packets' cells that still ends in a
// marked cell and passes the trailer checks.
package atm

import (
	"errors"
	"fmt"

	"realsum/internal/crc"
)

// Cell geometry.
const (
	CellSize    = 53 // header + payload on the wire
	HeaderSize  = 5
	PayloadSize = 48
)

// TrailerSize is the length of the AAL5 CPCS trailer.
const TrailerSize = 8

// MaxSDU is the largest CPCS-SDU length representable in the trailer.
const MaxSDU = 65535

// Errors reported by reassembly and splice validation.
var (
	ErrNoCells      = errors.New("atm: no cells")
	ErrNotLast      = errors.New("atm: final cell is not marked end-of-packet")
	ErrEarlyLast    = errors.New("atm: interior cell is marked end-of-packet")
	ErrBadLength    = errors.New("atm: trailer length inconsistent with cell count")
	ErrBadCRC       = errors.New("atm: CPCS CRC-32 mismatch")
	ErrTooLong      = errors.New("atm: SDU longer than 65535 bytes")
	ErrBadHEC       = errors.New("atm: header error control mismatch")
	ErrShortHeader  = errors.New("atm: truncated cell header")
	ErrShortPayload = errors.New("atm: truncated cell payload")
)

// aal5CRC is the CRC-32 engine the AAL5 trailer uses.
var aal5CRC = crc.New(crc.CRC32)

// hec is the CRC-8 HEC engine (poly x^8+x^2+x+1 with the 0x55 coset).
var hec = crc.New(crc.CRC8HEC)

// Header is the 5-byte ATM cell header at the UNI: a 4-bit generic flow
// control field, 8-bit VPI, 16-bit VCI, 3-bit payload type indicator,
// the cell-loss-priority bit, and the HEC octet computed over the first
// four bytes.
type Header struct {
	GFC uint8  // 4 bits
	VPI uint8  // 8 bits at the UNI
	VCI uint16 // 16 bits
	PTI uint8  // 3 bits; bit 0 = ATM-user-to-ATM-user (AAL5 end of packet)
	CLP bool
}

// EndOfPacket reports whether the header marks the final cell of an
// AAL5 CPCS-PDU.
func (h Header) EndOfPacket() bool { return h.PTI&1 == 1 }

// SerializeTo writes the header, computing the HEC octet, into b.
func (h Header) SerializeTo(b []byte) error {
	if len(b) < HeaderSize {
		return ErrShortHeader
	}
	b[0] = h.GFC<<4 | h.VPI>>4
	b[1] = h.VPI<<4 | byte(h.VCI>>12)
	b[2] = byte(h.VCI >> 4)
	b[3] = byte(h.VCI) << 4
	b[3] |= (h.PTI & 7) << 1
	if h.CLP {
		b[3] |= 1
	}
	b[4] = byte(hec.Checksum(b[:4]))
	return nil
}

// DecodeFromBytes parses a cell header and validates its HEC.
func (h *Header) DecodeFromBytes(b []byte) error {
	if len(b) < HeaderSize {
		return ErrShortHeader
	}
	if byte(hec.Checksum(b[:4])) != b[4] {
		return ErrBadHEC
	}
	h.GFC = b[0] >> 4
	h.VPI = b[0]<<4 | b[1]>>4
	h.VCI = uint16(b[1]&0x0F)<<12 | uint16(b[2])<<4 | uint16(b[3])>>4
	h.PTI = b[3] >> 1 & 7
	h.CLP = b[3]&1 == 1
	return nil
}

// Cell is one ATM cell: header plus its 48-byte payload.
type Cell struct {
	Header  Header
	Payload [PayloadSize]byte
}

// SerializeTo writes the 53-byte wire form of the cell.
func (c *Cell) SerializeTo(b []byte) error {
	if len(b) < CellSize {
		return ErrShortPayload
	}
	if err := c.Header.SerializeTo(b); err != nil {
		return err
	}
	copy(b[HeaderSize:CellSize], c.Payload[:])
	return nil
}

// DecodeFromBytes parses a 53-byte wire cell.
func (c *Cell) DecodeFromBytes(b []byte) error {
	if len(b) < CellSize {
		return ErrShortPayload
	}
	if err := c.Header.DecodeFromBytes(b); err != nil {
		return err
	}
	copy(c.Payload[:], b[HeaderSize:CellSize])
	return nil
}

// Trailer is the 8-byte AAL5 CPCS trailer occupying the final bytes of
// the last cell.
type Trailer struct {
	UU     uint8  // CPCS user-to-user indication
	CPI    uint8  // common part indicator (0)
	Length uint16 // CPCS-SDU length in bytes
	CRC    uint32 // CRC-32 over the whole CPCS-PDU up to this field
}

// decodeTrailer reads the trailer from the final 8 bytes of a payload
// sequence.
func decodeTrailer(lastPayload []byte) Trailer {
	t := lastPayload[len(lastPayload)-TrailerSize:]
	return Trailer{
		UU:     t[0],
		CPI:    t[1],
		Length: uint16(t[2])<<8 | uint16(t[3]),
		CRC:    uint32(t[4])<<24 | uint32(t[5])<<16 | uint32(t[6])<<8 | uint32(t[7]),
	}
}

// DecodeTrailer reads the CPCS trailer from the final TrailerSize bytes
// of the last cell's payload, without any framing validation or
// allocation — for callers (like the splice enumerator) that built the
// cells themselves and only need the carried length and CRC.
func DecodeTrailer(lastPayload []byte) Trailer { return decodeTrailer(lastPayload) }

// CellCount returns the number of cells AAL5 needs for an SDU of n
// bytes: the SDU plus the 8-byte trailer, rounded up to whole cells.
func CellCount(n int) int {
	return (n + TrailerSize + PayloadSize - 1) / PayloadSize
}

// Segment builds the AAL5 cell sequence carrying sdu on the given
// virtual circuit.  The last cell has the end-of-packet PTI bit set and
// its final 8 bytes hold the CPCS trailer; all padding is zero.
func Segment(sdu []byte, vpi uint8, vci uint16) ([]Cell, error) {
	return AppendSegment(nil, sdu, vpi, vci)
}

// AppendSegment appends the AAL5 cell sequence carrying sdu to cells
// and returns the extended slice.  It reuses the slice's capacity and
// performs no other allocation, so a caller segmenting a packet stream
// (the splice enumerator's steady state) can recycle one buffer.
func AppendSegment(cells []Cell, sdu []byte, vpi uint8, vci uint16) ([]Cell, error) {
	if len(sdu) > MaxSDU {
		return cells, ErrTooLong
	}
	n := CellCount(len(sdu))
	base := len(cells)
	for i := 0; i < n; i++ {
		// The composite literal zeroes the payload, so reused capacity
		// carries no stale padding bytes.
		cells = append(cells, Cell{Header: Header{VPI: vpi, VCI: vci}})
	}
	out := cells[base:]
	out[n-1].Header.PTI = 1
	for i := 0; i < n && i*PayloadSize < len(sdu); i++ {
		copy(out[i].Payload[:], sdu[i*PayloadSize:])
	}
	t := out[n-1].Payload[PayloadSize-TrailerSize:]
	t[0], t[1] = 0, 0 // UU, CPI
	t[2], t[3] = byte(len(sdu)>>8), byte(len(sdu))
	reg := aal5CRC.RawInit()
	for i := 0; i < n-1; i++ {
		reg = aal5CRC.RawUpdate(reg, out[i].Payload[:])
	}
	reg = aal5CRC.RawUpdate(reg, out[n-1].Payload[:PayloadSize-4])
	c := uint32(aal5CRC.RawCRC(reg))
	t[4], t[5], t[6], t[7] = byte(c>>24), byte(c>>16), byte(c>>8), byte(c)
	return cells, nil
}

// Reassemble validates an AAL5 cell sequence and returns the carried
// SDU.  It applies exactly the checks a receiver applies — and therefore
// exactly the checks a splice must evade before the CRC is even
// consulted (§3.1): the final cell must be marked, no interior cell may
// be marked, the trailer length must be consistent with the cell count,
// and the CRC-32 must match.
func Reassemble(cells []Cell) ([]byte, error) {
	pdu, tr, err := checkFraming(cells)
	if err != nil {
		return nil, err
	}
	if uint32(aal5CRC.Checksum(pdu[:len(pdu)-4])) != tr.CRC {
		return nil, ErrBadCRC
	}
	return pdu[:tr.Length], nil
}

// checkFraming runs the non-CRC structural checks and returns the
// concatenated PDU and decoded trailer.
func checkFraming(cells []Cell) ([]byte, Trailer, error) {
	if len(cells) == 0 {
		return nil, Trailer{}, ErrNoCells
	}
	for i := 0; i < len(cells)-1; i++ {
		if cells[i].Header.EndOfPacket() {
			return nil, Trailer{}, ErrEarlyLast
		}
	}
	last := cells[len(cells)-1]
	if !last.Header.EndOfPacket() {
		return nil, Trailer{}, ErrNotLast
	}
	pdu := make([]byte, 0, len(cells)*PayloadSize)
	for i := range cells {
		pdu = append(pdu, cells[i].Payload[:]...)
	}
	tr := decodeTrailer(pdu)
	if CellCount(int(tr.Length)) != len(cells) {
		return nil, tr, ErrBadLength
	}
	return pdu, tr, nil
}

// CheckFraming exposes the structural (non-CRC) reassembly checks for
// the splice enumerator: it reports whether cells form a syntactically
// plausible AAL5 packet and, if so, returns its trailer.
func CheckFraming(cells []Cell) (Trailer, error) {
	_, tr, err := checkFraming(cells)
	return tr, err
}

func (t Trailer) String() string {
	return fmt.Sprintf("AAL5Trailer{len=%d crc=%#08x}", t.Length, t.CRC)
}
