package atm

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	tests := []Header{
		{},
		{GFC: 0xF, VPI: 0xFF, VCI: 0xFFFF, PTI: 7, CLP: true},
		{VPI: 42, VCI: 1000, PTI: 1},
		{GFC: 3, VCI: 5},
	}
	for _, h := range tests {
		var b [HeaderSize]byte
		if err := h.SerializeTo(b[:]); err != nil {
			t.Fatal(err)
		}
		var g Header
		if err := g.DecodeFromBytes(b[:]); err != nil {
			t.Fatalf("decode %+v: %v", h, err)
		}
		if g != h {
			t.Errorf("round trip: got %+v, want %+v", g, h)
		}
	}
}

func TestHeaderHECDetectsCorruption(t *testing.T) {
	h := Header{VPI: 1, VCI: 99, PTI: 1}
	var b [HeaderSize]byte
	h.SerializeTo(b[:])
	for bit := 0; bit < 40; bit++ {
		c := b
		c[bit/8] ^= 0x80 >> uint(bit%8)
		var g Header
		if err := g.DecodeFromBytes(c[:]); err != ErrBadHEC {
			t.Errorf("bit flip %d: got %v, want ErrBadHEC", bit, err)
		}
	}
}

func TestCellRoundTrip(t *testing.T) {
	var c Cell
	c.Header = Header{VPI: 7, VCI: 77, PTI: 1}
	for i := range c.Payload {
		c.Payload[i] = byte(i)
	}
	var b [CellSize]byte
	if err := c.SerializeTo(b[:]); err != nil {
		t.Fatal(err)
	}
	var g Cell
	if err := g.DecodeFromBytes(b[:]); err != nil {
		t.Fatal(err)
	}
	if g != c {
		t.Error("cell round trip mismatch")
	}
}

func TestCellCount(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 1},   // trailer alone fits one cell
		{1, 1},   // 1+8 = 9 <= 48
		{40, 1},  // 40+8 = 48: exactly one cell
		{41, 2},  // 49 -> 2 cells
		{88, 2},  // 96: exactly 2
		{256, 6}, // 264 -> 6 cells of payload alone...
		{296, 7}, // the paper's 296-byte packets: 304 -> 7 cells
		{298, 7}, // trailer-checksum packets: 306 -> 7 cells
	}
	for _, tc := range tests {
		if got := CellCount(tc.n); got != tc.want {
			t.Errorf("CellCount(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestSegmentReassembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 100; trial++ {
		n := rng.IntN(2000)
		sdu := make([]byte, n)
		for i := range sdu {
			sdu[i] = byte(rng.Uint32())
		}
		cells, err := Segment(sdu, 0, 32)
		if err != nil {
			t.Fatal(err)
		}
		if len(cells) != CellCount(n) {
			t.Fatalf("n=%d: %d cells, want %d", n, len(cells), CellCount(n))
		}
		for i, c := range cells {
			if got, want := c.Header.EndOfPacket(), i == len(cells)-1; got != want {
				t.Fatalf("cell %d/%d: EndOfPacket = %v", i, len(cells), got)
			}
		}
		out, err := Reassemble(cells)
		if err != nil {
			t.Fatalf("n=%d: reassemble: %v", n, err)
		}
		if !bytes.Equal(out, sdu) {
			t.Fatalf("n=%d: payload mismatch", n)
		}
	}
}

func TestSegmentTooLong(t *testing.T) {
	if _, err := Segment(make([]byte, MaxSDU+1), 0, 1); err != ErrTooLong {
		t.Errorf("got %v, want ErrTooLong", err)
	}
}

func TestReassembleRejectsFraming(t *testing.T) {
	sdu := make([]byte, 296)
	cells, _ := Segment(sdu, 0, 32)

	if _, err := Reassemble(nil); err != ErrNoCells {
		t.Errorf("empty: %v", err)
	}
	// Unmarked final cell.
	unmarked := append([]Cell{}, cells...)
	unmarked[len(unmarked)-1].Header.PTI = 0
	if _, err := Reassemble(unmarked); err != ErrNotLast {
		t.Errorf("unmarked last: %v", err)
	}
	// Interior marked cell.
	early := append([]Cell{}, cells...)
	early[2].Header.PTI = 1
	if _, err := Reassemble(early); err != ErrEarlyLast {
		t.Errorf("early last: %v", err)
	}
	// Dropped interior cell: length check fires before CRC.
	dropped := append(append([]Cell{}, cells[:2]...), cells[3:]...)
	if _, err := Reassemble(dropped); err != ErrBadLength {
		t.Errorf("dropped cell: %v", err)
	}
	// Corrupted payload byte: CRC catches it.
	corrupt := append([]Cell{}, cells...)
	corrupt[1].Payload[10] ^= 0xFF
	if _, err := Reassemble(corrupt); err != ErrBadCRC {
		t.Errorf("corrupt payload: %v", err)
	}
}

func TestCheckFramingMatchesReassemble(t *testing.T) {
	sdu := make([]byte, 500)
	for i := range sdu {
		sdu[i] = byte(i * 3)
	}
	cells, _ := Segment(sdu, 1, 2)
	tr, err := CheckFraming(cells)
	if err != nil {
		t.Fatal(err)
	}
	if int(tr.Length) != len(sdu) {
		t.Errorf("trailer length %d, want %d", tr.Length, len(sdu))
	}
	if tr.String() == "" {
		t.Error("Trailer.String empty")
	}
}

func TestSpliceOfWholeCellsDetectedByLengthOrCRC(t *testing.T) {
	// Construct the Figure-1 style splice by hand: two 4-cell packets,
	// keep cells 0,2 of the first and 0,3 of the second.  The splice has
	// the right cell count and ends in a marked cell, so framing passes
	// — only the CRC stands in the way.
	mk := func(fill byte) []Cell {
		sdu := make([]byte, 160) // 160+8 = 168 -> 4 cells
		for i := range sdu {
			sdu[i] = fill
		}
		cells, err := Segment(sdu, 0, 5)
		if err != nil || len(cells) != 4 {
			t.Fatalf("setup: %v (%d cells)", err, len(cells))
		}
		return cells
	}
	p1, p2 := mk(0xAA), mk(0xBB)
	splice := []Cell{p1[0], p1[2], p2[0], p2[3]}
	if _, err := CheckFraming(splice); err != nil {
		t.Fatalf("framing should pass for a size-consistent splice: %v", err)
	}
	if _, err := Reassemble(splice); err != ErrBadCRC {
		t.Errorf("splice of distinct payloads: got %v, want ErrBadCRC", err)
	}
}

func TestReassembleZeroLengthSDU(t *testing.T) {
	cells, err := Segment(nil, 0, 1)
	if err != nil || len(cells) != 1 {
		t.Fatalf("Segment(nil): %v, %d cells", err, len(cells))
	}
	out, err := Reassemble(cells)
	if err != nil || len(out) != 0 {
		t.Errorf("Reassemble: %v, %d bytes", err, len(out))
	}
}
