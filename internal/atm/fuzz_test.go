package atm

import (
	"bytes"
	"testing"
)

// FuzzSegmentReassemble checks the round-trip invariant for arbitrary
// SDUs: Segment always produces a framing-valid cell sequence whose
// Reassemble returns the exact input.  Run with `go test -fuzz
// FuzzSegmentReassemble ./internal/atm` to explore; the seed corpus
// runs in normal test mode.
func FuzzSegmentReassemble(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	f.Add(bytes.Repeat([]byte{0xA5}, 48))
	f.Add(bytes.Repeat([]byte{1, 2, 3}, 100))
	f.Add(make([]byte, 296))
	f.Fuzz(func(t *testing.T, sdu []byte) {
		if len(sdu) > MaxSDU {
			sdu = sdu[:MaxSDU]
		}
		cells, err := Segment(sdu, 3, 77)
		if err != nil {
			t.Fatalf("Segment: %v", err)
		}
		if len(cells) != CellCount(len(sdu)) {
			t.Fatalf("cell count %d, want %d", len(cells), CellCount(len(sdu)))
		}
		out, err := Reassemble(cells)
		if err != nil {
			t.Fatalf("Reassemble: %v", err)
		}
		if !bytes.Equal(out, sdu) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzHeaderDecode checks that any 5 bytes either fail the HEC or
// round-trip exactly.
func FuzzHeaderDecode(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0x55})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < HeaderSize {
			return
		}
		var h Header
		if err := h.DecodeFromBytes(raw); err != nil {
			return // HEC rejected it; fine
		}
		var out [HeaderSize]byte
		if err := h.SerializeTo(out[:]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out[:], raw[:HeaderSize]) {
			t.Fatalf("decode/encode mismatch: %x -> %+v -> %x", raw[:5], h, out)
		}
	})
}
