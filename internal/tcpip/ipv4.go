// Package tcpip implements the IPv4 and TCP header formats, the Internet
// pseudo-header, and the packet builder the paper's FTP simulation uses.
//
// The decode/serialize style follows the usual Go packet-layer idiom:
// each header type has DecodeFromBytes and SerializeTo methods operating
// on caller-owned buffers, so the splice simulator can construct and
// inspect millions of packets without allocation.
package tcpip

import (
	"errors"
	"fmt"

	"realsum/internal/inet"
)

// Byte sizes of the fixed headers used throughout the study (no IP or
// TCP options, exactly as the paper's simulated FTP transfer).
const (
	IPv4HeaderLen = 20
	TCPHeaderLen  = 20
	HeadersLen    = IPv4HeaderLen + TCPHeaderLen // the "first 40 bytes" of §3.1
)

// ProtocolTCP is the IPv4 protocol number for TCP.
const ProtocolTCP = 6

// Errors returned by the decoders.  The splice simulator treats any of
// them as "caught by header checks".
var (
	ErrTruncated     = errors.New("tcpip: buffer too short")
	ErrBadVersion    = errors.New("tcpip: IP version is not 4")
	ErrBadIHL        = errors.New("tcpip: IP header length is not 5 words")
	ErrBadLength     = errors.New("tcpip: IP total length inconsistent")
	ErrBadProtocol   = errors.New("tcpip: protocol is not TCP")
	ErrBadIPChecksum = errors.New("tcpip: IP header checksum invalid")
	ErrBadDataOffset = errors.New("tcpip: TCP data offset is not 5 words")
	ErrBadFlags      = errors.New("tcpip: TCP flags are not a plain ACK segment")
)

// IPv4Header is a 20-byte IPv4 header without options.
type IPv4Header struct {
	TOS         uint8
	TotalLength uint16
	ID          uint16
	Flags       uint8 // 3-bit flags field (bit 1 = DF)
	FragOffset  uint16
	TTL         uint8
	Protocol    uint8
	Checksum    uint16
	Src         [4]byte
	Dst         [4]byte
}

// SerializeTo writes the header into b, which must be at least
// IPv4HeaderLen bytes.  The Checksum field is written as-is; call
// ComputeChecksum first to fill it.
func (h *IPv4Header) SerializeTo(b []byte) error {
	if len(b) < IPv4HeaderLen {
		return ErrTruncated
	}
	b[0] = 4<<4 | 5 // version 4, IHL 5
	b[1] = h.TOS
	putU16(b[2:], h.TotalLength)
	putU16(b[4:], h.ID)
	putU16(b[6:], uint16(h.Flags)<<13|h.FragOffset&0x1FFF)
	b[8] = h.TTL
	b[9] = h.Protocol
	putU16(b[10:], h.Checksum)
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	return nil
}

// DecodeFromBytes parses a 20-byte optionless IPv4 header from b.  It
// performs only structural decoding; use Validate for the paper's
// header checks.
func (h *IPv4Header) DecodeFromBytes(b []byte) error {
	if len(b) < IPv4HeaderLen {
		return ErrTruncated
	}
	if b[0]>>4 != 4 {
		return ErrBadVersion
	}
	if b[0]&0x0F != 5 {
		return ErrBadIHL
	}
	h.TOS = b[1]
	h.TotalLength = getU16(b[2:])
	h.ID = getU16(b[4:])
	h.Flags = uint8(getU16(b[6:]) >> 13)
	h.FragOffset = getU16(b[6:]) & 0x1FFF
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = getU16(b[10:])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return nil
}

// ComputeChecksum fills h.Checksum with the RFC 791 header checksum.
func (h *IPv4Header) ComputeChecksum() {
	var buf [IPv4HeaderLen]byte
	h.Checksum = 0
	h.SerializeTo(buf[:])
	h.Checksum = inet.Checksum(buf[:])
}

// ValidateIPv4 runs the syntactic IP-layer checks of §3.1 on a candidate
// packet: version, header length, total length against the buffer, TCP
// protocol, and (if checkSum is true) the IP header checksum.  It
// returns nil when the buffer could plausibly be an intact packet.
func ValidateIPv4(pkt []byte, checkSum bool) error {
	var h IPv4Header
	if err := h.DecodeFromBytes(pkt); err != nil {
		return err
	}
	if int(h.TotalLength) != len(pkt) {
		return ErrBadLength
	}
	if h.Protocol != ProtocolTCP {
		return ErrBadProtocol
	}
	if checkSum && !inet.Verify(pkt[:IPv4HeaderLen]) {
		return ErrBadIPChecksum
	}
	return nil
}

func putU16(b []byte, v uint16) { b[0], b[1] = byte(v>>8), byte(v) }
func getU16(b []byte) uint16    { return uint16(b[0])<<8 | uint16(b[1]) }
func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// String renders the header for diagnostics.
func (h *IPv4Header) String() string {
	return fmt.Sprintf("IPv4{len=%d id=%d %d.%d.%d.%d > %d.%d.%d.%d proto=%d}",
		h.TotalLength, h.ID,
		h.Src[0], h.Src[1], h.Src[2], h.Src[3],
		h.Dst[0], h.Dst[1], h.Dst[2], h.Dst[3], h.Protocol)
}
