package tcpip

import (
	"realsum/internal/inet"
	"realsum/internal/onescomp"
)

// UDPHeaderLen is the fixed UDP header size.
const UDPHeaderLen = 8

// ProtocolUDP is the IPv4 protocol number for UDP.
const ProtocolUDP = 17

// UDPHeader is the 8-byte UDP header.  UDP shares the Internet checksum
// with IP and TCP (§1 of the paper) but adds one wrinkle the
// ones-complement double zero makes possible: a transmitted checksum of
// 0x0000 means "no checksum", so a computed sum of zero is sent as its
// other representation, 0xFFFF.
type UDPHeader struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// SerializeTo writes the header into b (at least UDPHeaderLen bytes).
func (h *UDPHeader) SerializeTo(b []byte) error {
	if len(b) < UDPHeaderLen {
		return ErrTruncated
	}
	putU16(b[0:], h.SrcPort)
	putU16(b[2:], h.DstPort)
	putU16(b[4:], h.Length)
	putU16(b[6:], h.Checksum)
	return nil
}

// DecodeFromBytes parses a UDP header from b.
func (h *UDPHeader) DecodeFromBytes(b []byte) error {
	if len(b) < UDPHeaderLen {
		return ErrTruncated
	}
	h.SrcPort = getU16(b[0:])
	h.DstPort = getU16(b[2:])
	h.Length = getU16(b[4:])
	h.Checksum = getU16(b[6:])
	return nil
}

// udpPseudoSum is the UDP pseudo-header sum (protocol 17).
func udpPseudoSum(src, dst [4]byte, udpLen int) uint16 {
	var b [12]byte
	copy(b[0:4], src[:])
	copy(b[4:8], dst[:])
	b[9] = ProtocolUDP
	putU16(b[10:], uint16(udpLen))
	return inet.Sum(b[:])
}

// UDPChecksum computes the UDP checksum field for datagram bytes dgram
// (header with zeroed checksum field + payload).  A computed value of
// 0x0000 is mapped to 0xFFFF, because zero is reserved to mean "no
// checksum transmitted" — a protocol design decision possible only
// because ones-complement arithmetic has two zeros (§6.1).
func UDPChecksum(src, dst [4]byte, dgram []byte) uint16 {
	sum := onescomp.Add(udpPseudoSum(src, dst, len(dgram)), inet.Sum(dgram))
	ck := onescomp.Neg(sum)
	if ck == 0 {
		return 0xFFFF
	}
	return ck
}

// VerifyUDP checks a received UDP datagram (with its checksum field in
// place).  A zero stored checksum means the sender didn't checksum and
// the datagram is accepted.
func VerifyUDP(src, dst [4]byte, dgram []byte) bool {
	if len(dgram) < UDPHeaderLen {
		return false
	}
	if getU16(dgram[6:]) == 0 {
		return true // checksum disabled
	}
	sum := onescomp.Add(udpPseudoSum(src, dst, len(dgram)), inet.Sum(dgram))
	return onescomp.IsZero(onescomp.Neg(sum))
}

// BuildUDPDatagram constructs a complete UDP datagram with a valid
// checksum.
func BuildUDPDatagram(src, dst [4]byte, srcPort, dstPort uint16, payload []byte) []byte {
	dgram := make([]byte, UDPHeaderLen+len(payload))
	h := UDPHeader{
		SrcPort: srcPort, DstPort: dstPort,
		Length: uint16(UDPHeaderLen + len(payload)),
	}
	h.SerializeTo(dgram)
	copy(dgram[UDPHeaderLen:], payload)
	ck := UDPChecksum(src, dst, dgram)
	putU16(dgram[6:], ck)
	return dgram
}
