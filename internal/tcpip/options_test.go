package tcpip

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"realsum/internal/fletcher"
)

func TestParseSerializeOptionsRoundTrip(t *testing.T) {
	opts := []Option{
		{Kind: OptNOP},
		{Kind: OptMSS, Data: []byte{0x05, 0xB4}},
		{Kind: OptAltCkReq, Data: []byte{AltSumFletcher8}},
	}
	area := SerializeOptions(opts)
	if len(area)%4 != 0 {
		t.Fatalf("area not padded: %d", len(area))
	}
	got, err := ParseOptions(area)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(opts) {
		t.Fatalf("parsed %d options, want %d", len(got), len(opts))
	}
	for i := range opts {
		if got[i].Kind != opts[i].Kind || !bytes.Equal(got[i].Data, opts[i].Data) {
			t.Errorf("option %d: %+v vs %+v", i, got[i], opts[i])
		}
	}
}

func TestParseOptionsMalformed(t *testing.T) {
	cases := [][]byte{
		{OptMSS},                // kind without length
		{OptMSS, 1},             // length below 2
		{OptMSS, 10, 1, 2},      // length beyond area
		{OptAltCkData, 0, 0, 0}, // zero length
	}
	for _, c := range cases {
		if _, err := ParseOptions(c); err != ErrBadOption {
			t.Errorf("%v: err = %v, want ErrBadOption", c, err)
		}
	}
	// EOL terminates cleanly, ignoring trailing garbage.
	got, err := ParseOptions([]byte{OptNOP, OptEOL, 0xFF, 0xFF})
	if err != nil || len(got) != 1 {
		t.Errorf("EOL handling: %v, %d options", err, len(got))
	}
}

func TestBuildAltSegmentAllAlgorithms(t *testing.T) {
	src, dst := [4]byte{127, 0, 0, 1}, [4]byte{127, 0, 0, 1}
	rng := rand.New(rand.NewPCG(1, 1))
	hdr := TCPHeader{SrcPort: 20, DstPort: 999, Seq: 7, Ack: 3, Flags: FlagACK, Window: 4096}
	for _, alg := range []int{AltSumTCP, AltSumFletcher8, AltSumFletcher16} {
		for trial := 0; trial < 100; trial++ {
			payload := make([]byte, rng.IntN(400))
			for i := range payload {
				payload[i] = byte(rng.Uint32())
			}
			seg, err := BuildAltSegment(src, dst, hdr, alg, payload)
			if err != nil {
				t.Fatalf("alg %d: %v", alg, err)
			}
			gotAlg, ok, err := VerifyAltSegment(src, dst, seg)
			if err != nil || !ok {
				t.Fatalf("alg %d payload %d: verify = (%d, %v, %v)", alg, len(payload), gotAlg, ok, err)
			}
			if gotAlg != alg {
				t.Fatalf("alg %d recognized as %d", alg, gotAlg)
			}
			// Any single-byte corruption of the payload is caught
			// (Fletcher-8 may miss a 0x00<->0xFF flip; use a safe delta).
			if len(payload) > 0 {
				pos := len(seg) - 1 - rng.IntN(len(payload))
				seg[pos] ^= 0x11
				if _, ok, _ := VerifyAltSegment(src, dst, seg); ok {
					t.Fatalf("alg %d: corruption at %d passed", alg, pos)
				}
				seg[pos] ^= 0x11
			}
		}
	}
}

func TestBuildAltSegmentUnknownAlg(t *testing.T) {
	if _, err := BuildAltSegment([4]byte{}, [4]byte{}, TCPHeader{}, 99, nil); err != ErrUnknownAlt {
		t.Errorf("err = %v", err)
	}
}

func TestAltSegmentFletcher16Layout(t *testing.T) {
	src, dst := [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}
	seg, err := BuildAltSegment(src, dst, TCPHeader{Flags: FlagACK}, AltSumFletcher16, []byte("payload data here"))
	if err != nil {
		t.Fatal(err)
	}
	// Data offset must cover the 8-byte option area.
	if off := int(seg[12]>>4) * 4; off != 28 {
		t.Errorf("data offset %d, want 28", off)
	}
	// The whole segment word-Fletcher-sums to zero mod 65535.
	s := fletcher.Sum32(seg)
	if s.A%65535 != 0 || s.B%65535 != 0 {
		t.Errorf("segment sums to (%d, %d)", s.A, s.B)
	}
	// The option parses back with the check word in its data.
	opts, err := ParseOptions(seg[20:28])
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range opts {
		if o.Kind == OptAltCkData && len(o.Data) == 2 {
			found = true
		}
	}
	if !found {
		t.Error("Alternate Checksum Data option missing")
	}
}

func TestAltSegmentOddPayloads(t *testing.T) {
	// Odd-length payloads exercise the zero-padded final word.
	src, dst := [4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}
	for n := 0; n < 9; n++ {
		seg, err := BuildAltSegment(src, dst, TCPHeader{Flags: FlagACK}, AltSumFletcher16, make([]byte, n))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := VerifyAltSegment(src, dst, seg); !ok {
			t.Errorf("payload %d: does not verify", n)
		}
	}
}

func TestModInverse(t *testing.T) {
	for _, a := range []uint64{1, 2, 4, 7, 11, 16384, 65534} {
		inv := modInverse(a, 65535)
		if a*inv%65535 != 1 {
			t.Errorf("modInverse(%d) = %d", a, inv)
		}
	}
}
