package tcpip

import (
	"fmt"

	"realsum/internal/inet"
	"realsum/internal/onescomp"
)

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// TCPHeader is a 20-byte optionless TCP header.
type TCPHeader struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	Flags    uint8
	Window   uint16
	Checksum uint16
	Urgent   uint16
}

// SerializeTo writes the header into b (at least TCPHeaderLen bytes).
// The Checksum field is written as-is.
func (h *TCPHeader) SerializeTo(b []byte) error {
	if len(b) < TCPHeaderLen {
		return ErrTruncated
	}
	putU16(b[0:], h.SrcPort)
	putU16(b[2:], h.DstPort)
	putU32(b[4:], h.Seq)
	putU32(b[8:], h.Ack)
	b[12] = 5 << 4 // data offset 5 words, no options
	b[13] = h.Flags
	putU16(b[14:], h.Window)
	putU16(b[16:], h.Checksum)
	putU16(b[18:], h.Urgent)
	return nil
}

// DecodeFromBytes parses an optionless TCP header from b.
func (h *TCPHeader) DecodeFromBytes(b []byte) error {
	if len(b) < TCPHeaderLen {
		return ErrTruncated
	}
	if b[12]>>4 != 5 {
		return ErrBadDataOffset
	}
	h.SrcPort = getU16(b[0:])
	h.DstPort = getU16(b[2:])
	h.Seq = getU32(b[4:])
	h.Ack = getU32(b[8:])
	h.Flags = b[13]
	h.Window = getU16(b[14:])
	h.Checksum = getU16(b[16:])
	h.Urgent = getU16(b[18:])
	return nil
}

// PseudoHeaderSum returns the ones-complement sum of the TCP
// pseudo-header for a segment of tcpLen bytes (header + payload)
// between src and dst.
func PseudoHeaderSum(src, dst [4]byte, tcpLen int) uint16 {
	var b [12]byte
	copy(b[0:4], src[:])
	copy(b[4:8], dst[:])
	b[9] = ProtocolTCP
	putU16(b[10:], uint16(tcpLen))
	return inet.Sum(b[:])
}

// TCPChecksum computes the TCP checksum field value for the segment
// bytes seg (TCP header with zeroed checksum field + payload) between
// src and dst: the complement of the sum over pseudo-header and segment.
func TCPChecksum(src, dst [4]byte, seg []byte) uint16 {
	sum := onescomp.Add(PseudoHeaderSum(src, dst, len(seg)), inet.Sum(seg))
	return onescomp.Neg(sum)
}

// VerifyTCP reports whether the segment seg (including its stored
// checksum) passes the TCP checksum against the given addresses.
func VerifyTCP(src, dst [4]byte, seg []byte) bool {
	sum := onescomp.Add(PseudoHeaderSum(src, dst, len(seg)), inet.Sum(seg))
	return onescomp.IsZero(onescomp.Neg(sum))
}

// ValidateTCP runs the syntactic TCP-layer checks of §3.1 on the segment
// bytes: data offset and "certain bits must be set" — a mid-transfer FTP
// data segment carries a plain ACK (PSH allowed), never SYN/FIN/RST/URG.
func ValidateTCP(seg []byte) error {
	var h TCPHeader
	if err := h.DecodeFromBytes(seg); err != nil {
		return err
	}
	if h.Flags&FlagACK == 0 || h.Flags&(FlagSYN|FlagFIN|FlagRST|FlagURG) != 0 {
		return ErrBadFlags
	}
	return nil
}

// String renders the header for diagnostics.
func (h *TCPHeader) String() string {
	return fmt.Sprintf("TCP{%d>%d seq=%d ack=%d flags=%#02x ck=%#04x}",
		h.SrcPort, h.DstPort, h.Seq, h.Ack, h.Flags, h.Checksum)
}
