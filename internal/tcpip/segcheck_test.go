package tcpip

import (
	"testing"

	"realsum/internal/onescomp"
)

func buildFlowPackets(t *testing.T, payloads [][]byte) [][]byte {
	t.Helper()
	flow := NewLoopbackFlow(BuildOptions{})
	pkts := make([][]byte, len(payloads))
	for i, p := range payloads {
		pkts[i] = flow.NextPacket(nil, p)
	}
	return pkts
}

func TestSegmentCheckValueIntact(t *testing.T) {
	pkts := buildFlowPackets(t, [][]byte{make([]byte, 256), []byte("hello, segment"), {}})
	for i, pkt := range pkts {
		stored, want, ok := SegmentCheckValue(pkt)
		if !ok {
			t.Fatalf("packet %d: ok=false for an intact packet", i)
		}
		if stored != StoredTCPChecksum(pkt) {
			t.Fatalf("packet %d: stored=%#04x but StoredTCPChecksum=%#04x", i, stored, StoredTCPChecksum(pkt))
		}
		if !onescomp.Congruent(stored, want) {
			t.Fatalf("packet %d: intact packet not self-consistent: stored=%#04x want=%#04x", i, stored, want)
		}
	}
}

func TestSegmentCheckValueDetectsPayloadFlip(t *testing.T) {
	pkt := buildFlowPackets(t, [][]byte{make([]byte, 64)})[0]
	for _, off := range []int{HeadersLen, HeadersLen + 13, len(pkt) - 1} {
		mut := append([]byte(nil), pkt...)
		mut[off] ^= 0x40
		stored, want, ok := SegmentCheckValue(mut)
		if !ok {
			t.Fatalf("offset %d: ok=false", off)
		}
		if onescomp.Congruent(stored, want) {
			t.Fatalf("offset %d: payload flip not reflected in want (stored=%#04x)", off, stored)
		}
	}
}

// TestSegmentCheckValueHeadSubstitution is the mechanism behind the
// paper's Table 9 claim: when a splice delivers packet j's bytes under
// packet k's identity, the header-placed field (inside j's bytes) still
// matches the recomputed sum, while k's transmitted field — the
// trailer-placed reading — does not.
func TestSegmentCheckValueHeadSubstitution(t *testing.T) {
	// Zero payloads: the segments differ only in their sequence numbers
	// and checksum fields, the worst case for content-derived checks.
	pkts := buildFlowPackets(t, [][]byte{make([]byte, 256), make([]byte, 256)})
	j, k := pkts[0], pkts[1]

	stored, want, ok := SegmentCheckValue(j)
	if !ok {
		t.Fatal("ok=false for a complete packet")
	}
	if !onescomp.Congruent(stored, want) {
		t.Fatalf("header-placed check should accept j's own bytes: stored=%#04x want=%#04x", stored, want)
	}
	if onescomp.Congruent(StoredTCPChecksum(k), want) {
		t.Fatalf("trailer-placed check (k's sent field %#04x) should reject j's bytes (want %#04x)",
			StoredTCPChecksum(k), want)
	}
}

func TestSegmentCheckValueStructuralReject(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, HeadersLen-1),
		append([]byte{0x60}, make([]byte, HeadersLen)...), // IP version 6
		append([]byte{0x46}, make([]byte, HeadersLen)...), // IHL 6 words
	}
	for i, pkt := range cases {
		if _, _, ok := SegmentCheckValue(pkt); ok {
			t.Fatalf("case %d: ok=true for structurally invalid bytes", i)
		}
	}
}
