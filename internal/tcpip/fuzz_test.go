package tcpip

import (
	"bytes"
	"testing"
)

// FuzzVerifyAltSegment drives the RFC 1146 verifier three ways per
// input: raw bytes (must never panic), a fuzzed option area behind a
// structurally plausible header (must never panic), and a
// BuildAltSegment round trip (must verify, and must reject any
// single-byte payload mutation as the built algorithm).
//
// Two documented exemptions bound the rejection invariant:
//
//   - Fletcher mod 255 cannot distinguish 0x00 from 0xFF (both are 0 mod
//     255 and the weighted sum scales the same zero), so an 0x00↔0xFF
//     byte swap in an AltSumFletcher8 segment MUST be accepted — the
//     blind spot is asserted, not skipped.
//   - The verifier is negotiationless: a mutated segment may, with
//     probability ~2⁻¹⁶, verify under one of the OTHER algorithms it
//     tries.  That is aliasing between checks, not a missed error of the
//     built check, so the invariant is "never ok under the built
//     algorithm" rather than "never ok".
func FuzzVerifyAltSegment(f *testing.F) {
	f.Add(byte(0), []byte("hello, alternate checksum"), []byte{}, []byte{}, uint16(0), byte(0x40))
	f.Add(byte(1), []byte{0x00, 0xFF, 0x00, 0x41}, []byte{OptNOP, OptNOP}, []byte("raw"), uint16(0), byte(0xFF))
	f.Add(byte(2), bytes.Repeat([]byte{0}, 64), []byte{OptAltCkData, 4, 0, 0}, bytes.Repeat([]byte{0xFF}, 41), uint16(9), byte(1))
	f.Add(byte(1), []byte{0xFF}, []byte{OptMSS, 4, 5, 0xB4}, []byte{0x50}, uint16(0), byte(0xFF))
	f.Add(byte(0), []byte{}, []byte{OptAltCkData, 1}, bytes.Repeat([]byte{0x55}, 60), uint16(7), byte(0))

	src := [4]byte{127, 0, 0, 1}
	dst := [4]byte{127, 0, 0, 1}

	f.Fuzz(func(t *testing.T, algSel byte, payload, optArea, raw []byte, mutOff uint16, mutXor byte) {
		// 1. Arbitrary bytes: no panic, whatever the verdict.
		VerifyAltSegment(src, dst, raw)

		// 2. Fuzzed option area behind a plausible fixed header whose
		// data offset spans it: no panic, whatever the verdict.
		if len(optArea) > 40 {
			optArea = optArea[:40]
		}
		nw := (len(optArea) + 3) / 4 * 4
		optSeg := make([]byte, optFixedHeader+nw+len(payload)%64)
		hdr := TCPHeader{SrcPort: 20, DstPort: 1234, Seq: 1, Ack: 1, Flags: FlagACK, Window: 8760}
		hdr.SerializeTo(optSeg)
		optSeg[12] = byte((optFixedHeader+nw)/4) << 4
		copy(optSeg[optFixedHeader:], optArea)
		VerifyAltSegment(src, dst, optSeg)

		// 3. Build/verify round trip.
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		alg := int(algSel) % 3
		seg, err := BuildAltSegment(src, dst, hdr, alg, payload)
		if err != nil {
			t.Fatalf("BuildAltSegment(alg=%d, %d bytes): %v", alg, len(payload), err)
		}
		got, ok, err := VerifyAltSegment(src, dst, seg)
		if err != nil || !ok {
			t.Fatalf("round trip alg=%d: got=%d ok=%v err=%v", alg, got, ok, err)
		}
		// AltSumFletcher8 segments may alias to a valid standard sum,
		// which the verifier tries first; every other build must be
		// recognized exactly.
		if got != alg && !(alg == AltSumFletcher8 && got == AltSumTCP) {
			t.Fatalf("round trip alg=%d recognized as %d", alg, got)
		}

		// 4. Single-byte payload mutation.
		if len(payload) == 0 || mutXor == 0 {
			return
		}
		off := len(seg) - len(payload) + int(mutOff)%len(payload)
		mut := append([]byte(nil), seg...)
		mut[off] ^= mutXor
		mgot, mok, _ := VerifyAltSegment(src, dst, mut)
		blind := alg == AltSumFletcher8 && mutXor == 0xFF &&
			(seg[off] == 0x00 || seg[off] == 0xFF)
		if blind {
			if !mok || mgot != AltSumFletcher8 {
				t.Errorf("Fletcher-255 0x00↔0xFF blind spot at offset %d: got=%d ok=%v, want accepted", off, mgot, mok)
			}
			return
		}
		if mok && mgot == alg {
			t.Errorf("alg=%d accepted a single-byte mutation (offset %d, xor %#02x)", alg, off, mutXor)
		}
	})
}
