package tcpip

import (
	"realsum/internal/inet"
	"realsum/internal/onescomp"
)

// SegmentCheckValue extracts the per-segment TCP check material the
// netsim placement scorer contrasts: from a candidate packet's received
// bytes it returns the checksum value the packet carries in its header
// field (stored) and the value the field *should* hold for those bytes
// (want — the Internet checksum over pseudo-header and segment with the
// stored field's contribution removed).
//
// The two readings give the paper's header-vs-trailer position contrast
// without a second transmission: a header-placed check compares stored
// against want, because the field rides inside the bytes being checked
// and shares fate with the segment's head cells; a trailer-placed check
// compares the claimed sender's transmitted field value (carried with
// the trailer, the way AAL5 carries its CRC) against the same want.
//
// ok is false when the bytes cannot carry the field at all — shorter
// than the fixed 40-byte header pair, or an IP header too mangled to
// locate the segment (bad version/IHL).  Such candidates never reach a
// checksum comparison in a real receiver; the caller should count them
// as structurally detected under either position.
func SegmentCheckValue(pkt []byte) (stored, want uint16, ok bool) {
	if len(pkt) < HeadersLen {
		return 0, 0, false
	}
	var ip IPv4Header
	if ip.DecodeFromBytes(pkt) != nil {
		return 0, 0, false
	}
	seg := pkt[IPv4HeaderLen:]
	stored = getU16(seg[16:])
	// The field sits at even segment offset 16, so its contribution to
	// the word-wise sum is the value itself — no parity swap (contrast
	// VerifyPacket's trailer-mode handling).
	sum := onescomp.Add(PseudoHeaderSum(ip.Src, ip.Dst, len(seg)), inet.Sum(seg))
	sum = onescomp.Sub(sum, stored)
	return stored, onescomp.Neg(sum), true
}

// StoredTCPChecksum reads the TCP header checksum field from a complete
// sent packet — the value the sender transmitted, which the netsim
// trailer-position scoring carries alongside the AAL5 trailer.  The
// packet must be at least HeadersLen bytes (the builder guarantees it).
func StoredTCPChecksum(pkt []byte) uint16 {
	return getU16(pkt[IPv4HeaderLen+16:])
}
