package tcpip

import (
	"math/rand/v2"
	"testing"
)

func TestUDPHeaderRoundTrip(t *testing.T) {
	h := UDPHeader{SrcPort: 53, DstPort: 1234, Length: 100, Checksum: 0xBEEF}
	var b [UDPHeaderLen]byte
	if err := h.SerializeTo(b[:]); err != nil {
		t.Fatal(err)
	}
	var g UDPHeader
	if err := g.DecodeFromBytes(b[:]); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Errorf("round trip: %+v vs %+v", g, h)
	}
	if err := h.SerializeTo(b[:4]); err != ErrTruncated {
		t.Errorf("short serialize: %v", err)
	}
	if err := g.DecodeFromBytes(b[:4]); err != ErrTruncated {
		t.Errorf("short decode: %v", err)
	}
}

func TestUDPBuildAndVerify(t *testing.T) {
	src, dst := [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 200; trial++ {
		payload := make([]byte, rng.IntN(500))
		for i := range payload {
			payload[i] = byte(rng.Uint32())
		}
		dgram := BuildUDPDatagram(src, dst, 53, 4321, payload)
		if !VerifyUDP(src, dst, dgram) {
			t.Fatalf("valid datagram (len %d) failed verification", len(payload))
		}
		if len(payload) > 0 {
			pos := UDPHeaderLen + rng.IntN(len(payload))
			dgram[pos] ^= 0x7F
			if VerifyUDP(src, dst, dgram) {
				t.Fatalf("corrupted datagram verified")
			}
		}
	}
}

func TestUDPZeroChecksumSemantics(t *testing.T) {
	src, dst := [4]byte{127, 0, 0, 1}, [4]byte{127, 0, 0, 1}
	// A stored checksum of zero means "no checksum": always accepted.
	dgram := BuildUDPDatagram(src, dst, 1, 2, []byte("damage me"))
	dgram[6], dgram[7] = 0, 0
	dgram[10] ^= 0xFF
	if !VerifyUDP(src, dst, dgram) {
		t.Error("zero checksum must disable verification")
	}
	// The transmitted checksum is never 0x0000: craft a payload whose
	// complemented sum would be zero and confirm the 0xFFFF mapping.
	// Easiest: search a one-byte payload space for the case.
	found := false
	for v := 0; v < 256 && !found; v++ {
		d := BuildUDPDatagram(src, dst, 0, 0, []byte{byte(v)})
		ck := uint16(d[6])<<8 | uint16(d[7])
		if ck == 0 {
			t.Fatal("transmitted UDP checksum of 0x0000")
		}
		if ck == 0xFFFF {
			found = true
			if !VerifyUDP(src, dst, d) {
				t.Error("datagram with mapped 0xFFFF checksum must verify")
			}
		}
	}
	// (found is not guaranteed in so small a search space; the
	// invariant that matters is ck != 0, asserted above.)
	_ = found
}

func TestUDPVerifyTruncated(t *testing.T) {
	if VerifyUDP([4]byte{}, [4]byte{}, []byte{1, 2, 3}) {
		t.Error("truncated datagram verified")
	}
}
