package tcpip

import (
	"fmt"

	"realsum/internal/fletcher"
	"realsum/internal/inet"
	"realsum/internal/onescomp"
)

// ChecksumAlg selects the transport checksum algorithm carried in the
// packets the simulator builds — the comparison axis of Table 8.
type ChecksumAlg int

const (
	// AlgTCP is the standard Internet checksum.
	AlgTCP ChecksumAlg = iota
	// AlgFletcher255 is ones-complement (mod 255) Fletcher.
	AlgFletcher255
	// AlgFletcher256 is twos-complement (mod 256) Fletcher.
	AlgFletcher256
)

func (a ChecksumAlg) String() string {
	switch a {
	case AlgTCP:
		return "TCP"
	case AlgFletcher255:
		return "F-255"
	case AlgFletcher256:
		return "F-256"
	}
	return fmt.Sprintf("ChecksumAlg(%d)", int(a))
}

// algsByName maps internal/algo registry names onto the packet builder's
// enum, so registry-driven experiments (Table 8, §5.5) can select the
// builder algorithm from data instead of a switch.
var algsByName = map[string]ChecksumAlg{
	"tcp":  AlgTCP,
	"f255": AlgFletcher255,
	"f256": AlgFletcher256,
}

// AlgByName returns the packet-builder algorithm for an algo-registry
// name, and whether the builder can carry that algorithm end-to-end.
func AlgByName(name string) (ChecksumAlg, bool) {
	a, ok := algsByName[name]
	return a, ok
}

// Placement selects where the checksum field lives — the comparison axis
// of Tables 9 and 10.
type Placement int

const (
	// PlacementHeader stores the checksum in the TCP header field, as
	// TCP does: checksum and covered header share fate in a splice (§5.3).
	PlacementHeader Placement = iota
	// PlacementTrailer leaves the TCP header checksum field zero and
	// appends the checksum after the payload, like AAL5's trailer CRC.
	PlacementTrailer
)

func (p Placement) String() string {
	if p == PlacementTrailer {
		return "trailer"
	}
	return "header"
}

// BuildOptions carries the paper's experimental knobs.
type BuildOptions struct {
	// Alg is the transport checksum algorithm.
	Alg ChecksumAlg
	// Placement is where the checksum field lives.
	Placement Placement
	// NoInvert stores the raw sum instead of its complement in the
	// checksum field (§6.3's conjecture; measured to make no difference
	// once the IP header is filled).  Only meaningful for AlgTCP;
	// Fletcher always performs the sum-to-zero inversion.
	NoInvert bool
	// ZeroIPHeader reproduces the SIGCOMM '95 simulator deficiency that
	// §6.2 corrects: the IP header fields not covered by the TCP
	// pseudo-header (ID, flags, TTL, TOS, IP checksum) are left zero,
	// and the checksum treats the in-place IP header bytes as the
	// pseudo-header (covering the whole packet) instead of building the
	// RFC 793 pseudo-header.  With a zero payload the header cell then
	// sums to exactly zero — the "major source of non-zero cells with a
	// checksum of zero" the paper describes.  The default (false) fills
	// the whole header, computes the IP checksum and uses the standard
	// pseudo-header.
	ZeroIPHeader bool
}

// TrailerLen is the size of the appended checksum in trailer mode.
const TrailerLen = 2

// Flow builds the successive TCP segments of one simulated FTP data
// connection, exactly as §3.2 describes: all header fields filled as if
// transferring over the loopback interface, the sequence number advanced
// by each payload length and the IP ID by one per packet.
type Flow struct {
	Src, Dst         [4]byte
	SrcPort, DstPort uint16
	Window           uint16
	TTL              uint8
	Opts             BuildOptions

	seq uint32
	ack uint32
	id  uint16
}

// NewLoopbackFlow returns a flow between 127.0.0.1:20 (ftp-data) and
// 127.0.0.1:1234, the paper's loopback transfer.
func NewLoopbackFlow(opts BuildOptions) *Flow {
	return &Flow{
		Src:     [4]byte{127, 0, 0, 1},
		Dst:     [4]byte{127, 0, 0, 1},
		SrcPort: 20, DstPort: 1234,
		Window: 8760,
		TTL:    64,
		Opts:   opts,
		seq:    1, ack: 1, id: 1,
	}
}

// PacketLen returns the on-the-wire IP packet length for a payload of n
// bytes under o.
func (o BuildOptions) PacketLen(n int) int {
	total := HeadersLen + n
	if o.Placement == PlacementTrailer {
		total += TrailerLen
	}
	return total
}

// ChecksumOffset returns the byte offset of the 2-byte checksum field
// within a packet of total length pktLen under o.
func (o BuildOptions) ChecksumOffset(pktLen int) int {
	if o.Placement == PlacementTrailer {
		return pktLen - TrailerLen
	}
	return IPv4HeaderLen + 16
}

// NextPacket appends the next data segment carrying payload to dst and
// returns the extended slice, advancing the flow's sequence number and
// IP ID.  The produced bytes are a complete IPv4 packet.
func (f *Flow) NextPacket(dst []byte, payload []byte) []byte {
	total := f.Opts.PacketLen(len(payload))
	base := len(dst)
	for i := 0; i < total; i++ {
		dst = append(dst, 0)
	}
	pkt := dst[base:]

	ip := IPv4Header{
		TotalLength: uint16(total),
		Protocol:    ProtocolTCP,
		Src:         f.Src,
		Dst:         f.Dst,
	}
	if !f.Opts.ZeroIPHeader {
		ip.ID = f.id
		ip.TTL = f.TTL
		ip.Flags = 2 // DF
	}
	tcp := TCPHeader{
		SrcPort: f.SrcPort, DstPort: f.DstPort,
		Seq: f.seq, Ack: f.ack,
		Flags:  FlagACK | FlagPSH,
		Window: f.Window,
	}
	ip.SerializeTo(pkt)
	tcp.SerializeTo(pkt[IPv4HeaderLen:])
	copy(pkt[HeadersLen:], payload)

	f.fillChecksum(pkt)
	if !f.Opts.ZeroIPHeader {
		// IP header checksum last, over the final header bytes.
		pkt[10], pkt[11] = 0, 0
		ck := inet.Checksum(pkt[:IPv4HeaderLen])
		putU16(pkt[10:], ck)
	}

	f.seq += uint32(len(payload))
	f.id++
	return dst
}

// fillChecksum computes and stores the transport checksum of pkt (a
// complete packet with a zeroed checksum field) per f.Opts.
func (f *Flow) fillChecksum(pkt []byte) {
	off := f.Opts.ChecksumOffset(len(pkt))
	seg := pkt[IPv4HeaderLen:]
	switch f.Opts.Alg {
	case AlgTCP:
		var sum uint16
		if f.Opts.ZeroIPHeader {
			// §6.2 artifact: the zeroed in-place IP header serves as
			// the pseudo-header.
			sum = inet.Sum(pkt)
		} else {
			sum = onescomp.Add(PseudoHeaderSum(f.Src, f.Dst, len(seg)), inet.Sum(seg))
		}
		v := onescomp.Neg(sum)
		if f.Opts.NoInvert {
			v = sum
		}
		putU16(pkt[off:], v)
	case AlgFletcher255, AlgFletcher256:
		m := fletcher.Mod255
		if f.Opts.Alg == AlgFletcher256 {
			m = fletcher.Mod256
		}
		x, y := m.CheckBytes(seg, len(pkt)-off-2)
		pkt[off], pkt[off+1] = x, y
	}
}

// VerifyPacket reports whether the candidate packet's transport checksum
// is consistent under opts: it recomputes the checksum with the stored
// field zeroed and compares.  This formulation is exact for every
// combination of algorithm, placement and inversion, because it mirrors
// how the field was filled rather than assuming a sum-to-zero identity.
func VerifyPacket(pkt []byte, opts BuildOptions) bool {
	if len(pkt) < HeadersLen+TrailerLen {
		return false
	}
	off := opts.ChecksumOffset(len(pkt))
	stored := getU16(pkt[off:])
	var ip IPv4Header
	if err := ip.DecodeFromBytes(pkt); err != nil {
		return false
	}
	seg := pkt[IPv4HeaderLen:]
	switch opts.Alg {
	case AlgTCP:
		// Sum with the field zeroed = total sum minus the field's
		// contribution.  A trailer field after an odd-length payload
		// sits at an odd segment offset, where its two bytes straddle a
		// word boundary and contribute byte-swapped.  (The field offset
		// has the same parity whether coverage starts at the IP header
		// or the segment, since the IP header is 20 bytes.)
		contrib := stored
		if (off-IPv4HeaderLen)%2 == 1 {
			contrib = onescomp.Swap(stored)
		}
		var sum uint16
		if opts.ZeroIPHeader {
			sum = inet.Sum(pkt)
		} else {
			sum = onescomp.Add(PseudoHeaderSum(ip.Src, ip.Dst, len(seg)), inet.Sum(seg))
		}
		sum = onescomp.Sub(sum, contrib)
		want := onescomp.Neg(sum)
		if opts.NoInvert {
			want = sum
		}
		return onescomp.Congruent(stored, want)
	case AlgFletcher255, AlgFletcher256:
		m := fletcher.Mod255
		if opts.Alg == AlgFletcher256 {
			m = fletcher.Mod256
		}
		return m.Verify(seg)
	}
	return false
}

// ValidateHeaders runs the complete §3.1 syntactic header battery on a
// candidate packet: IP version/IHL/length/protocol (+ IP checksum when
// the simulation fills IP headers) and the TCP data-offset/flag checks.
func ValidateHeaders(pkt []byte, opts BuildOptions) error {
	if err := ValidateIPv4(pkt, !opts.ZeroIPHeader); err != nil {
		return err
	}
	return ValidateTCP(pkt[IPv4HeaderLen:])
}
