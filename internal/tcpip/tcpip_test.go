package tcpip

import (
	"math/rand/v2"
	"testing"

	"realsum/internal/fletcher"
	"realsum/internal/inet"
)

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4Header{
		TOS: 0x10, TotalLength: 296, ID: 42, Flags: 2, FragOffset: 0,
		TTL: 64, Protocol: ProtocolTCP, Checksum: 0xABCD,
		Src: [4]byte{127, 0, 0, 1}, Dst: [4]byte{10, 1, 2, 3},
	}
	var b [IPv4HeaderLen]byte
	if err := h.SerializeTo(b[:]); err != nil {
		t.Fatal(err)
	}
	var g IPv4Header
	if err := g.DecodeFromBytes(b[:]); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Errorf("round trip: got %+v, want %+v", g, h)
	}
}

func TestIPv4ChecksumSelfConsistent(t *testing.T) {
	h := IPv4Header{
		TotalLength: 115, TTL: 64, Protocol: 17,
		Src: [4]byte{192, 168, 0, 1}, Dst: [4]byte{192, 168, 0, 199},
	}
	h.ComputeChecksum()
	var b [IPv4HeaderLen]byte
	h.SerializeTo(b[:])
	if !inet.Verify(b[:]) {
		t.Errorf("header with computed checksum %#04x does not verify", h.Checksum)
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	var h IPv4Header
	if err := h.DecodeFromBytes(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short buffer: %v", err)
	}
	b := make([]byte, 20)
	b[0] = 6 << 4
	if err := h.DecodeFromBytes(b); err != ErrBadVersion {
		t.Errorf("bad version: %v", err)
	}
	b[0] = 4<<4 | 6
	if err := h.DecodeFromBytes(b); err != ErrBadIHL {
		t.Errorf("bad IHL: %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := TCPHeader{
		SrcPort: 20, DstPort: 1234, Seq: 0xDEADBEEF, Ack: 0xCAFEBABE,
		Flags: FlagACK | FlagPSH, Window: 8760, Checksum: 0x1234, Urgent: 0,
	}
	var b [TCPHeaderLen]byte
	if err := h.SerializeTo(b[:]); err != nil {
		t.Fatal(err)
	}
	var g TCPHeader
	if err := g.DecodeFromBytes(b[:]); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Errorf("round trip: got %+v, want %+v", g, h)
	}
}

func TestTCPChecksumAgainstKnownStack(t *testing.T) {
	// Construct a segment and verify VerifyTCP accepts it and rejects
	// any single-word corruption of the payload.
	src, dst := [4]byte{127, 0, 0, 1}, [4]byte{127, 0, 0, 1}
	seg := make([]byte, TCPHeaderLen+32)
	h := TCPHeader{SrcPort: 20, DstPort: 1234, Seq: 99, Ack: 1, Flags: FlagACK, Window: 1000}
	h.SerializeTo(seg)
	for i := TCPHeaderLen; i < len(seg); i++ {
		seg[i] = byte(i * 7)
	}
	ck := TCPChecksum(src, dst, seg)
	seg[16], seg[17] = byte(ck>>8), byte(ck)
	if !VerifyTCP(src, dst, seg) {
		t.Fatal("valid segment does not verify")
	}
	seg[25] ^= 0x40
	if VerifyTCP(src, dst, seg) {
		t.Fatal("corrupted segment verifies")
	}
}

func TestValidateTCPFlags(t *testing.T) {
	seg := make([]byte, TCPHeaderLen)
	h := TCPHeader{Flags: FlagACK}
	h.SerializeTo(seg)
	if err := ValidateTCP(seg); err != nil {
		t.Errorf("plain ACK rejected: %v", err)
	}
	for _, bad := range []uint8{0, FlagSYN, FlagACK | FlagSYN, FlagACK | FlagFIN, FlagACK | FlagRST, FlagACK | FlagURG} {
		h.Flags = bad
		h.SerializeTo(seg)
		if err := ValidateTCP(seg); err != ErrBadFlags {
			t.Errorf("flags %#02x: got %v, want ErrBadFlags", bad, err)
		}
	}
	h.Flags = FlagACK | FlagPSH
	h.SerializeTo(seg)
	if err := ValidateTCP(seg); err != nil {
		t.Errorf("ACK|PSH rejected: %v", err)
	}
}

func allOpts() []BuildOptions {
	var out []BuildOptions
	for _, alg := range []ChecksumAlg{AlgTCP, AlgFletcher255, AlgFletcher256} {
		for _, pl := range []Placement{PlacementHeader, PlacementTrailer} {
			out = append(out, BuildOptions{Alg: alg, Placement: pl})
		}
	}
	out = append(out,
		BuildOptions{Alg: AlgTCP, NoInvert: true},
		BuildOptions{Alg: AlgTCP, ZeroIPHeader: true},
		BuildOptions{Alg: AlgTCP, Placement: PlacementTrailer, NoInvert: true},
	)
	return out
}

func TestFlowPacketsVerifyUnderEveryOption(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, opts := range allOpts() {
		f := NewLoopbackFlow(opts)
		for trial := 0; trial < 50; trial++ {
			n := 1 + rng.IntN(300) // odd and even payloads, incl. runts
			payload := make([]byte, n)
			for i := range payload {
				payload[i] = byte(rng.Uint32())
			}
			pkt := f.NextPacket(nil, payload)
			if len(pkt) != opts.PacketLen(n) {
				t.Fatalf("%+v: packet length %d, want %d", opts, len(pkt), opts.PacketLen(n))
			}
			if err := ValidateHeaders(pkt, opts); err != nil {
				t.Fatalf("%+v: built packet fails header checks: %v", opts, err)
			}
			if !VerifyPacket(pkt, opts) {
				t.Fatalf("%+v (payload %d): built packet fails checksum verification", opts, n)
			}
			// Flip one payload byte: TCP and Fletcher-256 must always
			// detect; Fletcher-255 may miss a 0x00<->0xFF flip.
			pos := HeadersLen + rng.IntN(n)
			orig := pkt[pos]
			pkt[pos] ^= 0x5A
			if VerifyPacket(pkt, opts) && opts.Alg != AlgFletcher255 {
				t.Fatalf("%+v: single-byte corruption at %d verified", opts, pos)
			}
			pkt[pos] = orig
		}
	}
}

func TestFlowSequencesAdvanceLikeFTP(t *testing.T) {
	f := NewLoopbackFlow(BuildOptions{})
	p1 := f.NextPacket(nil, make([]byte, 256))
	p2 := f.NextPacket(nil, make([]byte, 256))
	var ip1, ip2 IPv4Header
	var t1, t2 TCPHeader
	ip1.DecodeFromBytes(p1)
	ip2.DecodeFromBytes(p2)
	t1.DecodeFromBytes(p1[IPv4HeaderLen:])
	t2.DecodeFromBytes(p2[IPv4HeaderLen:])
	if ip2.ID != ip1.ID+1 {
		t.Errorf("IP ID advanced by %d, want 1", ip2.ID-ip1.ID)
	}
	if t2.Seq != t1.Seq+256 {
		t.Errorf("TCP seq advanced by %d, want 256", t2.Seq-t1.Seq)
	}
	if !inet.Verify(p1[:IPv4HeaderLen]) || !inet.Verify(p2[:IPv4HeaderLen]) {
		t.Error("IP header checksums not filled")
	}
}

func TestZeroIPHeaderAblation(t *testing.T) {
	f := NewLoopbackFlow(BuildOptions{ZeroIPHeader: true})
	pkt := f.NextPacket(nil, make([]byte, 64))
	var ip IPv4Header
	ip.DecodeFromBytes(pkt)
	if ip.ID != 0 || ip.TTL != 0 || ip.Checksum != 0 {
		t.Errorf("ZeroIPHeader should leave ID/TTL/checksum zero, got %+v", ip)
	}
	// Header checks must still pass (checksum check is skipped).
	if err := ValidateHeaders(pkt, BuildOptions{ZeroIPHeader: true}); err != nil {
		t.Errorf("zeroed-header packet fails validation: %v", err)
	}
}

func TestTrailerPlacementLayout(t *testing.T) {
	opts := BuildOptions{Placement: PlacementTrailer}
	f := NewLoopbackFlow(opts)
	payload := []byte("hello, splice world")
	pkt := f.NextPacket(nil, payload)
	// Header checksum field must be zero; trailer field non-trivial.
	if getU16(pkt[IPv4HeaderLen+16:]) != 0 {
		t.Error("trailer mode must leave the header checksum field zero")
	}
	off := opts.ChecksumOffset(len(pkt))
	if off != len(pkt)-2 {
		t.Errorf("trailer checksum offset = %d, want %d", off, len(pkt)-2)
	}
	if string(pkt[HeadersLen:HeadersLen+len(payload)]) != string(payload) {
		t.Error("payload not intact before trailer")
	}
}

func TestFletcherPacketSumsToZero(t *testing.T) {
	for _, alg := range []ChecksumAlg{AlgFletcher255, AlgFletcher256} {
		m := fletcher.Mod255
		if alg == AlgFletcher256 {
			m = fletcher.Mod256
		}
		f := NewLoopbackFlow(BuildOptions{Alg: alg})
		pkt := f.NextPacket(nil, []byte("some payload bytes here"))
		if !m.Verify(pkt[IPv4HeaderLen:]) {
			t.Errorf("%v: segment does not Fletcher-sum to zero", alg)
		}
	}
}

func TestNextPacketAppends(t *testing.T) {
	f := NewLoopbackFlow(BuildOptions{})
	buf := f.NextPacket(nil, make([]byte, 10))
	n1 := len(buf)
	buf = f.NextPacket(buf, make([]byte, 20))
	if len(buf) != n1+f.Opts.PacketLen(20) {
		t.Errorf("append: len %d", len(buf))
	}
	if err := ValidateHeaders(buf[:n1], f.Opts); err != nil {
		t.Errorf("first packet damaged by append: %v", err)
	}
	if err := ValidateHeaders(buf[n1:], f.Opts); err != nil {
		t.Errorf("second packet invalid: %v", err)
	}
}

func TestStringers(t *testing.T) {
	if AlgTCP.String() != "TCP" || AlgFletcher255.String() != "F-255" || AlgFletcher256.String() != "F-256" {
		t.Error("ChecksumAlg strings")
	}
	if PlacementHeader.String() != "header" || PlacementTrailer.String() != "trailer" {
		t.Error("Placement strings")
	}
	h := &IPv4Header{TotalLength: 40, Src: [4]byte{1, 2, 3, 4}, Dst: [4]byte{5, 6, 7, 8}, Protocol: 6}
	if h.String() == "" {
		t.Error("IPv4Header.String empty")
	}
	th := &TCPHeader{SrcPort: 1, DstPort: 2}
	if th.String() == "" {
		t.Error("TCPHeader.String empty")
	}
}
