package tcpip

import (
	"errors"

	"realsum/internal/fletcher"
)

// TCP option kinds used here (RFC 793 + RFC 1146, the paper's
// reference [13]: "TCP Alternate Checksum Options").
const (
	OptEOL         = 0
	OptNOP         = 1
	OptMSS         = 2
	OptAltCkReq    = 14 // TCP Alternate Checksum Request
	OptAltCkData   = 15 // TCP Alternate Checksum Data
	optFixedHeader = 20
)

// Alternate checksum algorithm numbers from RFC 1146.
const (
	AltSumTCP        = 0 // standard TCP checksum
	AltSumFletcher8  = 1 // 8-bit Fletcher (16-bit result, fits the field)
	AltSumFletcher16 = 2 // 16-bit Fletcher (32-bit result, field + option)
)

// Option is one parsed TCP option.
type Option struct {
	Kind byte
	Data []byte // option data, excluding kind and length octets
}

// Errors from the option layer.
var (
	ErrBadOption    = errors.New("tcpip: malformed TCP option")
	ErrNoAltSum     = errors.New("tcpip: segment carries no alternate checksum")
	ErrUnknownAlt   = errors.New("tcpip: unknown alternate checksum number")
	ErrOddAltLayout = errors.New("tcpip: alternate checksum option at unusable offset")
)

// ParseOptions walks the options area of a TCP header (the bytes
// between the fixed header and the data offset).
func ParseOptions(area []byte) ([]Option, error) {
	var out []Option
	for i := 0; i < len(area); {
		kind := area[i]
		switch kind {
		case OptEOL:
			return out, nil
		case OptNOP:
			out = append(out, Option{Kind: OptNOP})
			i++
		default:
			if i+1 >= len(area) {
				return nil, ErrBadOption
			}
			l := int(area[i+1])
			if l < 2 || i+l > len(area) {
				return nil, ErrBadOption
			}
			out = append(out, Option{Kind: kind, Data: append([]byte(nil), area[i+2:i+l]...)})
			i += l
		}
	}
	return out, nil
}

// SerializeOptions encodes options and pads the area to a multiple of
// four bytes with EOL.
func SerializeOptions(opts []Option) []byte {
	var out []byte
	for _, o := range opts {
		switch o.Kind {
		case OptEOL:
			out = append(out, 0)
		case OptNOP:
			out = append(out, 1)
		default:
			out = append(out, o.Kind, byte(2+len(o.Data)))
			out = append(out, o.Data...)
		}
	}
	for len(out)%4 != 0 {
		out = append(out, OptEOL)
	}
	return out
}

// altSegmentLayout is the fixed option layout BuildAltSegment emits for
// Fletcher-16: two NOPs, then the 4-byte Alternate Checksum Data option
// whose 2-byte payload lands at byte offset 24 — exactly 4 words before
// the checksum field counted from the end, and 4 is invertible mod
// 65535, which makes the check-word equations solvable (the same
// adjacency condition Theorem 7's proof needs, one layer up).
var altSegmentLayout = []Option{{Kind: OptNOP}, {Kind: OptNOP}, {Kind: OptAltCkData, Data: []byte{0, 0}}}

// BuildAltSegment constructs a TCP segment (header + options + payload)
// whose integrity check is the RFC 1146 alternate checksum alg:
//
//	AltSumTCP:        the standard checksum, no options.
//	AltSumFletcher8:  byte-Fletcher mod 255; its two check bytes occupy
//	                  the checksum field (sum-to-zero).
//	AltSumFletcher16: word-Fletcher mod 65535; check words occupy the
//	                  checksum field and an Alternate Checksum Data
//	                  option.
//
// The segment checksums cover the pseudo-header per RFC 1146 for the
// standard sum; the Fletcher variants cover the segment bytes
// (Fletcher has no tradition of pseudo-header coverage, matching how
// the paper's simulations treat it).
func BuildAltSegment(src, dst [4]byte, hdr TCPHeader, alg int, payload []byte) ([]byte, error) {
	var optArea []byte
	switch alg {
	case AltSumTCP, AltSumFletcher8:
	case AltSumFletcher16:
		optArea = SerializeOptions(altSegmentLayout)
	default:
		return nil, ErrUnknownAlt
	}
	seg := make([]byte, optFixedHeader+len(optArea)+len(payload))
	hdr.Checksum = 0
	hdr.SerializeTo(seg)
	seg[12] = byte(optFixedHeader+len(optArea)) / 4 << 4
	copy(seg[optFixedHeader:], optArea)
	copy(seg[optFixedHeader+len(optArea):], payload)

	switch alg {
	case AltSumTCP:
		ck := TCPChecksum(src, dst, seg)
		putU16(seg[16:], ck)
	case AltSumFletcher8:
		x, y := fletcher.Mod255.CheckBytes(seg, len(seg)-18)
		seg[16], seg[17] = x, y
	case AltSumFletcher16:
		x, y := fletcher16CheckWords(seg, 16, 24)
		putU16(seg[16:], x)
		putU16(seg[24:], y)
	}
	return seg, nil
}

// VerifyAltSegment verifies a segment built by BuildAltSegment,
// returning the algorithm it recognized.
func VerifyAltSegment(src, dst [4]byte, seg []byte) (alg int, ok bool, err error) {
	if len(seg) < optFixedHeader {
		return 0, false, ErrTruncated
	}
	offset := int(seg[12]>>4) * 4
	if offset < optFixedHeader || offset > len(seg) {
		return 0, false, ErrBadOption
	}
	opts, err := ParseOptions(seg[optFixedHeader:offset])
	if err != nil {
		return 0, false, err
	}
	hasData := false
	for _, o := range opts {
		if o.Kind == OptAltCkData {
			hasData = true
		}
	}
	if hasData {
		s := fletcher.Sum32(seg)
		return AltSumFletcher16, s.A%65535 == 0 && s.B%65535 == 0, nil
	}
	// Without the data option the segment could carry the standard sum
	// or Fletcher-8; try standard first, then Fletcher-8.
	if VerifyTCP(src, dst, seg) {
		return AltSumTCP, true, nil
	}
	if fletcher.Mod255.Verify(seg) {
		return AltSumFletcher8, true, nil
	}
	return AltSumTCP, false, nil
}

// fletcher16CheckWords solves the mod-65535 sum-to-zero equations for
// two 16-bit check words at even byte offsets xOff and yOff of seg
// (which must contain zeros there).  With weights counted from the end
// in 16-bit blocks and Δ = (yOff−xOff)/2, the system
//
//	A₀ + x + y       ≡ 0
//	B₀ + wₓ·x + w_y·y ≡ 0        (wₓ = w_y + Δ)
//
// reduces to Δ·x ≡ w_y·A₀ − B₀, solvable whenever gcd(Δ, 65535) = 1.
func fletcher16CheckWords(seg []byte, xOff, yOff int) (x, y uint16) {
	const mod = 65535
	s := fletcher.Sum32(seg)
	nWords := uint64((len(seg) + 1) / 2)
	wy := (nWords - uint64(yOff)/2) % mod
	delta := uint64(yOff-xOff) / 2
	inv := modInverse(delta%mod, mod)
	a0, b0 := uint64(s.A), uint64(s.B)
	rhs := (wy*a0%mod + mod - b0%mod) % mod
	xv := rhs * inv % mod
	yv := (2*mod - a0%mod - xv) % mod
	return uint16(xv), uint16(yv)
}

// modInverse returns a^-1 mod m for gcd(a, m) = 1, by extended Euclid.
func modInverse(a, m uint64) uint64 {
	t, newT := int64(0), int64(1)
	r, newR := int64(m), int64(a%m)
	for newR != 0 {
		q := r / newR
		t, newT = newT, t-q*newT
		r, newR = newR, r-q*newR
	}
	if r != 1 {
		panic("tcpip: check-word offset not invertible")
	}
	if t < 0 {
		t += int64(m)
	}
	return uint64(t)
}
