package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

func randomPMF(rng *rand.Rand, m int, support int) PMF {
	p := NewPMF(m)
	var total float64
	for i := 0; i < support; i++ {
		v := rng.IntN(m)
		w := rng.Float64() + 0.01
		p.P[v] += w
		total += w
	}
	for i := range p.P {
		p.P[i] /= total
	}
	return p
}

func TestConvolveAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.IntN(40)
		a := randomPMF(rng, m, 1+rng.IntN(m))
		b := randomPMF(rng, m, 1+rng.IntN(m))
		got := a.Convolve(b)
		want := NewPMF(m)
		for x := 0; x < m; x++ {
			for y := 0; y < m; y++ {
				want.P[(x+y)%m] += a.P[x] * b.P[y]
			}
		}
		for v := 0; v < m; v++ {
			if math.Abs(got.P[v]-want.P[v]) > 1e-12 {
				t.Fatalf("m=%d v=%d: %v != %v", m, v, got.P[v], want.P[v])
			}
		}
	}
}

func TestConvolvePreservesMass(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	a := randomPMF(rng, 255, 50)
	b := randomPMF(rng, 255, 50)
	c := a.Convolve(b)
	if m := c.TotalMass(); math.Abs(m-1) > 1e-9 {
		t.Errorf("mass after convolve = %v", m)
	}
}

func TestConvolvePowMatchesRepeated(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	p := randomPMF(rng, 100, 10)
	byPow := p.ConvolvePow(5)
	byRep := p
	for i := 1; i < 5; i++ {
		byRep = byRep.Convolve(p)
	}
	for v := 0; v < 100; v++ {
		if math.Abs(byPow.P[v]-byRep.P[v]) > 1e-10 {
			t.Fatalf("v=%d: pow %v != repeated %v", v, byPow.P[v], byRep.P[v])
		}
	}
	one := p.ConvolvePow(1)
	for v := range p.P {
		if math.Abs(one.P[v]-p.P[v]) > 1e-12 {
			t.Fatal("ConvolvePow(1) != identity")
		}
	}
}

func TestPointAndUniform(t *testing.T) {
	u := UniformPMF(10)
	if math.Abs(u.PMax()-0.1) > 1e-12 || math.Abs(u.PMin()-0.1) > 1e-12 {
		t.Error("uniform PMF not flat")
	}
	pt := PointPMF(10, 13) // 13 mod 10 = 3
	if pt.P[3] != 1 {
		t.Error("PointPMF wraps wrong")
	}
	neg := PointPMF(10, -1)
	if neg.P[9] != 1 {
		t.Error("PointPMF negative wraps wrong")
	}
	// Convolving with a point mass shifts.
	got := pt.Convolve(PointPMF(10, 4))
	if got.P[7] != 1 {
		t.Error("point+point shift wrong")
	}
}

func TestFromHistogramRoundTrip(t *testing.T) {
	h := NewHistogram()
	h.AddN(100, 3)
	h.AddN(0xFFFF, 1) // folds to 0
	p := FromHistogram(h)
	if p.M != 65535 {
		t.Fatalf("M = %d", p.M)
	}
	if math.Abs(p.P[100]-0.75) > 1e-12 || math.Abs(p.P[0]-0.25) > 1e-12 {
		t.Errorf("P[100]=%v P[0]=%v", p.P[100], p.P[0])
	}
	if m := p.TotalMass(); math.Abs(m-1) > 1e-12 {
		t.Errorf("mass %v", m)
	}
}

func TestSelfMatchAndOffsetMatch(t *testing.T) {
	p := NewPMF(4)
	p.P[0], p.P[1] = 0.75, 0.25
	if got := p.SelfMatch(); math.Abs(got-(0.5625+0.0625)) > 1e-12 {
		t.Errorf("SelfMatch = %v", got)
	}
	// Offset 1: P(X-Y=1) = P(1)P(0) = 0.1875
	if got := p.OffsetMatch(1); math.Abs(got-0.1875) > 1e-12 {
		t.Errorf("OffsetMatch(1) = %v", got)
	}
	if got := p.OffsetMatch(0); math.Abs(got-p.SelfMatch()) > 1e-12 {
		t.Error("OffsetMatch(0) != SelfMatch")
	}
	if got := p.OffsetMatch(-3); math.Abs(got-p.OffsetMatch(1)) > 1e-12 {
		t.Error("OffsetMatch should wrap negative offsets")
	}
}

// --- Appendix lemmas as executable properties -----------------------

// TestLemma1PMaxNonIncreasing: PMax(A+B) ≤ min(PMax(A), PMax(B)).
func TestLemma1PMaxNonIncreasing(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 1))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.IntN(64)
		a := randomPMF(rng, m, 1+rng.IntN(m))
		b := randomPMF(rng, m, 1+rng.IntN(m))
		c := a.Convolve(b)
		limit := math.Min(a.PMax(), b.PMax())
		if c.PMax() > limit+1e-12 {
			t.Fatalf("PMax grew: %v > min(%v, %v)", c.PMax(), a.PMax(), b.PMax())
		}
	}
}

// TestLemma2PMinNonDecreasing: when both distributions have full
// support, PMin(A+B) ≥ max(PMin(A), PMin(B)).
func TestLemma2PMinNonDecreasing(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 2))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.IntN(64)
		a, b := NewPMF(m), NewPMF(m)
		var ta, tb float64
		for v := 0; v < m; v++ {
			a.P[v] = rng.Float64() + 0.01 // full support
			b.P[v] = rng.Float64() + 0.01
			ta += a.P[v]
			tb += b.P[v]
		}
		for v := 0; v < m; v++ {
			a.P[v] /= ta
			b.P[v] /= tb
		}
		c := a.Convolve(b)
		limit := math.Max(a.PMin(), b.PMin())
		if c.PMin() < limit-1e-12 {
			t.Fatalf("PMin shrank: %v < max(%v, %v)", c.PMin(), a.PMin(), b.PMin())
		}
	}
}

// TestCorollary3MoreUniformWithK: as k grows, the k-fold sum's PMax is
// non-increasing and PMin non-decreasing.
func TestCorollary3MoreUniformWithK(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 3))
	p := randomPMF(rng, 255, 40)
	prev := p
	for k := 2; k <= 16; k++ {
		next := prev.Convolve(p)
		if next.PMax() > prev.PMax()+1e-12 {
			t.Fatalf("k=%d: PMax increased %v -> %v", k, prev.PMax(), next.PMax())
		}
		if next.PMin() < prev.PMin()-1e-12 {
			t.Fatalf("k=%d: PMin decreased %v -> %v", k, prev.PMin(), next.PMin())
		}
		prev = next
	}
}

// TestTheorem4CentralLimit: the k-fold sum tends to uniform — for large
// k, PMax approaches 1/M.
func TestTheorem4CentralLimit(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 4))
	// A decidedly non-uniform start with support generating ℤ/M (mass
	// at 1 guarantees full mixing).
	m := 97
	p := NewPMF(m)
	p.P[0], p.P[1], p.P[7] = 0.6, 0.3, 0.1
	_ = rng
	k256 := p.ConvolvePow(256)
	if k256.PMax() > 1.5/float64(m) {
		t.Errorf("after 256 additions PMax = %v, want near %v", k256.PMax(), 1.0/float64(m))
	}
	k4096 := p.ConvolvePow(4096)
	if math.Abs(k4096.PMax()-1/float64(m)) > 0.05/float64(m) {
		t.Errorf("after 4096 additions PMax = %v, want ≈ %v", k4096.PMax(), 1.0/float64(m))
	}
}

// TestLemma5UniformTermDominates: if even one term of a sum is uniform,
// the sum is uniform.
func TestLemma5UniformTermDominates(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 5))
	skewed := randomPMF(rng, 64, 5)
	sum := skewed.Convolve(UniformPMF(64))
	for v, pv := range sum.P {
		if math.Abs(pv-1.0/64) > 1e-12 {
			t.Fatalf("sum not uniform at %d: %v", v, pv)
		}
	}
}

// TestLemma9EqualBeatsOffset: P(X = Y) ≥ P(X − Y ≡ c) for every c —
// the inequality behind both Fletcher's advantage (§5.2) and trailer
// checksums (§5.3).
func TestLemma9EqualBeatsOffset(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 6))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.IntN(128)
		p := randomPMF(rng, m, 1+rng.IntN(m))
		eq := p.SelfMatch()
		for c := 1; c < m; c++ {
			if off := p.OffsetMatch(c); off > eq+1e-12 {
				t.Fatalf("m=%d c=%d: offset match %v > self match %v", m, c, off, eq)
			}
		}
	}
}
