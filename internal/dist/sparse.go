package dist

// Sparse is a census over an arbitrary (up to 64-bit) checksum space,
// for algorithms whose value space is too large for a dense Histogram —
// the Adler-32 and CRC-32 cell distributions of the extension
// experiments.
type Sparse struct {
	counts map[uint64]uint64
	total  uint64
}

// NewSparse returns an empty census.
func NewSparse() *Sparse {
	return &Sparse{counts: make(map[uint64]uint64)}
}

// Add records one observation.
func (s *Sparse) Add(v uint64) {
	s.counts[v]++
	s.total++
}

// Total returns the number of observations.
func (s *Sparse) Total() uint64 { return s.total }

// Merge adds every count of o into s, for combining per-worker shards.
func (s *Sparse) Merge(o *Sparse) {
	for v, c := range o.counts {
		s.counts[v] += c
	}
	s.total += o.total
}

// Distinct returns the number of distinct values observed.
func (s *Sparse) Distinct() int { return len(s.counts) }

// PMax returns the most common value and its probability.
func (s *Sparse) PMax() (uint64, float64) {
	if s.total == 0 {
		return 0, 0
	}
	var bestV, bestC uint64
	first := true
	for v, c := range s.counts {
		if first || c > bestC || (c == bestC && v < bestV) {
			bestV, bestC = v, c
			first = false
		}
	}
	return bestV, float64(bestC) / float64(s.total)
}

// CollisionProbability estimates P(two independent draws equal) with
// the unbiased pair estimator, like Histogram.CollisionProbability.
func (s *Sparse) CollisionProbability() float64 {
	if s.total < 2 {
		return 0
	}
	var sum float64
	for _, c := range s.counts {
		if c > 1 {
			sum += float64(c) * float64(c-1)
		}
	}
	return sum / (float64(s.total) * float64(s.total-1))
}
