// Package dist implements the checksum-value distribution analysis at
// the heart of the paper: histograms over the 16-bit checksum space,
// sorted PDF/CDF series (Figures 2 and 3), the convolution-based
// prediction of multi-cell distributions (§4.4), congruence-probability
// estimates (Tables 4–6), and executable forms of the appendix lemmas.
package dist

import (
	"sort"

	"realsum/internal/onescomp"
)

// Histogram counts occurrences of 16-bit checksum values.  Values are
// stored normalized: the ones-complement negative zero 0xFFFF is folded
// onto 0x0000, so congruent sums share a bucket.
type Histogram struct {
	counts []uint64 // len 65536; bucket 0xFFFF stays zero
	total  uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, 65536)}
}

// Add records one observation of v.
func (h *Histogram) Add(v uint16) { h.AddN(v, 1) }

// AddN records n observations of v.
func (h *Histogram) AddN(v uint16, n uint64) {
	h.counts[onescomp.Normalize(v)] += n
	h.total += n
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Merge adds every count of o into h.  Counts are integers, so merging
// any shard partition of the same observations yields identical state
// regardless of partition or order.
func (h *Histogram) Merge(o *Histogram) {
	for v, c := range o.counts {
		if c > 0 {
			h.counts[v] += c
		}
	}
	h.total += o.total
}

// Count returns the number of observations of v (and its congruent
// representation).
func (h *Histogram) Count(v uint16) uint64 {
	return h.counts[onescomp.Normalize(v)]
}

// P returns the empirical probability of v.
func (h *Histogram) P(v uint16) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}

// ValueCount pairs a checksum value with its observation count.
type ValueCount struct {
	Value uint16
	Count uint64
}

// TopK returns the k most frequent values, most frequent first.  Ties
// break toward smaller values for determinism.
func (h *Histogram) TopK(k int) []ValueCount {
	all := make([]ValueCount, 0, 1024)
	for v, c := range h.counts {
		if c > 0 {
			all = append(all, ValueCount{uint16(v), c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Value < all[j].Value
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// PMax returns the most frequent value and its probability (Lemma 1's
// PMax).  An empty histogram returns (0, 0).
func (h *Histogram) PMax() (uint16, float64) {
	if h.total == 0 {
		return 0, 0
	}
	top := h.TopK(1)
	return top[0].Value, float64(top[0].Count) / float64(h.total)
}

// SortedPDF returns the empirical probabilities of all observed values
// in descending order — the x-axis ordering of Figures 2 and 3.
func (h *Histogram) SortedPDF() []float64 {
	var out []float64
	for _, c := range h.counts {
		if c > 0 {
			out = append(out, float64(c)/float64(h.total))
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// CDF returns the cumulative form of SortedPDF truncated to the first k
// points — the Figure 2(c) series.
func (h *Histogram) CDF(k int) []float64 {
	pdf := h.SortedPDF()
	if k > len(pdf) {
		k = len(pdf)
	}
	out := make([]float64, k)
	acc := 0.0
	for i := 0; i < k; i++ {
		acc += pdf[i]
		out[i] = acc
	}
	return out
}

// TopShare returns the total probability mass carried by the k most
// common values — the "top 0.1% of values occurred 2.5% of the time"
// measurements of §4.3.
func (h *Histogram) TopShare(k int) float64 {
	cdf := h.CDF(k)
	if len(cdf) == 0 {
		return 0
	}
	return cdf[len(cdf)-1]
}

// CollisionProbability estimates the probability that two independent
// draws from the underlying distribution are congruent, using the
// unbiased pair estimator Σc(c−1)/(N(N−1)) — the naive Σp² is biased
// upward by ≈1/N, which matters at the 2^-16 scales this study works
// at.  Under a uniform 16-bit distribution the true value is ≈2^-16;
// the paper's measured single-cell values run 7–10× higher (§5.2
// reports 0.011% for the TCP sum over smeg:/u1 cells).
func (h *Histogram) CollisionProbability() float64 {
	if h.total < 2 {
		return 0
	}
	var s float64
	for _, c := range h.counts {
		if c > 1 {
			s += float64(c) * float64(c-1)
		}
	}
	return s / (float64(h.total) * float64(h.total-1))
}

// MatchProbability returns Σ pᵢqᵢ — the probability that independent
// draws from h and g are congruent.
func (h *Histogram) MatchProbability(g *Histogram) float64 {
	if h.total == 0 || g.total == 0 {
		return 0
	}
	var s float64
	ht, gt := float64(h.total), float64(g.total)
	for v, c := range h.counts {
		if c > 0 && g.counts[v] > 0 {
			s += float64(c) / ht * float64(g.counts[v]) / gt
		}
	}
	return s
}

// OffsetMatchProbability returns P(X − Y ≡ c) for X∼h, Y∼g under
// ones-complement subtraction — the quantity Lemma 9 compares against
// the exact match: for any fixed offset c it can never exceed
// MatchProbability when h = g.
func (h *Histogram) OffsetMatchProbability(g *Histogram, c uint16) float64 {
	if h.total == 0 || g.total == 0 {
		return 0
	}
	var s float64
	ht, gt := float64(h.total), float64(g.total)
	for v, cnt := range h.counts {
		if cnt == 0 {
			continue
		}
		// want y with v - y ≡ c, i.e. y ≡ v - c
		y := onescomp.Normalize(onescomp.Sub(uint16(v), c))
		if g.counts[y] > 0 {
			s += float64(cnt) / ht * float64(g.counts[y]) / gt
		}
	}
	return s
}

// Distinct returns the number of distinct values observed.
func (h *Histogram) Distinct() int {
	n := 0
	for _, c := range h.counts {
		if c > 0 {
			n++
		}
	}
	return n
}
