package dist

import (
	"math/rand/v2"
	"testing"
)

func TestSampleLocalAnyCellsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	data := randData(rng, 48*40)
	a := SampleLocalAnyCells(data, 2, 512, 4, 7)
	b := SampleLocalAnyCells(data, 2, 512, 4, 7)
	if a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
	if a.Pairs == 0 {
		t.Error("no pairs sampled")
	}
}

func TestSampleLocalAnyCellsIdenticalCells(t *testing.T) {
	// A file of identical cells: every sampled pair congruent and
	// identical.
	cell := make([]byte, 48)
	for i := range cell {
		cell[i] = byte(i * 5)
	}
	var data []byte
	for i := 0; i < 30; i++ {
		data = append(data, cell...)
	}
	st := SampleLocalAnyCells(data, 2, 512, 4, 3)
	if st.Pairs == 0 || st.Congruent != st.Pairs || st.Identical != st.Pairs {
		t.Errorf("%+v", st)
	}
}

func TestSampleLocalAnyCellsUniformBaseline(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	data := randData(rng, 48*4000)
	st := SampleLocalAnyCells(data, 1, 512, 8, 9)
	// Uniform data: congruence ≈ 1/65535; with ~32k pairs expect ≈0.5
	// hits — allow up to a handful.
	if st.Congruent > 10 {
		t.Errorf("uniform data congruent %d of %d", st.Congruent, st.Pairs)
	}
}

func TestSampleLocalAnyCellsTooSmall(t *testing.T) {
	if st := SampleLocalAnyCells(make([]byte, 48*3), 2, 512, 4, 1); st.Pairs != 0 {
		t.Errorf("undersized input sampled %d pairs", st.Pairs)
	}
	if st := SampleLocalAnyCells(make([]byte, 48*100), 4, 96, 4, 1); st.Pairs != 0 {
		t.Errorf("window smaller than 2k cells sampled %d pairs", st.Pairs)
	}
}

func TestSampleLocalAnyCellsSeesMoreThanContiguous(t *testing.T) {
	// On sectioned data the non-contiguous sampler reaches many more
	// pairs per byte than the contiguous one, which is why the paper
	// used it.
	rng := rand.New(rand.NewPCG(3, 3))
	var data []byte
	proto := randData(rng, 48)
	for i := 0; i < 50; i++ {
		if i%3 == 0 {
			data = append(data, randData(rng, 48)...)
		} else {
			data = append(data, proto...)
		}
	}
	nc := SampleLocalAnyCells(data, 2, 512, 16, 4)
	if nc.Congruent == 0 {
		t.Error("repetitive data should show congruent non-contiguous blocks")
	}
	if nc.Identical == 0 {
		t.Error("repetitive data should show identical non-contiguous blocks")
	}
	if nc.Congruent < nc.Identical {
		t.Error("identical pairs are congruent by definition")
	}
}
