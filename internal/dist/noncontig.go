package dist

import (
	"math/rand/v2"

	"realsum/internal/inet"
	"realsum/internal/onescomp"
)

// AnyCellsSampler compares pairs of k-cell blocks assembled from
// *non-contiguous* cells within a locality window, which is how the
// paper actually gathered its local samples ("In order to increase the
// sample size for the local comparisons, we did not restrict ourselves
// to contiguous blocks", §4.6).  For every window position it draws
// PerWindow random pairs of disjoint k-cell subsets of the window's
// cells and tallies congruence and byte-identity.
//
// Files stream through a Windower whose cell ring retains exactly one
// locality window, so no per-file []uint16 is materialized.  Each file
// re-seeds its RNG from the caller-supplied seed, so results depend
// only on (file contents, seed) — never on which shard or worker
// processed the file.
type AnyCellsSampler struct {
	K         int
	Window    int
	PerWindow int
	stats     LocalStats
	win       *Windower
	idx       []int
}

// NewAnyCellsSampler returns a sampler drawing perWindow pairs per
// window position of window bytes.
func NewAnyCellsSampler(k, window, perWindow int) *AnyCellsSampler {
	cellsPerWindow := window / CellSize
	return &AnyCellsSampler{
		K:         k,
		Window:    window,
		PerWindow: perWindow,
		win:       NewWindower(1, cellsPerWindow, 0),
		idx:       make([]int, 0, 2*k),
	}
}

// File accumulates one file's draws.  The RNG is seeded per file; the
// draw sequence reproduces the original single-pass implementation
// exactly, so histogram-level results are byte-stable.
func (s *AnyCellsSampler) File(data []byte, seed uint64) {
	k := s.K
	cellsPerWindow := s.Window / CellSize
	nCells := len(data) / CellSize
	if cellsPerWindow < 2*k || nCells < 2*k {
		return
	}
	rng := rand.New(rand.NewPCG(seed, uint64(k)<<32|uint64(s.Window)))
	w := s.win
	w.Reset()
	n := cellsPerWindow
	for c := 0; c < nCells; c++ {
		w.PushCell(inet.Sum(data[c*CellSize : (c+1)*CellSize]))
		start := c - cellsPerWindow + 1
		if start < 0 {
			continue
		}
		for r := 0; r < s.PerWindow; r++ {
			// Draw 2k distinct cells of the window; the first k (in
			// draw order) form block A, the rest block B.
			idx := s.idx[:0]
			for len(idx) < 2*k {
				cell := start + rng.IntN(n)
				dup := false
				for _, e := range idx {
					if e == cell {
						dup = true
						break
					}
				}
				if !dup {
					idx = append(idx, cell)
				}
			}
			var a, b uint16
			for i := 0; i < k; i++ {
				a = onescomp.Add(a, w.CellSum(idx[i]))
				b = onescomp.Add(b, w.CellSum(idx[k+i]))
			}
			s.stats.Pairs++
			if !onescomp.Congruent(a, b) {
				continue
			}
			s.stats.Congruent++
			if blocksIdentical(data, idx[:k], idx[k:]) {
				s.stats.Identical++
			}
		}
	}
}

// Stats returns the accumulated counts.
func (s *AnyCellsSampler) Stats() LocalStats { return s.stats }

// MergeStats folds another sampler shard's counts into s.
func (s *AnyCellsSampler) MergeStats(o *AnyCellsSampler) { s.stats.Add(o.stats) }

// SampleLocalAnyCells runs an AnyCellsSampler over one file — the
// one-shot form the appendix tests and small tools use.  Deterministic
// for a given seed.
func SampleLocalAnyCells(data []byte, k, window, perWindow int, seed uint64) LocalStats {
	s := NewAnyCellsSampler(k, window, perWindow)
	s.File(data, seed)
	return s.Stats()
}

// blocksIdentical reports whether the concatenation of cells ai equals
// the concatenation of cells bi, cell-wise.
func blocksIdentical(data []byte, ai, bi []int) bool {
	for i := range ai {
		a := data[ai[i]*CellSize : (ai[i]+1)*CellSize]
		b := data[bi[i]*CellSize : (bi[i]+1)*CellSize]
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}
