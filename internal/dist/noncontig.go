package dist

import (
	"math/rand/v2"

	"realsum/internal/onescomp"
)

// SampleLocalAnyCells compares pairs of k-cell blocks assembled from
// *non-contiguous* cells within a locality window, which is how the
// paper actually gathered its local samples ("In order to increase the
// sample size for the local comparisons, we did not restrict ourselves
// to contiguous blocks", §4.6).  For every window position it draws
// perWindow random pairs of disjoint k-cell subsets of the window's
// cells and tallies congruence and byte-identity.  Deterministic for a
// given seed.
func SampleLocalAnyCells(data []byte, k, window, perWindow int, seed uint64) LocalStats {
	sums := CellSums(data)
	var st LocalStats
	cellsPerWindow := window / CellSize
	if cellsPerWindow < 2*k || len(sums) < 2*k {
		return st
	}
	rng := rand.New(rand.NewPCG(seed, uint64(k)<<32|uint64(window)))
	idx := make([]int, 0, 2*k)
	for start := 0; start+cellsPerWindow <= len(sums); start++ {
		n := cellsPerWindow
		for r := 0; r < perWindow; r++ {
			// Draw 2k distinct cells of the window; the first k (in
			// draw order) form block A, the rest block B.
			idx = idx[:0]
			for len(idx) < 2*k {
				c := start + rng.IntN(n)
				dup := false
				for _, e := range idx {
					if e == c {
						dup = true
						break
					}
				}
				if !dup {
					idx = append(idx, c)
				}
			}
			var a, b uint16
			for i := 0; i < k; i++ {
				a = onescomp.Add(a, sums[idx[i]])
				b = onescomp.Add(b, sums[idx[k+i]])
			}
			st.Pairs++
			if !onescomp.Congruent(a, b) {
				continue
			}
			st.Congruent++
			if blocksIdentical(data, idx[:k], idx[k:]) {
				st.Identical++
			}
		}
	}
	return st
}

// blocksIdentical reports whether the concatenation of cells ai equals
// the concatenation of cells bi, cell-wise.
func blocksIdentical(data []byte, ai, bi []int) bool {
	for i := range ai {
		a := data[ai[i]*CellSize : (ai[i]+1)*CellSize]
		b := data[bi[i]*CellSize : (bi[i]+1)*CellSize]
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}
