package dist

import (
	"math/rand/v2"
	"testing"

	"realsum/internal/fletcher"
	"realsum/internal/inet"
	"realsum/internal/stats"
)

// Named executable forms of the appendix theorems about checksums over
// *uniformly distributed* data.  (Lemmas 1–2, Corollary 3, Theorem 4,
// Lemma 5 and Lemma 9 live in pmf_test.go as exact computations; these
// are the Monte-Carlo ones.)

// TestTheorem6TCPUniformOverUniformData: the Internet checksum of
// uniformly distributed data is uniformly distributed — chi-square over
// the normalized ℤ/65535 space.
func TestTheorem6TCPUniformOverUniformData(t *testing.T) {
	rng := rand.New(rand.NewPCG(60, 60))
	h := NewHistogram()
	cell := make([]byte, 48)
	const n = 2_000_000
	for i := 0; i < n; i++ {
		for j := range cell {
			cell[j] = byte(rng.Uint32())
		}
		h.Add(inet.Sum(cell))
	}
	counts := make([]uint64, 0, 65535)
	for v := 0; v < 65535; v++ {
		counts = append(counts, h.Count(uint16(v)))
	}
	chi2 := stats.ChiSquareUniform(counts)
	// 65534 degrees of freedom: mean 65534, sd ≈ 362.  Allow ±6 sd.
	if chi2 > 65534+6*362 || chi2 < 65534-6*362 {
		t.Errorf("TCP checksum over uniform data: chi2 = %.0f (df 65534)", chi2)
	}
}

// TestTheorem7FletcherUniformOverUniformData: both Fletcher components
// are uniformly distributed over uniform data (the mod-255 variant over
// ℤ/255, the mod-256 variant over ℤ/256).
func TestTheorem7FletcherUniformOverUniformData(t *testing.T) {
	rng := rand.New(rand.NewPCG(70, 70))
	cell := make([]byte, 48)
	const n = 1_000_000
	for _, m := range []fletcher.Mod{fletcher.Mod255, fletcher.Mod256} {
		countsA := make([]uint64, int(m))
		countsB := make([]uint64, int(m))
		for i := 0; i < n; i++ {
			for j := range cell {
				cell[j] = byte(rng.Uint32())
			}
			p := m.Sum(cell)
			countsA[p.A%uint16(m)]++
			countsB[p.B%uint16(m)]++
		}
		for name, counts := range map[string][]uint64{"A": countsA, "B": countsB} {
			chi2 := stats.ChiSquareUniform(counts)
			df := float64(int(m) - 1)
			sd := 22.6 // sqrt(2*255) ≈ 22.6
			if chi2 > df+6*sd*2 {
				t.Errorf("Fletcher mod %d component %s: chi2 = %.0f (df %.0f)", m, name, chi2, df)
			}
		}
	}
}

// TestCorollary8EquivalentPowerOnUniformData: under the substitution
// model on uniform data, the IP and Fletcher checksums miss at
// statistically indistinguishable rates (≈2^-16).  We measure the
// congruence probability of independent uniform cells under each sum.
func TestCorollary8EquivalentPowerOnUniformData(t *testing.T) {
	rng := rand.New(rand.NewPCG(80, 80))
	const n = 400_000
	tcp := NewHistogram()
	f255 := NewSparse()
	f256 := NewSparse()
	cell := make([]byte, 48)
	for i := 0; i < n; i++ {
		for j := range cell {
			cell[j] = byte(rng.Uint32())
		}
		tcp.Add(inet.Sum(cell))
		f255.Add(uint64(fletcher.Mod255.Sum(cell).Checksum16()))
		f256.Add(uint64(fletcher.Mod256.Sum(cell).Checksum16()))
	}
	pTCP := tcp.CollisionProbability()
	p255 := f255.CollisionProbability()
	p256 := f256.CollisionProbability()
	// Expected collision floors: 1/65535 (TCP), 1/255² (F-255: each
	// component uniform over 255 values), 1/65536 (F-256).
	within := func(name string, got, want float64) {
		if got < want/3 || got > want*3 {
			t.Errorf("%s collision %.3g, want ≈ %.3g", name, got, want)
		}
	}
	within("TCP", pTCP, 1.0/65535)
	within("F-255", p255, 1.0/(255*255))
	within("F-256", p256, 1.0/65536)
}
