package dist

import (
	"fmt"

	"realsum/internal/inet"
	"realsum/internal/onescomp"
)

// Windower streams a file as 48-byte cells and maintains the
// ones-complement sum of every k-cell window as it slides, replacing
// the old CellSums/BlockSum pair that materialized a full []uint16 per
// file.  The rolling sum is updated in O(1) per cell — add the entering
// cell, subtract the leaving one; both operations are exact mod 65535,
// so every produced window sum is congruent to the directly computed
// block sum (§4.1's composition, run in reverse for the eviction).
//
// Bounded rings of recent cell sums and window sums give the locality
// samplers random access to the neighbourhood the paper compares within
// ("two packet lengths", §4.6) without unbounded retention.
type Windower struct {
	k       int
	cells   int    // cells pushed since Reset
	run     uint16 // rolling sum of the last min(cells, k) cell sums
	cellCap int
	winCap  int
	cellBuf []uint16
	winBuf  []uint16
	pending [CellSize]byte
	npend   int
}

// NewWindower returns a Windower over k-cell windows that retains the
// last cellHistory cell sums and the last windowHistory window sums for
// random access.  cellHistory is raised to k internally: the rolling
// update needs the evicted cell's sum.  windowHistory of 0 disables
// window retention (Last still works).
func NewWindower(k, cellHistory, windowHistory int) *Windower {
	if k < 1 {
		panic(fmt.Sprintf("dist: Windower k must be >= 1 (got %d)", k))
	}
	if cellHistory < k {
		cellHistory = k
	}
	w := &Windower{
		k:       k,
		cellCap: cellHistory,
		winCap:  windowHistory,
		cellBuf: make([]uint16, cellHistory),
	}
	if windowHistory > 0 {
		w.winBuf = make([]uint16, windowHistory)
	}
	return w
}

// K returns the window size in cells.
func (w *Windower) K() int { return w.k }

// Reset discards all streamed state so the Windower can take the next
// file, keeping its rings allocated.
func (w *Windower) Reset() {
	w.cells = 0
	w.run = 0
	w.npend = 0
}

// Write streams file bytes, carrying partial cells across calls.  A
// trailing runt that never completes a cell is ignored, matching the
// paper's "only deals in full-size cells" sampling rule (§4.6).
func (w *Windower) Write(p []byte) (int, error) {
	n := len(p)
	if w.npend > 0 {
		c := copy(w.pending[w.npend:], p)
		w.npend += c
		p = p[c:]
		if w.npend < CellSize {
			return n, nil
		}
		w.PushCell(inet.Sum(w.pending[:]))
		w.npend = 0
	}
	for len(p) >= CellSize {
		w.PushCell(inet.Sum(p[:CellSize]))
		p = p[CellSize:]
	}
	w.npend = copy(w.pending[:], p)
	return n, nil
}

// PushCell appends one cell's ones-complement sum, sliding the window.
func (w *Windower) PushCell(sum uint16) {
	c := w.cells
	if c >= w.k {
		// Evict cell c-k from the rolling sum.  Read before the write
		// below so a cellCap of exactly k still sees the old value.
		w.run = onescomp.Sub(w.run, w.cellBuf[(c-w.k)%w.cellCap])
	}
	w.cellBuf[c%w.cellCap] = sum
	w.run = onescomp.Add(w.run, sum)
	w.cells = c + 1
	if w.winCap > 0 && w.cells >= w.k {
		w.winBuf[(w.cells-w.k)%w.winCap] = w.run
	}
}

// Cells returns the number of complete cells streamed since Reset.
func (w *Windower) Cells() int { return w.cells }

// Windows returns the number of complete k-cell windows produced.
func (w *Windower) Windows() int {
	if w.cells < w.k {
		return 0
	}
	return w.cells - w.k + 1
}

// Last returns the sum of the most recently completed window.  It is
// meaningful only when Windows() > 0.
func (w *Windower) Last() uint16 { return w.run }

// CellSum returns the sum of cell i (absolute index since Reset), which
// must still be within the retained history.
func (w *Windower) CellSum(i int) uint16 {
	if i < 0 || i >= w.cells || i < w.cells-w.cellCap {
		panic(fmt.Sprintf("dist: cell %d outside retained history [%d,%d)",
			i, max(0, w.cells-w.cellCap), w.cells))
	}
	return w.cellBuf[i%w.cellCap]
}

// WindowSum returns the sum of the window starting at cell start, which
// must still be within the retained window history.
func (w *Windower) WindowSum(start int) uint16 {
	n := w.Windows()
	if start < 0 || start >= n || start < n-w.winCap {
		panic(fmt.Sprintf("dist: window %d outside retained history [%d,%d)",
			start, max(0, n-w.winCap), n))
	}
	return w.winBuf[start%w.winCap]
}
