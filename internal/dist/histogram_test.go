package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Total() != 0 || h.Distinct() != 0 {
		t.Error("empty histogram not empty")
	}
	h.Add(5)
	h.Add(5)
	h.Add(7)
	h.AddN(9, 3)
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(5) != 2 || h.Count(9) != 3 || h.Count(100) != 0 {
		t.Error("counts wrong")
	}
	if got := h.P(9); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(9) = %v", got)
	}
	if h.Distinct() != 3 {
		t.Errorf("Distinct = %d", h.Distinct())
	}
}

func TestHistogramNormalizesNegativeZero(t *testing.T) {
	h := NewHistogram()
	h.Add(0x0000)
	h.Add(0xFFFF)
	if h.Count(0) != 2 || h.Count(0xFFFF) != 2 {
		t.Error("0x0000 and 0xFFFF must share a bucket")
	}
	if h.Distinct() != 1 {
		t.Errorf("Distinct = %d, want 1", h.Distinct())
	}
}

func TestTopKOrderingAndTies(t *testing.T) {
	h := NewHistogram()
	h.AddN(10, 5)
	h.AddN(20, 5)
	h.AddN(30, 9)
	top := h.TopK(3)
	if len(top) != 3 || top[0].Value != 30 || top[1].Value != 10 || top[2].Value != 20 {
		t.Errorf("TopK = %+v", top)
	}
	if got := h.TopK(100); len(got) != 3 {
		t.Errorf("TopK over-asks: %d", len(got))
	}
}

func TestSortedPDFAndCDF(t *testing.T) {
	h := NewHistogram()
	h.AddN(1, 6)
	h.AddN(2, 3)
	h.AddN(3, 1)
	pdf := h.SortedPDF()
	want := []float64{0.6, 0.3, 0.1}
	for i := range want {
		if math.Abs(pdf[i]-want[i]) > 1e-12 {
			t.Errorf("pdf[%d] = %v, want %v", i, pdf[i], want[i])
		}
	}
	cdf := h.CDF(2)
	if math.Abs(cdf[0]-0.6) > 1e-12 || math.Abs(cdf[1]-0.9) > 1e-12 {
		t.Errorf("cdf = %v", cdf)
	}
	if got := h.TopShare(2); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("TopShare(2) = %v", got)
	}
}

func TestCollisionProbability(t *testing.T) {
	h := NewHistogram()
	// Point mass: always collides.
	h.AddN(7, 10)
	if got := h.CollisionProbability(); math.Abs(got-1) > 1e-12 {
		t.Errorf("point mass collision = %v", got)
	}
	// Two equal masses of 5: unbiased pair estimate 2·5·4/(10·9) = 4/9.
	h2 := NewHistogram()
	h2.AddN(1, 5)
	h2.AddN(2, 5)
	if got := h2.CollisionProbability(); math.Abs(got-4.0/9) > 1e-12 {
		t.Errorf("two-mass collision = %v, want %v", got, 4.0/9)
	}
	// Fewer than two observations: no pairs.
	h3 := NewHistogram()
	h3.Add(1)
	if h3.CollisionProbability() != 0 {
		t.Error("single observation should give 0")
	}
}

func TestUniformCollisionNearTwoToMinus16(t *testing.T) {
	// A uniform 16-bit source collides at ≈1/65535 (normalized space).
	rng := rand.New(rand.NewPCG(1, 1))
	h := NewHistogram()
	for i := 0; i < 2_000_000; i++ {
		h.Add(uint16(rng.Uint32()))
	}
	got := h.CollisionProbability()
	want := 1.0 / 65535
	if got < want*0.9 || got > want*1.3 {
		t.Errorf("uniform collision = %g, want ≈ %g", got, want)
	}
}

func TestMatchProbability(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.AddN(1, 1)
	a.AddN(2, 1)
	b.AddN(2, 1)
	b.AddN(3, 1)
	// Only value 2 overlaps: 0.5 * 0.5.
	if got := a.MatchProbability(b); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("MatchProbability = %v", got)
	}
	// Self match (with replacement) is Σp²; CollisionProbability is the
	// unbiased without-replacement estimate — for a {1,1} sample they
	// are 0.5 and 0 respectively.
	if got := a.MatchProbability(a); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("self MatchProbability = %v, want 0.5", got)
	}
	if got := a.CollisionProbability(); got != 0 {
		t.Errorf("collision estimate over singletons = %v, want 0", got)
	}
}

func TestOffsetMatchProbability(t *testing.T) {
	h := NewHistogram()
	h.AddN(10, 1)
	h.AddN(20, 1)
	// X−Y ≡ 10: pairs (20,10): p = 0.25.  (10,0): no mass at 0.
	if got := h.OffsetMatchProbability(h, 10); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("OffsetMatchProbability(10) = %v", got)
	}
	// Offset 0 equals plain match probability.
	if got, want := h.OffsetMatchProbability(h, 0), h.MatchProbability(h); math.Abs(got-want) > 1e-12 {
		t.Errorf("offset 0: %v != %v", got, want)
	}
}

func TestPMaxEmptyAndFilled(t *testing.T) {
	h := NewHistogram()
	if _, p := h.PMax(); p != 0 {
		t.Error("empty PMax should be 0")
	}
	h.AddN(42, 3)
	h.AddN(43, 1)
	v, p := h.PMax()
	if v != 42 || math.Abs(p-0.75) > 1e-12 {
		t.Errorf("PMax = (%d, %v)", v, p)
	}
}
