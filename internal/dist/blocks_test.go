package dist

import (
	"math"
	"math/rand/v2"
	"testing"

	"realsum/internal/inet"
	"realsum/internal/onescomp"
)

func randData(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Uint32())
	}
	return b
}

func TestWindowerCellStreaming(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	data := randData(rng, 48*5+17) // runt tail ignored
	w := NewWindower(1, 5, 0)
	// Stream through Write in awkward chunk sizes to exercise the
	// partial-cell carry.
	for off := 0; off < len(data); {
		n := 1 + rng.IntN(31)
		if off+n > len(data) {
			n = len(data) - off
		}
		w.Write(data[off : off+n])
		off += n
	}
	if w.Cells() != 5 {
		t.Fatalf("%d cells, want 5", w.Cells())
	}
	for i := 0; i < 5; i++ {
		if got, want := w.CellSum(i), inet.Sum(data[i*48:(i+1)*48]); got != want {
			t.Errorf("cell %d: %#04x != %#04x", i, got, want)
		}
	}
}

func TestWindowerMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	data := randData(rng, 48*10)
	n := len(data) / 48
	for k := 1; k <= 5; k++ {
		w := NewWindower(k, k, n)
		w.Write(data)
		if got, want := w.Windows(), n-k+1; got != want {
			t.Fatalf("k=%d: %d windows, want %d", k, got, want)
		}
		for i := 0; i+k <= n; i++ {
			got := w.WindowSum(i)
			want := inet.Sum(data[i*48 : (i+k)*48])
			if !onescomp.Congruent(got, want) {
				t.Fatalf("k=%d i=%d: %#04x != %#04x", k, i, got, want)
			}
		}
	}
}

func TestWindowerReset(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	a, b := randData(rng, 48*6), randData(rng, 48*4)
	w := NewWindower(2, 2, 8)
	w.Write(a)
	w.Reset()
	w.Write(b)
	if w.Cells() != 4 || w.Windows() != 3 {
		t.Fatalf("after reset: %d cells, %d windows", w.Cells(), w.Windows())
	}
	for i := 0; i < 3; i++ {
		want := inet.Sum(b[i*48 : (i+2)*48])
		if !onescomp.Congruent(w.WindowSum(i), want) {
			t.Errorf("window %d: %#04x !≡ %#04x", i, w.WindowSum(i), want)
		}
	}
}

// TestLocalSamplerSteadyStateAllocs guards the hot path of the
// distribution engine: streaming a file through a reused LocalSampler
// must not allocate.
func TestLocalSamplerSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	data := randData(rng, 48*64)
	s := NewLocalSampler(2, 512)
	s.File(data) // warm-up
	if n := testing.AllocsPerRun(20, func() { s.File(data) }); n != 0 {
		t.Errorf("LocalSampler.File allocates %v per run, want 0", n)
	}
	g := NewGlobalSampler(2)
	g.AddFile(data) // warm-up: histogram buckets and hash census entries
	if n := testing.AllocsPerRun(20, func() { g.AddFile(data) }); n != 0 {
		t.Errorf("GlobalSampler.AddFile allocates %v per run, want 0", n)
	}
}

func TestGlobalSamplerCounts(t *testing.T) {
	g := NewGlobalSampler(2)
	rng := rand.New(rand.NewPCG(3, 3))
	g.AddFile(randData(rng, 48*9)) // 4 blocks of 2 cells
	g.AddFile(randData(rng, 48*4)) // 2 blocks
	if g.Blocks() != 6 {
		t.Errorf("Blocks = %d, want 6", g.Blocks())
	}
	if g.Histogram().Total() != 6 {
		t.Errorf("histogram total = %d", g.Histogram().Total())
	}
}

func TestGlobalSamplerIdenticalDetection(t *testing.T) {
	g := NewGlobalSampler(1)
	// Two files of identical all-zero cells: every pair identical.
	zero := make([]byte, 48*4)
	g.AddFile(zero)
	if p := g.IdenticalProbability(); math.Abs(p-1) > 1e-12 {
		t.Errorf("identical probability = %v, want 1", p)
	}
	if p := g.CongruentProbability(); math.Abs(p-1) > 1e-12 {
		t.Errorf("congruent probability = %v, want 1", p)
	}
	// Congruent-but-not-identical: cells of all 0x00 vs all 0xFF both
	// sum to zero but differ byte-for-byte.
	g2 := NewGlobalSampler(1)
	mixed := make([]byte, 48*2)
	for i := 48; i < 96; i++ {
		mixed[i] = 0xFF
	}
	g2.AddFile(mixed)
	if p := g2.CongruentProbability(); math.Abs(p-1) > 1e-12 {
		t.Errorf("0x00/0xFF cells should be fully congruent: %v", p)
	}
	if p := g2.IdenticalProbability(); p != 0 {
		t.Errorf("identical probability = %v, want 0", p)
	}
}

func TestGlobalSamplerUniformBaseline(t *testing.T) {
	g := NewGlobalSampler(1)
	rng := rand.New(rand.NewPCG(4, 4))
	for f := 0; f < 40; f++ {
		g.AddFile(randData(rng, 48*600))
	}
	p := g.CongruentProbability()
	want := 1.0 / 65535
	if p < want*0.8 || p > want*1.5 {
		t.Errorf("uniform congruence = %g, want ≈ %g", p, want)
	}
	if g.IdenticalProbability() > 1e-6 {
		t.Errorf("random 48-byte blocks should almost never be identical")
	}
}

// TestGlobalSamplerMerge checks that sharding files across samplers and
// merging reproduces the single-sampler state exactly.
func TestGlobalSamplerMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	files := make([][]byte, 7)
	for i := range files {
		files[i] = randData(rng, 48*(3+rng.IntN(40)))
	}
	for _, k := range []int{1, 2, 4} {
		whole := NewGlobalSampler(k)
		for _, f := range files {
			whole.AddFile(f)
		}
		shards := []*GlobalSampler{NewGlobalSampler(k), NewGlobalSampler(k), NewGlobalSampler(k)}
		for i, f := range files {
			shards[i%3].AddFile(f)
		}
		merged := NewGlobalSampler(k)
		for _, s := range shards {
			merged.Merge(s)
		}
		if merged.Blocks() != whole.Blocks() {
			t.Fatalf("k=%d: merged %d blocks, whole %d", k, merged.Blocks(), whole.Blocks())
		}
		if got, want := merged.CongruentProbability(), whole.CongruentProbability(); got != want {
			t.Errorf("k=%d: congruent %v != %v", k, got, want)
		}
		if got, want := merged.IdenticalProbability(), whole.IdenticalProbability(); got != want {
			t.Errorf("k=%d: identical %v != %v", k, got, want)
		}
		for v := 0; v < 65536; v++ {
			if merged.Histogram().Count(uint16(v)) != whole.Histogram().Count(uint16(v)) {
				t.Fatalf("k=%d: histogram differs at %#04x", k, v)
			}
		}
	}
}

func TestSampleLocalPairCounting(t *testing.T) {
	// 6 cells, k=1, window 512 (≥ 10 cells): pairs = C(6,2) = 15.
	rng := rand.New(rand.NewPCG(5, 5))
	data := randData(rng, 48*6)
	st := SampleLocal(data, 1, 512)
	if st.Pairs != 15 {
		t.Errorf("pairs = %d, want 15", st.Pairs)
	}
	// Window of 96 bytes: only j-i <= 2: pairs = 5+4 = 9.
	st = SampleLocal(data, 1, 96)
	if st.Pairs != 9 {
		t.Errorf("pairs = %d, want 9", st.Pairs)
	}
	// k=2 blocks skip overlaps: i and j >= i+2.
	st = SampleLocal(data, 2, 48*100)
	if st.Pairs != 6 {
		t.Errorf("k=2 pairs = %d, want 6", st.Pairs)
	}
}

func TestSampleLocalDetectsStructure(t *testing.T) {
	// A file of identical cells: all local pairs congruent and identical.
	cell := make([]byte, 48)
	for i := range cell {
		cell[i] = byte(i)
	}
	var data []byte
	for i := 0; i < 8; i++ {
		data = append(data, cell...)
	}
	st := SampleLocal(data, 1, 512)
	if st.Congruent != st.Pairs || st.Identical != st.Pairs {
		t.Errorf("identical-cell file: %+v", st)
	}
	if st.ExcludeIdenticalP() != 0 {
		t.Errorf("ExcludeIdenticalP = %v", st.ExcludeIdenticalP())
	}
	if st.CongruentP() != 1 {
		t.Errorf("CongruentP = %v", st.CongruentP())
	}
}

func TestSampleLocalCongruentNotIdentical(t *testing.T) {
	// Cell A: zeros.  Cell B: 0xFFFF pairs — congruent sums, different
	// bytes.
	data := make([]byte, 96)
	for i := 48; i < 96; i++ {
		data[i] = 0xFF
	}
	st := SampleLocal(data, 1, 512)
	if st.Pairs != 1 || st.Congruent != 1 || st.Identical != 0 {
		t.Errorf("%+v", st)
	}
	if st.ExcludeIdenticalP() != 1 {
		t.Errorf("ExcludeIdenticalP = %v", st.ExcludeIdenticalP())
	}
}

func TestLocalStatsAdd(t *testing.T) {
	a := LocalStats{Pairs: 10, Congruent: 3, Identical: 1}
	a.Add(LocalStats{Pairs: 5, Congruent: 2, Identical: 2})
	if a.Pairs != 15 || a.Congruent != 5 || a.Identical != 3 {
		t.Errorf("%+v", a)
	}
	var empty LocalStats
	if empty.CongruentP() != 0 || empty.ExcludeIdenticalP() != 0 {
		t.Error("empty stats should report 0 probabilities")
	}
}

func TestLocalityEffectOnRealisticData(t *testing.T) {
	// The paper's Table 5 point: local congruence ≥ global congruence
	// on structured data.  Build a file of "sections": each section
	// repeats a small set of cells locally.
	rng := rand.New(rand.NewPCG(6, 6))
	var data []byte
	for sect := 0; sect < 30; sect++ {
		proto := randData(rng, 48)
		for rep := 0; rep < 10; rep++ {
			if rng.IntN(4) == 0 {
				data = append(data, randData(rng, 48)...)
			} else {
				data = append(data, proto...)
			}
		}
	}
	local := SampleLocal(data, 1, 512)
	g := NewGlobalSampler(1)
	g.AddFile(data)
	if local.CongruentP() < g.CongruentProbability() {
		t.Errorf("local congruence %v < global %v on sectioned data",
			local.CongruentP(), g.CongruentProbability())
	}
}
