package dist

import (
	"math"
	"math/rand/v2"
	"testing"

	"realsum/internal/inet"
	"realsum/internal/onescomp"
)

func randData(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Uint32())
	}
	return b
}

func TestCellSums(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	data := randData(rng, 48*5+17) // runt tail ignored
	sums := CellSums(data)
	if len(sums) != 5 {
		t.Fatalf("%d cells, want 5", len(sums))
	}
	for i, s := range sums {
		if want := inet.Sum(data[i*48 : (i+1)*48]); s != want {
			t.Errorf("cell %d: %#04x != %#04x", i, s, want)
		}
	}
}

func TestBlockSumMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	data := randData(rng, 48*10)
	sums := CellSums(data)
	for k := 1; k <= 5; k++ {
		for i := 0; i+k <= len(sums); i++ {
			got := BlockSum(sums, i, k)
			want := inet.Sum(data[i*48 : (i+k)*48])
			if !onescomp.Congruent(got, want) {
				t.Fatalf("k=%d i=%d: %#04x != %#04x", k, i, got, want)
			}
		}
	}
}

func TestGlobalSamplerCounts(t *testing.T) {
	g := NewGlobalSampler(2)
	rng := rand.New(rand.NewPCG(3, 3))
	g.AddFile(randData(rng, 48*9)) // 4 blocks of 2 cells
	g.AddFile(randData(rng, 48*4)) // 2 blocks
	if g.Blocks() != 6 {
		t.Errorf("Blocks = %d, want 6", g.Blocks())
	}
	if g.Histogram().Total() != 6 {
		t.Errorf("histogram total = %d", g.Histogram().Total())
	}
}

func TestGlobalSamplerIdenticalDetection(t *testing.T) {
	g := NewGlobalSampler(1)
	// Two files of identical all-zero cells: every pair identical.
	zero := make([]byte, 48*4)
	g.AddFile(zero)
	if p := g.IdenticalProbability(); math.Abs(p-1) > 1e-12 {
		t.Errorf("identical probability = %v, want 1", p)
	}
	if p := g.CongruentProbability(); math.Abs(p-1) > 1e-12 {
		t.Errorf("congruent probability = %v, want 1", p)
	}
	// Congruent-but-not-identical: cells of all 0x00 vs all 0xFF both
	// sum to zero but differ byte-for-byte.
	g2 := NewGlobalSampler(1)
	mixed := make([]byte, 48*2)
	for i := 48; i < 96; i++ {
		mixed[i] = 0xFF
	}
	g2.AddFile(mixed)
	if p := g2.CongruentProbability(); math.Abs(p-1) > 1e-12 {
		t.Errorf("0x00/0xFF cells should be fully congruent: %v", p)
	}
	if p := g2.IdenticalProbability(); p != 0 {
		t.Errorf("identical probability = %v, want 0", p)
	}
}

func TestGlobalSamplerUniformBaseline(t *testing.T) {
	g := NewGlobalSampler(1)
	rng := rand.New(rand.NewPCG(4, 4))
	for f := 0; f < 40; f++ {
		g.AddFile(randData(rng, 48*600))
	}
	p := g.CongruentProbability()
	want := 1.0 / 65535
	if p < want*0.8 || p > want*1.5 {
		t.Errorf("uniform congruence = %g, want ≈ %g", p, want)
	}
	if g.IdenticalProbability() > 1e-6 {
		t.Errorf("random 48-byte blocks should almost never be identical")
	}
}

func TestSampleLocalPairCounting(t *testing.T) {
	// 6 cells, k=1, window 512 (≥ 10 cells): pairs = C(6,2) = 15.
	rng := rand.New(rand.NewPCG(5, 5))
	data := randData(rng, 48*6)
	st := SampleLocal(data, 1, 512)
	if st.Pairs != 15 {
		t.Errorf("pairs = %d, want 15", st.Pairs)
	}
	// Window of 96 bytes: only j-i <= 2: pairs = 5+4 = 9.
	st = SampleLocal(data, 1, 96)
	if st.Pairs != 9 {
		t.Errorf("pairs = %d, want 9", st.Pairs)
	}
	// k=2 blocks skip overlaps: i and j >= i+2.
	st = SampleLocal(data, 2, 48*100)
	if st.Pairs != 6 {
		t.Errorf("k=2 pairs = %d, want 6", st.Pairs)
	}
}

func TestSampleLocalDetectsStructure(t *testing.T) {
	// A file of identical cells: all local pairs congruent and identical.
	cell := make([]byte, 48)
	for i := range cell {
		cell[i] = byte(i)
	}
	var data []byte
	for i := 0; i < 8; i++ {
		data = append(data, cell...)
	}
	st := SampleLocal(data, 1, 512)
	if st.Congruent != st.Pairs || st.Identical != st.Pairs {
		t.Errorf("identical-cell file: %+v", st)
	}
	if st.ExcludeIdenticalP() != 0 {
		t.Errorf("ExcludeIdenticalP = %v", st.ExcludeIdenticalP())
	}
	if st.CongruentP() != 1 {
		t.Errorf("CongruentP = %v", st.CongruentP())
	}
}

func TestSampleLocalCongruentNotIdentical(t *testing.T) {
	// Cell A: zeros.  Cell B: 0xFFFF pairs — congruent sums, different
	// bytes.
	data := make([]byte, 96)
	for i := 48; i < 96; i++ {
		data[i] = 0xFF
	}
	st := SampleLocal(data, 1, 512)
	if st.Pairs != 1 || st.Congruent != 1 || st.Identical != 0 {
		t.Errorf("%+v", st)
	}
	if st.ExcludeIdenticalP() != 1 {
		t.Errorf("ExcludeIdenticalP = %v", st.ExcludeIdenticalP())
	}
}

func TestLocalStatsAdd(t *testing.T) {
	a := LocalStats{Pairs: 10, Congruent: 3, Identical: 1}
	a.Add(LocalStats{Pairs: 5, Congruent: 2, Identical: 2})
	if a.Pairs != 15 || a.Congruent != 5 || a.Identical != 3 {
		t.Errorf("%+v", a)
	}
	var empty LocalStats
	if empty.CongruentP() != 0 || empty.ExcludeIdenticalP() != 0 {
		t.Error("empty stats should report 0 probabilities")
	}
}

func TestLocalityEffectOnRealisticData(t *testing.T) {
	// The paper's Table 5 point: local congruence ≥ global congruence
	// on structured data.  Build a file of "sections": each section
	// repeats a small set of cells locally.
	rng := rand.New(rand.NewPCG(6, 6))
	var data []byte
	for sect := 0; sect < 30; sect++ {
		proto := randData(rng, 48)
		for rep := 0; rep < 10; rep++ {
			if rng.IntN(4) == 0 {
				data = append(data, randData(rng, 48)...)
			} else {
				data = append(data, proto...)
			}
		}
	}
	local := SampleLocal(data, 1, 512)
	g := NewGlobalSampler(1)
	g.AddFile(data)
	if local.CongruentP() < g.CongruentProbability() {
		t.Errorf("local congruence %v < global %v on sectioned data",
			local.CongruentP(), g.CongruentProbability())
	}
}
