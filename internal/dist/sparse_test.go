package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestSparseBasics(t *testing.T) {
	s := NewSparse()
	if s.Total() != 0 || s.Distinct() != 0 || s.CollisionProbability() != 0 {
		t.Error("empty sparse census misbehaves")
	}
	if _, p := s.PMax(); p != 0 {
		t.Error("empty PMax")
	}
	s.Add(5)
	s.Add(5)
	s.Add(9)
	if s.Total() != 3 || s.Distinct() != 2 {
		t.Errorf("total %d distinct %d", s.Total(), s.Distinct())
	}
	v, p := s.PMax()
	if v != 5 || math.Abs(p-2.0/3) > 1e-12 {
		t.Errorf("PMax = (%d, %v)", v, p)
	}
	// Pairs: {5,5} collide; 2/(3·2) = 1/3.
	if got := s.CollisionProbability(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("collision = %v", got)
	}
}

func TestSparsePMaxTieBreak(t *testing.T) {
	s := NewSparse()
	s.Add(9)
	s.Add(2)
	v, _ := s.PMax()
	if v != 2 {
		t.Errorf("tie should break to smaller value, got %d", v)
	}
}

func TestSparseMatchesDenseOnSmallSpace(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	s := NewSparse()
	h := NewHistogram()
	for i := 0; i < 50000; i++ {
		v := uint16(rng.Uint32()) & 0x0FFF // keep off the 0xFFFF alias
		s.Add(uint64(v))
		h.Add(v)
	}
	if got, want := s.CollisionProbability(), h.CollisionProbability(); math.Abs(got-want) > 1e-15 {
		t.Errorf("sparse %v != dense %v", got, want)
	}
	if s.Distinct() != h.Distinct() {
		t.Errorf("distinct %d != %d", s.Distinct(), h.Distinct())
	}
}
