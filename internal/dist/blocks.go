package dist

import (
	"bytes"
	"hash/fnv"

	"realsum/internal/inet"
	"realsum/internal/onescomp"
)

// CellSize is the block quantum of the whole study: the ATM cell
// payload.
const CellSize = 48

// CellSums returns the ones-complement partial sum of every complete
// 48-byte cell of data.  A trailing runt is ignored; the paper's
// distribution sampling "only deals in full-size cells" (§4.6).
func CellSums(data []byte) []uint16 {
	n := len(data) / CellSize
	out := make([]uint16, n)
	for i := 0; i < n; i++ {
		out[i] = inet.Sum(data[i*CellSize : (i+1)*CellSize])
	}
	return out
}

// BlockSum composes k consecutive cell sums starting at cell i into the
// block's ones-complement sum.  Cells are 48 bytes, so every cell is
// word-aligned and partial sums add without byte swaps (§4.1).
func BlockSum(cellSums []uint16, i, k int) uint16 {
	var s uint16
	for j := i; j < i+k; j++ {
		s = onescomp.Add(s, cellSums[j])
	}
	return s
}

// GlobalSampler accumulates the file-system-wide distribution of k-cell
// block checksums, plus a content-hash census so identical blocks can
// be excluded — the "Globally Congruent" and "Exclude Identical"
// machinery of Tables 4–6.
type GlobalSampler struct {
	K      int
	hist   *Histogram
	hashes map[uint64]uint64
	blocks uint64
}

// NewGlobalSampler returns a sampler for k-cell blocks.
func NewGlobalSampler(k int) *GlobalSampler {
	return &GlobalSampler{K: k, hist: NewHistogram(), hashes: make(map[uint64]uint64)}
}

// AddFile records every aligned k-cell block of one file.
func (g *GlobalSampler) AddFile(data []byte) {
	sums := CellSums(data)
	k := g.K
	for i := 0; i+k <= len(sums); i += k {
		g.hist.Add(BlockSum(sums, i, k))
		h := fnv.New64a()
		h.Write(data[i*CellSize : (i+k)*CellSize])
		g.hashes[h.Sum64()]++
		g.blocks++
	}
}

// Histogram exposes the accumulated checksum histogram.
func (g *GlobalSampler) Histogram() *Histogram { return g.hist }

// CongruentProbability returns the probability that two blocks drawn
// from anywhere in the sampled data have congruent checksums
// (Table 4's / Table 5's "Globally Congruent" column).
func (g *GlobalSampler) CongruentProbability() float64 {
	return g.hist.CollisionProbability()
}

// IdenticalProbability estimates the probability that two distinct
// blocks drawn from the sampled data have identical contents — the
// benign congruences §4.5 subtracts out.  Like CollisionProbability it
// uses the unbiased pair estimator.
func (g *GlobalSampler) IdenticalProbability() float64 {
	if g.blocks < 2 {
		return 0
	}
	var s float64
	for _, c := range g.hashes {
		if c > 1 {
			s += float64(c) * float64(c-1)
		}
	}
	return s / (float64(g.blocks) * float64(g.blocks-1))
}

// Blocks returns the number of blocks sampled.
func (g *GlobalSampler) Blocks() uint64 { return g.blocks }

// LocalStats counts block-pair comparisons restricted to a locality
// window (Table 5).
type LocalStats struct {
	Pairs     uint64 // pairs compared
	Congruent uint64 // pairs with congruent checksums (incl. identical)
	Identical uint64 // pairs with byte-identical contents
}

// Add accumulates another set of counts.
func (s *LocalStats) Add(o LocalStats) {
	s.Pairs += o.Pairs
	s.Congruent += o.Congruent
	s.Identical += o.Identical
}

// CongruentP returns the local congruence probability.
func (s LocalStats) CongruentP() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.Congruent) / float64(s.Pairs)
}

// ExcludeIdenticalP returns the probability of a congruent-but-different
// pair — Table 5's "Excluding Identical" column.
func (s LocalStats) ExcludeIdenticalP() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.Congruent-s.Identical) / float64(s.Pairs)
}

// SampleLocal compares every pair of k-cell blocks of data whose start
// offsets differ by at most window bytes (window = 512 reproduces the
// paper's "within 2 packet lengths").  Blocks start on cell boundaries;
// overlapping pairs are skipped so a block is never compared with
// itself or a shifted self-image.
func SampleLocal(data []byte, k, window int) LocalStats {
	sums := CellSums(data)
	var st LocalStats
	maxCellDist := window / CellSize
	for i := 0; i+k <= len(sums); i++ {
		a := BlockSum(sums, i, k)
		for j := i + k; j+k <= len(sums) && j-i <= maxCellDist; j++ {
			st.Pairs++
			b := BlockSum(sums, j, k)
			if !onescomp.Congruent(a, b) {
				continue
			}
			st.Congruent++
			ab := data[i*CellSize : (i+k)*CellSize]
			bb := data[j*CellSize : (j+k)*CellSize]
			if bytes.Equal(ab, bb) {
				st.Identical++
			}
		}
	}
	return st
}
