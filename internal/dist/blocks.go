package dist

import (
	"bytes"

	"realsum/internal/inet"
	"realsum/internal/onescomp"
)

// CellSize is the block quantum of the whole study: the ATM cell
// payload.
const CellSize = 48

// fnv64a is FNV-1a over p with the standard 64-bit parameters — the
// same function hash/fnv computes, inlined so the per-block content
// census allocates nothing.
func fnv64a(p []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range p {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// GlobalSampler accumulates the file-system-wide distribution of k-cell
// block checksums, plus a content-hash census so identical blocks can
// be excluded — the "Globally Congruent" and "Exclude Identical"
// machinery of Tables 4–6.  Samplers are single-goroutine shards; merge
// them with Merge after a parallel pass.
type GlobalSampler struct {
	K      int
	hist   *Histogram
	hashes map[uint64]uint64
	blocks uint64
	win    *Windower
}

// NewGlobalSampler returns a sampler for k-cell blocks.
func NewGlobalSampler(k int) *GlobalSampler {
	return &GlobalSampler{
		K:      k,
		hist:   NewHistogram(),
		hashes: make(map[uint64]uint64),
		win:    NewWindower(k, k, 0),
	}
}

// AddFile records every aligned k-cell block of one file.
func (g *GlobalSampler) AddFile(data []byte) {
	w := g.win
	w.Reset()
	k := g.K
	n := len(data) / CellSize
	for c := 0; c < n; c++ {
		w.PushCell(inet.Sum(data[c*CellSize : (c+1)*CellSize]))
		start := c - k + 1
		if start >= 0 && start%k == 0 {
			g.hist.Add(w.Last())
			g.hashes[fnv64a(data[start*CellSize:(start+k)*CellSize])]++
			g.blocks++
		}
	}
}

// Merge folds another sampler's counts into g.  Counts are integers, so
// merging is exact and order-independent: any shard partition of the
// same corpus merges to identical state.
func (g *GlobalSampler) Merge(o *GlobalSampler) {
	g.hist.Merge(o.hist)
	for h, c := range o.hashes {
		g.hashes[h] += c
	}
	g.blocks += o.blocks
}

// Histogram exposes the accumulated checksum histogram.
func (g *GlobalSampler) Histogram() *Histogram { return g.hist }

// CongruentProbability returns the probability that two blocks drawn
// from anywhere in the sampled data have congruent checksums
// (Table 4's / Table 5's "Globally Congruent" column).
func (g *GlobalSampler) CongruentProbability() float64 {
	return g.hist.CollisionProbability()
}

// IdenticalProbability estimates the probability that two distinct
// blocks drawn from the sampled data have identical contents — the
// benign congruences §4.5 subtracts out.  Like CollisionProbability it
// uses the unbiased pair estimator.
func (g *GlobalSampler) IdenticalProbability() float64 {
	if g.blocks < 2 {
		return 0
	}
	var s float64
	for _, c := range g.hashes {
		if c > 1 {
			s += float64(c) * float64(c-1)
		}
	}
	return s / (float64(g.blocks) * float64(g.blocks-1))
}

// Blocks returns the number of blocks sampled.
func (g *GlobalSampler) Blocks() uint64 { return g.blocks }

// LocalStats counts block-pair comparisons restricted to a locality
// window (Table 5).
type LocalStats struct {
	Pairs     uint64 // pairs compared
	Congruent uint64 // pairs with congruent checksums (incl. identical)
	Identical uint64 // pairs with byte-identical contents
}

// Add accumulates another set of counts.
func (s *LocalStats) Add(o LocalStats) {
	s.Pairs += o.Pairs
	s.Congruent += o.Congruent
	s.Identical += o.Identical
}

// CongruentP returns the local congruence probability.
func (s LocalStats) CongruentP() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.Congruent) / float64(s.Pairs)
}

// ExcludeIdenticalP returns the probability of a congruent-but-different
// pair — Table 5's "Excluding Identical" column.
func (s LocalStats) ExcludeIdenticalP() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.Congruent-s.Identical) / float64(s.Pairs)
}

// LocalSampler compares every pair of k-cell blocks whose start offsets
// differ by at most Window bytes (512 reproduces the paper's "within 2
// packet lengths").  Blocks start on cell boundaries; overlapping pairs
// are skipped so a block is never compared with a shifted self-image.
//
// The sampler streams each file through a Windower: when the window
// starting at cell j completes, it is compared against the retained
// window sums at starts j-maxCellDist .. j-k — O(1) per pair where the
// old BlockSum recomputation was O(k).  The steady-state File path
// allocates nothing.
type LocalSampler struct {
	K      int
	Window int
	stats  LocalStats
	win    *Windower
}

// NewLocalSampler returns a sampler for k-cell blocks within window
// bytes.
func NewLocalSampler(k, window int) *LocalSampler {
	maxCellDist := window / CellSize
	return &LocalSampler{
		K:      k,
		Window: window,
		win:    NewWindower(k, k, maxCellDist+1),
	}
}

// File accumulates all in-window pairs of one file.
func (s *LocalSampler) File(data []byte) {
	w := s.win
	w.Reset()
	k := s.K
	maxCellDist := s.Window / CellSize
	n := len(data) / CellSize
	for c := 0; c < n; c++ {
		w.PushCell(inet.Sum(data[c*CellSize : (c+1)*CellSize]))
		j := c - k + 1 // start of the window that just completed
		if j < k {
			continue // no earlier non-overlapping window yet
		}
		b := w.Last()
		lo := j - maxCellDist
		if lo < 0 {
			lo = 0
		}
		for i := lo; i <= j-k; i++ {
			s.stats.Pairs++
			if !onescomp.Congruent(w.WindowSum(i), b) {
				continue
			}
			s.stats.Congruent++
			if bytes.Equal(data[i*CellSize:(i+k)*CellSize], data[j*CellSize:(j+k)*CellSize]) {
				s.stats.Identical++
			}
		}
	}
}

// Stats returns the accumulated counts.
func (s *LocalSampler) Stats() LocalStats { return s.stats }

// MergeStats folds another sampler shard's counts into s.
func (s *LocalSampler) MergeStats(o *LocalSampler) { s.stats.Add(o.stats) }

// SampleLocal runs a LocalSampler over one file — the one-shot form the
// appendix tests and small tools use.
func SampleLocal(data []byte, k, window int) LocalStats {
	s := NewLocalSampler(k, window)
	s.File(data)
	return s.Stats()
}
