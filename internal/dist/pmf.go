package dist

// PMF is a probability mass function over ℤ/M — the residue arithmetic
// in which the paper's checksum distributions live.  Normalized
// ones-complement 16-bit sums form ℤ/65535 (0x0000 and 0xFFFF are the
// same residue), each Fletcher component lives in ℤ/255 or ℤ/256, so M
// is a parameter.
type PMF struct {
	M int
	P []float64
}

// NewPMF returns the all-zero mass function over ℤ/m (not a valid
// distribution until filled).
func NewPMF(m int) PMF {
	if m < 1 {
		panic("dist: PMF modulus must be positive")
	}
	return PMF{M: m, P: make([]float64, m)}
}

// UniformPMF returns the uniform distribution over ℤ/m.
func UniformPMF(m int) PMF {
	p := NewPMF(m)
	for i := range p.P {
		p.P[i] = 1 / float64(m)
	}
	return p
}

// PointPMF returns the distribution concentrated at v mod m.
func PointPMF(m, v int) PMF {
	p := NewPMF(m)
	p.P[((v%m)+m)%m] = 1
	return p
}

// FromHistogram converts a 16-bit checksum histogram into a PMF over
// ℤ/65535 (the normalized ones-complement residues).  Bucket 0xFFFF is
// empty by construction.
func FromHistogram(h *Histogram) PMF {
	p := NewPMF(65535)
	if h.total == 0 {
		return p
	}
	t := float64(h.total)
	for v, c := range h.counts {
		if c > 0 {
			p.P[v] += float64(c) / t
		}
	}
	return p
}

// Convolve returns the distribution of X+Y mod M for independent X∼p,
// Y∼q — one step of the §4.4 prediction equation
//
//	P_k(c) = Σ_x P_{k-1}(c−x)·P_1(x)
//
// The inner loop skips q's zero-mass values, so sparse distributions
// convolve quickly.
func (p PMF) Convolve(q PMF) PMF {
	if p.M != q.M {
		panic("dist: Convolve modulus mismatch")
	}
	m := p.M
	out := NewPMF(m)
	for x, qx := range q.P {
		if qx == 0 {
			continue
		}
		// out[(v+x) mod m] += p[v]·qx, split to avoid the inner mod.
		o := out.P[x:]
		for v := 0; v < m-x; v++ {
			o[v] += p.P[v] * qx
		}
		o = out.P[:x]
		for v := m - x; v < m; v++ {
			o[v-(m-x)] += p.P[v] * qx
		}
	}
	return out
}

// ConvolvePow returns the distribution of the sum of k independent
// draws from p (k ≥ 1), via binary powering.
func (p PMF) ConvolvePow(k int) PMF {
	if k < 1 {
		panic("dist: ConvolvePow needs k >= 1")
	}
	result := PointPMF(p.M, 0)
	base := p
	for k > 0 {
		if k&1 == 1 {
			result = result.Convolve(base)
		}
		k >>= 1
		if k > 0 {
			base = base.Convolve(base)
		}
	}
	return result
}

// PMax returns the largest point mass.
func (p PMF) PMax() float64 {
	max := 0.0
	for _, v := range p.P {
		if v > max {
			max = v
		}
	}
	return max
}

// PMin returns the smallest point mass (including zeros).
func (p PMF) PMin() float64 {
	if len(p.P) == 0 {
		return 0
	}
	min := p.P[0]
	for _, v := range p.P[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// SelfMatch returns Σp² — the probability two independent draws from p
// are equal.  This is the "Predicted" column of Table 4 when p is the
// k-cell convolution of the measured single-cell distribution.
func (p PMF) SelfMatch() float64 {
	var s float64
	for _, v := range p.P {
		s += v * v
	}
	return s
}

// OffsetMatch returns P(X − Y ≡ c mod M) for independent X, Y ∼ p.
// Lemma 9: for every c this is at most SelfMatch.
func (p PMF) OffsetMatch(c int) float64 {
	m := p.M
	c = ((c % m) + m) % m
	var s float64
	for v, pv := range p.P {
		if pv == 0 {
			continue
		}
		y := v - c
		if y < 0 {
			y += m
		}
		s += pv * p.P[y]
	}
	return s
}

// TotalMass returns Σp — 1.0 for a valid distribution, up to float
// error.
func (p PMF) TotalMass() float64 {
	var s float64
	for _, v := range p.P {
		s += v
	}
	return s
}
