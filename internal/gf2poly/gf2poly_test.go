package gf2poly

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func randPoly(rng *rand.Rand, maxDeg int) Poly {
	d := rng.IntN(maxDeg + 1)
	p := Poly{}
	for i := 0; i <= d; i++ {
		if rng.Uint32()&1 == 1 {
			p = p.Add(Monomial(i))
		}
	}
	return p
}

func TestBasics(t *testing.T) {
	zero := Poly{}
	if !zero.IsZero() || zero.Degree() != -1 || zero.Weight() != 0 {
		t.Error("zero polynomial misbehaves")
	}
	one := New(1)
	if one.Degree() != 0 || one.Weight() != 1 || !one.Bit(0) {
		t.Error("constant 1 misbehaves")
	}
	x := Monomial(1)
	if x.Degree() != 1 || x.String() != "x" {
		t.Errorf("x misbehaves: deg %d, %q", x.Degree(), x)
	}
	big := Monomial(200)
	if big.Degree() != 200 || !big.Bit(200) || big.Bit(199) {
		t.Error("high-degree monomial misbehaves")
	}
	if New(0b111).String() != "x^2+x+1" {
		t.Errorf("String: %q", New(0b111))
	}
	if (Poly{}).String() != "0" {
		t.Error("zero String")
	}
}

func TestFromCRC(t *testing.T) {
	// CRC-32: degree must be 32, 15 terms.
	g := FromCRC(0x04C11DB7, 32)
	if g.Degree() != 32 {
		t.Errorf("CRC-32 generator degree %d", g.Degree())
	}
	if g.Weight() != 15 {
		t.Errorf("CRC-32 generator weight %d, want 15", g.Weight())
	}
	// Width-64 generator must carry the implicit x^64.
	g64 := FromCRC(0x42F0E1EBA9EA3693, 64)
	if g64.Degree() != 64 {
		t.Errorf("CRC-64 generator degree %d", g64.Degree())
	}
}

func TestAddSelfInverse(t *testing.T) {
	f := func(a, b uint64) bool {
		p, q := New(a), New(b)
		return p.Add(q).Add(q).Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAgainstCarrylessReference(t *testing.T) {
	// For small polynomials compare against a O(n²) bit-by-bit product.
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 200; trial++ {
		a, b := uint64(rng.Uint32()), uint64(rng.Uint32())
		var want Poly
		for i := 0; i < 32; i++ {
			if a>>uint(i)&1 == 1 {
				want = want.Add(New(b).Shl(i))
			}
		}
		if got := New(a).Mul(New(b)); !got.Equal(want) {
			t.Fatalf("Mul(%#x, %#x) = %v, want %v", a, b, got, want)
		}
	}
}

func TestMulCommutesAndDistributes(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 100; trial++ {
		a, b, c := randPoly(rng, 100), randPoly(rng, 100), randPoly(rng, 100)
		if !a.Mul(b).Equal(b.Mul(a)) {
			t.Fatal("Mul not commutative")
		}
		if !a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c))) {
			t.Fatal("Mul not distributive")
		}
	}
}

func TestDivModInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 200; trial++ {
		p := randPoly(rng, 150)
		q := randPoly(rng, 70)
		if q.IsZero() {
			continue
		}
		quo, rem := p.DivMod(q)
		if rem.Degree() >= q.Degree() {
			t.Fatalf("remainder degree %d >= divisor degree %d", rem.Degree(), q.Degree())
		}
		if !quo.Mul(q).Add(rem).Equal(p) {
			t.Fatalf("quo*q + rem != p")
		}
	}
}

func TestDivModPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DivMod by zero should panic")
		}
	}()
	New(5).DivMod(Poly{})
}

func TestGCD(t *testing.T) {
	// gcd(x^2+x, x) = x
	if g := GCD(New(0b110), New(0b10)); !g.Equal(New(0b10)) {
		t.Errorf("gcd = %v", g)
	}
	// gcd of coprime irreducibles is 1: (x+1) and (x^2+x+1).
	if g := GCD(New(0b11), New(0b111)); g.Degree() != 0 {
		t.Errorf("coprime gcd = %v", g)
	}
	// gcd(p*r, q*r) is divisible by r.
	rng := rand.New(rand.NewPCG(4, 4))
	for trial := 0; trial < 50; trial++ {
		p, q, r := randPoly(rng, 40), randPoly(rng, 40), randPoly(rng, 20)
		if r.IsZero() {
			continue
		}
		g := GCD(p.Mul(r), q.Mul(r))
		if !p.Mul(r).IsZero() && !g.IsZero() && !g.DivisibleBy(r) {
			t.Fatalf("gcd %v not divisible by common factor %v", g, r)
		}
	}
}

func TestExpMod(t *testing.T) {
	m := FromCRC(0x07, 8) // x^8+x^2+x+1
	// x^e mod m computed two ways.
	for _, e := range []uint64{0, 1, 7, 8, 63, 200} {
		want := Monomial(int(e)).Mod(m)
		if got := ExpMod(e, m); !got.Equal(want) {
			t.Errorf("ExpMod(%d) = %v, want %v", e, got, want)
		}
	}
}

func TestDetectsOddErrorsCatalog(t *testing.T) {
	// The §2 claims, computed: CRC-16/ANSI and CRC-16/CCITT contain
	// (x+1); CRC-32 (802.3) does NOT — the paper's "detects all odd
	// numbers of errors" is too strong for CRC-32.
	tests := []struct {
		name  string
		poly  uint64
		width uint8
		want  bool
	}{
		{"CRC-16/ANSI", 0x8005, 16, true},
		{"CRC-16/CCITT", 0x1021, 16, true},
		{"CRC-32", 0x04C11DB7, 32, false},
		// Castagnoli designed CRC-32C as (x+1)·p(x) with p primitive of
		// degree 31, precisely to recover odd-error detection.
		{"CRC-32C", 0x1EDC6F41, 32, true},
		{"CRC-10/ATM", 0x233, 10, true},
		// x^8+x^2+x+1 has four terms (even weight), so the HEC generator
		// does contain (x+1) and detects all odd-weight errors.
		{"CRC-8/ATM-HEC", 0x07, 8, true},
	}
	for _, tc := range tests {
		g := FromCRC(tc.poly, tc.width)
		if got := DetectsOddErrors(g); got != tc.want {
			t.Errorf("%s: DetectsOddErrors = %v, want %v", tc.name, got, tc.want)
		}
		// Cross-check via term parity: divisible by x+1 iff even weight.
		if got := g.Weight()%2 == 0; got != tc.want {
			t.Errorf("%s: weight parity disagrees with division", tc.name)
		}
	}
}

func TestIsIrreducible(t *testing.T) {
	irreducible := []Poly{
		New(0b10),       // x
		New(0b11),       // x+1
		New(0b111),      // x^2+x+1
		New(0b1011),     // x^3+x+1
		New(0b10011),    // x^4+x+1
		New(0b100101),   // x^5+x^2+1
		FromCRC(0x5, 3), // x^3+x^2+1
	}
	for _, p := range irreducible {
		if !IsIrreducible(p) {
			t.Errorf("%v should be irreducible", p)
		}
	}
	reducible := []Poly{
		New(0b110),          // x^2+x = x(x+1)
		New(0b101),          // x^2+1 = (x+1)^2
		New(0b1111),         // x^3+x^2+x+1 = (x+1)^3
		FromCRC(0x8005, 16), // CRC-16/ANSI = (x+1)(x^15+x+1)
		FromCRC(0x1021, 16), // CRC-16/CCITT contains (x+1)
		New(1),              // constants are not irreducible
	}
	for _, p := range reducible {
		if IsIrreducible(p) {
			t.Errorf("%v should be reducible", p)
		}
	}
	// The IEEE 802.3 CRC-32 generator is famously primitive — in
	// particular irreducible (which is also why it cannot contain the
	// factor x+1 and cannot detect all odd-weight errors).
	if !IsIrreducible(FromCRC(0x04C11DB7, 32)) {
		t.Error("the CRC-32 generator is irreducible")
	}
	// Products of random irreducibles are reducible.
	if IsIrreducible(New(0b111).Mul(New(0b1011))) {
		t.Error("product of irreducibles reported irreducible")
	}
}

func TestOrderOfX(t *testing.T) {
	// x mod (x+1): x ≡ 1, order 1.
	if got := OrderOfX(New(0b11), 10); got != 1 {
		t.Errorf("order mod x+1 = %d", got)
	}
	// x^2+x+1 divides x^3+1: order 3.
	if got := OrderOfX(New(0b111), 10); got != 3 {
		t.Errorf("order mod x^2+x+1 = %d", got)
	}
	// Primitive degree-4: x^4+x+1 has order 15.
	if got := OrderOfX(New(0b10011), 100); got != 15 {
		t.Errorf("order mod x^4+x+1 = %d", got)
	}
	// Non-invertible (divisible by x).
	if got := OrderOfX(New(0b110), 100); got != 0 {
		t.Errorf("order of x mod x(x+1) = %d", got)
	}
	// Limit exceeded returns 0.
	if got := OrderOfX(New(0b10011), 10); got != 0 {
		t.Errorf("limited order = %d", got)
	}
}

func TestDetects2BitErrorsClaims(t *testing.T) {
	// §2: CRC-32 detects all 2-bit errors less than 2048 bits apart.
	// (Its true x-order is far larger; confirming the stated window is
	// cheap.)
	g32 := FromCRC(0x04C11DB7, 32)
	if !Detects2BitErrors(g32, 2048) {
		t.Error("CRC-32 should detect 2-bit errors within 2048 bits")
	}
	// CRC-16/CCITT polynomial x^16+x^12+x^5+1 = (x+1)·primitive15:
	// order is 2^15−1 = 32767, so spacing 32767 is undetectable.
	ccitt := FromCRC(0x1021, 16)
	if !Detects2BitErrors(ccitt, 32766) {
		t.Error("CCITT should detect 2-bit errors within 32766 bits")
	}
	if Detects2BitErrors(ccitt, 32767) {
		t.Error("CCITT cannot detect a 2-bit error spaced exactly 32767")
	}
	if got := OrderOfX(ccitt, 40000); got != 32767 {
		t.Errorf("CCITT x-order = %d, want 32767", got)
	}
}

func TestFromWordsAndBitAccess(t *testing.T) {
	p := FromWords([]uint64{0, 1}) // x^64
	if p.Degree() != 64 || !p.Bit(64) || p.Bit(0) {
		t.Error("multi-word polynomial misbehaves")
	}
	if p.Bit(-1) || p.Bit(1000) {
		t.Error("out-of-range Bit should be false")
	}
	trimmed := FromWords([]uint64{5, 0, 0})
	if len(trimmed.w) != 1 {
		t.Error("trailing zero words not trimmed")
	}
}

func TestShlAgainstMonomialMul(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for trial := 0; trial < 100; trial++ {
		p := randPoly(rng, 120)
		n := rng.IntN(130)
		if !p.Shl(n).Equal(p.Mul(Monomial(n))) {
			t.Fatalf("Shl(%d) != Mul(x^%d)", n, n)
		}
	}
}
