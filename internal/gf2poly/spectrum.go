package gf2poly

import (
	"fmt"
	"math"
	"sort"
)

// This file computes the low tail of a CRC generator's weight spectrum —
// the number of weight-2 and weight-3 error polynomials of a given
// message length the CRC fails to detect — plus the classical burst
// coverage.  These are the analytic inputs to the polynomial census: on
// a binary symmetric channel with small flip probability p, P_ud is
// dominated by A2·p² + A3·p³ where A2/A3 are exactly the counts below,
// and the 5G NR selection papers rank candidates by where those counts
// first become nonzero (the Hamming-distance profile).

// XPowerResidues returns x^0, x^1, …, x^(n−1) reduced mod g, each packed
// into a uint64 (bit i = coefficient of x^i).  It panics if g's degree
// is outside 1..64.  An error polynomial Σ x^i is undetected exactly
// when the XOR of the corresponding residues is zero, so this table
// turns spectrum questions into word operations.
func XPowerResidues(g Poly, n int) []uint64 {
	w := g.Degree()
	if w < 1 || w > 64 {
		panic(fmt.Sprintf("gf2poly: XPowerResidues needs degree 1..64, got %d", w))
	}
	// g minus its leading x^w term, as a word; residues have degree < w.
	var low uint64
	for i := 0; i < w && i < 64; i++ {
		if g.Bit(i) {
			low |= 1 << uint(i)
		}
	}
	out := make([]uint64, n)
	r := uint64(1) // x^0 mod g, already reduced since w ≥ 1
	for i := 0; i < n; i++ {
		out[i] = r
		if w == 64 {
			hi := r>>63 != 0
			r <<= 1
			if hi {
				r ^= low
			}
		} else {
			r <<= 1
			if r>>uint(w)&1 == 1 {
				r ^= low | 1<<uint(w)
			}
		}
	}
	return out
}

// XOrder is OrderOfX for generators of degree 1..64, running the same
// packed-word recurrence as XPowerResidues — no allocation per step, so
// horizons in the millions (the full period of a 24-bit generator) stay
// cheap.  Returns 0 if x is not invertible mod g or the order exceeds
// limit.
func XOrder(g Poly, limit uint64) uint64 {
	w := g.Degree()
	if w < 1 || w > 64 {
		panic(fmt.Sprintf("gf2poly: XOrder needs degree 1..64, got %d", w))
	}
	if !g.Bit(0) {
		return 0
	}
	var low uint64
	for i := 0; i < w && i < 64; i++ {
		if g.Bit(i) {
			low |= 1 << uint(i)
		}
	}
	r := uint64(1)
	for e := uint64(1); e <= limit; e++ {
		if w == 64 {
			hi := r>>63 != 0
			r <<= 1
			if hi {
				r ^= low
			}
		} else {
			r <<= 1
			if r>>uint(w)&1 == 1 {
				r ^= low | 1<<uint(w)
			}
		}
		if r == 1 {
			return e
		}
	}
	return 0
}

// UndetectedWeight2 returns A2: the number of weight-2 error polynomials
// spanning a message of nBits bits (bit positions 0..nBits−1) that a CRC
// with generator g fails to detect.  A pair {i, j} is undetected iff
// x^i + x^j ≡ 0 (mod g), i.e. the two positions share a residue.
func UndetectedWeight2(g Poly, nBits int) uint64 {
	res := XPowerResidues(g, nBits)
	counts := make(map[uint64]uint64, nBits)
	for _, r := range res {
		counts[r]++
	}
	var a2 uint64
	for _, c := range counts {
		a2 += c * (c - 1) / 2
	}
	return a2
}

// UndetectedWeight3 returns A3: the number of weight-3 error polynomials
// over nBits bit positions that g fails to detect — triples {i, j, k}
// with x^i + x^j + x^k ≡ 0 (mod g).  Runs in O(n² log n) time and O(n)
// memory via an index table: for each pair j < k it counts the earlier
// positions whose residue equals r_j ⊕ r_k.
func UndetectedWeight3(g Poly, nBits int) uint64 {
	res := XPowerResidues(g, nBits)
	idx := make(map[uint64][]int, nBits)
	for i, r := range res {
		idx[r] = append(idx[r], i)
	}
	var a3 uint64
	for j := 1; j < nBits; j++ {
		rj := res[j]
		for k := j + 1; k < nBits; k++ {
			positions := idx[rj^res[k]]
			if len(positions) == 0 {
				continue
			}
			a3 += uint64(sort.SearchInts(positions, j))
		}
	}
	return a3
}

// UndetectedBurstFraction returns the fraction of burst errors of exact
// span b bits (first and last bit of the span flipped, interior bits
// arbitrary) that a degree-w generator with a nonzero constant term
// fails to detect: 0 for b ≤ w, 2^−(w−1) at b = w+1 (the burst is
// undetected only when its interior matches a shift of g), and 2^−w
// beyond.  This is the classical result §2 of the paper quotes as
// "detects all bursts shorter than the CRC width".
func UndetectedBurstFraction(g Poly, b int) float64 {
	w := g.Degree()
	if w < 1 || !g.Bit(0) {
		panic("gf2poly: burst coverage needs a generator with x^0 and degree ≥ 1")
	}
	switch {
	case b <= w:
		return 0
	case b == w+1:
		return math.Ldexp(1, -(w - 1))
	default:
		return math.Ldexp(1, -w)
	}
}
