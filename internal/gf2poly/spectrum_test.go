package gf2poly

import (
	"math/bits"
	"testing"
)

// censusGenerators is the polynomial-census slate in (width, Rocksoft
// normal poly) form — duplicated here from internal/crc rather than
// imported, so the algebra is pinned independently of the CRC engine.
var censusGenerators = []struct {
	name  string
	width uint8
	poly  uint64
}{
	{"CRC-32", 32, 0x04C11DB7},
	{"CRC-32C", 32, 0x1EDC6F41},
	{"CRC-32K", 32, 0x741B8CD7},
	{"CRC-32K2", 32, 0x32583499},
	{"CRC-24/A", 24, 0x864CFB},
	{"CRC-24/B", 24, 0x800063},
	{"CRC-24/C", 24, 0xB2B117},
	{"CRC-16/XMODEM", 16, 0x1021},
	{"CRC-11/NR", 11, 0x621},
	{"CRC-6/NR", 6, 0x21},
}

// TestXPowerResiduesMatchExpMod pins the packed-word residue fast path
// against the generic ExpMod square-and-multiply path.
func TestXPowerResiduesMatchExpMod(t *testing.T) {
	for _, g := range censusGenerators {
		gen := FromCRC(g.poly, g.width)
		res := XPowerResidues(gen, 200)
		for i, r := range res {
			want := ExpMod(uint64(i), gen)
			got := Poly{}
			if r != 0 {
				got = FromWords([]uint64{r})
			}
			if !got.Equal(want) {
				t.Fatalf("%s: x^%d mod g: residues gave %v, ExpMod gave %v", g.name, i, got, want)
			}
		}
	}
}

// enumerated counts all weight-2 and weight-3 error polynomials over
// nBits ≤ 64 positions that g fails to detect, using the generic
// Poly.Mod path — a brute-force oracle independent of XPowerResidues.
func enumerated(g Poly, nBits int) (a2, a3 uint64) {
	for i := 0; i < nBits; i++ {
		for j := i + 1; j < nBits; j++ {
			e2 := Monomial(i).Add(Monomial(j))
			if e2.Mod(g).IsZero() {
				a2++
			}
			for k := j + 1; k < nBits; k++ {
				if e2.Add(Monomial(k)).Mod(g).IsZero() {
					a3++
				}
			}
		}
	}
	return a2, a3
}

// TestSpectrumMatchesExhaustiveEnumeration cross-checks the analytic A2
// and A3 counters against exhaustive enumeration of every weight-≤3
// error polynomial at message lengths up to 64 bits.  Short generators
// (CRC-6, CRC-11) actually have nonzero counts in this range, so the
// test exercises both the zero and nonzero paths.
func TestSpectrumMatchesExhaustiveEnumeration(t *testing.T) {
	for _, g := range censusGenerators {
		gen := FromCRC(g.poly, g.width)
		for _, nBits := range []int{8, 33, 64} {
			wantA2, wantA3 := enumerated(gen, nBits)
			if gotA2 := UndetectedWeight2(gen, nBits); gotA2 != wantA2 {
				t.Errorf("%s nBits=%d: UndetectedWeight2 = %d, enumeration = %d", g.name, nBits, gotA2, wantA2)
			}
			if gotA3 := UndetectedWeight3(gen, nBits); gotA3 != wantA3 {
				t.Errorf("%s nBits=%d: UndetectedWeight3 = %d, enumeration = %d", g.name, nBits, gotA3, wantA3)
			}
		}
	}
}

// TestSpectrumRandomGenerators fuzzes the A2/A3 counters against the
// enumeration oracle over random odd generators, where residue
// collisions are plentiful.
func TestSpectrumRandomGenerators(t *testing.T) {
	rng := splitmix(0x5eed)
	for trial := 0; trial < 40; trial++ {
		width := 2 + int(rng()%9) // degree 2..10: dense collision regime
		poly := (rng() | 1) & (1<<uint(width) - 1)
		gen := FromCRC(poly, uint8(width))
		nBits := 4 + int(rng()%45)
		wantA2, wantA3 := enumerated(gen, nBits)
		if gotA2 := UndetectedWeight2(gen, nBits); gotA2 != wantA2 {
			t.Fatalf("w=%d poly=%#x n=%d: A2 = %d, want %d", width, poly, nBits, gotA2, wantA2)
		}
		if gotA3 := UndetectedWeight3(gen, nBits); gotA3 != wantA3 {
			t.Fatalf("w=%d poly=%#x n=%d: A3 = %d, want %d", width, poly, nBits, gotA3, wantA3)
		}
	}
}

func splitmix(seed uint64) func() uint64 {
	return func() uint64 {
		seed += 0x9E3779B97F4A7C15
		z := seed
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		return z ^ z>>31
	}
}

// TestXOrderMatchesOrderOfX pins the packed-word order loop against the
// generic MulMod-based OrderOfX, over random generators (dense collision
// regime, including degree 1) and the census slate.
func TestXOrderMatchesOrderOfX(t *testing.T) {
	rng := splitmix(0xabc)
	for trial := 0; trial < 50; trial++ {
		width := 1 + int(rng()%10)
		poly := (rng() | 1) & (1<<uint(width) - 1)
		gen := FromCRC(poly, uint8(width))
		if got, want := XOrder(gen, 5000), OrderOfX(gen, 5000); got != want {
			t.Fatalf("w=%d poly=%#x: XOrder=%d, OrderOfX=%d", width, poly, got, want)
		}
	}
	for _, g := range censusGenerators {
		gen := FromCRC(g.poly, g.width)
		if got, want := XOrder(gen, 4096), OrderOfX(gen, 4096); got != want {
			t.Errorf("%s: XOrder=%d, OrderOfX=%d", g.name, got, want)
		}
	}
}

// TestOrderConsistency pins, for every census generator, the three
// statements of the same fact against each other: OrderOfX,
// Detects2BitErrors, and A2 (a 2-bit error at spacing d is undetected
// iff ord(x) divides d).
func TestOrderConsistency(t *testing.T) {
	const horizon = 1 << 16
	for _, g := range censusGenerators {
		gen := FromCRC(g.poly, g.width)
		ord := OrderOfX(gen, horizon)
		for _, nBits := range []int{64, 1024, 2048} {
			a2 := UndetectedWeight2(gen, nBits)
			maxSpacing := uint64(nBits - 1)
			detects := Detects2BitErrors(gen, maxSpacing)
			if detects != (a2 == 0) {
				t.Errorf("%s nBits=%d: Detects2BitErrors=%v but A2=%d", g.name, nBits, detects, a2)
			}
			if ord != 0 && ord <= maxSpacing {
				// Closed form: Σ over multiples m of ord with m ≤ nBits−1
				// of (nBits − m) undetected pairs.
				var want uint64
				for m := ord; m <= maxSpacing; m += ord {
					want += uint64(nBits) - m
				}
				if a2 != want {
					t.Errorf("%s nBits=%d: A2=%d, order closed form gives %d (ord=%d)", g.name, nBits, a2, want, ord)
				}
			} else if a2 != 0 {
				t.Errorf("%s nBits=%d: ord(x) > %d yet A2=%d", g.name, nBits, horizon, a2)
			}
		}
	}
}

// TestBurstFraction pins the closed-form burst coverage against direct
// enumeration of every burst pattern at small widths: a burst of exact
// span b is x^i·(1 + interior + x^(b−1)), undetected iff divisible by g.
func TestBurstFraction(t *testing.T) {
	for _, g := range []struct {
		width uint8
		poly  uint64
	}{{6, 0x21}, {8, 0x07}, {10, 0x233}} {
		gen := FromCRC(g.poly, g.width)
		w := gen.Degree()
		for b := 2; b <= w+3; b++ {
			interiorBits := b - 2
			total := uint64(1) << uint(interiorBits)
			var undetected uint64
			for interior := uint64(0); interior < total; interior++ {
				e := Monomial(0).Add(Monomial(b - 1))
				for i := 0; i < interiorBits; i++ {
					if interior>>uint(i)&1 == 1 {
						e = e.Add(Monomial(i + 1))
					}
				}
				if e.Mod(gen).IsZero() {
					undetected++
				}
			}
			got := UndetectedBurstFraction(gen, b)
			want := float64(undetected) / float64(total)
			if got != want {
				t.Errorf("w=%d b=%d: UndetectedBurstFraction=%g, enumeration=%g (%d/%d)", w, b, got, want, undetected, total)
			}
		}
	}
}

// TestCensusGeneratorProperties pins the algebraic profile of each
// census generator: degree, (x+1) divisibility, and that the Koopman
// polynomials differ from IEEE in exactly the way they were selected
// for (order of x, hence 2-bit coverage horizon).
func TestCensusGeneratorProperties(t *testing.T) {
	for _, g := range censusGenerators {
		gen := FromCRC(g.poly, g.width)
		if got := gen.Degree(); got != int(g.width) {
			t.Errorf("%s: degree %d, want %d", g.name, got, g.width)
		}
		if gen.Weight()%2 == 0 != DetectsOddErrors(gen) {
			// (x+1) | g iff g has even weight.
			t.Errorf("%s: odd-error coverage disagrees with weight parity (weight %d)", g.name, gen.Weight())
		}
		if bits.OnesCount64(g.poly)+1 != gen.Weight() {
			t.Errorf("%s: FromCRC dropped terms: poly weight %d+1, generator weight %d", g.name, bits.OnesCount64(g.poly), gen.Weight())
		}
	}
}
