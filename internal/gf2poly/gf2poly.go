// Package gf2poly implements polynomial arithmetic over GF(2), the
// algebra CRCs live in.  It exists so the error-detection guarantees §2
// of the paper asserts can be *computed* rather than quoted: a CRC
// detects all odd-weight errors iff its generator is divisible by x+1,
// detects 2-bit errors at spacing d iff d is below the multiplicative
// order of x modulo the generator's largest irreducible factor, and
// detects all bursts shorter than its degree unconditionally.
//
// Polynomials are represented as bit vectors over []uint64 words, least
// significant coefficient in bit 0 of word 0, so degrees are unbounded
// (CRC-64 generators have degree 64 and need 65 bits).
package gf2poly

import (
	"fmt"
	"math/bits"
	"strings"
)

// Poly is a polynomial over GF(2).  The zero value is the zero
// polynomial.  Words hold coefficients little-endian; trailing zero
// words are kept trimmed by the constructors and operations.
type Poly struct {
	w []uint64
}

// New returns the polynomial with the given coefficient word.
func New(coeffs uint64) Poly {
	return Poly{}.setBitSource([]uint64{coeffs})
}

// FromWords builds a polynomial from little-endian coefficient words.
func FromWords(words []uint64) Poly {
	return Poly{}.setBitSource(words)
}

// FromCRC builds the full generator polynomial of a CRC from its
// Rocksoft representation: the width-bit poly value plus the implicit
// x^width term.
func FromCRC(poly uint64, width uint8) Poly {
	words := []uint64{poly}
	if width == 64 {
		words = append(words, 1)
	} else {
		words[0] |= 1 << width
	}
	return FromWords(words)
}

// Monomial returns x^n.
func Monomial(n int) Poly {
	if n < 0 {
		panic("gf2poly: negative degree")
	}
	w := make([]uint64, n/64+1)
	w[n/64] = 1 << uint(n%64)
	return Poly{w: w}
}

func (p Poly) setBitSource(words []uint64) Poly {
	w := append([]uint64(nil), words...)
	return Poly{w: w}.trim()
}

func (p Poly) trim() Poly {
	n := len(p.w)
	for n > 0 && p.w[n-1] == 0 {
		n--
	}
	p.w = p.w[:n]
	return p
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.w) == 0 }

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Degree() int {
	if p.IsZero() {
		return -1
	}
	top := p.w[len(p.w)-1]
	return (len(p.w)-1)*64 + bits.Len64(top) - 1
}

// Weight returns the number of nonzero coefficients (terms).
func (p Poly) Weight() int {
	n := 0
	for _, w := range p.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Bit reports coefficient i.
func (p Poly) Bit(i int) bool {
	if i < 0 || i/64 >= len(p.w) {
		return false
	}
	return p.w[i/64]>>uint(i%64)&1 == 1
}

// Equal reports whether p and q are the same polynomial.
func (p Poly) Equal(q Poly) bool {
	if len(p.w) != len(q.w) {
		return false
	}
	for i := range p.w {
		if p.w[i] != q.w[i] {
			return false
		}
	}
	return true
}

// Add returns p + q (which over GF(2) is also p − q).
func (p Poly) Add(q Poly) Poly {
	n := len(p.w)
	if len(q.w) > n {
		n = len(q.w)
	}
	out := make([]uint64, n)
	copy(out, p.w)
	for i, w := range q.w {
		out[i] ^= w
	}
	return Poly{w: out}.trim()
}

// Shl returns p · x^n.
func (p Poly) Shl(n int) Poly {
	if p.IsZero() || n == 0 {
		return p
	}
	words, bitsOff := n/64, uint(n%64)
	out := make([]uint64, len(p.w)+words+1)
	for i, w := range p.w {
		out[i+words] |= w << bitsOff
		if bitsOff > 0 {
			out[i+words+1] |= w >> (64 - bitsOff)
		}
	}
	return Poly{w: out}.trim()
}

// Mul returns p · q.
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return Poly{}
	}
	out := make([]uint64, len(p.w)+len(q.w))
	for i, pw := range p.w {
		for pw != 0 {
			b := bits.TrailingZeros64(pw)
			pw &= pw - 1
			shift := i*64 + b
			words, off := shift/64, uint(shift%64)
			for j, qw := range q.w {
				out[j+words] ^= qw << off
				if off > 0 {
					out[j+words+1] ^= qw >> (64 - off)
				}
			}
		}
	}
	return Poly{w: out}.trim()
}

// DivMod returns the quotient and remainder of p ÷ q.  It panics if q
// is zero.
func (p Poly) DivMod(q Poly) (quo, rem Poly) {
	if q.IsZero() {
		panic("gf2poly: division by zero polynomial")
	}
	dq := q.Degree()
	rem = p
	var quoBits []int
	for {
		dr := rem.Degree()
		if dr < dq {
			break
		}
		shift := dr - dq
		quoBits = append(quoBits, shift)
		rem = rem.Add(q.Shl(shift))
	}
	quo = Poly{}
	for _, b := range quoBits {
		quo = quo.Add(Monomial(b))
	}
	return quo, rem
}

// Mod returns p mod q.
func (p Poly) Mod(q Poly) Poly {
	_, r := p.DivMod(q)
	return r
}

// DivisibleBy reports whether q divides p exactly.
func (p Poly) DivisibleBy(q Poly) bool { return p.Mod(q).IsZero() }

// GCD returns the greatest common divisor of p and q.
func GCD(p, q Poly) Poly {
	for !q.IsZero() {
		p, q = q, p.Mod(q)
	}
	return p
}

// MulMod returns p·q mod m.
func MulMod(p, q, m Poly) Poly { return p.Mul(q).Mod(m) }

// ExpMod returns x^e mod m via square-and-multiply (e ≥ 0).
func ExpMod(e uint64, m Poly) Poly {
	result := New(1).Mod(m)
	base := Monomial(1).Mod(m)
	for e > 0 {
		if e&1 == 1 {
			result = MulMod(result, base, m)
		}
		base = MulMod(base, base, m)
		e >>= 1
	}
	return result
}

// X1 is the polynomial x + 1, whose presence as a factor of a CRC
// generator is exactly the condition for detecting all odd-weight
// errors.
func X1() Poly { return New(3) }

// DetectsOddErrors reports whether a CRC with this generator detects
// every error pattern of odd weight: true iff (x+1) divides the
// generator, because then every codeword has even weight while an
// odd-weight error can never sum to even parity.
func DetectsOddErrors(generator Poly) bool {
	return generator.DivisibleBy(X1())
}

// IsIrreducible reports whether p (degree ≥ 1) is irreducible over
// GF(2), by the standard Rabin test: x^(2^d) ≡ x (mod p) and
// gcd(x^(2^(d/q)) − x, p) = 1 for every prime divisor q of d.
func IsIrreducible(p Poly) bool {
	d := p.Degree()
	if d < 1 {
		return false
	}
	if d == 1 {
		return true
	}
	if !p.Bit(0) {
		return false // divisible by x
	}
	// x^(2^d) mod p must equal x.
	if !expTwoPow(d, p).Equal(Monomial(1).Mod(p)) {
		return false
	}
	for _, q := range primeFactors(d) {
		h := expTwoPow(d/q, p).Add(Monomial(1).Mod(p))
		if !GCD(h, p).Equal(New(1)) {
			return false
		}
	}
	return true
}

// expTwoPow returns x^(2^k) mod m by k successive squarings.
func expTwoPow(k int, m Poly) Poly {
	r := Monomial(1).Mod(m)
	for i := 0; i < k; i++ {
		r = MulMod(r, r, m)
	}
	return r
}

func primeFactors(n int) []int {
	var out []int
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			out = append(out, f)
			for n%f == 0 {
				n /= f
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// OrderOfX returns the multiplicative order of x modulo p — the
// smallest e ≥ 1 with x^e ≡ 1 (mod p) — or 0 if x is not invertible
// (p divisible by x) or the order exceeds limit.  A CRC whose
// generator has x-order e detects all 2-bit errors fewer than e bit
// positions apart; §2's "all 2-bit errors less than 2048 bits apart"
// for CRC-32 is a (conservative) statement about this order.
func OrderOfX(p Poly, limit uint64) uint64 {
	if !p.Bit(0) {
		return 0
	}
	one := New(1).Mod(p)
	r := Monomial(1).Mod(p)
	for e := uint64(1); e <= limit; e++ {
		if r.Equal(one) {
			return e
		}
		r = MulMod(r, Monomial(1), p)
	}
	return 0
}

// Detects2BitErrors reports whether a CRC with this generator detects
// every 2-bit error whose bit positions differ by at most maxSpacing:
// equivalent to x^d + 1 not being divisible by p for any d ≤
// maxSpacing, i.e. the order of x mod p exceeding maxSpacing (for
// generators with a nonzero constant term).
func Detects2BitErrors(generator Poly, maxSpacing uint64) bool {
	ord := OrderOfX(generator, maxSpacing)
	return ord == 0 && generator.Bit(0)
}

// String renders the polynomial in the usual x^i + … form.
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var terms []string
	for i := p.Degree(); i >= 0; i-- {
		if !p.Bit(i) {
			continue
		}
		switch i {
		case 0:
			terms = append(terms, "1")
		case 1:
			terms = append(terms, "x")
		default:
			terms = append(terms, fmt.Sprintf("x^%d", i))
		}
	}
	return strings.Join(terms, "+")
}
