// Package stats holds the small numeric helpers the experiment harness
// shares: effective-bits conversion, chi-square uniformity testing and
// binomial confidence intervals.
package stats

import "math"

// EffectiveBits converts a miss rate into the width of the uniform-data
// CRC that would miss at the same rate: a check that misses fraction r
// of errors behaves like a −log2(r)-bit check.  This is how §7 arrives
// at "the 16-bit TCP checksum performed about as well as a 10-bit CRC".
// A zero rate returns +Inf.
func EffectiveBits(missRate float64) float64 {
	if missRate <= 0 {
		return math.Inf(1)
	}
	return -math.Log2(missRate)
}

// UniformMissRate is the expected miss rate of a w-bit check over
// uniformly distributed data: 2^-w.
func UniformMissRate(bits int) float64 {
	return math.Ldexp(1, -bits)
}

// ChiSquareUniform returns the chi-square statistic of counts against a
// uniform expectation (degrees of freedom = len(counts)−1).
func ChiSquareUniform(counts []uint64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(counts) == 0 {
		return 0
	}
	exp := float64(total) / float64(len(counts))
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	return chi2
}

// WilsonInterval returns the 95% Wilson score interval for a binomial
// proportion with k successes in n trials — used when comparing small
// miss counts between configurations.
func WilsonInterval(k, n uint64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// ShannonEntropy returns the entropy in bits per symbol of the given
// count histogram — the §1 motivation quantified: English text runs
// ≈4.5 bits/byte, compiled binaries ≈2–6, LZW output ≈8.
func ShannonEntropy(counts []uint64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
