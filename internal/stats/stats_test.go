package stats

import (
	"math"
	"testing"
)

func TestEffectiveBits(t *testing.T) {
	if got := EffectiveBits(1.0 / 1024); math.Abs(got-10) > 1e-9 {
		t.Errorf("EffectiveBits(2^-10) = %v", got)
	}
	if got := EffectiveBits(1.0 / 65536); math.Abs(got-16) > 1e-9 {
		t.Errorf("EffectiveBits(2^-16) = %v", got)
	}
	if !math.IsInf(EffectiveBits(0), 1) {
		t.Error("EffectiveBits(0) should be +Inf")
	}
	// The paper's headline: a miss rate of ~0.1% is a ~10-bit check.
	if got := EffectiveBits(0.001); got < 9.5 || got > 10.5 {
		t.Errorf("EffectiveBits(0.001) = %v, want ≈10", got)
	}
}

func TestUniformMissRate(t *testing.T) {
	if UniformMissRate(16) != 1.0/65536 {
		t.Error("UniformMissRate(16)")
	}
	if UniformMissRate(10) != 1.0/1024 {
		t.Error("UniformMissRate(10)")
	}
}

func TestChiSquareUniform(t *testing.T) {
	if got := ChiSquareUniform([]uint64{10, 10, 10, 10}); got != 0 {
		t.Errorf("flat counts chi2 = %v", got)
	}
	if got := ChiSquareUniform([]uint64{40, 0, 0, 0}); math.Abs(got-120) > 1e-9 {
		t.Errorf("point mass chi2 = %v, want 120", got)
	}
	if ChiSquareUniform(nil) != 0 || ChiSquareUniform([]uint64{0, 0}) != 0 {
		t.Error("degenerate inputs")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Error("no-trials interval should be [0,1]")
	}
	lo, hi = WilsonInterval(50, 100)
	if lo > 0.5 || hi < 0.5 {
		t.Errorf("interval [%v, %v] should contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("interval too wide: [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(0, 1000)
	if lo > 1e-12 || hi > 0.01 {
		t.Errorf("zero-successes interval [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(1000, 1000)
	if hi != 1 || lo < 0.99 {
		t.Errorf("all-successes interval [%v, %v]", lo, hi)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != 0.5 || Ratio(1, 0) != 0 {
		t.Error("Ratio")
	}
}

func TestShannonEntropy(t *testing.T) {
	// Uniform over 256 symbols: exactly 8 bits.
	uniform := make([]uint64, 256)
	for i := range uniform {
		uniform[i] = 7
	}
	if got := ShannonEntropy(uniform); math.Abs(got-8) > 1e-12 {
		t.Errorf("uniform entropy = %v", got)
	}
	// Point mass: zero bits.
	point := make([]uint64, 256)
	point[42] = 100
	if got := ShannonEntropy(point); got != 0 {
		t.Errorf("point-mass entropy = %v", got)
	}
	// Two equal symbols: one bit.
	two := []uint64{5, 5}
	if got := ShannonEntropy(two); math.Abs(got-1) > 1e-12 {
		t.Errorf("two-symbol entropy = %v", got)
	}
	// Degenerate inputs.
	if ShannonEntropy(nil) != 0 || ShannonEntropy([]uint64{0, 0}) != 0 {
		t.Error("empty histogram entropy should be 0")
	}
}
