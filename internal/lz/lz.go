// Package lz is a zero-steady-state-allocation streaming LZ77
// compressor/decompressor — the payload stage behind netsim's
// compression axis (the paper's Table 7 remedy, measured by injection
// instead of distributionally).
//
// The matcher is a classic hash-chain over a power-of-two ring: head[h]
// holds the most recent position whose 4-byte prefix hashed to h, and
// prev[pos&ringMask] threads earlier positions of the same bucket.  The
// ring invariant that makes the in-place reuse safe is the standard
// one: an entry prev[p&ringMask] is only overwritten by a position
// p' ≡ p (mod WindowSize), and any such p' lies at least a full window
// beyond p — so every chain step that passes the distance check reads a
// value written for exactly the position it names.  Chain walks are
// capped at maxChain candidates, so compression is O(1) amortized per
// input byte.
//
// A Compressor is built once per engine shard and Reset per file (the
// dist.Windower lifecycle): Reset clears the head table and nothing
// else, Compress appends into a caller-owned buffer, and after the
// buffers have warmed up neither side of the codec allocates.
// Compression consumes no RNG and no clock — a pure function of its
// input, so netsim's per-trial seed derivation is untouched.
//
// # Token format
//
// The byte stream is self-contained and self-terminating:
//
//	stream  := uvarint(rawLen) token*
//	token   := litrun | match
//	litrun  := byte(n-1)                 n literal bytes      (n in 1..128, top bit 0)
//	match   := byte(0x80|(len-MinMatch)) lo hi                (len in 4..131)
//
// A match copies len bytes from distance d = 1 + lo + 256·hi back in
// the produced output (d ≤ WindowSize; d < len copies overlap, RLE
// style).  rawLen up front lets the decompressor size its output
// without trusting the token stream, and makes truncation detectable:
// a valid stream produces exactly rawLen bytes and ends on a token
// boundary.
//
// The token bytes (everything after the uvarint header) are XORed with
// a fixed position-keyed keystream — the stand-in for the
// entropy-coding stage of real compressed formats.  Without it the
// matcher's output is itself periodic where the input is: a megabyte of
// zeros encodes as thousands of identical 3-byte match tokens, and that
// repeating pattern recreates exactly the ones-complement cancellations
// the compression stage exists to remove.  Whitening leaves sizes,
// purity and determinism untouched (the pad depends only on byte
// position) but makes the wire image near-uniform, which is the
// property the Table 7 measurement needs.
package lz

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	// WindowBits sizes the match window; distances are at most
	// WindowSize and fit the 2-byte match encoding exactly.
	WindowBits = 16
	// WindowSize is the maximum match distance and the ring modulus.
	WindowSize = 1 << WindowBits

	// MinMatch is the shortest encodable match.  Below it a copy token
	// (3 bytes) cannot beat emitting the bytes literally.
	MinMatch = 4
	// MaxMatch is the longest encodable match (MinMatch + 127).
	MaxMatch = MinMatch + 127

	maxLitRun = 128 // literal-run tokens carry 1..128 bytes

	hashBits = 15
	hashLen  = 1 << hashBits
	ringMask = WindowSize - 1

	// maxChain bounds the candidates examined per position — the O(1)
	// amortized guarantee.  64 is deep enough that the corpus's long
	// zero runs still collapse to back-to-back max-length matches.
	maxChain = 64
)

// hash4 mixes a 4-byte little-endian load into hashBits (Knuth
// multiplicative hashing; the constant is 2654435761, the golden-ratio
// prime for 32 bits).
func hash4(v uint32) uint32 {
	return (v * 2654435761) >> (32 - hashBits)
}

// pad64 is the whitening keystream: the splitmix64 finalizer over the
// 8-byte block index, so pad bytes are statistically uniform yet a pure
// function of position.
func pad64(block uint64) uint64 {
	z := (block + 0x9E3779B97F4A7C15) * 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// whiten XORs b in place with the keystream, b[0] taken as token-stream
// position 0.  Self-inverse.
func whiten(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		binary.LittleEndian.PutUint64(b[i:], binary.LittleEndian.Uint64(b[i:])^pad64(uint64(i>>3)))
	}
	for ; i < len(b); i++ {
		b[i] ^= byte(pad64(uint64(i>>3)) >> (8 * (i & 7)))
	}
}

// unwhitener streams the same keystream byte-at-a-time for the
// decompressor, caching the current 8-byte block.
type unwhitener struct {
	block uint64
	key   uint64
	valid bool
}

func (u *unwhitener) at(p int) byte {
	blk := uint64(p >> 3)
	if !u.valid || blk != u.block {
		u.block, u.key, u.valid = blk, pad64(blk), true
	}
	return byte(u.key >> (8 * (p & 7)))
}

// MaxCompressedLen bounds Compress's output for an n-byte input: the
// uvarint header plus worst-case all-literal framing (one control byte
// per 128 literals).  Sizing dst to this up front makes Compress a
// zero-allocation call.
func MaxCompressedLen(n int) int {
	return binary.MaxVarintLen64 + n + (n+maxLitRun-1)/maxLitRun + 1
}

// Compressor is a reusable LZ77 encoder.  The zero value is NOT ready;
// use NewCompressor.  Not safe for concurrent use — netsim runs one per
// engine shard.
type Compressor struct {
	head [hashLen]int32    // position+1 of the newest occupant of each bucket (0 = empty)
	prev [WindowSize]int32 // ring: prev[p&ringMask] = position+1 preceding p in p's bucket
}

// NewCompressor returns a ready Compressor.  The table memory (~384 KiB)
// is the whole footprint; Compress itself allocates only when dst runs
// out of capacity.
func NewCompressor() *Compressor {
	c := &Compressor{}
	c.Reset()
	return c
}

// Reset discards all match state so the Compressor can take the next
// file.  Only the head table needs clearing: chains are rooted there,
// so stale prev entries are unreachable until overwritten.
func (c *Compressor) Reset() {
	clear(c.head[:])
}

// insert records position pos (whose 4-byte prefix is v) in the chain.
func (c *Compressor) insert(pos int, v uint32) {
	h := hash4(v)
	c.prev[pos&ringMask] = c.head[h]
	c.head[h] = int32(pos + 1)
}

// matchLen extends a match at (src[cand:], src[pos:]) up to max bytes.
func matchLen(src []byte, cand, pos, max int) int {
	n := 0
	for n < max && src[cand+n] == src[pos+n] {
		n++
	}
	return n
}

// Compress appends the compressed form of src to dst and returns the
// extended buffer.  Call Reset first when switching to unrelated input;
// Compress always encodes src as one self-contained stream (matches
// never reach before src[0]).
func (c *Compressor) Compress(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	tokenStart := len(dst)
	litStart := 0 // first literal not yet flushed

	flushLits := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > maxLitRun {
				n = maxLitRun
			}
			dst = append(dst, byte(n-1))
			dst = append(dst, src[litStart:litStart+n]...)
			litStart += n
		}
	}

	pos := 0
	for pos+MinMatch <= len(src) {
		v := binary.LittleEndian.Uint32(src[pos:])
		h := hash4(v)
		bestLen, bestDist := 0, 0
		limit := len(src) - pos
		if limit > MaxMatch {
			limit = MaxMatch
		}
		// cand < pos also shields a Compress issued without Reset (stale
		// chains naming positions past pos): such entries are skipped
		// rather than read out of bounds.
		cand := int(c.head[h]) - 1
		for chain := 0; chain < maxChain && cand >= 0 && cand < pos && pos-cand <= WindowSize; chain++ {
			if src[cand+bestLen] == src[pos+bestLen] { // cheap reject before the full walk
				if n := matchLen(src, cand, pos, limit); n > bestLen {
					bestLen, bestDist = n, pos-cand
					if n == limit {
						break
					}
				}
			}
			cand = int(c.prev[cand&ringMask]) - 1
		}
		if bestLen < MinMatch {
			c.insert(pos, v)
			pos++
			continue
		}
		flushLits(pos)
		dst = append(dst, byte(0x80|(bestLen-MinMatch)), byte(bestDist-1), byte((bestDist-1)>>8))
		// Index every covered position (stopping where a 4-byte load
		// would run past the end) so later matches can land mid-run.
		end := pos + bestLen
		for ; pos < end && pos+MinMatch <= len(src); pos++ {
			c.insert(pos, binary.LittleEndian.Uint32(src[pos:]))
		}
		pos = end
		litStart = end
	}
	flushLits(len(src))
	whiten(dst[tokenStart:])
	return dst
}

// Decompression errors.  ErrCorrupt covers every malformed-stream case:
// truncated header or token, a distance reaching before the output
// start, or a token stream whose production disagrees with the declared
// length.
var ErrCorrupt = errors.New("lz: corrupt or truncated stream")

// DecompressedLen reads the declared raw length without decoding the
// token stream.
func DecompressedLen(src []byte) (int, error) {
	n, _, err := header(src)
	return n, err
}

// header decodes the uvarint length prefix, returning the declared
// length and the bytes it consumed.
func header(src []byte) (n, used int, err error) {
	v, used := binary.Uvarint(src)
	if used <= 0 || v > 1<<40 {
		return 0, 0, ErrCorrupt
	}
	return int(v), used, nil
}

// Decompress appends the decompressed form of src to dst and returns
// the extended buffer.  On any malformed input it returns dst truncated
// back to its original length and a wrapped ErrCorrupt — it never
// panics, and it never allocates beyond what the declared length and
// the token stream itself can justify: output is grown as produced, and
// production is capped at the declared rawLen, itself at most
// MaxMatch/3 × len(src).
func Decompress(dst, src []byte) ([]byte, error) {
	mark := len(dst)
	rawLen, used, err := header(src)
	if err != nil {
		return dst, fmt.Errorf("%w: bad length header", ErrCorrupt)
	}
	ts := src[used:]

	// A token stream of s bytes can produce at most ceil(s/3)·MaxMatch
	// bytes; a declared length beyond that cannot be met and is rejected
	// before any growth, so a corrupt header cannot force a huge
	// allocation.
	if maxProduce := (len(ts)/3 + 1) * MaxMatch; rawLen > maxProduce {
		return dst, fmt.Errorf("%w: declared %d bytes exceeds the %d-byte token-stream bound", ErrCorrupt, rawLen, maxProduce)
	}

	var u unwhitener
	p := 0
	for p < len(ts) {
		ctl := ts[p] ^ u.at(p)
		p++
		if ctl < 0x80 { // literal run
			n := int(ctl) + 1
			if n > len(ts)-p || len(dst)-mark+n > rawLen {
				return dst[:mark], fmt.Errorf("%w: literal run of %d bytes", ErrCorrupt, n)
			}
			for j := 0; j < n; j++ {
				dst = append(dst, ts[p+j]^u.at(p+j))
			}
			p += n
			continue
		}
		if len(ts)-p < 2 {
			return dst[:mark], fmt.Errorf("%w: truncated match token", ErrCorrupt)
		}
		length := int(ctl&0x7F) + MinMatch
		dist := 1 + int(ts[p]^u.at(p)) + int(ts[p+1]^u.at(p+1))<<8
		p += 2
		if dist > len(dst)-mark {
			return dst[:mark], fmt.Errorf("%w: distance %d reaches before the stream start", ErrCorrupt, dist)
		}
		if len(dst)-mark+length > rawLen {
			return dst[:mark], fmt.Errorf("%w: match overruns the declared length", ErrCorrupt)
		}
		// Byte-at-a-time forward copy: overlapping (dist < length)
		// matches replicate, the RLE degenerate case included.
		from := len(dst) - dist
		for i := 0; i < length; i++ {
			dst = append(dst, dst[from+i])
		}
	}
	if len(dst)-mark != rawLen {
		return dst[:mark], fmt.Errorf("%w: produced %d of %d declared bytes", ErrCorrupt, len(dst)-mark, rawLen)
	}
	return dst, nil
}
