package lz

import (
	"bytes"
	"testing"

	"realsum/internal/corpus"
)

// FuzzLZRoundTrip drives the codec three ways per input:
//
//  1. compress→decompress must be the identity for arbitrary data;
//  2. the decompressor must never panic on the input treated as a raw
//     token stream, and on success must honor the declared length;
//  3. every truncation of the valid compressed form must be rejected
//     (a shorter stream cannot produce the declared byte count), again
//     without panicking or growing dst past the declaration.
//
// The f.Add seeds span the synthetic corpus populations (checked-in
// counterparts live in testdata/fuzz/FuzzLZRoundTrip), so the fuzzer
// starts from the byte shapes netsim actually compresses — zero runs,
// 0x00/0xFF alternation, English text, near-uniform LZW output.
func FuzzLZRoundTrip(f *testing.F) {
	for _, ft := range []corpus.FileType{
		corpus.EnglishText, corpus.GmonOut, corpus.WordProcessor,
		corpus.PBMImage, corpus.Compressed, corpus.UniformRandom,
	} {
		f.Add(corpus.NewFileSpec(ft, 600, 5).Generate(), uint16(0))
	}
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0x80, 0x00, 0x00}, uint16(1))
	f.Add(bytes.Repeat([]byte{0}, 300), uint16(7))

	c := NewCompressor()
	f.Fuzz(func(t *testing.T, data []byte, cut uint16) {
		// 1. Identity.
		c.Reset()
		comp := c.Compress(nil, data)
		if len(comp) > MaxCompressedLen(len(data)) {
			t.Fatalf("compressed %d bytes to %d, beyond MaxCompressedLen %d",
				len(data), len(comp), MaxCompressedLen(len(data)))
		}
		out, err := Decompress(nil, comp)
		if err != nil {
			t.Fatalf("decompress of own output: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed %d bytes", len(data))
		}

		// 2. Arbitrary bytes as a token stream: any verdict, no panic,
		// and an accepted stream must produce exactly its declared length.
		if got, err := Decompress(nil, data); err == nil {
			want, _ := DecompressedLen(data)
			if len(got) != want {
				t.Fatalf("accepted stream produced %d bytes, declared %d", len(got), want)
			}
		}

		// 3. Truncations of a valid stream must all be rejected.
		if len(comp) > 0 {
			k := int(cut) % len(comp)
			if _, err := Decompress(nil, comp[:k]); err == nil {
				t.Fatalf("truncation at %d of %d accepted", k, len(comp))
			}
		}
	})
}
