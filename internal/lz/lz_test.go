package lz

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"realsum/internal/corpus"
)

// roundTrip compresses data with c (Reset first) and decompresses the
// result, failing the test on any mismatch.  Returns the compressed
// size.
func roundTrip(t *testing.T, c *Compressor, data []byte) int {
	t.Helper()
	c.Reset()
	comp := c.Compress(nil, data)
	if comp == nil {
		t.Fatal("Compress returned nil")
	}
	if n, err := DecompressedLen(comp); err != nil || n != len(data) {
		t.Fatalf("DecompressedLen = %d, %v, want %d", n, err, len(data))
	}
	out, err := Decompress(nil, comp)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatalf("round trip of %d bytes produced %d differing bytes", len(data), len(out))
	}
	return len(comp)
}

// TestRoundTripCorpusOracle is the differential oracle the tentpole
// demands: every synthetic file population the corpus generates —
// including the §5.5 pathologies whose structure LZ exploits hardest —
// must round-trip byte-identically, at several sizes, through one
// Reset-reused Compressor.
func TestRoundTripCorpusOracle(t *testing.T) {
	c := NewCompressor()
	for _, ft := range corpus.AllFileTypes() {
		for _, size := range []int{0, 1, 3, 47, 256, 4096, 70000} {
			data := corpus.NewFileSpec(ft, size, 0xC0FFEE^uint64(size)).Generate()
			n := roundTrip(t, c, data)
			if size >= 4096 {
				t.Logf("%s/%d: %d -> %d bytes (%.1f%%)", ft, size, len(data), n, 100*float64(n)/float64(len(data)))
			}
		}
	}
}

// TestRoundTripStructuredInputs covers the token-format corners:
// all-zero (RLE via overlapping matches), alternating runs, strides
// longer than a literal run, inputs shorter than MinMatch, and matches
// at exactly the window distance.
func TestRoundTripStructuredInputs(t *testing.T) {
	c := NewCompressor()
	period := make([]byte, 3*WindowSize)
	for i := range period {
		period[i] = byte(i / 97)
	}
	winEdge := make([]byte, 2*WindowSize+64)
	copy(winEdge, "edge-marker-0123")
	copy(winEdge[WindowSize:], "edge-marker-0123") // match at distance exactly WindowSize
	cases := [][]byte{
		nil,
		{},
		{0x42},
		[]byte("abc"),
		[]byte("abcd"),
		bytes.Repeat([]byte{0}, 100000),
		bytes.Repeat([]byte{0xFF, 0x00}, 5000),
		bytes.Repeat([]byte("the quick brown fox "), 400),
		period,
		winEdge,
	}
	for i, data := range cases {
		n := roundTrip(t, c, data)
		if len(data) >= 1000 && n >= len(data) {
			t.Errorf("case %d: highly repetitive %d-byte input did not compress (%d bytes out)", i, len(data), n)
		}
	}
}

// TestRoundTripRandomLengths fuzzes sizes and content classes with a
// deterministic RNG — uniform bytes (incompressible), low-entropy
// bytes, and zero-dominated bytes.
func TestRoundTripRandomLengths(t *testing.T) {
	c := NewCompressor()
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 200; i++ {
		n := rng.IntN(20000)
		data := make([]byte, n)
		switch i % 3 {
		case 0:
			for j := range data {
				data[j] = byte(rng.Uint64())
			}
		case 1:
			for j := range data {
				data[j] = byte(rng.IntN(4))
			}
		case 2:
			for j := range data {
				if rng.IntN(10) == 0 {
					data[j] = byte(rng.Uint64())
				}
			}
		}
		roundTrip(t, c, data)
	}
}

// TestCompressionRatios pins the qualitative Table 7 premise the netsim
// stage depends on: real-data shapes compress hard, uniform random does
// not, and the worst-case expansion stays within MaxCompressedLen.
func TestCompressionRatios(t *testing.T) {
	c := NewCompressor()
	zero := corpus.NewFileSpec(corpus.GmonOut, 32768, 1).Generate()
	c.Reset()
	nz := len(c.Compress(nil, zero))
	if r := float64(nz) / float64(len(zero)); r > 0.25 {
		t.Errorf("gmon.out profile compressed to %.1f%%, want well under 25%%", 100*r)
	}
	uni := corpus.NewFileSpec(corpus.UniformRandom, 32768, 1).Generate()
	c.Reset()
	nu := len(c.Compress(nil, uni))
	if nu > MaxCompressedLen(len(uni)) {
		t.Errorf("uniform random expanded to %d bytes, beyond MaxCompressedLen %d", nu, MaxCompressedLen(len(uni)))
	}
	if nu < len(uni)*99/100 {
		t.Errorf("uniform random 'compressed' to %d of %d bytes; the ratio floor is wrong", nu, len(uni))
	}
}

// TestWhitenedStreamNearUniform pins the wire-image property the
// netsim compression axis rests on: even for the degenerate input — a
// long zero run, which the matcher encodes as thousands of identical
// match tokens — the whitened stream has no dominant byte value and no
// short periodicity, so injected faults hit unstructured bytes.
func TestWhitenedStreamNearUniform(t *testing.T) {
	c := NewCompressor()
	comp := c.Compress(nil, make([]byte, 1<<20))
	if len(comp) < 4096 {
		t.Fatalf("zero-run stream only %d bytes; histogram too small to judge", len(comp))
	}
	var hist [256]int
	for _, b := range comp {
		hist[b]++
	}
	limit := 4 * len(comp) / 256 // 4x the uniform expectation
	for v, n := range hist {
		if n > limit {
			t.Errorf("byte 0x%02X appears %d of %d times (uniform expectation %d); stream is structured",
				v, n, len(comp), len(comp)/256)
		}
	}
	// No 3-byte periodicity: the unwhitened encoding of a zero run is
	// the same token every 3 bytes, so comp[i] == comp[i+3] for nearly
	// all i.  Whitened, matches at lag 3 must sit near the 1/256 chance.
	same := 0
	for i := 0; i+3 < len(comp); i++ {
		if comp[i] == comp[i+3] {
			same++
		}
	}
	if same > len(comp)/32 {
		t.Errorf("lag-3 byte matches %d of %d (chance ~%d); the token periodicity survived whitening",
			same, len(comp), len(comp)/256)
	}
}

// TestDecompressRejectsCorrupt walks the malformed-stream cases: the
// decompressor must return ErrCorrupt (wrapped), leave dst at its
// original length, and never panic or produce more than the declared
// length.
func TestDecompressRejectsCorrupt(t *testing.T) {
	c := NewCompressor()
	data := bytes.Repeat([]byte("corrupt-stream-seed "), 300)
	comp := c.Compress(nil, data)

	cases := map[string][]byte{
		"empty":            {},
		"header-only":      comp[:1],
		"bad-uvarint":      bytes.Repeat([]byte{0x80}, 12),
		"huge-declared":    append([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, 0x00, 0x41),
		"truncated-lits":   append([]byte{4}, 0x7F), // declares 4 raw bytes, 128-literal run, none present
		"truncated-match":  append([]byte{8}, 0x80),
		"distance-too-far": append([]byte{8}, 0x83, 0xFF, 0xFF),
		"short-production": comp[:len(comp)-1],
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			prefix := []byte("sticky")
			out, err := Decompress(prefix, in)
			if err == nil {
				t.Fatalf("Decompress accepted %q", name)
			}
			if !bytes.Equal(out, prefix) {
				t.Errorf("dst not truncated back on error: %d bytes (want the 6-byte prefix)", len(out))
			}
		})
	}

	// Every truncation point of a real stream must be rejected (or, for
	// the full stream, accepted) without panicking.
	for cut := 0; cut < len(comp); cut++ {
		if _, err := Decompress(nil, comp[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(comp))
		}
	}
}

// TestAppendSemantics: both directions append to their dst and leave
// existing bytes alone — the buffer-reuse contract netsim relies on.
func TestAppendSemantics(t *testing.T) {
	c := NewCompressor()
	data := []byte("appended payload, appended payload")
	comp := c.Compress([]byte("HDR"), data)
	if !bytes.HasPrefix(comp, []byte("HDR")) {
		t.Fatal("Compress overwrote dst prefix")
	}
	out, err := Decompress([]byte("PFX"), comp[3:])
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "PFX"+string(data) {
		t.Fatalf("Decompress append produced %q", out)
	}
}

// TestResetIsolation: compressing file B after file A must yield the
// same bytes as compressing B on a fresh Compressor — Reset severs
// every chain, so no match can refer across files.
func TestResetIsolation(t *testing.T) {
	a := bytes.Repeat([]byte("file A contents "), 200)
	b := bytes.Repeat([]byte("file B differs! "), 200)
	shared := NewCompressor()
	shared.Reset()
	shared.Compress(nil, a)
	shared.Reset()
	got := shared.Compress(nil, b)
	want := NewCompressor().Compress(nil, b)
	if !bytes.Equal(got, want) {
		t.Error("compressed form of B depends on having compressed A first")
	}
}

// TestZeroSteadyStateAllocs guards the shard lifecycle: with warmed
// buffers, Reset+Compress and Decompress allocate nothing.
func TestZeroSteadyStateAllocs(t *testing.T) {
	c := NewCompressor()
	data := corpus.NewFileSpec(corpus.CSource, 16384, 3).Generate()
	compBuf := make([]byte, 0, MaxCompressedLen(len(data)))
	rawBuf := make([]byte, 0, len(data))

	if allocs := testing.AllocsPerRun(20, func() {
		c.Reset()
		compBuf = c.Compress(compBuf[:0], data)
	}); allocs != 0 {
		t.Errorf("Compress: %v allocs per file, want 0", allocs)
	}
	comp := c.Compress(compBuf[:0], data)
	if allocs := testing.AllocsPerRun(20, func() {
		var err error
		rawBuf, err = Decompress(rawBuf[:0], comp)
		if err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Decompress: %v allocs per file, want 0", allocs)
	}
}
