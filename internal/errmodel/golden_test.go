package errmodel

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"testing"
)

// goldenSignatures pins every model's exact output on a fixed input and
// seed: an FNV-64a digest of the corrupted buffer.  The netsim channels
// derive their fault patterns from these models, so any change to a
// model's RNG consumption or damage pattern silently reshapes every
// simulated channel — this table makes such a change loud.  To update
// after an intentional change, run the test and copy the printed
// digests.
var goldenSignatures = []struct {
	model Model
	want  string
}{
	{Burst{Bits: 17}, "00e877b87a10a9a8"},
	{SolidBurst{Bits: 32}, "93fbd30b209f8bf2"},
	{BitFlips{K: 5}, "12bd442c205166ee"},
	{Garbage{Bytes: 6}, "2333dd2aec1cd493"},
	{Reorder{Unit: 16}, "3792c33131420d92"},
	{Misinsert{Unit: 16}, "b6273c504f825493"},
}

func TestGoldenSignatures(t *testing.T) {
	data := testData(160)
	for _, g := range goldenSignatures {
		rng := rand.New(rand.NewPCG(0x601D, 0xE44))
		out := g.model.Corrupt(rng, data)
		h := fnv.New64a()
		h.Write(out)
		got := fmt.Sprintf("%016x", h.Sum64())
		if got != g.want {
			t.Errorf("%s: signature %s, want %s (update goldenSignatures only for an intentional model change)",
				g.model.Name(), got, g.want)
		}
	}
}

// TestInPlaceMatchesCorrupt pins the InPlacer contract: CorruptInPlace
// must consume the RNG exactly as Corrupt does and produce identical
// damage, since netsim's zero-allocation hot path substitutes one for
// the other.
func TestInPlaceMatchesCorrupt(t *testing.T) {
	data := testData(160)
	for _, m := range []InPlacer{
		Burst{Bits: 17}, SolidBurst{Bits: 32}, BitFlips{K: 5}, BitFlips{K: 70},
		Garbage{Bytes: 6}, Reorder{Unit: 16}, Misinsert{Unit: 16},
	} {
		for seed := uint64(0); seed < 20; seed++ {
			a := m.Corrupt(rand.New(rand.NewPCG(seed, 1)), data)
			b := append([]byte(nil), data...)
			m.CorruptInPlace(rand.New(rand.NewPCG(seed, 1)), b)
			if !bytes.Equal(a, b) {
				t.Fatalf("%s seed %d: Corrupt and CorruptInPlace disagree", m.Name(), seed)
			}
		}
	}
}

// TestBurstFlipDistribution checks the burst-length statistics: the two
// endpoint bits always flip and each of the Bits-2 interior bits flips
// with probability ½, so the mean flip count over many trials must be
// 2 + (Bits-2)/2 within binomial tolerance.
func TestBurstFlipDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	data := make([]byte, 64)
	for _, bits := range []int{2, 8, 33, 64} {
		const trials = 4000
		total := 0
		for i := 0; i < trials; i++ {
			out := Burst{Bits: bits}.Corrupt(rng, data)
			for _, b := range out {
				for ; b != 0; b &= b - 1 {
					total++
				}
			}
		}
		mean := float64(total) / trials
		want := 2 + float64(bits-2)/2
		// Binomial sd per trial is sqrt((bits-2))/2; allow 5 sd of the mean.
		tol := 5*math.Sqrt(math.Max(float64(bits-2), 1)/4)/math.Sqrt(trials) + 1e-9
		if math.Abs(mean-want) > tol {
			t.Errorf("Burst{%d}: mean flips %.3f, want %.3f ± %.3f", bits, mean, want, tol)
		}
	}
}

// TestSolidBurstDistribution: the flipped region is always exactly Bits
// contiguous bits, and its start offset covers the full admissible
// range.
func TestSolidBurstDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	data := make([]byte, 16)
	const bits = 21
	starts := map[int]bool{}
	for i := 0; i < 3000; i++ {
		out := SolidBurst{Bits: bits}.Corrupt(rng, data)
		first, last, count := -1, -1, 0
		for j := 0; j < len(out)*8; j++ {
			if out[j/8]&(0x80>>uint(j%8)) != 0 {
				if first == -1 {
					first = j
				}
				last = j
				count++
			}
		}
		if count != bits || last-first+1 != bits {
			t.Fatalf("solid burst flipped %d bits spanning %d, want exactly %d contiguous", count, last-first+1, bits)
		}
		starts[first] = true
	}
	if want := len(data)*8 - bits + 1; len(starts) != want {
		t.Errorf("solid burst starts covered %d offsets of %d admissible", len(starts), want)
	}
}

// TestReorderIsAdjacentSwap: the output must be the input with exactly
// one adjacent pair of differing records swapped; a stream of identical
// records must pass unchanged.
func TestReorderIsAdjacentSwap(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	const unit = 16
	data := testData(unit*9 + 5) // trailing partial record must never move
	for i := 0; i < 500; i++ {
		out := Reorder{Unit: unit}.Corrupt(rng, data)
		if !bytes.Equal(out[unit*9:], data[unit*9:]) {
			t.Fatal("reorder moved trailing partial-record bytes")
		}
		swapped := -1
		for r := 0; r < 8; r++ {
			a, b := data[r*unit:(r+1)*unit], data[(r+1)*unit:(r+2)*unit]
			oa, ob := out[r*unit:(r+1)*unit], out[(r+1)*unit:(r+2)*unit]
			if bytes.Equal(oa, b) && bytes.Equal(ob, a) && !bytes.Equal(a, b) {
				if swapped != -1 {
					t.Fatal("reorder swapped more than one pair")
				}
				swapped = r
				r++ // the pair occupies two record slots
			}
		}
		if swapped == -1 {
			t.Fatal("reorder swapped nothing on a stream of differing records")
		}
	}

	same := bytes.Repeat([]byte{0xAB}, unit*6)
	out := Reorder{Unit: unit}.Corrupt(rng, same)
	if !bytes.Equal(out, same) {
		t.Error("reorder changed a stream of identical records")
	}
}

// TestMisinsertIsRecordCopy: the output must differ from the input in
// exactly one record, whose new bytes equal some other input record.
func TestMisinsertIsRecordCopy(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 14))
	const unit = 16
	data := testData(unit * 8)
	for i := 0; i < 500; i++ {
		out := Misinsert{Unit: unit}.Corrupt(rng, data)
		changed := -1
		for r := 0; r < 8; r++ {
			if !bytes.Equal(out[r*unit:(r+1)*unit], data[r*unit:(r+1)*unit]) {
				if changed != -1 {
					t.Fatal("misinsert changed more than one record")
				}
				changed = r
			}
		}
		if changed == -1 {
			t.Fatal("misinsert changed nothing on a stream of differing records")
		}
		repl := out[changed*unit : (changed+1)*unit]
		found := false
		for r := 0; r < 8; r++ {
			if r != changed && bytes.Equal(repl, data[r*unit:(r+1)*unit]) {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("misinserted record is not a copy of any other input record")
		}
	}
}
