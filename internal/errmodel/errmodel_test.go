package errmodel

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"realsum/internal/crc"
	"realsum/internal/fletcher"
)

func testData(n int) []byte {
	d := make([]byte, n)
	rng := rand.New(rand.NewPCG(99, 99))
	for i := range d {
		d[i] = byte(rng.Uint32())
	}
	return d
}

func TestModelsDoNotMutateOriginal(t *testing.T) {
	data := testData(64)
	ref := append([]byte(nil), data...)
	rng := rand.New(rand.NewPCG(1, 1))
	for _, m := range []Model{
		Burst{Bits: 9}, BitFlips{K: 3}, Garbage{Bytes: 8},
		SolidBurst{Bits: 9}, Reorder{Unit: 8}, Misinsert{Unit: 8},
	} {
		out := m.Corrupt(rng, data)
		if !bytes.Equal(data, ref) {
			t.Fatalf("%s mutated its input", m.Name())
		}
		if bytes.Equal(out, data) {
			t.Fatalf("%s returned unchanged data", m.Name())
		}
	}
}

func TestBurstSpan(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	data := make([]byte, 32)
	for trial := 0; trial < 200; trial++ {
		bits := 1 + rng.IntN(64)
		out := Burst{Bits: bits}.Corrupt(rng, data)
		first, last := -1, -1
		for i := 0; i < len(out)*8; i++ {
			if out[i/8]&(0x80>>uint(i%8)) != 0 {
				if first == -1 {
					first = i
				}
				last = i
			}
		}
		if first == -1 {
			t.Fatal("burst flipped nothing")
		}
		if last-first+1 > bits {
			t.Fatalf("burst of %d bits spans %d", bits, last-first+1)
		}
		if bits > 1 && last-first+1 != bits {
			t.Fatalf("burst endpoints not pinned: span %d, want %d", last-first+1, bits)
		}
	}
}

func TestBitFlipsCount(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	data := make([]byte, 32)
	for _, k := range []int{1, 2, 7, 33} {
		out := BitFlips{K: k}.Corrupt(rng, data)
		flipped := 0
		for _, b := range out {
			for ; b != 0; b &= b - 1 {
				flipped++
			}
		}
		if flipped != k {
			t.Errorf("K=%d flipped %d bits", k, flipped)
		}
	}
}

func TestGarbageStaysInSpan(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	data := testData(64)
	for trial := 0; trial < 100; trial++ {
		out := Garbage{Bytes: 4}.Corrupt(rng, data)
		diffs := []int{}
		for i := range out {
			if out[i] != data[i] {
				diffs = append(diffs, i)
			}
		}
		if len(diffs) == 0 {
			t.Fatal("garbage changed nothing")
		}
		if diffs[len(diffs)-1]-diffs[0] >= 4 {
			t.Fatalf("garbage span too wide: %v", diffs)
		}
	}
}

func TestTCPCatchesShortBursts(t *testing.T) {
	// §2: the TCP checksum catches any burst of 15 bits or less.
	data := testData(256)
	for bits := 1; bits <= 15; bits++ {
		if missed := Measure(TCPCheck(), Burst{Bits: bits}, data, 2000, uint64(bits)); missed != 0 {
			t.Errorf("TCP checksum missed %d bursts of %d bits", missed, bits)
		}
	}
}

func TestCRCCatchesBurstsUpToWidth(t *testing.T) {
	data := testData(256)
	for _, p := range []crc.Params{crc.CRC10, crc.CRC16CCITT, crc.CRC32} {
		for _, bits := range []int{1, 2, int(p.Width) / 2, int(p.Width)} {
			if bits < 1 {
				continue
			}
			if missed := Measure(CRCCheck(p), Burst{Bits: bits}, data, 1000, uint64(bits)); missed != 0 {
				t.Errorf("%s missed %d bursts of %d bits", p.Name, missed, bits)
			}
		}
	}
}

func TestGarbageMissRateScalesWithWidth(t *testing.T) {
	// Random substitutions on uniform data are missed at ≈2^-w: CRC-10
	// should show misses in 100k trials (expected ≈98), CRC-32 none.
	data := testData(512)
	missed10 := Measure(CRCCheck(crc.CRC10), Garbage{Bytes: 16}, data, 100_000, 5)
	if missed10 < 40 || missed10 > 200 {
		t.Errorf("CRC-10 missed %d of 100k garbage substitutions, want ≈98", missed10)
	}
	missed32 := Measure(CRCCheck(crc.CRC32), Garbage{Bytes: 16}, data, 100_000, 6)
	if missed32 != 0 {
		t.Errorf("CRC-32 missed %d garbage substitutions", missed32)
	}
	// 16-bit checks: expected ≈1.5 per 100k.
	missedTCP := Measure(TCPCheck(), Garbage{Bytes: 16}, data, 100_000, 7)
	if missedTCP > 15 {
		t.Errorf("TCP missed %d of 100k garbage substitutions, want ≈1.5", missedTCP)
	}
}

func TestFletcherChecksAreChecks(t *testing.T) {
	data := testData(128)
	for _, m := range []fletcher.Mod{fletcher.Mod255, fletcher.Mod256} {
		c := FletcherCheck(m)
		if c.Digest(data) == 0 && c.Digest(data[:64]) == 0 {
			t.Errorf("%s digest degenerate", c.Name)
		}
		if missed := Measure(c, Burst{Bits: 5}, data, 1000, 8); missed != 0 {
			t.Errorf("%s missed %d 5-bit bursts", c.Name, missed)
		}
	}
}

func TestMeasureDeterministic(t *testing.T) {
	data := testData(128)
	a := Measure(TCPCheck(), BitFlips{K: 4}, data, 5000, 42)
	b := Measure(TCPCheck(), BitFlips{K: 4}, data, 5000, 42)
	if a != b {
		t.Errorf("Measure not deterministic: %d vs %d", a, b)
	}
}
