// Package errmodel implements the alternative error models §7 of the
// paper discusses alongside the splice model: contiguous burst errors
// (random-interior and solid), independent bit flips, substitution of
// data by uniform garbage, and record-level misordering/misinsertion
// (the ATM cell faults, at Unit = 48).  It provides a Monte-Carlo
// harness for measuring how often a given integrity check detects each
// kind of damage, which the benchmark suite uses to confirm the
// classical guarantees (a w-bit CRC catches every burst shorter than
// w+1 bits; the TCP checksum catches every burst of 15 bits or less;
// random substitutions on uniform data are missed at ≈2^-w).
package errmodel

import (
	"bytes"
	"math/rand/v2"

	"realsum/internal/crc"
	"realsum/internal/fletcher"
	"realsum/internal/inet"
	"realsum/internal/onescomp"
)

// Model mutates a copy of data and reports what it did.  Implementations
// must leave the original untouched.
type Model interface {
	// Corrupt returns a damaged copy of data.  It must change at least
	// one byte, except for the record-level models (Reorder, Misinsert),
	// which can only guarantee a change when the stream holds two
	// differing records.
	Corrupt(rng *rand.Rand, data []byte) []byte
	// Name identifies the model in reports.
	Name() string
}

// InPlacer is a Model that can also damage a buffer directly, without
// the copy Corrupt makes — the form zero-allocation pipelines (the
// netsim per-trial hot path) consume.  CorruptInPlace must consume rng
// exactly as Corrupt does, so both forms produce identical damage from
// identical rng state.
type InPlacer interface {
	Model
	CorruptInPlace(rng *rand.Rand, data []byte)
}

// Burst flips a contiguous run of bits: the first and last bit of the
// run are always flipped (so the burst length is exact) and interior
// bits flip with probability ½.
type Burst struct {
	// Bits is the burst length in bits (≥ 1).
	Bits int
}

// Name implements Model.
func (b Burst) Name() string { return "burst" }

// Corrupt implements Model.
func (b Burst) Corrupt(rng *rand.Rand, data []byte) []byte {
	out := append([]byte(nil), data...)
	b.CorruptInPlace(rng, out)
	return out
}

// CorruptInPlace implements InPlacer.
func (b Burst) CorruptInPlace(rng *rand.Rand, out []byte) {
	n := len(out) * 8
	if b.Bits < 1 || b.Bits > n {
		panic("errmodel: burst length out of range")
	}
	start := rng.IntN(n - b.Bits + 1)
	flip := func(bit int) { out[bit/8] ^= 0x80 >> uint(bit%8) }
	flip(start)
	if b.Bits > 1 {
		flip(start + b.Bits - 1)
		for i := 1; i < b.Bits-1; i++ {
			if rng.Uint32()&1 == 1 {
				flip(start + i)
			}
		}
	}
}

// SolidBurst inverts every bit of an exact Bits-long span at a random
// bit offset — the solid-burst channel model, where the medium inverts
// a contiguous region outright.  Solid bursts are the fault the
// ones-complement sum is classically weakest against on real data: a
// solid burst whose length is a multiple of 16 lying inside a run of
// 0x00 (or 0xFF) bytes leaves the TCP checksum unchanged, because the
// flipped span contributes exactly 0xFFFF ≡ 0 to the sum at any bit
// alignment, while any CRC of width ≥ Bits detects it unconditionally.
type SolidBurst struct {
	// Bits is the burst length in bits (≥ 1).
	Bits int
}

// Name implements Model.
func (s SolidBurst) Name() string { return "solidburst" }

// Corrupt implements Model.
func (s SolidBurst) Corrupt(rng *rand.Rand, data []byte) []byte {
	out := append([]byte(nil), data...)
	s.CorruptInPlace(rng, out)
	return out
}

// CorruptInPlace implements InPlacer.
func (s SolidBurst) CorruptInPlace(rng *rand.Rand, out []byte) {
	n := len(out) * 8
	if s.Bits < 1 || s.Bits > n {
		panic("errmodel: burst length out of range")
	}
	start := rng.IntN(n - s.Bits + 1)
	for i := start; i < start+s.Bits; i++ {
		out[i/8] ^= 0x80 >> uint(i%8)
	}
}

// BitFlips flips K distinct random bits.
type BitFlips struct {
	K int
}

// Name implements Model.
func (f BitFlips) Name() string { return "bitflips" }

// Corrupt implements Model.
func (f BitFlips) Corrupt(rng *rand.Rand, data []byte) []byte {
	out := append([]byte(nil), data...)
	f.CorruptInPlace(rng, out)
	return out
}

// inPlaceFlipMax bounds the stack-resident duplicate-tracking array of
// CorruptInPlace; larger K falls back to a map.
const inPlaceFlipMax = 64

// CorruptInPlace implements InPlacer.  It draws candidate bits exactly
// as Corrupt always has (retry on duplicates), tracking the chosen bits
// in a stack array for K ≤ 64 so the common small-K case allocates
// nothing.
func (f BitFlips) CorruptInPlace(rng *rand.Rand, out []byte) {
	n := len(out) * 8
	if f.K < 1 || f.K > n {
		panic("errmodel: flip count out of range")
	}
	if f.K > inPlaceFlipMax {
		seen := make(map[int]bool, f.K)
		for len(seen) < f.K {
			bit := rng.IntN(n)
			if seen[bit] {
				continue
			}
			seen[bit] = true
			out[bit/8] ^= 0x80 >> uint(bit%8)
		}
		return
	}
	var picked [inPlaceFlipMax]int
	count := 0
	for count < f.K {
		bit := rng.IntN(n)
		dup := false
		for i := 0; i < count; i++ {
			if picked[i] == bit {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		picked[count] = bit
		count++
		out[bit/8] ^= 0x80 >> uint(bit%8)
	}
}

// Garbage replaces a random span of Bytes bytes with uniform random
// bytes (guaranteed to differ from the original span) — §7's "data is
// replaced by garbage" model.
type Garbage struct {
	Bytes int
}

// Name implements Model.
func (g Garbage) Name() string { return "garbage" }

// Corrupt implements Model.
func (g Garbage) Corrupt(rng *rand.Rand, data []byte) []byte {
	out := append([]byte(nil), data...)
	g.CorruptInPlace(rng, out)
	return out
}

// CorruptInPlace implements InPlacer.  The change guarantee survives
// in-place operation: a retry only happens when the regenerated span
// equalled the previous one byte-for-byte, in which case the buffer
// still holds the original span.
func (g Garbage) CorruptInPlace(rng *rand.Rand, out []byte) {
	if g.Bytes < 1 || g.Bytes > len(out) {
		panic("errmodel: garbage span out of range")
	}
	start := rng.IntN(len(out) - g.Bytes + 1)
	for {
		changed := false
		for i := start; i < start+g.Bytes; i++ {
			old := out[i]
			out[i] = byte(rng.Uint32())
			if out[i] != old {
				changed = true
			}
		}
		if changed {
			return
		}
	}
}

// Reorder swaps two adjacent Unit-byte records — misordering at the
// record granularity the caller chooses (Unit = 48 models ATM cell
// payload missequencing, §7's cell misordering fault).  It scans from a
// random record for an adjacent pair that differ, so the damage is real
// whenever any two adjacent records differ; a stream of identical
// records (the one stream a reorder genuinely cannot damage) is left
// unchanged.  Trailing bytes beyond the last whole record never move.
type Reorder struct {
	// Unit is the record size in bytes (≥ 1).
	Unit int
}

// Name implements Model.
func (r Reorder) Name() string { return "reorder" }

// Corrupt implements Model.
func (r Reorder) Corrupt(rng *rand.Rand, data []byte) []byte {
	out := append([]byte(nil), data...)
	r.CorruptInPlace(rng, out)
	return out
}

// CorruptInPlace implements InPlacer.
func (r Reorder) CorruptInPlace(rng *rand.Rand, out []byte) {
	if r.Unit < 1 {
		panic("errmodel: reorder unit out of range")
	}
	n := len(out) / r.Unit
	if n < 2 {
		return
	}
	start := rng.IntN(n - 1)
	for k := 0; k < n-1; k++ {
		i := start + k
		if i >= n-1 {
			i -= n - 1
		}
		a := out[i*r.Unit : (i+1)*r.Unit]
		b := out[(i+1)*r.Unit : (i+2)*r.Unit]
		if !bytes.Equal(a, b) {
			for j := range a {
				a[j], b[j] = b[j], a[j]
			}
			return
		}
	}
}

// Misinsert overwrites one record with a copy of another — AAL5 cell
// misinsertion, where a cell from elsewhere in the stream is delivered
// in place of the right one.  The target record is uniform; the source
// is the first record (scanning from a random start) whose bytes differ
// from the target, so the damage is real whenever the stream holds two
// differing records; otherwise the data is left unchanged.
type Misinsert struct {
	// Unit is the record size in bytes (≥ 1).
	Unit int
}

// Name implements Model.
func (m Misinsert) Name() string { return "misinsert" }

// Corrupt implements Model.
func (m Misinsert) Corrupt(rng *rand.Rand, data []byte) []byte {
	out := append([]byte(nil), data...)
	m.CorruptInPlace(rng, out)
	return out
}

// CorruptInPlace implements InPlacer.
func (m Misinsert) CorruptInPlace(rng *rand.Rand, out []byte) {
	if m.Unit < 1 {
		panic("errmodel: misinsert unit out of range")
	}
	n := len(out) / m.Unit
	if n < 2 {
		return
	}
	j := rng.IntN(n)
	start := rng.IntN(n)
	dst := out[j*m.Unit : (j+1)*m.Unit]
	for k := 0; k < n; k++ {
		i := start + k
		if i >= n {
			i -= n
		}
		if i == j {
			continue
		}
		src := out[i*m.Unit : (i+1)*m.Unit]
		if !bytes.Equal(src, dst) {
			copy(dst, src)
			return
		}
	}
}

// Check is an integrity check: it digests a buffer to a comparable
// value.  An error is "missed" when the damaged buffer digests equal to
// the original.
type Check struct {
	Name   string
	Digest func(data []byte) uint64
}

// TCPCheck is the Internet checksum as a Check.
func TCPCheck() Check {
	return Check{Name: "TCP", Digest: func(d []byte) uint64 { return uint64(onescomp.Normalize(inet.Sum(d))) }}
}

// FletcherCheck returns the Fletcher checksum (mod 255 or 256) as a
// Check.
func FletcherCheck(m fletcher.Mod) Check {
	name := "F-255"
	if m == fletcher.Mod256 {
		name = "F-256"
	}
	return Check{Name: name, Digest: func(d []byte) uint64 { return uint64(m.Sum(d).Checksum16()) }}
}

// CRCCheck returns a CRC algorithm as a Check.
func CRCCheck(p crc.Params) Check {
	t := crc.New(p)
	return Check{Name: p.Name, Digest: t.Checksum}
}

// Measure runs trials rounds of: corrupt data with model, test whether
// check's digest changed.  It returns the number of undetected
// corruptions.  Deterministic for a given seed.
func Measure(check Check, model Model, data []byte, trials int, seed uint64) (missed int) {
	rng := rand.New(rand.NewPCG(seed, 0xE44))
	orig := check.Digest(data)
	for i := 0; i < trials; i++ {
		if check.Digest(model.Corrupt(rng, data)) == orig {
			missed++
		}
	}
	return missed
}
