// Package errmodel implements the alternative error models §7 of the
// paper discusses alongside the splice model: contiguous burst errors,
// independent bit flips, and substitution of data by uniform garbage.
// It provides a Monte-Carlo harness for measuring how often a given
// integrity check detects each kind of damage, which the benchmark
// suite uses to confirm the classical guarantees (a w-bit CRC catches
// every burst shorter than w+1 bits; the TCP checksum catches every
// burst of 15 bits or less; random substitutions on uniform data are
// missed at ≈2^-w).
package errmodel

import (
	"math/rand/v2"

	"realsum/internal/crc"
	"realsum/internal/fletcher"
	"realsum/internal/inet"
	"realsum/internal/onescomp"
)

// Model mutates a copy of data and reports what it did.  Implementations
// must leave the original untouched.
type Model interface {
	// Corrupt returns a damaged copy of data.  It must change at least
	// one byte.
	Corrupt(rng *rand.Rand, data []byte) []byte
	// Name identifies the model in reports.
	Name() string
}

// Burst flips a contiguous run of bits: the first and last bit of the
// run are always flipped (so the burst length is exact) and interior
// bits flip with probability ½.
type Burst struct {
	// Bits is the burst length in bits (≥ 1).
	Bits int
}

// Name implements Model.
func (b Burst) Name() string { return "burst" }

// Corrupt implements Model.
func (b Burst) Corrupt(rng *rand.Rand, data []byte) []byte {
	out := append([]byte(nil), data...)
	n := len(out) * 8
	if b.Bits < 1 || b.Bits > n {
		panic("errmodel: burst length out of range")
	}
	start := rng.IntN(n - b.Bits + 1)
	flip := func(bit int) { out[bit/8] ^= 0x80 >> uint(bit%8) }
	flip(start)
	if b.Bits > 1 {
		flip(start + b.Bits - 1)
		for i := 1; i < b.Bits-1; i++ {
			if rng.Uint32()&1 == 1 {
				flip(start + i)
			}
		}
	}
	return out
}

// BitFlips flips K distinct random bits.
type BitFlips struct {
	K int
}

// Name implements Model.
func (f BitFlips) Name() string { return "bitflips" }

// Corrupt implements Model.
func (f BitFlips) Corrupt(rng *rand.Rand, data []byte) []byte {
	out := append([]byte(nil), data...)
	n := len(out) * 8
	if f.K < 1 || f.K > n {
		panic("errmodel: flip count out of range")
	}
	seen := make(map[int]bool, f.K)
	for len(seen) < f.K {
		bit := rng.IntN(n)
		if seen[bit] {
			continue
		}
		seen[bit] = true
		out[bit/8] ^= 0x80 >> uint(bit%8)
	}
	return out
}

// Garbage replaces a random span of Bytes bytes with uniform random
// bytes (guaranteed to differ from the original span) — §7's "data is
// replaced by garbage" model.
type Garbage struct {
	Bytes int
}

// Name implements Model.
func (g Garbage) Name() string { return "garbage" }

// Corrupt implements Model.
func (g Garbage) Corrupt(rng *rand.Rand, data []byte) []byte {
	out := append([]byte(nil), data...)
	if g.Bytes < 1 || g.Bytes > len(out) {
		panic("errmodel: garbage span out of range")
	}
	start := rng.IntN(len(out) - g.Bytes + 1)
	for {
		changed := false
		for i := start; i < start+g.Bytes; i++ {
			out[i] = byte(rng.Uint32())
			if out[i] != data[i] {
				changed = true
			}
		}
		if changed {
			return out
		}
	}
}

// Check is an integrity check: it digests a buffer to a comparable
// value.  An error is "missed" when the damaged buffer digests equal to
// the original.
type Check struct {
	Name   string
	Digest func(data []byte) uint64
}

// TCPCheck is the Internet checksum as a Check.
func TCPCheck() Check {
	return Check{Name: "TCP", Digest: func(d []byte) uint64 { return uint64(onescomp.Normalize(inet.Sum(d))) }}
}

// FletcherCheck returns the Fletcher checksum (mod 255 or 256) as a
// Check.
func FletcherCheck(m fletcher.Mod) Check {
	name := "F-255"
	if m == fletcher.Mod256 {
		name = "F-256"
	}
	return Check{Name: name, Digest: func(d []byte) uint64 { return uint64(m.Sum(d).Checksum16()) }}
}

// CRCCheck returns a CRC algorithm as a Check.
func CRCCheck(p crc.Params) Check {
	t := crc.New(p)
	return Check{Name: p.Name, Digest: t.Checksum}
}

// Measure runs trials rounds of: corrupt data with model, test whether
// check's digest changed.  It returns the number of undetected
// corruptions.  Deterministic for a given seed.
func Measure(check Check, model Model, data []byte, trials int, seed uint64) (missed int) {
	rng := rand.New(rand.NewPCG(seed, 0xE44))
	orig := check.Digest(data)
	for i := 0; i < trials; i++ {
		if check.Digest(model.Corrupt(rng, data)) == orig {
			missed++
		}
	}
	return missed
}
