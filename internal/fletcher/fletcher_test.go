package fletcher

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// refSum is a transparent reference implementation: each byte weighted by
// its position from the end (last byte weight 1), reduced mod m.
func refSum(m Mod, data []byte) Pair {
	var a, b uint64
	n := uint64(len(data))
	for i, d := range data {
		a += uint64(d)
		b += (n - uint64(i)) * uint64(d)
	}
	return Pair{A: uint16(a % uint64(m)), B: uint16(b % uint64(m))}
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Uint32())
	}
	return b
}

func TestSumMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, m := range []Mod{Mod255, Mod256} {
		for trial := 0; trial < 200; trial++ {
			data := randBytes(rng, rng.IntN(2000))
			if got, want := m.Sum(data), refSum(m, data); got != want {
				t.Fatalf("mod %d, len %d: Sum = %+v, want %+v", m, len(data), got, want)
			}
		}
	}
}

func TestSumLongBufferReduction(t *testing.T) {
	// Exercise the periodic reduction path with a buffer much longer than
	// reduceEvery, worst-case bytes.
	data := make([]byte, 3*reduceEvery+17)
	for i := range data {
		data[i] = 0xFF
	}
	for _, m := range []Mod{Mod255, Mod256} {
		if got, want := m.Sum(data), refSum(m, data); got != want {
			t.Errorf("mod %d long buffer: Sum = %+v, want %+v", m, got, want)
		}
	}
}

func TestKnownVectors(t *testing.T) {
	// "abcde" under classic Fletcher-16 (mod 255, running-sum form):
	// A = 0x1F8 mod 255 = 0xF0? Compute transparently: a,b,c,d,e =
	// 97+98+99+100+101 = 495; 495 mod 255 = 240 (0xF0).
	// B = 5*97+4*98+3*99+2*100+1*101 = 485+392+297+200+101 = 1475;
	// 1475 mod 255 = 200 (0xC8).  Matches the widely published
	// Fletcher16("abcde") = 0xC8F0.
	p := Mod255.Sum([]byte("abcde"))
	if p.A != 0xF0 || p.B != 0xC8 {
		t.Errorf(`Mod255.Sum("abcde") = %+v, want A=0xF0 B=0xC8`, p)
	}
	if p.Checksum16() != 0xC8F0 {
		t.Errorf("Checksum16 = %#04x, want 0xC8F0", p.Checksum16())
	}
	p = Mod255.Sum([]byte("abcdef"))
	if p.Checksum16() != 0x2057 {
		t.Errorf(`Fletcher16("abcdef") = %#04x, want 0x2057`, p.Checksum16())
	}
	p = Mod255.Sum([]byte("abcdefgh"))
	if p.Checksum16() != 0x0627 {
		t.Errorf(`Fletcher16("abcdefgh") = %#04x, want 0x0627`, p.Checksum16())
	}
}

func TestTwoZerosMod255(t *testing.T) {
	// §5.5: under mod 255, bytes 0x00 and 0xFF are interchangeable.
	zeros := make([]byte, 48)
	mixed := make([]byte, 48)
	for i := range mixed {
		if i%3 == 0 {
			mixed[i] = 0xFF
		}
	}
	if Mod255.Sum(zeros) != (Pair{}) {
		t.Error("all-zero cell should sum to (0,0) mod 255")
	}
	if Mod255.Sum(mixed) != (Pair{}) {
		t.Error("mixed 0x00/0xFF cell should sum to (0,0) mod 255 — the PBM pathology")
	}
	if Mod256.Sum(mixed) == (Pair{}) {
		t.Error("mod 256 should distinguish 0xFF from 0x00")
	}
}

func TestShiftedByComposition(t *testing.T) {
	// A cell's standalone pair recombines at its true offset: slice a
	// packet into 48-byte cells and rebuild the packet sum per §5.2.
	rng := rand.New(rand.NewPCG(2, 2))
	for _, m := range []Mod{Mod255, Mod256} {
		for trial := 0; trial < 100; trial++ {
			n := 48 * (1 + rng.IntN(8))
			data := randBytes(rng, n)
			want := m.Sum(data)
			var acc Pair
			for off := 0; off < n; off += 48 {
				cell := m.Sum(data[off : off+48])
				shifted := m.ShiftedBy(cell, n-off-48)
				acc = Pair{A: m.add(acc.A, shifted.A), B: m.add(acc.B, shifted.B)}
			}
			if acc != want {
				t.Fatalf("mod %d: recomposed %+v, want %+v", m, acc, want)
			}
		}
	}
}

func TestAppendMatchesWhole(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for _, m := range []Mod{Mod255, Mod256} {
		for trial := 0; trial < 200; trial++ {
			n := rng.IntN(400)
			data := randBytes(rng, n)
			cut := 0
			if n > 0 {
				cut = rng.IntN(n + 1)
			}
			got := m.Append(m.Sum(data[:cut]), n-cut, m.Sum(data[cut:]))
			if want := m.Sum(data); got != want {
				t.Fatalf("mod %d split %d/%d: %+v, want %+v", m, cut, n, got, want)
			}
		}
	}
}

func TestCombineCells(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for _, m := range []Mod{Mod255, Mod256} {
		data := randBytes(rng, 48*7)
		var pairs []Pair
		var lens []int
		for off := 0; off < len(data); off += 48 {
			pairs = append(pairs, m.Sum(data[off:off+48]))
			lens = append(lens, 48)
		}
		if got, want := Combine(m, pairs, lens), m.Sum(data); got != want {
			t.Errorf("mod %d: Combine = %+v, want %+v", m, got, want)
		}
	}
}

func TestCombinePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Combine should panic on pairs/lens length mismatch")
		}
	}()
	Combine(Mod256, []Pair{{}}, nil)
}

func TestCheckBytesSumToZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for _, m := range []Mod{Mod255, Mod256} {
		for trial := 0; trial < 300; trial++ {
			n := 4 + rng.IntN(300)
			data := randBytes(rng, n)
			// Place the check field at a random position with at least
			// one byte available for x,y.
			pos := rng.IntN(n - 1)
			data[pos], data[pos+1] = 0, 0
			trailing := n - pos - 2
			x, y := m.CheckBytes(data, trailing)
			data[pos], data[pos+1] = x, y
			if !m.Verify(data) {
				t.Fatalf("mod %d, n=%d, pos=%d: packet with check bytes %#02x%02x does not verify (sum %+v)",
					m, n, pos, x, y, m.Sum(data))
			}
		}
	}
}

func TestCheckBytesDetectCorruption(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	for _, m := range []Mod{Mod255, Mod256} {
		data := randBytes(rng, 128)
		data[10], data[11] = 0, 0
		x, y := m.CheckBytes(data, len(data)-12)
		data[10], data[11] = x, y
		detected := 0
		const trials = 500
		for i := 0; i < trials; i++ {
			pos := rng.IntN(len(data))
			orig := data[pos]
			delta := byte(1 + rng.IntN(255))
			data[pos] = orig + delta
			if !m.Verify(data) {
				detected++
			}
			data[pos] = orig
		}
		// Mod-256 Fletcher detects all single-byte errors; mod-255 can
		// miss a 0x00<->0xFF flip.
		if m == Mod256 && detected != trials {
			t.Errorf("mod 256 missed %d single-byte corruptions", trials-detected)
		}
		if m == Mod255 && detected < trials*95/100 {
			t.Errorf("mod 255 detected only %d/%d single-byte corruptions", detected, trials)
		}
	}
}

func TestDigestStreaming(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for _, m := range []Mod{Mod255, Mod256} {
		data := randBytes(rng, 1024)
		d := New(m)
		i := 0
		for i < len(data) {
			n := 1 + rng.IntN(53)
			if i+n > len(data) {
				n = len(data) - i
			}
			d.Write(data[i : i+n])
			i += n
		}
		if d.Len() != len(data) {
			t.Fatalf("Len = %d, want %d", d.Len(), len(data))
		}
		if got, want := d.Pair(), m.Sum(data); got != want {
			t.Fatalf("mod %d: streaming %+v != one-shot %+v", m, got, want)
		}
		d.Reset()
		if d.Len() != 0 || d.Pair() != (Pair{}) {
			t.Error("Reset did not clear state")
		}
	}
}

func TestPositionSensitivity(t *testing.T) {
	// Unlike the Internet checksum, Fletcher changes when word-aligned
	// cells are reordered — the property §5.2 exploits.
	a := []byte("the quick brown fox jumps over the lazy dog....")
	b := []byte("pack my box with five dozen liquor jugs........")
	ab := append(append([]byte{}, a...), b...)
	ba := append(append([]byte{}, b...), a...)
	for _, m := range []Mod{Mod255, Mod256} {
		if m.Sum(ab) == m.Sum(ba) {
			t.Errorf("mod %d: reordering cells did not change the Fletcher sum", m)
		}
	}
}

func TestSum32MatchesReference(t *testing.T) {
	ref := func(data []byte) Pair32 {
		const mod = 65535
		var a, b uint64
		// words with trailing pad
		var words []uint64
		for i := 0; i+2 <= len(data); i += 2 {
			words = append(words, uint64(data[i])<<8|uint64(data[i+1]))
		}
		if len(data)%2 == 1 {
			words = append(words, uint64(data[len(data)-1])<<8)
		}
		n := uint64(len(words))
		for i, w := range words {
			a += w
			b += (n - uint64(i)) * w
		}
		return Pair32{A: uint32(a % mod), B: uint32(b % mod)}
	}
	rng := rand.New(rand.NewPCG(8, 8))
	for trial := 0; trial < 200; trial++ {
		data := randBytes(rng, rng.IntN(3000))
		if got, want := Sum32(data), ref(data); got != want {
			t.Fatalf("len %d: Sum32 = %+v, want %+v", len(data), got, want)
		}
	}
}

func TestSum32Checksum32Packing(t *testing.T) {
	p := Pair32{A: 0x1234, B: 0xABCD}
	if p.Checksum32() != 0xABCD1234 {
		t.Errorf("Checksum32 = %#08x", p.Checksum32())
	}
}

func TestQuickAppendAssociativity(t *testing.T) {
	for _, m := range []Mod{Mod255, Mod256} {
		f := func(a, b, c []byte) bool {
			l := m.Append(m.Append(m.Sum(a), len(b), m.Sum(b)), len(c), m.Sum(c))
			r := m.Append(m.Sum(a), len(b)+len(c), m.Append(m.Sum(b), len(c), m.Sum(c)))
			return l == r
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("mod %d: %v", m, err)
		}
	}
}

func BenchmarkSumMod255_1500(b *testing.B) { benchSum(b, Mod255, 1500) }
func BenchmarkSumMod256_1500(b *testing.B) { benchSum(b, Mod256, 1500) }

func benchSum(b *testing.B, m Mod, n int) {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(n))
	for i := 0; i < b.N; i++ {
		m.Sum(data)
	}
}
