// Package fletcher implements Fletcher's checksum over 8-bit blocks in
// both the ones-complement (mod 255) and twos-complement (mod 256)
// variants the paper studies, plus the 32-bit variant over 16-bit blocks.
//
// A Fletcher sum keeps two accumulators: A, the plain sum of the data
// bytes, and B, the sum of each byte weighted by its position from the
// end of the packet (equivalently, the running sum of A).  B is what
// gives Fletcher its positional sensitivity; §5.2 of the paper shows that
// over non-uniform real data the positional weighting "colours" each
// cell's contribution by its offset, which is why Fletcher beats the TCP
// checksum against packet splices even though both have similarly skewed
// single-cell distributions.
//
// The package exposes the same compositional machinery the paper's
// analysis uses: a Pair computed over a fragment in isolation can be
// recombined at any end-offset P via B' = B + A·P (mod M).
package fletcher

// Mod selects the Fletcher arithmetic: 255 for the ones-complement
// variant (two zeros: 0x00 and 0xFF are congruent — the root of the
// §5.5 PBM pathology) or 256 for the twos-complement variant used by TP4.
type Mod uint16

const (
	// Mod255 is ones-complement Fletcher: bytes are summed modulo 255.
	Mod255 Mod = 255
	// Mod256 is twos-complement Fletcher: bytes are summed modulo 256.
	Mod256 Mod = 256
)

// Pair holds the two Fletcher accumulators, each reduced modulo the Mod
// that produced it.  The zero Pair is the sum of the empty string.
type Pair struct {
	A uint16 // plain byte sum mod M
	B uint16 // position-weighted sum mod M (last byte has weight 1)
}

// Checksum16 packs the pair into the 16-bit checksum the paper reports:
// B in the high byte, A in the low byte.
func (p Pair) Checksum16() uint16 { return p.B<<8 | p.A }

// reduceEvery bounds how many bytes may be accumulated into 64-bit
// A/B counters before a modular reduction is required.  With d ≤ 255,
// after n bytes B ≤ 255·n·(n+1)/2; n = 5552 keeps B < 2^32 even after
// adding a prior reduced value, the same bound Adler-32 uses.
const reduceEvery = 5552

// Sum computes the Fletcher pair of data under modulus m, weighting each
// byte by its position from the end of data (the final byte has weight 1).
func (m Mod) Sum(data []byte) Pair {
	mod := uint64(m)
	var a, b uint64
	for len(data) > 0 {
		chunk := data
		if len(chunk) > reduceEvery {
			chunk = chunk[:reduceEvery]
		}
		data = data[len(chunk):]
		for _, d := range chunk {
			a += uint64(d)
			b += a
		}
		a %= mod
		b %= mod
	}
	return Pair{A: uint16(a), B: uint16(b)}
}

// add returns x+y mod m.
func (m Mod) add(x, y uint16) uint16 { return uint16((uint32(x) + uint32(y)) % uint32(m)) }

// mul returns x·y mod m.
func (m Mod) mul(x, y uint16) uint16 { return uint16(uint32(x) * uint32(y) % uint32(m)) }

// neg returns −x mod m.
func (m Mod) neg(x uint16) uint16 {
	x %= uint16(m)
	if x == 0 {
		return 0
	}
	return uint16(m) - x
}

// Canonical reduces a byte to its canonical residue under m.  Under
// Mod255 both 0x00 and 0xFF map to 0 — Fletcher-255's "two zeros".
func (m Mod) Canonical(d byte) uint16 { return uint16(d) % uint16(m) }

// ShiftedBy returns the contribution of a fragment whose standalone pair
// is p when the fragment's final byte sits off bytes before the end of
// the enclosing packet: A is unchanged and B gains A·off (§5.2).
func (m Mod) ShiftedBy(p Pair, off int) Pair {
	o := uint16(uint64(off) % uint64(m))
	return Pair{A: p.A, B: m.add(p.B, m.mul(p.A, o))}
}

// Append returns the pair of the concatenation of fragment p followed by
// fragment q, where q is lenQ bytes long: p's bytes all move lenQ
// positions further from the end.
func (m Mod) Append(p Pair, lenQ int, q Pair) Pair {
	ps := m.ShiftedBy(p, lenQ)
	return Pair{A: m.add(ps.A, q.A), B: m.add(ps.B, q.B)}
}

// Combine folds standalone fragment pairs (in packet order, with their
// lengths) into the pair of the whole packet.
func Combine(m Mod, pairs []Pair, lens []int) Pair {
	if len(pairs) != len(lens) {
		panic("fletcher: Combine pairs/lens length mismatch")
	}
	var acc Pair
	for i := range pairs {
		acc = m.Append(acc, lens[i], pairs[i])
	}
	return acc
}

// CheckBytes computes the two check bytes x, y to be stored adjacently
// (x immediately before y) with trailing bytes of the packet following y,
// so that the Fletcher sum of the completed packet is (0, 0) — the
// "sum-to-zero inversion" the paper's simulations transmit.  data must
// already contain zeros in the two check-byte positions.
//
// With A₀,B₀ the sums over data and w = trailing+1 the positional weight
// of y, the check bytes solve
//
//	A₀ + x + y           ≡ 0 (mod M)
//	B₀ + (w+1)·x + w·y   ≡ 0 (mod M)
//
// which reduces to x = w·A₀ − B₀ and y = −(A₀ + x).  The system is
// always solvable because the two positions are adjacent (their weight
// difference, 1, is a unit mod M) — the condition Theorem 7's proof in
// the paper's appendix turns on.
func (m Mod) CheckBytes(data []byte, trailing int) (x, y byte) {
	p := m.Sum(data)
	w := uint16(uint64(trailing+1) % uint64(m))
	xv := m.add(m.mul(w, p.A), m.neg(p.B))
	yv := m.neg(m.add(p.A, xv))
	return byte(xv), byte(yv)
}

// Verify reports whether data, with its check bytes in place, has a
// Fletcher sum congruent to (0, 0) under m.
func (m Mod) Verify(data []byte) bool {
	p := m.Sum(data)
	return p.A%uint16(m) == 0 && p.B%uint16(m) == 0
}

// Digest is a streaming Fletcher accumulator.  Because B's positional
// weights depend on the final length, the digest accumulates with
// weights counted from the start and converts on Sum; equivalently it
// appends each chunk with Append.
type Digest struct {
	m    Mod
	pair Pair
	n    int
}

// New returns a streaming Fletcher digest under modulus m.
func New(m Mod) *Digest { return &Digest{m: m} }

// Reset restores the digest to its initial state.
func (d *Digest) Reset() { d.pair, d.n = Pair{}, 0 }

// Write absorbs data.  It never fails.
func (d *Digest) Write(data []byte) (int, error) {
	d.pair = d.m.Append(d.pair, len(data), d.m.Sum(data))
	d.n += len(data)
	return len(data), nil
}

// Pair returns the Fletcher pair of everything written so far.
func (d *Digest) Pair() Pair { return d.pair }

// Len returns the number of bytes written.
func (d *Digest) Len() int { return d.n }

// Pair32 holds the accumulators of the 32-bit Fletcher sum over 16-bit
// blocks, each reduced modulo 65535 (the ones-complement variant
// Fletcher defined for wider words).
type Pair32 struct {
	A uint32
	B uint32
}

// Checksum32 packs the pair into a 32-bit checksum: B high, A low.
func (p Pair32) Checksum32() uint32 { return p.B<<16 | p.A }

// Sum32 computes the 32-bit Fletcher sum of data taken as big-endian
// 16-bit blocks (a trailing odd byte is zero-padded), mod 65535.
func Sum32(data []byte) Pair32 {
	const mod = 65535
	var a, b uint64
	n := 0
	flush := func() {
		a %= mod
		b %= mod
		n = 0
	}
	for i := 0; i+2 <= len(data); i += 2 {
		a += uint64(data[i])<<8 | uint64(data[i+1])
		b += a
		if n++; n == 21845 { // keeps b < 2^63 comfortably
			flush()
		}
	}
	if len(data)%2 == 1 {
		a += uint64(data[len(data)-1]) << 8
		b += a
	}
	flush()
	return Pair32{A: uint32(a), B: uint32(b)}
}
