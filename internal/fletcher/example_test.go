package fletcher_test

import (
	"fmt"

	"realsum/internal/fletcher"
)

// The two Fletcher moduli over the classic test vector, and the
// positional recombination the paper's §5.2 analysis uses.
func Example() {
	data := []byte("abcde")
	p255 := fletcher.Mod255.Sum(data)
	p256 := fletcher.Mod256.Sum(data)
	fmt.Printf("mod 255: %#04x\n", p255.Checksum16())
	fmt.Printf("mod 256: %#04x\n", p256.Checksum16())

	// A fragment's pair, recombined at its true offset: "abc" sits 2
	// bytes before the end, so its B gains A·2.
	front := fletcher.Mod255.Sum(data[:3])
	back := fletcher.Mod255.Sum(data[3:])
	whole := fletcher.Mod255.Append(front, 2, back)
	fmt.Printf("recombined: %#04x\n", whole.Checksum16())
	// Output:
	// mod 255: 0xc8f0
	// mod 256: 0xc3ef
	// recombined: 0xc8f0
}

// Check bytes make a packet Fletcher-sum to zero — the "sum-to-zero
// inversion" the paper's simulations transmit.
func ExampleMod_CheckBytes() {
	pkt := []byte{0xDE, 0xAD, 0x00, 0x00, 0xBE, 0xEF} // field at bytes 2-3
	x, y := fletcher.Mod256.CheckBytes(pkt, 2)
	pkt[2], pkt[3] = x, y
	fmt.Println(fletcher.Mod256.Verify(pkt))
	// Output:
	// true
}
