package sim

import "sort"

// topK keeps the k best FileMisses seen so far in a bounded min-heap,
// so tracking the worst files of an arbitrarily large corpus costs
// O(k) memory instead of retaining every file with misses.
//
// "Best" follows the report ordering: more Missed first, then Path
// ascending as the deterministic tie-break.  The heap root is the
// weakest retained entry; an offer that does not beat it is dropped.
type topK struct {
	k     int
	items []FileMisses
}

func newTopK(k int) *topK { return &topK{k: k} }

// beats reports whether a outranks b in the final report ordering.
func beats(a, b FileMisses) bool {
	if a.Missed != b.Missed {
		return a.Missed > b.Missed
	}
	return a.Path < b.Path
}

// offer considers f for retention.
func (t *topK) offer(f FileMisses) {
	if t.k <= 0 {
		return
	}
	if len(t.items) < t.k {
		t.items = append(t.items, f)
		t.siftUp(len(t.items) - 1)
		return
	}
	if !beats(f, t.items[0]) {
		return // weaker than the weakest retained entry
	}
	t.items[0] = f
	t.siftDown(0)
}

func (t *topK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		// Min-heap on the report order: the weakest entry rises to the
		// root, so a parent must NOT beat... i.e. must be weaker than or
		// equal to its children.
		if beats(t.items[i], t.items[parent]) {
			return
		}
		t.items[i], t.items[parent] = t.items[parent], t.items[i]
		i = parent
	}
}

func (t *topK) siftDown(i int) {
	n := len(t.items)
	for {
		weakest := i
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < n && !beats(t.items[c], t.items[weakest]) {
				weakest = c
			}
		}
		if weakest == i {
			return
		}
		t.items[i], t.items[weakest] = t.items[weakest], t.items[i]
		i = weakest
	}
}

// merge folds o's retained entries into t.
func (t *topK) merge(o *topK) {
	if o == nil {
		return
	}
	for _, f := range o.items {
		t.offer(f)
	}
}

// sorted returns the retained entries best-first (most Missed first,
// Path ascending on ties).  The heap is consumed conceptually but the
// backing slice is returned directly; do not reuse t afterwards.
func (t *topK) sorted() []FileMisses {
	if len(t.items) == 0 {
		return nil
	}
	out := t.items
	sort.Slice(out, func(i, j int) bool { return beats(out[i], out[j]) })
	return out
}
