package sim

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countShard is the simplest commutative shard: per-shard sums merged
// under the flush mutex.
type countShard struct {
	files int
	bytes int
}

func TestPoolProcessesEverySubmission(t *testing.T) {
	var mu sync.Mutex
	total := countShard{}
	pool := NewPool(PoolOptions{Workers: 4},
		func() *countShard { return &countShard{} },
		func(s *countShard, idx int, data []byte) {
			s.files++
			s.bytes += len(data)
		},
		func(s *countShard) {
			mu.Lock()
			total.files += s.files
			total.bytes += s.bytes
			s.files, s.bytes = 0, 0
			mu.Unlock()
		},
	)
	const n = 100
	for i := 0; i < n; i++ {
		if err := pool.Submit(context.Background(), i, make([]byte, i)); err != nil {
			t.Fatalf("Submit(%d): %v", i, err)
		}
	}
	pool.Drain()
	if total.files != n {
		t.Errorf("flushed %d files, want %d", total.files, n)
	}
	if want := n * (n - 1) / 2; total.bytes != want {
		t.Errorf("flushed %d bytes, want %d", total.bytes, want)
	}
}

// TestPoolBatchedFlush verifies FlushEvery publishes partial batches
// while the pool is still accepting work: with one worker and
// FlushEvery=2, the aggregate is non-empty before Drain.
func TestPoolBatchedFlush(t *testing.T) {
	var flushed atomic.Int64
	pool := NewPool(PoolOptions{Workers: 1, FlushEvery: 2},
		func() *countShard { return &countShard{} },
		func(s *countShard, idx int, data []byte) { s.files++ },
		func(s *countShard) {
			flushed.Add(int64(s.files))
			s.files = 0
		},
	)
	for i := 0; i < 10; i++ {
		if err := pool.Submit(context.Background(), i, nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for flushed.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if flushed.Load() < 2 {
		t.Error("no mid-run batch flush observed before Drain")
	}
	pool.Drain()
	if got := flushed.Load(); got != 10 {
		t.Errorf("flushed %d files total, want 10", got)
	}
}

// TestPoolBackpressure pins the bounded-queue contract: with one
// blocked worker and Queue=1, the third Submit cannot complete until
// the worker frees a slot.
func TestPoolBackpressure(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	pool := NewPool(PoolOptions{Workers: 1, Queue: 1},
		func() *countShard { return &countShard{} },
		func(s *countShard, idx int, data []byte) {
			started <- struct{}{}
			<-gate
		},
		nil,
	)
	ctx := context.Background()
	// First job occupies the worker, second fills the queue.
	if err := pool.Submit(ctx, 0, nil); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := pool.Submit(ctx, 1, nil); err != nil {
		t.Fatal(err)
	}
	third := make(chan error, 1)
	go func() { third <- pool.Submit(ctx, 2, nil) }()
	select {
	case err := <-third:
		t.Fatalf("third Submit completed (%v) despite a full queue", err)
	case <-time.After(50 * time.Millisecond):
		// Blocked, as the backpressure contract requires.
	}
	close(gate)
	select {
	case err := <-third:
		if err != nil {
			t.Fatalf("third Submit after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("third Submit still blocked after the worker drained")
	}
	pool.Drain()
}

// TestPoolSubmitCancel verifies a cancelled context unblocks a
// backpressured Submit with ctx.Err(), and that Drain still processes
// everything already queued.
func TestPoolSubmitCancel(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	var done atomic.Int64
	pool := NewPool(PoolOptions{Workers: 1, Queue: 1},
		func() *countShard { return &countShard{} },
		func(s *countShard, idx int, data []byte) {
			started <- struct{}{}
			<-gate
			done.Add(1)
		},
		nil,
	)
	ctx, cancel := context.WithCancel(context.Background())
	if err := pool.Submit(ctx, 0, nil); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := pool.Submit(ctx, 1, nil); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- pool.Submit(ctx, 2, nil) }()
	cancel()
	if err := <-blocked; err != context.Canceled {
		t.Fatalf("cancelled Submit returned %v, want context.Canceled", err)
	}
	close(gate)
	pool.Drain()
	if got := done.Load(); got != 2 {
		t.Errorf("drain processed %d queued files, want 2 (cancel must not drop queued work)", got)
	}
}
