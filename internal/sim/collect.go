package sim

import (
	"context"
	"sync"
	"sync/atomic"

	"realsum/internal/algo"
	"realsum/internal/corpus"
	"realsum/internal/dist"
)

// Progress carries lightweight throughput counters a long pass updates
// as it runs, for cmd/paper -progress.  All methods are safe for
// concurrent use and nil-safe, so engine code can update unconditionally.
type Progress struct {
	files atomic.Uint64
	bytes atomic.Uint64
}

// Observe records one processed file of n bytes.
func (p *Progress) Observe(n int) {
	if p == nil {
		return
	}
	p.files.Add(1)
	p.bytes.Add(uint64(n))
}

// Files returns the number of files processed so far.
func (p *Progress) Files() uint64 {
	if p == nil {
		return 0
	}
	return p.files.Load()
}

// Bytes returns the number of corpus bytes processed so far.
func (p *Progress) Bytes() uint64 {
	if p == nil {
		return 0
	}
	return p.bytes.Load()
}

// CollectOptions configures a distribution-collection pass.
type CollectOptions struct {
	// Workers bounds parallelism across files (default GOMAXPROCS).
	Workers int
	// Seed perturbs the per-file RNG seeding of randomized passes
	// (CollectLocalAnyCells).  Zero preserves the historical seeding, so
	// existing goldens are unchanged by default.
	Seed uint64
	// Progress, when non-nil, receives per-file throughput updates.
	Progress *Progress
}

func (o CollectOptions) workers() int {
	return Options{Workers: o.Workers}.workers()
}

// Collect is the sharded streaming engine behind every distribution
// pass: Figures 2–3 and Tables 4–6.  It is the one-shot form of Pool —
// a walk feeds the bounded job queue, each worker accumulates into a
// private shard holding no locks, and the shards merge into a fresh
// result shard at the drain.
//
// Determinism contract: file receives the file's walk-order index, so
// any per-file seeding depends only on corpus order, never on worker
// scheduling; shards must hold only order-independent state (integer
// counters, histograms, censuses) merged by a commutative merge.  Under
// that contract the merged result is byte-identical at any worker
// count.  Derived floating-point statistics must be computed from the
// merged shard, after Collect returns.
//
// ctx cancels the pass between files; the walk error (ctx.Err) is
// returned.
func Collect[S any](ctx context.Context, w corpus.Walker, opt CollectOptions,
	newShard func() S,
	file func(shard S, idx int, data []byte),
	merge func(dst, src S),
) (S, error) {
	res := newShard()
	var mu sync.Mutex
	pool := NewPool(PoolOptions{Workers: opt.workers(), Progress: opt.Progress},
		newShard,
		file,
		func(shard S) {
			mu.Lock()
			merge(res, shard)
			mu.Unlock()
		},
	)
	idx := 0
	err := w.Walk(func(path string, data []byte) error {
		if serr := pool.Submit(ctx, idx, data); serr != nil {
			return serr
		}
		idx++
		return nil
	})
	pool.Drain()
	return res, err
}

// CollectCellHistogram scans every complete 48-byte cell of every file
// and histograms its checksum value under a — the Figure 2/Figure 3
// measurement.  a must be a 16-bit algorithm.
func CollectCellHistogram(ctx context.Context, w corpus.Walker, a algo.Algorithm, opt CollectOptions) (*dist.Histogram, error) {
	return Collect(ctx, w, opt,
		dist.NewHistogram,
		func(h *dist.Histogram, _ int, data []byte) {
			for off := 0; off+dist.CellSize <= len(data); off += dist.CellSize {
				h.Add(uint16(a.Sum(data[off : off+dist.CellSize])))
			}
		},
		func(dst, src *dist.Histogram) { dst.Merge(src) },
	)
}

// CollectBlockHistogram histograms the TCP checksum of aligned k-cell
// blocks — the k=2,4,… series of Figure 2.
func CollectBlockHistogram(ctx context.Context, w corpus.Walker, k int, opt CollectOptions) (*dist.Histogram, error) {
	g, err := CollectGlobal(ctx, w, k, opt)
	if err != nil {
		return nil, err
	}
	return g.Histogram(), nil
}

// CollectGlobal runs the global k-cell block sampler over a corpus
// (Table 4 "Measured", Table 5 "Globally Congruent", and the
// exclude-identical subtraction).
func CollectGlobal(ctx context.Context, w corpus.Walker, k int, opt CollectOptions) (*dist.GlobalSampler, error) {
	return Collect(ctx, w, opt,
		func() *dist.GlobalSampler { return dist.NewGlobalSampler(k) },
		func(g *dist.GlobalSampler, _ int, data []byte) { g.AddFile(data) },
		func(dst, src *dist.GlobalSampler) { dst.Merge(src) },
	)
}

// CollectLocal runs the local congruence sampler (Table 5's "Locally
// Congruent" and "Excluding Identical" columns) with the paper's
// 512-byte window.
func CollectLocal(ctx context.Context, w corpus.Walker, k, window int, opt CollectOptions) (dist.LocalStats, error) {
	s, err := Collect(ctx, w, opt,
		func() *dist.LocalSampler { return dist.NewLocalSampler(k, window) },
		func(s *dist.LocalSampler, _ int, data []byte) { s.File(data) },
		func(dst, src *dist.LocalSampler) { dst.MergeStats(src) },
	)
	if err != nil {
		return dist.LocalStats{}, err
	}
	return s.Stats(), nil
}

// CollectLocalAnyCells runs the paper's actual local sampling method —
// non-contiguous k-cell blocks within the window (§4.6) — with
// perWindow sampled pairs per window position.  Each file's RNG is
// seeded from its walk-order index, so the result is identical at any
// worker count.
func CollectLocalAnyCells(ctx context.Context, w corpus.Walker, k, window, perWindow int, opt CollectOptions) (dist.LocalStats, error) {
	s, err := Collect(ctx, w, opt,
		func() *dist.AnyCellsSampler { return dist.NewAnyCellsSampler(k, window, perWindow) },
		func(s *dist.AnyCellsSampler, idx int, data []byte) {
			s.File(data, 0xA11CE115^opt.Seed^uint64(idx))
		},
		func(dst, src *dist.AnyCellsSampler) { dst.MergeStats(src) },
	)
	if err != nil {
		return dist.LocalStats{}, err
	}
	return s.Stats(), nil
}
