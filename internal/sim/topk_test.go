package sim

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"
)

// naiveTopK is the reference the heap must match: keep everything,
// sort, truncate.
func naiveTopK(all []FileMisses, k int) []FileMisses {
	s := append([]FileMisses(nil), all...)
	sort.Slice(s, func(i, j int) bool { return beats(s[i], s[j]) })
	if len(s) > k {
		s = s[:k]
	}
	if len(s) == 0 {
		return nil
	}
	return s
}

func randomMisses(rng *rand.Rand, n int) []FileMisses {
	out := make([]FileMisses, n)
	for i := range out {
		out[i] = FileMisses{
			Path:      fmt.Sprintf("f%04d", i),
			Remaining: uint64(rng.IntN(500) + 1),
			Missed:    uint64(rng.IntN(6)), // small range forces ties
		}
	}
	return out
}

func TestTopKMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 37))
	for _, n := range []int{0, 1, 3, 10, 100, 1000} {
		for _, k := range []int{1, 3, 7, 50} {
			all := randomMisses(rng, n)
			h := newTopK(k)
			for _, f := range all {
				h.offer(f)
			}
			got := h.sorted()
			want := naiveTopK(all, k)
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: got %d entries, want %d", n, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("n=%d k=%d: entry %d = %+v, want %+v", n, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestTopKMergeIsPartitionInvariant is the sharded-aggregation
// property sim.Run relies on: splitting the offers across any number
// of worker-local heaps and merging yields the same result as one
// global heap, regardless of the partition.
func TestTopKMergeIsPartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	all := randomMisses(rng, 400)
	const k = 9
	want := naiveTopK(all, k)
	for _, shards := range []int{1, 2, 3, 8, 16} {
		hs := make([]*topK, shards)
		for i := range hs {
			hs[i] = newTopK(k)
		}
		for i, f := range all {
			hs[i%shards].offer(f)
		}
		merged := newTopK(k)
		for _, h := range hs {
			merged.merge(h)
		}
		got := merged.sorted()
		if len(got) != len(want) {
			t.Fatalf("shards=%d: got %d entries, want %d", shards, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("shards=%d: entry %d = %+v, want %+v", shards, i, got[i], want[i])
			}
		}
	}
}

func TestTopKZeroDisabled(t *testing.T) {
	h := newTopK(0)
	h.offer(FileMisses{Path: "x", Missed: 5})
	if got := h.sorted(); got != nil {
		t.Errorf("k=0 retained %v", got)
	}
	h = newTopK(-1)
	h.offer(FileMisses{Path: "x", Missed: 5})
	if h.sorted() != nil {
		t.Error("negative k retained entries")
	}
}

// TestFileRunnerSteadyStateZeroAllocs asserts the per-pair steady state
// of the whole per-file pipeline — packet building, segmentation and
// splice enumeration — allocates nothing once the runner is warm.
func TestFileRunnerSteadyStateZeroAllocs(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 131 % 251)
	}
	for _, opt := range []Options{
		{CheckCRC: true},
		{},
	} {
		r := newFileRunner(opt)
		r.run(data) // warm buffers
		avg := testing.AllocsPerRun(20, func() {
			r.run(data)
		})
		if avg != 0 {
			t.Errorf("opt %+v: steady-state file run allocates %.1f objects, want 0", opt, avg)
		}
	}
}
