package sim

import (
	"context"
	"errors"
	"testing"

	"realsum/internal/algo"
	"realsum/internal/corpus"
	"realsum/internal/tcpip"
)

// tiny returns a small deterministic corpus for fast tests.
func tiny(seed uint64, ft corpus.FileType, files, size int) *corpus.FS {
	p := corpus.Profile{
		Name:  "tiny",
		Mix:   []corpus.TypeWeight{{Type: ft, Weight: 1}},
		Files: files, MinSize: size, MaxSize: size,
		Seed: seed,
	}
	return p.Build()
}

func ctx() context.Context { return context.Background() }

func TestRunCountsFilesAndPackets(t *testing.T) {
	fs := tiny(1, corpus.UniformRandom, 4, 1024)
	res, err := Run(ctx(), fs, fs.Name, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Files != 4 {
		t.Errorf("Files = %d", res.Files)
	}
	// 1024 bytes at 256/segment = 4 packets per file.
	if res.Packets != 16 {
		t.Errorf("Packets = %d, want 16", res.Packets)
	}
	if res.Bytes != 4096 {
		t.Errorf("Bytes = %d", res.Bytes)
	}
	// 3 adjacent pairs per file.
	if res.Pairs != 12 {
		t.Errorf("Pairs = %d, want 12", res.Pairs)
	}
	if res.Total == 0 || res.Remaining == 0 {
		t.Errorf("no splices inspected: %+v", res.Counts)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	fs := tiny(2, corpus.GmonOut, 6, 2048)
	opt := Options{CheckCRC: true}
	opt.Workers = 1
	a, err := Run(ctx(), fs, "x", opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 8
	b, err := Run(ctx(), fs, "x", opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts != b.Counts || a.Packets != b.Packets {
		t.Errorf("worker count changed results:\n1: %+v\n8: %+v", a.Counts, b.Counts)
	}
}

func TestCollectDeterministicAcrossWorkerCounts(t *testing.T) {
	// The distribution engine's core guarantee: identical merged shards
	// at any worker count.
	fs := tiny(21, corpus.CSource, 8, 4800)
	type snapshot struct {
		blocks  uint64
		pmax    float64
		pairs   uint64
		anyCong uint64
	}
	take := func(workers int) snapshot {
		opt := CollectOptions{Workers: workers}
		g, err := CollectGlobal(ctx(), fs, 2, opt)
		if err != nil {
			t.Fatal(err)
		}
		st, err := CollectLocal(ctx(), fs, 2, 1024, opt)
		if err != nil {
			t.Fatal(err)
		}
		ac, err := CollectLocalAnyCells(ctx(), fs, 2, 2048, 4, opt)
		if err != nil {
			t.Fatal(err)
		}
		return snapshot{g.Blocks(), g.CongruentProbability(), st.Pairs, ac.Congruent}
	}
	base := take(1)
	for _, w := range []int{2, 8} {
		if got := take(w); got != base {
			t.Errorf("workers=%d changed results: %+v vs %+v", w, got, base)
		}
	}
}

func TestCollectCancellation(t *testing.T) {
	fs := tiny(22, corpus.UniformRandom, 20, 4800)
	c, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CollectGlobal(c, fs, 1, CollectOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("CollectGlobal err = %v, want context.Canceled", err)
	}
	if _, err := Run(c, fs, "x", Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("Run err = %v, want context.Canceled", err)
	}
}

func TestProgressCounters(t *testing.T) {
	fs := tiny(23, corpus.UniformRandom, 5, 1024)
	var prog Progress
	_, err := Run(ctx(), fs, "x", Options{Progress: &prog})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Files() != 5 || prog.Bytes() != 5*1024 {
		t.Errorf("progress = %d files, %d bytes; want 5 files, 5120 bytes",
			prog.Files(), prog.Bytes())
	}
	if _, err := CollectGlobal(ctx(), fs, 1, CollectOptions{Progress: &prog}); err != nil {
		t.Fatal(err)
	}
	if prog.Files() != 10 {
		t.Errorf("cumulative files = %d, want 10", prog.Files())
	}
}

func TestRunSegmentSizeAffectsPacketCount(t *testing.T) {
	fs := tiny(3, corpus.UniformRandom, 1, 1000)
	res, _ := Run(ctx(), fs, "x", Options{SegmentSize: 100})
	if res.Packets != 10 {
		t.Errorf("Packets = %d, want 10", res.Packets)
	}
}

func TestCompressReducesMissRate(t *testing.T) {
	// Table 7's effect: compression pushes the miss rate toward 2^-16.
	fs := tiny(4, corpus.GmonOut, 10, 8192)
	plain, err := Run(ctx(), fs, "plain", Options{})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Run(ctx(), fs, "comp", Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	pr := plain.MissRate(plain.MissedByChecksum)
	cr := comp.MissRate(comp.MissedByChecksum)
	if pr == 0 {
		t.Skip("plain corpus produced no misses at this scale")
	}
	if cr >= pr {
		t.Errorf("compression did not reduce miss rate: %.6g -> %.6g", pr, cr)
	}
}

func TestZeroIPHeaderAblationRaisesMisses(t *testing.T) {
	// §6.2: leaving the IP header unfilled raises the miss count by
	// orders of magnitude on zero-heavy data.
	fs := tiny(5, corpus.GmonOut, 8, 8192)
	filled, _ := Run(ctx(), fs, "filled", Options{})
	zeroed, _ := Run(ctx(), fs, "zeroed", Options{Build: tcpip.BuildOptions{ZeroIPHeader: true}})
	if zeroed.MissedByChecksum <= filled.MissedByChecksum {
		t.Errorf("zeroed-header misses (%d) not above filled (%d)",
			zeroed.MissedByChecksum, filled.MissedByChecksum)
	}
}

func TestCollectCellHistogram(t *testing.T) {
	fs := tiny(6, corpus.UniformRandom, 2, 4800)
	for _, name := range []string{"tcp", "f255", "f256"} {
		h, err := CollectCellHistogram(ctx(), fs, algo.MustLookup(name), CollectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// 4800/48 = 100 cells per file, 2 files.
		if h.Total() != 200 {
			t.Errorf("alg %s: total = %d, want 200", name, h.Total())
		}
	}
}

func TestCollectGlobalAndLocal(t *testing.T) {
	fs := tiny(7, corpus.EnglishText, 3, 4800)
	g, err := CollectGlobal(ctx(), fs, 2, CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Blocks() != 3*50 {
		t.Errorf("blocks = %d, want 150", g.Blocks())
	}
	st, err := CollectLocal(ctx(), fs, 1, 512, CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs == 0 {
		t.Error("no local pairs sampled")
	}
	bh, err := CollectBlockHistogram(ctx(), fs, 2, CollectOptions{})
	if err != nil || bh.Total() != 150 {
		t.Errorf("block histogram: %v, total %d", err, bh.Total())
	}
}

func TestStructuredDataMissesMoreThanUniform(t *testing.T) {
	// The paper's central claim at the system level.
	uni := tiny(8, corpus.UniformRandom, 8, 8192)
	gmon := tiny(9, corpus.GmonOut, 8, 8192)
	u, _ := Run(ctx(), uni, "u", Options{})
	g, _ := Run(ctx(), gmon, "g", Options{})
	ur := u.MissRate(u.MissedByChecksum)
	gr := g.MissRate(g.MissedByChecksum)
	if gr <= ur {
		t.Errorf("structured data miss rate %.6g not above uniform %.6g", gr, ur)
	}
}

func TestFletcherBeatsTCPOnStructuredData(t *testing.T) {
	// Table 8's shape at miniature scale.
	gmon := tiny(10, corpus.GmonOut, 10, 8192)
	tcp, _ := Run(ctx(), gmon, "tcp", Options{})
	f256, _ := Run(ctx(), gmon, "f256", Options{Build: tcpip.BuildOptions{Alg: tcpip.AlgFletcher256}})
	tr := tcp.MissRate(tcp.MissedByChecksum)
	fr := f256.MissRate(f256.MissedByChecksum)
	if tr == 0 {
		t.Skip("no TCP misses at this scale")
	}
	if fr > tr {
		t.Errorf("Fletcher-256 miss rate %.6g above TCP %.6g", fr, tr)
	}
}

type failingWalker struct{}

func (failingWalker) Walk(fn func(string, []byte) error) error {
	fn("one", make([]byte, 512))
	return errTestWalk
}

var errTestWalk = errors.New("walk failed")

func TestRunPropagatesWalkError(t *testing.T) {
	res, err := Run(ctx(), failingWalker{}, "x", Options{})
	if err != errTestWalk {
		t.Fatalf("err = %v", err)
	}
	// The file delivered before the failure is still processed.
	if res.Files != 1 {
		t.Errorf("Files = %d", res.Files)
	}
	if _, err := CollectGlobal(ctx(), failingWalker{}, 1, CollectOptions{}); err != errTestWalk {
		t.Errorf("CollectGlobal err = %v", err)
	}
	if _, err := CollectLocal(ctx(), failingWalker{}, 1, 512, CollectOptions{}); err != errTestWalk {
		t.Errorf("CollectLocal err = %v", err)
	}
	if _, err := CollectLocalAnyCells(ctx(), failingWalker{}, 1, 512, 2, CollectOptions{}); err != errTestWalk {
		t.Errorf("CollectLocalAnyCells err = %v", err)
	}
	if _, err := CollectCellHistogram(ctx(), failingWalker{}, algo.MustLookup("tcp"), CollectOptions{}); err != errTestWalk {
		t.Errorf("CollectCellHistogram err = %v", err)
	}
}

func TestRunTrackWorst(t *testing.T) {
	fs := tiny(20, corpus.GmonOut, 6, 4096)
	res, err := Run(ctx(), fs, "x", Options{TrackWorst: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WorstFiles) == 0 || len(res.WorstFiles) > 3 {
		t.Fatalf("WorstFiles = %d", len(res.WorstFiles))
	}
	for i := 1; i < len(res.WorstFiles); i++ {
		if res.WorstFiles[i].Missed > res.WorstFiles[i-1].Missed {
			t.Fatal("not sorted by misses")
		}
	}
	// Without tracking, nothing is recorded.
	res2, _ := Run(ctx(), fs, "x", Options{})
	if res2.WorstFiles != nil {
		t.Error("WorstFiles recorded without TrackWorst")
	}
}
