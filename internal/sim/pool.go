package sim

import (
	"context"
	"sync"
)

// PoolOptions configures a shard Pool.
type PoolOptions struct {
	// Workers is the number of shard-owning goroutines (default
	// GOMAXPROCS).
	Workers int
	// Queue bounds the pending-job channel (default Workers).  A full
	// queue blocks Submit — the pool's backpressure: a producer that
	// outpaces scoring stalls instead of buffering unboundedly.
	Queue int
	// FlushEvery, when positive, invokes the flush callback on a shard
	// after it has processed that many files since its last flush, so a
	// long-running pool publishes partial results in batches.  Zero
	// flushes only at Drain.
	FlushEvery int
	// Progress, when non-nil, receives per-file throughput updates.
	Progress *Progress
}

func (o PoolOptions) workers() int {
	return Options{Workers: o.Workers}.workers()
}

func (o PoolOptions) queue() int {
	if o.Queue > 0 {
		return o.Queue
	}
	return o.workers()
}

type poolJob struct {
	idx  int
	data []byte
}

// Pool is the open-ended form of the Collect engine: the same
// shard-per-worker, merge-after-drain contract, but fed by Submit calls
// instead of a single corpus walk, so a long-running caller (a
// verification stream in cmd/cksumd) can keep pushing files for as long
// as it likes and publish merged results in batches along the way.
//
// Determinism contract (inherited from Collect): file receives the
// submission-order index, so per-file work depends only on feed order,
// never on worker scheduling; shards must hold only order-independent
// state merged commutatively by the flush callback.  Under that
// contract the accumulated result is byte-identical at any worker
// count and any FlushEvery cadence.
//
// The flush callback runs on worker goroutines for mid-run batches and
// on the Drain caller's goroutine for the final pass, so it must
// synchronize access to whatever it merges into.
type Pool[S any] struct {
	jobs    chan poolJob
	shards  []S
	flush   func(S)
	wg      sync.WaitGroup
	drained bool
}

// NewPool starts the worker goroutines.  newShard builds one private
// shard per worker; file processes one submitted file into a shard;
// flush (optional) publishes a shard's accumulated state — it must
// leave the shard empty-but-reusable (merge into an aggregate, then
// reset) so batches never double-count.
func NewPool[S any](opt PoolOptions,
	newShard func() S,
	file func(shard S, idx int, data []byte),
	flush func(shard S),
) *Pool[S] {
	nw := opt.workers()
	p := &Pool[S]{
		jobs:   make(chan poolJob, opt.queue()),
		shards: make([]S, nw),
		flush:  flush,
	}
	for i := 0; i < nw; i++ {
		p.shards[i] = newShard()
		p.wg.Add(1)
		go func(shard S) {
			defer p.wg.Done()
			since := 0
			for j := range p.jobs {
				file(shard, j.idx, j.data)
				opt.Progress.Observe(len(j.data))
				since++
				if flush != nil && opt.FlushEvery > 0 && since >= opt.FlushEvery {
					flush(shard)
					since = 0
				}
			}
		}(p.shards[i])
	}
	return p
}

// Submit queues one file for processing, blocking while the queue is
// full (backpressure).  idx must be the caller's submission counter —
// the per-file determinism handle.  Returns ctx.Err() if the context is
// cancelled first; files already queued are still processed by Drain.
func (p *Pool[S]) Submit(ctx context.Context, idx int, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case p.jobs <- poolJob{idx: idx, data: data}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drain closes the queue, waits for every queued file to finish, and
// runs the final flush over the shards in creation order — so a
// flush-merged result sees shards deterministically when no mid-run
// batches fired.  Drain is idempotent; Submit must not be called after.
func (p *Pool[S]) Drain() {
	if p.drained {
		return
	}
	p.drained = true
	close(p.jobs)
	p.wg.Wait()
	if p.flush != nil {
		for _, s := range p.shards {
			p.flush(s)
		}
	}
}
