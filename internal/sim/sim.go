// Package sim drives the paper's experiments end to end: it simulates
// FTP transfers of every file in a corpus as 256-byte TCP/IP segments
// over AAL5 (§3.2), enumerates every packet splice of each adjacent
// segment pair, and aggregates the classification counts that form
// Tables 1–3 and 7–10.  It also hosts the distribution-collection
// passes behind Figures 2–3 and Tables 4–6.
package sim

import (
	"runtime"
	"sort"
	"sync"

	"realsum/internal/corpus"
	"realsum/internal/dist"
	"realsum/internal/fletcher"
	"realsum/internal/inet"
	"realsum/internal/splice"
	"realsum/internal/tcpip"
)

// DefaultSegmentSize is the paper's TCP segment payload size: "The TCP
// segment sizes examined were 256 bytes long, except for runt packets
// at the end of files."
const DefaultSegmentSize = 256

// Options configures one simulation run.
type Options struct {
	// Build carries the packet-construction knobs (checksum algorithm,
	// placement, inversion, IP-header fill).
	Build tcpip.BuildOptions
	// SegmentSize is the TCP payload size per packet (default 256).
	SegmentSize int
	// CheckCRC enables the AAL5 CRC test on every splice.
	CheckCRC bool
	// Compress applies LZW to every file before packetization (§5.1).
	Compress bool
	// Workers bounds parallelism across files (default GOMAXPROCS).
	Workers int
	// TrackWorst, when positive, records the TrackWorst files with the
	// most checksum misses — §5.5's observation that undetected-splice
	// rates spike "at the level of individual directories or even
	// files" depends on exactly this attribution.
	TrackWorst int
}

// FileMisses attributes splice-simulation outcomes to one file.
type FileMisses struct {
	Path      string
	Remaining uint64
	Missed    uint64
}

func (o Options) segmentSize() int {
	if o.SegmentSize <= 0 {
		return DefaultSegmentSize
	}
	return o.SegmentSize
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Result aggregates one system's simulation.
type Result struct {
	System  string
	Files   uint64
	Packets uint64
	Bytes   uint64
	splice.Counts
	// WorstFiles holds the files with the most checksum misses, most
	// missed first, when Options.TrackWorst was set.
	WorstFiles []FileMisses
}

// Run simulates the transfer of every file that w yields and inspects
// every splice of adjacent segments.  Files are processed in parallel;
// the result is deterministic because per-file state is independent and
// aggregation is commutative.
func Run(w corpus.Walker, name string, opt Options) (Result, error) {
	res := Result{System: name}
	var mu sync.Mutex
	var wg sync.WaitGroup
	type job struct {
		path string
		data []byte
	}
	jobs := make(chan job, opt.workers())
	var worst []FileMisses

	for i := 0; i < opt.workers(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				counts, packets := processFile(j.data, opt)
				mu.Lock()
				res.Counts.Add(counts)
				res.Files++
				res.Packets += packets
				res.Bytes += uint64(len(j.data))
				if opt.TrackWorst > 0 && counts.Remaining > 0 {
					worst = append(worst, FileMisses{
						Path:      j.path,
						Remaining: counts.Remaining,
						Missed:    counts.MissedByChecksum,
					})
				}
				mu.Unlock()
			}
		}()
	}

	err := w.Walk(func(path string, data []byte) error {
		if opt.Compress {
			data = corpus.Compress(data)
		}
		jobs <- job{path: path, data: data}
		return nil
	})
	close(jobs)
	wg.Wait()

	if opt.TrackWorst > 0 {
		sort.Slice(worst, func(i, j int) bool {
			if worst[i].Missed != worst[j].Missed {
				return worst[i].Missed > worst[j].Missed
			}
			return worst[i].Path < worst[j].Path
		})
		if len(worst) > opt.TrackWorst {
			worst = worst[:opt.TrackWorst]
		}
		res.WorstFiles = worst
	}
	return res, err
}

// processFile simulates one file's transfer and enumerates splices of
// every adjacent packet pair.  Two packet buffers alternate so the
// whole transfer runs without per-packet allocation.
func processFile(data []byte, opt Options) (splice.Counts, uint64) {
	seg := opt.segmentSize()
	cfg := splice.Config{Opts: opt.Build, CheckCRC: opt.CheckCRC}
	flow := tcpip.NewLoopbackFlow(opt.Build)

	var counts splice.Counts
	var packets uint64
	var bufs [2][]byte
	var prev []byte
	for off := 0; off < len(data); off += seg {
		end := off + seg
		if end > len(data) {
			end = len(data)
		}
		slot := int(packets) & 1
		pkt := flow.NextPacket(bufs[slot][:0], data[off:end])
		bufs[slot] = pkt[:0]
		packets++
		if prev != nil {
			counts.Add(splice.EnumeratePair(prev, pkt, cfg))
		}
		prev = pkt
	}
	return counts, packets
}

// ---------------------------------------------------------------------
// Distribution collection passes (Figures 2–3, Tables 4–6).

// CellAlg selects which checksum the cell-distribution pass computes.
type CellAlg int

const (
	// CellTCP histograms the ones-complement sum of each cell.
	CellTCP CellAlg = iota
	// CellFletcher255 histograms the packed mod-255 Fletcher pair.
	CellFletcher255
	// CellFletcher256 histograms the packed mod-256 Fletcher pair.
	CellFletcher256
)

// CollectCellHistogram scans every complete 48-byte cell of every file
// and histograms its checksum value under alg — the Figure 2/Figure 3
// measurement.
func CollectCellHistogram(w corpus.Walker, alg CellAlg) (*dist.Histogram, error) {
	h := dist.NewHistogram()
	err := w.Walk(func(path string, data []byte) error {
		for off := 0; off+dist.CellSize <= len(data); off += dist.CellSize {
			cell := data[off : off+dist.CellSize]
			switch alg {
			case CellTCP:
				h.Add(inet.Sum(cell))
			case CellFletcher255:
				h.Add(fletcher.Mod255.Sum(cell).Checksum16())
			case CellFletcher256:
				h.Add(fletcher.Mod256.Sum(cell).Checksum16())
			}
		}
		return nil
	})
	return h, err
}

// CollectBlockHistogram histograms the TCP checksum of aligned k-cell
// blocks — the k=2,4,… series of Figure 2.
func CollectBlockHistogram(w corpus.Walker, k int) (*dist.Histogram, error) {
	g, err := CollectGlobal(w, k)
	if err != nil {
		return nil, err
	}
	return g.Histogram(), nil
}

// CollectGlobal runs the global k-cell block sampler over a corpus
// (Table 4 "Measured", Table 5 "Globally Congruent", and the
// exclude-identical subtraction).
func CollectGlobal(w corpus.Walker, k int) (*dist.GlobalSampler, error) {
	g := dist.NewGlobalSampler(k)
	err := w.Walk(func(path string, data []byte) error {
		g.AddFile(data)
		return nil
	})
	return g, err
}

// CollectLocal runs the local congruence sampler (Table 5's "Locally
// Congruent" and "Excluding Identical" columns) with the paper's
// 512-byte window.
func CollectLocal(w corpus.Walker, k, window int) (dist.LocalStats, error) {
	var st dist.LocalStats
	err := w.Walk(func(path string, data []byte) error {
		st.Add(dist.SampleLocal(data, k, window))
		return nil
	})
	return st, err
}

// CollectLocalAnyCells runs the paper's actual local sampling method —
// non-contiguous k-cell blocks within the window (§4.6) — with
// perWindow sampled pairs per window position.
func CollectLocalAnyCells(w corpus.Walker, k, window, perWindow int) (dist.LocalStats, error) {
	var st dist.LocalStats
	var fileIdx uint64
	err := w.Walk(func(path string, data []byte) error {
		st.Add(dist.SampleLocalAnyCells(data, k, window, perWindow, 0xA11CE115^fileIdx))
		fileIdx++
		return nil
	})
	return st, err
}
