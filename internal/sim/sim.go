// Package sim drives the paper's experiments end to end: it simulates
// FTP transfers of every file in a corpus as 256-byte TCP/IP segments
// over AAL5 (§3.2), enumerates every packet splice of each adjacent
// segment pair, and aggregates the classification counts that form
// Tables 1–3 and 7–10.  It also hosts the distribution-collection
// passes behind Figures 2–3 and Tables 4–6.
package sim

import (
	"context"
	"runtime"
	"sync"

	"realsum/internal/corpus"
	"realsum/internal/splice"
	"realsum/internal/tcpip"
)

// DefaultSegmentSize is the paper's TCP segment payload size: "The TCP
// segment sizes examined were 256 bytes long, except for runt packets
// at the end of files."
const DefaultSegmentSize = 256

// Options configures one simulation run.
type Options struct {
	// Build carries the packet-construction knobs (checksum algorithm,
	// placement, inversion, IP-header fill).
	Build tcpip.BuildOptions
	// SegmentSize is the TCP payload size per packet (default 256).
	SegmentSize int
	// CheckCRC enables the AAL5 CRC test on every splice.
	CheckCRC bool
	// Compress applies LZW to every file before packetization (§5.1).
	Compress bool
	// Workers bounds parallelism across files (default GOMAXPROCS).
	Workers int
	// TrackWorst, when positive, records the TrackWorst files with the
	// most checksum misses — §5.5's observation that undetected-splice
	// rates spike "at the level of individual directories or even
	// files" depends on exactly this attribution.
	TrackWorst int
	// Progress, when non-nil, receives per-file throughput updates.
	Progress *Progress
}

// FileMisses attributes splice-simulation outcomes to one file.
type FileMisses struct {
	Path      string
	Remaining uint64
	Missed    uint64
}

func (o Options) segmentSize() int {
	if o.SegmentSize <= 0 {
		return DefaultSegmentSize
	}
	return o.SegmentSize
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Result aggregates one system's simulation.
type Result struct {
	System  string
	Files   uint64
	Packets uint64
	Bytes   uint64
	splice.Counts
	// WorstFiles holds the files with the most checksum misses, most
	// missed first, when Options.TrackWorst was set.
	WorstFiles []FileMisses
}

// Run simulates the transfer of every file that w yields and inspects
// every splice of adjacent segments.  Files are processed in parallel;
// the result is deterministic because per-file state is independent and
// aggregation is commutative.
//
// Aggregation is sharded: each worker accumulates into a private
// Result and a bounded top-K heap (TrackWorst entries), holding no lock
// on the per-file path; the shards merge once after the walk drains.
// ctx cancels the run between files; the partial result and ctx.Err()
// are returned.
func Run(ctx context.Context, w corpus.Walker, name string, opt Options) (Result, error) {
	nw := opt.workers()
	type job struct {
		path string
		data []byte
	}
	jobs := make(chan job, nw)
	shards := make([]Result, nw)
	heaps := make([]*topK, nw)
	var wg sync.WaitGroup

	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := newFileRunner(opt)
			shard := &shards[id]
			h := newTopK(opt.TrackWorst)
			for j := range jobs {
				counts, packets := r.run(j.data)
				shard.Counts.Add(counts)
				shard.Files++
				shard.Packets += packets
				shard.Bytes += uint64(len(j.data))
				opt.Progress.Observe(len(j.data))
				if opt.TrackWorst > 0 && counts.Remaining > 0 {
					h.offer(FileMisses{
						Path:      j.path,
						Remaining: counts.Remaining,
						Missed:    counts.MissedByChecksum,
					})
				}
			}
			heaps[id] = h
		}(i)
	}

	err := w.Walk(func(path string, data []byte) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if opt.Compress {
			data = corpus.Compress(data)
		}
		jobs <- job{path: path, data: data}
		return nil
	})
	close(jobs)
	wg.Wait()

	res := Result{System: name}
	merged := newTopK(opt.TrackWorst)
	for i := range shards {
		res.Counts.Add(shards[i].Counts)
		res.Files += shards[i].Files
		res.Packets += shards[i].Packets
		res.Bytes += shards[i].Bytes
		merged.merge(heaps[i])
	}
	if opt.TrackWorst > 0 {
		res.WorstFiles = merged.sorted()
	}
	return res, err
}

// fileRunner holds one worker's reusable simulation state: the splice
// enumerator and the alternating packet buffers.  After warm-up, a
// runner processes packet pairs with zero allocations.
type fileRunner struct {
	opt  Options
	seg  int
	cfg  splice.Config
	enum *splice.Enumerator
	flow tcpip.Flow
	bufs [2][]byte
}

func newFileRunner(opt Options) *fileRunner {
	return &fileRunner{
		opt:  opt,
		seg:  opt.segmentSize(),
		cfg:  splice.Config{Opts: opt.Build, CheckCRC: opt.CheckCRC},
		enum: splice.NewEnumerator(),
	}
}

// run simulates one file's transfer and enumerates splices of every
// adjacent packet pair.  Two packet buffers alternate so the whole
// transfer runs without per-packet allocation.
func (r *fileRunner) run(data []byte) (splice.Counts, uint64) {
	// Each file gets a fresh flow (sequence numbers and IP IDs restart);
	// the copy through the inlined constructor stays off the heap.
	r.flow = *tcpip.NewLoopbackFlow(r.opt.Build)

	var counts splice.Counts
	var packets uint64
	var prev []byte
	for off := 0; off < len(data); off += r.seg {
		end := off + r.seg
		if end > len(data) {
			end = len(data)
		}
		slot := int(packets) & 1
		pkt := r.flow.NextPacket(r.bufs[slot][:0], data[off:end])
		r.bufs[slot] = pkt[:0]
		packets++
		if prev != nil {
			counts.Add(r.enum.Pair(prev, pkt, r.cfg))
		}
		prev = pkt
	}
	return counts, packets
}
