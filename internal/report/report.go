// Package report renders the experiment results in the layout of the
// paper's tables, plus TSV series for the figures.
package report

import (
	"fmt"
	"strings"

	"realsum/internal/sim"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns the aligned text form.  Width sizing spans the longest
// row, not just the header count, so a row with surplus cells renders
// aligned instead of panicking mid-write.
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Percent renders a fraction as the paper's percentage style.
func Percent(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x < 0.00001:
		return fmt.Sprintf("%.7f%%", 100*x)
	case x < 0.001:
		return fmt.Sprintf("%.5f%%", 100*x)
	default:
		return fmt.Sprintf("%.3f%%", 100*x)
	}
}

// Count renders an integer with thousands separators, as the paper's
// tables do.
func Count(n uint64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
		if len(s) > lead {
			b.WriteByte(',')
		}
	}
	for i := lead; i < len(s); i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < len(s) {
			b.WriteByte(',')
		}
	}
	return b.String()
}

// SpliceTable renders one system's splice results in the row layout of
// Tables 1–3: Total / Caught by Header / Identical data / Remaining /
// Missed by CRC / Missed by TCP, with percentages of Remaining.
func SpliceTable(results []sim.Result, checksumName string) string {
	t := Table{
		Headers: []string{"system", "", "code", "% remaining splices"},
	}
	for _, r := range results {
		t.AddRow(r.System, "Total", Count(r.Total), "")
		t.AddRow(fmt.Sprintf("%d files", r.Files), "Caught by Header", Count(r.CaughtByHeader), "")
		t.AddRow(fmt.Sprintf("%s pkts", Count(r.Packets)), "Identical data", Count(r.Identical), "")
		t.AddRow("", "Remaining splices", Count(r.Remaining), "(100%)")
		t.AddRow("", "Missed by CRC", Count(r.MissedByCRC), Percent(r.MissRate(r.MissedByCRC)))
		t.AddRow("", "Missed by "+checksumName, Count(r.MissedByChecksum), Percent(r.MissRate(r.MissedByChecksum)))
		t.AddRow("", "", "", "")
	}
	return t.Render()
}

// Series is a named sequence of (x, y) points for the figure outputs.
type Series struct {
	Name string
	Y    []float64
}

// TSV renders one or more series as tab-separated columns with an index
// column, truncated to the shortest series unless pad is true (missing
// values render empty).
func TSV(series []Series, maxRows int) string {
	var b strings.Builder
	b.WriteString("i")
	rows := 0
	for _, s := range series {
		fmt.Fprintf(&b, "\t%s", s.Name)
		if len(s.Y) > rows {
			rows = len(s.Y)
		}
	}
	b.WriteByte('\n')
	if maxRows > 0 && rows > maxRows {
		rows = maxRows
	}
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%d", i)
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "\t%.6g", s.Y[i])
			} else {
				b.WriteByte('\t')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
