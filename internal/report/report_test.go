package report

import (
	"strings"
	"testing"

	"realsum/internal/sim"
	"realsum/internal/splice"
)

func TestTableRenderAlignment(t *testing.T) {
	tbl := Table{
		Title:   "Demo",
		Headers: []string{"a", "long-header", "c"},
	}
	tbl.AddRow("x", "1", "2")
	tbl.AddRow("longer-cell", "3", "4")
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a ") || !strings.Contains(lines[1], "long-header") {
		t.Errorf("header line: %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("rule line: %q", lines[2])
	}
}

func TestTableRenderRowsWiderThanHeaders(t *testing.T) {
	// Rows may carry more cells than there are headers (the dynamic
	// per-algorithm tables do this); Render must pad widths to the
	// longest row rather than panic or truncate.
	tbl := Table{Headers: []string{"sys"}}
	tbl.AddRow("a", "1", "22")
	tbl.AddRow("bb", "333", "4")
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "1") || !strings.Contains(lines[2], "22") {
		t.Errorf("row cells beyond headers dropped: %q", lines[2])
	}
	// Columns align: every "333" sits under its own column start.
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows not padded to equal width:\n%q\n%q", lines[2], lines[3])
	}
}

func TestPercent(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.5, "50.000%"},
		{0.0001, "0.01000%"},
		{0.0000001, "0.0000100%"},
	}
	for _, tc := range tests {
		if got := Percent(tc.in); got != tc.want {
			t.Errorf("Percent(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestCount(t *testing.T) {
	tests := []struct {
		in   uint64
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1,000"},
		{1234567, "1,234,567"},
		{100000, "100,000"},
	}
	for _, tc := range tests {
		if got := Count(tc.in); got != tc.want {
			t.Errorf("Count(%d) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSpliceTable(t *testing.T) {
	r := sim.Result{
		System:  "sics.se:/opt",
		Files:   10,
		Packets: 1234,
	}
	r.Counts = splice.Counts{
		Total: 100000, CaughtByHeader: 60000, Identical: 1000,
		Remaining: 39000, MissedByCRC: 1, MissedByChecksum: 42,
	}
	out := SpliceTable([]sim.Result{r}, "TCP")
	for _, want := range []string{"sics.se:/opt", "Caught by Header", "Identical data", "Missed by CRC", "Missed by TCP", "100,000"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTSV(t *testing.T) {
	out := TSV([]Series{
		{Name: "a", Y: []float64{1, 2, 3}},
		{Name: "b", Y: []float64{10, 20}},
	}, 0)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "i\ta\tb" {
		t.Errorf("header: %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("rows: %d", len(lines))
	}
	if lines[3] != "2\t3\t" {
		t.Errorf("padded row: %q", lines[3])
	}
	capped := TSV([]Series{{Name: "a", Y: []float64{1, 2, 3, 4, 5}}}, 2)
	if got := len(strings.Split(strings.TrimRight(capped, "\n"), "\n")); got != 3 {
		t.Errorf("maxRows not applied: %d lines", got)
	}
}
