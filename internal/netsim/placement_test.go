package netsim

import (
	"context"
	"math/rand/v2"
	"testing"
)

func TestPlacementsByName(t *testing.T) {
	pls, unknown := PlacementsByName([]string{"segment", "nosuch", "e2e"})
	if len(pls) != 2 || pls[0] != PlaceE2E || pls[1] != PlaceSegment {
		t.Errorf("got %v, want [e2e segment] in battery order", pls)
	}
	if len(unknown) != 1 || unknown[0] != "nosuch" {
		t.Errorf("unknown = %v, want [nosuch]", unknown)
	}
	if pls, unknown := PlacementsByName(nil); len(pls) != 0 || unknown != nil {
		t.Errorf("empty input: got %v / %v", pls, unknown)
	}
}

func TestConfigPlacementsNormalization(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want []Placement
	}{
		{"default tcp", Config{}, []Placement{PlaceE2E, PlaceSegment}},
		{"default udpfrag", Config{Mode: ModeUDPFrag}, []Placement{PlaceE2E}},
		{"segment only", Config{Placements: []Placement{PlaceSegment}}, []Placement{PlaceSegment}},
		{"segment only udpfrag falls back", Config{Mode: ModeUDPFrag, Placements: []Placement{PlaceSegment}}, []Placement{PlaceE2E}},
		{"dedup", Config{Placements: []Placement{PlaceE2E, PlaceE2E, PlaceSegment}}, []Placement{PlaceE2E, PlaceSegment}},
	}
	for _, tc := range cases {
		got := tc.cfg.placements()
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
				break
			}
		}
	}
}

// nopChannel delivers every cell untouched — the lossless channel the
// cross-placement differential oracle runs on.
type nopChannel struct{}

func (nopChannel) Name() string                     { return "nop" }
func (nopChannel) Transmit(_ *rand.Rand, _ *Stream) {}

// TestNetsimLosslessDifferential is the cross-placement consistency
// oracle: on a lossless channel every delivered candidate is the sent
// PDU, so the per-segment tally merged over all segments must equal the
// end-to-end tally for every registry algorithm — zero corrupted, zero
// undetected, equal delivered counts.
func TestNetsimLosslessDifferential(t *testing.T) {
	w := sliceWalker{files: [][]byte{varied(4096), zeroHeavy(3000), {}, varied(257)}}
	cfg := Config{
		Trials:   3,
		Seed:     11,
		Channels: []ChannelSpec{{Name: "nop", New: func() Channel { return nopChannel{} }}},
	}
	tally, err := Run(context.Background(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := tally.Channels[0]
	if c.PacketsSent == 0 {
		t.Fatal("no packets sent; test is vacuous")
	}
	if c.Lost != 0 || c.PDUsDelivered != c.PacketsSent || c.Corrupted != 0 {
		t.Fatalf("lossless channel: lost=%d delivered=%d/%d corrupted=%d",
			c.Lost, c.PDUsDelivered, c.PacketsSent, c.Corrupted)
	}
	e2e := c.Placement(PlaceE2E.String())
	seg := c.Placement(PlaceSegment.String())
	if e2e == nil || seg == nil {
		t.Fatal("default run must score both placements")
	}
	if e2e.Delivered != seg.Delivered || e2e.Delivered != c.PacketsSent {
		t.Errorf("delivered counts differ: e2e=%d segment=%d sent=%d",
			e2e.Delivered, seg.Delivered, c.PacketsSent)
	}
	for _, pl := range []*PlacementTally{e2e, seg} {
		if pl.Corrupted != 0 || pl.Intact != pl.Delivered {
			t.Errorf("%s: corrupted=%d intact=%d/%d on a lossless channel",
				pl.Name, pl.Corrupted, pl.Intact, pl.Delivered)
		}
		if len(pl.Algos) == 0 {
			t.Fatalf("%s: no algorithms scored", pl.Name)
		}
		for _, a := range pl.Algos {
			if a.Detected != 0 || a.Undetected != 0 {
				t.Errorf("%s/%s: detected=%d undetected=%d, want 0/0",
					pl.Name, a.Name, a.Detected, a.Undetected)
			}
		}
	}
	for _, pos := range []AlgoTally{seg.HeaderPos, seg.TrailerPos} {
		if pos.Detected != 0 || pos.Undetected != 0 {
			t.Errorf("%s: detected=%d undetected=%d on a lossless channel",
				pos.Name, pos.Detected, pos.Undetected)
		}
	}
	// The two placements' algorithm tallies must be element-wise equal.
	for i := range e2e.Algos {
		if e2e.Algos[i] != seg.Algos[i] {
			t.Errorf("algo %s: e2e %+v != segment %+v", e2e.Algos[i].Name, e2e.Algos[i], seg.Algos[i])
		}
	}
}

// headSplice deterministically builds the §5.3 head-substitution
// splice: packet 0 keeps its data cells but loses its trailer, packet 1
// loses its data cells but keeps its trailer.  The receiver sees one
// candidate — packet 0's head under packet 1's identity.
type headSplice struct{}

func (headSplice) Name() string { return "headsplice" }

func (headSplice) Transmit(_ *rand.Rand, s *Stream) {
	out := s.Cells[:0]
	oout := s.Origin[:0]
	for i := range s.Cells {
		eop := s.Cells[i].Header.EndOfPacket()
		if (s.Origin[i] == 0 && !eop) || (s.Origin[i] == 1 && eop) {
			out = append(out, s.Cells[i])
			oout = append(oout, s.Origin[i])
		}
	}
	s.Cells = out
	s.Origin = oout
}

// TestNetsimHeadSplicePlacement reproduces the paper's Table 9 claim by
// injection on a single deterministic fault.  Two all-zero 256-byte
// segments differ only in their sequence numbers and checksum fields
// (the IP ID change is exactly compensated by the IP header checksum in
// the one's-complement sum), so the spliced candidate's segment bytes
// are byte-for-byte packet 0's sent segment:
//
//   - the header-placed TCP check rides inside those bytes and is
//     self-consistent — it misses, as would ANY header-placed check,
//     Fletcher and CRC included, since check and coverage share fate;
//   - the trailer-placed TCP check carries packet 1's transmitted field
//     value, which disagrees with the recomputed sum — it detects;
//   - the per-segment one's-complement "tcp" registry sum also misses,
//     because every valid equal-length segment of the flow sums to the
//     same self-compensating constant;
//   - CRC-32 over the received segment detects the sequence-number
//     difference from packet 1's segment.
func TestNetsimHeadSplicePlacement(t *testing.T) {
	w := sliceWalker{files: [][]byte{make([]byte, 512)}} // two all-zero 256-byte segments
	cfg := Config{
		Trials:   1,
		Seed:     21,
		Channels: []ChannelSpec{{Name: "headsplice", New: func() Channel { return headSplice{} }}},
	}
	tally, err := Run(context.Background(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := tally.Channels[0]
	if c.PacketsSent != 2 || c.PDUsDelivered != 1 || c.Lost != 1 {
		t.Fatalf("splice bookkeeping: sent=%d delivered=%d lost=%d, want 2/1/1",
			c.PacketsSent, c.PDUsDelivered, c.Lost)
	}
	seg := c.Placement(PlaceSegment.String())
	if seg.Corrupted != 1 {
		t.Fatalf("segment placement corrupted=%d, want 1 (the splice)", seg.Corrupted)
	}
	if seg.HeaderPos.Undetected != 1 {
		t.Errorf("header-placed TCP check detected the head splice; it must fate-share and miss (%+v)", seg.HeaderPos)
	}
	if seg.TrailerPos.Detected != 1 || seg.TrailerPos.Undetected != 0 {
		t.Errorf("trailer-placed TCP check missed the head splice (%+v)", seg.TrailerPos)
	}
	tcp, _ := seg.Algo("tcp")
	if tcp.Undetected != 1 {
		t.Errorf("per-segment one's-complement sum should self-compensate and miss: %+v", tcp)
	}
	crc, _ := seg.Algo("crc32")
	if crc.Detected != 1 {
		t.Errorf("per-segment CRC-32 should detect the sequence-number difference: %+v", crc)
	}
	e2e := c.Placement(PlaceE2E.String())
	if e2e.Corrupted != 1 {
		t.Errorf("e2e placement corrupted=%d, want 1", e2e.Corrupted)
	}
}

// padFlip damages one AAL5 padding byte in every trailer cell — bytes
// the end-to-end PDU check covers but no TCP segment contains.
type padFlip struct{}

func (padFlip) Name() string { return "padflip" }

func (padFlip) Transmit(_ *rand.Rand, s *Stream) {
	for i := range s.Cells {
		if s.Cells[i].Header.EndOfPacket() {
			// For a 296-byte packet in 7 cells the trailer cell holds
			// segment bytes 0–7, padding 8–39, AAL5 trailer 40–47.
			s.Cells[i].Payload[16] ^= 0xFF
		}
	}
}

// TestNetsimPaddingBlindSegment pins the placements' coverage split: a
// fault confined to AAL5 padding corrupts the candidate end to end but
// leaves every TCP segment intact, so only the e2e placement sees it.
func TestNetsimPaddingBlindSegment(t *testing.T) {
	w := sliceWalker{files: [][]byte{make([]byte, 512)}}
	cfg := Config{
		Trials:   1,
		Seed:     22,
		Channels: []ChannelSpec{{Name: "padflip", New: func() Channel { return padFlip{} }}},
	}
	tally, err := Run(context.Background(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := tally.Channels[0]
	if c.PDUsDelivered != 2 {
		t.Fatalf("delivered=%d, want 2", c.PDUsDelivered)
	}
	e2e := c.Placement(PlaceE2E.String())
	seg := c.Placement(PlaceSegment.String())
	if e2e.Corrupted != 2 {
		t.Errorf("e2e placement corrupted=%d, want 2 (padding is covered end to end)", e2e.Corrupted)
	}
	if seg.Corrupted != 0 || seg.Intact != 2 {
		t.Errorf("segment placement corrupted=%d intact=%d, want 0/2 (padding is outside every segment)",
			seg.Corrupted, seg.Intact)
	}
}
