package netsim

import (
	"context"
	"math/rand/v2"
	"strings"
	"testing"
)

// deadChannel delivers nothing — the terminator case: every lane must
// exhaust at the retry cap instead of looping forever.
type deadChannel struct{}

func (deadChannel) Name() string { return "dead" }
func (deadChannel) Transmit(_ *rand.Rand, s *Stream) {
	s.Cells = s.Cells[:0]
	s.Origin = s.Origin[:0]
}

// TestRetransWorkersDeterministic extends the byte-identity oracle over
// the retransmission loop: with Retrans on, the report — retrans tables,
// residual contrast and retrans[...] pin lines included — must be
// byte-identical at workers 1, 2 and 8, because every retry's fault
// pattern derives from RetrySeed(trialSeed, packet, attempt) and never
// from scheduling.
func TestRetransWorkersDeterministic(t *testing.T) {
	fs := sliceWalker{files: [][]byte{zeroHeavy(6000), varied(5000), varied(900)}}
	cfg := Config{Trials: 3, Seed: 21, Retrans: true}
	var reports []string
	workerCounts := []int{1, 2, 8}
	for _, workers := range workerCounts {
		cfg.Workers = workers
		tally, err := Run(context.Background(), fs, cfg)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		reports = append(reports, tally.Report())
	}
	for i := 1; i < len(reports); i++ {
		if reports[0] != reports[i] {
			t.Errorf("retrans report differs between workers=%d and workers=%d",
				workerCounts[0], workerCounts[i])
		}
	}
	if !strings.Contains(reports[0], "retransmission loop (retry cap 8)") {
		t.Error("retrans report missing the retransmission tables")
	}
	if !strings.Contains(reports[0], "residual error vs miss rate") {
		t.Error("retrans report missing the residual contrast section")
	}
	if !strings.Contains(reports[0], "retrans[tcp/drop]") {
		t.Error("retrans report missing the retrans pin lines")
	}
}

// TestRetransZeroAllocTrial guards the retry hot path: after a warm-up
// file has sized the lane table and retry buffers, repeated trials with
// the retransmission loop enabled must not allocate (ModeTCP).
func TestRetransZeroAllocTrial(t *testing.T) {
	w := newWorker(Config{Trials: 2, Seed: 9, Retrans: true})
	data := varied(8192)
	w.file(0, data) // warm-up: sizes every reusable buffer incl. retry lanes
	for c := range w.chans {
		c := c
		allocs := testing.AllocsPerRun(20, func() {
			w.trial(0, c, 0)
		})
		if allocs != 0 {
			t.Errorf("channel %s: %v allocs per retrans trial, want 0", w.tally.Channels[c].Name, allocs)
		}
	}
}

// TestRetransLosslessOracle: a channel that never damages anything
// triggers no retries, so every lane's retrans tally degenerates to the
// open-loop counts — one transmission per packet, every packet accepted
// intact, zero residual, goodput equal to the oracle's.
func TestRetransLosslessOracle(t *testing.T) {
	w := sliceWalker{files: [][]byte{varied(5000), zeroHeavy(3000)}}
	cfg := Config{
		Trials:   3,
		Seed:     5,
		Retrans:  true,
		Channels: []ChannelSpec{{Name: "nop", New: func() Channel { return nopChannel{} }}},
	}
	tally, err := Run(context.Background(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := &tally.Channels[0]
	if c.Corrupted != 0 || c.Lost != 0 {
		t.Fatalf("lossless channel corrupted %d / lost %d; oracle is vacuous", c.Corrupted, c.Lost)
	}
	for pi := range c.Placements {
		p := &c.Placements[pi]
		check := func(name string, r RetransTally) {
			if r.Accepted != c.PacketsSent || r.Exhausted != 0 {
				t.Errorf("%s/%s: accepted %d exhausted %d, want %d/0",
					p.Name, name, r.Accepted, r.Exhausted, c.PacketsSent)
			}
			if r.Transmissions != c.PacketsSent {
				t.Errorf("%s/%s: %d transmissions, want one per packet (%d)",
					p.Name, name, r.Transmissions, c.PacketsSent)
			}
			if r.TxBytes != c.Bytes {
				t.Errorf("%s/%s: TxBytes %d != sent bytes %d", p.Name, name, r.TxBytes, c.Bytes)
			}
			if r.AcceptedCorrupt != 0 || r.ResidualBytes != 0 {
				t.Errorf("%s/%s: residual %d bytes over %d corrupt accepts on a lossless channel",
					p.Name, name, r.ResidualBytes, r.AcceptedCorrupt)
			}
			if ov, ok := r.OverheadVs(p.Oracle); !ok || ov != 0 {
				t.Errorf("%s/%s: overhead vs oracle = %v (ok=%v), want exactly 0", p.Name, name, ov, ok)
			}
		}
		for a := range p.Algos {
			check(p.Algos[a].Name, p.Retrans[a])
		}
		check("oracle", p.Oracle)
	}
}

// TestRetransDeadChannel: a channel that delivers nothing can never
// satisfy any lane, so the retry cap is the only terminator — every
// lane exhausts after cap+1 transmissions per packet and delivers
// nothing.
func TestRetransDeadChannel(t *testing.T) {
	w := sliceWalker{files: [][]byte{varied(2000)}}
	cfg := Config{
		Trials:     2,
		Seed:       6,
		Retrans:    true,
		MaxRetries: 3,
		Channels:   []ChannelSpec{{Name: "dead", New: func() Channel { return deadChannel{} }}},
	}
	tally, err := Run(context.Background(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := &tally.Channels[0]
	if c.Lost != c.PacketsSent {
		t.Fatalf("dead channel lost %d of %d packets", c.Lost, c.PacketsSent)
	}
	wantTx := uint64(cfg.MaxRetries+1) * c.PacketsSent
	for pi := range c.Placements {
		p := &c.Placements[pi]
		check := func(name string, r RetransTally) {
			if r.Accepted != 0 || r.Exhausted != c.PacketsSent {
				t.Errorf("%s/%s: accepted %d exhausted %d, want 0/%d",
					p.Name, name, r.Accepted, r.Exhausted, c.PacketsSent)
			}
			if r.Transmissions != wantTx {
				t.Errorf("%s/%s: %d transmissions, want (cap+1)×packets = %d",
					p.Name, name, r.Transmissions, wantTx)
			}
			if r.DeliveredBytes != 0 {
				t.Errorf("%s/%s: delivered %d bytes on a dead channel", p.Name, name, r.DeliveredBytes)
			}
			if _, ok := r.MeanTx(); ok {
				t.Errorf("%s/%s: MeanTx ok with zero deliveries", p.Name, name)
			}
		}
		for a := range p.Algos {
			check(p.Algos[a].Name, p.Retrans[a])
		}
		check("oracle", p.Oracle)
	}
}

// TestRetransConservation pins the closed-loop conservation laws over
// the full default battery: every packet is accepted or exhausted by
// every lane, residual bytes imply corrupt accepts, the oracle never
// accepts corruption, and no lane beats the oracle's acceptance count
// (the oracle accepts at the first intact delivery — the earliest any
// honest protocol could stop).
func TestRetransConservation(t *testing.T) {
	w := sliceWalker{files: [][]byte{zeroHeavy(6000), varied(4000)}}
	tally, err := Run(context.Background(), w, Config{Trials: 3, Seed: 11, Retrans: true})
	if err != nil {
		t.Fatal(err)
	}
	for ci := range tally.Channels {
		c := &tally.Channels[ci]
		for pi := range c.Placements {
			p := &c.Placements[pi]
			check := func(name string, r RetransTally) {
				if r.Accepted+r.Exhausted != c.PacketsSent {
					t.Errorf("%s/%s/%s: accepted %d + exhausted %d != sent %d",
						c.Name, p.Name, name, r.Accepted, r.Exhausted, c.PacketsSent)
				}
				if r.ResidualBytes > 0 && r.AcceptedCorrupt == 0 {
					t.Errorf("%s/%s/%s: residual %d bytes with zero corrupt accepts",
						c.Name, p.Name, name, r.ResidualBytes)
				}
				if r.Transmissions < c.PacketsSent {
					t.Errorf("%s/%s/%s: %d transmissions < %d packets",
						c.Name, p.Name, name, r.Transmissions, c.PacketsSent)
				}
			}
			for a := range p.Algos {
				check(p.Algos[a].Name, p.Retrans[a])
			}
			check("oracle", p.Oracle)
			if p.Oracle.AcceptedCorrupt != 0 || p.Oracle.ResidualBytes != 0 {
				t.Errorf("%s/%s: oracle accepted %d corrupt deliveries (%d residual bytes)",
					c.Name, p.Name, p.Oracle.AcceptedCorrupt, p.Oracle.ResidualBytes)
			}
		}
	}
}

// TestRetrySeedDistinct: the retry sub-stream must not collide with the
// trial-seed chain or with itself across (packet, attempt).
func TestRetrySeedDistinct(t *testing.T) {
	seen := map[uint64]string{}
	add := func(key string, s uint64) {
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: %s and %s both derive %#x", prev, key, s)
		}
		seen[s] = key
	}
	trial := TrialSeed(7, 0, 0, 0)
	add("trial(7,0,0,0)", trial)
	add("trial(7,0,0,1)", TrialSeed(7, 0, 0, 1))
	for p := 0; p < 8; p++ {
		for a := 1; a <= 8; a++ {
			add("retry", RetrySeed(trial, p, a))
		}
	}
}

// TestRetransDisabledUntouched: with Retrans off, no lane state is
// shaped and the report carries no retrans section — the default-path
// regression guard.
func TestRetransDisabledUntouched(t *testing.T) {
	w := sliceWalker{files: [][]byte{varied(3000)}}
	tally, err := Run(context.Background(), w, Config{Trials: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if tally.Retrans {
		t.Error("Retrans set on a default run")
	}
	for ci := range tally.Channels {
		for pi := range tally.Channels[ci].Placements {
			p := &tally.Channels[ci].Placements[pi]
			if p.Retrans != nil || p.Oracle != (RetransTally{}) {
				t.Errorf("%s/%s: retrans lanes shaped without Config.Retrans",
					tally.Channels[ci].Name, p.Name)
			}
		}
	}
	if r := tally.Report(); strings.Contains(r, "retransmission loop") || strings.Contains(r, "retrans[") {
		t.Error("default report renders retrans sections")
	}
}
