package netsim

import (
	"context"
	"strings"
	"testing"

	"realsum/internal/corpus"
	"realsum/internal/errmodel"
	"realsum/internal/lossim"
)

// TestNetsimCompressedWorkersDeterministic extends the engine's
// byte-identity guarantee to the LZ payload stage: compression is a
// pure per-file function, so reports at 1, 2 and 8 workers must stay
// identical with -compress on, in both transport modes.
func TestNetsimCompressedWorkersDeterministic(t *testing.T) {
	fs := corpus.StanfordU1().Scale(0.02).Build()
	for _, mode := range []Mode{ModeTCP, ModeUDPFrag} {
		cfg := Config{Mode: mode, Trials: 2, Seed: 42, Compress: true}
		var reports []string
		workerCounts := []int{1, 2, 8}
		for _, workers := range workerCounts {
			cfg.Workers = workers
			tally, err := Run(context.Background(), fs, cfg)
			if err != nil {
				t.Fatalf("mode %s workers %d: %v", mode, workers, err)
			}
			if !tally.Compressed {
				t.Fatalf("mode %s: tally from a Compress run is not marked Compressed", mode)
			}
			reports = append(reports, tally.Report())
		}
		for i := 1; i < len(reports); i++ {
			if reports[0] != reports[i] {
				t.Errorf("mode %s: compressed report differs between workers=%d and workers=%d:\n%s\n---\n%s",
					mode, workerCounts[0], workerCounts[i], reports[0], reports[i])
			}
		}
	}
}

// TestNetsimCompressedAccounting: the channel conservation laws hold
// unchanged on compressed payloads, and the Comp stats account for
// every walked file with ordered ratios.
func TestNetsimCompressedAccounting(t *testing.T) {
	files := [][]byte{zeroHeavy(4096), varied(3000), {}, varied(100)}
	w := sliceWalker{files: files}
	tally, err := Run(context.Background(), w, Config{Trials: 5, Seed: 7, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tally.Channels {
		if c.PDUsDelivered+c.Lost != c.PacketsSent {
			t.Errorf("%s: delivered %d + lost %d != sent %d", c.Name, c.PDUsDelivered, c.Lost, c.PacketsSent)
		}
		if c.Intact+c.Corrupted != c.PDUsDelivered {
			t.Errorf("%s: intact %d + corrupted %d != delivered %d", c.Name, c.Intact, c.Corrupted, c.PDUsDelivered)
		}
		for _, pl := range c.Placements {
			for _, a := range pl.Algos {
				if a.Detected+a.Undetected != pl.Corrupted {
					t.Errorf("%s/%s/%s: detected %d + undetected %d != corrupted %d",
						c.Name, pl.Name, a.Name, a.Detected, a.Undetected, pl.Corrupted)
				}
			}
		}
	}

	var raw uint64
	for _, f := range files {
		raw += uint64(len(f))
	}
	if tally.Comp.Files != uint64(len(files)) {
		t.Errorf("Comp.Files = %d, want %d (one add per walked file)", tally.Comp.Files, len(files))
	}
	if tally.Comp.RawBytes != raw {
		t.Errorf("Comp.RawBytes = %d, want %d", tally.Comp.RawBytes, raw)
	}
	if tally.Comp.CompBytes == 0 {
		t.Error("Comp.CompBytes = 0 after compressing non-empty files")
	}
	min, mean, max := tally.Comp.MinRatio(), tally.Comp.MeanRatio(), tally.Comp.MaxRatio()
	if !(min > 0 && min <= max) {
		t.Errorf("ratio extremes out of order: min=%v max=%v", min, max)
	}
	if mean < min || mean > max {
		t.Errorf("mean ratio %v outside [min=%v, max=%v]", mean, min, max)
	}
	if !strings.Contains(tally.Report(), "lz payload stage:") {
		t.Error("compressed report lacks the lz ratio header line")
	}
	if !strings.Contains(tally.Report(), "shape[tcp+lz/") {
		t.Error("compressed report pin lines not relabeled tcp+lz")
	}
}

// TestNetsimCompressedZeroAllocTrial: the per-trial hot path stays
// allocation-free with the LZ stage enabled, and after buffer warm-up
// the whole per-file cycle (Reset, Compress, rebuild, trials) settles
// to zero steady-state allocations too.
func TestNetsimCompressedZeroAllocTrial(t *testing.T) {
	w := newWorker(Config{Trials: 2, Seed: 9, Compress: true})
	data := zeroHeavy(8192)
	w.file(0, data) // warm-up: sizes every reusable buffer, compBuf included
	for c := range w.chans {
		c := c
		allocs := testing.AllocsPerRun(20, func() {
			w.trial(0, c, 0)
		})
		if allocs != 0 {
			t.Errorf("channel %s: %v allocs per trial, want 0", w.tally.Channels[c].Name, allocs)
		}
	}
	if allocs := testing.AllocsPerRun(10, func() {
		w.file(0, data)
	}); allocs != 0 {
		t.Errorf("per-file cycle with compression: %v allocs, want 0", allocs)
	}
}

// TestNetsimTable7Convergence is the acceptance claim, measured by
// injection at a pinned seed: over zero-heavy data, solid bursts and
// loss-formed splices slip past the ones-complement and
// position-weighted sums (Table 7's "nonrandom data" rates), but once
// the payload passes the LZ stage the same fault processes hit
// near-uniform bytes and the misses collapse toward the 2^-k floor —
// here, with a few hundred corrupted deliveries, to (almost) none.
func TestNetsimTable7Convergence(t *testing.T) {
	w := sliceWalker{files: [][]byte{zeroHeavy(16384), zeroHeavy(12000)}}
	cfg := Config{
		Trials: 30,
		Seed:   11,
		Channels: []ChannelSpec{
			{Name: "burst", New: func() Channel {
				return &CellCorrupt{Model: errmodel.SolidBurst{Bits: 32}, PerCell: 0.05}
			}},
			{Name: "drop", New: func() Channel {
				return &DropChannel{Policy: lossim.RandomLoss{P: 0.02}}
			}},
		},
	}
	run := func(compress bool) *Tally {
		c := cfg
		c.Compress = compress
		tally, err := Run(context.Background(), w, c)
		if err != nil {
			t.Fatal(err)
		}
		return tally
	}
	raw, comp := run(false), run(true)

	// Bursts, scored on the per-segment span — the transport-checksum
	// coverage, which excludes the AAL5 zero padding whose inversion
	// cancels in the ones-complement sum regardless of payload.
	for _, algoName := range []string{"tcp", "f255", "adler32"} {
		rawMiss := placementUndetected(t, raw, "burst", PlaceSegment.String(), algoName)
		compMiss := placementUndetected(t, comp, "burst", PlaceSegment.String(), algoName)
		if algoName == "tcp" && rawMiss < 10 {
			t.Fatalf("raw burst run produced only %d tcp misses; the zero-heavy premise failed", rawMiss)
		}
		// The compressed payload is near-uniform: for any of these sums a
		// residual miss is a ~2^-16 (or rarer) event, so over a few hundred
		// corruptions the count must collapse from the raw run's rate.
		if compMiss > rawMiss/8 {
			t.Errorf("%s burst misses did not converge: raw=%d compressed=%d", algoName, rawMiss, compMiss)
		}
	}
	// Splices from cell loss live at PDU granularity: zero-run deletions
	// are invisible to the sums on raw data, detected at the floor rate
	// once compressed.
	rawSplice := placementUndetected(t, raw, "drop", PlaceE2E.String(), "tcp")
	compSplice := placementUndetected(t, comp, "drop", PlaceE2E.String(), "tcp")
	if rawSplice == 0 {
		t.Fatal("raw drop run produced no tcp splice misses; the zero-heavy premise failed")
	}
	if compSplice > rawSplice/8 {
		t.Errorf("tcp splice misses did not converge: raw=%d compressed=%d", rawSplice, compSplice)
	}

	// The contrast section renders the same evidence.
	out := RawVsCompressedReport(raw, comp)
	for _, want := range []string{
		"raw vs lz-compressed payload",
		"uniform floor:",
		"compress[tcp/burst]:",
		"compress[tcp/drop]:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("contrast report lacks %q:\n%s", want, out)
		}
	}
}

// placementUndetected reads one algorithm's undetected count under the
// named channel and placement.
func placementUndetected(t *testing.T, tally *Tally, channel, placement, algoName string) uint64 {
	t.Helper()
	c, ok := tally.Channel(channel)
	if !ok {
		t.Fatalf("channel %s missing from tally", channel)
	}
	p := c.Placement(placement)
	if p == nil {
		t.Fatalf("placement %s missing from %s", placement, channel)
	}
	a, ok := p.Algo(algoName)
	if !ok {
		t.Fatalf("algorithm %s missing from %s", algoName, channel)
	}
	return a.Undetected
}

// TestRawVsCompressedEmptySides is the report-hardening regression: the
// contrast must render — no index panic, no divide-by-zero — when a
// channel exists on only one side, when a shared channel scored zero
// corrupted deliveries on one side, and when one tally is empty.
func TestRawVsCompressedEmptySides(t *testing.T) {
	rawCfg := Config{Channels: []ChannelSpec{
		{Name: "only-raw", New: func() Channel { return &DropChannel{Policy: lossim.RandomLoss{P: 0.1}} }},
		{Name: "shared", New: func() Channel { return &DropChannel{Policy: lossim.RandomLoss{P: 0.1}} }},
	}}
	compCfg := Config{Compress: true, Channels: []ChannelSpec{
		{Name: "shared", New: func() Channel { return &DropChannel{Policy: lossim.RandomLoss{P: 0.1}} }},
		{Name: "only-lz", New: func() Channel { return &DropChannel{Policy: lossim.RandomLoss{P: 0.1}} }},
	}}
	raw, comp := NewTally(rawCfg), NewTally(compCfg)

	// Populate only raw/"only-raw": the shared channel has zero corrupted
	// deliveries on both sides, and each side has a channel the other
	// never ran.
	c, _ := raw.Channel("only-raw")
	e2e := c.Placement(PlaceE2E.String())
	e2e.Corrupted = 7
	for i := range e2e.Algos {
		e2e.Algos[i].Detected = 5
		e2e.Algos[i].Undetected = 2
	}

	out := RawVsCompressedReport(raw, comp)
	for _, want := range []string{
		"only-raw", "shared", "only-lz",
		"compress[tcp/only-raw]: raw_corrupted=7 lz_corrupted=-",
		"compress[tcp/only-lz]: raw_corrupted=- lz_corrupted=0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("contrast report lacks %q:\n%s", want, out)
		}
	}
	// Zero-candidate sides render "-" cells, never a fake 0% rate.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "shared") && !strings.Contains(line, "compress[") {
			if !strings.Contains(line, "-") {
				t.Errorf("zero-candidate shared row lacks '-' cells: %q", line)
			}
			if strings.Contains(line, "0.0") {
				t.Errorf("zero-candidate shared row renders a fake rate: %q", line)
			}
		}
	}

	// Two empty tallies must still render without panicking.
	if out := RawVsCompressedReport(NewTally(Config{}), NewTally(Config{Compress: true})); out == "" {
		t.Error("contrast of two empty tallies rendered nothing")
	}
}

// TestCompStatsMergeCommutative: the ratio extremes survive merging in
// either order, and empty files never contribute a ratio.
func TestCompStatsMergeCommutative(t *testing.T) {
	build := func(pairs [][2]uint64) CompStats {
		var s CompStats
		for _, p := range pairs {
			s.add(p[0], p[1])
		}
		return s
	}
	a := build([][2]uint64{{1000, 400}, {0, 0}, {500, 490}})
	b := build([][2]uint64{{2000, 300}, {100, 99}})

	ab, ba := a, b
	ab.merge(&b)
	ba.merge(&a)
	if ab != ba {
		t.Errorf("CompStats merge not commutative:\nA+B %+v\nB+A %+v", ab, ba)
	}
	if ab.Files != 5 || ab.RawBytes != 3600 || ab.CompBytes != 1289 {
		t.Errorf("merged totals wrong: %+v", ab)
	}
	if ab.MinComp != 300 || ab.MinRaw != 2000 {
		t.Errorf("min ratio pair = %d/%d, want 300/2000", ab.MinComp, ab.MinRaw)
	}
	if ab.MaxComp != 99 || ab.MaxRaw != 100 {
		t.Errorf("max ratio pair = %d/%d, want 99/100", ab.MaxComp, ab.MaxRaw)
	}

	var empty CompStats
	empty.add(0, 0)
	if empty.MinRaw != 0 || empty.MinRatio() != 0 {
		t.Errorf("empty file contributed a ratio: %+v", empty)
	}
	withEmpty := a
	withEmpty.merge(&empty)
	if withEmpty.MinComp != a.MinComp || withEmpty.MaxComp != a.MaxComp {
		t.Error("merging an all-empty CompStats disturbed the extremes")
	}
}
