package netsim

import (
	"math/rand/v2"
	"sort"

	"realsum/internal/atm"
	"realsum/internal/errmodel"
	"realsum/internal/lossim"
)

// Stream is the cell train a channel transmits: the cells plus, for the
// simulator's bookkeeping only, the index of the sending packet each
// cell came from.  Channels that drop or duplicate cells must keep the
// two slices parallel; channels that damage payloads leave Origin
// alone.  The origin tags are how the receiver knows which sent PDU a
// delivered trailer claims to terminate — the per-algorithm checksum of
// that PDU is the notional check value the trailer carried.
type Stream struct {
	Cells  []atm.Cell
	Origin []int32
}

// Channel is one fault process.  Transmit damages the stream in place,
// deterministically for a given rng state.  A Channel may carry mutable
// per-trial state (loss-policy latches, gather buffers), so each engine
// shard instantiates its own channels via ChannelSpec.New.
type Channel interface {
	Name() string
	Transmit(rng *rand.Rand, s *Stream)
}

// ChannelSpec names a channel and constructs per-shard instances of it.
type ChannelSpec struct {
	Name string
	New  func() Channel
}

// DefaultChannels is the fault-model battery cmd/paper -netsim runs:
// three cell-loss processes at a matched 1% average rate — i.i.d. drop
// (the splice-forming baseline), a Gilbert–Elliott two-state chain, and
// geometric burst-of-cells drops — plus two-bit flips, 32-bit solid
// bursts, cell payload reordering, cell misinsertion, and mid-PDU cell
// duplication.
func DefaultChannels() []ChannelSpec {
	return []ChannelSpec{
		{Name: "drop", New: func() Channel {
			return &DropChannel{Policy: lossim.RandomLoss{P: 0.01}}
		}},
		// Matched to drop's 1% average: πB = 0.02 of cells see the Bad
		// state (mean sojourn 5 cells, ≈ most of a 256-byte packet) at a
		// 40.2% drop rate, the rest lose 0.2% — 0.98·0.002 + 0.02·0.402
		// = 0.01 exactly.
		{Name: "drop-ge", New: func() Channel {
			return &DropChannel{Policy: lossim.GilbertElliottAt(0.01, 5, 0.002, 0.402)}
		}},
		// Matched to drop's 1% average: whole-cell runs of mean length 4.
		{Name: "drop-burst", New: func() Channel {
			return &DropChannel{Policy: lossim.BurstDropAt(0.01, 4)}
		}},
		{Name: "bitflip", New: func() Channel {
			return &CellCorrupt{Model: errmodel.BitFlips{K: 2}, PerCell: 0.05}
		}},
		{Name: "burst", New: func() Channel {
			return &CellCorrupt{Model: errmodel.SolidBurst{Bits: 32}, PerCell: 0.05}
		}},
		{Name: "reorder", New: func() Channel {
			return &CellShuffle{Model: errmodel.Reorder{Unit: atm.PayloadSize}, PerPacket: 0.5}
		}},
		{Name: "misinsert", New: func() Channel {
			return &CellShuffle{Model: errmodel.Misinsert{Unit: atm.PayloadSize}, PerPacket: 0.5}
		}},
		{Name: "dup", New: func() Channel {
			return &CellDup{PerPacket: 0.5}
		}},
	}
}

// ChannelNames lists the battery's channel names in order — the valid
// arguments to ChannelsByName and cmd/netsim -channels.
func ChannelNames() []string {
	specs := DefaultChannels()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// ChannelsByName filters DefaultChannels down to a comma-separated
// subset, preserving battery order.  Unknown names are reported, sorted,
// so callers' error messages are stable run-to-run.
func ChannelsByName(names []string) ([]ChannelSpec, []string) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []ChannelSpec
	for _, spec := range DefaultChannels() {
		if want[spec.Name] {
			out = append(out, spec)
			delete(want, spec.Name)
		}
	}
	unknown := make([]string, 0, len(want))
	for n := range want {
		unknown = append(unknown, n)
	}
	sort.Strings(unknown)
	if len(unknown) == 0 {
		unknown = nil
	}
	return out, unknown
}

// DropChannel runs a lossim cell-loss policy over the stream: the
// splice-forming fault, where surviving cells of adjacent packets
// concatenate at the receiver.  The policy is driven exactly per the
// lossim.Policy contract: StartStream once per trial (so every trial is
// a pure function of its TrialSeed), StartPacket at each packet
// boundary (origin change), Drop per cell.  Correlated policies keep
// their stream state across packet boundaries within the trial.
type DropChannel struct {
	Policy lossim.Policy
}

// Name implements Channel.
func (d *DropChannel) Name() string { return "drop:" + d.Policy.Name() }

// Transmit implements Channel.  It filters cells in place.
func (d *DropChannel) Transmit(rng *rand.Rand, s *Stream) {
	d.Policy.StartStream(rng)
	out := s.Cells[:0]
	oout := s.Origin[:0]
	cur := int32(-1)
	for i := range s.Cells {
		if s.Origin[i] != cur {
			cur = s.Origin[i]
			d.Policy.StartPacket(rng)
		}
		if d.Policy.Drop(rng, s.Cells[i].Header.EndOfPacket()) {
			continue
		}
		out = append(out, s.Cells[i])
		oout = append(oout, s.Origin[i])
	}
	s.Cells = out
	s.Origin = oout
}

// CellCorrupt damages individual cell payloads: each cell is hit with
// probability PerCell, and a hit applies Model to the payload bytes in
// place (headers, and therefore framing, survive — the §7 model where
// the medium corrupts data but delivery structure holds).  On an
// end-of-packet cell the AAL5 CPCS trailer occupies the final
// atm.TrailerSize bytes of the payload and is part of the framing this
// model promises to preserve, so corruption there is restricted to the
// SDU/padding bytes ahead of the trailer; a burst rewriting the
// length/CRC fields would silently turn a payload fault into a framing
// fault.
type CellCorrupt struct {
	Model   errmodel.InPlacer
	PerCell float64
}

// Name implements Channel.
func (c *CellCorrupt) Name() string { return "corrupt:" + c.Model.Name() }

// Transmit implements Channel.
func (c *CellCorrupt) Transmit(rng *rand.Rand, s *Stream) {
	for i := range s.Cells {
		if rng.Float64() >= c.PerCell {
			continue
		}
		p := s.Cells[i].Payload[:]
		if s.Cells[i].Header.EndOfPacket() {
			p = p[:atm.PayloadSize-atm.TrailerSize]
		}
		if len(p) == 0 {
			continue
		}
		c.Model.CorruptInPlace(rng, p)
	}
}

// CellShuffle applies a record-level errmodel (Reorder or Misinsert at
// Unit = atm.PayloadSize) to the data cells of individual packets: each
// packet is hit with probability PerPacket, and a hit gathers the
// payloads of every cell but the trailer cell, corrupts the record
// stream, and scatters it back.  The trailer cell is exempt so the
// AAL5 framing fields stay put and the fault isolates what the
// *checksum* can see: misordered or misinserted data at exact cell
// positions — the fault class where positional checksums (Fletcher,
// CRC) and the position-blind TCP sum separate most sharply.
type CellShuffle struct {
	Model     errmodel.InPlacer
	PerPacket float64

	scratch []byte
}

// Name implements Channel.
func (c *CellShuffle) Name() string { return "shuffle:" + c.Model.Name() }

// Transmit implements Channel.
func (c *CellShuffle) Transmit(rng *rand.Rand, s *Stream) {
	i := 0
	for i < len(s.Cells) {
		j := i
		for j < len(s.Cells) && !s.Cells[j].Header.EndOfPacket() {
			j++
		}
		if j >= len(s.Cells) {
			return // stranded tail with no trailer; nothing to frame
		}
		// Packet cells are [i, j] with the trailer at j; data cells [i, j).
		if rng.Float64() < c.PerPacket && j-i >= 2 {
			c.scratch = c.scratch[:0]
			for k := i; k < j; k++ {
				c.scratch = append(c.scratch, s.Cells[k].Payload[:]...)
			}
			c.Model.CorruptInPlace(rng, c.scratch)
			for k := i; k < j; k++ {
				copy(s.Cells[k].Payload[:], c.scratch[(k-i)*atm.PayloadSize:])
			}
		}
		i = j + 1
	}
}

// CellDup duplicates one mid-PDU data cell per hit packet: each packet
// is hit with probability PerPacket, and a hit replays a uniformly
// chosen non-trailer cell immediately after itself — the switch fault
// AAL5 receivers must reject via the trailer's length check, since the
// candidate then spans one cell more than CellCount(Length) allows.
// The duplicate carries its original's Origin tag, so accounting still
// charges the candidate to the packet whose trailer it ends in.
type CellDup struct {
	PerPacket float64

	cells  []atm.Cell
	origin []int32
}

// Name implements Channel.
func (c *CellDup) Name() string { return "dup" }

// Transmit implements Channel.  It rebuilds the stream in channel-owned
// scratch (inserting is not an in-place edit) and copies it back, so
// the steady state allocates nothing once both buffers have grown.
func (c *CellDup) Transmit(rng *rand.Rand, s *Stream) {
	out := c.cells[:0]
	oout := c.origin[:0]
	i := 0
	for i < len(s.Cells) {
		j := i
		for j < len(s.Cells) && !s.Cells[j].Header.EndOfPacket() {
			j++
		}
		if j >= len(s.Cells) {
			// Stranded tail with no trailer; pass it through.
			out = append(out, s.Cells[i:]...)
			oout = append(oout, s.Origin[i:]...)
			break
		}
		// Packet cells are [i, j] with the trailer at j; duplicable data
		// cells are [i, j).
		dup := -1
		if j > i && rng.Float64() < c.PerPacket {
			dup = i + rng.IntN(j-i)
		}
		for k := i; k <= j; k++ {
			out = append(out, s.Cells[k])
			oout = append(oout, s.Origin[k])
			if k == dup {
				out = append(out, s.Cells[k])
				oout = append(oout, s.Origin[k])
			}
		}
		i = j + 1
	}
	c.cells, c.origin = out, oout
	s.Cells = append(s.Cells[:0], out...)
	s.Origin = append(s.Origin[:0], oout...)
}

// splitmix64 is the SplitMix64 finalizer, the mixing step of the
// per-trial seed chain.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// TrialSeed derives the RNG seed for one trial as a SplitMix64 chain
// over (rootSeed, fileIdx, channelIdx, trialIdx).  Every trial's fault
// pattern is therefore a pure function of corpus position — never of
// worker scheduling — which is what makes reports byte-identical at
// any -workers count.
func TrialSeed(root uint64, file, channel, trial int) uint64 {
	x := splitmix64(root ^ 0x6E7E7517)
	x = splitmix64(x ^ uint64(file+1))
	x = splitmix64(x ^ uint64(channel+1))
	x = splitmix64(x ^ uint64(trial+1))
	return x
}

// RetrySeed derives the channel seed for one retransmission attempt of
// one packet within a trial — a sub-stream of the trial's seed keyed by
// (packet, attempt), so every retry's fault pattern is a pure function
// of corpus position exactly like the primary transmission: the
// workers-1/2/8 byte-identity contract extends over the retransmission
// loop for free.  The salt separates the retry sub-stream from the
// TrialSeed chain itself (attempt 0 must not collide with trial+1).
func RetrySeed(trialSeed uint64, packet, attempt int) uint64 {
	x := splitmix64(trialSeed ^ 0x8E78A9)
	x = splitmix64(x ^ uint64(packet+1))
	x = splitmix64(x ^ uint64(attempt+1))
	return x
}
