package netsim

import (
	"fmt"
	"math/bits"
	"strings"

	"realsum/internal/report"
)

// AlgoTally counts one algorithm's verdicts over the corrupted
// deliveries one (channel × placement) scored.  Detected + Undetected
// always equals the placement's Corrupted count.
type AlgoTally struct {
	Name       string
	Detected   uint64
	Undetected uint64
}

// Rate returns the miss rate (Undetected over all corrupted deliveries
// scored) and whether any corrupted delivery was scored at all.
// ok == false means zero candidates: a channel that never corrupted
// anything is not evidence of a zero miss rate, and every renderer
// shows it as "-" instead of a fake 0%.
func (a AlgoTally) Rate() (float64, bool) {
	n := a.Detected + a.Undetected
	if n == 0 {
		return 0, false
	}
	return float64(a.Undetected) / float64(n), true
}

// MissRate is the miss rate with the zero-candidate case flattened to
// 0 — the raw number for arithmetic.  Renderers use Rate, whose ok
// result distinguishes "never missed" from "never scored".
func (a AlgoTally) MissRate() float64 {
	r, _ := a.Rate()
	return r
}

// rateCell renders an AlgoTally's miss rate for a table cell: the
// percentage, or "-" when no corrupted delivery was ever scored.
func rateCell(a AlgoTally) string {
	r, ok := a.Rate()
	if !ok {
		return "-"
	}
	return report.Percent(r)
}

// RetransTally closes the retransmission loop for one checksum lane —
// one algorithm under one (channel × placement), or the perfect oracle
// — over every sent PDU: a delivery the lane's check passes (intact, or
// corrupt-but-collided) is accepted; a detected corruption or a lost
// trailer triggers a retransmission through a re-rolled channel, up to
// the run's retry cap.  What an operator buys with a stronger check is
// exactly this trade: fewer residual corrupt bytes per delivered byte,
// at the cost of more transmissions per delivered PDU.
type RetransTally struct {
	// Accepted counts PDUs whose delivery the lane's check eventually
	// passed within the retry cap.
	Accepted uint64
	// AcceptedCorrupt counts accepted deliveries whose bytes differed
	// from the sent span — the corruption the check let through.
	AcceptedCorrupt uint64
	// Exhausted counts PDUs abandoned at the retry cap with no accepted
	// delivery — the dead-channel terminator.
	Exhausted uint64
	// Transmissions is every send charged to the lane: the first
	// transmission plus each retry, including the sends of abandoned
	// PDUs.
	Transmissions uint64
	// TxBytes prices Transmissions in sent-PDU bytes — the wire cost.
	TxBytes uint64
	// DeliveredBytes is the bytes of accepted deliveries — the goodput.
	DeliveredBytes uint64
	// ResidualBytes counts the bytes inside accepted deliveries that
	// differ from the sent span (positional diff plus any length
	// difference) — the residual corruption per delivered byte the
	// report normalizes to GB.
	ResidualBytes uint64
}

// accept finalizes one delivered PDU: tx transmissions of pduLen bytes
// bought delivered accepted bytes, diff of them corrupt.
func (r *RetransTally) accept(tx, pduLen, delivered, diff uint64) {
	r.Accepted++
	r.Transmissions += tx
	r.TxBytes += tx * pduLen
	r.DeliveredBytes += delivered
	if diff > 0 {
		r.AcceptedCorrupt++
		r.ResidualBytes += diff
	}
}

// exhaust abandons one PDU at the retry cap: tx transmissions of
// pduLen bytes delivered nothing.
func (r *RetransTally) exhaust(tx, pduLen uint64) {
	r.Exhausted++
	r.Transmissions += tx
	r.TxBytes += tx * pduLen
}

func (r *RetransTally) merge(o *RetransTally) {
	r.Accepted += o.Accepted
	r.AcceptedCorrupt += o.AcceptedCorrupt
	r.Exhausted += o.Exhausted
	r.Transmissions += o.Transmissions
	r.TxBytes += o.TxBytes
	r.DeliveredBytes += o.DeliveredBytes
	r.ResidualBytes += o.ResidualBytes
}

// MeanTx is the operator's cost ratio — total transmissions (including
// the wasted sends of abandoned PDUs) per delivered PDU.  ok == false
// when nothing was delivered.
func (r RetransTally) MeanTx() (float64, bool) {
	if r.Accepted == 0 {
		return 0, false
	}
	return float64(r.Transmissions) / float64(r.Accepted), true
}

// ResidualPerGB is the residual corrupt bytes per delivered gigabyte.
func (r RetransTally) ResidualPerGB() (float64, bool) {
	if r.DeliveredBytes == 0 {
		return 0, false
	}
	return float64(r.ResidualBytes) / float64(r.DeliveredBytes) * 1e9, true
}

// Goodput is delivered bytes over transmitted bytes.
func (r RetransTally) Goodput() (float64, bool) {
	if r.TxBytes == 0 {
		return 0, false
	}
	return float64(r.DeliveredBytes) / float64(r.TxBytes), true
}

// OverheadVs is the lane's extra wire cost per delivered byte relative
// to another lane (the perfect oracle in the report): 0 means the same
// goodput, 0.05 means 5% more transmitted bytes per delivered byte.
func (r RetransTally) OverheadVs(o RetransTally) (float64, bool) {
	rg, rok := r.Goodput()
	og, ook := o.Goodput()
	if !rok || !ook || rg == 0 {
		return 0, false
	}
	return og/rg - 1, true
}

// PlacementTally scores every registry algorithm under one checksum
// placement over one channel's deliveries.  The e2e placement's
// Delivered/Intact/Corrupted mirror the channel-level candidate
// counters; the segment placement counts at TCP-segment granularity,
// where a candidate whose damage is confined to AAL5 padding or trailer
// bytes is *intact* — the placement-blindness the paper's layered
// discussion is about.
type PlacementTally struct {
	Name      string
	Delivered uint64
	Intact    uint64
	Corrupted uint64
	Algos     []AlgoTally

	// Retrans, index-aligned with Algos, closes the retransmission loop
	// per algorithm; Oracle is the perfect-detection baseline (accepts
	// exactly the intact deliveries) the goodput overhead is measured
	// against.  Both are nil/zero unless the run enabled Config.Retrans.
	Retrans []RetransTally
	Oracle  RetransTally

	// HeaderPos and TrailerPos contrast the checksum field's position
	// for the real TCP one's-complement sum (pseudo-header included),
	// scored on the segment placement's corrupted deliveries only:
	//
	//   - HeaderPos reads the check value where TCP really carries it —
	//     the stored field inside the received header bytes, which
	//     shares fate with whatever packet's head arrived (§5.3).
	//   - TrailerPos carries the claimed packet's sent check value with
	//     the trailer cell, the way AAL5 carries its CRC — the Table 9
	//     placement.
	//
	// Both compare against the sum recomputed over the received segment
	// bytes, so a head-substitution splice (an intact wrong segment) is
	// accepted by HeaderPos but rejected by TrailerPos.  Zero-valued for
	// the e2e placement.
	HeaderPos  AlgoTally
	TrailerPos AlgoTally
}

// merge folds another shard's counts in.  Tally.Merge has already
// validated that the two placements agree on name, algorithm list and
// retransmission shape, so index alignment here is sound.
func (p *PlacementTally) merge(o *PlacementTally) {
	p.Delivered += o.Delivered
	p.Intact += o.Intact
	p.Corrupted += o.Corrupted
	for i := range p.Algos {
		p.Algos[i].Detected += o.Algos[i].Detected
		p.Algos[i].Undetected += o.Algos[i].Undetected
	}
	for i := range p.Retrans {
		p.Retrans[i].merge(&o.Retrans[i])
	}
	p.Oracle.merge(&o.Oracle)
	p.HeaderPos.Detected += o.HeaderPos.Detected
	p.HeaderPos.Undetected += o.HeaderPos.Undetected
	p.TrailerPos.Detected += o.TrailerPos.Detected
	p.TrailerPos.Undetected += o.TrailerPos.Undetected
}

// Algo returns the tally for the named algorithm under this placement.
func (p *PlacementTally) Algo(name string) (AlgoTally, bool) {
	for _, a := range p.Algos {
		if a.Name == name {
			return a, true
		}
	}
	return AlgoTally{}, false
}

// PipelineTally counts the structural receiver outcomes — the layered
// checks a real AAL5/IP endpoint applies, run alongside the
// per-algorithm scoring.
type PipelineTally struct {
	// ModeTCP path: candidate PDUs by the first check that rejected
	// them, or accepted (split by whether the accepted SDU was intact).
	Accepted        uint64
	AcceptedCorrupt uint64
	Framing         uint64
	CRC             uint64
	Header          uint64
	Checksum        uint64

	// ModeUDPFrag path: per-datagram reassembly outcomes.
	FragDelivered   uint64
	DatagramsIntact uint64
	DatagramsLost   uint64
	FragReject      uint64
	UDPCaught       uint64
	UDPUndetected   uint64
}

func (p *PipelineTally) merge(o *PipelineTally) {
	p.Accepted += o.Accepted
	p.AcceptedCorrupt += o.AcceptedCorrupt
	p.Framing += o.Framing
	p.CRC += o.CRC
	p.Header += o.Header
	p.Checksum += o.Checksum
	p.FragDelivered += o.FragDelivered
	p.DatagramsIntact += o.DatagramsIntact
	p.DatagramsLost += o.DatagramsLost
	p.FragReject += o.FragReject
	p.UDPCaught += o.UDPCaught
	p.UDPUndetected += o.UDPUndetected
}

// ChannelTally aggregates every trial of one fault channel.
type ChannelTally struct {
	Name string

	Trials         uint64
	PacketsSent    uint64
	CellsSent      uint64
	CellsDelivered uint64
	Bytes          uint64 // sent PDU bytes pushed through the channel

	PDUsDelivered uint64 // candidates ending in a delivered trailer cell
	Intact        uint64 // delivered byte-identical to the claimed PDU
	Corrupted     uint64 // delivered differing from the claimed PDU
	Lost          uint64 // packets whose trailer never arrived

	// ErrClass histograms the XOR structure of the corrupted deliveries
	// (see errclass.go) — the measured error distribution the polynomial
	// census weighs its analytic coverage by.
	ErrClass ErrClassTally

	Placements []PlacementTally
	Pipeline   PipelineTally
}

func (c *ChannelTally) merge(o *ChannelTally) {
	c.Trials += o.Trials
	c.PacketsSent += o.PacketsSent
	c.CellsSent += o.CellsSent
	c.CellsDelivered += o.CellsDelivered
	c.Bytes += o.Bytes
	c.PDUsDelivered += o.PDUsDelivered
	c.Intact += o.Intact
	c.Corrupted += o.Corrupted
	c.Lost += o.Lost
	c.ErrClass.merge(&o.ErrClass)
	for i := range c.Placements {
		c.Placements[i].merge(&o.Placements[i])
	}
	c.Pipeline.merge(&o.Pipeline)
}

// Placement returns the tally for the named placement, or nil.
func (c *ChannelTally) Placement(name string) *PlacementTally {
	for i := range c.Placements {
		if c.Placements[i].Name == name {
			return &c.Placements[i]
		}
	}
	return nil
}

// scoring returns the placement whose per-algorithm counts stand in for
// the channel's headline scoring: e2e when enabled, else the first
// placement configured.
func (c *ChannelTally) scoring() *PlacementTally {
	if p := c.Placement(PlaceE2E.String()); p != nil {
		return p
	}
	if len(c.Placements) > 0 {
		return &c.Placements[0]
	}
	return nil
}

// CompStats aggregates the LZ payload stage's per-file outcomes: how
// many files were compressed, the byte totals on both sides, and the
// extreme per-file ratios.  The extremes are held as exact (comp, raw)
// byte pairs and compared by cross-multiplication, so Merge stays
// commutative bit-for-bit: equal real ratios divide to the same float64
// regardless of which file's pair survived the merge.
type CompStats struct {
	Files     uint64
	RawBytes  uint64
	CompBytes uint64

	// MinComp/MinRaw is the (compressed, raw) byte pair of the file with
	// the smallest ratio; MaxComp/MaxRaw the largest.  MinRaw == 0 means
	// no non-empty file has been recorded.
	MinComp, MinRaw uint64
	MaxComp, MaxRaw uint64
}

// ratioLess reports aNum/aDen < bNum/bDen exactly, comparing the
// cross-products in 128 bits via bits.Mul64.  A raw uint64
// cross-multiplication overflows once a file reaches 4 GiB (comp·raw
// exceeds 2^64) and can silently invert the min/max selection.
func ratioLess(aNum, aDen, bNum, bDen uint64) bool {
	hiA, loA := bits.Mul64(aNum, bDen)
	hiB, loB := bits.Mul64(bNum, aDen)
	return hiA < hiB || (hiA == hiB && loA < loB)
}

// add records one compressed file.  Empty files count toward the
// totals but carry no ratio.
func (s *CompStats) add(raw, comp uint64) {
	s.Files++
	s.RawBytes += raw
	s.CompBytes += comp
	if raw == 0 {
		return
	}
	if s.MinRaw == 0 || ratioLess(comp, raw, s.MinComp, s.MinRaw) {
		s.MinComp, s.MinRaw = comp, raw
	}
	if s.MaxRaw == 0 || ratioLess(s.MaxComp, s.MaxRaw, comp, raw) {
		s.MaxComp, s.MaxRaw = comp, raw
	}
}

func (s *CompStats) merge(o *CompStats) {
	s.Files += o.Files
	s.RawBytes += o.RawBytes
	s.CompBytes += o.CompBytes
	if o.MinRaw != 0 && (s.MinRaw == 0 || ratioLess(o.MinComp, o.MinRaw, s.MinComp, s.MinRaw)) {
		s.MinComp, s.MinRaw = o.MinComp, o.MinRaw
	}
	if o.MaxRaw != 0 && (s.MaxRaw == 0 || ratioLess(s.MaxComp, s.MaxRaw, o.MaxComp, o.MaxRaw)) {
		s.MaxComp, s.MaxRaw = o.MaxComp, o.MaxRaw
	}
}

// MinRatio, MeanRatio and MaxRatio report compressed/raw byte ratios;
// the mean is byte-weighted (total compressed over total raw).  All
// return 0 when nothing with bytes has been recorded.
func (s *CompStats) MinRatio() float64 { return ratio(s.MinComp, s.MinRaw) }

// MeanRatio is CompBytes/RawBytes — the corpus-weighted ratio.
func (s *CompStats) MeanRatio() float64 { return ratio(s.CompBytes, s.RawBytes) }

// MaxRatio is the largest per-file ratio recorded.
func (s *CompStats) MaxRatio() float64 { return ratio(s.MaxComp, s.MaxRaw) }

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Tally is the merged result of a netsim run: per (channel × placement
// × algorithm) outcome counts.  Every field is an order-independent
// counter, so Merge is commutative and the engine's sharded
// accumulation yields the same Tally at any worker count.
type Tally struct {
	Mode string
	// Compressed records whether the run's payloads passed the LZ stage;
	// it relabels the report ("tcp+lz") and enables the Comp header.
	Compressed bool
	// Comp holds the LZ stage's per-file ratio stats (zero when
	// Compressed is false).
	Comp CompStats
	// Retrans records whether the run closed the retransmission loop;
	// it enables the residual-error tables and the retrans pin lines.
	// MaxRetries is the run's retry cap (meaningful only when Retrans).
	Retrans    bool
	MaxRetries int
	Channels   []ChannelTally
}

// label names the run for report titles and pin lines: the transport
// mode, suffixed "+lz" when the payload passed the compression stage —
// so raw and compressed pins never collide in grep.
func (t *Tally) label() string {
	if t.Compressed {
		return t.Mode + "+lz"
	}
	return t.Mode
}

// NewTally builds an empty tally shaped for cfg — the aggregate a
// service stream merges its shard batches into.  Its shape matches any
// Shard built from the same cfg, so Shard.Flush never panics.
func NewTally(cfg Config) *Tally {
	channels, algos, placements := cfg.tallyNames()
	t := newTally(cfg.Mode.String(), channels, algos, placements, cfg.Retrans, cfg.retryCap())
	t.Compressed = cfg.Compress
	return t
}

// newTally builds an empty tally shaped for the channel, algorithm and
// placement name lists; retrans shapes the per-algorithm RetransTally
// slices with cap maxRetries.
func newTally(mode string, channels, algos, placements []string, retrans bool, maxRetries int) *Tally {
	t := &Tally{Mode: mode, Channels: make([]ChannelTally, len(channels))}
	if retrans {
		t.Retrans = true
		t.MaxRetries = maxRetries
	}
	for i, cn := range channels {
		t.Channels[i].Name = cn
		t.Channels[i].Placements = make([]PlacementTally, len(placements))
		for pi, pn := range placements {
			pt := &t.Channels[i].Placements[pi]
			pt.Name = pn
			pt.Algos = make([]AlgoTally, len(algos))
			for a, an := range algos {
				pt.Algos[a].Name = an
			}
			if retrans {
				pt.Retrans = make([]RetransTally, len(algos))
			}
			pt.HeaderPos.Name = "tcp@header"
			pt.TrailerPos.Name = "tcp@trailer"
		}
	}
	return t
}

// Merge folds another shard's counts into t.  The two tallies must have
// been shaped by the same engine configuration; Merge validates the full
// shape — mode, compression, retransmission cap, and the name and order
// of every channel, placement and algorithm — before touching a counter,
// and returns a named-mismatch error otherwise.  The lower-level merges
// index-align their slices, so an unvalidated merge of tallies from
// different scenarios (e.g. a cksumd replica running a different
// profile) would silently misattribute counts or panic out of range.
// On error t is unmodified.
func (t *Tally) Merge(o *Tally) error {
	if err := t.matchShape(o); err != nil {
		return err
	}
	t.Comp.merge(&o.Comp)
	for i := range t.Channels {
		t.Channels[i].merge(&o.Channels[i])
	}
	return nil
}

// matchShape checks that o's shape is element-wise identical to t's.
func (t *Tally) matchShape(o *Tally) error {
	if t.Mode != o.Mode {
		return fmt.Errorf("netsim: merge shape mismatch: mode %q vs %q", t.Mode, o.Mode)
	}
	if t.Compressed != o.Compressed {
		return fmt.Errorf("netsim: merge shape mismatch: compressed %v vs %v", t.Compressed, o.Compressed)
	}
	if t.Retrans != o.Retrans || t.MaxRetries != o.MaxRetries {
		return fmt.Errorf("netsim: merge shape mismatch: retrans %v/cap=%d vs %v/cap=%d",
			t.Retrans, t.MaxRetries, o.Retrans, o.MaxRetries)
	}
	if len(t.Channels) != len(o.Channels) {
		return fmt.Errorf("netsim: merge shape mismatch: %d vs %d channels", len(t.Channels), len(o.Channels))
	}
	for i := range t.Channels {
		tc, oc := &t.Channels[i], &o.Channels[i]
		if tc.Name != oc.Name {
			return fmt.Errorf("netsim: merge shape mismatch: channel[%d] %q vs %q", i, tc.Name, oc.Name)
		}
		if len(tc.Placements) != len(oc.Placements) {
			return fmt.Errorf("netsim: merge shape mismatch: channel %s has %d vs %d placements",
				tc.Name, len(tc.Placements), len(oc.Placements))
		}
		for pi := range tc.Placements {
			tp, op := &tc.Placements[pi], &oc.Placements[pi]
			if tp.Name != op.Name {
				return fmt.Errorf("netsim: merge shape mismatch: channel %s placement[%d] %q vs %q",
					tc.Name, pi, tp.Name, op.Name)
			}
			if len(tp.Algos) != len(op.Algos) {
				return fmt.Errorf("netsim: merge shape mismatch: %s/%s has %d vs %d algorithms",
					tc.Name, tp.Name, len(tp.Algos), len(op.Algos))
			}
			for a := range tp.Algos {
				if tp.Algos[a].Name != op.Algos[a].Name {
					return fmt.Errorf("netsim: merge shape mismatch: %s/%s algo[%d] %q vs %q",
						tc.Name, tp.Name, a, tp.Algos[a].Name, op.Algos[a].Name)
				}
			}
			if len(tp.Retrans) != len(op.Retrans) {
				return fmt.Errorf("netsim: merge shape mismatch: %s/%s has %d vs %d retrans lanes",
					tc.Name, tp.Name, len(tp.Retrans), len(op.Retrans))
			}
		}
	}
	return nil
}

// MustMerge merges o into t and panics on a shape mismatch — for the
// engine-internal paths (worker shards, stream flushes) where both
// tallies are built from one Config and a mismatch is a program bug.
func (t *Tally) MustMerge(o *Tally) {
	if err := t.Merge(o); err != nil {
		panic(err)
	}
}

// Reset zeroes every counter, preserving the tally's shape — the
// second half of the batched-merge cycle: flush merges a shard's counts
// into the aggregate, Reset empties the shard for the next batch.
func (t *Tally) Reset() {
	t.Comp = CompStats{}
	for i := range t.Channels {
		c := &t.Channels[i]
		name, placements := c.Name, c.Placements
		*c = ChannelTally{Name: name, Placements: placements}
		for pi := range placements {
			p := &placements[pi]
			name, algos, retr := p.Name, p.Algos, p.Retrans
			*p = PlacementTally{Name: name, Algos: algos, Retrans: retr}
			for a := range algos {
				algos[a].Detected, algos[a].Undetected = 0, 0
			}
			for a := range retr {
				retr[a] = RetransTally{}
			}
			p.HeaderPos = AlgoTally{Name: "tcp@header"}
			p.TrailerPos = AlgoTally{Name: "tcp@trailer"}
		}
	}
}

// Clone deep-copies the tally — the snapshot a metrics scrape renders
// while the stream keeps merging batches into the original.
func (t *Tally) Clone() *Tally {
	o := &Tally{Mode: t.Mode, Compressed: t.Compressed, Comp: t.Comp,
		Retrans: t.Retrans, MaxRetries: t.MaxRetries,
		Channels: append([]ChannelTally(nil), t.Channels...)}
	for i := range o.Channels {
		pls := append([]PlacementTally(nil), o.Channels[i].Placements...)
		for pi := range pls {
			pls[pi].Algos = append([]AlgoTally(nil), pls[pi].Algos...)
			if pls[pi].Retrans != nil {
				pls[pi].Retrans = append([]RetransTally(nil), pls[pi].Retrans...)
			}
		}
		o.Channels[i].Placements = pls
	}
	return o
}

// Channel returns the tally for the named channel.
func (t *Tally) Channel(name string) (*ChannelTally, bool) {
	for i := range t.Channels {
		if t.Channels[i].Name == name {
			return &t.Channels[i], true
		}
	}
	return nil, false
}

// Shape is one channel's §7 ranking summary: which algorithm missed the
// most corrupted deliveries (under the headline e2e placement).
type Shape struct {
	Channel         string
	Corrupted       uint64
	Weakest         string
	WeakestUndetect uint64
	CRC32Undetected uint64
	TCPUndetected   uint64
}

// Shapes computes the per-channel ranking claims the paper's §7 makes
// and cmd/paper -netsim asserts: under data-shaped faults the TCP
// checksum is the weakest registered algorithm while CRC-32 stays at
// its uniform (≈0) rate.
func (t *Tally) Shapes() []Shape {
	out := make([]Shape, 0, len(t.Channels))
	for i := range t.Channels {
		c := &t.Channels[i]
		s := Shape{Channel: c.Name, Corrupted: c.Corrupted}
		if p := c.scoring(); p != nil {
			for _, a := range p.Algos {
				if s.Weakest == "" || a.Undetected > s.WeakestUndetect {
					s.Weakest, s.WeakestUndetect = a.Name, a.Undetected
				}
				switch a.Name {
				case "crc32":
					s.CRC32Undetected = a.Undetected
				case "tcp":
					s.TCPUndetected = a.Undetected
				}
			}
		}
		out = append(out, s)
	}
	return out
}

// Report renders the tally: a channel summary table, a per-algorithm
// miss table per (channel × placement), the placement contrast section,
// and the shape- and placement-claim lines the tests pin.
func (t *Tally) Report() string {
	var b strings.Builder

	if t.Compressed {
		b.WriteString(fmt.Sprintf(
			"lz payload stage: %d files, %s -> %s bytes, ratio min=%s mean=%s max=%s\n\n",
			t.Comp.Files, report.Count(t.Comp.RawBytes), report.Count(t.Comp.CompBytes),
			report.Percent(t.Comp.MinRatio()), report.Percent(t.Comp.MeanRatio()),
			report.Percent(t.Comp.MaxRatio())))
	}

	sum := report.Table{
		Title: fmt.Sprintf("netsim %s: channel outcomes", t.label()),
		Headers: []string{"channel", "trials", "pkts", "cells", "delivered",
			"PDUs", "intact", "corrupted", "lost"},
	}
	for i := range t.Channels {
		c := &t.Channels[i]
		sum.AddRow(c.Name, report.Count(c.Trials), report.Count(c.PacketsSent),
			report.Count(c.CellsSent), report.Count(c.CellsDelivered),
			report.Count(c.PDUsDelivered), report.Count(c.Intact),
			report.Count(c.Corrupted), report.Count(c.Lost))
	}
	b.WriteString(sum.Render())
	b.WriteByte('\n')

	for i := range t.Channels {
		c := &t.Channels[i]
		for pi := range c.Placements {
			p := &c.Placements[pi]
			at := report.Table{
				Headers: []string{"algorithm", "detected", "undetected", "miss rate"},
			}
			if p.Name == PlaceE2E.String() {
				at.Title = fmt.Sprintf("netsim %s · %s: undetected corruptions per algorithm (%s corrupted PDUs)",
					t.label(), c.Name, report.Count(p.Corrupted))
			} else {
				at.Title = fmt.Sprintf("netsim %s · %s: undetected corruptions per algorithm, per-segment placement (%s corrupted segments)",
					t.label(), c.Name, report.Count(p.Corrupted))
			}
			for _, a := range p.Algos {
				at.AddRow(a.Name, report.Count(a.Detected), report.Count(a.Undetected), rateCell(a))
			}
			if p.Name == PlaceSegment.String() {
				for _, a := range []AlgoTally{p.HeaderPos, p.TrailerPos} {
					at.AddRow(a.Name, report.Count(a.Detected), report.Count(a.Undetected), rateCell(a))
				}
			}
			b.WriteString(at.Render())
			b.WriteByte('\n')
			if t.Retrans && len(p.Retrans) == len(p.Algos) {
				b.WriteString(t.retransTable(c, p))
				b.WriteByte('\n')
			}
		}
	}

	b.WriteString(t.lossContrastReport())
	b.WriteString(t.placementContrastReport())
	b.WriteString(t.residualContrastReport())
	b.WriteString(t.pipelineReport())
	for _, line := range t.ShapeLines() {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	for _, line := range t.PlacementLines() {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	for _, line := range t.RetransLines() {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// floatCell renders a (value, ok) metric: fixed-precision, or "-" when
// the denominator never accumulated (nothing delivered / transmitted).
func floatCell(v float64, ok bool, prec int) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.*f", prec, v)
}

// retransTable renders one (channel × placement)'s closed-loop scoring:
// per algorithm lane, what the retry protocol delivered, what corruption
// it let through per delivered GB, what the wire cost was, and the
// goodput overhead against the perfect-detection oracle.
func (t *Tally) retransTable(c *ChannelTally, p *PlacementTally) string {
	tb := report.Table{
		Title: fmt.Sprintf("netsim %s · %s · %s: retransmission loop (retry cap %d)",
			t.label(), c.Name, p.Name, t.MaxRetries),
		Headers: []string{"algorithm", "delivered", "acc-corrupt", "exhausted",
			"mean tx/PDU", "residual B/GB", "goodput", "overhead vs oracle"},
	}
	row := func(name string, r RetransTally) {
		mtx, mok := r.MeanTx()
		res, rok := r.ResidualPerGB()
		gp, gok := r.Goodput()
		ov, ook := r.OverheadVs(p.Oracle)
		tb.AddRow(name, report.Count(r.Accepted), report.Count(r.AcceptedCorrupt),
			report.Count(r.Exhausted), floatCell(mtx, mok, 4), floatCell(res, rok, 1),
			floatCell(gp, gok, 4), floatCell(ov, ook, 4))
	}
	for i, a := range p.Algos {
		row(a.Name, p.Retrans[i])
	}
	or := p.Oracle
	mtx, mok := or.MeanTx()
	res, rok := or.ResidualPerGB()
	gp, gok := or.Goodput()
	tb.AddRow("oracle", report.Count(or.Accepted), report.Count(or.AcceptedCorrupt),
		report.Count(or.Exhausted), floatCell(mtx, mok, 4), floatCell(res, rok, 1),
		floatCell(gp, gok, 4), "0.0000")
	return tb.Render()
}

// RetransLines renders the per-channel retransmission pin lines ci.sh
// greps — the headline scoring placement's tcp and crc32 lanes plus the
// oracle, in raw counters so any drift in the retry loop, the retry
// seed chain or the residual diff accounting shows as an exact diff.
func (t *Tally) RetransLines() []string {
	if !t.Retrans {
		return nil
	}
	var out []string
	for i := range t.Channels {
		c := &t.Channels[i]
		p := c.scoring()
		if p == nil || len(p.Retrans) != len(p.Algos) {
			continue
		}
		var tcp, crc RetransTally
		for a := range p.Algos {
			switch p.Algos[a].Name {
			case "tcp":
				tcp = p.Retrans[a]
			case "crc32":
				crc = p.Retrans[a]
			}
		}
		out = append(out, fmt.Sprintf(
			"retrans[%s/%s]: cap=%d pdus=%d tcp_tx=%d tcp_resid=%d crc32_tx=%d crc32_resid=%d oracle_tx=%d exhausted=%d",
			t.label(), c.Name, t.MaxRetries, c.PacketsSent,
			tcp.Transmissions, tcp.ResidualBytes, crc.Transmissions, crc.ResidualBytes,
			p.Oracle.Transmissions, p.Oracle.Exhausted))
	}
	return out
}

// residualContrastReport is the closed-loop counterpart of the
// miss-rate loss contrast: over the cell-loss channels at matched
// average rate, the open-loop miss rate next to what the operator
// actually experiences — residual corrupt bytes per delivered GB, mean
// transmissions per delivered PDU, and goodput overhead vs the perfect
// oracle — for the bellwether algorithms.  Correlated loss concentrates
// damage into the retransmissions themselves, so a matched average rate
// that leaves miss rates close can still widen the residual gap.
func (t *Tally) residualContrastReport() string {
	if !t.Retrans {
		return ""
	}
	var rows []*ChannelTally
	for i := range t.Channels {
		if strings.HasPrefix(t.Channels[i].Name, "drop") {
			rows = append(rows, &t.Channels[i])
		}
	}
	if len(rows) < 2 {
		return ""
	}
	tb := report.Table{
		Title: fmt.Sprintf("netsim %s: residual error vs miss rate, i.i.d. vs correlated loss at matched rate", t.label()),
		Headers: []string{"channel", "algorithm", "miss rate", "residual B/GB",
			"mean tx/PDU", "overhead vs oracle"},
	}
	for _, c := range rows {
		p := c.scoring()
		if p == nil || len(p.Retrans) != len(p.Algos) {
			continue
		}
		for _, name := range []string{"tcp", "f255", "crc32"} {
			for a := range p.Algos {
				if p.Algos[a].Name != name {
					continue
				}
				r := p.Retrans[a]
				res, rok := r.ResidualPerGB()
				mtx, mok := r.MeanTx()
				ov, ook := r.OverheadVs(p.Oracle)
				tb.AddRow(c.Name, name, rateCell(p.Algos[a]),
					floatCell(res, rok, 1), floatCell(mtx, mok, 4), floatCell(ov, ook, 4))
			}
		}
	}
	return tb.Render() + "\n"
}

// ShapeLines renders the per-channel shape pin lines — the compact
// ranking summary ci.sh and the cksumd metrics endpoint grep.
func (t *Tally) ShapeLines() []string {
	out := make([]string, 0, len(t.Channels))
	for _, s := range t.Shapes() {
		out = append(out, fmt.Sprintf("shape[%s/%s]: corrupted=%d weakest=%s(%d) tcp=%d crc32=%d",
			t.label(), s.Channel, s.Corrupted, s.Weakest, s.WeakestUndetect, s.TCPUndetected, s.CRC32Undetected))
	}
	return out
}

// PlacementLines renders the per-channel per-segment placement pin
// lines, one per channel that scored the segment placement.
func (t *Tally) PlacementLines() []string {
	var out []string
	for i := range t.Channels {
		c := &t.Channels[i]
		seg := c.Placement(PlaceSegment.String())
		if seg == nil {
			continue
		}
		tcp, _ := seg.Algo("tcp")
		f255, _ := seg.Algo("f255")
		crc, _ := seg.Algo("crc32")
		out = append(out, fmt.Sprintf("placement[%s/%s]: seg_corrupted=%d tcp=%d f255=%d crc32=%d header=%d trailer=%d",
			t.label(), c.Name, seg.Corrupted, tcp.Undetected, f255.Undetected, crc.Undetected,
			seg.HeaderPos.Undetected, seg.TrailerPos.Undetected))
	}
	return out
}

// lossContrastReport contrasts the cell-loss channels — i.i.d. drop vs
// the correlated processes — which the battery runs at matched average
// loss rate: measured loss, splice-candidate formation (corrupted
// deliveries), where the layered receiver rejected them, and the
// undetected counts of the bellwether algorithms.  Rendered only when
// the tally holds at least two drop channels to contrast.
func (t *Tally) lossContrastReport() string {
	var rows []*ChannelTally
	for i := range t.Channels {
		if strings.HasPrefix(t.Channels[i].Name, "drop") {
			rows = append(rows, &t.Channels[i])
		}
	}
	if len(rows) < 2 {
		return ""
	}
	tb := report.Table{
		Title: fmt.Sprintf("netsim %s: i.i.d. vs correlated cell loss at matched average rate", t.label()),
		Headers: []string{"channel", "cell loss", "lost pkts", "splices",
			"framing", "AAL5 CRC", "header", "checksum", "acc-corrupt", "tcp miss", "crc32 miss"},
	}
	for _, c := range rows {
		loss := 0.0
		if c.CellsSent > 0 {
			loss = 1 - float64(c.CellsDelivered)/float64(c.CellsSent)
		}
		var tcpMiss, crcMiss uint64
		if p := c.scoring(); p != nil {
			for _, a := range p.Algos {
				switch a.Name {
				case "tcp":
					tcpMiss = a.Undetected
				case "crc32":
					crcMiss = a.Undetected
				}
			}
		}
		p := &c.Pipeline
		tb.AddRow(c.Name, report.Percent(loss), report.Count(c.Lost), report.Count(c.Corrupted),
			report.Count(p.Framing), report.Count(p.CRC), report.Count(p.Header),
			report.Count(p.Checksum), report.Count(p.AcceptedCorrupt),
			report.Count(tcpMiss), report.Count(crcMiss))
	}
	return tb.Render() + "\n"
}

// placementContrastReport renders the end-to-end vs per-segment
// placement contrast — the Table 9 axis measured by injection.  One row
// per channel: how many deliveries each placement saw as corrupted, the
// bellwether algorithms' misses under each, and the TCP sum's
// header-vs-trailer position misses on the per-segment corruptions.
// Rendered only when both placements were scored.
func (t *Tally) placementContrastReport() string {
	type pair struct{ c *ChannelTally }
	var rows []pair
	for i := range t.Channels {
		c := &t.Channels[i]
		if c.Placement(PlaceE2E.String()) != nil && c.Placement(PlaceSegment.String()) != nil {
			rows = append(rows, pair{c})
		}
	}
	if len(rows) == 0 {
		return ""
	}
	tb := report.Table{
		Title: fmt.Sprintf("netsim %s: end-to-end vs per-segment checksum placement", t.label()),
		Headers: []string{"channel", "e2e corrupt", "e2e tcp", "e2e crc32",
			"seg corrupt", "seg tcp", "seg f255", "seg crc32", "tcp@header", "tcp@trailer"},
	}
	for _, r := range rows {
		e2e := r.c.Placement(PlaceE2E.String())
		seg := r.c.Placement(PlaceSegment.String())
		e2eTCP, _ := e2e.Algo("tcp")
		e2eCRC, _ := e2e.Algo("crc32")
		segTCP, _ := seg.Algo("tcp")
		segF255, _ := seg.Algo("f255")
		segCRC, _ := seg.Algo("crc32")
		tb.AddRow(r.c.Name,
			report.Count(e2e.Corrupted), report.Count(e2eTCP.Undetected), report.Count(e2eCRC.Undetected),
			report.Count(seg.Corrupted), report.Count(segTCP.Undetected), report.Count(segF255.Undetected),
			report.Count(segCRC.Undetected),
			report.Count(seg.HeaderPos.Undetected), report.Count(seg.TrailerPos.Undetected))
	}
	return tb.Render() + "\n"
}

// pipelineReport renders the structural receiver outcomes for the
// tally's mode.
func (t *Tally) pipelineReport() string {
	p := report.Table{}
	if t.Mode == ModeUDPFrag.String() {
		p.Title = "netsim udpfrag: ipfrag reassembly outcomes per channel"
		p.Headers = []string{"channel", "frags", "dg intact", "dg lost", "frag reject", "UDP caught", "UDP undetected"}
		for i := range t.Channels {
			c := &t.Channels[i].Pipeline
			p.AddRow(t.Channels[i].Name, report.Count(c.FragDelivered),
				report.Count(c.DatagramsIntact), report.Count(c.DatagramsLost),
				report.Count(c.FragReject), report.Count(c.UDPCaught), report.Count(c.UDPUndetected))
		}
	} else {
		p.Title = "netsim tcp: layered receiver outcomes per channel (first check that fired)"
		p.Headers = []string{"channel", "accepted", "accepted-corrupt", "framing", "AAL5 CRC", "header", "checksum"}
		for i := range t.Channels {
			c := &t.Channels[i].Pipeline
			p.AddRow(t.Channels[i].Name, report.Count(c.Accepted), report.Count(c.AcceptedCorrupt),
				report.Count(c.Framing), report.Count(c.CRC), report.Count(c.Header), report.Count(c.Checksum))
		}
	}
	return p.Render() + "\n"
}
