package netsim

import (
	"fmt"
	"math/bits"
)

// ErrClassTally histograms the *structure* of the corrupted end-to-end
// deliveries one channel produced: the XOR difference between the
// received candidate and the sent PDU it claims to be, bucketed the way
// CRC algebra buckets error polynomials — by Hamming weight for sparse
// flips, by bit span for bursts.  This is the measured error
// distribution of the run: the polynomial census weights each
// candidate generator's analytic per-class coverage (A2/A3 spectra,
// burst fractions, collision floor) by these frequencies to get a
// corpus-shaped P_ud instead of the uniform assumption.
//
// Classification is a pure function of (received, sent) — no RNG, no
// allocation — so the engine's worker-count byte-identity and
// zero-steady-state-allocation contracts are untouched.
type ErrClassTally struct {
	// LenChange counts deliveries whose byte length differs from the
	// sent PDU — splices and concatenations, where bit-position algebra
	// does not apply directly.
	LenChange uint64
	// Weight1..Weight3 count equal-length deliveries whose XOR
	// difference has Hamming weight exactly 1, 2 or 3.
	Weight1 uint64
	Weight2 uint64
	Weight3 uint64
	// Burst counts equal-length deliveries of weight ≥ 4 whose differing
	// bits all fall within a 64-bit span — the cell- and byte-burst
	// regime every CRC of width ≥ the span detects unconditionally.
	Burst uint64
	// Multi counts everything else: heavy, spread-out damage
	// (multi-burst, whole-cell substitution at equal length).
	Multi uint64
}

// note classifies one corrupted delivery.  recv and sent are the
// received candidate and the claimed sent PDU; callers only invoke it
// when the two differ.
func (e *ErrClassTally) note(recv, sent []byte) {
	if len(recv) != len(sent) {
		e.LenChange++
		return
	}
	first, last := -1, -1
	weight := 0
	for i := range recv {
		d := recv[i] ^ sent[i]
		if d == 0 {
			continue
		}
		if first < 0 {
			first = i*8 + bits.LeadingZeros8(d)
		}
		last = i*8 + 7 - bits.TrailingZeros8(d)
		weight += bits.OnesCount8(d)
	}
	switch {
	case weight == 1:
		e.Weight1++
	case weight == 2:
		e.Weight2++
	case weight == 3:
		e.Weight3++
	case last-first+1 <= 64:
		e.Burst++
	default:
		e.Multi++
	}
}

func (e *ErrClassTally) merge(o *ErrClassTally) {
	e.LenChange += o.LenChange
	e.Weight1 += o.Weight1
	e.Weight2 += o.Weight2
	e.Weight3 += o.Weight3
	e.Burst += o.Burst
	e.Multi += o.Multi
}

// Total is the number of corrupted deliveries classified.
func (e ErrClassTally) Total() uint64 {
	return e.LenChange + e.Weight1 + e.Weight2 + e.Weight3 + e.Burst + e.Multi
}

// Line renders the histogram as a greppable pin line fragment.
func (e ErrClassTally) Line() string {
	return fmt.Sprintf("len=%d w1=%d w2=%d w3=%d burst=%d multi=%d",
		e.LenChange, e.Weight1, e.Weight2, e.Weight3, e.Burst, e.Multi)
}

// ErrClasses sums the per-channel error-structure histograms — the
// measured error mix of the whole run.
func (t *Tally) ErrClasses() ErrClassTally {
	var sum ErrClassTally
	for i := range t.Channels {
		sum.merge(&t.Channels[i].ErrClass)
	}
	return sum
}
