package netsim

import (
	"context"
	"strings"
	"testing"
)

// TestTallyMergeShapeMismatch is the regression test for the unguarded
// index-aligned merge: merging tallies of different shapes must fail
// with an error naming the mismatched element instead of silently
// misattributing counts.  Each case failed (merged garbage or panicked)
// before Merge validated shapes.
func TestTallyMergeShapeMismatch(t *testing.T) {
	base := func() *Tally {
		return newTally("tcp", []string{"drop", "burst"}, []string{"tcp", "crc32"}, []string{"e2e"}, false, 0)
	}
	cases := []struct {
		name string
		o    *Tally
		want string
	}{
		{"mode", newTally("udpfrag", []string{"drop", "burst"}, []string{"tcp", "crc32"}, []string{"e2e"}, false, 0), `mode "tcp" vs "udpfrag"`},
		{"channel-name", newTally("tcp", []string{"drop", "dup"}, []string{"tcp", "crc32"}, []string{"e2e"}, false, 0), `channel[1] "burst" vs "dup"`},
		{"channel-count", newTally("tcp", []string{"drop"}, []string{"tcp", "crc32"}, []string{"e2e"}, false, 0), "2 vs 1 channels"},
		{"algo-name", newTally("tcp", []string{"drop", "burst"}, []string{"tcp", "fletcher"}, []string{"e2e"}, false, 0), `algo[1] "crc32" vs "fletcher"`},
		{"placement", newTally("tcp", []string{"drop", "burst"}, []string{"tcp", "crc32"}, []string{"segment"}, false, 0), `placement[0] "e2e" vs "segment"`},
		{"retrans", newTally("tcp", []string{"drop", "burst"}, []string{"tcp", "crc32"}, []string{"e2e"}, true, 8), "retrans false/cap=0 vs true/cap=8"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := base()
			dst.Channels[0].Trials = 7
			err := dst.Merge(tc.o)
			if err == nil {
				t.Fatalf("merging mismatched shape (%s) succeeded", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the mismatch %q", err, tc.want)
			}
			if dst.Channels[0].Trials != 7 {
				t.Error("tally modified by a failed merge")
			}
		})
	}

	// The happy path must still merge: same shape, counts add.
	a, b := base(), base()
	a.Channels[0].Trials, b.Channels[0].Trials = 3, 4
	if err := a.Merge(b); err != nil {
		t.Fatalf("same-shape merge: %v", err)
	}
	if a.Channels[0].Trials != 7 {
		t.Errorf("merged trials = %d, want 7", a.Channels[0].Trials)
	}
}

// TestCompStatsOverflowBoundary is the regression test for the uint64
// cross-multiplication in the min/max ratio selection: once comp·raw
// exceeds 2^64 (files ≥ 4 GiB), the old comparison wrapped and could
// invert the selection.  Both cases below give wrong answers with
// `comp*raw < minComp*minRaw`-style arithmetic and correct ones with
// the 128-bit ratioLess.
func TestCompStatsOverflowBoundary(t *testing.T) {
	const gib = uint64(1) << 30

	var s CompStats
	s.add(6*gib, 3*gib) // ratio 0.5 — the true minimum
	s.add(4*gib, 3*gib) // ratio 0.75; old math wraps 3G·6G and replaces the min
	if got := s.MinRatio(); got != 0.5 {
		t.Errorf("MinRatio after ≥4GiB adds = %v, want 0.5", got)
	}

	var m CompStats
	m.add(6*gib, 5*gib) // ratio ≈0.833 — the true maximum
	m.add(4*gib, 3*gib) // ratio 0.75; old math wraps 5G·4G and replaces the max
	if got, want := m.MaxRatio(), float64(5*gib)/float64(6*gib); got != want {
		t.Errorf("MaxRatio after ≥4GiB adds = %v, want %v", got, want)
	}

	// The same boundary holds across merge: shard-local extrema compared
	// with the same 128-bit arithmetic.
	var agg CompStats
	agg.merge(&s)
	agg.merge(&m)
	if got := agg.MinRatio(); got != 0.5 {
		t.Errorf("merged MinRatio = %v, want 0.5", got)
	}
	if got, want := agg.MaxRatio(), float64(5*gib)/float64(6*gib); got != want {
		t.Errorf("merged MaxRatio = %v, want %v", got, want)
	}

	// Sub-boundary sanity: small files must behave identically.
	var sm CompStats
	sm.add(100, 80)
	sm.add(100, 20)
	if sm.MinRatio() != 0.2 || sm.MaxRatio() != 0.8 {
		t.Errorf("small-file extrema = %v/%v, want 0.2/0.8", sm.MinRatio(), sm.MaxRatio())
	}
}

// TestAlgoTallyRateZeroCandidates is the regression test for the
// zero-candidate miss rate: a channel that never corrupted anything is
// not evidence of a perfect detector, so Rate reports ok == false and
// every renderer shows "-" instead of 0%.
func TestAlgoTallyRateZeroCandidates(t *testing.T) {
	var a AlgoTally
	if r, ok := a.Rate(); ok || r != 0 {
		t.Errorf("zero-candidate Rate() = %v, %v; want 0, false", r, ok)
	}
	if got := rateCell(a); got != "-" {
		t.Errorf("zero-candidate rateCell = %q, want \"-\"", got)
	}

	a.Detected, a.Undetected = 3, 1
	if r, ok := a.Rate(); !ok || r != 0.25 {
		t.Errorf("Rate() = %v, %v; want 0.25, true", r, ok)
	}

	// End to end: a lossless channel scores no corrupted deliveries, so
	// the report's per-algorithm cells must all render "-".
	w := sliceWalker{files: [][]byte{varied(4000)}}
	tally, err := Run(context.Background(), w, Config{
		Trials:   2,
		Seed:     3,
		Channels: []ChannelSpec{{Name: "nop", New: func() Channel { return nopChannel{} }}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := tally.Report()
	if !strings.Contains(rep, "-") {
		t.Error("lossless report missing the \"-\" zero-candidate cells")
	}
	if strings.Contains(rep, "0.000000%") {
		t.Error("lossless report renders a fake 0% miss rate for zero candidates")
	}
}
