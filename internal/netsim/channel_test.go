package netsim

import (
	"context"
	"math/rand/v2"
	"strings"
	"testing"

	"realsum/internal/atm"
	"realsum/internal/errmodel"
	"realsum/internal/lossim"
)

// makeStream segments packets of the given payload sizes into one cell
// train with origin tags, as the netsim sender does.
func makeStream(t *testing.T, sizes ...int) Stream {
	t.Helper()
	var s Stream
	for k, n := range sizes {
		sdu := make([]byte, n)
		for i := range sdu {
			sdu[i] = byte(i*13 + k)
		}
		cells, err := atm.AppendSegment(s.Cells, sdu, 0, 32)
		if err != nil {
			t.Fatal(err)
		}
		for i := len(s.Origin); i < len(cells); i++ {
			s.Origin = append(s.Origin, int32(k))
		}
		s.Cells = cells
	}
	return s
}

// TestCellCorruptPreservesTrailer is the regression test for the
// end-of-packet trailer bug: CellCorrupt used to corrupt Payload[:] of
// EOP cells, letting bursts silently rewrite the CPCS length/CRC fields
// — framing damage from a channel documented to preserve framing.  It
// hammers a stream whose cells are almost all EOP cells (1-byte SDUs
// segment to a single marked cell) at PerCell=1 and asserts every
// delivered trailer is bit-identical, while the data bytes ahead of the
// trailer do get damaged.
func TestCellCorruptPreservesTrailer(t *testing.T) {
	for _, model := range []errmodel.InPlacer{
		errmodel.BitFlips{K: 2},
		errmodel.SolidBurst{Bits: 32},
	} {
		sizes := make([]int, 64)
		for i := range sizes {
			sizes[i] = 1 + i%40 // single-cell packets: every cell is EOP
		}
		s := makeStream(t, sizes...)
		var want []atm.Trailer
		for i := range s.Cells {
			if !s.Cells[i].Header.EndOfPacket() {
				t.Fatal("expected every cell to be end-of-packet")
			}
			want = append(want, atm.DecodeTrailer(s.Cells[i].Payload[:]))
		}

		ch := &CellCorrupt{Model: model, PerCell: 1}
		rng := rand.New(rand.NewPCG(5, 5))
		touched := false
		for round := 0; round < 50; round++ {
			ch.Transmit(rng, &s)
			for i := range s.Cells {
				if got := atm.DecodeTrailer(s.Cells[i].Payload[:]); got != want[i] {
					t.Fatalf("%s round %d cell %d: trailer rewritten: got %v want %v",
						model.Name(), round, i, got, want[i])
				}
				for _, b := range s.Cells[i].Payload[:atm.PayloadSize-atm.TrailerSize] {
					if b != 0 && s.Cells[i].Payload[0] != byte(i*13) {
						touched = true
					}
				}
				if round == 49 {
					// Sanity: the SDU byte must have been hit at least once
					// across 50 full-rate rounds.
					_ = touched
				}
			}
		}
		if !touched {
			t.Errorf("%s: no SDU/padding byte ever changed; corruption is vacuous", model.Name())
		}
	}
}

// TestCellCorruptDataCellsFullPayload: non-EOP cells carry no framing,
// so the whole 48-byte payload stays in play for the corruption model.
func TestCellCorruptDataCellsFullPayload(t *testing.T) {
	s := makeStream(t, 4096) // one big packet: many data cells
	ch := &CellCorrupt{Model: errmodel.SolidBurst{Bits: 32}, PerCell: 1}
	rng := rand.New(rand.NewPCG(6, 6))
	lastFive := false
	for round := 0; round < 200 && !lastFive; round++ {
		orig := make([]atm.Cell, len(s.Cells))
		copy(orig, s.Cells)
		ch.Transmit(rng, &s)
		for i := range s.Cells {
			if s.Cells[i].Header.EndOfPacket() {
				continue
			}
			for b := atm.PayloadSize - atm.TrailerSize; b < atm.PayloadSize; b++ {
				if s.Cells[i].Payload[b] != orig[i].Payload[b] {
					lastFive = true
				}
			}
		}
	}
	if !lastFive {
		t.Error("trailer-position bytes of data cells never corrupted; the exemption over-reaches")
	}
}

// TestChannelsByNameSortedUnknowns pins the fixed error-reporting order:
// unknown names come back sorted, not in map-range order.
func TestChannelsByNameSortedUnknowns(t *testing.T) {
	for i := 0; i < 20; i++ {
		specs, unknown := ChannelsByName([]string{"zeta", "drop", "alpha"})
		if len(specs) != 1 || specs[0].Name != "drop" {
			t.Fatalf("specs = %v, want [drop]", specs)
		}
		if len(unknown) != 2 || unknown[0] != "alpha" || unknown[1] != "zeta" {
			t.Fatalf("unknown = %v, want [alpha zeta] (sorted, stable)", unknown)
		}
	}
}

func TestChannelNames(t *testing.T) {
	names := ChannelNames()
	want := []string{"drop", "drop-ge", "drop-burst", "bitflip", "burst", "reorder", "misinsert", "dup"}
	if len(names) != len(want) {
		t.Fatalf("ChannelNames() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ChannelNames() = %v, want %v", names, want)
		}
	}
}

// TestCellDupRejectedByLengthCheck pins the duplication shape claim: a
// duplicated mid-PDU cell makes the candidate one cell longer than
// CellCount(trailer length) allows, so the AAL5 length check rejects
// every corrupted delivery before the CRC is ever consulted.
func TestCellDupRejectedByLengthCheck(t *testing.T) {
	w := sliceWalker{files: [][]byte{varied(8192), zeroHeavy(4096)}}
	cfg := Config{
		Trials: 20,
		Seed:   11,
		Channels: []ChannelSpec{{Name: "dup", New: func() Channel {
			return &CellDup{PerPacket: 0.9}
		}}},
	}
	tally, err := Run(context.Background(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := tally.Channels[0]
	if c.Corrupted == 0 {
		t.Fatal("dup channel corrupted nothing; test is vacuous")
	}
	if c.Lost != 0 {
		t.Errorf("dup channel lost %d packets; duplication must not lose trailers", c.Lost)
	}
	p := c.Pipeline
	if p.Framing != c.Corrupted {
		t.Errorf("length check rejected %d of %d duplicated candidates; all must die at framing",
			p.Framing, c.Corrupted)
	}
	if p.CRC != 0 {
		t.Errorf("%d duplicated candidates reached the AAL5 CRC; the length check fires first", p.CRC)
	}
	if p.Header != 0 || p.Checksum != 0 || p.AcceptedCorrupt != 0 {
		t.Errorf("duplicated candidates leaked past framing: header=%d checksum=%d accepted-corrupt=%d",
			p.Header, p.Checksum, p.AcceptedCorrupt)
	}
}

// TestCellDupTransmitShape checks the stream-level mechanics directly:
// hit packets gain exactly one cell, the duplicate is adjacent to its
// original, and origin tags stay parallel.
func TestCellDupTransmitShape(t *testing.T) {
	s := makeStream(t, 300, 300, 300)
	nCells, nOrigin := len(s.Cells), len(s.Origin)
	ch := &CellDup{PerPacket: 1}
	ch.Transmit(rand.New(rand.NewPCG(7, 7)), &s)
	if len(s.Cells) != nCells+3 {
		t.Fatalf("3 packets at PerPacket=1: got %d cells, want %d", len(s.Cells), nCells+3)
	}
	if len(s.Origin) != nOrigin+3 {
		t.Fatalf("origin not parallel: %d tags for %d cells", len(s.Origin), len(s.Cells))
	}
	dups := 0
	for i := 1; i < len(s.Cells); i++ {
		if s.Cells[i] == s.Cells[i-1] && s.Origin[i] == s.Origin[i-1] {
			dups++
			if s.Cells[i].Header.EndOfPacket() {
				t.Error("trailer cell duplicated; only data cells are eligible")
			}
		}
	}
	if dups != 3 {
		t.Errorf("found %d adjacent duplicates, want 3", dups)
	}
}

// TestNetsimCorrelatedLossContrast is the tentpole acceptance claim: at
// matched 1% average cell-loss rate, the Gilbert–Elliott and burst-drop
// channels produce measurably different splice formation and
// undetected-error behaviour than i.i.d. drop, and the rendered report
// carries the contrast section.
func TestNetsimCorrelatedLossContrast(t *testing.T) {
	specs, unknown := ChannelsByName([]string{"drop", "drop-ge", "drop-burst"})
	if len(unknown) != 0 || len(specs) != 3 {
		t.Fatalf("loss battery: specs=%d unknown=%v", len(specs), unknown)
	}
	w := sliceWalker{files: [][]byte{zeroHeavy(16384), varied(16384)}}
	tally, err := Run(context.Background(), w, Config{Trials: 40, Seed: 5, Channels: specs})
	if err != nil {
		t.Fatal(err)
	}

	lossOf := func(c *ChannelTally) float64 {
		return 1 - float64(c.CellsDelivered)/float64(c.CellsSent)
	}
	iid := &tally.Channels[0]
	if iid.Corrupted == 0 {
		t.Fatal("i.i.d. drop formed no splice candidates; contrast is vacuous")
	}
	for i := 1; i < 3; i++ {
		c := &tally.Channels[i]
		// Matched severity: measured loss within ±30% of the i.i.d. rate.
		if r, r0 := lossOf(c), lossOf(iid); r < 0.7*r0 || r > 1.3*r0 {
			t.Errorf("%s: measured loss %.4f vs i.i.d. %.4f; channels must run at matched rate",
				c.Name, r, r0)
		}
		// Measurably different splice formation under the same average loss.
		if c.Corrupted == iid.Corrupted {
			t.Errorf("%s: corrupted count %d identical to i.i.d.; correlation has no effect",
				c.Name, c.Corrupted)
		}
		if c.Lost == iid.Lost {
			t.Errorf("%s: lost count %d identical to i.i.d.", c.Name, c.Lost)
		}
	}

	rep := tally.Report()
	if !strings.Contains(rep, "i.i.d. vs correlated cell loss at matched average rate") {
		t.Error("report missing the loss-contrast section")
	}
	for _, name := range []string{"drop-ge", "drop-burst"} {
		if !strings.Contains(rep, name) {
			t.Errorf("report missing channel %s", name)
		}
	}
}

// TestDropChannelTrialPurity: a DropChannel wrapping a correlated
// policy must be a pure function of the RNG state — StartStream resets
// the chain each Transmit, so two trials from equal seeds agree even
// though the policy carries cross-packet state within a trial.
func TestDropChannelTrialPurity(t *testing.T) {
	run := func() ([]atm.Cell, []int32) {
		s := makeStream(t, 600, 600, 600, 600)
		ch := &DropChannel{Policy: lossim.GilbertElliottAt(0.2, 5, 0.05, 0.9)}
		ch.Transmit(rand.New(rand.NewPCG(3, 9)), &s)
		return s.Cells, s.Origin
	}
	c1, o1 := run()
	c2, o2 := run()
	if len(c1) != len(c2) || len(o1) != len(o2) {
		t.Fatalf("trial impure: %d vs %d cells survive equal seeds", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i] != c2[i] || o1[i] != o2[i] {
			t.Fatalf("trial impure at cell %d", i)
		}
	}
	full := makeStream(t, 600, 600, 600, 600)
	if len(c1) >= len(full.Cells) {
		t.Error("20% correlated loss dropped nothing; purity test is vacuous")
	}
}
