package netsim

import (
	"context"
	"strings"
	"testing"

	"realsum/internal/corpus"
	"realsum/internal/errmodel"
	"realsum/internal/lossim"
)

// sliceWalker serves handcrafted in-memory files, so shape tests can
// pick exactly the data structure a fault model exploits.
type sliceWalker struct {
	files [][]byte
}

func (s sliceWalker) Walk(fn func(path string, data []byte) error) error {
	for i, f := range s.files {
		if err := fn(string(rune('a'+i)), f); err != nil {
			return err
		}
	}
	return nil
}

// zeroHeavy is a file shaped like the paper's corpus: long 0x00 runs
// with islands of text — the data that makes solid bursts invisible to
// the ones-complement sum.
func zeroHeavy(n int) []byte {
	data := make([]byte, n)
	for i := 0; i < n; i += 512 {
		copy(data[i:], "filesystem block header")
	}
	return data
}

// varied is a file of distinct cell payloads, so record-level faults
// (reorder, misinsert) always change bytes.
func varied(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*7 + i/48)
	}
	return data
}

func TestNetsimWorkersDeterministic(t *testing.T) {
	fs := corpus.StanfordU1().Scale(0.02).Build()
	for _, mode := range []Mode{ModeTCP, ModeUDPFrag} {
		cfg := Config{Mode: mode, Trials: 2, Seed: 42}
		var reports []string
		workerCounts := []int{1, 2, 8}
		for _, workers := range workerCounts {
			cfg.Workers = workers
			tally, err := Run(context.Background(), fs, cfg)
			if err != nil {
				t.Fatalf("mode %s workers %d: %v", mode, workers, err)
			}
			reports = append(reports, tally.Report())
		}
		for i := 1; i < len(reports); i++ {
			if reports[0] != reports[i] {
				t.Errorf("mode %s: report differs between workers=%d and workers=%d:\n%s\n---\n%s",
					mode, workerCounts[0], workerCounts[i], reports[0], reports[i])
			}
		}
	}
}

// TestNetsimAccountingInvariants pins the conservation laws every trial
// must satisfy: every sent packet is delivered or lost, every delivered
// candidate is intact or corrupted under every placement, the layered
// receiver assigns each candidate to exactly one outcome, and each
// placement's per-algorithm verdicts partition its corrupted count.
func TestNetsimAccountingInvariants(t *testing.T) {
	w := sliceWalker{files: [][]byte{zeroHeavy(4096), varied(3000), {}, varied(100)}}
	tally, err := Run(context.Background(), w, Config{Trials: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tally.Channels {
		if c.PDUsDelivered+c.Lost != c.PacketsSent {
			t.Errorf("%s: delivered %d + lost %d != sent %d", c.Name, c.PDUsDelivered, c.Lost, c.PacketsSent)
		}
		if c.Intact+c.Corrupted != c.PDUsDelivered {
			t.Errorf("%s: intact %d + corrupted %d != delivered %d", c.Name, c.Intact, c.Corrupted, c.PDUsDelivered)
		}
		p := c.Pipeline
		outcomes := p.Accepted + p.AcceptedCorrupt + p.Framing + p.CRC + p.Header + p.Checksum
		if outcomes != c.PDUsDelivered {
			t.Errorf("%s: pipeline outcomes %d != delivered %d", c.Name, outcomes, c.PDUsDelivered)
		}
		if len(c.Placements) != 2 {
			t.Fatalf("%s: %d placements in a default ModeTCP run, want 2", c.Name, len(c.Placements))
		}
		for _, pl := range c.Placements {
			if pl.Delivered != c.PDUsDelivered {
				t.Errorf("%s/%s: placement delivered %d != channel delivered %d",
					c.Name, pl.Name, pl.Delivered, c.PDUsDelivered)
			}
			if pl.Intact+pl.Corrupted != pl.Delivered {
				t.Errorf("%s/%s: intact %d + corrupted %d != delivered %d",
					c.Name, pl.Name, pl.Intact, pl.Corrupted, pl.Delivered)
			}
			for _, a := range pl.Algos {
				if a.Detected+a.Undetected != pl.Corrupted {
					t.Errorf("%s/%s/%s: detected %d + undetected %d != corrupted %d",
						c.Name, pl.Name, a.Name, a.Detected, a.Undetected, pl.Corrupted)
				}
			}
		}
		e2e := c.Placement(PlaceE2E.String())
		if e2e.Intact != c.Intact || e2e.Corrupted != c.Corrupted {
			t.Errorf("%s: e2e placement (%d/%d) disagrees with channel counters (%d/%d)",
				c.Name, e2e.Intact, e2e.Corrupted, c.Intact, c.Corrupted)
		}
		seg := c.Placement(PlaceSegment.String())
		for _, pos := range []AlgoTally{seg.HeaderPos, seg.TrailerPos} {
			if pos.Detected+pos.Undetected != seg.Corrupted {
				t.Errorf("%s/%s: detected %d + undetected %d != segment corrupted %d",
					c.Name, pos.Name, pos.Detected, pos.Undetected, seg.Corrupted)
			}
		}
		// Damage visible at segment granularity is visible end to end:
		// the segment span is a prefix of the PDU.
		if seg.Corrupted > e2e.Corrupted {
			t.Errorf("%s: segment placement saw %d corruptions but e2e only %d",
				c.Name, seg.Corrupted, e2e.Corrupted)
		}
	}
}

// TestNetsimBurstShape asserts the §7 acceptance claim: under 32-bit
// solid bursts over zero-heavy real data the TCP checksum is the
// weakest registered algorithm, while CRC-32 — which detects every
// burst of at most 32 bits unconditionally — stays at zero.
func TestNetsimBurstShape(t *testing.T) {
	w := sliceWalker{files: [][]byte{zeroHeavy(8192), zeroHeavy(6000)}}
	cfg := Config{
		Trials: 40,
		Seed:   1,
		Channels: []ChannelSpec{{Name: "burst", New: func() Channel {
			return &CellCorrupt{Model: errmodel.SolidBurst{Bits: 32}, PerCell: 0.05}
		}}},
	}
	tally, err := Run(context.Background(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := tally.Shapes()[0]
	if s.Corrupted == 0 {
		t.Fatal("burst channel corrupted nothing; test is vacuous")
	}
	if s.Weakest != "tcp" {
		t.Errorf("weakest algorithm under solid bursts = %s (missed %d of %d), want tcp",
			s.Weakest, s.WeakestUndetect, s.Corrupted)
	}
	if s.TCPUndetected == 0 {
		t.Error("TCP checksum missed no solid bursts over zero-heavy data; expected misses")
	}
	if s.CRC32Undetected != 0 {
		t.Errorf("CRC-32 missed %d 32-bit bursts; must catch all bursts ≤ its width", s.CRC32Undetected)
	}
}

// TestNetsimReorderShape: swapping two whole 48-byte cell payloads
// permutes 16-bit columns, so the position-blind ones-complement sum
// misses every such corruption, while CRCs and Fletcher (positional)
// catch essentially all of them.
func TestNetsimReorderShape(t *testing.T) {
	w := sliceWalker{files: [][]byte{varied(8192)}}
	cfg := Config{
		Trials: 20,
		Seed:   2,
		Channels: []ChannelSpec{{Name: "reorder", New: func() Channel {
			return &CellShuffle{Model: errmodel.Reorder{Unit: 48}, PerPacket: 0.5}
		}}},
	}
	tally, err := Run(context.Background(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := tally.Channels[0]
	if c.Corrupted == 0 {
		t.Fatal("reorder channel corrupted nothing; test is vacuous")
	}
	for _, a := range c.Placement(PlaceE2E.String()).Algos {
		switch a.Name {
		case "tcp":
			if a.Undetected != c.Corrupted {
				t.Errorf("tcp caught %d of %d cell reorders; the sum is position-blind and should miss all",
					a.Detected, c.Corrupted)
			}
		case "crc32", "crc32c", "crc64":
			if a.Undetected != 0 {
				t.Errorf("%s missed %d of %d cell reorders", a.Name, a.Undetected, c.Corrupted)
			}
		}
	}
}

// TestNetsimDropLosesPackets checks the splice-forming channel: cell
// loss must strand packets (lost trailers) and corrupt others (splices
// claiming the surviving trailer's identity).
func TestNetsimDropLosesPackets(t *testing.T) {
	w := sliceWalker{files: [][]byte{varied(16384)}}
	cfg := Config{
		Trials: 10,
		Seed:   3,
		Channels: []ChannelSpec{{Name: "drop", New: func() Channel {
			return &DropChannel{Policy: lossim.RandomLoss{P: 0.02}}
		}}},
	}
	tally, err := Run(context.Background(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := tally.Channels[0]
	if c.Lost == 0 {
		t.Error("2% cell loss over 10 trials lost no packets")
	}
	if c.CellsDelivered >= c.CellsSent {
		t.Errorf("delivered %d cells of %d sent under loss", c.CellsDelivered, c.CellsSent)
	}
	// Every corrupted candidate under pure loss is a splice; the AAL5
	// length check or CRC must reject anything the framing passes.
	if c.Pipeline.AcceptedCorrupt != 0 {
		t.Errorf("receiver accepted %d corrupted splices past TCP/IP checks", c.Pipeline.AcceptedCorrupt)
	}
}

// TestNetsimUDPFragAccounting runs the fragmentation mode and checks
// the datagram conservation law.
func TestNetsimUDPFragAccounting(t *testing.T) {
	files := [][]byte{varied(5000), zeroHeavy(3000), varied(100)}
	w := sliceWalker{files: files}
	cfg := Config{Mode: ModeUDPFrag, Trials: 4, Seed: 4}
	tally, err := Run(context.Background(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var dgPerTrial uint64
	for _, f := range files {
		n := (len(f) + 1023) / 1024
		if n < 1 {
			n = 1
		}
		dgPerTrial += uint64(n)
	}
	for _, c := range tally.Channels {
		p := c.Pipeline
		got := p.DatagramsIntact + p.DatagramsLost + p.FragReject + p.UDPCaught + p.UDPUndetected
		if got != dgPerTrial*uint64(cfg.Trials) {
			t.Errorf("%s: datagram outcomes %d != %d datagrams × %d trials",
				c.Name, got, dgPerTrial, cfg.Trials)
		}
	}
}

// TestNetsimZeroAllocTrial guards the per-trial hot path: after one
// warm-up pass over a file, repeated trials on every default channel
// must not allocate (ModeTCP).
func TestNetsimZeroAllocTrial(t *testing.T) {
	w := newWorker(Config{Trials: 2, Seed: 9})
	data := varied(8192)
	w.file(0, data) // warm-up: sizes every reusable buffer
	for c := range w.chans {
		c := c
		allocs := testing.AllocsPerRun(20, func() {
			w.trial(0, c, 0)
		})
		if allocs != 0 {
			t.Errorf("channel %s: %v allocs per trial, want 0", w.tally.Channels[c].Name, allocs)
		}
	}
}

func TestNetsimMergeCommutative(t *testing.T) {
	w := sliceWalker{files: [][]byte{varied(2000), zeroHeavy(2000)}}
	run := func(seed uint64) *Tally {
		tally, err := Run(context.Background(), w, Config{Trials: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return tally
	}
	ab1, ab2 := run(1), run(2)
	ba1, ba2 := run(1), run(2)
	if err := ab1.Merge(ab2); err != nil {
		t.Fatal(err)
	}
	if err := ba2.Merge(ba1); err != nil {
		t.Fatal(err)
	}
	if ab1.Report() != ba2.Report() {
		t.Error("Merge is not commutative: A+B and B+A reports differ")
	}
}

func TestChannelsByName(t *testing.T) {
	specs, unknown := ChannelsByName([]string{"burst", "drop", "nosuch"})
	if len(specs) != 2 || specs[0].Name != "drop" || specs[1].Name != "burst" {
		t.Errorf("got %d specs (want drop,burst in battery order)", len(specs))
	}
	if len(unknown) != 1 || unknown[0] != "nosuch" {
		t.Errorf("unknown = %v, want [nosuch]", unknown)
	}
}

func TestTrialSeedDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for f := 0; f < 8; f++ {
		for c := 0; c < 5; c++ {
			for tr := 0; tr < 8; tr++ {
				s := TrialSeed(42, f, c, tr)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision between (%d,%d,%d) and %s", f, c, tr, prev)
				}
				seen[s] = strings.Join([]string{string(rune('0' + f)), string(rune('0' + c)), string(rune('0' + tr))}, ",")
			}
		}
	}
	if TrialSeed(1, 0, 0, 0) == TrialSeed(2, 0, 0, 0) {
		t.Error("root seed does not alter trial seeds")
	}
}
