package netsim

import "sort"

// Placement selects where a checksum notionally sits relative to the
// transfer — the layered-checksum axis of the paper's §8–§10 and
// Table 9.  The same delivered cell stream is scored under every
// enabled placement, so the placements see identical fault patterns and
// their undetected-error rates are directly comparable.
type Placement int

const (
	// PlaceE2E scores each algorithm end to end over the reassembled
	// byte stream of a delivered candidate: the whole AAL5 PDU (cell
	// payloads, padding and trailer included) against the sent PDU its
	// trailer claims.  This is the one-checksum-over-everything view —
	// the placement the scorer measured exclusively before the axis
	// existed.
	PlaceE2E Placement = iota
	// PlaceSegment scores each algorithm per TCP segment: the delivered
	// candidate's bytes at the claimed segment's span (its first
	// PacketLen bytes) against the sent segment's checksum.  A miss is
	// counted when a delivered segment's received bytes collide with its
	// sent checksum even though the bytes differ — the granularity at
	// which TCP actually verifies and retransmits.  ModeTCP only; the
	// fragments of ModeUDPFrag are not TCP segments.
	PlaceSegment
)

// String returns the placement's registry name.
func (p Placement) String() string {
	if p == PlaceSegment {
		return "segment"
	}
	return "e2e"
}

// AllPlacements lists every placement in battery order — the default
// scoring set for ModeTCP.
func AllPlacements() []Placement { return []Placement{PlaceE2E, PlaceSegment} }

// PlacementNames lists the placement names in battery order — the valid
// arguments to PlacementsByName and cmd/netsim -placement.
func PlacementNames() []string {
	all := AllPlacements()
	names := make([]string, len(all))
	for i, p := range all {
		names[i] = p.String()
	}
	return names
}

// PlacementsByName filters AllPlacements down to a comma-separated
// subset, preserving battery order.  Unknown names are reported,
// sorted, so callers' error messages are stable run-to-run.
func PlacementsByName(names []string) ([]Placement, []string) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []Placement
	for _, p := range AllPlacements() {
		if want[p.String()] {
			out = append(out, p)
			delete(want, p.String())
		}
	}
	unknown := make([]string, 0, len(want))
	for n := range want {
		unknown = append(unknown, n)
	}
	sort.Strings(unknown)
	if len(unknown) == 0 {
		unknown = nil
	}
	return out, unknown
}
