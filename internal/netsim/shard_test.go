package netsim

import (
	"context"
	"testing"

	"realsum/internal/corpus"
)

// TestShardFlushMatchesRun is the incremental-path oracle at the engine
// level: feeding files through Shards with batched flushes at arbitrary
// points merges to a tally byte-identical to the one-shot Run.
func TestShardFlushMatchesRun(t *testing.T) {
	fs := corpus.StanfordU1().Scale(0.02).Build()
	cfg := Config{Trials: 2, Seed: 99}
	want, err := Run(context.Background(), fs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Two shards fed round-robin, flushed mid-stream after every file on
	// shard B and only at the end on shard A.
	agg := NewTally(cfg)
	a, b := NewShard(cfg), NewShard(cfg)
	idx := 0
	err = fs.Walk(func(path string, data []byte) error {
		if idx%2 == 0 {
			a.File(idx, data)
		} else {
			b.File(idx, data)
			if err := b.Flush(agg); err != nil {
				t.Fatal(err)
			}
		}
		idx++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(agg); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(agg); err != nil { // empty after its last flush; must be a no-op
		t.Fatal(err)
	}

	if got, want := agg.Report(), want.Report(); got != want {
		t.Errorf("shard-flushed tally differs from batch Run:\n--- shard\n%s\n--- batch\n%s", got, want)
	}
}

// TestShardZeroAllocServicePath guards the cksumd per-trial hot path:
// after a warm-up file has sized the shard's reusable buffers, repeated
// trials and batched flushes through the exported Shard surface must
// not allocate (ModeTCP).
func TestShardZeroAllocServicePath(t *testing.T) {
	cfg := Config{Trials: 2, Seed: 9}
	sh := NewShard(cfg)
	agg := NewTally(cfg)
	data := varied(8192)
	sh.File(0, data) // warm-up: sizes every reusable buffer
	for c := range sh.w.chans {
		c := c
		allocs := testing.AllocsPerRun(20, func() {
			sh.w.trial(0, c, 0)
		})
		if allocs != 0 {
			t.Errorf("channel %s: %v allocs per trial through the service shard, want 0",
				sh.w.tally.Channels[c].Name, allocs)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		sh.Flush(agg)
	})
	if allocs != 0 {
		t.Errorf("%v allocs per batched flush, want 0", allocs)
	}
}

func TestTallyResetAndClone(t *testing.T) {
	fs := corpus.StanfordU1().Scale(0.01).Build()
	cfg := Config{Trials: 1, Seed: 3}
	tally, err := Run(context.Background(), fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clone := tally.Clone()
	if clone.Report() != tally.Report() {
		t.Error("Clone's report differs from the original")
	}

	tally.Reset()
	empty := NewTally(cfg)
	if tally.Report() != empty.Report() {
		t.Errorf("Reset tally differs from a fresh NewTally:\n%s", tally.Report())
	}
	// The clone must be a deep copy: resetting the original cannot have
	// touched it.
	if clone.Report() == empty.Report() {
		t.Error("Clone shares counters with the original (Reset zeroed it)")
	}
	// A reset tally is reusable as a merge target of the same shape.
	if err := tally.Merge(clone); err != nil {
		t.Fatal(err)
	}
	if tally.Report() != clone.Report() {
		t.Error("merging into a Reset tally does not reproduce the source")
	}
}

func TestStreamSeed(t *testing.T) {
	if got := StreamSeed(42, 0); got != 42 {
		t.Errorf("StreamSeed(42, 0) = %d, want the base seed itself", got)
	}
	seen := map[uint64]int{42: 0}
	for r := 1; r < 64; r++ {
		s := StreamSeed(42, r)
		if prev, dup := seen[s]; dup {
			t.Fatalf("replica %d collides with replica %d", r, prev)
		}
		seen[s] = r
	}
	if StreamSeed(1, 1) == StreamSeed(2, 1) {
		t.Error("base seed does not alter replica seeds")
	}
}
