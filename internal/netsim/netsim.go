// Package netsim is the Monte Carlo end-to-end fault-injection
// pipeline: it encodes real corpus files as TCP/IPv4 (or UDP/IPv4 +
// ipfrag fragmentation) packets carried in AAL5/ATM cells, pushes the
// cell train through a pluggable fault channel — cell drop, bit flips,
// solid bursts, cell misordering and misinsertion — and reassembles at
// a receiver that scores every algorithm in the algo registry, counting
// delivered/corrupted/detected/undetected outcomes per (algorithm ×
// fault model).
//
// This is the trial-based complement of the exhaustive splice
// enumeration (Tables 1–3): where enumeration is infeasible — §7's
// alternative error models — undetected-error probability is measured
// by injection, the standard methodology of the CRC-evaluation
// literature.  The scoring convention: each AAL5 PDU notionally carries
// every algorithm's checksum of its sent bytes; a delivered candidate
// (the cells up to a delivered end-of-packet cell) claims the identity
// of its trailer cell's sending packet, and an algorithm misses when
// its checksum of the received bytes equals its checksum of that sent
// PDU even though the bytes differ.
//
// ModeTCP scores every algorithm under two checksum placements over the
// same delivered cells: end to end over the whole reassembled PDU, and
// per TCP segment (the candidate's bytes at the claimed segment's
// span), plus a header-vs-trailer field-position contrast for the TCP
// sum — the paper's §8–§10 layered-checksum axis, measured by
// injection.  See Placement.
//
// Determinism contract: trials run on the sim.Collect shard engine with
// per-trial seeds derived by TrialSeed from (rootSeed, fileIdx,
// channelIdx, trialIdx) only, and the Tally holds nothing but
// commutatively-merged counters, so reports are byte-identical at any
// worker count.  The per-trial hot path (ModeTCP) performs no
// steady-state allocations; ModeUDPFrag allocates in the
// ipfrag.Reassemble stage only.
package netsim

import (
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"

	"realsum/internal/algo"
	"realsum/internal/atm"
	"realsum/internal/corpus"
	"realsum/internal/crc"
	"realsum/internal/ipfrag"
	"realsum/internal/lz"
	"realsum/internal/onescomp"
	"realsum/internal/sim"
	"realsum/internal/tcpip"
)

// Mode selects the transport encoding of corpus bytes.
type Mode int

const (
	// ModeTCP carries each corpus chunk as one TCP/IPv4 packet per AAL5
	// PDU — the paper's §3.2 FTP-transfer framing.
	ModeTCP Mode = iota
	// ModeUDPFrag carries larger chunks as UDP/IPv4 datagrams split by
	// ipfrag.Fragment; each IP fragment rides in its own AAL5 PDU and
	// the receiver reassembles the surviving fragments.
	ModeUDPFrag
)

func (m Mode) String() string {
	if m == ModeUDPFrag {
		return "udpfrag"
	}
	return "tcp"
}

// Config parameterizes a netsim run.  The zero value runs ModeTCP with
// the default channel battery, 256-byte segments and 6 trials per
// (file × channel).
type Config struct {
	// Mode is the transport encoding.
	Mode Mode
	// SegmentSize is the TCP payload per packet in ModeTCP (default 256,
	// the paper's segment size).
	SegmentSize int
	// DatagramSize is the UDP payload per datagram in ModeUDPFrag
	// (default 1024).
	DatagramSize int
	// MTU is the fragmentation MTU in ModeUDPFrag (default 280: 256
	// payload bytes per fragment).
	MTU int
	// Trials is the trial count per (file × channel) (default 6).
	Trials int
	// Compress enables the LZ payload stage: every corpus file is
	// lz-compressed before transport encoding, so the cell train the
	// faults hit carries near-uniform bytes — the paper's Table 7 remedy
	// exercised end to end.  Compression is a pure function of the file
	// (no RNG, no clock), so per-trial seeds and worker-count
	// determinism are untouched; per-file ratio stats land in
	// Tally.Comp.
	Compress bool
	// Retrans closes the retransmission loop: a delivery a checksum lane
	// detects as corrupt (or a packet whose trailer never arrives) is
	// retransmitted through the re-rolled channel, up to MaxRetries
	// attempts per packet; a miss is accepted corrupt.  Per (channel ×
	// placement × algorithm) the tally then carries residual corrupt
	// bytes, transmissions and goodput next to a perfect-detection
	// oracle.  Retries draw from RetrySeed sub-streams, so the
	// worker-count byte-identity contract is unchanged.
	Retrans bool
	// MaxRetries caps the retransmission attempts per packet (default 8)
	// — the terminator for dead channels and never-passing checks.
	MaxRetries int
	// Seed is the root seed every per-trial seed derives from.
	Seed uint64
	// Channels is the fault battery (default DefaultChannels).
	Channels []ChannelSpec
	// Algorithms lists the scored algorithms (default algo.All()).
	Algorithms []algo.Algorithm
	// Placements selects the checksum placements scored (default
	// AllPlacements).  PlaceSegment applies to ModeTCP only and is
	// dropped in ModeUDPFrag, whose fragments are not TCP segments.
	Placements []Placement
	// Workers bounds parallelism across files (default GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives per-file throughput updates.
	Progress *sim.Progress
}

func (c Config) segmentSize() int {
	if c.SegmentSize <= 0 {
		return sim.DefaultSegmentSize
	}
	return c.SegmentSize
}

func (c Config) datagramSize() int {
	if c.DatagramSize <= 0 {
		return 1024
	}
	return c.DatagramSize
}

func (c Config) mtu() int {
	if c.MTU <= 0 {
		return 280
	}
	return c.MTU
}

func (c Config) trials() int {
	if c.Trials <= 0 {
		return 6
	}
	return c.Trials
}

func (c Config) retryCap() int {
	if c.MaxRetries <= 0 {
		return 8
	}
	return c.MaxRetries
}

func (c Config) channels() []ChannelSpec {
	if len(c.Channels) == 0 {
		return DefaultChannels()
	}
	return c.Channels
}

func (c Config) algorithms() []algo.Algorithm {
	if len(c.Algorithms) == 0 {
		return algo.All()
	}
	return c.Algorithms
}

// placements normalizes the configured placement set: default full
// battery, duplicates dropped, PlaceSegment filtered out in ModeUDPFrag
// (fragments are not TCP segments), and never empty — a run that scores
// no placement would have nothing to report, so the e2e placement is
// the floor.
func (c Config) placements() []Placement {
	src := c.Placements
	if len(src) == 0 {
		src = AllPlacements()
	}
	var out []Placement
	var seen [2]bool
	for _, p := range src {
		if p != PlaceE2E && p != PlaceSegment {
			continue
		}
		if c.Mode == ModeUDPFrag && p == PlaceSegment {
			continue
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	if len(out) == 0 {
		out = []Placement{PlaceE2E}
	}
	return out
}

func (c Config) buildOptions() tcpip.BuildOptions { return tcpip.BuildOptions{} }

// tallyNames resolves the (channel, algorithm, placement) name lists
// the config's tallies are shaped by — shared by the engine workers and
// NewTally so service aggregates always match their shards.
func (c Config) tallyNames() (channels, algos, placements []string) {
	specs := c.channels()
	channels = make([]string, len(specs))
	for i, s := range specs {
		channels[i] = s.Name
	}
	as := c.algorithms()
	algos = make([]string, len(as))
	for i, a := range as {
		algos[i] = a.Name()
	}
	pls := c.placements()
	placements = make([]string, len(pls))
	for i, p := range pls {
		placements[i] = p.String()
	}
	return channels, algos, placements
}

// fragRef queues one AAL5-accepted IP fragment for datagram reassembly:
// the datagram it belongs to and its bytes' span in the fragment arena.
type fragRef struct{ dg, off, n int }

// worker is one engine shard: the per-file sender state, the per-trial
// scratch buffers, and this shard's tally.  Every slice is reused
// across files and trials, so the steady-state trial loop allocates
// nothing (ModeTCP).
type worker struct {
	cfg   Config
	algos []algo.Algorithm
	chans []Channel
	tally *Tally
	aal5  *crc.Table

	// Placement scoring: indexes into each ChannelTally.Placements for
	// the enabled placements (-1 when disabled).
	e2eIdx, segIdx int

	// Compression stage (cfg.Compress): one Reset-per-file compressor
	// and its reused output buffer — the per-file cost, never per-trial.
	comp    *lz.Compressor
	compBuf []byte

	// Sender state for the current file.
	pduArena []byte // concatenated sent PDUs (cell payloads incl. padding + trailer)
	pduOff   []int  // PDU k spans pduArena[pduOff[k]:pduOff[k+1]]
	pktLen   []int  // transported packet length within PDU k
	cells    []atm.Cell
	origin   []int32
	dgArena  []byte // ModeUDPFrag: original unfragmented IP packets
	dgOff    []int
	fragDG   []int // PDU index -> datagram index
	sums     []uint64
	segSums  []uint64 // per-segment placement: Sum over sent segment bytes
	sentCk   []uint16 // per-segment placement: sent TCP checksum field per packet
	pktBuf   []byte

	// Per-trial scratch.
	work      Stream
	pdu       []byte
	delivered []bool
	fragArena []byte
	fragRefs  []fragRef
	frags     [][]byte
	pcg       *rand.PCG
	rng       *rand.Rand

	// Retransmission loop (cfg.Retrans).  A lane is one RetransTally a
	// trial settles per packet: for each enabled placement, one lane per
	// algorithm plus the perfect oracle, laid out per packet as
	// placement-major groups of (nAlgos+1) — laneStride lanes per packet.
	// retPending[p*laneStride+l] says lane l of packet p has not yet
	// accepted a delivery this trial; retries run until every lane
	// settles or the retry cap exhausts them.  trialSeed feeds the
	// RetrySeed sub-stream; retWork/retPdu are the retry attempt's
	// channel stream and reassembly buffer.
	laneStride int
	trialSeed  uint64
	retPending []bool
	retWork    Stream
	retPdu     []byte
}

func newWorker(cfg Config) *worker {
	specs := cfg.channels()
	chans := make([]Channel, len(specs))
	for i, s := range specs {
		chans[i] = s.New()
	}
	e2eIdx, segIdx := -1, -1
	for i, p := range cfg.placements() {
		switch p {
		case PlaceE2E:
			e2eIdx = i
		case PlaceSegment:
			segIdx = i
		}
	}
	pcg := rand.NewPCG(0, 0)
	var comp *lz.Compressor
	if cfg.Compress {
		comp = lz.NewCompressor()
	}
	w := &worker{
		cfg:    cfg,
		comp:   comp,
		algos:  cfg.algorithms(),
		chans:  chans,
		tally:  NewTally(cfg),
		aal5:   crc.New(crc.CRC32),
		e2eIdx: e2eIdx,
		segIdx: segIdx,
		pcg:    pcg,
		rng:    rand.New(pcg),
	}
	if cfg.Retrans {
		w.laneStride = len(cfg.placements()) * (len(w.algos) + 1)
	}
	return w
}

// file runs every (channel × trial) combination over one corpus file.
// With cfg.Compress set the file passes through the LZ stage first, so
// the transported payload — and everything downstream: sent sums, cell
// train, fault targets — is the compressed byte stream.
func (w *worker) file(idx int, data []byte) {
	w.reset()
	if w.cfg.Compress {
		w.comp.Reset()
		w.compBuf = w.comp.Compress(w.compBuf[:0], data)
		w.tally.Comp.add(uint64(len(data)), uint64(len(w.compBuf)))
		data = w.compBuf
	}
	switch w.cfg.Mode {
	case ModeUDPFrag:
		w.buildUDP(data)
	default:
		w.buildTCP(data)
	}
	w.computeSums()
	trials := w.cfg.trials()
	for c := range w.chans {
		for t := 0; t < trials; t++ {
			w.trial(idx, c, t)
		}
	}
}

func (w *worker) reset() {
	w.pduArena = w.pduArena[:0]
	w.pduOff = append(w.pduOff[:0], 0)
	w.pktLen = w.pktLen[:0]
	w.cells = w.cells[:0]
	w.origin = w.origin[:0]
	w.dgArena = w.dgArena[:0]
	w.dgOff = append(w.dgOff[:0], 0)
	w.fragDG = w.fragDG[:0]
	w.sums = w.sums[:0]
	w.segSums = w.segSums[:0]
	w.sentCk = w.sentCk[:0]
}

// addPDU segments one transported packet into AAL5 cells and records
// its sent PDU (the exact cell payload bytes, padding and trailer
// included — the unit every algorithm is scored over).
func (w *worker) addPDU(pkt []byte) {
	base := len(w.cells)
	cells, err := atm.AppendSegment(w.cells, pkt, 0, 32)
	if err != nil {
		panic(fmt.Sprintf("netsim: segmenting %d-byte packet: %v", len(pkt), err))
	}
	w.cells = cells
	k := int32(len(w.pduOff) - 1)
	for i := base; i < len(w.cells); i++ {
		w.origin = append(w.origin, k)
		w.pduArena = append(w.pduArena, w.cells[i].Payload[:]...)
	}
	w.pduOff = append(w.pduOff, len(w.pduArena))
	w.pktLen = append(w.pktLen, len(pkt))
}

// buildTCP packetizes the file as the paper's loopback FTP transfer:
// successive 256-byte TCP/IPv4 segments, one AAL5 PDU each.
func (w *worker) buildTCP(data []byte) {
	flow := tcpip.NewLoopbackFlow(w.cfg.buildOptions())
	seg := w.cfg.segmentSize()
	for off := 0; ; off += seg {
		end := off + seg
		if end > len(data) {
			end = len(data)
		}
		w.pktBuf = flow.NextPacket(w.pktBuf[:0], data[off:end])
		w.addPDU(w.pktBuf)
		if end >= len(data) {
			break
		}
	}
}

// netsim's UDP endpoints; any fixed addresses work, they only feed the
// pseudo-header.
var udpSrc = [4]byte{10, 0, 0, 1}
var udpDst = [4]byte{10, 0, 0, 2}

// buildUDP packetizes the file as UDP/IPv4 datagrams, fragments each at
// the configured MTU, and sends every fragment as its own AAL5 PDU.
func (w *worker) buildUDP(data []byte) {
	seg := w.cfg.datagramSize()
	id := uint16(1)
	for off := 0; ; off += seg {
		end := off + seg
		if end > len(data) {
			end = len(data)
		}
		dgram := tcpip.BuildUDPDatagram(udpSrc, udpDst, 4040, 4041, data[off:end])
		total := tcpip.IPv4HeaderLen + len(dgram)
		w.pktBuf = w.pktBuf[:0]
		for i := 0; i < total; i++ {
			w.pktBuf = append(w.pktBuf, 0)
		}
		h := tcpip.IPv4Header{
			TotalLength: uint16(total),
			ID:          id,
			TTL:         64,
			Protocol:    tcpip.ProtocolUDP,
			Src:         udpSrc,
			Dst:         udpDst,
		}
		h.ComputeChecksum()
		h.SerializeTo(w.pktBuf)
		copy(w.pktBuf[tcpip.IPv4HeaderLen:], dgram)

		dgIdx := len(w.dgOff) - 1
		w.dgArena = append(w.dgArena, w.pktBuf...)
		w.dgOff = append(w.dgOff, len(w.dgArena))

		frags, err := ipfrag.Fragment(w.pktBuf, w.cfg.mtu())
		if err != nil {
			panic(fmt.Sprintf("netsim: fragmenting %d-byte packet at MTU %d: %v", total, w.cfg.mtu(), err))
		}
		for _, f := range frags {
			w.addPDU(f)
			w.fragDG = append(w.fragDG, dgIdx)
		}
		id++
		if end >= len(data) {
			break
		}
	}
}

// computeSums precomputes every algorithm's checksum of every sent PDU
// — the notional carried check values — once per file, so trials only
// checksum the received side.  When the per-segment placement is
// enabled it also precomputes each algorithm's sum over the sent
// segment bytes (the PDU minus AAL5 padding and trailer) and the TCP
// checksum field value each packet transmitted, the trailer-position
// check material.
func (w *worker) computeSums() {
	for k := 0; k+1 < len(w.pduOff); k++ {
		pdu := w.pduArena[w.pduOff[k]:w.pduOff[k+1]]
		for _, a := range w.algos {
			w.sums = append(w.sums, algo.Sum(a, pdu))
		}
		if w.segIdx >= 0 {
			seg := pdu[:w.pktLen[k]]
			for _, a := range w.algos {
				w.segSums = append(w.segSums, algo.Sum(a, seg))
			}
			w.sentCk = append(w.sentCk, tcpip.StoredTCPChecksum(seg))
		}
	}
}

// trial pushes the file's cell train through one channel once and
// scores what the receiver got.
func (w *worker) trial(fileIdx, chanIdx, trial int) {
	ct := &w.tally.Channels[chanIdx]
	w.trialSeed = TrialSeed(w.cfg.Seed, fileIdx, chanIdx, trial)
	w.pcg.Seed(w.trialSeed, 0xAA15)

	w.work.Cells = append(w.work.Cells[:0], w.cells...)
	w.work.Origin = append(w.work.Origin[:0], w.origin...)
	w.chans[chanIdx].Transmit(w.rng, &w.work)

	nPkts := len(w.pduOff) - 1
	ct.Trials++
	ct.PacketsSent += uint64(nPkts)
	ct.CellsSent += uint64(len(w.cells))
	ct.CellsDelivered += uint64(len(w.work.Cells))
	ct.Bytes += uint64(len(w.pduArena))

	w.delivered = w.delivered[:0]
	for i := 0; i < nPkts; i++ {
		w.delivered = append(w.delivered, false)
	}
	if w.cfg.Retrans {
		need := nPkts * w.laneStride
		if cap(w.retPending) < need {
			w.retPending = make([]bool, need)
		}
		w.retPending = w.retPending[:need]
		for i := range w.retPending {
			w.retPending[i] = true
		}
	}
	w.fragArena = w.fragArena[:0]
	w.fragRefs = w.fragRefs[:0]

	w.pdu = w.pdu[:0]
	start := 0
	for i := range w.work.Cells {
		w.pdu = append(w.pdu, w.work.Cells[i].Payload[:]...)
		if !w.work.Cells[i].Header.EndOfPacket() {
			continue
		}
		w.score(ct, int(w.work.Origin[i]), w.work.Cells[start:i+1])
		w.pdu = w.pdu[:0]
		start = i + 1
	}
	for _, d := range w.delivered {
		if !d {
			ct.Lost++
		}
	}
	if w.cfg.Retrans {
		for p := 0; p < nPkts; p++ {
			w.retryPacket(ct, chanIdx, p)
		}
	}
	if w.cfg.Mode == ModeUDPFrag {
		w.reassembleDatagrams(ct)
	}
}

// score classifies one delivered candidate (the cells up to a delivered
// trailer) against the sent PDU its trailer claims, and asks every
// algorithm under every enabled placement whether it would have caught
// the difference.
func (w *worker) score(ct *ChannelTally, origin int, cells []atm.Cell) {
	ct.PDUsDelivered++
	w.delivered[origin] = true
	sent := w.pduArena[w.pduOff[origin]:w.pduOff[origin+1]]
	corrupted := !bytes.Equal(w.pdu, sent)
	if !corrupted {
		ct.Intact++
	} else {
		ct.Corrupted++
		ct.ErrClass.note(w.pdu, sent)
	}
	if w.e2eIdx >= 0 {
		pt := &ct.Placements[w.e2eIdx]
		pt.Delivered++
		if !corrupted {
			pt.Intact++
		} else {
			pt.Corrupted++
			base := origin * len(w.algos)
			for a, alg := range w.algos {
				if algo.Sum(alg, w.pdu) == w.sums[base+a] {
					pt.Algos[a].Undetected++
				} else {
					pt.Algos[a].Detected++
				}
			}
		}
	}
	if w.segIdx >= 0 {
		w.scoreSegment(&ct.Placements[w.segIdx], origin)
	}
	if w.cfg.Retrans {
		w.judgeArrival(ct, origin, w.pdu, 1)
	}
	w.pipeline(ct, origin, cells, corrupted)
}

// scoreSegment scores one delivered candidate at TCP-segment
// granularity: the received bytes at the claimed segment's span (its
// first PacketLen bytes — AAL5 padding and trailer excluded) against
// the claimed segment's sent check values.  A miss is counted when the
// received segment bytes collide with the sent checksum even though
// the bytes differ.  A candidate whose damage lies entirely in padding
// or trailer bytes is intact here while corrupted end-to-end — the
// placement-blindness the contrast table quantifies.
//
// On each corrupted segment the TCP one's-complement sum is
// additionally scored at both field positions via SegmentCheckValue:
// HeaderPos compares the stored field inside the received bytes,
// TrailerPos the claimed origin's transmitted field value, both
// against the sum recomputed over the received bytes.
func (w *worker) scoreSegment(pt *PlacementTally, origin int) {
	pt.Delivered++
	n := w.pktLen[origin]
	recv := w.pdu
	if len(recv) > n {
		recv = recv[:n]
	}
	sentSeg := w.pduArena[w.pduOff[origin] : w.pduOff[origin]+n]
	if bytes.Equal(recv, sentSeg) {
		pt.Intact++
		return
	}
	pt.Corrupted++
	base := origin * len(w.algos)
	for a, alg := range w.algos {
		if algo.Sum(alg, recv) == w.segSums[base+a] {
			pt.Algos[a].Undetected++
		} else {
			pt.Algos[a].Detected++
		}
	}
	stored, want, ok := tcpip.SegmentCheckValue(recv)
	if ok && onescomp.Congruent(stored, want) {
		pt.HeaderPos.Undetected++
	} else {
		pt.HeaderPos.Detected++
	}
	if ok && onescomp.Congruent(w.sentCk[origin], want) {
		pt.TrailerPos.Undetected++
	} else {
		pt.TrailerPos.Detected++
	}
}

// diffBytes counts how many received bytes differ from the sent span:
// positional differences over the common prefix plus the full length
// delta — the residual-corruption currency of the retransmission loop.
func diffBytes(recv, sent []byte) uint64 {
	n := len(recv)
	if len(sent) < n {
		n = len(sent)
	}
	var d uint64
	for i := 0; i < n; i++ {
		if recv[i] != sent[i] {
			d++
		}
	}
	d += uint64(len(recv)-n) + uint64(len(sent)-n)
	return d
}

// judgeArrival lets every still-pending retransmission lane of packet p
// judge one arriving candidate (recv = the reassembled candidate bytes
// claiming p) delivered by transmission number tx.  A lane whose check
// passes the arrival accepts it — corrupt bytes and all — and settles;
// a lane whose check fails stays pending for the next retransmission.
// The primary per-algorithm Detected/Undetected counters are not
// touched: retransmission only ever adds to the Retrans/Oracle lanes.
func (w *worker) judgeArrival(ct *ChannelTally, p int, recv []byte, tx uint64) {
	nAlgos := len(w.algos)
	pduLen := uint64(w.pduOff[p+1] - w.pduOff[p])
	laneBase := p * w.laneStride
	if w.e2eIdx >= 0 {
		pt := &ct.Placements[w.e2eIdx]
		lb := laneBase + w.e2eIdx*(nAlgos+1)
		sent := w.pduArena[w.pduOff[p]:w.pduOff[p+1]]
		intact := bytes.Equal(recv, sent)
		diff, diffDone := uint64(0), intact
		sumBase := p * nAlgos
		for a, alg := range w.algos {
			if !w.retPending[lb+a] {
				continue
			}
			if intact || algo.Sum(alg, recv) == w.sums[sumBase+a] {
				if !diffDone {
					diff = diffBytes(recv, sent)
					diffDone = true
				}
				pt.Retrans[a].accept(tx, pduLen, uint64(len(recv)), diff)
				w.retPending[lb+a] = false
			}
		}
		if w.retPending[lb+nAlgos] && intact {
			pt.Oracle.accept(tx, pduLen, uint64(len(recv)), 0)
			w.retPending[lb+nAlgos] = false
		}
	}
	if w.segIdx >= 0 {
		pt := &ct.Placements[w.segIdx]
		lb := laneBase + w.segIdx*(nAlgos+1)
		n := w.pktLen[p]
		segRecv := recv
		if len(segRecv) > n {
			segRecv = segRecv[:n]
		}
		sentSeg := w.pduArena[w.pduOff[p] : w.pduOff[p]+n]
		intact := bytes.Equal(segRecv, sentSeg)
		diff, diffDone := uint64(0), intact
		sumBase := p * nAlgos
		for a, alg := range w.algos {
			if !w.retPending[lb+a] {
				continue
			}
			if intact || algo.Sum(alg, segRecv) == w.segSums[sumBase+a] {
				if !diffDone {
					diff = diffBytes(segRecv, sentSeg)
					diffDone = true
				}
				pt.Retrans[a].accept(tx, pduLen, uint64(len(segRecv)), diff)
				w.retPending[lb+a] = false
			}
		}
		if w.retPending[lb+nAlgos] && intact {
			pt.Oracle.accept(tx, pduLen, uint64(len(segRecv)), 0)
			w.retPending[lb+nAlgos] = false
		}
	}
}

// lanesPending reports whether any retransmission lane of packet p is
// still waiting for an acceptable delivery.
func (w *worker) lanesPending(p int) bool {
	for _, pending := range w.retPending[p*w.laneStride : (p+1)*w.laneStride] {
		if pending {
			return true
		}
	}
	return false
}

// retryPacket closes the retransmission loop for one packet after the
// primary transmission settled what it could: while any lane is still
// pending (its check rejected every delivery so far, or the packet's
// trailer never arrived), the packet's own cells are retransmitted
// through the re-rolled channel — each attempt seeded from the
// RetrySeed(trialSeed, packet, attempt) sub-stream, so the fault
// pattern is a pure function of corpus position and the worker-count
// byte-identity contract holds.  All pending lanes share each attempt's
// damage (common random numbers: the channel does not care which
// checksum the receiver runs), so lane differences are pure detection
// differences.  Lanes still pending after the retry cap are exhausted —
// the dead-channel / never-passing-check terminator.
func (w *worker) retryPacket(ct *ChannelTally, chanIdx, p int) {
	if !w.lanesPending(p) {
		return
	}
	retryCap := w.cfg.retryCap()
	cellLo := w.pduOff[p] / atm.PayloadSize
	cellHi := w.pduOff[p+1] / atm.PayloadSize
	tx := uint64(1)
	for attempt := 1; attempt <= retryCap && w.lanesPending(p); attempt++ {
		tx = uint64(attempt) + 1
		w.pcg.Seed(RetrySeed(w.trialSeed, p, attempt), 0xAA15)
		w.retWork.Cells = append(w.retWork.Cells[:0], w.cells[cellLo:cellHi]...)
		w.retWork.Origin = append(w.retWork.Origin[:0], w.origin[cellLo:cellHi]...)
		w.chans[chanIdx].Transmit(w.rng, &w.retWork)

		w.retPdu = w.retPdu[:0]
		for i := range w.retWork.Cells {
			w.retPdu = append(w.retPdu, w.retWork.Cells[i].Payload[:]...)
			if !w.retWork.Cells[i].Header.EndOfPacket() {
				continue
			}
			w.judgeArrival(ct, p, w.retPdu, tx)
			w.retPdu = w.retPdu[:0]
		}
	}
	// Exhaust whatever never accepted: tx transmissions were spent on
	// this packet in total, none delivered for these lanes.
	nAlgos := len(w.algos)
	pduLen := uint64(w.pduOff[p+1] - w.pduOff[p])
	laneBase := p * w.laneStride
	for pi := range ct.Placements {
		if pi != w.e2eIdx && pi != w.segIdx {
			continue
		}
		pt := &ct.Placements[pi]
		lb := laneBase + pi*(nAlgos+1)
		for a := 0; a < nAlgos; a++ {
			if w.retPending[lb+a] {
				pt.Retrans[a].exhaust(tx, pduLen)
				w.retPending[lb+a] = false
			}
		}
		if w.retPending[lb+nAlgos] {
			pt.Oracle.exhaust(tx, pduLen)
			w.retPending[lb+nAlgos] = false
		}
	}
}

// pipeline runs the structural receiver battery a real endpoint
// applies: AAL5 framing and CRC-32, then either the TCP/IP header and
// checksum checks (ModeTCP) or fragment queueing for IP reassembly
// (ModeUDPFrag).  Candidates contain no interior end-of-packet cell by
// construction, so the framing checks reduce to the trailer's length
// consistency.
func (w *worker) pipeline(ct *ChannelTally, origin int, cells []atm.Cell, corrupted bool) {
	p := &ct.Pipeline
	pdu := w.pdu
	if len(pdu) < atm.TrailerSize {
		p.Framing++
		return
	}
	tr := atm.DecodeTrailer(pdu[len(pdu)-atm.TrailerSize:])
	if atm.CellCount(int(tr.Length)) != len(cells) {
		p.Framing++
		return
	}
	if uint32(w.aal5.Checksum(pdu[:len(pdu)-4])) != tr.CRC {
		p.CRC++
		return
	}
	sdu := pdu[:tr.Length]
	if w.cfg.Mode == ModeUDPFrag {
		p.FragDelivered++
		off := len(w.fragArena)
		w.fragArena = append(w.fragArena, sdu...)
		w.fragRefs = append(w.fragRefs, fragRef{dg: w.fragDG[origin], off: off, n: len(sdu)})
		return
	}
	if tcpip.ValidateHeaders(sdu, w.cfg.buildOptions()) != nil {
		p.Header++
		return
	}
	if !tcpip.VerifyPacket(sdu, w.cfg.buildOptions()) {
		p.Checksum++
		return
	}
	sentPkt := w.pduArena[w.pduOff[origin] : w.pduOff[origin]+w.pktLen[origin]]
	if bytes.Equal(sdu, sentPkt) {
		p.Accepted++
	} else {
		p.AcceptedCorrupt++
	}
}

// reassembleDatagrams feeds the AAL5-accepted fragments of each
// datagram through ipfrag.Reassemble and the UDP checksum — the
// end-to-end receiver of ModeUDPFrag.  ipfrag builds the reassembled
// packet afresh, so this stage (alone) allocates.
func (w *worker) reassembleDatagrams(ct *ChannelTally) {
	p := &ct.Pipeline
	for d := 0; d+1 < len(w.dgOff); d++ {
		w.frags = w.frags[:0]
		for _, fr := range w.fragRefs {
			if fr.dg == d {
				w.frags = append(w.frags, w.fragArena[fr.off:fr.off+fr.n])
			}
		}
		if len(w.frags) == 0 {
			p.DatagramsLost++
			continue
		}
		out, err := ipfrag.Reassemble(w.frags)
		if err != nil {
			p.FragReject++
			continue
		}
		sent := w.dgArena[w.dgOff[d]:w.dgOff[d+1]]
		if bytes.Equal(out, sent) {
			p.DatagramsIntact++
			continue
		}
		var h tcpip.IPv4Header
		if h.DecodeFromBytes(out) != nil || len(out) < tcpip.IPv4HeaderLen+tcpip.UDPHeaderLen ||
			!tcpip.VerifyUDP(h.Src, h.Dst, out[tcpip.IPv4HeaderLen:]) {
			p.UDPCaught++
		} else {
			p.UDPUndetected++
		}
	}
}

// Run executes the full pipeline over every file w yields, on the
// sim.Collect shard engine: each worker owns a private tally, merged
// commutatively after the drain.  The returned Tally is byte-identical
// (through Report) at any worker count.
func Run(ctx context.Context, w corpus.Walker, cfg Config) (*Tally, error) {
	ws, err := sim.Collect(ctx, w, sim.CollectOptions{Workers: cfg.Workers, Progress: cfg.Progress},
		func() *worker { return newWorker(cfg) },
		func(sh *worker, idx int, data []byte) { sh.file(idx, data) },
		func(dst, src *worker) { dst.tally.MustMerge(src.tally) },
	)
	return ws.tally, err
}

// Shard is one incrementally-driven engine worker — the building block
// of the cksumd service path, where a long-running stream feeds files
// one at a time instead of walking a corpus once.  A Shard is not safe
// for concurrent use; a stream runs one per pool worker.  Feeding files
// in submission order with their submission index reproduces Run's
// per-trial seeds exactly, so a stream's merged tally is byte-identical
// to the batch run over the same files at the same cfg.Seed.
type Shard struct {
	w *worker
}

// NewShard builds one engine shard for cfg.
func NewShard(cfg Config) *Shard { return &Shard{w: newWorker(cfg)} }

// File runs every (channel × trial) combination over one file.  idx
// must be the stream's running submission index — the determinism
// handle TrialSeed mixes.  After the first few files have sized the
// reusable buffers, the per-trial loop allocates nothing (ModeTCP).
func (s *Shard) File(idx int, data []byte) { s.w.file(idx, data) }

// Flush merges the shard's accumulated counts into dst and resets the
// shard — the batched-merge step of the service path.  dst must have
// been built by NewTally (or another Shard) from the same Config; a
// shape mismatch (dst from a different scenario) is returned as an
// error with dst unmodified and the shard's counts intact.  The caller
// owns dst's synchronization.  Flush allocates nothing.
func (s *Shard) Flush(dst *Tally) error {
	if err := dst.Merge(s.w.tally); err != nil {
		return err
	}
	s.w.tally.Reset()
	return nil
}

// StreamSeed derives the root seed for replica r of a scenario run at
// base seed root.  Replica 0 runs root itself, so a single-stream
// service run is byte-identical to the equivalent batch Run; further
// replicas get decorrelated fault patterns while staying pure functions
// of (root, r).
func StreamSeed(root uint64, r int) uint64 {
	if r == 0 {
		return root
	}
	return splitmix64(splitmix64(root^0x5EED570EA3) ^ uint64(r))
}
