package netsim

import (
	"fmt"
	"strings"

	"realsum/internal/report"
)

// contrastAlgos are the bellwethers the raw-vs-compressed section
// tracks: the sums whose miss rates the paper's Table 7 predicts will
// collapse toward the uniform 2^-k floor once the payload stops being
// zero-heavy, plus CRC-32 as the already-at-floor control.
var contrastAlgos = []string{"tcp", "f255", "adler32", "crc32"}

// RawVsCompressedReport renders the Table 7 contrast: the same channel
// battery scored on raw corpus payloads (raw) and on lz-compressed
// payloads (comp), one row per channel, bellwether miss rates side by
// side.  Channels are matched by NAME across the two tallies — the two
// runs need not share a channel list — and a side that never saw a
// channel, or saw it but scored zero corrupted deliveries, renders "-"
// rather than a fake 0% (a rate over zero candidates is not evidence).
//
// Two spans are reported.  The per-algorithm columns score the e2e
// placement — the whole AAL5 PDU, where loss-formed splices live.  The
// trailing tcp@seg pair scores the TCP sum on the per-segment span,
// because the e2e span includes the AAL5 zero padding: a solid burst
// inverting always-zero pad bytes cancels in the ones-complement sum
// no matter what the payload carries, so the e2e tcp rate floors at
// the padding fraction instead of 2^-16.  The segment span is the
// bytes a real transport checksum covers, and is where the burst-miss
// collapse shows cleanly.
func RawVsCompressedReport(raw, comp *Tally) string {
	var b strings.Builder

	tb := report.Table{
		Title:   fmt.Sprintf("netsim %s: raw vs lz-compressed payload, bellwether miss rates", raw.Mode),
		Headers: []string{"channel", "raw corrupt", "lz corrupt"},
	}
	for _, an := range contrastAlgos {
		tb.Headers = append(tb.Headers, an+" raw", an+" lz")
	}
	tb.Headers = append(tb.Headers, "tcp@seg raw", "tcp@seg lz")

	for _, name := range contrastChannels(raw, comp) {
		rc, rok := raw.Channel(name)
		cc, cok := comp.Channel(name)
		row := []string{name, corruptCell(rc, rok), corruptCell(cc, cok)}
		for _, an := range contrastAlgos {
			row = append(row, missCell(rc, rok, an), missCell(cc, cok, an))
		}
		row = append(row, segMissCell(rc, rok), segMissCell(cc, cok))
		tb.AddRow(row...)
	}
	b.WriteString(tb.Render())
	b.WriteString(fmt.Sprintf(
		"uniform floor: a k-bit sum over unstructured payload misses ~2^-k (16-bit: %s; 32-bit: ~2.3e-8%%)\n",
		report.Percent(1.0/65536)))
	b.WriteString("(e2e spans include the AAL5 zero padding, so the e2e tcp rate floors at the padding fraction;\n")
	b.WriteString(" the tcp@seg columns cover the transport-checksum span only)\n\n")

	for _, line := range CompressLines(raw, comp) {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// CompressLines renders the greppable raw-vs-compressed pin lines, one
// per channel present on either side: corrupted-delivery counts and the
// bellwethers' undetected counts (e2e span, raw/lz), plus the TCP sum's
// per-segment pair.  Missing sides render "-" so the line shape is
// stable even when one run dropped a channel.
func CompressLines(raw, comp *Tally) []string {
	var out []string
	for _, name := range contrastChannels(raw, comp) {
		rc, rok := raw.Channel(name)
		cc, cok := comp.Channel(name)
		line := fmt.Sprintf("compress[%s/%s]: raw_corrupted=%s lz_corrupted=%s",
			raw.Mode, name, countCell(rc, rok), countCell(cc, cok))
		for _, an := range contrastAlgos {
			line += fmt.Sprintf(" %s=%s/%s", an, undetectedCell(rc, rok, an), undetectedCell(cc, cok, an))
		}
		line += fmt.Sprintf(" seg_tcp=%s/%s", segUndetectedCell(rc, rok), segUndetectedCell(cc, cok))
		out = append(out, line)
	}
	return out
}

// contrastChannels returns the union of the two tallies' channel names,
// raw's order first, comp-only names appended.
func contrastChannels(raw, comp *Tally) []string {
	var names []string
	seen := map[string]bool{}
	for i := range raw.Channels {
		names = append(names, raw.Channels[i].Name)
		seen[raw.Channels[i].Name] = true
	}
	for i := range comp.Channels {
		if !seen[comp.Channels[i].Name] {
			names = append(names, comp.Channels[i].Name)
		}
	}
	return names
}

func corruptCell(c *ChannelTally, ok bool) string {
	if !ok {
		return "-"
	}
	p := c.scoring()
	if p == nil {
		return "-"
	}
	return report.Count(p.Corrupted)
}

func countCell(c *ChannelTally, ok bool) string {
	if !ok {
		return "-"
	}
	p := c.scoring()
	if p == nil {
		return "-"
	}
	return fmt.Sprintf("%d", p.Corrupted)
}

// missCell renders an algorithm's miss rate under the channel's scoring
// placement, or "-" when the channel is absent, the algorithm is not
// registered, or no corrupted delivery was ever scored (the
// zero-candidate case the rate would otherwise misreport as 0%).
func missCell(c *ChannelTally, ok bool, algo string) string {
	if !ok {
		return "-"
	}
	return algoRate(c.scoring(), algo)
}

// segMissCell renders the TCP sum's miss rate on the per-segment span,
// or "-" when that placement was not scored on this side.
func segMissCell(c *ChannelTally, ok bool) string {
	if !ok {
		return "-"
	}
	return algoRate(c.Placement(PlaceSegment.String()), "tcp")
}

func algoRate(p *PlacementTally, algo string) string {
	if p == nil {
		return "-"
	}
	a, found := p.Algo(algo)
	if !found {
		return "-"
	}
	return rateCell(a)
}

// undetectedCell renders an algorithm's undetected count, or "-" under
// the same absent-side conditions as missCell.
func undetectedCell(c *ChannelTally, ok bool, algo string) string {
	if !ok {
		return "-"
	}
	return algoCount(c.scoring(), algo)
}

// segUndetectedCell renders the TCP sum's per-segment undetected count,
// or "-" when the placement was not scored.
func segUndetectedCell(c *ChannelTally, ok bool) string {
	if !ok {
		return "-"
	}
	return algoCount(c.Placement(PlaceSegment.String()), "tcp")
}

func algoCount(p *PlacementTally, algo string) string {
	if p == nil {
		return "-"
	}
	a, found := p.Algo(algo)
	if !found {
		return "-"
	}
	return fmt.Sprintf("%d", a.Undetected)
}
