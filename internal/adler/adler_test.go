package adler

import (
	"hash/adler32"
	"math/rand/v2"
	"testing"
)

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Uint32())
	}
	return b
}

func TestChecksumMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	cases := [][]byte{nil, {0}, {0xFF}, []byte("Wikipedia")}
	for i := 0; i < 200; i++ {
		cases = append(cases, randBytes(rng, rng.IntN(20000)))
	}
	for _, data := range cases {
		if got, want := Checksum(data), adler32.Checksum(data); got != want {
			t.Fatalf("len %d: ours %#08x, stdlib %#08x", len(data), got, want)
		}
	}
}

func TestKnownVector(t *testing.T) {
	// The classic published value.
	if got := Checksum([]byte("Wikipedia")); got != 0x11E60398 {
		t.Errorf(`Checksum("Wikipedia") = %#08x, want 0x11E60398`, got)
	}
}

func TestLongBufferReduction(t *testing.T) {
	// Worst-case bytes across several nmax boundaries.
	data := make([]byte, 3*nmax+123)
	for i := range data {
		data[i] = 0xFF
	}
	if got, want := Checksum(data), adler32.Checksum(data); got != want {
		t.Errorf("long buffer: %#08x vs %#08x", got, want)
	}
}

func TestCombineMatchesConcatenation(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 300; trial++ {
		a := randBytes(rng, rng.IntN(2000))
		b := randBytes(rng, rng.IntN(2000))
		whole := Checksum(append(append([]byte{}, a...), b...))
		if got := Combine(Checksum(a), Checksum(b), len(b)); got != whole {
			t.Fatalf("lenA=%d lenB=%d: Combine %#08x, want %#08x", len(a), len(b), got, whole)
		}
	}
}

func TestCombineEmptyEdges(t *testing.T) {
	data := []byte("hello world")
	ck := Checksum(data)
	empty := Checksum(nil)
	if got := Combine(ck, empty, 0); got != ck {
		t.Errorf("combine with empty tail: %#08x", got)
	}
	if got := Combine(empty, ck, len(data)); got != ck {
		t.Errorf("combine with empty head: %#08x", got)
	}
}

func TestDigestStreaming(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	data := randBytes(rng, 10000)
	d := New()
	i := 0
	for i < len(data) {
		n := 1 + rng.IntN(700)
		if i+n > len(data) {
			n = len(data) - i
		}
		d.Write(data[i : i+n])
		i += n
	}
	if d.Len() != len(data) {
		t.Fatalf("Len = %d", d.Len())
	}
	if got, want := d.Sum32(), adler32.Checksum(data); got != want {
		t.Fatalf("streaming %#08x != stdlib %#08x", got, want)
	}
	d.Reset()
	if d.Sum32() != 1 || d.Len() != 0 {
		t.Error("Reset should restore the seed state")
	}
}

func TestSumPairPacking(t *testing.T) {
	data := []byte("pack my box")
	p := Sum(data)
	if p.Checksum32() != Checksum(data) {
		t.Error("Pair packing mismatch")
	}
	if p.A >= Mod || p.B >= Mod {
		t.Error("pair components not reduced")
	}
}

func TestNoTwoZerosUnlikeFletcher255(t *testing.T) {
	// The prime modulus kills the paper's §5.5 PBM pathology: a cell of
	// 0xFF bytes is NOT congruent to a cell of zeros under Adler.
	zeros := make([]byte, 48)
	ffs := make([]byte, 48)
	for i := range ffs {
		ffs[i] = 0xFF
	}
	if Checksum(zeros) == Checksum(ffs) {
		t.Error("Adler-32 should distinguish 0x00 cells from 0xFF cells")
	}
}

func BenchmarkChecksum1500(b *testing.B) {
	data := make([]byte, 1500)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Checksum(data)
	}
}
