// Package adler implements Adler-32 from scratch — the direct modern
// descendant of the Fletcher checksums the paper studies.  Adler-32
// keeps Fletcher's two running sums but works modulo 65521 (the largest
// prime below 2^16) over 16-bit accumulators, trading a little speed
// for the prime modulus.  Mark Adler chose the prime specifically to
// avoid the composite-modulus weaknesses this paper documents for
// Fletcher mod 255 (the two zeros) and mod 256; the package exists so
// the benchmark suite can extend Table 8 with the "what came after"
// column.
//
// The implementation is verified bit-for-bit against the standard
// library's hash/adler32 in the tests.
package adler

// Mod is the Adler-32 modulus: the largest prime below 2^16.
const Mod = 65521

// nmax is the largest n such that 255·n·(n+1)/2 + (n+1)·(Mod−1) fits a
// uint32 — the classic zlib reduction bound.
const nmax = 5552

// Checksum returns the Adler-32 of data: B<<16 | A with A seeded to 1.
func Checksum(data []byte) uint32 {
	a, b := uint32(1), uint32(0)
	for len(data) > 0 {
		chunk := data
		if len(chunk) > nmax {
			chunk = chunk[:nmax]
		}
		data = data[len(chunk):]
		for _, d := range chunk {
			a += uint32(d)
			b += a
		}
		a %= Mod
		b %= Mod
	}
	return b<<16 | a
}

// Pair is the decomposed Adler state, for positional composition in
// the style of fletcher.Pair.
type Pair struct {
	A uint32 // byte sum + 1, mod 65521
	B uint32 // position-weighted sum, mod 65521
}

// Checksum32 packs the pair into the standard Adler-32 value.
func (p Pair) Checksum32() uint32 { return p.B<<16 | p.A }

// Sum computes the pair over data.
func Sum(data []byte) Pair {
	ck := Checksum(data)
	return Pair{A: ck & 0xFFFF, B: ck >> 16}
}

// Combine returns the Adler-32 of the concatenation of two buffers
// given their checksums and the length of the second — the same
// positional algebra as fletcher.Mod.Append.  Extending the first
// buffer by len2 bytes advances its B by len2·A; the second buffer's
// own seed (the +1 in A and its positional images in B) is then
// subtracted out once:
//
//	A = a1 + a2 − 1
//	B = b1 + rem·a1 + b2 − rem            (rem = len2 mod 65521)
func Combine(ck1, ck2 uint32, len2 int) uint32 {
	const mod = uint64(Mod)
	rem := uint64(len2) % mod
	a1 := uint64(ck1 & 0xFFFF)
	b1 := uint64(ck1 >> 16)
	a2 := uint64(ck2 & 0xFFFF)
	b2 := uint64(ck2 >> 16)
	a := (a1 + a2 + mod - 1) % mod
	b := (b1 + rem*a1%mod + b2 + mod - rem) % mod
	return uint32(b)<<16 | uint32(a)
}

// Digest is a streaming Adler-32 accumulator.
type Digest struct {
	a, b uint32
	n    int
}

// New returns a streaming digest.
func New() *Digest { return &Digest{a: 1} }

// Reset restores the initial state.
func (d *Digest) Reset() { d.a, d.b, d.n = 1, 0, 0 }

// Write absorbs data; it never fails.
func (d *Digest) Write(data []byte) (int, error) {
	a, b := d.a, d.b
	for len(data) > 0 {
		chunk := data
		if len(chunk) > nmax {
			chunk = chunk[:nmax]
		}
		data = data[len(chunk):]
		for _, v := range chunk {
			a += uint32(v)
			b += a
		}
		a %= Mod
		b %= Mod
		d.n += len(chunk)
	}
	d.a, d.b = a, b
	return d.n, nil
}

// Sum32 returns the Adler-32 of everything written.
func (d *Digest) Sum32() uint32 { return d.b<<16 | d.a }

// Len returns the number of bytes written.
func (d *Digest) Len() int { return d.n }
