// Package corpus generates deterministic synthetic "real data" — the
// substitute for the 1995 UNIX file systems at NSC, SICS and Stanford
// the paper scanned.
//
// The paper attributes every measured effect to specific value-level
// structure in file-system data: heavy skew toward zero bytes, long runs
// of 0x00 and 0xFF, character data with English letter frequencies,
// repeated lines at power-of-two strides, and strong locality (adjacent
// blocks drawn from the same distribution).  Each generator in this
// package reproduces one of the file populations the paper names,
// including the §5.5 pathological cases: black-and-white PBM bitmaps,
// hex-encoded PostScript bitmaps, BinHex documents, gmon.out profiles
// and word-processor files with alternating 0x00/0xFF runs.
//
// Everything is seeded and reproducible: the same profile always yields
// byte-identical file systems, so every table in EXPERIMENTS.md
// regenerates exactly.
package corpus

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// FileType identifies which population a synthetic file is drawn from.
type FileType int

const (
	// EnglishText is prose with English letter and word frequencies.
	EnglishText FileType = iota
	// CSource is C program text: includes, comments, functions.
	CSource
	// Executable is an ELF-like binary image: machine-code-biased text
	// section, zero-run data section, string and symbol tables.
	Executable
	// PBMImage is an 8-bit black-and-white raster (every payload byte
	// 0x00 or 0xFF) — the plot files that destroy Fletcher-255 (§5.5).
	PBMImage
	// PSHexBitmap is hex-encoded PostScript bitmap data with a
	// power-of-two line width — §5.5's font-definition pathology.
	PSHexBitmap
	// BinHex is a BinHex-encoded document: 64-byte lines of a restricted
	// alphabet with many near-identical lines.
	BinHex
	// GmonOut is Unix gmon.out profiling data: mostly zero words with a
	// scattering of small, frequently identical counters.
	GmonOut
	// WordProcessor is the PC word-processor format of §5.5: sections of
	// text separated by ~200-byte runs of 0x00 then 0xFF.
	WordProcessor
	// Compressed is LZW-compressed text — near-uniform bytes, the
	// Table 7 population.
	Compressed
	// LogFile is a system log: highly repetitive timestamped lines.
	LogFile
	// UniformRandom is pure uniformly distributed bytes — the baseline
	// all the theoretical failure-rate predictions assume.
	UniformRandom
	// TarArchive is a USTAR archive of small text/source members:
	// 512-byte headers padded with zeros between runs of member data.
	TarArchive
	// MailSpool is an mbox spool: repetitive RFC 822 headers followed
	// by prose bodies.
	MailSpool
	// CoreDump is a process image: huge zero regions, repeated pointer
	// patterns and fragments of machine code and strings.
	CoreDump

	numFileTypes int = iota
)

var fileTypeNames = [...]string{
	"text", "csrc", "exec", "pbm", "pshex",
	"binhex", "gmon", "wordproc", "compressed", "log", "random",
	"tar", "mbox", "core",
}

func (t FileType) String() string {
	if int(t) < len(fileTypeNames) {
		return fileTypeNames[t]
	}
	return fmt.Sprintf("FileType(%d)", int(t))
}

// extensions used when materializing files to disk or naming specs.
var fileTypeExt = [...]string{
	".txt", ".c", "", ".pgm", ".ps", ".hqx", ".out", ".doc", ".Z", ".log", ".bin",
	".tar", "", "",
}

// AllFileTypes lists every synthetic population, in declaration order.
func AllFileTypes() []FileType {
	out := make([]FileType, numFileTypes)
	for i := range out {
		out[i] = FileType(i)
	}
	return out
}

// FileSpec describes one synthetic file.  Content is produced on demand
// by Generate so whole-file-system walks need only one file in memory.
type FileSpec struct {
	Path string
	Type FileType
	Size int
	seed uint64
}

// NewFileSpec builds a standalone spec for direct generation, outside
// any Profile — used by the data-census experiment and tooling.
func NewFileSpec(t FileType, size int, seed uint64) FileSpec {
	return FileSpec{Path: "standalone" + fileTypeExt[t], Type: t, Size: size, seed: seed}
}

// Generate produces the file's contents.  It is deterministic: the same
// spec always yields the same bytes.
func (s FileSpec) Generate() []byte {
	rng := rand.New(rand.NewPCG(s.seed, uint64(s.Type)<<32|uint64(s.Size)))
	return generators[s.Type](rng, s.Size)
}

// FS is a synthetic file system: an ordered list of file specs.
type FS struct {
	Name  string
	Specs []FileSpec
}

// Walk invokes fn for every file in order, generating contents lazily.
// It stops at the first error and returns it.
func (fs *FS) Walk(fn func(path string, data []byte) error) error {
	for _, s := range fs.Specs {
		if err := fn(s.Path, s.Generate()); err != nil {
			return err
		}
	}
	return nil
}

// TotalBytes returns the summed size of all files.
func (fs *FS) TotalBytes() int64 {
	var n int64
	for _, s := range fs.Specs {
		n += int64(s.Size)
	}
	return n
}

// TypeWeight gives one file type's share of a profile's mixture.
type TypeWeight struct {
	Type   FileType
	Weight int // relative probability of each file being this type
}

// Profile describes a synthetic file system in the image of one of the
// paper's scanned systems: a name, a mixture of file populations, a
// file count and a size range.
type Profile struct {
	Name     string
	Mix      []TypeWeight
	Files    int
	MinSize  int
	MaxSize  int
	Seed     uint64
	Clusters bool // group same-type files into directories, like real trees
}

// Scale returns a copy of p with the file count multiplied by f
// (minimum 1 file).  Used to trade runtime against sample size.
func (p Profile) Scale(f float64) Profile {
	n := int(float64(p.Files) * f)
	if n < 1 {
		n = 1
	}
	p.Files = n
	return p
}

// Build realizes the profile into a file system.  Sizes are drawn
// log-uniformly between MinSize and MaxSize, mimicking the heavy-tailed
// file-size distributions of real systems.
func (p Profile) Build() *FS {
	rng := rand.New(rand.NewPCG(p.Seed, 0x5EED))
	total := 0
	for _, w := range p.Mix {
		total += w.Weight
	}
	if total == 0 {
		panic("corpus: profile has empty mixture")
	}
	fs := &FS{Name: p.Name}
	counts := make(map[FileType]int)
	for i := 0; i < p.Files; i++ {
		r := rng.IntN(total)
		var ft FileType
		for _, w := range p.Mix {
			if r < w.Weight {
				ft = w.Type
				break
			}
			r -= w.Weight
		}
		size := logUniform(rng, p.MinSize, p.MaxSize)
		counts[ft]++
		dir := "files"
		if p.Clusters {
			dir = ft.String()
		}
		spec := FileSpec{
			Path: fmt.Sprintf("%s/%s%04d%s", dir, ft, counts[ft], fileTypeExt[ft]),
			Type: ft,
			Size: size,
			seed: p.Seed ^ rng.Uint64(),
		}
		fs.Specs = append(fs.Specs, spec)
	}
	return fs
}

// logUniform draws a size log-uniformly in [min, max].
func logUniform(rng *rand.Rand, min, max int) int {
	if min < 1 {
		min = 1
	}
	if max <= min {
		return min
	}
	lo, hi := float64(min), float64(max)
	v := lo * math.Pow(hi/lo, rng.Float64())
	n := int(v)
	if n < min {
		n = min
	}
	if n > max {
		n = max
	}
	return n
}
