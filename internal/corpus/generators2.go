package corpus

import (
	"fmt"
	"math/rand/v2"
)

// Generators for the archive/spool/image populations added beyond the
// paper's named cases.  They are registered in init so the primary
// generator table in generators.go stays a readable mirror of the
// paper's §5.5 catalogue.

func init() {
	generators[TarArchive] = genTarArchive
	generators[MailSpool] = genMailSpool
	generators[CoreDump] = genCoreDump
}

// genTarArchive emits a plausible USTAR stream: 512-byte headers
// (name, octal size fields, checksum, magic) with zero padding, member
// bodies of prose or source, and block-aligned zero fill — tar's
// mixture of text skew and zero runs is a classic checksum hot-spot
// source.
func genTarArchive(rng *rand.Rand, size int) []byte {
	out := make([]byte, 0, size+1024)
	member := 0
	for len(out) < size {
		var body []byte
		if rng.IntN(2) == 0 {
			body = genEnglishText(rng, 512+rng.IntN(4096))
		} else {
			body = genCSource(rng, 512+rng.IntN(4096))
		}
		hdr := make([]byte, 512)
		name := fmt.Sprintf("src/%s%03d.%s", cIdents[rng.IntN(len(cIdents))], member, []string{"txt", "c"}[rng.IntN(2)])
		copy(hdr, name)
		copy(hdr[100:], "0000644\x00")                       // mode
		copy(hdr[108:], "0001750\x00")                       // uid
		copy(hdr[116:], "0001750\x00")                       // gid
		copy(hdr[124:], fmt.Sprintf("%011o\x00", len(body))) // size
		copy(hdr[136:], "07652412345\x00")                   // mtime
		copy(hdr[257:], "ustar\x0000")
		// Header checksum: spaces while summing, then octal.
		for i := 148; i < 156; i++ {
			hdr[i] = ' '
		}
		sum := 0
		for _, b := range hdr {
			sum += int(b)
		}
		copy(hdr[148:], fmt.Sprintf("%06o\x00 ", sum))
		out = append(out, hdr...)
		out = append(out, body...)
		if pad := 512 - len(body)%512; pad != 512 {
			out = append(out, make([]byte, pad)...)
		}
		member++
	}
	return out[:size]
}

// genMailSpool emits an mbox spool: highly repetitive header blocks
// (the same Received/Message-ID shapes over and over) with prose
// bodies — strong local correlation between adjacent messages.
func genMailSpool(rng *rand.Rand, size int) []byte {
	out := make([]byte, 0, size+512)
	users := []string{"craig", "jonathan", "michael", "jim", "staff", "ops"}
	hosts := []string{"bbn.com", "stanford.edu", "sics.se", "network.com"}
	msg := 0
	for len(out) < size {
		from := users[rng.IntN(len(users))] + "@" + hosts[rng.IntN(len(hosts))]
		to := users[rng.IntN(len(users))] + "@" + hosts[rng.IntN(len(hosts))]
		out = append(out, fmt.Sprintf(
			"From %s Mon Jun %2d %02d:%02d:%02d 1995\n"+
				"Received: from %s by %s (5.65c/IDA-1.4.4)\n"+
				"\tid AA%05d; Mon, %d Jun 95 %02d:%02d:%02d -0400\n"+
				"Message-Id: <9506%02d%02d%02d.AA%05d@%s>\n"+
				"From: %s\nTo: %s\nSubject: re: checksum results (%d)\n\n",
			from, 1+rng.IntN(28), rng.IntN(24), rng.IntN(60), rng.IntN(60),
			hosts[rng.IntN(len(hosts))], hosts[rng.IntN(len(hosts))],
			rng.IntN(100000), 1+rng.IntN(28), rng.IntN(24), rng.IntN(60), rng.IntN(60),
			1+rng.IntN(28), rng.IntN(24), rng.IntN(60), rng.IntN(100000), hosts[rng.IntN(len(hosts))],
			from, to, msg)...)
		out = append(out, genEnglishText(rng, 200+rng.IntN(1500))...)
		out = append(out, '\n', '\n')
		msg++
	}
	return out[:size]
}

// genCoreDump emits a process-image-like file: large zero regions,
// runs of repeated word-aligned "pointers" into a small address range,
// stretches of machine code, and NUL-separated strings — zero-dominated
// with repeated multi-byte patterns at fixed strides.
func genCoreDump(rng *rand.Rand, size int) []byte {
	out := make([]byte, 0, size+256)
	base := uint32(0xEF000000 | rng.Uint32()&0x00FFF000)
	for len(out) < size {
		switch rng.IntN(5) {
		case 0, 1: // zero region
			n := 1024 + rng.IntN(8192)
			out = append(out, make([]byte, n)...)
		case 2: // stack frame: repeated near-identical pointers
			n := 16 + rng.IntN(200)
			for i := 0; i < n && len(out) < size; i++ {
				p := base + uint32(rng.IntN(64))*16
				out = append(out, byte(p>>24), byte(p>>16), byte(p>>8), byte(p))
			}
		case 3: // text segment fragment
			n := 256 + rng.IntN(1024)
			for i := 0; i < n && len(out) < size; i++ {
				out = append(out, opcodeDist[rng.IntN(256)])
			}
		case 4: // environment strings
			for i := 0; i < 8+rng.IntN(24) && len(out) < size; i++ {
				out = append(out, cIdents[rng.IntN(len(cIdents))]...)
				out = append(out, '=')
				out = append(out, wordPool[zipfIndex(rng, len(wordPool))]...)
				out = append(out, 0)
			}
		}
	}
	return out[:size]
}
