package corpus

// Site profiles modelled on the file systems the paper scanned.  The
// mixtures follow what the paper says about each system: the SICS /srcN
// trees were source code, /opt and /solaris carried executables (§ Table
// 2 notes "% executables" for /opt), Stanford's /u1 was a user tree that
// contained the pathological PBM plot directory, the hex PostScript
// bitmaps, BinHex documents and gmon.out files (§5.5), and /usr/local
// was a binaries-plus-docs tree.  NSC's nine systems are general-purpose
// mixes.  File counts here are scaled-down defaults (use Scale to grow
// them); the mixture ratios are what shape the checksum distributions.

// StanfordU1 is smeg.dsg.stanford.edu:/u1 — the system of Figures 2–3
// and Tables 4–6/10: a user tree with text, source, binaries and the
// §5.5 pathological image/profile data.
func StanfordU1() Profile {
	return Profile{
		Name: "smeg.stanford.edu:/u1",
		Mix: []TypeWeight{
			{EnglishText, 30}, {CSource, 24}, {Executable, 20},
			{PBMImage, 3}, {PSHexBitmap, 4}, {BinHex, 3},
			{GmonOut, 2}, {WordProcessor, 2}, {Compressed, 7}, {LogFile, 5},
		},
		Files: 160, MinSize: 512, MaxSize: 96 * 1024,
		Seed: 0x51EC0DE1, Clusters: true,
	}
}

// StanfordUsrLocal is pompano.stanford.edu:/usr/local — installed
// software: binaries, scripts and documentation.
func StanfordUsrLocal() Profile {
	return Profile{
		Name: "pompano.stanford.edu:/usr/local",
		Mix: []TypeWeight{
			{Executable, 45}, {EnglishText, 20}, {CSource, 15},
			{Compressed, 10}, {LogFile, 5}, {GmonOut, 5},
		},
		Files: 130, MinSize: 1024, MaxSize: 128 * 1024,
		Seed: 0x51EC0DE2, Clusters: true,
	}
}

// SICSSrc returns fafner.sics.se:/srcN (N in 1..4) — source trees.
func SICSSrc(n int) Profile {
	return Profile{
		Name: sicsName(n),
		Mix: []TypeWeight{
			{CSource, 55}, {EnglishText, 25}, {Executable, 8},
			{Compressed, 7}, {LogFile, 5},
		},
		Files: 140, MinSize: 256, MaxSize: 64 * 1024,
		Seed: 0x51C5000 + uint64(n), Clusters: true,
	}
}

func sicsName(n int) string {
	switch n {
	case 1:
		return "sics.se:/src1"
	case 2:
		return "sics.se:/src2"
	case 3:
		return "sics.se:/src3"
	default:
		return "sics.se:/src4"
	}
}

// SICSOpt is fafner.sics.se:/opt — the executables-heavy system that
// gave the TCP checksum the most trouble and is the Table 7 compression
// subject.
func SICSOpt() Profile {
	return Profile{
		Name: "sics.se:/opt",
		Mix: []TypeWeight{
			{Executable, 55}, {GmonOut, 5}, {WordProcessor, 4},
			{EnglishText, 15}, {CSource, 12}, {Compressed, 9},
		},
		Files: 150, MinSize: 1024, MaxSize: 160 * 1024,
		Seed: 0x51C50F7, Clusters: true,
	}
}

// SICSIssl is sics.se:/issl — a mixed project tree.
func SICSIssl() Profile {
	return Profile{
		Name: "sics.se:/issl",
		Mix: []TypeWeight{
			{CSource, 30}, {EnglishText, 25}, {Executable, 20},
			{PSHexBitmap, 8}, {Compressed, 10}, {LogFile, 7},
		},
		Files: 130, MinSize: 512, MaxSize: 64 * 1024,
		Seed: 0x51C5155, Clusters: true,
	}
}

// SICSSolaris is sics.se:/solaris — an OS install image.
func SICSSolaris() Profile {
	return Profile{
		Name: "sics.se:/solaris",
		Mix: []TypeWeight{
			{Executable, 60}, {EnglishText, 12}, {CSource, 8},
			{Compressed, 12}, {LogFile, 4}, {GmonOut, 4},
		},
		Files: 150, MinSize: 2048, MaxSize: 192 * 1024,
		Seed: 0x51C550A, Clusters: true,
	}
}

// SICSCna is sics.se:/cna — a mixed user tree.
func SICSCna() Profile {
	return Profile{
		Name: "sics.se:/cna",
		Mix: []TypeWeight{
			{EnglishText, 30}, {CSource, 20}, {Executable, 15},
			{WordProcessor, 10}, {BinHex, 8}, {Compressed, 10}, {LogFile, 7},
		},
		Files: 140, MinSize: 512, MaxSize: 96 * 1024,
		Seed: 0x51C5CA, Clusters: true,
	}
}

// NSC returns one of the nine Network Systems Corporation systems of
// Table 1 (valid codes: 5, 11, 23, 25, 27, 29, 49, 51, 52).  Each gets
// a slightly different general-purpose mixture, deterministically
// derived from its code.
func NSC(code int) Profile {
	// Vary the mixture with the code so the nine systems differ the way
	// the paper's do.
	w := func(base, span int) int { return base + (code*7)%span }
	return Profile{
		Name: nscName(code),
		Mix: []TypeWeight{
			{EnglishText, w(18, 12)}, {CSource, w(14, 10)},
			{Executable, w(20, 15)}, {Compressed, w(6, 6)},
			{LogFile, w(4, 5)}, {GmonOut, 1 + code%2},
			{WordProcessor, code % 3}, {PBMImage, code % 3},
		},
		Files: 110 + code%5*10, MinSize: 512, MaxSize: 80 * 1024,
		Seed: 0x05C000 + uint64(code), Clusters: true,
	}
}

func nscName(code int) string {
	return "nsc" + twoDigits(code)
}

func twoDigits(n int) string {
	return string([]byte{'0' + byte(n/10%10), '0' + byte(n%10)})
}

// NSCCodes lists the nine NSC system codes of Table 1.
func NSCCodes() []int { return []int{5, 11, 23, 25, 27, 29, 49, 51, 52} }

// AllProfiles returns every site profile the experiment harness knows,
// in paper order (Table 1, Table 2, Table 3).
func AllProfiles() []Profile {
	var out []Profile
	for _, c := range NSCCodes() {
		out = append(out, NSC(c))
	}
	for n := 1; n <= 4; n++ {
		out = append(out, SICSSrc(n))
	}
	out = append(out, SICSIssl(), SICSOpt(), SICSSolaris(), SICSCna())
	out = append(out, StanfordU1(), StanfordUsrLocal())
	return out
}

// ByName returns the profile with the given Name, if known.
func ByName(name string) (Profile, bool) {
	for _, p := range AllProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// PathologicalPBM is a corpus of nothing but black-and-white plot
// bitmaps — the directory of Internet-backbone RTT graphs that made
// Fletcher-255 perform worse than the TCP checksum (§5.5).
func PathologicalPBM() Profile {
	return Profile{
		Name:  "pathological:pbm",
		Mix:   []TypeWeight{{PBMImage, 1}},
		Files: 40, MinSize: 8 * 1024, MaxSize: 64 * 1024,
		Seed: 0xBAD0001,
	}
}

// PathologicalPSHex is a corpus of hex-encoded PostScript bitmaps — the
// mod-256 Fletcher pathology of §5.5.
func PathologicalPSHex() Profile {
	return Profile{
		Name:  "pathological:pshex",
		Mix:   []TypeWeight{{PSHexBitmap, 1}},
		Files: 40, MinSize: 8 * 1024, MaxSize: 64 * 1024,
		Seed: 0xBAD0002,
	}
}

// PathologicalGmon is a corpus of gmon.out profiles — the standard
// Internet checksum pathology of §5.5.
func PathologicalGmon() Profile {
	return Profile{
		Name:  "pathological:gmon",
		Mix:   []TypeWeight{{GmonOut, 1}},
		Files: 40, MinSize: 8 * 1024, MaxSize: 64 * 1024,
		Seed: 0xBAD0003,
	}
}

// Uniform is a corpus of uniformly random bytes — the baseline every
// theoretical failure-rate prediction assumes.
func Uniform() Profile {
	return Profile{
		Name:  "uniform",
		Mix:   []TypeWeight{{UniformRandom, 1}},
		Files: 60, MinSize: 8 * 1024, MaxSize: 64 * 1024,
		Seed: 0x0001F0F0,
	}
}
