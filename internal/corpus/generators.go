package corpus

import (
	"bytes"
	"compress/lzw"
	"fmt"
	"math/rand/v2"
)

// A generator produces size bytes of one file population.  Generators
// may return slightly more or fewer bytes than asked when the format has
// natural record boundaries; Build treats Size as a target.
type generator func(rng *rand.Rand, size int) []byte

// generators maps each FileType to its generator.  Indexed by FileType.
var generators = [numFileTypes]generator{
	EnglishText:   genEnglishText,
	CSource:       genCSource,
	Executable:    genExecutable,
	PBMImage:      genPBMImage,
	PSHexBitmap:   genPSHexBitmap,
	BinHex:        genBinHex,
	GmonOut:       genGmonOut,
	WordProcessor: genWordProcessor,
	Compressed:    genCompressed,
	LogFile:       genLogFile,
	UniformRandom: genUniformRandom,
}

func genUniformRandom(rng *rand.Rand, size int) []byte {
	out := make([]byte, size)
	i := 0
	for ; i+8 <= size; i += 8 {
		v := rng.Uint64()
		out[i], out[i+1], out[i+2], out[i+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		out[i+4], out[i+5], out[i+6], out[i+7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
	}
	for ; i < size; i++ {
		out[i] = byte(rng.Uint32())
	}
	return out
}

// ---------------------------------------------------------------------
// English prose.

// wordPool is a frequency-ranked pool of common English words.  Sampling
// it Zipf-style yields text whose byte histogram matches English prose:
// 'e' and space dominate, values above 0x7F never occur.
var wordPool = []string{
	"the", "of", "and", "a", "to", "in", "is", "you", "that", "it",
	"he", "was", "for", "on", "are", "as", "with", "his", "they", "I",
	"at", "be", "this", "have", "from", "or", "one", "had", "by", "word",
	"but", "not", "what", "all", "were", "we", "when", "your", "can", "said",
	"there", "use", "an", "each", "which", "she", "do", "how", "their", "if",
	"will", "up", "other", "about", "out", "many", "then", "them", "these", "so",
	"some", "her", "would", "make", "like", "him", "into", "time", "has", "look",
	"two", "more", "write", "go", "see", "number", "no", "way", "could", "people",
	"my", "than", "first", "water", "been", "call", "who", "oil", "its", "now",
	"find", "long", "down", "day", "did", "get", "come", "made", "may", "part",
	"over", "new", "sound", "take", "only", "little", "work", "know", "place", "year",
	"live", "me", "back", "give", "most", "very", "after", "thing", "our", "just",
	"name", "good", "sentence", "man", "think", "say", "great", "where", "help", "through",
	"much", "before", "line", "right", "too", "mean", "old", "any", "same", "tell",
	"boy", "follow", "came", "want", "show", "also", "around", "form", "three", "small",
	"network", "protocol", "checksum", "packet", "system", "file", "data", "transfer", "error", "value",
}

// zipfIndex draws an index into a pool of n items with a Zipf-ish
// (1/(k+q)) profile, concentrating on low ranks.
func zipfIndex(rng *rand.Rand, n int) int {
	// Rejectionless approximation: square a uniform to skew low.
	u := rng.Float64()
	return int(u * u * float64(n))
}

func genEnglishText(rng *rand.Rand, size int) []byte {
	out := make([]byte, 0, size+16)
	col := 0
	sentence := 0
	for len(out) < size {
		w := wordPool[zipfIndex(rng, len(wordPool))]
		if sentence == 0 && len(w) > 0 {
			w = string(w[0]-'a'+'A') + w[1:]
		}
		if col+len(w)+1 > 72 {
			out = append(out, '\n')
			col = 0
		} else if col > 0 {
			out = append(out, ' ')
			col++
		}
		out = append(out, w...)
		col += len(w)
		sentence++
		if sentence > 4+rng.IntN(14) {
			out = append(out, '.')
			col++
			sentence = 0
			if rng.IntN(4) == 0 {
				out = append(out, '\n', '\n')
				col = 0
			}
		}
	}
	return out[:size]
}

// ---------------------------------------------------------------------
// C source code.

var cIdents = []string{
	"buf", "len", "i", "j", "n", "p", "q", "ret", "err", "fd",
	"count", "size", "offset", "ptr", "head", "tail", "next", "prev", "node", "tmp",
	"sum", "cksum", "crc", "data", "packet", "cell", "hdr", "flags", "state", "ctx",
}

var cTypes = []string{"int", "char", "long", "void", "size_t", "u_int32_t", "u_int16_t", "struct mbuf"}

func genCSource(rng *rand.Rand, size int) []byte {
	var b bytes.Buffer
	b.Grow(size + 256)
	fmt.Fprintf(&b, "/*\n * %s.c -- generated module\n */\n\n", cIdents[rng.IntN(len(cIdents))])
	for _, inc := range []string{"<stdio.h>", "<stdlib.h>", "<string.h>", "<sys/types.h>"} {
		fmt.Fprintf(&b, "#include %s\n", inc)
	}
	b.WriteByte('\n')
	for b.Len() < size {
		typ := cTypes[rng.IntN(len(cTypes))]
		fn := cIdents[rng.IntN(len(cIdents))]
		arg := cIdents[rng.IntN(len(cIdents))]
		fmt.Fprintf(&b, "%s\n%s_%d(%s *%s, int n)\n{\n", typ, fn, rng.IntN(100), cTypes[rng.IntN(len(cTypes))], arg)
		stmts := 3 + rng.IntN(12)
		fmt.Fprintf(&b, "\tint %s = 0;\n", cIdents[rng.IntN(len(cIdents))])
		for s := 0; s < stmts; s++ {
			v1 := cIdents[rng.IntN(len(cIdents))]
			v2 := cIdents[rng.IntN(len(cIdents))]
			switch rng.IntN(5) {
			case 0:
				fmt.Fprintf(&b, "\tfor (%s = 0; %s < n; %s++) {\n\t\t%s += %s[%s];\n\t}\n", v1, v1, v1, v2, arg, v1)
			case 1:
				fmt.Fprintf(&b, "\tif (%s == NULL)\n\t\treturn (-1);\n", v1)
			case 2:
				fmt.Fprintf(&b, "\t%s = %s + 0x%x;\n", v1, v2, rng.IntN(65536))
			case 3:
				fmt.Fprintf(&b, "\tmemset(%s, 0, sizeof(*%s));\n", v1, v1)
			case 4:
				fmt.Fprintf(&b, "\t/* %s the %s */\n", wordPool[zipfIndex(rng, len(wordPool))], v2)
			}
		}
		fmt.Fprintf(&b, "\treturn (%s);\n}\n\n", cIdents[rng.IntN(len(cIdents))])
	}
	out := b.Bytes()
	if len(out) > size {
		out = out[:size]
	}
	return out
}

// ---------------------------------------------------------------------
// Executables: ELF-ish images.

// opcodeDist is a byte-frequency table biased like compiled machine
// code: zero dominates, a handful of opcodes and mod/rm bytes recur.
var opcodeDist = func() [256]byte {
	var freq [256]int
	for i := range freq {
		freq[i] = 1
	}
	freq[0x00] = 60
	for _, common := range []byte{0x8B, 0x89, 0xE8, 0x48, 0xFF, 0x83, 0x0F, 0xC3, 0x90, 0x01, 0x04, 0x24, 0x10, 0x20, 0x40, 0x80} {
		freq[common] = 20
	}
	var table [256]byte
	// Build a 256-entry alias-free sampling table by repetition: not
	// exact, but deterministic and cheap.
	idx := 0
	total := 0
	for _, f := range freq {
		total += f
	}
	for v := 0; v < 256; v++ {
		reps := freq[v] * 256 / total
		if reps == 0 {
			reps = 1
		}
		for r := 0; r < reps && idx < 256; r++ {
			table[idx] = byte(v)
			idx++
		}
	}
	for idx < 256 {
		table[idx] = 0x00
		idx++
	}
	return table
}()

func genExecutable(rng *rand.Rand, size int) []byte {
	out := make([]byte, 0, size+64)
	// ELF header: magic + plausible fields, mostly zero.
	hdr := make([]byte, 64)
	copy(hdr, []byte{0x7F, 'E', 'L', 'F', 2, 1, 1, 0})
	hdr[16], hdr[18] = 2, 0x3E
	out = append(out, hdr...)
	// Alternate sections until full.
	for len(out) < size {
		switch rng.IntN(4) {
		case 0: // .text: opcode-biased bytes with repeated short motifs
			n := 512 + rng.IntN(2048)
			motif := make([]byte, 4+rng.IntN(12))
			for i := range motif {
				motif[i] = opcodeDist[rng.IntN(256)]
			}
			for i := 0; i < n && len(out) < size; i++ {
				if rng.IntN(16) == 0 {
					out = append(out, motif...)
					i += len(motif)
				} else {
					out = append(out, opcodeDist[rng.IntN(256)])
				}
			}
		case 1: // .data/.bss image: long zero runs with sparse values
			n := 256 + rng.IntN(4096)
			for i := 0; i < n && len(out) < size; i++ {
				if rng.IntN(32) == 0 {
					out = append(out, byte(rng.IntN(256)))
				} else {
					out = append(out, 0)
				}
			}
		case 2: // .strtab: NUL-separated identifiers
			n := 8 + rng.IntN(64)
			for i := 0; i < n && len(out) < size; i++ {
				id := cIdents[rng.IntN(len(cIdents))]
				out = append(out, id...)
				if rng.IntN(2) == 0 {
					out = append(out, '_')
					out = append(out, cIdents[rng.IntN(len(cIdents))]...)
				}
				out = append(out, 0)
			}
		case 3: // .symtab: big-endian u32 records with tiny values
			n := 16 + rng.IntN(128)
			for i := 0; i < n && len(out) < size; i++ {
				v := uint32(rng.IntN(1 << uint(4+rng.IntN(16))))
				out = append(out, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
			}
		}
	}
	return out[:size]
}

// ---------------------------------------------------------------------
// PBM/PGM plots: every data byte 0x00 or 0xFF (§5.5's killer for
// Fletcher-255).

func genPBMImage(rng *rand.Rand, size int) []byte {
	w := 256 + 64*rng.IntN(8)
	out := make([]byte, 0, size+w)
	out = append(out, fmt.Sprintf("P5\n%d %d\n255\n", w, (size/w)+1)...)
	// An RTT-plot-like image: white background, black axes and a
	// wandering black trace.
	trace := rng.IntN(w)
	row := 0
	for len(out) < size {
		rowStart := len(out)
		for x := 0; x < w; x++ {
			out = append(out, 0xFF)
		}
		// Axis columns and occasional horizontal gridline.
		out[rowStart] = 0
		out[rowStart+w/2] = 0
		if row%64 == 0 {
			for x := 0; x < w; x++ {
				out[rowStart+x] = 0
			}
		}
		// Trace: a few black pixels random-walking.
		trace += rng.IntN(7) - 3
		if trace < 0 {
			trace = 0
		}
		if trace >= w {
			trace = w - 1
		}
		for d := 0; d < 3 && trace+d < w; d++ {
			out[rowStart+trace+d] = 0
		}
		row++
	}
	return out[:size]
}

// ---------------------------------------------------------------------
// Hex-encoded PostScript bitmaps (§5.5): 2W hex chars per line, width a
// power of two, many identical lines (font bitmaps, solid rules).

func genPSHexBitmap(rng *rand.Rand, size int) []byte {
	wbits := 4 + rng.IntN(3) // 16, 32 or 64 bytes per row
	w := 1 << uint(wbits)
	out := make([]byte, 0, size+2*w+80)
	out = append(out, fmt.Sprintf("%%!PS-Adobe-2.0\n/picstr %d string def\n%d %d 1\nimage\n", w, w*8, 400)...)
	const hexd = "0123456789ABCDEF"
	// A small set of line patterns, reused many times.
	patterns := make([][]byte, 3+rng.IntN(4))
	for i := range patterns {
		row := make([]byte, 0, 2*w+1)
		for x := 0; x < w; x++ {
			b := byte(0xFF)
			if rng.IntN(16) == 0 {
				b = byte(rng.IntN(256)) // an F7-style blemish
			}
			row = append(row, hexd[b>>4], hexd[b&0xF])
		}
		row = append(row, '\n')
		patterns[i] = row
	}
	for len(out) < size {
		out = append(out, patterns[rng.IntN(len(patterns))]...)
	}
	return out[:size]
}

// ---------------------------------------------------------------------
// BinHex: 64-char lines over the BinHex alphabet, highly repetitive.

const binhexAlphabet = `!"#$%&'()*+,-012345689@ABCDEFGHIJKLMNPQRSTUVXYZ[` + "`abcdefhijklmpqr"

func genBinHex(rng *rand.Rand, size int) []byte {
	out := make([]byte, 0, size+128)
	out = append(out, "(This file must be converted with BinHex 4.0)\n:"...)
	line := make([]byte, 65)
	line[64] = '\n'
	for len(out) < size {
		// Long runs of the same character model BinHex's run-length
		// escapes of repetitive resource data.
		i := 0
		for i < 64 {
			c := binhexAlphabet[rng.IntN(len(binhexAlphabet))]
			run := 1
			if rng.IntN(3) == 0 {
				run = 2 + rng.IntN(20)
			}
			for ; run > 0 && i < 64; run-- {
				line[i] = c
				i++
			}
		}
		out = append(out, line...)
	}
	return out[:size]
}

// ---------------------------------------------------------------------
// gmon.out: mostly-zero 16-bit histogram counters, the non-zero ones
// drawn from a tiny set of values (§5.5's pathological TCP case).

func genGmonOut(rng *rand.Rand, size int) []byte {
	out := make([]byte, size)
	// Header-ish first 20 bytes.
	for i := 0; i < 20 && i < size; i++ {
		out[i] = byte(rng.IntN(256))
	}
	common := []uint16{1, 1, 1, 2, 2, 3, 5, 16, uint16(rng.IntN(512))}
	for i := 20; i+2 <= size; i += 2 {
		if rng.IntN(40) == 0 {
			v := common[rng.IntN(len(common))]
			out[i], out[i+1] = byte(v>>8), byte(v)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Word-processor files: text sections separated by ~200 bytes of 0x00
// followed by ~200 bytes of 0xFF (§5.5).

func genWordProcessor(rng *rand.Rand, size int) []byte {
	out := make([]byte, 0, size+512)
	out = append(out, "\xDB\xA5-\x00\x00\x00"...) // magic-ish
	for len(out) < size {
		text := genEnglishText(rng, 400+rng.IntN(1200))
		out = append(out, text...)
		z := 180 + rng.IntN(60)
		for i := 0; i < z; i++ {
			out = append(out, 0x00)
		}
		o := 180 + rng.IntN(60)
		for i := 0; i < o; i++ {
			out = append(out, 0xFF)
		}
	}
	return out[:size]
}

// ---------------------------------------------------------------------
// Compressed data: LZW over generated prose, like Unix compress output.

func genCompressed(rng *rand.Rand, size int) []byte {
	var b bytes.Buffer
	b.Write([]byte{0x1F, 0x9D, 0x90}) // compress(1) magic + maxbits
	w := lzw.NewWriter(&b, lzw.LSB, 8)
	for b.Len() < size+3 {
		w.Write(genEnglishText(rng, 8192))
	}
	w.Close()
	out := b.Bytes()
	if len(out) > size {
		out = out[:size]
	}
	return out
}

// ---------------------------------------------------------------------
// Log files: repetitive timestamped lines.

var logHosts = []string{"fafner", "smeg", "pompano", "nsc05", "gateway"}
var logDaemons = []string{"sendmail", "ftpd", "named", "kernel", "inetd", "lpd"}
var logMsgs = []func(rng *rand.Rand) string{
	func(r *rand.Rand) string {
		return fmt.Sprintf("connection from %d.%d.%d.%d", r.IntN(256), r.IntN(256), r.IntN(256), r.IntN(256))
	},
	func(r *rand.Rand) string { return "stat=Sent (ok)" },
	func(r *rand.Rand) string { return fmt.Sprintf("transfer complete: %d bytes", r.IntN(1<<20)) },
	func(r *rand.Rand) string { return fmt.Sprintf("zone refresh in %d seconds", r.IntN(86400)) },
	func(r *rand.Rand) string { return "file system full" },
	func(r *rand.Rand) string { return fmt.Sprintf("retransmitting seq %d", r.IntN(1<<30)) },
}

func genLogFile(rng *rand.Rand, size int) []byte {
	var b bytes.Buffer
	b.Grow(size + 128)
	day := 1 + rng.IntN(28)
	hh, mm, ss := rng.IntN(24), rng.IntN(60), rng.IntN(60)
	for b.Len() < size {
		ss += 1 + rng.IntN(40)
		mm += ss / 60
		ss %= 60
		hh += mm / 60
		mm %= 60
		day += hh / 24
		hh %= 24
		fmt.Fprintf(&b, "Jun %2d %02d:%02d:%02d %s %s[%d]: %s\n",
			day, hh, mm, ss,
			logHosts[rng.IntN(len(logHosts))],
			logDaemons[rng.IntN(len(logDaemons))],
			100+rng.IntN(900),
			logMsgs[rng.IntN(len(logMsgs))](rng))
	}
	out := b.Bytes()
	if len(out) > size {
		out = out[:size]
	}
	return out
}
