package corpus

import (
	"bytes"
	"compress/lzw"
	"io/fs"
	"os"
	"path/filepath"
)

// ScanDir walks a real directory tree and invokes fn for every regular
// file, in lexical order, mirroring FS.Walk — so the whole experiment
// harness can be pointed at an actual file system instead of a synthetic
// profile, exactly as the paper's test program was.
func ScanDir(root string, fn func(path string, data []byte) error) error {
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.Type().IsRegular() {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return fn(path, data)
	})
}

// Compress applies LZW compression (the algorithm of Unix compress, as
// used for the paper's Table 7 experiment) to data.
func Compress(data []byte) []byte {
	var b bytes.Buffer
	w := lzw.NewWriter(&b, lzw.LSB, 8)
	w.Write(data)
	w.Close()
	return b.Bytes()
}

// CompressFS returns a view of fs in which every file's contents are
// LZW-compressed, reproducing "we compressed all the files in the file
// system ... and ran our tests on the compressed files" (§5.1).
func CompressFS(orig *FS) *CompressedFS { return &CompressedFS{orig: orig} }

// CompressedFS wraps an FS, compressing each file during Walk.
type CompressedFS struct {
	orig *FS
}

// Name returns the underlying file system's name with a marker.
func (c *CompressedFS) Name() string { return c.orig.Name + " (compressed)" }

// Walk visits every file's compressed contents.
func (c *CompressedFS) Walk(fn func(path string, data []byte) error) error {
	return c.orig.Walk(func(path string, data []byte) error {
		return fn(path+".Z", Compress(data))
	})
}

// Walker is the file-source interface the simulator consumes: synthetic
// file systems, compressed views and real directory trees all satisfy
// it.
type Walker interface {
	Walk(fn func(path string, data []byte) error) error
}

// DirWalker adapts ScanDir to the Walker interface.
type DirWalker string

// Walk implements Walker.
func (d DirWalker) Walk(fn func(path string, data []byte) error) error {
	return ScanDir(string(d), fn)
}
