package corpus

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	for ft := FileType(0); int(ft) < numFileTypes; ft++ {
		s := FileSpec{Path: "x", Type: ft, Size: 4096, seed: 42}
		a, b := s.Generate(), s.Generate()
		if !bytes.Equal(a, b) {
			t.Errorf("%v: Generate is not deterministic", ft)
		}
		if len(a) != 4096 {
			t.Errorf("%v: generated %d bytes, want 4096", ft, len(a))
		}
	}
}

func TestGenerateDiffersAcrossSeeds(t *testing.T) {
	for ft := FileType(0); int(ft) < numFileTypes; ft++ {
		a := FileSpec{Type: ft, Size: 4096, seed: 1}.Generate()
		b := FileSpec{Type: ft, Size: 4096, seed: 2}.Generate()
		if bytes.Equal(a, b) {
			t.Errorf("%v: different seeds produced identical files", ft)
		}
	}
}

func byteHistogram(data []byte) [256]int {
	var h [256]int
	for _, b := range data {
		h[b]++
	}
	return h
}

func TestEnglishTextLooksLikeEnglish(t *testing.T) {
	data := FileSpec{Type: EnglishText, Size: 64 * 1024, seed: 7}.Generate()
	h := byteHistogram(data)
	for b := 0x80; b < 0x100; b++ {
		if h[b] != 0 {
			t.Fatalf("non-ASCII byte %#02x in English text", b)
		}
	}
	if h['e'] < h['z']*5 {
		t.Error("letter frequencies not English-like: e should dwarf z")
	}
	if h[' '] == 0 || h['\n'] == 0 {
		t.Error("no spaces or newlines")
	}
}

func TestExecutableIsZeroHeavy(t *testing.T) {
	data := FileSpec{Type: Executable, Size: 64 * 1024, seed: 7}.Generate()
	h := byteHistogram(data)
	if float64(h[0])/float64(len(data)) < 0.15 {
		t.Errorf("executable only %.1f%% zero bytes; real binaries are zero-heavy",
			100*float64(h[0])/float64(len(data)))
	}
	if !bytes.HasPrefix(data, []byte{0x7F, 'E', 'L', 'F'}) {
		t.Error("missing ELF magic")
	}
}

func TestPBMIsPureBlackAndWhite(t *testing.T) {
	data := FileSpec{Type: PBMImage, Size: 32 * 1024, seed: 9}.Generate()
	// Skip the ASCII header (ends at the third newline).
	nl := 0
	start := 0
	for i, b := range data {
		if b == '\n' {
			nl++
			if nl == 3 {
				start = i + 1
				break
			}
		}
	}
	for i := start; i < len(data); i++ {
		if data[i] != 0x00 && data[i] != 0xFF {
			t.Fatalf("PBM body byte %#02x at %d; §5.5 requires pure 0/255", data[i], i)
		}
	}
}

func TestPSHexBitmapStructure(t *testing.T) {
	data := FileSpec{Type: PSHexBitmap, Size: 32 * 1024, seed: 11}.Generate()
	if !bytes.HasPrefix(data, []byte("%!PS-Adobe")) {
		t.Error("missing PostScript header")
	}
	// Body lines must be hex digits; many lines must repeat exactly.
	lines := bytes.Split(data, []byte{'\n'})
	seen := map[string]int{}
	body := 0
	for _, l := range lines[4:] {
		if len(l) == 0 {
			continue
		}
		body++
		seen[string(l)]++
	}
	if body == 0 {
		t.Fatal("no body lines")
	}
	max := 0
	for _, c := range seen {
		if c > max {
			max = c
		}
	}
	if max < body/10 {
		t.Errorf("most common line occurs %d/%d times; font bitmaps repeat far more", max, body)
	}
}

func TestGmonOutMostlyZero(t *testing.T) {
	data := FileSpec{Type: GmonOut, Size: 32 * 1024, seed: 13}.Generate()
	h := byteHistogram(data)
	if float64(h[0])/float64(len(data)) < 0.9 {
		t.Errorf("gmon.out only %.1f%% zeros", 100*float64(h[0])/float64(len(data)))
	}
}

func TestWordProcessorRuns(t *testing.T) {
	data := FileSpec{Type: WordProcessor, Size: 32 * 1024, seed: 15}.Generate()
	// Must contain a run of ≥150 zero bytes followed eventually by a run
	// of ≥150 0xFF bytes.
	longRun := func(v byte) bool {
		run := 0
		for _, b := range data {
			if b == v {
				run++
				if run >= 150 {
					return true
				}
			} else {
				run = 0
			}
		}
		return false
	}
	if !longRun(0x00) || !longRun(0xFF) {
		t.Error("word-processor file lacks the §5.5 0x00/0xFF runs")
	}
}

func TestCompressedIsNearUniform(t *testing.T) {
	data := FileSpec{Type: Compressed, Size: 64 * 1024, seed: 17}.Generate()
	h := byteHistogram(data[3:]) // skip magic
	// Entropy proxy: no byte should be wildly over-represented.
	max := 0
	for _, c := range h {
		if c > max {
			max = c
		}
	}
	exp := float64(len(data)-3) / 256
	if float64(max) > 4*exp {
		t.Errorf("compressed data skewed: max bucket %d vs expected %.0f", max, exp)
	}
}

func TestUniformRandomIsUniform(t *testing.T) {
	data := FileSpec{Type: UniformRandom, Size: 256 * 1024, seed: 19}.Generate()
	h := byteHistogram(data)
	exp := float64(len(data)) / 256
	var chi2 float64
	for _, c := range h {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	if chi2 > 2*256 {
		t.Errorf("uniform generator chi2 = %.0f over 255 df", chi2)
	}
}

func TestProfileBuildDeterministic(t *testing.T) {
	a, b := StanfordU1().Build(), StanfordU1().Build()
	if len(a.Specs) != len(b.Specs) {
		t.Fatal("nondeterministic spec count")
	}
	for i := range a.Specs {
		if a.Specs[i] != b.Specs[i] {
			t.Fatalf("spec %d differs: %+v vs %+v", i, a.Specs[i], b.Specs[i])
		}
	}
	if !bytes.Equal(a.Specs[0].Generate(), b.Specs[0].Generate()) {
		t.Error("file contents differ across identical builds")
	}
}

func TestProfileMixtureRespected(t *testing.T) {
	fs := PathologicalPBM().Build()
	for _, s := range fs.Specs {
		if s.Type != PBMImage {
			t.Fatalf("pure-PBM profile produced %v", s.Type)
		}
	}
}

func TestProfileScale(t *testing.T) {
	p := StanfordU1()
	if got := p.Scale(2).Files; got != 2*p.Files {
		t.Errorf("Scale(2) files = %d", got)
	}
	if got := p.Scale(0.0001).Files; got != 1 {
		t.Errorf("Scale(tiny) files = %d, want 1", got)
	}
}

func TestAllProfilesBuildAndWalk(t *testing.T) {
	for _, p := range AllProfiles() {
		fs := p.Scale(0.05).Build()
		if fs.Name != p.Name {
			t.Errorf("name mismatch: %q vs %q", fs.Name, p.Name)
		}
		files := 0
		var bytesSeen int64
		err := fs.Walk(func(path string, data []byte) error {
			files++
			bytesSeen += int64(len(data))
			if len(data) == 0 {
				t.Errorf("%s: empty file %s", p.Name, path)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: walk: %v", p.Name, err)
		}
		if files != len(fs.Specs) {
			t.Errorf("%s: walked %d files, want %d", p.Name, files, len(fs.Specs))
		}
		if bytesSeen != fs.TotalBytes() {
			t.Errorf("%s: TotalBytes %d != walked %d", p.Name, fs.TotalBytes(), bytesSeen)
		}
	}
}

func TestByName(t *testing.T) {
	if p, ok := ByName("sics.se:/opt"); !ok || p.Name != "sics.se:/opt" {
		t.Error("ByName(sics.se:/opt) failed")
	}
	if _, ok := ByName("no-such-system"); ok {
		t.Error("ByName should miss unknown systems")
	}
}

func TestLogUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 1000; i++ {
		n := logUniform(rng, 100, 10000)
		if n < 100 || n > 10000 {
			t.Fatalf("logUniform out of bounds: %d", n)
		}
	}
	if logUniform(rng, 50, 50) != 50 {
		t.Error("degenerate range")
	}
}

func TestCompressShrinksText(t *testing.T) {
	text := FileSpec{Type: EnglishText, Size: 32 * 1024, seed: 21}.Generate()
	z := Compress(text)
	if len(z) >= len(text) {
		t.Errorf("LZW did not compress English text: %d -> %d", len(text), len(z))
	}
}

func TestCompressedFSWalk(t *testing.T) {
	fs := SICSOpt().Scale(0.05).Build()
	c := CompressFS(fs)
	if c.Name() != fs.Name+" (compressed)" {
		t.Error("CompressedFS name")
	}
	files := 0
	err := c.Walk(func(path string, data []byte) error {
		files++
		if filepath.Ext(path) != ".Z" {
			t.Errorf("compressed path %q lacks .Z", path)
		}
		return nil
	})
	if err != nil || files == 0 {
		t.Fatalf("walk: %v, %d files", err, files)
	}
}

func TestScanDir(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "a.txt"), []byte("hello"), 0o644)
	os.MkdirAll(filepath.Join(dir, "sub"), 0o755)
	os.WriteFile(filepath.Join(dir, "sub", "b.bin"), []byte{1, 2, 3}, 0o644)
	var paths []string
	var total int
	err := ScanDir(dir, func(path string, data []byte) error {
		paths = append(paths, path)
		total += len(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || total != 8 {
		t.Errorf("scanned %v (%d bytes)", paths, total)
	}
	var dw Walker = DirWalker(dir)
	n := 0
	dw.Walk(func(string, []byte) error { n++; return nil })
	if n != 2 {
		t.Errorf("DirWalker visited %d files", n)
	}
}

func TestFileTypeStrings(t *testing.T) {
	if EnglishText.String() != "text" || UniformRandom.String() != "random" {
		t.Error("FileType strings")
	}
	if FileType(99).String() == "" {
		t.Error("out-of-range FileType should still render")
	}
}

func TestTarArchiveStructure(t *testing.T) {
	data := FileSpec{Type: TarArchive, Size: 48 * 1024, seed: 23}.Generate()
	if !bytes.Contains(data[:512], []byte("ustar")) {
		t.Error("first block lacks ustar magic")
	}
	// The USTAR header checksum of the first block must validate.
	hdr := data[:512]
	sum := 0
	for i, b := range hdr {
		if i >= 148 && i < 156 {
			sum += ' '
		} else {
			sum += int(b)
		}
	}
	var stored int
	fmt.Sscanf(string(hdr[148:155]), "%o", &stored)
	if stored != sum {
		t.Errorf("tar header checksum %o != computed %o", stored, sum)
	}
}

func TestMailSpoolStructure(t *testing.T) {
	data := FileSpec{Type: MailSpool, Size: 32 * 1024, seed: 25}.Generate()
	if !bytes.HasPrefix(data, []byte("From ")) {
		t.Error("mbox must start with a From_ line")
	}
	if n := bytes.Count(data, []byte("\nMessage-Id:")); n < 2 {
		t.Errorf("only %d messages in 32 KiB spool", n+1)
	}
}

func TestCoreDumpZeroHeavy(t *testing.T) {
	data := FileSpec{Type: CoreDump, Size: 64 * 1024, seed: 27}.Generate()
	h := byteHistogram(data)
	if frac := float64(h[0]) / float64(len(data)); frac < 0.3 {
		t.Errorf("core dump only %.1f%% zeros", 100*frac)
	}
}

func TestAllFileTypesAndNewFileSpec(t *testing.T) {
	types := AllFileTypes()
	if len(types) != numFileTypes {
		t.Fatalf("AllFileTypes returned %d of %d", len(types), numFileTypes)
	}
	for _, ft := range types {
		s := NewFileSpec(ft, 2048, 99)
		data := s.Generate()
		if len(data) != 2048 {
			t.Errorf("%v: generated %d bytes", ft, len(data))
		}
	}
}
