// Package inet implements the Internet checksum of RFC 1071 — the 16-bit
// ones-complement sum used by IP, TCP and UDP — together with the
// compositional machinery the paper's splice analysis depends on:
// partial sums over fragments at arbitrary byte offsets, combination of
// partials, and incremental update.
//
// The checksum of a packet equals the ones-complement sum of the partial
// sums of its pieces (§4.1 of the paper), with one twist: a fragment that
// begins at an odd byte offset contributes its partial sum byte-swapped.
// The Partial type tracks enough state (sum and length parity) to make
// composition exact.
package inet

import "realsum/internal/onescomp"

// Sum returns the raw (uncomplemented) ones-complement sum of data,
// taken as big-endian 16-bit words with a trailing odd byte zero-padded.
func Sum(data []byte) uint16 { return onescomp.SumBytes(data) }

// Checksum returns the Internet checksum of data: the ones-complement of
// the ones-complement sum.  This is the value transmitted in the wire
// checksum field of IP, TCP and UDP headers.
func Checksum(data []byte) uint16 { return onescomp.Neg(Sum(data)) }

// Verify reports whether data, which must include its checksum field,
// sums to a representation of ones-complement zero — the receiver-side
// check of RFC 1071.
func Verify(data []byte) bool { return onescomp.IsZero(Checksum(data)) }

// Partial is the checksum state of a fragment of a larger buffer.  Sum
// holds the ones-complement sum of the fragment as if the fragment began
// at an even offset; Len is the fragment length in bytes.  Partials over
// adjacent fragments combine with Append; the parity of the left
// fragment's length determines whether the right partial is byte-swapped.
type Partial struct {
	Sum uint16
	Len int
}

// NewPartial computes the partial checksum of one fragment.
func NewPartial(data []byte) Partial {
	return Partial{Sum: onescomp.SumBytes(data), Len: len(data)}
}

// Append returns the partial for the concatenation of p's fragment
// followed by q's fragment.
func (p Partial) Append(q Partial) Partial {
	s := q.Sum
	if p.Len%2 == 1 {
		s = onescomp.Swap(s)
	}
	return Partial{Sum: onescomp.Add(p.Sum, s), Len: p.Len + q.Len}
}

// AtOffset returns the contribution of p's fragment to the sum of a
// buffer in which the fragment begins at byte offset off.  For the
// Internet checksum only the parity of off matters — this is the formal
// statement of why the TCP sum is position-blind for word-aligned
// shuffles, the root cause of the splice failures of §4.
func (p Partial) AtOffset(off int) uint16 {
	if off%2 == 1 {
		return onescomp.Swap(p.Sum)
	}
	return p.Sum
}

// Combine folds a sequence of partials over adjacent fragments, in
// order, into the partial of the whole buffer.
func Combine(parts ...Partial) Partial {
	var acc Partial
	for _, p := range parts {
		acc = acc.Append(p)
	}
	return acc
}

// Update adjusts a raw sum for the 16-bit word at even offset changing
// from from to to.  See onescomp.UpdateSum.
func Update(sum, from, to uint16) uint16 { return onescomp.UpdateSum(sum, from, to) }

// Digest is a streaming Internet-checksum accumulator in the spirit of
// hash.Hash.  It accepts writes of any size and alignment.
type Digest struct {
	part Partial
}

// New returns a streaming checksum accumulator.
func New() *Digest { return &Digest{} }

// Reset restores the digest to its initial state.
func (d *Digest) Reset() { d.part = Partial{} }

// Write absorbs data into the running sum.  It never fails.
func (d *Digest) Write(data []byte) (int, error) {
	d.part = d.part.Append(NewPartial(data))
	return len(data), nil
}

// Sum16 returns the raw ones-complement sum of everything written.
func (d *Digest) Sum16() uint16 { return d.part.Sum }

// Checksum16 returns the complemented (wire-format) checksum of
// everything written.
func (d *Digest) Checksum16() uint16 { return onescomp.Neg(d.part.Sum) }

// Len returns the number of bytes written.
func (d *Digest) Len() int { return d.part.Len }
