package inet

import (
	"testing"

	"realsum/internal/onescomp"
)

// FuzzPartialComposition checks the §4.1 composition identity for
// arbitrary data and split points: the sum of a buffer equals the
// composed partials of any two-way split, including odd-length left
// fragments (the byte-swap case).
func FuzzPartialComposition(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(3))
	f.Add([]byte{0xFF, 0xFF, 0x00, 0x00}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, cutRaw uint8) {
		cut := 0
		if len(data) > 0 {
			cut = int(cutRaw) % (len(data) + 1)
		}
		got := NewPartial(data[:cut]).Append(NewPartial(data[cut:]))
		if want := Sum(data); !onescomp.Congruent(got.Sum, want) {
			t.Fatalf("split %d/%d: %#04x != %#04x", cut, len(data), got.Sum, want)
		}
		if got.Len != len(data) {
			t.Fatalf("length %d != %d", got.Len, len(data))
		}
	})
}

// FuzzVerifyAfterChecksum checks that any buffer, once its first two
// bytes are replaced by its checksum-with-field-zeroed, verifies.
func FuzzVerifyAfterChecksum(f *testing.F) {
	f.Add(make([]byte, 20))
	f.Add([]byte{0, 0, 0xAB, 0xCD, 0xEF, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		buf := append([]byte{}, data...)
		buf[0], buf[1] = 0, 0
		ck := Checksum(buf)
		buf[0], buf[1] = byte(ck>>8), byte(ck)
		if !Verify(buf) {
			t.Fatalf("stored checksum %#04x does not verify (len %d)", ck, len(buf))
		}
	})
}
