package inet

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"realsum/internal/onescomp"
)

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Uint32())
	}
	return b
}

func TestChecksumKnownVectors(t *testing.T) {
	tests := []struct {
		name string
		data []byte
		want uint16
	}{
		{"empty", nil, 0xFFFF},
		{"zeros", make([]byte, 20), 0xFFFF},
		// Classic IPv4 header example (Wikipedia/RFC 1071 lineage): the
		// header with its checksum field zeroed sums so that the
		// complement is 0xB861.
		{"ipv4 header", []byte{
			0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
			0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
		}, 0xB861},
	}
	for _, tc := range tests {
		if got := Checksum(tc.data); got != tc.want {
			t.Errorf("%s: Checksum = %#04x, want %#04x", tc.name, got, tc.want)
		}
	}
}

func TestVerifyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 300; trial++ {
		n := 4 + 2*rng.IntN(500)
		data := randBytes(rng, n)
		data[0], data[1] = 0, 0
		ck := Checksum(data)
		data[0], data[1] = byte(ck>>8), byte(ck)
		if !Verify(data) {
			t.Fatalf("packet with stored checksum %#04x does not verify", ck)
		}
		// A single-byte corruption elsewhere must be detected unless the
		// corruption is a 0x00<->0xFF flip paired inside a zero word —
		// single-byte changes are always caught.
		pos := 2 + rng.IntN(n-2)
		orig := data[pos]
		data[pos] ^= 1 + byte(rng.IntN(255))
		if data[pos] != orig && Verify(data) {
			t.Fatalf("single-byte corruption at %d undetected", pos)
		}
	}
}

func TestPartialAppendMatchesWhole(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.IntN(300)
		data := randBytes(rng, n)
		cut := rng.IntN(n + 1)
		got := NewPartial(data[:cut]).Append(NewPartial(data[cut:]))
		want := NewPartial(data)
		if got.Len != want.Len || !onescomp.Congruent(got.Sum, want.Sum) {
			t.Fatalf("split at %d of %d: got %+v, want %+v", cut, n, got, want)
		}
	}
}

func TestPartialAppendAssociative(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 300; trial++ {
		a := NewPartial(randBytes(rng, rng.IntN(64)))
		b := NewPartial(randBytes(rng, rng.IntN(64)))
		c := NewPartial(randBytes(rng, rng.IntN(64)))
		l := a.Append(b).Append(c)
		r := a.Append(b.Append(c))
		if l.Len != r.Len || !onescomp.Congruent(l.Sum, r.Sum) {
			t.Fatalf("associativity: %+v vs %+v", l, r)
		}
	}
}

func TestCombineManyFragments(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	data := randBytes(rng, 48*7)
	var parts []Partial
	for off := 0; off < len(data); off += 48 {
		parts = append(parts, NewPartial(data[off:off+48]))
	}
	got := Combine(parts...)
	want := NewPartial(data)
	if got.Len != want.Len || !onescomp.Congruent(got.Sum, want.Sum) {
		t.Fatalf("Combine over 7 cells: got %+v, want %+v", got, want)
	}
}

func TestAtOffsetParity(t *testing.T) {
	p := Partial{Sum: 0x1234, Len: 10}
	if p.AtOffset(0) != 0x1234 || p.AtOffset(2) != 0x1234 {
		t.Error("even offsets must not swap")
	}
	if p.AtOffset(1) != 0x3412 || p.AtOffset(47) != 0x3412 {
		t.Error("odd offsets must swap")
	}
}

func TestPositionBlindness(t *testing.T) {
	// The defining weakness (§2): reordering word-aligned cells does not
	// change the checksum.
	rng := rand.New(rand.NewPCG(5, 5))
	cells := make([][]byte, 6)
	for i := range cells {
		cells[i] = randBytes(rng, 48)
	}
	var fwd, rev []byte
	for i := range cells {
		fwd = append(fwd, cells[i]...)
		rev = append(rev, cells[len(cells)-1-i]...)
	}
	if !onescomp.Congruent(Sum(fwd), Sum(rev)) {
		t.Error("word-aligned reordering changed the Internet checksum")
	}
}

func TestUpdateMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	data := randBytes(rng, 96)
	sum := Sum(data)
	for trial := 0; trial < 200; trial++ {
		pos := 2 * rng.IntN(len(data)/2)
		from := uint16(data[pos])<<8 | uint16(data[pos+1])
		to := uint16(rng.Uint32())
		data[pos], data[pos+1] = byte(to>>8), byte(to)
		sum = Update(sum, from, to)
		if !onescomp.Congruent(sum, Sum(data)) {
			t.Fatalf("incremental update diverged at trial %d", trial)
		}
	}
}

func TestDigestStreaming(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	data := randBytes(rng, 1000)
	d := New()
	i := 0
	for i < len(data) {
		n := 1 + rng.IntN(37)
		if i+n > len(data) {
			n = len(data) - i
		}
		wrote, err := d.Write(data[i : i+n])
		if err != nil || wrote != n {
			t.Fatalf("Write returned (%d, %v)", wrote, err)
		}
		i += n
	}
	if d.Len() != len(data) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(data))
	}
	if !onescomp.Congruent(d.Sum16(), Sum(data)) {
		t.Fatalf("streaming sum %#04x != one-shot %#04x", d.Sum16(), Sum(data))
	}
	if d.Checksum16() != onescomp.Neg(d.Sum16()) {
		t.Error("Checksum16 must be the complement of Sum16")
	}
	d.Reset()
	if d.Len() != 0 || d.Sum16() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestChecksumZeroNeverTransmitted(t *testing.T) {
	// A quirky consequence of ones-complement: Checksum never returns
	// 0x0000 unless the sum was 0xFFFF; data summing to 0x0000 (e.g. the
	// empty packet) produces 0xFFFF.  UDP exploits this to reserve 0 for
	// "no checksum".  Exhaustive over all 2-byte packets.
	buf := []byte{0, 0}
	for w := 0; w <= 0xFFFF; w++ {
		buf[0], buf[1] = byte(w>>8), byte(w)
		ck := Checksum(buf)
		if w != 0xFFFF && ck == 0 {
			t.Fatalf("word %#04x produced checksum 0x0000", w)
		}
	}
}

func TestQuickSumSplitEquivalence(t *testing.T) {
	f := func(a, b []byte) bool {
		whole := append(append([]byte{}, a...), b...)
		got := NewPartial(a).Append(NewPartial(b))
		return onescomp.Congruent(got.Sum, Sum(whole)) && got.Len == len(whole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
