package inet_test

import (
	"fmt"

	"realsum/internal/inet"
)

// The Internet checksum of a buffer, and the same value assembled from
// partial sums of fragments — the §4.1 composition the splice analysis
// rests on.
func Example() {
	data := []byte{0x45, 0x00, 0x00, 0x30, 0x12, 0x34, 0x40, 0x00}

	whole := inet.Sum(data)
	left := inet.NewPartial(data[:3]) // odd split: the right partial is byte-swapped in
	right := inet.NewPartial(data[3:])
	composed := left.Append(right)

	fmt.Printf("one-shot:  %#04x\n", whole)
	fmt.Printf("composed:  %#04x\n", composed.Sum)
	fmt.Printf("wire form: %#04x\n", inet.Checksum(data))
	// Output:
	// one-shot:  0x9764
	// composed:  0x9764
	// wire form: 0x689b
}

// Streaming use with arbitrary write boundaries.
func ExampleDigest() {
	d := inet.New()
	d.Write([]byte("hello, "))
	d.Write([]byte("world"))
	fmt.Printf("%#04x over %d bytes\n", d.Sum16(), d.Len())
	// Output:
	// 0x404c over 12 bytes
}
