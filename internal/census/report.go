package census

import (
	"fmt"
	"strings"

	"realsum/internal/report"
)

// Report renders the census: the analytic-lane table, the measured
// error mix, the injection-lane table with all three rankings, and the
// pin lines ci.sh greps — one census[...] line per candidate, one for
// the mix, one verdict line for the uniform-vs-corpus comparison.
func (r *Result) Report() string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf(
		"polynomial census: %d candidates, analytic lane at %d bits (BSC p=%g), injection over %s\n\n",
		len(r.Rows), BlockBits, BSCFlipP, strings.Join(Channels(), ",")))

	at := report.Table{
		Title: "census: analytic lane (gf2poly algebra, uniform assumption)",
		Headers: []string{"candidate", "w", "poly", "ord(x)", "odd", "irred",
			"A2", "A3", "P_ud uniform", "P_ud BSC"},
	}
	for _, row := range r.Rows {
		ord := "-"
		if row.Ord != 0 {
			ord = fmt.Sprintf("%d", row.Ord)
		}
		at.AddRow(row.Key, fmt.Sprintf("%d", row.Params.Width),
			fmt.Sprintf("%#x", row.Params.Poly), ord,
			yesNo(row.OddAll), yesNo(row.Irreducible),
			report.Count(row.A2), report.Count(row.A3),
			fmt.Sprintf("%.3g", row.UniformP), fmt.Sprintf("%.3g", row.BSCP))
	}
	b.WriteString(at.Render())
	b.WriteByte('\n')

	b.WriteString(fmt.Sprintf("measured error mix (%s corrupted deliveries): %s\n\n",
		report.Count(r.Mix.Total()), r.Mix.Line()))

	it := report.Table{
		Title: "census: injection lane (netsim fault battery, measured corpus) vs rankings",
		Headers: []string{"candidate", "corrupted", "detected", "undetected",
			"miss rate", "P_ud measured-mix", "rank uni", "rank mix", "rank inj"},
	}
	for _, row := range r.Rows {
		it.AddRow(row.Key, report.Count(row.Corrupted), report.Count(row.Detected),
			report.Count(row.Undetected), missCell(row),
			fmt.Sprintf("%.3g", row.MeasuredP),
			fmt.Sprintf("%d", row.UniformRank), fmt.Sprintf("%d", row.MeasuredRank),
			fmt.Sprintf("%d", row.InjectedRank))
	}
	b.WriteString(it.Render())
	b.WriteByte('\n')

	for _, line := range r.PinLines() {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// PinLines renders the greppable census[...] lines: the measured mix,
// one line per candidate with both lanes' raw numbers, and the
// inversion verdict.
func (r *Result) PinLines() []string {
	out := make([]string, 0, len(r.Rows)+2)
	out = append(out, fmt.Sprintf("census[mix]: total=%d %s", r.Mix.Total(), r.Mix.Line()))
	for _, row := range r.Rows {
		out = append(out, fmt.Sprintf(
			"census[%s]: w=%d a2=%d a3=%d ord=%d uniform=%.3g bsc=%.3g measured=%.3g miss=%d/%d ranks=%d/%d/%d",
			row.Key, row.Params.Width, row.A2, row.A3, row.Ord,
			row.UniformP, row.BSCP, row.MeasuredP,
			row.Undetected, row.Detected+row.Undetected,
			row.UniformRank, row.MeasuredRank, row.InjectedRank))
	}
	out = append(out, r.inversionLine())
	return out
}

// inversionLine is the acceptance verdict: the most extreme
// uniform-vs-corpus ranking flip called out explicitly, or the explicit
// statement that none occurred.
func (r *Result) inversionLine() string {
	if len(r.Inversions) == 0 {
		return "census[inversion]: none - the uniform-assumption ranking survived the measured corpus distributions"
	}
	return fmt.Sprintf("census[inversion]: %d ranking flips; most extreme: %s",
		len(r.Inversions), r.Inversions[0])
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func missCell(row Row) string {
	rate, ok := row.MissRate()
	if !ok {
		return "-"
	}
	return report.Percent(rate)
}
