package census

import (
	"math"

	"realsum/internal/crc"
	"realsum/internal/gf2poly"
	"realsum/internal/netsim"
)

const (
	// BlockBits is the reference message length both lanes normalize to:
	// 2048 bits, the code-block scale the 5G NR selection papers rank
	// candidates at, and the order of the paper's 256-byte TCP segments.
	BlockBits = 2048

	// OrdHorizon bounds the order-of-x search.  2^24 covers the full
	// period of every generator up to width 24, so the NR CRC24 family
	// reports exact orders; the 32-bit generators' orders exceed it and
	// report 0 ("beyond horizon"), which at BlockBits is all the census
	// needs to know.
	OrdHorizon = 1 << 24

	// BSCFlipP is the bit-flip probability of the binary symmetric
	// channel the analytic bound is evaluated at.
	BSCFlipP = 1e-4
)

// Analysis is the analytic lane's verdict on one generator: the algebra
// of §2 computed, not quoted, at the census's reference length.
type Analysis struct {
	// Ord is the multiplicative order of x mod the generator — the 2-bit
	// error coverage horizon — or 0 if it exceeds OrdHorizon.
	Ord uint64
	// OddAll reports (x+1) | g: every odd-weight error detected.
	OddAll bool
	// Irreducible reports whether the generator is irreducible.
	Irreducible bool
	// A2 and A3 count the weight-2 and weight-3 error polynomials over
	// BlockBits positions the generator fails to detect.
	A2, A3 uint64
	// BurstResidual is the undetected fraction for the ≥4-weight,
	// ≤64-bit-span burst class (the measured mix's burst bucket): 0 when
	// the width covers the span, else ≈2^-width.
	BurstResidual float64
	// UniformP is the uniform-data collision floor, 2^-width.
	UniformP float64
	// BSCP is the low-weight truncation of P_ud on a BSC(BSCFlipP) at
	// BlockBits: A2·p²(1−p)^(L−2) + A3·p³(1−p)^(L−3).  Zero means "below
	// the weight-4 terms", not literally zero.
	BSCP float64
}

// Analyze computes the analytic lane for one candidate's parameters.
func Analyze(p crc.Params) Analysis {
	g := p.Generator()
	a := Analysis{
		Ord:         gf2poly.XOrder(g, OrdHorizon),
		OddAll:      gf2poly.DetectsOddErrors(g),
		Irreducible: gf2poly.IsIrreducible(g),
		A2:          gf2poly.UndetectedWeight2(g, BlockBits),
		UniformP:    math.Ldexp(1, -int(p.Width)),
	}
	if a.OddAll {
		// Odd-weight errors can never be codewords: A3 = 0 by parity.
		a.A3 = 0
	} else {
		a.A3 = gf2poly.UndetectedWeight3(g, BlockBits)
	}
	if int(p.Width) >= 64 {
		a.BurstResidual = 0
	} else {
		a.BurstResidual = gf2poly.UndetectedBurstFraction(g, 65)
	}
	pf := BSCFlipP
	l := float64(BlockBits)
	a.BSCP = float64(a.A2)*pf*pf*math.Pow(1-pf, l-2) +
		float64(a.A3)*pf*pf*pf*math.Pow(1-pf, l-3)
	return a
}

// MeasuredP reweights the analytic per-class coverage by a measured
// error-class mix: weight-1 errors are always caught, weight-2/3 flips
// collide at the spectrum rate over uniformly placed positions, short
// bursts at the burst residual, and structureless damage (splices,
// multi-burst) at the uniform floor.  With an empty mix there is no
// evidence to reweight by and the uniform floor is returned unchanged.
func (a Analysis) MeasuredP(mix netsim.ErrClassTally) float64 {
	n := mix.Total()
	if n == 0 {
		return a.UniformP
	}
	l := float64(BlockBits)
	c2 := l * (l - 1) / 2
	c3 := c2 * (l - 2) / 3
	sum := float64(mix.Weight2)*(float64(a.A2)/c2) +
		float64(mix.Weight3)*(float64(a.A3)/c3) +
		float64(mix.Burst)*a.BurstResidual +
		float64(mix.LenChange+mix.Multi)*a.UniformP
	return sum / float64(n)
}
