package census

import (
	"context"
	"testing"

	"realsum/internal/algo"
	"realsum/internal/crc"
	"realsum/internal/netsim"
)

// splitmix fills test buffers deterministically.
func splitmix(seed uint64) func() uint64 {
	return func() uint64 {
		seed += 0x9E3779B97F4A7C15
		z := seed
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		return z ^ z>>31
	}
}

func fillBuf(n int, seed uint64) []byte {
	buf := make([]byte, n)
	rng := splitmix(seed)
	for i := 0; i < n; i += 8 {
		v := rng()
		for j := 0; j < 8 && i+j < n; j++ {
			buf[i+j] = byte(v >> (8 * j))
		}
	}
	return buf
}

// TestDifferentialOracle pins every census candidate's table-driven
// path — the generic-width crc.Table the injection lane scores through,
// including the sub-32-bit NR widths the catalog never exercised before
// — byte-for-byte against the bit-at-a-time reference, over lengths
// from 0 to 64Ki at 8 buffer alignments.
func TestDifferentialOracle(t *testing.T) {
	buf := fillBuf(64<<10+64, 0xce6505)
	lengths := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 32, 33,
		63, 64, 65, 255, 256, 257, 1023, 1024, 4095, 4096, 16384, 64 << 10}
	rng := splitmix(0x0dd5)
	for i := 0; i < 8; i++ {
		lengths = append(lengths, int(rng()%uint64(64<<10)))
	}
	for _, c := range Slate() {
		tab := crc.New(c.Params)
		for _, n := range lengths {
			for align := 0; align < 8; align++ {
				data := buf[align : align+n]
				got := tab.Checksum(data)
				want := c.Params.BitwiseChecksum(data)
				if got != want {
					t.Fatalf("%s: len=%d align=%d: table %#x != bitwise %#x",
						c.Key, n, align, got, want)
				}
			}
		}
	}
}

// TestSlateShape pins the acceptance-criteria surface: at least 8
// candidates, CRC-32 and CRC-32C present, at least 3 NR generators, no
// duplicate keys, and every Params carries a verified check value.
func TestSlateShape(t *testing.T) {
	slate := Slate()
	if len(slate) < 8 {
		t.Fatalf("slate has %d candidates, want >= 8", len(slate))
	}
	keys := map[string]bool{}
	nr := 0
	for _, c := range slate {
		if keys[c.Key] {
			t.Errorf("duplicate key %q", c.Key)
		}
		keys[c.Key] = true
		if c.NR {
			nr++
		}
		if c.Params.Check == 0 {
			t.Errorf("%s: no pinned check value", c.Key)
		}
		if got := c.Params.BitwiseChecksum([]byte("123456789")); got != c.Params.Check {
			t.Errorf("%s: check %#x != pinned %#x", c.Key, got, c.Params.Check)
		}
	}
	if !keys["crc32"] || !keys["crc32c"] {
		t.Error("slate must include crc32 and crc32c")
	}
	if nr < 3 {
		t.Errorf("slate has %d NR generators, want >= 3", nr)
	}
}

// sliceWalker feeds in-memory files, the same shape as netsim's tests.
type sliceWalker struct{ files [][]byte }

func (s sliceWalker) Walk(fn func(string, []byte) error) error {
	for i, f := range s.files {
		if err := fn(string(rune('a'+i)), f); err != nil {
			return err
		}
	}
	return nil
}

// zeroHeavy mimics the corpus hot-spot: long zero runs with sparse
// nonzero bytes — the data shape the paper's measured distributions
// come from.
func zeroHeavy(n int) []byte {
	data := make([]byte, n)
	rng := splitmix(77)
	for i := 0; i < n/50; i++ {
		data[rng()%uint64(n)] = byte(rng())
	}
	return data
}

func censusCorpus() sliceWalker {
	return sliceWalker{files: [][]byte{
		fillBuf(6000, 11), zeroHeavy(8000), fillBuf(3000, 13), zeroHeavy(2000),
	}}
}

// TestCensusWorkersDeterministic is the engine's byte-identity contract
// extended to the census lane: the full report — both lanes, ranks,
// pin lines, inversion verdict — must be byte-identical at workers
// 1, 2 and 8.
func TestCensusWorkersDeterministic(t *testing.T) {
	w := censusCorpus()
	var base string
	for _, workers := range []int{1, 2, 8} {
		res, err := Run(context.Background(), Config{
			Walker: w, Trials: 3, Seed: 42, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := res.Report()
		if workers == 1 {
			base = rep
			continue
		}
		if rep != base {
			t.Errorf("census report differs between workers=1 and workers=%d", workers)
		}
	}
}

// TestCensusInjectionScoresEveryCandidate checks the injection lane's
// accounting: every candidate sees the same corrupted population, and
// detected + undetected always equals it.
func TestCensusInjectionScoresEveryCandidate(t *testing.T) {
	res, err := Run(context.Background(), Config{Walker: censusCorpus(), Trials: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Slate()) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(Slate()))
	}
	corrupted := res.Rows[0].Corrupted
	if corrupted == 0 {
		t.Fatal("census battery produced no corrupted deliveries")
	}
	for _, row := range res.Rows {
		if row.Corrupted != corrupted {
			t.Errorf("%s saw %d corrupted, others %d", row.Key, row.Corrupted, corrupted)
		}
		if row.Detected+row.Undetected != row.Corrupted {
			t.Errorf("%s: detected %d + undetected %d != corrupted %d",
				row.Key, row.Detected, row.Undetected, row.Corrupted)
		}
		if row.UniformRank < 1 || row.MeasuredRank < 1 || row.InjectedRank < 1 {
			t.Errorf("%s: unassigned rank", row.Key)
		}
	}
	if res.Mix.Total() != corrupted {
		t.Errorf("error mix classified %d deliveries, corrupted %d", res.Mix.Total(), corrupted)
	}
}

// TestCensusShardZeroAlloc extends the engine's zero-steady-state
// allocation guard to the census lane: a netsim shard configured with
// the census slate (ten generic-width CRC tables on the scoring hot
// path) must not allocate per corpus file once warmed, and the batched
// flush must stay alloc-free too.
func TestCensusShardZeroAlloc(t *testing.T) {
	specs, unknown := netsim.ChannelsByName(Channels())
	if len(unknown) > 0 {
		t.Fatal(unknown)
	}
	cfg := netsim.Config{
		Channels:   specs,
		Placements: []netsim.Placement{netsim.PlaceE2E},
		Algorithms: Algorithms(),
		Trials:     2,
		Seed:       9,
	}
	sh := netsim.NewShard(cfg)
	agg := netsim.NewTally(cfg)
	data := fillBuf(8192, 0xa110c)
	sh.File(0, data) // warm-up: sizes every reusable buffer and sum arena
	if allocs := testing.AllocsPerRun(20, func() { sh.File(0, data) }); allocs != 0 {
		t.Errorf("%v allocs per census file pass, want 0", allocs)
	}
	if err := sh.Flush(agg); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() { sh.Flush(agg) }); allocs != 0 {
		t.Errorf("%v allocs per census flush, want 0", allocs)
	}
}

// TestRegisterGated pins the registry gating: census-only names resolve
// only after Register/EnsureFor, built-ins are never re-registered, and
// EnsureFor ignores lists without census names (the property the pinned
// default-battery reports rely on).
func TestRegisterGated(t *testing.T) {
	// Order matters: this test observes, then mutates, global registry
	// state; Go runs tests in source order within a file, but keep the
	// observation self-contained anyway.
	EnsureFor([]string{"tcp", "crc32"}) // no census-only name: no-op
	if _, ok := algo.Lookup("crc24a"); ok {
		t.Skip("crc24a already registered by another test binary path")
	}
	EnsureFor([]string{"crc24a"})
	for _, c := range Slate() {
		if _, ok := algo.Lookup(c.Key); !ok {
			t.Errorf("%s not registered after EnsureFor", c.Key)
		}
	}
	Register() // idempotent: must not panic on duplicates
}

// TestScoreRanksAndInversions drives the rank comparison on a
// hand-built tally: a wide candidate that misses everything it is shown
// and a narrow one that catches everything must invert between the
// uniform and injected rankings, and the verdict line must call it out.
func TestScoreRanksAndInversions(t *testing.T) {
	specs, _ := netsim.ChannelsByName(Channels())
	cfg := netsim.Config{
		Channels:   specs,
		Placements: []netsim.Placement{netsim.PlaceE2E},
		Algorithms: Algorithms(),
	}
	tally := netsim.NewTally(cfg)
	ct := &tally.Channels[0]
	ct.Corrupted = 100
	ct.ErrClass.Multi = 100
	p := ct.Placement(netsim.PlaceE2E.String())
	p.Corrupted = 100
	for i := range p.Algos {
		switch p.Algos[i].Name {
		case "crc32k2":
			// The wide candidate misses everything...
			p.Algos[i].Undetected = 100
		default:
			// ...every other candidate catches everything.
			p.Algos[i].Detected = 100
		}
	}
	res := Score(tally)
	var k2, c6 Row
	for _, r := range res.Rows {
		switch r.Key {
		case "crc32k2":
			k2 = r
		case "crc6":
			c6 = r
		}
	}
	if k2.UniformRank >= c6.UniformRank {
		t.Fatalf("uniform lane must prefer the 32-bit candidate: crc32k2 rank %d, crc6 rank %d",
			k2.UniformRank, c6.UniformRank)
	}
	if k2.InjectedRank <= c6.InjectedRank {
		t.Fatalf("injected lane must demote the all-missing candidate: crc32k2 rank %d, crc6 rank %d",
			k2.InjectedRank, c6.InjectedRank)
	}
	if len(res.Inversions) == 0 {
		t.Fatal("uniform-vs-injected flip not reported as an inversion")
	}
	if line := res.inversionLine(); line == "" || line == "census[inversion]: none - the uniform-assumption ranking survived the measured corpus distributions" {
		t.Fatalf("inversion line %q does not call out the flip", line)
	}
}

// TestAnalyzeKnownAlgebra pins the analytic lane's headline facts: the
// CRC-16/CCITT polynomial's x-order (32767), the primitive CRC-11
// having exactly one undetected 2-bit spacing inside 2048 bits, the
// short CRC-6 drowning in them, and the 32-bit generators clean at the
// reference length.
func TestAnalyzeKnownAlgebra(t *testing.T) {
	get := func(key string) Analysis {
		c, ok := ByKey(key)
		if !ok {
			t.Fatalf("no candidate %q", key)
		}
		return Analyze(c.Params)
	}
	if a := get("crc16-xmodem"); a.Ord != 32767 || a.A2 != 0 {
		t.Errorf("crc16-xmodem: ord=%d a2=%d, want ord=32767 a2=0", a.Ord, a.A2)
	}
	if a := get("crc11"); a.Ord != 2047 || a.A2 != 1 {
		t.Errorf("crc11: ord=%d a2=%d, want the primitive order 2047 and exactly 1 pair at 2048 bits", a.Ord, a.A2)
	}
	if a := get("crc6"); a.Ord != 63 || a.A2 == 0 {
		t.Errorf("crc6: ord=%d a2=%d, want ord=63 and a dense A2", a.Ord, a.A2)
	}
	for _, key := range []string{"crc32", "crc32c", "crc32k", "crc32k2"} {
		if a := get(key); a.A2 != 0 {
			t.Errorf("%s: a2=%d at %d bits, want 0", key, a.A2, BlockBits)
		}
	}
	if a := get("crc32c"); !a.OddAll {
		t.Error("crc32c: (x+1)-divisible generator must detect all odd errors")
	}
	if a := get("crc32"); a.OddAll {
		t.Error("crc32: IEEE generator is not (x+1)-divisible")
	}
}
