// Package census runs the polynomial-selection question the ROADMAP
// asks: do CRC generators picked as "best on uniform data" — the 5G NR
// slate of arXiv:2104.02639, Koopman's exhaustive-search winners, the
// deployed IEEE and Castagnoli polynomials — keep their ranking when
// the error distribution is the *measured* one, over the paper's corpus
// and fault models, instead of the uniform assumption?
//
// Two lanes answer it:
//
//   - The analytic lane (analysis.go) works in gf2poly algebra: order of
//     x (the 2-bit coverage horizon), the A2/A3 Hamming-weight spectrum
//     at the NR reference block length, burst residuals, and from those
//     the uniform-data P_ud and a BSC low-weight bound.
//
//   - The injection lane (run.go) replays the netsim fault battery —
//     splices, bursts, bit flips, correlated cell loss — through every
//     candidate simultaneously, riding the engine's e2e scoring path, and
//     counts real misses.  The run's measured error-class mix
//     (netsim.ErrClassTally) reweights the analytic per-class coverage
//     into a corpus-shaped P_ud.
//
// Candidates not in the default algo registry are built from generic
// crc.Params via algo.NewCRC, so they use the same verify-then-race
// kernel tables and zero-alloc Sum path as the built-ins.  Register
// (gated — never an init side effect, so default-battery reports keep
// their pinned shape) publishes them to the registry for netsim/cksumd
// scenarios that name them.
package census

import (
	"realsum/internal/algo"
	"realsum/internal/crc"
)

// Candidate is one census entry: a registry key plus the CRC parameters
// behind it.
type Candidate struct {
	// Key is the algo-registry name the candidate scores under.
	Key string
	// Params is the full Rocksoft parameterization.
	Params crc.Params
	// NR marks the 5G NR slate (3GPP TS 38.212 generators).
	NR bool
	// Builtin marks candidates the default registry already carries;
	// Register skips them.
	Builtin bool
	// Note is a one-phrase provenance for the report.
	Note string
}

// Slate returns the census candidates in report order: the deployed
// 32-bit generators, Koopman's search winners, then the 5G NR family
// by descending width.
func Slate() []Candidate {
	return []Candidate{
		{Key: "crc32", Params: crc.CRC32, Builtin: true, Note: "IEEE 802.3 / AAL5"},
		{Key: "crc32c", Params: crc.CRC32C, Builtin: true, Note: "Castagnoli (iSCSI)"},
		{Key: "crc32k", Params: crc.CRC32K, Note: "Koopman K1"},
		{Key: "crc32k2", Params: crc.CRC32K2, Note: "Koopman K2"},
		{Key: "crc24a", Params: crc.CRC24A, NR: true, Note: "NR transport block"},
		{Key: "crc24b", Params: crc.CRC24B, NR: true, Note: "NR code block"},
		{Key: "crc24c", Params: crc.CRC24C, NR: true, Note: "NR polar DCI"},
		{Key: "crc16-xmodem", Params: crc.CRC16XMODEM, NR: true, Note: "NR CRC16 / XMODEM"},
		{Key: "crc11", Params: crc.CRC11NR, NR: true, Note: "NR polar UCI"},
		{Key: "crc6", Params: crc.CRC6NR, NR: true, Note: "NR short UCI"},
	}
}

// Keys returns the slate's registry keys in report order — the names a
// scenario's algorithms list may use beyond the default registry.
func Keys() []string {
	slate := Slate()
	out := make([]string, len(slate))
	for i, c := range slate {
		out[i] = c.Key
	}
	return out
}

// ByKey returns the slate candidate with the given registry key.
func ByKey(key string) (Candidate, bool) {
	for _, c := range Slate() {
		if c.Key == key {
			return c, true
		}
	}
	return Candidate{}, false
}

// Algorithms builds a fresh algo.Algorithm per candidate, independent of
// the global registry — the injection lane always passes these
// explicitly, so running a census never perturbs the default battery's
// algorithm list (and the pinned reports shaped by it).
func Algorithms() []algo.Algorithm {
	slate := Slate()
	out := make([]algo.Algorithm, len(slate))
	for i, c := range slate {
		out[i] = algo.NewCRC(c.Params, c.Key)
	}
	return out
}

// Register publishes every census-only candidate to the algo registry,
// so scenarios and the CLIs can score them by name alongside the
// built-ins.  Idempotent; built-ins are skipped.
func Register() {
	for _, c := range Slate() {
		if c.Builtin {
			continue
		}
		if _, ok := algo.Lookup(c.Key); ok {
			continue
		}
		algo.Register(algo.NewCRC(c.Params, c.Key))
	}
}

// EnsureFor registers the census slate iff names mentions a census-only
// key — the hook the binaries call before validating a scenario's
// algorithm list, so census names resolve when asked for and the
// registry stays untouched otherwise.
func EnsureFor(names []string) {
	for _, n := range names {
		if c, ok := ByKey(n); ok && !c.Builtin {
			Register()
			return
		}
	}
}
