package census

import (
	"context"
	"fmt"
	"sort"

	"realsum/internal/corpus"
	"realsum/internal/netsim"
	"realsum/internal/sim"
)

// Channels names the fault subset the injection lane replays: the
// splice-forming loss processes (i.i.d., Gilbert-Elliott, geometric
// burst), bit flips and byte bursts — the data-shaped faults the
// paper's §7 ranks algorithms under.  Reorder/misinsert/dup are
// whole-PDU substitutions that every content check scores identically,
// so they add trials without separating candidates.
func Channels() []string {
	return []string{"drop", "drop-ge", "drop-burst", "bitflip", "burst"}
}

// Config parameterizes one census run.
type Config struct {
	// Walker is the corpus the injection lane replays.
	Walker corpus.Walker
	// Trials per (file × channel) (netsim default when 0).
	Trials int
	// Seed is the netsim root seed.
	Seed uint64
	// Workers bounds engine parallelism (default GOMAXPROCS).
	Workers int
	// Progress receives per-file throughput updates (may be nil).
	Progress *sim.Progress
}

// Row is one candidate's verdict across both lanes.
type Row struct {
	Candidate
	Analysis

	// Injection lane, summed over every census channel's e2e placement.
	Corrupted  uint64
	Detected   uint64
	Undetected uint64

	// MeasuredP is the analytic coverage reweighted by the run's
	// measured error-class mix.
	MeasuredP float64

	// Ranks (1 = best, ties share a rank): UniformRank orders by the
	// uniform-data lane (collision floor, BSC bound as tiebreak),
	// MeasuredRank by MeasuredP, InjectedRank by empirical miss rate.
	UniformRank  int
	MeasuredRank int
	InjectedRank int
}

// MissRate is the injected miss rate; ok is false if no corrupted
// delivery was scored.
func (r Row) MissRate() (float64, bool) {
	n := r.Detected + r.Undetected
	if n == 0 {
		return 0, false
	}
	return float64(r.Undetected) / float64(n), true
}

// Result is a complete census: per-candidate rows, the run's measured
// error mix, and the underlying netsim tally.
type Result struct {
	Rows []Row
	Mix  netsim.ErrClassTally
	// Tally is the injection run's full netsim output.
	Tally *netsim.Tally
	// Inversions lists the uniform-vs-measured-corpus ranking flips:
	// candidate pairs the uniform lane orders one way and the injected
	// (or measured-mix) lane orders the other, strictly.  Empty means
	// the uniform ranking survived contact with the corpus.
	Inversions []string
}

// Run executes the census: one netsim pass scoring every slate
// candidate simultaneously over the census channel battery, then the
// analytic lane and the rank comparison.  The candidate algorithms are
// passed to the engine explicitly, so the global registry (and every
// default-battery report pinned on it) is untouched.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	specs, unknown := netsim.ChannelsByName(Channels())
	if len(unknown) > 0 {
		return nil, fmt.Errorf("census: unknown channels %v", unknown)
	}
	tally, err := netsim.Run(ctx, cfg.Walker, netsim.Config{
		Channels:   specs,
		Placements: []netsim.Placement{netsim.PlaceE2E},
		Algorithms: Algorithms(),
		Trials:     cfg.Trials,
		Seed:       cfg.Seed,
		Workers:    cfg.Workers,
		Progress:   cfg.Progress,
	})
	if err != nil {
		return nil, err
	}
	return Score(tally), nil
}

// Score assembles a Result from an injection tally: the analytic lane
// per candidate, the per-candidate miss counts summed over the tally's
// channels (e2e placement), the measured-mix reweighting, and the
// three rankings.  Split from Run so tests can score a hand-built
// tally.
func Score(tally *netsim.Tally) *Result {
	mix := tally.ErrClasses()
	slate := Slate()
	rows := make([]Row, len(slate))
	for i, c := range slate {
		r := Row{Candidate: c, Analysis: Analyze(c.Params)}
		for ci := range tally.Channels {
			p := tally.Channels[ci].Placement(netsim.PlaceE2E.String())
			if p == nil {
				continue
			}
			if a, ok := p.Algo(c.Key); ok {
				r.Corrupted += p.Corrupted
				r.Detected += a.Detected
				r.Undetected += a.Undetected
			}
		}
		r.MeasuredP = r.Analysis.MeasuredP(mix)
		rows[i] = r
	}
	assignRanks(rows)
	res := &Result{Rows: rows, Mix: mix, Tally: tally}
	res.Inversions = inversions(rows)
	return res
}

// rankBy assigns competition ranks (1 = best, ties share) using a
// strict better-than relation.
func rankBy(rows []Row, better func(a, b Row) bool, set func(r *Row, rank int)) {
	for i := range rows {
		rank := 1
		for j := range rows {
			if j != i && better(rows[j], rows[i]) {
				rank++
			}
		}
		set(&rows[i], rank)
	}
}

func assignRanks(rows []Row) {
	rankBy(rows, func(a, b Row) bool {
		if a.UniformP != b.UniformP {
			return a.UniformP < b.UniformP
		}
		return a.BSCP < b.BSCP
	}, func(r *Row, rank int) { r.UniformRank = rank })
	rankBy(rows, func(a, b Row) bool {
		return a.MeasuredP < b.MeasuredP
	}, func(r *Row, rank int) { r.MeasuredRank = rank })
	rankBy(rows, func(a, b Row) bool {
		ar, aok := a.MissRate()
		br, bok := b.MissRate()
		return aok && bok && ar < br
	}, func(r *Row, rank int) { r.InjectedRank = rank })
}

// inversions lists every candidate pair whose uniform-lane order is
// strictly contradicted by a corpus lane, most extreme rank gap first.
func inversions(rows []Row) []string {
	type inv struct {
		text string
		gap  int
	}
	var out []inv
	for i := range rows {
		for j := range rows {
			if rows[i].UniformRank >= rows[j].UniformRank {
				continue // i not strictly better on uniform
			}
			if rows[i].InjectedRank > rows[j].InjectedRank {
				gap := rows[i].InjectedRank - rows[j].InjectedRank
				out = append(out, inv{fmt.Sprintf(
					"%s>%s on uniform (rank %d vs %d) but %s>%s injected (rank %d vs %d)",
					rows[i].Key, rows[j].Key, rows[i].UniformRank, rows[j].UniformRank,
					rows[j].Key, rows[i].Key, rows[j].InjectedRank, rows[i].InjectedRank), gap})
			}
			if rows[i].MeasuredRank > rows[j].MeasuredRank {
				gap := rows[i].MeasuredRank - rows[j].MeasuredRank
				out = append(out, inv{fmt.Sprintf(
					"%s>%s on uniform (rank %d vs %d) but %s>%s on measured mix (rank %d vs %d)",
					rows[i].Key, rows[j].Key, rows[i].UniformRank, rows[j].UniformRank,
					rows[j].Key, rows[i].Key, rows[j].MeasuredRank, rows[i].MeasuredRank), gap})
			}
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].gap > out[b].gap })
	texts := make([]string, len(out))
	for i, o := range out {
		texts[i] = o.text
	}
	return texts
}
