package census

import (
	"testing"

	"realsum/internal/crc"
)

// FuzzCensusParams fuzzes the generic-width table constructor the
// census rides: arbitrary Rocksoft parameters must either be rejected
// with a clean error by crc.TryNew or produce a table whose checksum
// matches the bit-at-a-time reference — never panic, never diverge.
func FuzzCensusParams(f *testing.F) {
	f.Add(uint8(32), uint64(0x04C11DB7), uint64(0xFFFFFFFF), true, true, []byte("123456789"))
	f.Add(uint8(24), uint64(0x864CFB), uint64(0), false, false, []byte("123456789"))
	f.Add(uint8(11), uint64(0x621), uint64(0), false, false, []byte{0, 0, 1})
	f.Add(uint8(64), uint64(0x42F0E1EBA9EA3693), uint64(0), false, false, []byte("@"))
	f.Add(uint8(0), uint64(1), uint64(0), false, false, []byte{})      // invalid width
	f.Add(uint8(16), uint64(0x1021), uint64(0), true, false, []byte{}) // RefIn != RefOut
	f.Add(uint8(8), uint64(0x06), uint64(0), false, false, []byte{7})  // no +1 term
	f.Fuzz(func(t *testing.T, width uint8, poly, init uint64, refIn, refOut bool, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		p := crc.Params{
			Name:   "fuzz",
			Width:  width,
			Poly:   poly,
			RefIn:  refIn,
			RefOut: refOut,
		}
		if width >= 1 && width <= 64 {
			p.Init = init & p.Mask()
		}
		tab, err := crc.TryNew(p)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("TryNew returned an empty error")
			}
			return
		}
		got := tab.Checksum(data)
		want := p.BitwiseChecksum(data)
		if got != want {
			t.Fatalf("w=%d poly=%#x init=%#x ref=%v/%v len=%d: table %#x != bitwise %#x",
				width, poly, p.Init, refIn, refOut, len(data), got, want)
		}
		if len(data) > 1 {
			// Unaligned tail: the same table must agree on a sub-slice too.
			if g, w := tab.Checksum(data[1:]), p.BitwiseChecksum(data[1:]); g != w {
				t.Fatalf("w=%d poly=%#x sub-slice: table %#x != bitwise %#x", width, poly, g, w)
			}
		}
	})
}
