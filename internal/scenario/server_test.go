package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"realsum/internal/netsim"
)

// batchReport runs the scenario as a one-shot netsim.Run — the oracle
// every service path must reproduce byte-identically.
func batchReport(t *testing.T, sc Scenario) string {
	t.Helper()
	tally, err := sc.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return tally.Report()
}

// TestStreamMatchesBatch is the determinism oracle of the service path:
// a scenario executed through the server's concurrent stream engine —
// sharded workers, batched flushes every file — merges to a tally
// byte-identical to the batch netsim.Run at the same seed, at every
// worker count.  Run under -race in CI.
func TestStreamMatchesBatch(t *testing.T) {
	base := Scenario{
		Name:    "oracle",
		Profile: "smeg.stanford.edu:/u1",
		Scale:   0.02,
		Trials:  2,
		Seed:    42,
	}
	want := batchReport(t, base)
	for _, workers := range []int{1, 2, 8} {
		sc := base
		sc.Workers = workers
		sv := NewServer()
		sv.FlushEvery = 1 // maximum batching churn: flush after every file
		streams, err := sv.Add(sc)
		if err != nil {
			t.Fatal(err)
		}
		if err := sv.Run(context.Background()); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		st := streams[0]
		if st.State() != StateDone {
			t.Fatalf("workers %d: state %v, want done", workers, st.State())
		}
		if got := st.Report(); got != want {
			t.Errorf("workers %d: stream tally differs from batch netsim.Run", workers)
		}
	}
}

// TestConcurrentStreams runs eight replicas of one scenario at once:
// replica 0 must reproduce the batch run at the base seed, every other
// replica the batch run at its derived netsim.StreamSeed — concurrency
// may not leak between streams.
func TestConcurrentStreams(t *testing.T) {
	sc := Scenario{
		Name:    "fleet",
		Profile: "smeg.stanford.edu:/u1",
		Scale:   0.01,
		Trials:  1,
		Seed:    7,
		Streams: 8,
		Workers: 2,
	}
	sv := NewServer()
	streams, err := sv.Add(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 8 {
		t.Fatalf("Add registered %d streams, want 8", len(streams))
	}
	if err := sv.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for r, st := range streams {
		if st.State() != StateDone {
			t.Errorf("replica %d: state %v, want done", r, st.State())
			continue
		}
		ref := sc
		ref.Seed = netsim.StreamSeed(sc.Seed, r)
		if st.Seed != ref.Seed {
			t.Errorf("replica %d: seed %d, want %d", r, st.Seed, ref.Seed)
		}
		if got, want := st.Report(), batchReport(t, ref); got != want {
			t.Errorf("replica %d: tally differs from batch run at seed %d", r, ref.Seed)
		}
	}
	if r0, r1 := streams[0].Report(), streams[1].Report(); r0 == r1 {
		t.Error("replicas 0 and 1 produced identical reports; replica seeds are not decorrelating")
	}
}

// TestGracefulShutdownKeepsCompletedTally cancels the server while an
// unbounded stream is still running: the bounded stream that already
// completed must keep its batch-identical tally through the drain, the
// unbounded one must stop without error, and Run must return cleanly.
func TestGracefulShutdownKeepsCompletedTally(t *testing.T) {
	bounded := Scenario{
		Name:    "bounded",
		Profile: "smeg.stanford.edu:/u1",
		Scale:   0.01,
		Trials:  1,
		Seed:    3,
	}
	unbounded := bounded
	unbounded.Name = "unbounded"
	unbounded.Seed = 4
	unbounded.Passes = -1

	want := batchReport(t, bounded)

	sv := NewServer()
	bs, err := sv.Add(bounded)
	if err != nil {
		t.Fatal(err)
	}
	us, err := sv.Add(unbounded)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- sv.Run(ctx) }()

	deadline := time.Now().Add(30 * time.Second)
	for bs[0].State() != StateDone && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if bs[0].State() != StateDone {
		t.Fatal("bounded stream never completed")
	}
	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run after graceful shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if got := bs[0].Report(); got != want {
		t.Error("completed stream's tally changed across the graceful shutdown")
	}
	if s := us[0].State(); s != StateStopped {
		t.Errorf("unbounded stream state %v, want stopped", s)
	}
	if us[0].Passes() == 0 && us[0].Files() == 0 {
		t.Error("unbounded stream never processed anything before shutdown")
	}
}

// TestDurationBudget ends a stream by wall clock: it must come out
// done (budget completed), not stopped.
func TestDurationBudget(t *testing.T) {
	sc := Scenario{
		Name:     "clocked",
		Profile:  "smeg.stanford.edu:/u1",
		Scale:    0.01,
		Trials:   1,
		Passes:   -1,
		Duration: "150ms",
	}
	sv := NewServer()
	streams, err := sv.Add(sc)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := sv.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("run returned after %v, before the 150ms budget", elapsed)
	}
	if s := streams[0].State(); s != StateDone {
		t.Errorf("duration-budgeted stream state %v, want done", s)
	}
}

// TestMetricsAndStatus scrapes the HTTP surface after a finished run:
// the pinned counter lines, the batch-identical shape lines, and the
// JSON status document.
func TestMetricsAndStatus(t *testing.T) {
	sc := Scenario{
		Name:    "scrape",
		Profile: "smeg.stanford.edu:/u1",
		Scale:   0.01,
		Trials:  1,
		Seed:    5,
	}
	lz := sc
	lz.Name = "scrape-lz"
	lz.Compress = true
	sv := NewServer()
	streams, err := sv.Add(sc)
	if err != nil {
		t.Fatal(err)
	}
	lzStreams, err := sv.Add(lz)
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(sv.Handler())
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, w := range []string{
		"cksumd_streams_total 2",
		`cksumd_streams{state="done"} 2`,
		fmt.Sprintf(`cksumd_files_total{stream="0"} %d`, streams[0].Files()),
		`cksumd_trials_total{stream="0",channel="drop"}`,
		`cksumd_undetected_total{stream="0",channel="drop",placement="e2e",algo="crc32"}`,
	} {
		if !strings.Contains(metrics, w) {
			t.Errorf("/metrics missing %q", w)
		}
	}
	// The scrape's shape lines must be exactly the stream tally's — the
	// service view of the batch pin lines.
	for _, line := range streams[0].Tally().ShapeLines() {
		if !strings.Contains(metrics, "stream[0] "+line) {
			t.Errorf("/metrics missing shape line %q", line)
		}
	}
	// The compressed stream's pin lines carry the +lz label.
	for _, line := range lzStreams[0].Tally().ShapeLines() {
		if !strings.HasPrefix(line, "shape[tcp+lz/") {
			t.Errorf("compressed stream shape line %q not labeled tcp+lz", line)
		}
		if !strings.Contains(metrics, fmt.Sprintf("stream[%d] %s", lzStreams[0].ID, line)) {
			t.Errorf("/metrics missing compressed shape line %q", line)
		}
	}

	var status struct {
		UptimeSeconds float64        `json:"uptime_seconds"`
		Streams       []StreamStatus `json:"streams"`
	}
	if err := json.Unmarshal([]byte(get("/status")), &status); err != nil {
		t.Fatalf("/status is not JSON: %v", err)
	}
	if len(status.Streams) != 2 {
		t.Fatalf("/status has %d streams, want 2", len(status.Streams))
	}
	s := status.Streams[0]
	if s.Name != "scrape" || s.State != "done" || s.Files == 0 || s.Trials == 0 {
		t.Errorf("status row = %+v", s)
	}
	if s.Scenario != "profile:smeg.stanford.edu:/u1" {
		t.Errorf("status scenario = %q", s.Scenario)
	}
	if s.Compress {
		t.Error("raw stream's status row claims compression")
	}
	if l := status.Streams[1]; l.Name != "scrape-lz" || !l.Compress {
		t.Errorf("compressed status row = %+v, want scrape-lz with compress=true", l)
	}

	if health := get("/healthz"); !strings.Contains(health, "ok") {
		t.Errorf("/healthz = %q", health)
	}
}
