package scenario

import (
	"strings"
	"testing"
	"time"

	"realsum/internal/algo"
	"realsum/internal/netsim"
)

// TestAlgorithmsGating runs first (Go test order is source order): a
// census-gated name must pass Validate without touching the registry —
// registration happens only when a Config is actually built — so merely
// parsing a profile can never widen the default battery.  It must also
// be in this file above TestLoadGolden, whose census-battery golden
// builds a Config and registers the slate for the rest of the binary.
func TestAlgorithmsGating(t *testing.T) {
	sc := Scenario{Profile: "smeg.stanford.edu:/u1", Algorithms: []string{"crc24a", "crc32"}}
	if err := sc.Validate(); err != nil {
		t.Fatalf("Validate rejected a census candidate: %v", err)
	}
	if _, ok := algo.Lookup("crc24a"); ok {
		t.Fatal("Validate registered the census slate; only Config may")
	}
	cfg, err := sc.Config()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := algo.Lookup("crc24a"); !ok {
		t.Fatal("Config did not register the census slate for a census name")
	}
	if len(cfg.Algorithms) != 2 || cfg.Algorithms[0].Name() != "crc24a" {
		t.Errorf("Config algorithms = %d entries, first %q", len(cfg.Algorithms), cfg.Algorithms[0].Name())
	}
}

// TestLoadGolden pins the parse → validate → Config pipeline over the
// checked-in profile files: every declarative field must land in the
// netsim.Config (or budget accessor) it controls.
func TestLoadGolden(t *testing.T) {
	t.Run("onescomp", func(t *testing.T) {
		sc, err := Load("testdata/onescomp.json")
		if err != nil {
			t.Fatal(err)
		}
		if sc.Name != "onescomp-audit" || sc.Dir != "../../internal/onescomp" {
			t.Errorf("name/dir = %q/%q", sc.Name, sc.Dir)
		}
		cfg, err := sc.Config()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Mode != netsim.ModeTCP {
			t.Errorf("mode = %v, want tcp default", cfg.Mode)
		}
		if len(cfg.Channels) != 4 || cfg.Channels[0].Name != "drop" || cfg.Channels[3].Name != "dup" {
			t.Errorf("channels = %d entries (want drop..dup in battery order)", len(cfg.Channels))
		}
		if cfg.Trials != 2 || cfg.Workers != 2 || cfg.Seed != 0 {
			t.Errorf("trials/workers/seed = %d/%d/%d", cfg.Trials, cfg.Workers, cfg.Seed)
		}
		if cfg.Placements != nil {
			t.Errorf("placements = %v, want nil (netsim default battery)", cfg.Placements)
		}
		if sc.passes() != 1 || sc.streams() != 1 || sc.duration() != 0 {
			t.Errorf("budget = %d passes / %d streams / %v", sc.passes(), sc.streams(), sc.duration())
		}
	})

	t.Run("stanford-sustained", func(t *testing.T) {
		sc, err := Load("testdata/stanford-sustained.json")
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := sc.Config()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Seed != 42 || len(cfg.Channels) != 2 || len(cfg.Placements) != 2 {
			t.Errorf("seed/channels/placements = %d/%d/%d", cfg.Seed, len(cfg.Channels), len(cfg.Placements))
		}
		if sc.streams() != 4 || sc.passes() != 0 || sc.duration() != 2*time.Minute {
			t.Errorf("budget = %d streams / %d passes / %v, want 4 / unbounded / 2m",
				sc.streams(), sc.passes(), sc.duration())
		}
		if _, err := sc.Walker(); err != nil {
			t.Errorf("Walker: %v", err)
		}
	})

	t.Run("onescomp-lz", func(t *testing.T) {
		sc, err := Load("testdata/onescomp-lz.json")
		if err != nil {
			t.Fatal(err)
		}
		if !sc.Compress {
			t.Error("compress flag did not survive Load")
		}
		cfg, err := sc.Config()
		if err != nil {
			t.Fatal(err)
		}
		if !cfg.Compress {
			t.Error("compress flag did not reach netsim.Config")
		}
		if len(cfg.Channels) != 2 || cfg.Channels[0].Name != "drop" || cfg.Channels[1].Name != "burst" {
			t.Errorf("channels = %d entries (want drop,burst)", len(cfg.Channels))
		}
	})

	t.Run("retrans", func(t *testing.T) {
		sc, err := Load("testdata/retrans.json")
		if err != nil {
			t.Fatal(err)
		}
		if !sc.Retrans || sc.MaxRetries != 4 {
			t.Errorf("retrans/max_retries = %v/%d did not survive Load", sc.Retrans, sc.MaxRetries)
		}
		cfg, err := sc.Config()
		if err != nil {
			t.Fatal(err)
		}
		if !cfg.Retrans || cfg.MaxRetries != 4 {
			t.Errorf("retrans/max_retries = %v/%d did not reach netsim.Config", cfg.Retrans, cfg.MaxRetries)
		}
		if len(cfg.Channels) != 3 || cfg.Channels[0].Name != "drop" {
			t.Errorf("channels = %d entries (want the three drop channels)", len(cfg.Channels))
		}
	})

	t.Run("census-battery", func(t *testing.T) {
		sc, err := Load("testdata/census-battery.json")
		if err != nil {
			t.Fatal(err)
		}
		if len(sc.Algorithms) != 3 {
			t.Fatalf("algorithms = %v did not survive Load", sc.Algorithms)
		}
		cfg, err := sc.Config()
		if err != nil {
			t.Fatal(err)
		}
		if len(cfg.Algorithms) != 3 {
			t.Fatalf("Config built %d algorithms, want 3", len(cfg.Algorithms))
		}
		// Request order is preserved — the tally's per-algorithm columns
		// follow the scenario, not the registry.
		for i, want := range []string{"crc32", "crc24a", "crc6"} {
			if got := cfg.Algorithms[i].Name(); got != want {
				t.Errorf("algorithms[%d] = %q, want %q", i, got, want)
			}
		}
	})

	t.Run("udpfrag", func(t *testing.T) {
		sc, err := Load("testdata/udpfrag.json")
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := sc.Config()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Mode != netsim.ModeUDPFrag || cfg.DatagramSize != 2048 || cfg.MTU != 576 {
			t.Errorf("mode/datagram/mtu = %v/%d/%d", cfg.Mode, cfg.DatagramSize, cfg.MTU)
		}
		if sc.passes() != 2 {
			t.Errorf("passes() = %d, want 2", sc.passes())
		}
	})
}

// TestParseErrors pins the validation error strings — unknown names
// come out sorted (the ChannelsByName convention), and unknown JSON
// fields fail instead of silently running a default.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"unknown-channels-sorted", `{"channels": ["zz", "drop", "aa"]}`,
			"unknown channels [aa zz] (want a subset of drop,drop-ge,drop-burst,bitflip,burst,reorder,misinsert,dup)"},
		{"unknown-placement", `{"placements": ["middle"]}`,
			"unknown placements [middle] (want a subset of e2e,segment)"},
		{"unknown-mode", `{"mode": "sctp"}`, `unknown mode "sctp" (want tcp or udpfrag)`},
		{"unknown-algorithms-sorted", `{"algorithms": ["zz", "crc32", "aa"]}`,
			"unknown algorithms [aa zz]"},
		{"duplicate-algorithm", `{"algorithms": ["crc32", "crc32"]}`,
			`duplicate algorithm "crc32"`},
		{"unknown-field", `{"profil": "x"}`, `unknown field "profil"`},
		{"both-sources", `{"profile": "a", "dir": "b"}`, "mutually exclusive"},
		{"bad-duration", `{"duration": "five minutes"}`, `bad duration "five minutes"`},
		{"negative-trials", `{"trials": -1}`, "negative trials -1"},
		{"negative-max-retries", `{"retrans": true, "max_retries": -3}`, "negative max_retries -3"},
		{"bad-passes", `{"passes": -2}`, "passes -2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.json))
			if err == nil {
				t.Fatalf("Parse(%s) succeeded, want error containing %q", tc.json, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestCompressRoundTrip: the compress field survives Parse → Validate →
// Config, defaults to off, and misuse still fails loudly (unknown
// sibling keys rejected alongside it).
func TestCompressRoundTrip(t *testing.T) {
	sc, err := Parse(strings.NewReader(`{"profile": "smeg.stanford.edu:/u1", "compress": true}`))
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Compress {
		t.Error("compress=true did not survive Parse")
	}
	cfg, err := sc.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Compress {
		t.Error("compress did not reach netsim.Config")
	}

	sc, err = Parse(strings.NewReader(`{"profile": "smeg.stanford.edu:/u1"}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Compress {
		t.Error("compress defaulted on")
	}

	if _, err := Parse(strings.NewReader(`{"compress": true, "compres": false}`)); err == nil ||
		!strings.Contains(err.Error(), `unknown field "compres"`) {
		t.Errorf("unknown field beside compress: err = %v", err)
	}
}

func TestWalkerErrors(t *testing.T) {
	if _, err := (Scenario{}).Walker(); err == nil || !strings.Contains(err.Error(), "no corpus source") {
		t.Errorf("empty scenario Walker error = %v", err)
	}
	if _, err := (Scenario{Profile: "no-such-system"}).Walker(); err == nil || !strings.Contains(err.Error(), `unknown profile "no-such-system"`) {
		t.Errorf("unknown profile Walker error = %v", err)
	}
}

// TestParseFlagHelpers covers the shared CLI parsing the two batch
// binaries migrated onto.
func TestParseFlagHelpers(t *testing.T) {
	specs, err := ParseChannels("burst,drop")
	if err != nil || len(specs) != 2 || specs[0].Name != "drop" {
		t.Errorf("ParseChannels = %v specs, err %v (want battery order drop,burst)", len(specs), err)
	}
	if specs, err := ParseChannels(""); specs != nil || err != nil {
		t.Errorf("ParseChannels(\"\") = %v, %v, want nil default", specs, err)
	}
	if _, err := ParseChannels("drop,zz"); err == nil || !strings.Contains(err.Error(), "unknown channels [zz]") {
		t.Errorf("ParseChannels unknown error = %v", err)
	}
	pls, err := ParsePlacements("segment")
	if err != nil || len(pls) != 1 || pls[0] != netsim.PlaceSegment {
		t.Errorf("ParsePlacements = %v, %v", pls, err)
	}
	if _, err := ParsePlacements("e2e,nowhere"); err == nil || !strings.Contains(err.Error(), "unknown placements [nowhere]") {
		t.Errorf("ParsePlacements unknown error = %v", err)
	}
	if m, err := ParseMode(""); m != netsim.ModeTCP || err != nil {
		t.Errorf("ParseMode(\"\") = %v, %v", m, err)
	}
	if m, err := ParseMode("udpfrag"); m != netsim.ModeUDPFrag || err != nil {
		t.Errorf("ParseMode(udpfrag) = %v, %v", m, err)
	}
}
