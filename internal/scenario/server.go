package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"realsum/internal/netsim"
)

// DefaultFlushEvery is the batched-merge cadence: files a shard scores
// between flushes of its private tally into the stream aggregate.
// Larger batches take the aggregate lock less often; smaller ones make
// the metrics fresher.  Either way the final tally is identical — the
// merge is commutative.
const DefaultFlushEvery = 4

// Server owns the verification streams of a cksumd process: the
// file-based scenarios registered before Run, plus any wire streams
// TCP connections open while it serves.  It renders the live metrics
// and status surfaces.
type Server struct {
	// FlushEvery overrides the batched-merge cadence (default
	// DefaultFlushEvery).
	FlushEvery int

	mu      sync.Mutex
	streams []*Stream
	start   time.Time

	// wireWG tracks streams served by TCP connections, so Wait can
	// drain them on shutdown.
	wireWG sync.WaitGroup
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{start: time.Now()}
}

func (sv *Server) flushEvery() int {
	if sv.FlushEvery > 0 {
		return sv.FlushEvery
	}
	return DefaultFlushEvery
}

// Add validates one scenario and registers its replica streams
// (Scenario.Streams of them; replica r runs netsim.StreamSeed(Seed, r)
// over the corpus built at that seed).  The streams run when Run is
// called.
func (sv *Server) Add(sc Scenario) ([]*Stream, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if !sc.HasSource() {
		return nil, fmt.Errorf("scenario: %q has no corpus source (set profile or dir)", sc.Name)
	}
	replicas := make([]*Stream, 0, sc.streams())
	for r := 0; r < sc.streams(); r++ {
		scr := sc
		scr.Seed = netsim.StreamSeed(sc.Seed, r)
		cfg, err := scr.Config()
		if err != nil {
			return nil, err
		}
		walker, err := scr.Walker()
		if err != nil {
			return nil, err
		}
		sv.mu.Lock()
		st := newStream(len(sv.streams), sc, r, cfg, walker, sv.flushEvery())
		sv.streams = append(sv.streams, st)
		sv.mu.Unlock()
		replicas = append(replicas, st)
	}
	return replicas, nil
}

// register adds an externally-fed stream (a TCP connection's) to the
// status surface and returns it.
func (sv *Server) register(sc Scenario, cfg netsim.Config) *Stream {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	st := newStream(len(sv.streams), sc, 0, cfg, nil, sv.flushEvery())
	sv.streams = append(sv.streams, st)
	return st
}

// Streams snapshots the registered streams in ID order.
func (sv *Server) Streams() []*Stream {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return append([]*Stream(nil), sv.streams...)
}

// Run executes every registered file-based stream concurrently and
// blocks until all complete their budgets or ctx is cancelled
// (graceful: every stream drains its queued files and flushes every
// shard before Run returns).  Streams added after Run starts are not
// picked up — wire streams run on their connection goroutines instead.
// The first stream failure is returned; cancellation is not an error.
func (sv *Server) Run(ctx context.Context) error {
	streams := sv.Streams()
	var wg sync.WaitGroup
	errs := make([]error, len(streams))
	for i, st := range streams {
		if st.walker == nil || st.State() != StatePending {
			continue
		}
		wg.Add(1)
		go func(i int, st *Stream) {
			defer wg.Done()
			errs[i] = st.run(ctx, nil)
		}(i, st)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Wait blocks until every wire stream's connection goroutine finishes —
// the drain step of a graceful TCP shutdown.
func (sv *Server) Wait() { sv.wireWG.Wait() }

// Handler serves the service's observation surface:
//
//	/metrics — plain-text counters: service totals, per-stream feed
//	           counters, per (stream × channel × placement × algorithm)
//	           verdicts, and each stream's shape/placement pin lines.
//	/status  — the same as JSON, without the full tally.
//	/healthz — liveness.
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", sv.handleMetrics)
	mux.HandleFunc("/status", sv.handleStatus)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (sv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	streams := sv.Streams()

	byState := map[State]int{}
	for _, st := range streams {
		byState[st.State()]++
	}
	fmt.Fprintf(w, "cksumd_uptime_seconds %.1f\n", time.Since(sv.start).Seconds())
	fmt.Fprintf(w, "cksumd_streams_total %d\n", len(streams))
	states := make([]State, 0, len(byState))
	for s := range byState {
		states = append(states, s)
	}
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
	for _, s := range states {
		fmt.Fprintf(w, "cksumd_streams{state=%q} %d\n", s, byState[s])
	}

	for _, st := range streams {
		id := st.ID
		fmt.Fprintf(w, "cksumd_files_total{stream=\"%d\"} %d\n", id, st.Files())
		fmt.Fprintf(w, "cksumd_bytes_total{stream=\"%d\"} %d\n", id, st.Bytes())
		fmt.Fprintf(w, "cksumd_passes_total{stream=\"%d\"} %d\n", id, st.Passes())

		tally := st.Tally()
		for ci := range tally.Channels {
			c := &tally.Channels[ci]
			fmt.Fprintf(w, "cksumd_trials_total{stream=\"%d\",channel=%q} %d\n", id, c.Name, c.Trials)
			fmt.Fprintf(w, "cksumd_corrupted_total{stream=\"%d\",channel=%q} %d\n", id, c.Name, c.Corrupted)
			for pi := range c.Placements {
				p := &c.Placements[pi]
				for _, a := range p.Algos {
					fmt.Fprintf(w, "cksumd_undetected_total{stream=\"%d\",channel=%q,placement=%q,algo=%q} %d\n",
						id, c.Name, p.Name, a.Name, a.Undetected)
				}
			}
		}
		// The same pin lines the batch CLIs print and ci.sh greps, so a
		// service scrape and a batch run are directly comparable.
		for _, line := range tally.ShapeLines() {
			fmt.Fprintf(w, "stream[%d] %s\n", id, line)
		}
		for _, line := range tally.PlacementLines() {
			fmt.Fprintf(w, "stream[%d] %s\n", id, line)
		}
		for _, line := range tally.RetransLines() {
			fmt.Fprintf(w, "stream[%d] %s\n", id, line)
		}
	}
}

// StreamStatus is one stream's row in the /status document.
type StreamStatus struct {
	ID       int    `json:"id"`
	Name     string `json:"name"`
	Replica  int    `json:"replica"`
	State    string `json:"state"`
	Seed     uint64 `json:"seed"`
	Files    uint64 `json:"files"`
	Bytes    uint64 `json:"bytes"`
	Passes   uint64 `json:"passes"`
	Trials   uint64 `json:"trials"`
	Error    string `json:"error,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	// Compress reports whether the stream's payloads pass the LZ stage
	// before transport encoding.
	Compress bool `json:"compress,omitempty"`
	// Retrans reports whether the stream closes the retransmission loop;
	// MaxRetries is its per-packet retry cap.
	Retrans    bool `json:"retrans,omitempty"`
	MaxRetries int  `json:"max_retries,omitempty"`
}

// Status snapshots every stream for the /status endpoint.
func (sv *Server) Status() []StreamStatus {
	streams := sv.Streams()
	out := make([]StreamStatus, 0, len(streams))
	for _, st := range streams {
		var trials uint64
		tally := st.Tally()
		for i := range tally.Channels {
			trials += tally.Channels[i].Trials
		}
		s := StreamStatus{
			ID:       st.ID,
			Name:     st.Scenario.Name,
			Replica:  st.Replica,
			State:    st.State().String(),
			Seed:     st.Seed,
			Files:    st.Files(),
			Bytes:    st.Bytes(),
			Passes:   st.Passes(),
			Trials:   trials,
			Compress: st.Scenario.Compress,
			Retrans:  st.Scenario.Retrans,
		}
		if s.Retrans {
			s.MaxRetries = tally.MaxRetries
		}
		if err := st.Err(); err != nil {
			s.Error = err.Error()
		}
		if st.Scenario.Profile != "" {
			s.Scenario = "profile:" + st.Scenario.Profile
		} else if st.Scenario.Dir != "" {
			s.Scenario = "dir:" + st.Scenario.Dir
		} else {
			s.Scenario = "wire"
		}
		out = append(out, s)
	}
	return out
}

func (sv *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		UptimeSeconds float64        `json:"uptime_seconds"`
		Streams       []StreamStatus `json:"streams"`
	}{time.Since(sv.start).Seconds(), sv.Status()})
}
