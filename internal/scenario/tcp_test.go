package scenario

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"strings"
	"testing"
)

// TestWireStreamMatchesBatch drives the TCP protocol end to end: a
// client that streams a corpus's files in walk order at a given seed
// must get back the report the batch netsim.Run produces for that
// corpus and seed.
func TestWireStreamMatchesBatch(t *testing.T) {
	batch := Scenario{
		Name:    "wire-oracle",
		Profile: "smeg.stanford.edu:/u1",
		Scale:   0.02,
		Trials:  2,
		Seed:    42,
	}
	want := batchReport(t, batch)

	// Collect the corpus files the batch run walks, to replay as frames.
	walker, err := batch.Walker()
	if err != nil {
		t.Fatal(err)
	}
	var files [][]byte
	if err := walker.Walk(func(path string, data []byte) error {
		files = append(files, append([]byte(nil), data...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("profile walker produced no files")
	}

	sv := NewServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- sv.ServeListener(ctx, ln) }()
	defer func() {
		cancel()
		sv.Wait()
		if err := <-serveDone; err != nil {
			t.Errorf("ServeListener: %v", err)
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Header carries the engine config only; the connection is the corpus.
	hdr, err := json.Marshal(Scenario{Name: "wire-oracle", Trials: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(append(hdr, '\n')); err != nil {
		t.Fatal(err)
	}
	var lenbuf [4]byte
	for _, data := range files {
		binary.BigEndian.PutUint32(lenbuf[:], uint32(len(data)))
		if _, err := conn.Write(lenbuf[:]); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	binary.BigEndian.PutUint32(lenbuf[:], 0)
	if _, err := conn.Write(lenbuf[:]); err != nil {
		t.Fatal(err)
	}

	reply, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(reply); got != want {
		t.Errorf("wire report differs from batch netsim.Run\n--- wire ---\n%s--- batch ---\n%s", got, want)
	}

	// The wire stream must appear on the status surface as done.
	streams := sv.Streams()
	if len(streams) != 1 {
		t.Fatalf("server has %d streams, want 1", len(streams))
	}
	if s := streams[0].State(); s != StateDone {
		t.Errorf("wire stream state %v, want done", s)
	}
	if streams[0].Files() != uint64(len(files)) {
		t.Errorf("wire stream scored %d files, want %d", streams[0].Files(), len(files))
	}
}

// TestWireRejectsCorpusScenarios pins the protocol errors: a header
// naming its own corpus (or replica/pass budgets) is refused, and the
// client reads the error line back.
func TestWireRejectsCorpusScenarios(t *testing.T) {
	sv := NewServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sv.ServeListener(ctx, ln)

	send := func(header string) string {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := io.WriteString(conn, header+"\n"); err != nil {
			t.Fatal(err)
		}
		reply, err := io.ReadAll(conn)
		if err != nil {
			t.Fatal(err)
		}
		return string(reply)
	}

	if got := send(`{"profile": "smeg.stanford.edu:/u1"}`); !strings.Contains(got, "wire streams carry their own corpus") {
		t.Errorf("profile header reply = %q", got)
	}
	if got := send(`{"channels": ["warp"]}`); !strings.Contains(got, "unknown channels [warp]") {
		t.Errorf("bad channel header reply = %q", got)
	}
	sv.Wait()
}
