package scenario

import (
	"context"
	"fmt"
	"sync"
	"time"

	"realsum/internal/corpus"
	"realsum/internal/netsim"
	"realsum/internal/sim"
)

// State is a stream's lifecycle phase.
type State int32

const (
	// StatePending — registered, not yet running.
	StatePending State = iota
	// StateRunning — feeding files through the engine.
	StateRunning
	// StateDone — budget completed and every tally flushed.
	StateDone
	// StateStopped — shut down before the budget completed; tallies for
	// every file fully scored were flushed (drain-on-shutdown).
	StateStopped
	// StateFailed — the corpus walk or wire protocol errored.
	StateFailed
)

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateStopped:
		return "stopped"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Stream is one continuously-running verification pipeline: a scenario
// replica bound to its derived seed, a pool of engine shards, and the
// aggregate tally the shards flush batches into.  Everything the
// metrics endpoint reads — state, counters, the tally snapshot — is
// safe to read while the stream runs.
type Stream struct {
	// ID is the server-assigned stream index (stable, metrics label).
	ID int
	// Scenario is the validated profile this stream runs.
	Scenario Scenario
	// Replica is this stream's index among the scenario's replicas.
	Replica int
	// Seed is netsim.StreamSeed(Scenario.Seed, Replica): replica 0 runs
	// the scenario's own seed and is byte-identical to the batch run.
	Seed uint64

	cfg        netsim.Config
	walker     corpus.Walker // nil for wire streams: the conn supplies files
	flushEvery int

	progress sim.Progress

	mu     sync.Mutex
	state  State
	err    error
	agg    *netsim.Tally
	passes uint64
}

// newStream builds one replica.  cfg and walker must already carry the
// replica seed (the Server derives them from the scenario).
func newStream(id int, sc Scenario, replica int, cfg netsim.Config, walker corpus.Walker, flushEvery int) *Stream {
	return &Stream{
		ID:         id,
		Scenario:   sc,
		Replica:    replica,
		Seed:       cfg.Seed,
		cfg:        cfg,
		walker:     walker,
		flushEvery: flushEvery,
		agg:        netsim.NewTally(cfg),
	}
}

// State returns the stream's lifecycle phase.
func (st *Stream) State() State {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.state
}

// Err returns the failure that moved the stream to StateFailed, if any.
func (st *Stream) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// Files and Bytes report live feed counters; Passes the completed
// corpus passes.
func (st *Stream) Files() uint64 { return st.progress.Files() }

// Bytes reports the corpus bytes fed so far.
func (st *Stream) Bytes() uint64 { return st.progress.Bytes() }

// Passes reports completed corpus passes.
func (st *Stream) Passes() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.passes
}

// Tally snapshots the aggregate — a deep copy, safe to render while the
// stream keeps flushing batches.  Mid-run it reflects only complete
// flushed batches; once the stream is done or stopped it is the final
// merged tally.
func (st *Stream) Tally() *netsim.Tally {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.agg.Clone()
}

func (st *Stream) setState(s State, err error) {
	st.mu.Lock()
	st.state = s
	if err != nil {
		st.err = err
	}
	st.mu.Unlock()
}

// Feed-loop sentinels: both stop cleanly (queued files still drain and
// flush); they differ only in the final state.  errDeadline means the
// Duration budget completed (StateDone), errShutdown that the service
// is cancelling the stream early (StateStopped).
var (
	errDeadline = fmt.Errorf("scenario: duration budget elapsed")
	errShutdown = fmt.Errorf("scenario: shutdown")
)

// run executes the stream until its budget completes or ctx is
// cancelled.  Cancellation is graceful by construction: the feed loop
// stops submitting, the pool drains every queued file, and the final
// flush folds every shard into the aggregate — no tally is lost.
// walker may override the stream's own (the TCP wire path).
func (st *Stream) run(ctx context.Context, walker corpus.Walker) error {
	if walker == nil {
		walker = st.walker
	}
	if walker == nil {
		err := fmt.Errorf("scenario: stream %d has no corpus source", st.ID)
		st.setState(StateFailed, err)
		return err
	}
	st.setState(StateRunning, nil)

	pool := sim.NewPool(sim.PoolOptions{
		Workers:    st.cfg.Workers,
		FlushEvery: st.flushEvery,
		Progress:   &st.progress,
	},
		func() *netsim.Shard { return netsim.NewShard(st.cfg) },
		func(sh *netsim.Shard, idx int, data []byte) { sh.File(idx, data) },
		func(sh *netsim.Shard) {
			st.mu.Lock()
			err := sh.Flush(st.agg)
			st.mu.Unlock()
			if err != nil {
				// Shard and aggregate are both built from st.cfg, so a
				// shape mismatch here is a program bug, not an input error.
				panic(err)
			}
		},
	)

	var deadline time.Time
	if d := st.Scenario.duration(); d > 0 {
		deadline = time.Now().Add(d)
	}
	budget := st.Scenario.passes()

	idx := 0 // runs across passes: pass p is the corpus appended again
	var walkErr error
	completed := true
feed:
	for pass := 0; budget == 0 || pass < budget; pass++ {
		if ctx.Err() != nil {
			completed = false
			break
		}
		walkErr = walker.Walk(func(path string, data []byte) error {
			if ctx.Err() != nil {
				return errShutdown
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				return errDeadline
			}
			if err := pool.Submit(ctx, idx, data); err != nil {
				return errShutdown
			}
			idx++
			return nil
		})
		switch walkErr {
		case nil:
			st.mu.Lock()
			st.passes++
			st.mu.Unlock()
			if !deadline.IsZero() && time.Now().After(deadline) {
				break feed
			}
		case errDeadline:
			walkErr = nil
			break feed
		case errShutdown:
			walkErr = nil
			completed = false
			break feed
		default:
			completed = false
			break feed
		}
	}
	pool.Drain()

	switch {
	case walkErr != nil:
		st.setState(StateFailed, walkErr)
		return walkErr
	case completed:
		st.setState(StateDone, nil)
	default:
		st.setState(StateStopped, nil)
	}
	return nil
}

// Report renders the stream's current tally snapshot.
func (st *Stream) Report() string { return st.Tally().Report() }
