// Package scenario is the declarative control surface over the netsim
// engine: a Scenario names a traffic mix (a synthetic corpus profile or
// a real directory tree), a fault battery, checksum placements, a seed
// and a budget, and validates into the netsim.Config + corpus.Walker
// pair every consumer runs — cmd/netsim and cmd/paper as one-shot batch
// runs, cmd/cksumd as long-running concurrent verification streams.
//
// Scenarios replace the ad-hoc flag cross-product the batch CLIs grew:
// the flags survive as thin aliases that build a Scenario, and a
// profile file (JSON, see Load) expresses the same run declaratively so
// a service can be handed a workload instead of a command line.
//
// Determinism: a Scenario pins everything that shapes the run — corpus
// profile and scale, seed, trials, mode, channels, placements — so two
// executions of the same Scenario are byte-identical, whether batch or
// streamed (see Server), at any worker count.
package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"realsum/internal/algo"
	"realsum/internal/census"
	"realsum/internal/corpus"
	"realsum/internal/netsim"
	"realsum/internal/sim"
)

// Scenario is one declarative verification workload.  The zero value
// (plus a corpus source) is the default batch run: ModeTCP, the full
// channel and placement batteries, 6 trials per (file × channel), one
// corpus pass.
type Scenario struct {
	// Name labels the scenario in status and metrics output.
	Name string `json:"name,omitempty"`

	// Profile names a synthetic corpus profile (corpus.ByName); Dir
	// scores a real directory tree instead.  Exactly one may be set for
	// in-process runs; both stay empty for TCP wire streams, whose
	// corpus arrives on the connection.
	Profile string `json:"profile,omitempty"`
	Dir     string `json:"dir,omitempty"`
	// Scale multiplies the synthetic profile's file count (default 1.0).
	Scale float64 `json:"scale,omitempty"`

	// Mode is the transport encoding: "tcp" (default) or "udpfrag".
	Mode string `json:"mode,omitempty"`
	// Channels is the fault battery subset (default: every channel).
	Channels []string `json:"channels,omitempty"`
	// Placements is the checksum-placement subset (default: every
	// placement; "segment" applies to tcp mode only).
	Placements []string `json:"placements,omitempty"`
	// Algorithms restricts the scored battery to these registry names
	// (default: every registered algorithm).  Census-gated candidates
	// (census.Keys) are accepted too; naming one registers the census
	// slate when the scenario builds its Config, so the default battery
	// is only ever widened on explicit request.
	Algorithms []string `json:"algorithms,omitempty"`

	// Compress enables the LZ payload stage: corpus files are
	// lz-compressed before transport encoding, so the faults hit
	// near-uniform bytes (the paper's Table 7 axis).
	Compress bool `json:"compress,omitempty"`

	// Retrans closes the retransmission loop: detected corruptions and
	// lost trailers are retransmitted through the re-rolled channel,
	// misses are accepted corrupt, and the tally reports residual
	// corrupt bytes per delivered GB plus goodput overhead vs a perfect
	// oracle.  MaxRetries caps the attempts per packet (default 8; must
	// not be negative).
	Retrans    bool `json:"retrans,omitempty"`
	MaxRetries int  `json:"max_retries,omitempty"`

	// Trials per (file × channel) (default 6).
	Trials int `json:"trials,omitempty"`
	// Seed is the root seed; every per-trial fault pattern derives from
	// it.  Replicated streams run netsim.StreamSeed(Seed, replica).
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds engine parallelism per stream (default GOMAXPROCS).
	Workers int `json:"workers,omitempty"`

	// SegmentSize, DatagramSize and MTU override the transport framing
	// (defaults 256, 1024, 280 — the paper's numbers).
	SegmentSize  int `json:"segment_size,omitempty"`
	DatagramSize int `json:"datagram_size,omitempty"`
	MTU          int `json:"mtu,omitempty"`

	// Streams is the number of concurrent replicas a Server runs
	// (default 1).  Replica r is seeded netsim.StreamSeed(Seed, r), so
	// replica 0 reproduces the batch run and the rest decorrelate.
	Streams int `json:"streams,omitempty"`
	// Passes is the per-stream trial budget in whole corpus passes:
	// n > 0 runs exactly n passes, 0 defaults to one pass (the batch
	// equivalence), and -1 runs until the service shuts down or the
	// Duration budget expires.
	Passes int `json:"passes,omitempty"`
	// Duration is the per-stream wall-clock budget ("30s", "5m"); the
	// stream stops feeding files once it elapses.  Empty means no clock
	// budget.
	Duration string `json:"duration,omitempty"`
}

// Load reads one Scenario from a JSON profile file.  Unknown fields are
// errors, so a typo in a profile fails loudly instead of silently
// running the default.
func Load(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return Scenario{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = strings.TrimSuffix(strings.TrimSuffix(path, ".json"), ".scenario")
	}
	return s, nil
}

// Parse decodes one Scenario from JSON and validates it.
func Parse(r io.Reader) (Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, err
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

func (s Scenario) scale() float64 {
	if s.Scale <= 0 {
		return 1.0
	}
	return s.Scale
}

func (s Scenario) streams() int {
	if s.Streams <= 0 {
		return 1
	}
	return s.Streams
}

// passes returns the per-stream pass budget: 0 means unbounded.
func (s Scenario) passes() int {
	switch {
	case s.Passes > 0:
		return s.Passes
	case s.Passes < 0:
		return 0
	default:
		return 1
	}
}

// duration returns the parsed wall-clock budget (0 = none).  Validate
// has already rejected malformed strings.
func (s Scenario) duration() time.Duration {
	if s.Duration == "" {
		return 0
	}
	d, _ := time.ParseDuration(s.Duration)
	return d
}

// HasSource reports whether the scenario names its own corpus (profile
// or directory) — false for wire scenarios fed over a TCP connection.
func (s Scenario) HasSource() bool { return s.Profile != "" || s.Dir != "" }

// Validate checks every declarative field without touching the file
// system: mode, channel and placement names (unknown names error
// sorted, matching the ChannelsByName convention), numeric ranges, the
// duration syntax, and the corpus-source exclusivity.
func (s Scenario) Validate() error {
	if _, err := ParseMode(s.Mode); err != nil {
		return err
	}
	if _, err := channelSpecs(s.Channels); err != nil {
		return err
	}
	if _, err := placements(s.Placements); err != nil {
		return err
	}
	if err := checkAlgorithms(s.Algorithms); err != nil {
		return err
	}
	if s.Profile != "" && s.Dir != "" {
		return fmt.Errorf("scenario: profile %q and dir %q are mutually exclusive", s.Profile, s.Dir)
	}
	if s.Scale < 0 {
		return fmt.Errorf("scenario: negative scale %v", s.Scale)
	}
	if s.Trials < 0 {
		return fmt.Errorf("scenario: negative trials %d", s.Trials)
	}
	if s.MaxRetries < 0 {
		return fmt.Errorf("scenario: negative max_retries %d", s.MaxRetries)
	}
	if s.Workers < 0 {
		return fmt.Errorf("scenario: negative workers %d", s.Workers)
	}
	if s.Streams < 0 {
		return fmt.Errorf("scenario: negative streams %d", s.Streams)
	}
	if s.Passes < -1 {
		return fmt.Errorf("scenario: passes %d (want -1 for unbounded, 0 for the one-pass default, or a positive budget)", s.Passes)
	}
	if s.Duration != "" {
		d, err := time.ParseDuration(s.Duration)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s.Duration, err)
		}
		if d <= 0 {
			return fmt.Errorf("scenario: non-positive duration %q", s.Duration)
		}
	}
	return nil
}

// Config validates the scenario and builds the netsim.Config it runs.
func (s Scenario) Config() (netsim.Config, error) {
	if err := s.Validate(); err != nil {
		return netsim.Config{}, err
	}
	mode, _ := ParseMode(s.Mode)
	chans, _ := channelSpecs(s.Channels)
	pls, _ := placements(s.Placements)
	algs, err := resolveAlgorithms(s.Algorithms)
	if err != nil {
		return netsim.Config{}, err
	}
	return netsim.Config{
		Mode:         mode,
		SegmentSize:  s.SegmentSize,
		DatagramSize: s.DatagramSize,
		MTU:          s.MTU,
		Compress:     s.Compress,
		Retrans:      s.Retrans,
		MaxRetries:   s.MaxRetries,
		Trials:       s.Trials,
		Seed:         s.Seed,
		Channels:     chans,
		Placements:   pls,
		Algorithms:   algs,
		Workers:      s.Workers,
	}, nil
}

// Walker resolves the scenario's corpus source.  Synthetic profiles are
// scaled and their generator seed is XORed with the scenario seed — the
// same convention as cmd/netsim and cmd/paper, so a Scenario at seed S
// sees exactly the corpus the batch CLIs built at -seed S.
func (s Scenario) Walker() (corpus.Walker, error) {
	if s.Dir != "" {
		return corpus.DirWalker(s.Dir), nil
	}
	if s.Profile == "" {
		return nil, errors.New("scenario: no corpus source (set profile or dir)")
	}
	p, ok := corpus.ByName(s.Profile)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown profile %q", s.Profile)
	}
	p = p.Scale(s.scale())
	p.Seed ^= s.Seed
	return p.Build(), nil
}

// Run executes the scenario as one batch netsim.Run — the one-shot path
// behind cmd/netsim and cmd/paper -netsim.  progress may be nil.
func (s Scenario) Run(ctx context.Context, progress *sim.Progress) (*netsim.Tally, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	w, err := s.Walker()
	if err != nil {
		return nil, err
	}
	cfg.Progress = progress
	return netsim.Run(ctx, w, cfg)
}

// ParseMode resolves a transport-mode name ("" defaults to tcp).
func ParseMode(name string) (netsim.Mode, error) {
	switch name {
	case "", "tcp":
		return netsim.ModeTCP, nil
	case "udpfrag":
		return netsim.ModeUDPFrag, nil
	}
	return 0, fmt.Errorf("scenario: unknown mode %q (want tcp or udpfrag)", name)
}

// channelSpecs resolves a channel-name list (nil/empty = the full
// battery, returned as nil so netsim applies its default).
func channelSpecs(names []string) ([]netsim.ChannelSpec, error) {
	if len(names) == 0 {
		return nil, nil
	}
	specs, unknown := netsim.ChannelsByName(names)
	if len(unknown) > 0 {
		return nil, fmt.Errorf("scenario: unknown channels %v (want a subset of %s)",
			unknown, strings.Join(netsim.ChannelNames(), ","))
	}
	return specs, nil
}

// checkAlgorithms validates an algorithm-name subset without touching
// the registry: every name must already be registered or be a
// census-gated candidate (published by resolveAlgorithms when the
// scenario builds its Config).  Unknown names error sorted, duplicates
// error too — netsim tallies are keyed by name, so a repeat would
// shadow its twin's counts.
func checkAlgorithms(names []string) error {
	seen := make(map[string]bool, len(names))
	var unknown []string
	for _, n := range names {
		if seen[n] {
			return fmt.Errorf("scenario: duplicate algorithm %q", n)
		}
		seen[n] = true
		if _, ok := algo.Lookup(n); ok {
			continue
		}
		if _, ok := census.ByKey(n); ok {
			continue
		}
		unknown = append(unknown, n)
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("scenario: unknown algorithms %v (want registry names %s, or census candidates %s)",
			unknown, strings.Join(algo.Names(), ","), strings.Join(census.Keys(), ","))
	}
	return nil
}

// resolveAlgorithms turns a validated name list into engine instances
// (nil/empty = nil, netsim's full-registry default).  Census-gated
// names trigger the slate registration here — the one EnsureFor hook
// every scenario consumer (cmd/netsim, cmd/paper, cksumd streams)
// funnels through.
func resolveAlgorithms(names []string) ([]algo.Algorithm, error) {
	if len(names) == 0 {
		return nil, nil
	}
	census.EnsureFor(names)
	out := make([]algo.Algorithm, 0, len(names))
	for _, n := range names {
		a, ok := algo.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("scenario: algorithm %q vanished after registration", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// placements resolves a placement-name list (nil/empty = the full
// battery, returned as nil so netsim applies its default).
func placements(names []string) ([]netsim.Placement, error) {
	if len(names) == 0 {
		return nil, nil
	}
	pls, unknown := netsim.PlacementsByName(names)
	if len(unknown) > 0 {
		return nil, fmt.Errorf("scenario: unknown placements %v (want a subset of %s)",
			unknown, strings.Join(netsim.PlacementNames(), ","))
	}
	return pls, nil
}

// ParseChannels resolves the comma-separated -channels flag value both
// batch CLIs accept ("" = full battery).  This is the one home of the
// parsing cmd/netsim and cmd/paper used to duplicate.
func ParseChannels(csv string) ([]netsim.ChannelSpec, error) {
	if csv == "" {
		return nil, nil
	}
	return channelSpecs(strings.Split(csv, ","))
}

// ParsePlacements resolves the comma-separated -placement flag value
// ("" = full battery).
func ParsePlacements(csv string) ([]netsim.Placement, error) {
	if csv == "" {
		return nil, nil
	}
	return placements(strings.Split(csv, ","))
}
