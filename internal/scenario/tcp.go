package scenario

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
)

// MaxFrame bounds one wire file frame (and the scenario header line).
// A frame larger than this is a protocol error, not an allocation.
const MaxFrame = 16 << 20

// The cksumd wire protocol, one verification stream per connection:
//
//	line 1:  a JSON Scenario, newline-terminated.  The corpus fields
//	         (profile, dir, scale, streams, passes, duration) must be
//	         unset — the connection itself is the corpus.
//	then:    file frames, each a big-endian uint32 length followed by
//	         that many bytes; every frame is scored as one corpus file.
//	end:     a zero-length frame (or clean EOF).  The server replies
//	         with the merged tally report and closes.
//
// Frames are scored in arrival order with submission indices 0,1,2,…,
// so a client that streams the files of a corpus in walk order receives
// a report byte-identical to the batch netsim.Run over that corpus at
// the same seed.  Backpressure is the transport's: when the stream's
// engine pool is saturated the server stops reading, the TCP window
// closes, and the client's writes stall until scoring catches up.

// connWalker adapts the framed connection to corpus.Walker: one Walk
// consumes the connection's frames.
type connWalker struct {
	r *bufio.Reader
}

func (c connWalker) Walk(fn func(path string, data []byte) error) error {
	var hdr [4]byte
	for i := 0; ; i++ {
		if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil // clean end without the explicit zero frame
			}
			return fmt.Errorf("frame %d header: %w", i, err)
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 {
			return nil
		}
		if n > MaxFrame {
			return fmt.Errorf("frame %d: %d bytes exceeds the %d-byte frame cap", i, n, MaxFrame)
		}
		// The pool scores frames asynchronously, so each frame owns its
		// buffer — the same per-file cost a batch corpus walk pays.
		data := make([]byte, n)
		if _, err := io.ReadFull(c.r, data); err != nil {
			return fmt.Errorf("frame %d body (%d bytes): %w", i, n, err)
		}
		if err := fn(fmt.Sprintf("wire/%d", i), data); err != nil {
			return err
		}
	}
}

// ServeListener accepts wire verification streams until ctx is
// cancelled or the listener fails.  Each connection runs as its own
// stream, registered on the status surface.  Use Wait after cancelling
// to drain in-flight connections.
func (sv *Server) ServeListener(ctx context.Context, ln net.Listener) error {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		sv.wireWG.Add(1)
		go func() {
			defer sv.wireWG.Done()
			defer conn.Close()
			if err := sv.serveConn(ctx, conn); err != nil {
				fmt.Fprintf(conn, "error: %v\n", err)
			}
		}()
	}
}

// serveConn runs one wire stream: parse the scenario header, feed the
// connection's frames through the engine, reply with the report.
func (sv *Server) serveConn(ctx context.Context, conn net.Conn) error {
	br := bufio.NewReaderSize(conn, 64<<10)
	line, err := br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return errors.New("scenario header exceeds the 64 KiB line cap")
	}
	if err != nil {
		return fmt.Errorf("scenario header: %w", err)
	}
	sc, err := Parse(strings.NewReader(string(line)))
	if err != nil {
		return err
	}
	if sc.HasSource() || sc.Streams > 1 || sc.Passes != 0 || sc.Duration != "" {
		return errors.New("scenario: wire streams carry their own corpus (leave profile, dir, streams, passes and duration unset)")
	}
	if sc.Name == "" {
		sc.Name = "wire:" + conn.RemoteAddr().String()
	}
	cfg, err := sc.Config()
	if err != nil {
		return err
	}
	st := sv.register(sc, cfg)
	if err := st.run(ctx, connWalker{r: br}); err != nil {
		return err
	}
	_, err = io.WriteString(conn, st.Report())
	return err
}
