// distribution reproduces a miniature Figure 2: scan a synthetic file
// system, histogram the TCP checksum of every 48-byte cell, and show
// how violently the distribution departs from uniform — then watch the
// convolution prediction (§4.4) fail to explain the measured multi-cell
// distribution because real data is locally correlated.
package main

import (
	"context"
	"fmt"

	"realsum/internal/algo"
	"realsum/internal/corpus"
	"realsum/internal/dist"
	"realsum/internal/report"
	"realsum/internal/sim"
)

func main() {
	ctx := context.Background()
	fs := corpus.StanfordU1().Build()
	fmt.Printf("corpus: %s (%d files, %s bytes)\n\n", fs.Name, len(fs.Specs), report.Count(uint64(fs.TotalBytes())))

	// Single-cell histogram (Figure 2a/b).
	h1, err := sim.CollectCellHistogram(ctx, fs, algo.MustLookup("tcp"), sim.CollectOptions{})
	if err != nil {
		panic(err)
	}
	v, p := h1.PMax()
	fmt.Printf("cells scanned:    %s\n", report.Count(h1.Total()))
	fmt.Printf("distinct values:  %s of 65535\n", report.Count(uint64(h1.Distinct())))
	fmt.Printf("most common:      %#04x at %s (uniform: %s)\n",
		v, report.Percent(p), report.Percent(1.0/65535))
	fmt.Printf("top 65 (0.1%%):    %s of all cells\n\n", report.Percent(h1.TopShare(65)))

	// The most common values, Figure 2(b) style.
	fmt.Println("ten most common cell checksums:")
	for _, vc := range h1.TopK(10) {
		fmt.Printf("  %#04x  %8s  %s\n", vc.Value, report.Count(vc.Count),
			report.Percent(float64(vc.Count)/float64(h1.Total())))
	}

	// Multi-cell blocks vs the i.i.d. prediction (§4.4).
	fmt.Println("\nP(two random k-cell blocks collide):")
	p1 := dist.FromHistogram(h1)
	pk := p1
	for k := 1; k <= 4; k++ {
		g, err := sim.CollectGlobal(ctx, fs, k, sim.CollectOptions{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  k=%d  uniform %-12s predicted %-12s measured %s\n",
			k,
			report.Percent(1.0/65535),
			report.Percent(pk.SelfMatch()),
			report.Percent(g.CongruentProbability()))
		if k < 4 {
			pk = pk.Convolve(p1)
		}
	}
	fmt.Println("\nmeasured stays far above predicted: cells are locally correlated,")
	fmt.Println("which is why the global distribution cannot predict splice failures (§4.5).")
}
