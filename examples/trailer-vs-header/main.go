// trailer-vs-header measures the paper's §5.3 claim on a pathological
// corpus: moving the TCP checksum from the header to a trailer makes it
// dramatically better at catching packet splices, because the checksum
// stops sharing fate with the header it covers and every splice then
// mixes three differently-coloured distributions.
package main

import (
	"context"
	"fmt"

	"realsum/internal/corpus"
	"realsum/internal/report"
	"realsum/internal/sim"
	"realsum/internal/stats"
	"realsum/internal/tcpip"
)

func main() {
	// gmon.out-style profiles: mostly zero words with repeated small
	// counters — the worst realistic case for the header checksum.
	profile := corpus.PathologicalGmon()

	run := func(placement tcpip.Placement) sim.Result {
		res, err := sim.Run(context.Background(), profile.Build(), profile.Name,
			sim.Options{Build: tcpip.BuildOptions{Placement: placement}})
		if err != nil {
			panic(err)
		}
		return res
	}
	hdr := run(tcpip.PlacementHeader)
	trl := run(tcpip.PlacementTrailer)

	fmt.Printf("corpus: %s (%d files, %s packets)\n\n", profile.Name, hdr.Files, report.Count(hdr.Packets))
	t := report.Table{
		Headers: []string{"placement", "remaining", "missed", "rate", "identical rejected"},
	}
	for _, e := range []struct {
		name string
		res  sim.Result
	}{{"header", hdr}, {"trailer", trl}} {
		t.AddRow(e.name,
			report.Count(e.res.Remaining),
			report.Count(e.res.MissedByChecksum),
			report.Percent(e.res.MissRate(e.res.MissedByChecksum)),
			report.Count(e.res.IdenticalFailedChecksum))
	}
	fmt.Print(t.Render())

	hr := hdr.MissRate(hdr.MissedByChecksum)
	tr := trl.MissRate(trl.MissedByChecksum)
	fmt.Printf("\nuniform-data expectation: %s\n", report.Percent(stats.UniformMissRate(16)))
	if tr > 0 {
		fmt.Printf("trailer improvement: %.1fx fewer misses\n", hr/tr)
	} else if hr > 0 {
		fmt.Printf("trailer improvement: header missed %s, trailer missed none\n", report.Count(hdr.MissedByChecksum))
	}
	fmt.Println("\nnote the trade: trailer checksums reject some splices whose data was")
	fmt.Println("identical to an original packet — a possible extra retransmission, never")
	fmt.Println("corruption (§5.3, Table 10).")
}
