// alt-checksum demonstrates RFC 1146 (the paper's reference [13]): TCP
// segments carrying Fletcher checksums instead of the standard Internet
// checksum, negotiated through the Alternate Checksum options.  The
// 8-bit Fletcher fits the existing checksum field; the 16-bit Fletcher
// needs two extra bytes, carried in an Alternate Checksum Data option —
// and placing that option is a small exercise in the same modular
// algebra as the paper's Theorem 7: the check words are solvable only
// because their positional weights differ by a unit mod 65535.
package main

import (
	"fmt"

	"realsum/internal/tcpip"
)

func main() {
	src, dst := [4]byte{127, 0, 0, 1}, [4]byte{127, 0, 0, 1}
	hdr := tcpip.TCPHeader{
		SrcPort: 20, DstPort: 1234,
		Seq: 4096, Ack: 1, Flags: tcpip.FlagACK, Window: 8760,
	}
	payload := []byte("alternate checksums were proposed in RFC 1146; the paper " +
		"measured what Fletcher buys you on real data")

	for _, alg := range []struct {
		id   int
		name string
	}{
		{tcpip.AltSumTCP, "standard TCP checksum"},
		{tcpip.AltSumFletcher8, "8-bit Fletcher (RFC 1146 alg 1)"},
		{tcpip.AltSumFletcher16, "16-bit Fletcher (RFC 1146 alg 2)"},
	} {
		seg, err := tcpip.BuildAltSegment(src, dst, hdr, alg.id, payload)
		if err != nil {
			panic(err)
		}
		got, ok, err := tcpip.VerifyAltSegment(src, dst, seg)
		fmt.Printf("%-32s segment=%3dB dataOffset=%2d verify=(alg=%d ok=%v err=%v)\n",
			alg.name, len(seg), int(seg[12]>>4)*4, got, ok, err)

		// Corrupt one payload byte and watch each algorithm catch it.
		seg[len(seg)-10] ^= 0x42
		_, ok, _ = tcpip.VerifyAltSegment(src, dst, seg)
		fmt.Printf("%-32s after corruption: ok=%v\n\n", "", ok)
	}

	// The 16-bit Fletcher segment carries its extra check word in an
	// option; show the option walk.
	seg, _ := tcpip.BuildAltSegment(src, dst, hdr, tcpip.AltSumFletcher16, payload)
	opts, _ := tcpip.ParseOptions(seg[20 : int(seg[12]>>4)*4])
	fmt.Println("options in the Fletcher-16 segment:")
	for _, o := range opts {
		fmt.Printf("  kind=%-2d data=%x\n", o.Kind, o.Data)
	}
}
