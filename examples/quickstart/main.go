// Quickstart: the checksum and CRC toolbox on a buffer of bytes —
// one-shot sums, streaming digests, incremental update, and the
// partial-sum composition the splice analysis is built on.
package main

import (
	"fmt"

	"realsum/internal/crc"
	"realsum/internal/fletcher"
	"realsum/internal/inet"
	"realsum/internal/onescomp"
)

func main() {
	data := []byte("Checksum and CRC algorithms have historically been studied " +
		"under the assumption that the data fed to the algorithms was uniformly distributed.")

	// --- The Internet (TCP/IP) checksum -----------------------------
	sum := inet.Sum(data)        // raw ones-complement sum
	field := inet.Checksum(data) // complemented wire-format value
	fmt.Printf("Internet checksum: sum=%#04x field=%#04x\n", sum, field)

	// Partial sums compose: split anywhere, add the pieces (§4.1).
	a, b := inet.NewPartial(data[:77]), inet.NewPartial(data[77:])
	fmt.Printf("composed from two fragments: %#04x (match=%v)\n",
		a.Append(b).Sum, onescomp.Congruent(a.Append(b).Sum, sum))

	// Incremental update after editing two bytes (RFC 1624).
	edited := append([]byte(nil), data...)
	edited[10], edited[11] = 'X', 'Y'
	from := uint16(data[10])<<8 | uint16(data[11])
	to := uint16('X')<<8 | uint16('Y')
	fmt.Printf("incremental update: %#04x (recompute %#04x)\n",
		inet.Update(sum, from, to), inet.Sum(edited))

	// --- Fletcher's checksum, both moduli ---------------------------
	for _, m := range []fletcher.Mod{fletcher.Mod255, fletcher.Mod256} {
		p := m.Sum(data)
		fmt.Printf("Fletcher mod %d: A=%#02x B=%#02x packed=%#04x\n", m, p.A, p.B, p.Checksum16())
	}

	// Fletcher check bytes: make the buffer sum to zero.
	buf := append(append([]byte(nil), data...), 0, 0)
	x, y := fletcher.Mod256.CheckBytes(buf, 0)
	buf[len(buf)-2], buf[len(buf)-1] = x, y
	fmt.Printf("Fletcher-256 check bytes %#02x %#02x verify=%v\n", x, y, fletcher.Mod256.Verify(buf))

	// --- CRCs --------------------------------------------------------
	for _, p := range []crc.Params{crc.CRC32, crc.CRC10, crc.CRC16CCITT, crc.CRC8HEC} {
		t := crc.New(p)
		fmt.Printf("%-12s = %#x\n", p.Name, t.Checksum(data))
	}

	// CRC combination: CRC(A‖B) from CRC(A), CRC(B) and len(B) alone.
	t32 := crc.New(crc.CRC32)
	combined := t32.Combine(t32.Checksum(data[:50]), t32.Checksum(data[50:]), len(data)-50)
	fmt.Printf("CRC-32 combine: %#08x (one-shot %#08x)\n", combined, t32.Checksum(data))

	// Streaming digests for io-style use.
	d := t32.NewDigest()
	d.Write(data[:33])
	d.Write(data[33:])
	fmt.Printf("CRC-32 streaming: %#08x after %d bytes\n", d.CRC(), d.Len())
}
