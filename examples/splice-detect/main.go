// splice-detect walks through the paper's core scenario by hand: build
// two adjacent TCP/IP packets, segment them into AAL5 cells, enumerate
// every packet splice, and show which layers of checking — AAL5
// framing, TCP/IP header syntax, the AAL5 CRC-32 and the TCP checksum —
// catch the damage.
package main

import (
	"fmt"

	"realsum/internal/atm"
	"realsum/internal/splice"
	"realsum/internal/tcpip"
)

func main() {
	// Two adjacent 160-byte segments of a simulated FTP transfer,
	// carrying zero-heavy "profiling data"-style payloads (§5.5), which
	// maximize checksum-congruent cells.
	payload := func(seed byte) []byte {
		p := make([]byte, 160)
		for i := 0; i < len(p); i += 32 {
			p[i+1] = 1 // sparse identical counters
		}
		p[5] = seed
		return p
	}
	flow := tcpip.NewLoopbackFlow(tcpip.BuildOptions{})
	p1 := flow.NextPacket(nil, payload(0))
	p2 := flow.NextPacket(nil, payload(0))

	cells1, _ := atm.Segment(p1, 0, 32)
	cells2, _ := atm.Segment(p2, 0, 32)
	fmt.Printf("packet 1: %d bytes -> %d cells\n", len(p1), len(cells1))
	fmt.Printf("packet 2: %d bytes -> %d cells\n\n", len(p2), len(cells2))

	// Build the Figure-1 splice by hand: keep packet 1's header cell
	// and a middle cell, then jump to packet 2's cells.
	handSplice := []atm.Cell{cells1[0], cells1[2], cells2[2], cells2[3], cells2[len(cells2)-1]}
	if _, err := atm.CheckFraming(handSplice); err != nil {
		fmt.Printf("hand-built splice rejected by AAL5 framing: %v\n", err)
	} else if _, err := atm.Reassemble(handSplice); err != nil {
		fmt.Printf("hand-built splice passed framing, caught by: %v\n", err)
	} else {
		fmt.Println("hand-built splice reassembled cleanly — up to TCP to catch it!")
	}

	// Now the exhaustive enumeration the paper runs: every possible
	// splice of this adjacent pair, classified.
	cfg := splice.Config{Opts: tcpip.BuildOptions{}, CheckCRC: true}
	c := splice.EnumeratePair(p1, p2, cfg)
	fmt.Printf("\nexhaustive enumeration of the pair:\n")
	fmt.Printf("  candidate splices:    %d\n", c.Total)
	fmt.Printf("  caught by header:     %d\n", c.CaughtByHeader)
	fmt.Printf("  identical data:       %d (benign)\n", c.Identical)
	fmt.Printf("  remaining (corrupt):  %d\n", c.Remaining)
	fmt.Printf("  missed by AAL5 CRC:   %d\n", c.MissedByCRC)
	fmt.Printf("  missed by TCP sum:    %d\n", c.MissedByChecksum)

	// The same pair under a trailer checksum (§5.3): the checksum no
	// longer shares a cell with the header it covers.
	tcfg := splice.Config{
		Opts: tcpip.BuildOptions{Placement: tcpip.PlacementTrailer},
	}
	tflow := tcpip.NewLoopbackFlow(tcfg.Opts)
	tp1 := tflow.NextPacket(nil, payload(0))
	tp2 := tflow.NextPacket(nil, payload(0))
	tc := splice.EnumeratePair(tp1, tp2, tcfg)
	fmt.Printf("\nsame pair, trailer checksum:\n")
	fmt.Printf("  missed by checksum:   %d (header mode: %d)\n", tc.MissedByChecksum, c.MissedByChecksum)
	fmt.Printf("  identical rejected:   %d (spurious but harmless, §5.3)\n", tc.IdenticalFailedChecksum)
}
