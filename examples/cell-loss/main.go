// cell-loss demonstrates §7's "good news": whether a splice can even
// reach the checksums depends on how the ATM switch drops cells.  It
// streams a file transfer through five loss processes — plain random
// cell loss, two correlated processes at the same average rate
// (Gilbert–Elliott and geometric burst-of-cells), Partial Packet
// Discard, and Early Packet Discard — and shows which receiver-side
// check (if any) ends up carrying the load.
package main

import (
	"fmt"

	"realsum/internal/lossim"
	"realsum/internal/report"
	"realsum/internal/tcpip"
)

func main() {
	// A transfer of zero-heavy data — the kind the paper shows is most
	// splice-prone.
	flow := tcpip.NewLoopbackFlow(tcpip.BuildOptions{})
	var packets [][]byte
	for i := 0; i < 4000; i++ {
		payload := make([]byte, 256)
		for j := 0; j+2 <= len(payload); j += 32 {
			payload[j+1] = 1 // sparse counters, gmon.out-style
		}
		payload[i%256] = byte(i)
		packets = append(packets, flow.NextPacket(nil, payload))
	}

	const cellLoss = 0.12
	pktLoss := 1 - pow(1-cellLoss, 7) // matched severity for EPD

	fmt.Printf("transfer: %d packets of 256 bytes (7 cells each), %.0f%% cell loss\n\n",
		len(packets), 100*cellLoss)

	t := report.Table{
		Headers: []string{"policy", "intact", "clean-lost", "len/framing", "CRC", "hdr", "cksum", "undetected"},
	}
	for _, pol := range []lossim.Policy{
		lossim.RandomLoss{P: cellLoss},
		lossim.GilbertElliottAt(cellLoss, 5, 0.02, 0.8),
		lossim.BurstDropAt(cellLoss, 4),
		&lossim.PPD{P: cellLoss},
		&lossim.EPD{PacketP: pktLoss},
	} {
		s := lossim.Run(packets, pol, tcpip.BuildOptions{}, 0xCE11)
		t.AddRow(pol.Name(),
			report.Count(s.Intact), report.Count(s.CleanLost),
			report.Count(s.DetectedFraming), report.Count(s.DetectedCRC),
			report.Count(s.DetectedHeader), report.Count(s.DetectedChecksum),
			report.Count(s.Undetected))
	}
	fmt.Print(t.Render())

	fmt.Println(`
reading the table:
  random — damaged PDUs reach the receiver; nearly all trip the AAL5
           length check, and only the rare loss pattern that removes
           exactly the right cells forms a splice the CRC/checksum must
           catch.  That rarity is §7's first piece of good news — and
           why Tables 1-3 enumerate every candidate splice instead of
           waiting for the loss process to produce one.
  ge, burstdrop — the same average loss, correlated: drops cluster into
           runs that straddle packet boundaries, so fewer packets are
           touched but each is hit harder — more clean losses and a
           different splice-candidate mix at identical severity.
  ppd    — stranded cells always trip the AAL5 length check; the CRC
           is never consulted (§7: "a trailer will only be delivered
           if all preceding cells have been delivered").
  epd    — packets are dropped whole: damage simply cannot reach the
           receiver, so checksums only ever see intact packets.`)
}

func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}
