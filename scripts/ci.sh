#!/usr/bin/env bash
# CI gate: vet, build, full test suite, the race detector over the
# concurrent packages and the workers-determinism guarantees, and a
# small-scale smoke of both benchmark JSON emitters.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (sim, splice, netsim) =="
go test -race ./internal/sim/... ./internal/splice/... ./internal/netsim/...

echo "== go test -race (workers determinism) =="
go test -race -run 'Deterministic' ./internal/sim/... ./internal/experiments/... ./internal/netsim/...

echo "== netsim smoke (workers 1 vs 4 determinism under -race) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go run -race ./cmd/paper -netsim -scale 0.02 -workers 1 > "$tmp/netsim.w1"
go run -race ./cmd/paper -netsim -scale 0.02 -workers 4 > "$tmp/netsim.w4"
diff "$tmp/netsim.w1" "$tmp/netsim.w4" || { echo "netsim output differs across worker counts"; exit 1; }
test -s "$tmp/netsim.w1" || { echo "empty netsim report"; exit 1; }

echo "== bench smoke (splice + dist + netsim, scale 0.02) =="
go run ./cmd/paper -benchjson "$tmp/BENCH_splice.json" -scale 0.02 -benchiters 1
go run ./cmd/paper -benchdistjson "$tmp/BENCH_dist.json" -scale 0.02 -benchiters 1
go run ./cmd/paper -benchnetsimjson "$tmp/BENCH_netsim.json" -scale 0.02 -benchiters 1
for f in BENCH_splice.json BENCH_dist.json BENCH_netsim.json; do
    test -s "$tmp/$f" || { echo "missing $f"; exit 1; }
done

echo "CI OK"
