#!/usr/bin/env bash
# CI gate: vet, build, full test suite, and the race detector over the
# concurrent packages (the sharded simulation driver and the splice
# enumerator it fans out to).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (sim, splice) =="
go test -race ./internal/sim/... ./internal/splice/...

echo "CI OK"
