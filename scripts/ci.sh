#!/usr/bin/env bash
# CI gate: vet, build, full test suite, the race detector over the
# concurrent packages and the workers-determinism guarantees, and a
# small-scale smoke of both benchmark JSON emitters.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (sim, splice) =="
go test -race ./internal/sim/... ./internal/splice/...

echo "== go test -race (workers determinism) =="
go test -race -run 'Deterministic' ./internal/sim/... ./internal/experiments/...

echo "== bench smoke (splice + dist, scale 0.02) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/paper -benchjson "$tmp/BENCH_splice.json" -scale 0.02 -benchiters 1
go run ./cmd/paper -benchdistjson "$tmp/BENCH_dist.json" -scale 0.02 -benchiters 1
for f in BENCH_splice.json BENCH_dist.json; do
    test -s "$tmp/$f" || { echo "missing $f"; exit 1; }
done

echo "CI OK"
