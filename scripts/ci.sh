#!/usr/bin/env bash
# CI gate: vet, build, full test suite, the race detector over the
# concurrent packages, the workers-determinism guarantees and the CRC
# kernel layer, and a small-scale smoke of the benchmark JSON emitters.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== fuzz seed-corpus smoke =="
# Runs every Fuzz target over its f.Add seeds plus the checked-in
# testdata corpora in normal (non-fuzzing) mode — FuzzLZRoundTrip's
# testdata/fuzz seeds included.  `go test -fuzz` only accepts a single
# package, so the smoke uses -run across the tree.
go test -count=1 -run Fuzz ./...

echo "== CRC kernel differential smoke (-race) =="
# Every kernel against the scalar oracle and hash/crc32, the
# auto-selection contract (whatever New raced to must verify against
# the oracle), and the registry's Sum/KernelControl surface, all under
# the race detector — tables are shared across netsim workers.
go test -race -count=1 -run 'Sparse|Kernel|SumZeroAlloc|SumHelper' ./internal/crc/ ./internal/algo/

echo "== go test -race (sim, splice, netsim) =="
go test -race ./internal/sim/... ./internal/splice/... ./internal/netsim/...

echo "== go test -race (workers determinism) =="
go test -race -run 'Deterministic' ./internal/sim/... ./internal/experiments/... ./internal/netsim/...

echo "== netsim smoke (workers 1 vs 4 determinism under -race, full battery incl. correlated loss + dup) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go run -race ./cmd/paper -netsim -scale 0.02 -workers 1 > "$tmp/netsim.w1"
go run -race ./cmd/paper -netsim -scale 0.02 -workers 4 > "$tmp/netsim.w4"
diff "$tmp/netsim.w1" "$tmp/netsim.w4" || { echo "netsim output differs across worker counts"; exit 1; }
test -s "$tmp/netsim.w1" || { echo "empty netsim report"; exit 1; }
for ch in drop-ge drop-burst dup; do
    grep -q "shape\[tcp/$ch\]" "$tmp/netsim.w1" || { echo "netsim report missing channel $ch"; exit 1; }
done
grep -q "i.i.d. vs correlated cell loss at matched average rate" "$tmp/netsim.w1" \
    || { echo "netsim report missing the loss-contrast section"; exit 1; }
grep -q "end-to-end vs per-segment checksum placement" "$tmp/netsim.w1" \
    || { echo "netsim report missing the placement-contrast section"; exit 1; }
grep -q "raw vs lz-compressed payload" "$tmp/netsim.w1" \
    || { echo "netsim report missing the raw-vs-compressed contrast section"; exit 1; }
grep -q "^shape\[tcp+lz/burst\]" "$tmp/netsim.w1" \
    || { echo "netsim report missing the compressed-pass shape lines"; exit 1; }
# The raw TCP pass closes the retransmission loop: per-algorithm retrans
# tables, the residual-vs-miss-rate contrast over the matched-rate drop
# channels, and the greppable retrans[...] pin lines.
grep -q "retransmission loop (retry cap 8)" "$tmp/netsim.w1" \
    || { echo "netsim report missing the retransmission tables"; exit 1; }
grep -q "residual error vs miss rate, i.i.d. vs correlated loss at matched rate" "$tmp/netsim.w1" \
    || { echo "netsim report missing the residual-contrast section"; exit 1; }
grep -q "^retrans\[tcp/drop\]" "$tmp/netsim.w1" \
    || { echo "netsim report missing the retrans pin lines"; exit 1; }

echo "== netsim -dir corpus walk pin (internal/onescomp, -race) =="
# A real-directory-tree run over a small stable in-repo tree, with its
# shape lines pinned: any regression in the corpus walk, the sender
# packetization, or the trial seed chain shows up as a diff here.  The
# pinned numbers change whenever internal/onescomp's files change —
# update them alongside.
go run -race ./cmd/netsim -dir internal/onescomp -channels drop,drop-ge,drop-burst,dup -trials 2 -workers 2 > "$tmp/netsim.dir"
grep "^shape" "$tmp/netsim.dir" > "$tmp/netsim.dir.shapes"
diff - "$tmp/netsim.dir.shapes" <<'SHAPES' || { echo "netsim -dir shape lines changed"; exit 1; }
shape[tcp/drop]: corrupted=4 weakest=tcp(0) tcp=0 crc32=0
shape[tcp/drop-ge]: corrupted=4 weakest=tcp(0) tcp=0 crc32=0
shape[tcp/drop-burst]: corrupted=1 weakest=tcp(0) tcp=0 crc32=0
shape[tcp/dup]: corrupted=54 weakest=tcp(0) tcp=0 crc32=0
SHAPES
# The per-segment placement lines are pinned the same way.  dup's
# seg_corrupted=53 < corrupted=54 is the prefix invariant: a delivered
# segment is the PDU prefix at the claimed length, so a PDU corrupted
# only past that prefix counts e2e but not per-segment.
grep "^placement" "$tmp/netsim.dir" > "$tmp/netsim.dir.placements"
diff - "$tmp/netsim.dir.placements" <<'PLACEMENTS' || { echo "netsim -dir placement lines changed"; exit 1; }
placement[tcp/drop]: seg_corrupted=4 tcp=0 f255=0 crc32=0 header=0 trailer=0
placement[tcp/drop-ge]: seg_corrupted=4 tcp=0 f255=0 crc32=0 header=0 trailer=0
placement[tcp/drop-burst]: seg_corrupted=1 tcp=0 f255=0 crc32=0 header=0 trailer=0
placement[tcp/dup]: seg_corrupted=53 tcp=0 f255=0 crc32=0 header=0 trailer=0
PLACEMENTS

echo "== netsim -retrans pin (internal/onescomp, -race) =="
# The same walk with the retransmission loop closed.  Two things are
# pinned: the shape/placement lines must be byte-identical to the
# open-loop pins above (retry channel rolls come from the RetrySeed
# sub-stream after all primary RNG use, so -retrans cannot perturb an
# open-loop counter), and the retrans[...] lines themselves — per
# channel, the tcp/crc32/oracle transmission counts, residual bytes and
# cap-exhausted PDUs.
go run -race ./cmd/netsim -dir internal/onescomp -channels drop,drop-ge,drop-burst,dup -trials 2 -workers 2 -retrans > "$tmp/netsim.ret"
grep -E "^(shape|placement)" "$tmp/netsim.ret" > "$tmp/netsim.ret.open"
grep -E "^(shape|placement)" "$tmp/netsim.dir" > "$tmp/netsim.dir.open"
diff "$tmp/netsim.dir.open" "$tmp/netsim.ret.open" \
    || { echo "-retrans perturbed the open-loop shape/placement pins"; exit 1; }
grep "^retrans" "$tmp/netsim.ret" > "$tmp/netsim.ret.lines"
diff - "$tmp/netsim.ret.lines" <<'RETRANS' || { echo "netsim -retrans pin lines changed"; exit 1; }
retrans[tcp/drop]: cap=8 pdus=106 tcp_tx=111 tcp_resid=0 crc32_tx=111 crc32_resid=0 oracle_tx=111 exhausted=0
retrans[tcp/drop-ge]: cap=8 pdus=106 tcp_tx=111 tcp_resid=0 crc32_tx=111 crc32_resid=0 oracle_tx=111 exhausted=0
retrans[tcp/drop-burst]: cap=8 pdus=106 tcp_tx=109 tcp_resid=0 crc32_tx=109 crc32_resid=0 oracle_tx=109 exhausted=0
retrans[tcp/dup]: cap=8 pdus=106 tcp_tx=221 tcp_resid=0 crc32_tx=221 crc32_resid=0 oracle_tx=221 exhausted=1
RETRANS

echo "== netsim -compress pin (internal/onescomp, -race) =="
# The same walk with the lz payload stage on: the compressed payloads
# are roughly half the size (fewer cells per file, hence the lower
# counts), the labels gain the +lz suffix, and the ratio line in the
# header is pinned too — any drift in the compressor's output bytes,
# the per-file ratio accounting or the trial seed chain shows here.
go run -race ./cmd/netsim -dir internal/onescomp -channels drop,drop-ge,drop-burst,dup -trials 2 -workers 2 -compress > "$tmp/netsim.lz"
grep "^lz payload stage" "$tmp/netsim.lz" > "$tmp/netsim.lz.ratio"
diff - "$tmp/netsim.lz.ratio" <<'RATIO' || { echo "netsim -compress ratio line changed"; exit 1; }
lz payload stage: 2 files, 13,295 -> 7,086 bytes, ratio min=47.420% mean=53.298% max=63.550%
RATIO
grep "^shape" "$tmp/netsim.lz" > "$tmp/netsim.lz.shapes"
diff - "$tmp/netsim.lz.shapes" <<'SHAPES' || { echo "netsim -compress shape lines changed"; exit 1; }
shape[tcp+lz/drop]: corrupted=1 weakest=tcp(0) tcp=0 crc32=0
shape[tcp+lz/drop-ge]: corrupted=3 weakest=tcp(0) tcp=0 crc32=0
shape[tcp+lz/drop-burst]: corrupted=1 weakest=tcp(0) tcp=0 crc32=0
shape[tcp+lz/dup]: corrupted=30 weakest=tcp(0) tcp=0 crc32=0
SHAPES
grep "^placement" "$tmp/netsim.lz" > "$tmp/netsim.lz.placements"
diff - "$tmp/netsim.lz.placements" <<'PLACEMENTS' || { echo "netsim -compress placement lines changed"; exit 1; }
placement[tcp+lz/drop]: seg_corrupted=1 tcp=0 f255=0 crc32=0 header=0 trailer=0
placement[tcp+lz/drop-ge]: seg_corrupted=3 tcp=0 f255=0 crc32=0 header=0 trailer=0
placement[tcp+lz/drop-burst]: seg_corrupted=1 tcp=0 f255=0 crc32=0 header=0 trailer=0
placement[tcp+lz/dup]: seg_corrupted=29 tcp=0 f255=0 crc32=0 header=0 trailer=0
PLACEMENTS

echo "== cksumd service smoke (scenario run, metrics scrape, graceful shutdown, -race) =="
# The service path must reproduce the batch pin lines above: cksumd runs
# the same onescomp scenario as a verification stream, the /metrics
# scrape must carry the identical shape/placement lines, and SIGINT must
# drain and exit 0 under the race detector.
go build -race -o "$tmp/cksumd" ./cmd/cksumd
cat > "$tmp/onescomp.scenario.json" <<'EOF'
{"name":"ci-smoke","dir":"internal/onescomp","channels":["drop","drop-ge","drop-burst","dup"],"retrans":true,"trials":2,"workers":2}
EOF
"$tmp/cksumd" "$tmp/onescomp.scenario.json" > "$tmp/cksumd.log" 2>&1 &
ckpid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's|^cksumd: metrics on \(http://[^ ]*\)$|\1|p' "$tmp/cksumd.log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "cksumd never reported its metrics address"; kill "$ckpid" 2>/dev/null; exit 1; }
for _ in $(seq 1 300); do
    "$tmp/cksumd" -scrape "$addr" > "$tmp/cksumd.metrics" 2>/dev/null || true
    grep -q 'cksumd_streams{state="done"} 1' "$tmp/cksumd.metrics" && break
    sleep 0.1
done
grep '^stream\[0\] shape' "$tmp/cksumd.metrics" > "$tmp/cksumd.shapes" || true
diff - "$tmp/cksumd.shapes" <<'SHAPES' || { echo "cksumd scrape shape lines differ from the batch pins"; kill "$ckpid" 2>/dev/null; exit 1; }
stream[0] shape[tcp/drop]: corrupted=4 weakest=tcp(0) tcp=0 crc32=0
stream[0] shape[tcp/drop-ge]: corrupted=4 weakest=tcp(0) tcp=0 crc32=0
stream[0] shape[tcp/drop-burst]: corrupted=1 weakest=tcp(0) tcp=0 crc32=0
stream[0] shape[tcp/dup]: corrupted=54 weakest=tcp(0) tcp=0 crc32=0
SHAPES
grep -q 'cksumd_trials_total{stream="0",channel="drop"} 4' "$tmp/cksumd.metrics" \
    || { echo "cksumd metrics missing the per-channel trial counter"; kill "$ckpid" 2>/dev/null; exit 1; }
# The scenario closes the retransmission loop, so the scrape must carry
# the retrans[...] pin lines — byte-identical to the batch -retrans pins.
grep '^stream\[0\] retrans' "$tmp/cksumd.metrics" > "$tmp/cksumd.retrans" || true
diff - "$tmp/cksumd.retrans" <<'RETRANS' || { echo "cksumd scrape retrans lines differ from the batch pins"; kill "$ckpid" 2>/dev/null; exit 1; }
stream[0] retrans[tcp/drop]: cap=8 pdus=106 tcp_tx=111 tcp_resid=0 crc32_tx=111 crc32_resid=0 oracle_tx=111 exhausted=0
stream[0] retrans[tcp/drop-ge]: cap=8 pdus=106 tcp_tx=111 tcp_resid=0 crc32_tx=111 crc32_resid=0 oracle_tx=111 exhausted=0
stream[0] retrans[tcp/drop-burst]: cap=8 pdus=106 tcp_tx=109 tcp_resid=0 crc32_tx=109 crc32_resid=0 oracle_tx=109 exhausted=0
stream[0] retrans[tcp/dup]: cap=8 pdus=106 tcp_tx=221 tcp_resid=0 crc32_tx=221 crc32_resid=0 oracle_tx=221 exhausted=1
RETRANS
kill -INT "$ckpid"
wait "$ckpid" || { echo "cksumd did not exit 0 after SIGINT"; exit 1; }

echo "== bench smoke (splice + dist + netsim, scale 0.02) =="
go run ./cmd/paper -benchjson "$tmp/BENCH_splice.json" -scale 0.02 -benchiters 1
go run ./cmd/paper -benchdistjson "$tmp/BENCH_dist.json" -scale 0.02 -benchiters 1
go run ./cmd/paper -benchnetsimjson "$tmp/BENCH_netsim.json" -scale 0.02 -benchiters 1
for f in BENCH_splice.json BENCH_dist.json BENCH_netsim.json; do
    test -s "$tmp/$f" || { echo "missing $f"; exit 1; }
done
grep -q '"retrans": true' "$tmp/BENCH_netsim.json" \
    || { echo "BENCH_netsim.json missing the retransmission-loop records"; exit 1; }
grep -q '"retrans_mean_tx_per_pdu"' "$tmp/BENCH_netsim.json" \
    || { echo "BENCH_netsim.json retrans records missing the tcp-lane metrics"; exit 1; }

echo "== benchalgo smoke (every registry algorithm emits a record) =="
go run ./cmd/paper -benchalgojson "$tmp/BENCH_algo.json" -benchiters 1
test -s "$tmp/BENCH_algo.json" || { echo "missing BENCH_algo.json"; exit 1; }
for a in $(go run ./cmd/cksum -a list); do
    grep -q "\"algo\": \"$a\"" "$tmp/BENCH_algo.json" \
        || { echo "BENCH_algo.json missing algorithm $a"; exit 1; }
done
grep -q '"kernel_speedup_vs_slicing8"' "$tmp/BENCH_algo.json" \
    || { echo "BENCH_algo.json missing the kernel-speedup baseline"; exit 1; }

echo "== census smoke (polynomial-selection census, workers 1 vs 4 determinism, -race) =="
# The census report — both lanes, ranks and the inversion verdict — must
# be byte-identical at any worker count, and its greppable census[...]
# lines are pinned: any drift in the gf2poly spectrum math, the
# generic-width CRC tables, the error-class mix or the injection seed
# chain shows up as a diff here.
go run -race ./cmd/paper -census -scale 0.02 -workers 1 > "$tmp/census.w1"
go run -race ./cmd/paper -census -scale 0.02 -workers 4 > "$tmp/census.w4"
diff "$tmp/census.w1" "$tmp/census.w4" || { echo "census output differs across worker counts"; exit 1; }
grep "^census\[" "$tmp/census.w1" > "$tmp/census.pins"
diff - "$tmp/census.pins" <<'CENSUS' || { echo "census pin lines changed"; exit 1; }
census[mix]: total=1760 len=295 w1=0 w2=639 w3=0 burst=631 multi=195
census[crc32]: w=32 a2=0 a3=0 ord=0 uniform=2.33e-10 bsc=0 measured=1.48e-10 miss=0/1760 ranks=1/1/1
census[crc32c]: w=32 a2=0 a3=0 ord=0 uniform=2.33e-10 bsc=0 measured=1.48e-10 miss=0/1760 ranks=1/1/1
census[crc32k]: w=32 a2=0 a3=0 ord=114695 uniform=2.33e-10 bsc=0 measured=1.48e-10 miss=0/1760 ranks=1/1/1
census[crc32k2]: w=32 a2=0 a3=0 ord=65538 uniform=2.33e-10 bsc=0 measured=1.48e-10 miss=0/1760 ranks=1/1/1
census[crc24a]: w=24 a2=0 a3=0 ord=8388607 uniform=5.96e-08 bsc=0 measured=3.8e-08 miss=0/1760 ranks=5/5/1
census[crc24b]: w=24 a2=0 a3=0 ord=8388607 uniform=5.96e-08 bsc=0 measured=3.8e-08 miss=0/1760 ranks=5/5/1
census[crc24c]: w=24 a2=0 a3=0 ord=28086 uniform=5.96e-08 bsc=0 measured=3.8e-08 miss=0/1760 ranks=5/5/1
census[crc16-xmodem]: w=16 a2=0 a3=0 ord=32767 uniform=1.53e-05 bsc=0 measured=9.72e-06 miss=0/1760 ranks=8/8/1
census[crc11]: w=11 a2=1 a3=699050 ord=2047 uniform=0.000488 bsc=5.78e-07 measured=0.000311 miss=0/1760 ranks=9/9/1
census[crc6]: w=6 a2=32272 a3=22363729 ord=63 uniform=0.0156 bsc=0.000281 measured=0.0155 miss=9/1760 ranks=10/10/10
census[inversion]: none - the uniform-assumption ranking survived the measured corpus distributions
CENSUS

echo "== benchcensus smoke (one record per candidate, both lanes) =="
go run ./cmd/paper -benchcensusjson "$tmp/BENCH_census.json" -scale 0.02
test -s "$tmp/BENCH_census.json" || { echo "missing BENCH_census.json"; exit 1; }
[ "$(grep -c '"name": "census_' "$tmp/BENCH_census.json")" -eq 10 ] \
    || { echo "BENCH_census.json must carry one record per slate candidate"; exit 1; }
for k in crc32 crc32c crc32k crc32k2 crc24a crc24b crc24c crc16-xmodem crc11 crc6; do
    grep -q "\"name\": \"census_$k\"" "$tmp/BENCH_census.json" \
        || { echo "BENCH_census.json missing candidate $k"; exit 1; }
done
for field in uniform_p bsc_p measured_p miss_rate rank_uniform rank_injected inversions; do
    grep -q "\"$field\"" "$tmp/BENCH_census.json" \
        || { echo "BENCH_census.json records missing the $field field"; exit 1; }
done

echo "CI OK"
