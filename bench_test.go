// Package realsum's root benchmark harness regenerates every table and
// figure of the paper's evaluation (one Benchmark per experiment) plus
// the §2 throughput comparison and the design-choice ablations called
// out in DESIGN.md.  Each benchmark iteration runs the complete
// experiment at a reduced corpus scale and reports the headline shape
// metric via b.ReportMetric, so `go test -bench=.` both times the
// harness and prints the reproduced results.
//
// The full-scale numbers live in EXPERIMENTS.md and come from
// `go run ./cmd/paper`.
package realsum

import (
	"fmt"
	"testing"

	"realsum/internal/corpus"
	"realsum/internal/crc"
	"realsum/internal/errmodel"
	"realsum/internal/experiments"
	"realsum/internal/fletcher"
	"realsum/internal/inet"
	"realsum/internal/splice"
	"realsum/internal/stats"
	"realsum/internal/tcpip"
)

// benchScale keeps each iteration under a couple of seconds.
var benchScale = experiments.Config{Scale: 0.05}

// distScale gives the distribution experiments enough blocks.
var distScale = experiments.Config{Scale: 0.25}

// ---------------------------------------------------------------------
// Tables 1–3: the CRC + TCP splice classification per site.

func benchSpliceTables(b *testing.B, substr string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		results := experiments.Tables123(benchScale)
		var missed, remaining uint64
		for _, r := range results {
			missed += r.MissedByChecksum
			remaining += r.Remaining
		}
		if remaining == 0 {
			b.Fatal("no splices")
		}
		b.ReportMetric(float64(missed)/float64(remaining), "tcp-miss-rate")
	}
}

func BenchmarkTable1_NSC(b *testing.B)      { benchSpliceTables(b, "nsc") }
func BenchmarkTable2_SICS(b *testing.B)     { benchSpliceTables(b, "sics") }
func BenchmarkTable3_Stanford(b *testing.B) { benchSpliceTables(b, "stanford") }

// ---------------------------------------------------------------------
// Figure 2: checksum distribution over cell blocks + prediction.

func BenchmarkFigure2_Distribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Figure2(distScale)
		b.ReportMetric(d.PMaxP, "pmax-cell")
		b.ReportMetric(d.TopShare, "top65-share")
	}
}

// ---------------------------------------------------------------------
// Figure 3: TCP vs Fletcher cell PDFs.

func BenchmarkFigure3_FletcherPDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Figure3(distScale)
		b.ReportMetric(d["IP/TCP"][0], "pmax-tcp")
		b.ReportMetric(d["F255"][0], "pmax-f255")
		b.ReportMetric(d["F256"][0], "pmax-f256")
	}
}

// ---------------------------------------------------------------------
// Table 4: uniform vs predicted vs measured match probabilities.

func BenchmarkTable4_MatchProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4(distScale)
		b.ReportMetric(rows[0].Measured, "k1-measured")
		b.ReportMetric(rows[3].Measured, "k4-measured")
		b.ReportMetric(rows[3].Predicted, "k4-predicted")
	}
}

// ---------------------------------------------------------------------
// Table 5: locality of congruence.

func BenchmarkTable5_Locality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table5(distScale)
		b.ReportMetric(rows[0].Global, "k1-global")
		b.ReportMetric(rows[0].Local, "k1-local")
		b.ReportMetric(rows[0].ExcludingIdentical, "k1-excl-identical")
	}
}

// ---------------------------------------------------------------------
// Table 6: predicted vs actual splice failure by substitution length.

func BenchmarkTable6_PredictVsActual(b *testing.B) {
	for i := 0; i < b.N; i++ {
		systems := experiments.Table6(benchScale)
		s := systems[0]
		b.ReportMetric(s.ExcludeIdentical[0], "k1-predicted")
		b.ReportMetric(s.Actual[0], "k1-actual")
	}
}

// ---------------------------------------------------------------------
// Table 7: compression restores near-uniform behaviour.

func BenchmarkTable7_Compressed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain, comp := experiments.Table7(benchScale)
		b.ReportMetric(plain.MissRate(plain.MissedByChecksum), "plain-miss-rate")
		b.ReportMetric(comp.MissRate(comp.MissedByChecksum), "compressed-miss-rate")
	}
}

// ---------------------------------------------------------------------
// Table 8: Fletcher vs TCP.

func BenchmarkTable8_Fletcher(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table8(benchScale)
		var tcp, f255, f256, rem uint64
		for _, r := range rows {
			tcp += r.Get("tcp").MissedByChecksum
			f255 += r.Get("f255").MissedByChecksum
			f256 += r.Get("f256").MissedByChecksum
			rem += r.Get("tcp").Remaining
		}
		b.ReportMetric(float64(tcp)/float64(rem), "tcp-miss-rate")
		b.ReportMetric(float64(f255)/float64(rem), "f255-miss-rate")
		b.ReportMetric(float64(f256)/float64(rem), "f256-miss-rate")
	}
}

// ---------------------------------------------------------------------
// Table 9: trailer vs header placement.

func BenchmarkTable9_Trailer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table9(benchScale)
		var hdr, trl, rem uint64
		for _, r := range rows {
			hdr += r.Header.MissedByChecksum
			trl += r.Trailer.MissedByChecksum
			rem += r.Header.Remaining
		}
		b.ReportMetric(float64(hdr)/float64(rem), "header-miss-rate")
		b.ReportMetric(float64(trl)/float64(rem), "trailer-miss-rate")
	}
}

// ---------------------------------------------------------------------
// Table 10: the false-positive/false-negative 2×2.

func BenchmarkTable10_FalsePositive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Table10(benchScale)
		b.ReportMetric(float64(d.Header.IdenticalFailedChecksum), "header-rejected-identical")
		b.ReportMetric(float64(d.Trailer.IdenticalFailedChecksum), "trailer-rejected-identical")
		b.ReportMetric(float64(d.Trailer.MissedByChecksum), "trailer-missed")
	}
}

// ---------------------------------------------------------------------
// §7: effective bits of the TCP checksum on real data vs CRC-10.

func BenchmarkEffectiveBits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := experiments.Tables123(benchScale)
		rows := experiments.EffectiveBits(results)
		worst := 64.0
		for _, r := range rows {
			if r.MissRate > 0 && r.EffectiveBits < worst {
				worst = r.EffectiveBits
			}
		}
		b.ReportMetric(worst, "worst-effective-bits")
		b.ReportMetric(10, "crc10-uniform-bits")
	}
}

// ---------------------------------------------------------------------
// §6.2 / §6.3 ablations.

func BenchmarkAblation_ZeroedIPHeader(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Ablations(benchScale)
		b.ReportMetric(d.Baseline.MissRate(d.Baseline.MissedByChecksum), "filled-miss-rate")
		b.ReportMetric(d.ZeroIPHeader.MissRate(d.ZeroIPHeader.MissedByChecksum), "zeroed-miss-rate")
	}
}

func BenchmarkAblation_NoInvert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Ablations(benchScale)
		b.ReportMetric(d.Baseline.MissRate(d.Baseline.MissedByChecksum), "inverted-miss-rate")
		b.ReportMetric(d.NoInvert.MissRate(d.NoInvert.MissedByChecksum), "noninverted-miss-rate")
	}
}

// ---------------------------------------------------------------------
// §5.5 pathological data patterns.

func BenchmarkPathological_PBM(b *testing.B)   { benchPathological(b, "pbm") }
func BenchmarkPathological_PSHex(b *testing.B) { benchPathological(b, "pshex") }
func BenchmarkPathological_Gmon(b *testing.B)  { benchPathological(b, "gmon") }

func benchPathological(b *testing.B, which string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows := experiments.Pathological(experiments.Config{Scale: 0.25})
		for _, r := range rows {
			if !containsStr(r.Corpus, which) {
				continue
			}
			tcp, f255, f256 := r.Get("tcp"), r.Get("f255"), r.Get("f256")
			b.ReportMetric(tcp.MissRate(tcp.MissedByChecksum), "tcp-miss-rate")
			b.ReportMetric(f255.MissRate(f255.MissedByChecksum), "f255-miss-rate")
			b.ReportMetric(f256.MissRate(f256.MissedByChecksum), "f256-miss-rate")
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// §2 throughput claims: "the TCP checksum requires one or two additions
// per machine word... Fletcher's sum requires two additions per byte...
// measurements have typically shown the TCP checksum to be two to four
// times faster."

// sinks defeat dead-code elimination in the throughput benches.
var (
	sinkU16  uint16
	sinkU64  uint64
	sinkPair fletcher.Pair
)

func benchThroughput(b *testing.B, n int, f func(data []byte)) {
	b.Helper()
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i * 131)
	}
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(data)
	}
}

func BenchmarkThroughputTCP_256(b *testing.B) {
	benchThroughput(b, 256, func(d []byte) { sinkU16 = inet.Sum(d) })
}
func BenchmarkThroughputTCP_1500(b *testing.B) {
	benchThroughput(b, 1500, func(d []byte) { sinkU16 = inet.Sum(d) })
}
func BenchmarkThroughputTCP_64K(b *testing.B) {
	benchThroughput(b, 64*1024, func(d []byte) { sinkU16 = inet.Sum(d) })
}
func BenchmarkThroughputFletcher255_256(b *testing.B) {
	benchThroughput(b, 256, func(d []byte) { sinkPair = fletcher.Mod255.Sum(d) })
}
func BenchmarkThroughputFletcher255_1500(b *testing.B) {
	benchThroughput(b, 1500, func(d []byte) { sinkPair = fletcher.Mod255.Sum(d) })
}
func BenchmarkThroughputFletcher256_1500(b *testing.B) {
	benchThroughput(b, 1500, func(d []byte) { sinkPair = fletcher.Mod256.Sum(d) })
}
func BenchmarkThroughputFletcher255_64K(b *testing.B) {
	benchThroughput(b, 64*1024, func(d []byte) { sinkPair = fletcher.Mod255.Sum(d) })
}

var crc32tab = crc.New(crc.CRC32)
var crc10tab = crc.New(crc.CRC10)

func BenchmarkThroughputCRC32_1500(b *testing.B) {
	benchThroughput(b, 1500, func(d []byte) { sinkU64 = crc32tab.Checksum(d) })
}
func BenchmarkThroughputCRC32_64K(b *testing.B) {
	benchThroughput(b, 64*1024, func(d []byte) { sinkU64 = crc32tab.Checksum(d) })
}
func BenchmarkThroughputCRC10_1500(b *testing.B) {
	benchThroughput(b, 1500, func(d []byte) { sinkU64 = crc10tab.Checksum(d) })
}

// ---------------------------------------------------------------------
// DESIGN.md ablation: incremental per-cell checksum state vs full
// materialized recomputation per splice.

func BenchmarkAblation_PartialVsFull(b *testing.B) {
	// One adjacent pair of 256-byte packets enumerated with the
	// incremental engine...
	flow := tcpip.NewLoopbackFlow(tcpip.BuildOptions{})
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i % 7)
	}
	p1 := flow.NextPacket(nil, payload)
	p2 := flow.NextPacket(nil, payload)
	cfg := splice.Config{Opts: tcpip.BuildOptions{}, CheckCRC: true}
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			splice.EnumeratePair(p1, p2, cfg)
		}
	})
	// ...vs the steady-state production path: one warm enumerator reused
	// across pairs (affine CRC slot tables + zero allocation).
	b.Run("reused-enumerator", func(b *testing.B) {
		e := splice.NewEnumerator()
		e.Pair(p1, p2, cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Pair(p1, p2, cfg)
		}
	})
	// ...vs the naive cost model: 924 splices × recomputing sum+CRC
	// over the full 336-byte PDU each.
	b.Run("full-recompute", func(b *testing.B) {
		pdu := make([]byte, 7*48)
		copy(pdu, p1)
		for i := 0; i < b.N; i++ {
			for s := 0; s < 924; s++ {
				inet.Sum(pdu)
				crc32tab.Checksum(pdu)
			}
		}
	})
}

// ---------------------------------------------------------------------
// Extension experiments: §7's end-to-end loss-policy argument and the
// Adler-32 generation comparison.

func BenchmarkExtension_EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.EndToEnd(experiments.Config{Scale: 0.3})
		for _, r := range rows {
			switch r.Policy {
			case "random":
				b.ReportMetric(float64(r.Stats.DetectedCRC+r.Stats.DetectedChecksum), "random-splice-candidates")
			case "epd":
				b.ReportMetric(float64(r.Stats.DetectedFraming+r.Stats.DetectedCRC), "epd-damaged-pdus")
			}
		}
	}
}

func BenchmarkExtension_AdlerComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AdlerComparison(experiments.Config{Scale: 0.25})
		for _, r := range rows {
			switch r.Algorithm {
			case "IP/TCP":
				b.ReportMetric(r.Collision, "tcp16-collision")
			case "Adler-32":
				b.ReportMetric(r.Collision, "adler32-collision")
			case "CRC-32":
				b.ReportMetric(r.Collision, "crc32-collision")
			}
		}
	}
}

// ---------------------------------------------------------------------
// Error-model benches: the classical guarantees under §7's alternative
// models.

func BenchmarkErrorModelBursts(b *testing.B) {
	data := make([]byte, 1500)
	for i := range data {
		data[i] = byte(i)
	}
	for i := 0; i < b.N; i++ {
		missedTCP := errmodel.Measure(errmodel.TCPCheck(), errmodel.Burst{Bits: 15}, data, 2000, 1)
		missedCRC := errmodel.Measure(errmodel.CRCCheck(crc.CRC32), errmodel.Burst{Bits: 32}, data, 2000, 2)
		b.ReportMetric(float64(missedTCP), "tcp-15bit-burst-misses")
		b.ReportMetric(float64(missedCRC), "crc32-32bit-burst-misses")
	}
}

func BenchmarkErrorModelGarbage(b *testing.B) {
	data := make([]byte, 1500)
	for i := range data {
		data[i] = byte(i * 37)
	}
	for i := 0; i < b.N; i++ {
		missed := errmodel.Measure(errmodel.CRCCheck(crc.CRC10), errmodel.Garbage{Bytes: 64}, data, 50_000, 3)
		b.ReportMetric(float64(missed)/50_000, "crc10-garbage-miss-rate")
		b.ReportMetric(stats.UniformMissRate(10), "crc10-expected")
	}
}

// ---------------------------------------------------------------------
// Sanity: the bench corpus profiles build (guards against silent scale
// regressions making every bench measure an empty corpus).

func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var total int64
		for _, p := range corpus.AllProfiles() {
			fs := p.Scale(0.05).Build()
			total += fs.TotalBytes()
		}
		if total == 0 {
			b.Fatal("empty corpora")
		}
		b.ReportMetric(float64(total), "corpus-bytes")
	}
}

// TestBenchHarnessSmoke keeps `go test ./...` exercising the root
// harness without -bench: it runs the cheapest experiment end to end.
func TestBenchHarnessSmoke(t *testing.T) {
	plain, comp := experiments.Table7(experiments.Config{Scale: 0.02})
	if plain.Packets == 0 || comp.Packets == 0 {
		t.Fatal("no packets simulated")
	}
	if fmt.Sprintf("%s", plain.System) == "" {
		t.Fatal("unnamed result")
	}
}
