module realsum

go 1.24
