// Command cksumd is the long-running verification service over the
// netsim fault-injection pipeline.  It accepts many concurrent
// verification streams — declarative scenario profiles loaded at
// startup and wire streams opened over TCP — runs each continuously
// through the sharded engine with batched commutative tally merges,
// and exposes per-algorithm × per-channel × per-placement tallies,
// throughput and progress over HTTP.
//
// Usage:
//
//	cksumd [-http 127.0.0.1:0] [-listen ADDR] [-flush N] [-once]
//	       scenario.json [scenario2.json ...]
//	cksumd -scrape URL
//
// Each scenario file is a JSON profile (see internal/scenario): corpus
// source, fault channels, placements, payload compression ("compress":
// true runs the internal/lz stage and /status reports the flag per
// stream), the retransmission loop ("retrans": true retransmits
// detected corruptions through the re-rolled channel up to
// "max_retries" attempts; /status carries both fields and /metrics
// gains the per-channel retrans[...] pin lines with residual-error and
// goodput counters), trial budget, seed, and how to keep running —
// replica streams, corpus passes, a wall-clock duration.
// A scenario's streams start immediately and run to their budgets; the
// service then keeps serving metrics (and wire streams, with -listen)
// until interrupted.  -once exits as soon as every file scenario
// completes instead.
//
// Shutdown is graceful: on SIGINT/SIGTERM every stream stops feeding,
// drains its queued files, and flushes every engine shard into its
// aggregate tally — no scored trial is lost — then the process exits 0.
//
// Determinism: a stream's report is byte-identical to the batch
// `netsim` CLI run of the same scenario at the same seed, regardless
// of worker count, flush cadence, or when the service was interrupted
// relative to other streams.  Replica r of a scenario runs seed
// netsim.StreamSeed(seed, r); replica 0 is the batch run itself.
//
// -scrape fetches a URL and prints the body — a dependency-free client
// for CI scripts polling /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"realsum/internal/scenario"
)

func main() {
	httpAddr := flag.String("http", "127.0.0.1:0", "metrics/status HTTP listen address")
	listen := flag.String("listen", "", "TCP listen address for wire verification streams (default: disabled)")
	flush := flag.Int("flush", 0, "files a worker shard scores between tally flushes (default 4; the final tally is identical at any cadence)")
	once := flag.Bool("once", false, "exit after every file scenario completes instead of serving until interrupted")
	scrape := flag.String("scrape", "", "fetch this URL, print the body and exit (CI scrape helper)")
	flag.Parse()

	if *scrape != "" {
		if err := doScrape(*scrape); err != nil {
			fmt.Fprintf(os.Stderr, "cksumd: scrape: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() == 0 && *listen == "" {
		fmt.Fprintln(os.Stderr, "cksumd: nothing to do: give scenario files and/or -listen (see -h)")
		os.Exit(2)
	}

	sv := scenario.NewServer()
	sv.FlushEvery = *flush
	for _, path := range flag.Args() {
		sc, err := scenario.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cksumd: %v\n", err)
			os.Exit(2)
		}
		streams, err := sv.Add(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cksumd: %s: %v\n", path, err)
			os.Exit(2)
		}
		fmt.Printf("cksumd: scenario %q: %d stream(s)\n", sc.Name, len(streams))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Metrics first, so a supervisor can scrape from the moment the
	// streams start.  The bound address line is the service's handshake
	// with scripts that asked for port 0.
	mln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cksumd: metrics listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("cksumd: metrics on http://%s/metrics\n", mln.Addr())
	httpSrv := &http.Server{Handler: sv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(mln) }()

	wireErr := make(chan error, 1)
	if *listen != "" {
		wln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cksumd: wire listen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("cksumd: wire streams on %s\n", wln.Addr())
		go func() { wireErr <- sv.ServeListener(ctx, wln) }()
	}

	// Run the file scenarios to their budgets (graceful on cancel), then
	// either exit (-once) or keep serving until the signal arrives.
	runErr := sv.Run(ctx)
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "cksumd: %v\n", runErr)
	}
	if !*once {
		<-ctx.Done()
	}
	stop()

	// Drain: wire connections finish their streams, then the HTTP
	// listener closes once nothing is left to observe.
	sv.Wait()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(sctx)

	for _, st := range sv.Streams() {
		fmt.Printf("cksumd: stream %d %q replica %d: %s, %d files, %d bytes\n",
			st.ID, st.Scenario.Name, st.Replica, st.State(), st.Files(), st.Bytes())
	}
	select {
	case err := <-wireErr:
		if err != nil {
			fmt.Fprintf(os.Stderr, "cksumd: wire: %v\n", err)
			os.Exit(1)
		}
	default:
	}
	if runErr != nil {
		os.Exit(1)
	}
}

// doScrape fetches url and streams the body to stdout.
func doScrape(url string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return nil
}
