// Command checkdist measures checksum-value distributions over a
// corpus: the Figure 2 PDF/CDF series, the Figure 3 algorithm
// comparison and the Table 4/5 congruence probabilities.
//
// Usage:
//
//	checkdist -profile smeg.stanford.edu:/u1 -fig2
//	checkdist -dir /usr/share -table5
//	checkdist -profile sics.se:/opt -k 2      # one histogram summary
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"realsum/internal/corpus"
	"realsum/internal/experiments"
	"realsum/internal/report"
	"realsum/internal/sim"
	"realsum/internal/stats"
)

func main() {
	profile := flag.String("profile", "smeg.stanford.edu:/u1", "synthetic site profile name")
	dir := flag.String("dir", "", "scan a real directory instead of a profile")
	scale := flag.Float64("scale", 1.0, "profile scale factor")
	census := flag.Bool("census", false, "byte-level census (zero fraction, entropy) of the corpus")
	fig2 := flag.Bool("fig2", false, "emit the Figure 2 series (profile-based only)")
	fig3 := flag.Bool("fig3", false, "emit the Figure 3 series (profile-based only)")
	table4 := flag.Bool("table4", false, "emit Table 4 (profile-based only)")
	table5 := flag.Bool("table5", false, "emit Table 5 (profile-based only)")
	k := flag.Int("k", 1, "block size in cells for the summary histogram")
	window := flag.Int("window", 512, "locality window in bytes")
	flag.Parse()

	cfg := experiments.Config{Scale: *scale}
	switch {
	case *fig2:
		fmt.Print(experiments.Figure2Report(experiments.Figure2(cfg)))
		return
	case *fig3:
		fmt.Print(experiments.Figure3Report(experiments.Figure3(cfg)))
		return
	case *table4:
		fmt.Print(experiments.Table4Report(experiments.Table4(cfg)))
		return
	case *table5:
		fmt.Print(experiments.Table5Report(experiments.Table5(cfg)))
		return
	}

	// Summary mode over a profile or directory.
	var w corpus.Walker
	var name string
	if *dir != "" {
		w, name = corpus.DirWalker(*dir), *dir
	} else {
		p, ok := corpus.ByName(*profile)
		if !ok {
			fmt.Fprintf(os.Stderr, "checkdist: unknown profile %q\n", *profile)
			os.Exit(2)
		}
		w, name = p.Scale(*scale).Build(), p.Name
	}
	if *census {
		var counts [256]uint64
		var files int
		err := w.Walk(func(path string, data []byte) error {
			files++
			for _, b := range data {
				counts[b]++
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkdist: %v\n", err)
			os.Exit(1)
		}
		var total uint64
		var topB int
		for b, c := range counts {
			total += c
			if c > counts[topB] {
				topB = b
			}
		}
		fmt.Printf("corpus: %s\n", name)
		fmt.Printf("files:        %d\n", files)
		fmt.Printf("bytes:        %s\n", report.Count(total))
		fmt.Printf("zero bytes:   %s\n", report.Percent(float64(counts[0x00])/float64(total)))
		fmt.Printf("0xFF bytes:   %s\n", report.Percent(float64(counts[0xFF])/float64(total)))
		fmt.Printf("top byte:     %#02x (%s)\n", topB, report.Percent(float64(counts[topB])/float64(total)))
		fmt.Printf("entropy:      %.2f bits/byte\n", stats.ShannonEntropy(counts[:]))
		return
	}

	ctx := context.Background()
	g, err := sim.CollectGlobal(ctx, w, *k, sim.CollectOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkdist: %v\n", err)
		os.Exit(1)
	}
	loc, err := sim.CollectLocal(ctx, w, *k, *window, sim.CollectOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkdist: %v\n", err)
		os.Exit(1)
	}
	h := g.Histogram()
	v, p := h.PMax()
	fmt.Printf("corpus: %s (k = %d cells)\n", name, *k)
	fmt.Printf("blocks sampled:        %s\n", report.Count(g.Blocks()))
	fmt.Printf("distinct sums:         %s\n", report.Count(uint64(h.Distinct())))
	fmt.Printf("most common sum:       %#04x (p = %s)\n", v, report.Percent(p))
	fmt.Printf("top-65 mass:           %s\n", report.Percent(h.TopShare(65)))
	fmt.Printf("global congruence:     %s (uniform: %s)\n",
		report.Percent(g.CongruentProbability()), report.Percent(1.0/65535))
	fmt.Printf("identical blocks:      %s\n", report.Percent(g.IdenticalProbability()))
	fmt.Printf("local congruence:      %s over %s pairs (window %d)\n",
		report.Percent(loc.CongruentP()), report.Count(loc.Pairs), *window)
	fmt.Printf("local excl. identical: %s\n", report.Percent(loc.ExcludeIdenticalP()))
}
