// Command netsim runs the Monte Carlo end-to-end fault-injection
// pipeline on its own: corpus files are encoded as TCP/IPv4 (or
// UDP/IPv4 + fragmentation) packets inside AAL5/ATM cells, pushed
// through a fault channel, and scored at the receiver against every
// algorithm in the registry.
//
// Usage:
//
//	netsim [-profile "smeg.stanford.edu:/u1"] [-scale 1.0] [-dir PATH]
//	       [-mode tcp|udpfrag]
//	       [-channels drop,drop-ge,drop-burst,bitflip,burst,reorder,misinsert,dup]
//	       [-placement e2e,segment]
//	       [-trials 6] [-seed 0] [-workers N]
//
// -dir scores a real directory tree instead of a synthetic profile.
// The three drop channels run at a matched 1% average cell-loss rate —
// i.i.d., Gilbert–Elliott, and geometric burst-of-cells — so the report
// contrasts correlated against independent loss directly.  -placement
// selects the checksum placements scored (default both in tcp mode):
// e2e treats each algorithm as one checksum over the whole AAL5 PDU,
// segment scores it per TCP segment and adds the header-vs-trailer
// field-position contrast for the TCP sum.  Output is byte-identical at
// any -workers count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"realsum/internal/corpus"
	"realsum/internal/netsim"
)

func main() {
	valid := strings.Join(netsim.ChannelNames(), ",")
	profile := flag.String("profile", "smeg.stanford.edu:/u1", "synthetic corpus profile (see cmd/corpus -list for names)")
	scale := flag.Float64("scale", 1.0, "corpus scale factor")
	dir := flag.String("dir", "", "score a real directory tree instead of a synthetic profile")
	mode := flag.String("mode", "tcp", "transport encoding: tcp (one packet per PDU) or udpfrag (UDP datagrams + IP fragmentation)")
	channels := flag.String("channels", "", "comma-separated fault channels (default: all of "+valid+")")
	validPl := strings.Join(netsim.PlacementNames(), ",")
	placement := flag.String("placement", "", "comma-separated checksum placements (default: all of "+validPl+"; segment applies to tcp mode only)")
	trials := flag.Int("trials", 0, "trials per (file × channel) (default 6)")
	seed := flag.Uint64("seed", 0, "root seed; every trial's fault pattern derives from it")
	workers := flag.Int("workers", 0, "parallel workers (default GOMAXPROCS; output is identical at any count)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := netsim.Config{Trials: *trials, Seed: *seed, Workers: *workers}
	switch *mode {
	case "tcp":
		cfg.Mode = netsim.ModeTCP
	case "udpfrag":
		cfg.Mode = netsim.ModeUDPFrag
	default:
		fmt.Fprintf(os.Stderr, "netsim: unknown -mode %q (want tcp or udpfrag)\n", *mode)
		os.Exit(2)
	}
	if *channels != "" {
		specs, unknown := netsim.ChannelsByName(strings.Split(*channels, ","))
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "netsim: unknown channels %v (want a subset of %s)\n", unknown, valid)
			os.Exit(2)
		}
		cfg.Channels = specs
	}
	if *placement != "" {
		pls, unknown := netsim.PlacementsByName(strings.Split(*placement, ","))
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "netsim: unknown placements %v (want a subset of %s)\n", unknown, validPl)
			os.Exit(2)
		}
		cfg.Placements = pls
	}

	var walker corpus.Walker
	if *dir != "" {
		walker = corpus.DirWalker(*dir)
	} else {
		p, ok := corpus.ByName(*profile)
		if !ok {
			fmt.Fprintf(os.Stderr, "netsim: unknown profile %q\n", *profile)
			os.Exit(2)
		}
		p = p.Scale(*scale)
		p.Seed ^= *seed
		walker = p.Build()
	}

	tally, err := netsim.Run(ctx, walker, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(tally.Report())
}
