// Command netsim runs the Monte Carlo end-to-end fault-injection
// pipeline on its own: corpus files are encoded as TCP/IPv4 (or
// UDP/IPv4 + fragmentation) packets inside AAL5/ATM cells, pushed
// through a fault channel, and scored at the receiver against every
// algorithm in the registry.
//
// Usage:
//
//	netsim [-scenario FILE.json]
//	       [-profile "smeg.stanford.edu:/u1"] [-scale 1.0] [-dir PATH]
//	       [-mode tcp|udpfrag]
//	       [-channels drop,drop-ge,drop-burst,bitflip,burst,reorder,misinsert,dup]
//	       [-placement e2e,segment]
//	       [-algos crc32,crc32c,crc24a]
//	       [-compress]
//	       [-retrans] [-maxretries 8]
//	       [-trials 6] [-seed 0] [-workers N]
//
// The flags are aliases over a scenario.Scenario — the same declarative
// profile cmd/cksumd serves continuously.  -scenario loads a JSON
// profile first; any flag set explicitly on the command line overrides
// the loaded field, so `netsim -scenario audit.json -trials 12` is the
// profile with a bigger trial budget.
//
// -dir scores a real directory tree instead of a synthetic profile.
// The three drop channels run at a matched 1% average cell-loss rate —
// i.i.d., Gilbert–Elliott, and geometric burst-of-cells — so the report
// contrasts correlated against independent loss directly.  -placement
// selects the checksum placements scored (default both in tcp mode):
// e2e treats each algorithm as one checksum over the whole AAL5 PDU,
// segment scores it per TCP segment and adds the header-vs-trailer
// field-position contrast for the TCP sum.  -compress passes every
// corpus file through the internal/lz payload stage before transport
// encoding, so the injected faults hit near-uniform bytes — the
// paper's Table 7 axis; the report header then carries the per-file
// compression-ratio stats and every pin line is relabeled "+lz".
// -algos restricts the scored battery to the named algorithms; naming a
// polynomial-census candidate (internal/census) registers the census
// slate on demand, so 5G-NR and Koopman generators can ride any
// channel battery without widening the default reports.
// -retrans closes the retransmission loop: deliveries a checksum lane
// detects as corrupt (and packets whose trailer never arrives) are
// retransmitted through the re-rolled channel up to -maxretries
// attempts, misses are accepted corrupt, and the report adds residual
// corrupt bytes per delivered GB, mean transmissions per delivered PDU
// and goodput overhead vs a perfect-detection oracle per (channel ×
// placement × algorithm).  Output is byte-identical at any -workers
// count, and to a cksumd stream of the same scenario at the same seed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"realsum/internal/census"
	"realsum/internal/netsim"
	"realsum/internal/scenario"
)

func main() {
	scenFile := flag.String("scenario", "", "load a scenario profile (JSON); explicit flags override its fields")
	profile := flag.String("profile", "smeg.stanford.edu:/u1", "synthetic corpus profile (see cmd/corpus -list for names)")
	scale := flag.Float64("scale", 1.0, "corpus scale factor")
	dir := flag.String("dir", "", "score a real directory tree instead of a synthetic profile")
	mode := flag.String("mode", "tcp", "transport encoding: tcp (one packet per PDU) or udpfrag (UDP datagrams + IP fragmentation)")
	channels := flag.String("channels", "", "comma-separated fault channels (default: all of "+strings.Join(netsim.ChannelNames(), ",")+")")
	placement := flag.String("placement", "", "comma-separated checksum placements (default: all of "+strings.Join(netsim.PlacementNames(), ",")+"; segment applies to tcp mode only)")
	algos := flag.String("algos", "", "comma-separated algorithm subset to score (default: the full registry); census candidates ("+strings.Join(census.Keys(), ",")+") are registered on demand when named")
	compress := flag.Bool("compress", false, "lz-compress each corpus file before transport encoding (the Table 7 axis)")
	retrans := flag.Bool("retrans", false, "close the retransmission loop: retransmit detected corruptions, accept misses, report residual error and goodput")
	maxretries := flag.Int("maxretries", 0, "retry cap per packet with -retrans (default 8)")
	trials := flag.Int("trials", 0, "trials per (file × channel) (default 6)")
	seed := flag.Uint64("seed", 0, "root seed; every trial's fault pattern derives from it")
	workers := flag.Int("workers", 0, "parallel workers (default GOMAXPROCS; output is identical at any count)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var sc scenario.Scenario
	if *scenFile != "" {
		var err error
		sc, err = scenario.Load(*scenFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
			os.Exit(2)
		}
	} else {
		sc = scenario.Scenario{Profile: *profile, Scale: *scale}
	}

	// Explicit flags win over the loaded profile; -dir and -profile
	// displace each other, preserving the old "-dir overrides the
	// default profile" behavior.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "profile":
			sc.Profile, sc.Dir = *profile, ""
		case "dir":
			sc.Dir, sc.Profile = *dir, ""
		case "scale":
			sc.Scale = *scale
		case "mode":
			sc.Mode = *mode
		case "channels":
			sc.Channels = strings.Split(*channels, ",")
		case "placement":
			sc.Placements = strings.Split(*placement, ",")
		case "algos":
			sc.Algorithms = strings.Split(*algos, ",")
		case "compress":
			sc.Compress = *compress
		case "retrans":
			sc.Retrans = *retrans
		case "maxretries":
			sc.MaxRetries = *maxretries
		case "trials":
			sc.Trials = *trials
		case "seed":
			sc.Seed = *seed
		case "workers":
			sc.Workers = *workers
		}
	})
	if err := sc.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(2)
	}
	if _, err := sc.Walker(); err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(2)
	}

	tally, err := sc.Run(ctx, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(tally.Report())
}
