// Command paper regenerates every table and figure in the paper's
// evaluation over the synthetic corpora, printing each in the paper's
// layout.
//
// Usage:
//
//	paper [-scale 1.0] [-run table1,figure2,...] [-workers N] [-seed S] [-progress]
//	paper -netsim [-scale 1.0] [-workers N] [-seed S]
//	paper -census [-scale 1.0] [-workers N] [-seed S]
//	paper -benchcensusjson BENCH_census.json [-scale 0.05]
//	paper -benchjson BENCH_splice.json [-scale 0.05] [-benchiters 3]
//	paper -benchdistjson BENCH_dist.json [-scale 0.05] [-benchiters 3]
//	paper -benchnetsimjson BENCH_netsim.json [-scale 0.05] [-benchiters 3] [-placement e2e,segment]
//	paper -benchalgojson BENCH_algo.json [-benchiters 3] [-kernel nguyen]
//
// With no -run flag every experiment runs in paper order.  The -scale
// flag multiplies the corpus sizes (1.0 ≈ a few MB per file system; the
// paper's originals were GBs — scale up if you have the minutes).
// -progress prints live throughput to stderr; -workers bounds per-pass
// parallelism (outputs are byte-identical at any worker count).
// Interrupt (Ctrl-C) cancels the run between files.
//
// -seed is the single root seed behind every randomized pass: corpus
// generation, the §4.6 local any-cells sampling, the end-to-end loss
// runs and the netsim fault-injection trials all derive their RNG
// streams from it.  The default 0 reproduces the historical per-pass
// seeds, so committed goldens and EXPERIMENTS.md correspond to -seed 0;
// any other value reshapes every corpus and fault pattern coherently
// while preserving worker-count independence.
//
// -netsim runs only the Monte Carlo fault-injection pipeline (§7's
// alternative error models): corpus files ride TCP/IPv4 (and
// UDP + IP fragmentation) inside AAL5/ATM cells through cell-loss
// channels at a matched 1% average rate (i.i.d. drop, a Gilbert–Elliott
// two-state chain, geometric burst-of-cells drops), bit-flip,
// solid-burst, reorder, misinsertion and cell-duplication channels, and
// every registry algorithm is scored on the corrupted deliveries under
// both checksum placements (end-to-end over the PDU and per TCP
// segment, with a header-vs-trailer position contrast for the TCP sum).
// The report includes i.i.d.-vs-correlated loss and
// end-to-end-vs-per-segment placement contrast sections.
//
// -census runs the polynomial-selection census (internal/census): the
// analytic lane computes each CRC candidate's order-of-x, weight-2/3
// spectrum and uniform-assumption P_ud in gf2poly algebra, the
// injection lane replays the netsim fault battery over the corpus
// scoring the whole slate — IEEE, Castagnoli, Koopman's search winners
// and the 5G NR family — and the report contrasts the two rankings,
// calling out any inversion explicitly.  (This is distinct from
// -run census, the byte-value data census of the corpus itself.)
// -benchcensusjson writes the same run as one JSON record per
// candidate, carrying both lanes' numbers.
//
// -benchjson times the Table 1–3 splice simulations instead of printing
// tables, writing ns/op, MB/s and allocs/op records that seed the
// repository's performance trajectory.  -benchdistjson does the same
// for the distribution passes (Figures 2–3, Tables 4–5), at one worker
// and at GOMAXPROCS workers so the records carry the parallel speedup.
// -benchalgojson times every registry algorithm's one-shot checksum at
// cell, MTU and bulk sizes, recording the raced CRC kernel and its
// speedup over the slicing-by-8 baseline.
//
// -kernel pins the CRC bulk engine (slicing8, scalar, chorba, nguyen,
// or auto) for every table the run builds, overriding the verified
// per-algorithm race — the reproducibility knob for comparing kernel
// generations on the same hardware.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"realsum/internal/algo"
	"realsum/internal/crc"
	"realsum/internal/experiments"
	"realsum/internal/netsim"
	"realsum/internal/scenario"
	"realsum/internal/sim"
)

func main() {
	scale := flag.Float64("scale", 1.0, "corpus scale factor")
	run := flag.String("run", "", "comma-separated experiments (default: all): table1..table10, figure2, figure3, effectivebits, ablations, pathological")
	list := flag.Bool("list", false, "list experiment names and exit")
	workers := flag.Int("workers", 0, "parallel workers per pass (default GOMAXPROCS; output is identical at any count)")
	seed := flag.Uint64("seed", 0, "root seed for every randomized pass: corpus generation, local any-cells sampling, end-to-end loss and netsim trials all derive from it (0 = the historical defaults the committed goldens use)")
	netsimOnly := flag.Bool("netsim", false, "run only the netsim fault-injection pass (shorthand for -run netsim)")
	censusOnly := flag.Bool("census", false, "run the polynomial-selection census: analytic uniform-assumption P_ud vs injected miss rate over the measured corpus for the CRC candidate slate (IEEE, Castagnoli, Koopman, 5G NR), then exit")
	benchcensusjson := flag.String("benchcensusjson", "", "run the polynomial census and write one record per candidate (uniform-lane algebra vs measured-corpus miss rates and ranks) to this file (e.g. BENCH_census.json), then exit")
	progress := flag.Bool("progress", false, "print live throughput (files, MB, MB/s) to stderr while experiments run")
	benchjson := flag.String("benchjson", "", "time the Table 1–3 splice simulations and write ns/op, MB/s and allocs/op records to this file (e.g. BENCH_splice.json), then exit")
	benchdistjson := flag.String("benchdistjson", "", "time the Figure 2–3 / Table 4–5 distribution passes and write records (incl. parallel speedup) to this file (e.g. BENCH_dist.json), then exit")
	benchnetsimjson := flag.String("benchnetsimjson", "", "time the netsim fault-injection pipeline per (fault model × checksum placement) and write trials/sec, MB/s and allocs/trial records to this file (e.g. BENCH_netsim.json), then exit")
	placement := flag.String("placement", "", "comma-separated checksum placements for -benchnetsimjson (default: all of "+strings.Join(netsim.PlacementNames(), ",")+")")
	benchalgojson := flag.String("benchalgojson", "", "time every registry algorithm's one-shot checksum at cell/MTU/bulk sizes and write ns/op, GB/s, allocs/op and kernel-speedup records to this file (e.g. BENCH_algo.json), then exit")
	kernel := flag.String("kernel", "", "force the CRC bulk kernel for the whole run (one of "+strings.Join(crc.KernelNames(), ", ")+", or auto; default: verified per-algorithm racing)")
	benchIters := flag.Int("benchiters", 3, "iterations per -benchjson/-benchdistjson record")
	flag.Parse()

	if *kernel != "" {
		// SetCRCKernel repoints (and validates against) the registry
		// algorithms built at init; the environment variable carries the
		// choice to every table the experiments construct afterwards.
		if err := algo.SetCRCKernel(*kernel); err != nil {
			fmt.Fprintf(os.Stderr, "paper: %v\n", err)
			os.Exit(2)
		}
		os.Setenv(crc.KernelEnv, *kernel)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *benchjson != "" || *benchdistjson != "" || *benchnetsimjson != "" || *benchalgojson != "" || *benchcensusjson != "" {
		if *benchjson != "" {
			if err := runBenchJSON(ctx, *benchjson, *scale, *benchIters); err != nil {
				fmt.Fprintf(os.Stderr, "paper: benchjson: %v\n", err)
				os.Exit(1)
			}
		}
		if *benchdistjson != "" {
			if err := runBenchDistJSON(ctx, *benchdistjson, *scale, *benchIters); err != nil {
				fmt.Fprintf(os.Stderr, "paper: benchdistjson: %v\n", err)
				os.Exit(1)
			}
		}
		if *benchnetsimjson != "" {
			placements, err := scenario.ParsePlacements(*placement)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paper: %v\n", err)
				os.Exit(2)
			}
			if err := runBenchNetsimJSON(ctx, *benchnetsimjson, *scale, *seed, *benchIters, placements); err != nil {
				fmt.Fprintf(os.Stderr, "paper: benchnetsimjson: %v\n", err)
				os.Exit(1)
			}
		}
		if *benchalgojson != "" {
			if err := runBenchAlgoJSON(*benchalgojson, *benchIters); err != nil {
				fmt.Fprintf(os.Stderr, "paper: benchalgojson: %v\n", err)
				os.Exit(1)
			}
		}
		if *benchcensusjson != "" {
			if err := runBenchCensusJSON(ctx, *benchcensusjson, *scale, *seed); err != nil {
				fmt.Fprintf(os.Stderr, "paper: benchcensusjson: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *censusOnly {
		var prog *sim.Progress
		if *progress {
			prog = &sim.Progress{}
			defer startProgress(prog)()
		}
		if err := runCensus(ctx, *scale, *seed, *workers, prog); err != nil {
			fmt.Fprintf(os.Stderr, "paper: census: %v\n", err)
			os.Exit(1)
		}
		return
	}

	names := []string{
		"table1", "table2", "table3", "figure2", "figure3", "table4",
		"table5", "table6", "table7", "table8", "table9", "table10",
		"effectivebits", "ablations", "pathological", "endtoend", "adler", "census", "locality", "fragswap",
		"netsim",
	}
	if *list {
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	want := map[string]bool{}
	if *netsimOnly {
		*run = "netsim"
	}
	if *run == "" {
		for _, n := range names {
			want[n] = true
		}
	} else {
		for _, n := range strings.Split(*run, ",") {
			want[strings.TrimSpace(strings.ToLower(n))] = true
		}
	}

	cfg := experiments.Config{Scale: *scale, Workers: *workers, Seed: *seed, Ctx: ctx}
	if *progress {
		prog := &sim.Progress{}
		cfg.Progress = prog
		defer startProgress(prog)()
	}
	step := func(name string, fn func() string) {
		if !want[name] {
			return
		}
		start := time.Now()
		out := fn()
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	// Tables 1–3 and the effective-bits computation share one big run.
	var t123 = func() []interface{} { return nil }
	_ = t123
	needT123 := want["table1"] || want["table2"] || want["table3"] || want["effectivebits"]
	if needT123 {
		start := time.Now()
		results := experiments.Tables123(cfg)
		fmt.Fprintf(os.Stderr, "[tables 1-3 simulation done in %v]\n", time.Since(start).Round(time.Millisecond))
		if want["table1"] {
			fmt.Println(experiments.Table1Report(results))
		}
		if want["table2"] {
			fmt.Println(experiments.Table2Report(results))
		}
		if want["table3"] {
			fmt.Println(experiments.Table3Report(results))
		}
		if want["effectivebits"] {
			fmt.Println(experiments.EffectiveBitsReport(experiments.EffectiveBits(results)))
		}
	}

	step("figure2", func() string { return experiments.Figure2Report(experiments.Figure2(cfg)) })
	step("figure3", func() string { return experiments.Figure3Report(experiments.Figure3(cfg)) })
	step("table4", func() string { return experiments.Table4Report(experiments.Table4(cfg)) })
	step("table5", func() string { return experiments.Table5Report(experiments.Table5(cfg)) })
	step("table6", func() string { return experiments.Table6Report(experiments.Table6(cfg)) })
	step("table7", func() string {
		plain, comp := experiments.Table7(cfg)
		return experiments.Table7Report(plain, comp)
	})
	step("table8", func() string { return experiments.Table8Report(experiments.Table8(cfg)) })
	step("table9", func() string { return experiments.Table9Report(experiments.Table9(cfg)) })
	step("table10", func() string { return experiments.Table10Report(experiments.Table10(cfg)) })
	step("ablations", func() string { return experiments.AblationsReport(experiments.Ablations(cfg)) })
	step("pathological", func() string { return experiments.PathologicalReport(experiments.Pathological(cfg)) })
	step("endtoend", func() string { return experiments.EndToEndReport(experiments.EndToEnd(cfg)) })
	step("adler", func() string { return experiments.AdlerReport(experiments.AdlerComparison(cfg)) })
	step("census", func() string { return experiments.DataCensusReport(experiments.DataCensus(cfg)) })
	step("locality", func() string { return experiments.LocalityReport(experiments.Locality(cfg)) })
	step("fragswap", func() string { return experiments.FragSwapReport(experiments.FragSwap(cfg)) })
	step("netsim", func() string { return experiments.NetSimReport(experiments.NetSim(cfg)) })
}

// startProgress prints cumulative throughput to stderr every 2 seconds
// until the returned stop function runs.
func startProgress(p *sim.Progress) (stopFn func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(2 * time.Second)
		defer t.Stop()
		start := time.Now()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				files, bytes := p.Files(), p.Bytes()
				el := time.Since(start).Seconds()
				fmt.Fprintf(os.Stderr, "[progress: %d files, %.1f MB, %.1f MB/s]\n",
					files, float64(bytes)/1e6, float64(bytes)/1e6/el)
			}
		}
	}()
	return func() { close(done) }
}
