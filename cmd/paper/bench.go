package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"realsum/internal/corpus"
	"realsum/internal/sim"
)

// benchRecord is one line of BENCH_splice.json: the headline cost
// metrics of a Table 1–3 splice simulation, in the units `go test
// -bench -benchmem` reports so trajectories can be compared directly.
type benchRecord struct {
	Name        string  `json:"name"`
	Scale       float64 `json:"scale"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"corpus_bytes_per_op"`
	PairsPerOp  uint64  `json:"pairs_per_op"`
	MissRate    float64 `json:"tcp_miss_rate"`
}

// runBenchJSON times the Tables 1–3 splice simulations (CRC check on,
// as the tables require) and writes the records to path.  Corpus
// construction happens outside the timed region: the records measure
// the simulation engine, which is what the perf trajectory tracks.
func runBenchJSON(ctx context.Context, path string, scale float64, iters int) error {
	if iters < 1 {
		return fmt.Errorf("-benchiters must be >= 1 (got %d)", iters)
	}
	groups := []struct{ name, substr string }{
		{"Table1_NSC", "nsc"},
		{"Table2_SICS", "sics"},
		{"Table3_Stanford", "stanford"},
	}
	var records []benchRecord
	for _, g := range groups {
		var walkers []corpus.Walker
		var names []string
		for _, p := range corpus.AllProfiles() {
			if !strings.Contains(strings.ToLower(p.Name), g.substr) {
				continue
			}
			walkers = append(walkers, p.Scale(scale).Build())
			names = append(names, p.Name)
		}
		if len(walkers) == 0 {
			return fmt.Errorf("no profiles match %q", g.substr)
		}

		opt := sim.Options{CheckCRC: true}
		var bytes, pairs, missed, remaining uint64
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for it := 0; it < iters; it++ {
			bytes, pairs, missed, remaining = 0, 0, 0, 0
			for i, w := range walkers {
				res, err := sim.Run(ctx, w, names[i], opt)
				if err != nil {
					return fmt.Errorf("%s: %w", names[i], err)
				}
				bytes += res.Bytes
				pairs += res.Pairs
				missed += res.MissedByChecksum
				remaining += res.Remaining
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)

		nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
		rec := benchRecord{
			Name:        g.name,
			Scale:       scale,
			Iterations:  iters,
			NsPerOp:     nsPerOp,
			MBPerS:      float64(bytes) / (nsPerOp / 1e9) / 1e6,
			AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(iters),
			BytesPerOp:  bytes,
			PairsPerOp:  pairs,
		}
		if remaining > 0 {
			rec.MissRate = float64(missed) / float64(remaining)
		}
		records = append(records, rec)
		fmt.Fprintf(os.Stderr, "[bench %s: %.0f ms/op, %.1f MB/s, %.0f allocs/op]\n",
			g.name, nsPerOp/1e6, rec.MBPerS, rec.AllocsPerOp)
	}

	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
