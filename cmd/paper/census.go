package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"realsum/internal/census"
	"realsum/internal/corpus"
	"realsum/internal/sim"
)

// censusWalker builds the census corpus: the Stanford /u1 profile at
// the given scale, generator seed XORed with the root seed — the same
// convention as every other randomized pass, so -census at seed S
// replays the corpus the netsim passes saw at -seed S.
func censusWalker(scale float64, seed uint64) corpus.Walker {
	p := corpus.StanfordU1().Scale(scale)
	p.Seed ^= seed
	return p.Build()
}

// runCensus executes the polynomial-selection census and prints the
// two-lane report: analytic P_ud under the uniform assumption vs the
// injected miss rate and measured-mix P_ud over the real corpus, with
// any ranking inversion called out explicitly.
func runCensus(ctx context.Context, scale float64, seed uint64, workers int, progress *sim.Progress) error {
	start := time.Now()
	res, err := census.Run(ctx, census.Config{
		Walker:   censusWalker(scale, seed),
		Seed:     seed,
		Workers:  workers,
		Progress: progress,
	})
	if err != nil {
		return err
	}
	fmt.Println(res.Report())
	fmt.Fprintf(os.Stderr, "[census done in %v]\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// benchCensusRecord is one line of BENCH_census.json: one candidate's
// verdict in both lanes — the uniform-assumption algebra next to the
// measured-corpus numbers — plus the run throughput so the file also
// tracks the census's own cost.
type benchCensusRecord struct {
	Name  string  `json:"name"`
	Scale float64 `json:"scale"`
	Width uint8   `json:"width"`
	Poly  uint64  `json:"poly"`
	Note  string  `json:"note"`

	// Uniform lane: the order of x (0 = beyond the search horizon), the
	// weight-2/3 spectrum at the reference block length, the collision
	// floor and the BSC bound.
	Ord      uint64  `json:"ord"`
	A2       uint64  `json:"a2"`
	A3       uint64  `json:"a3"`
	UniformP float64 `json:"uniform_p"`
	BSCP     float64 `json:"bsc_p"`

	// Corpus lane: injected miss counts over the fault battery and the
	// measured-mix reweighting of the analytic coverage.
	Corrupted  uint64  `json:"corrupted"`
	Undetected uint64  `json:"undetected"`
	MissRate   float64 `json:"miss_rate"`
	MeasuredP  float64 `json:"measured_p"`

	// The three rankings (1 = best) and the run-wide inversion count,
	// repeated on every record like the shared bench fields elsewhere.
	RankUniform  int     `json:"rank_uniform"`
	RankMeasured int     `json:"rank_measured"`
	RankInjected int     `json:"rank_injected"`
	Inversions   int     `json:"inversions"`
	TrialsPerS   float64 `json:"trials_per_s"`
}

// runBenchCensusJSON runs the census once and writes one record per
// candidate to path.
func runBenchCensusJSON(ctx context.Context, path string, scale float64, seed uint64) error {
	start := time.Now()
	res, err := census.Run(ctx, census.Config{Walker: censusWalker(scale, seed), Seed: seed})
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Seconds()
	var trials uint64
	for i := range res.Tally.Channels {
		trials += res.Tally.Channels[i].Trials
	}
	records := make([]benchCensusRecord, 0, len(res.Rows))
	for _, row := range res.Rows {
		miss, _ := row.MissRate()
		records = append(records, benchCensusRecord{
			Name:         "census_" + row.Key,
			Scale:        scale,
			Width:        row.Params.Width,
			Poly:         row.Params.Poly,
			Note:         row.Note,
			Ord:          row.Ord,
			A2:           row.A2,
			A3:           row.A3,
			UniformP:     row.UniformP,
			BSCP:         row.BSCP,
			Corrupted:    row.Corrupted,
			Undetected:   row.Undetected,
			MissRate:     miss,
			MeasuredP:    row.MeasuredP,
			RankUniform:  row.UniformRank,
			RankMeasured: row.MeasuredRank,
			RankInjected: row.InjectedRank,
			Inversions:   len(res.Inversions),
			TrialsPerS:   float64(trials) / elapsed,
		})
		fmt.Fprintf(os.Stderr, "[benchcensus %s: miss %d/%d, ranks %d/%d/%d]\n",
			row.Key, row.Undetected, row.Corrupted,
			row.UniformRank, row.MeasuredRank, row.InjectedRank)
	}
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
