package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"realsum/internal/corpus"
	"realsum/internal/lz"
	"realsum/internal/netsim"
)

// benchNetsimRecord is one line of BENCH_netsim.json: the cost of
// pushing the corpus through one fault channel at one worker count.
// AllocsPerTrial measures the whole pass (corpus build + packetization
// + trials) divided by trial count; the per-trial hot path itself is
// AllocsPerRun-guarded to zero in internal/netsim, so this stays small
// and scale-independent.
type benchNetsimRecord struct {
	Name  string  `json:"name"`
	Scale float64 `json:"scale"`
	// Placement is the checksum placement the run scored: "e2e" (one
	// checksum over the whole PDU) or "segment" (per TCP segment, with
	// the header-vs-trailer position contrast).  The placement loop is
	// inside the scorer, so the segment records price the extra
	// per-segment checksum work against the same fault channels.
	Placement      string  `json:"placement"`
	Workers        int     `json:"workers"`
	Trials         uint64  `json:"trials"`
	TrialsPerS     float64 `json:"trials_per_s"`
	MBPerS         float64 `json:"mb_per_s"`
	AllocsPerTrial float64 `json:"allocs_per_trial"`
	Speedup        float64 `json:"speedup_vs_1worker"`
	// CellLossRate is the measured fraction of cells the channel
	// removed — ≈0.01 for the three matched drop channels, 0 for the
	// payload-damage channels, negative for duplication (cells added).
	CellLossRate float64 `json:"cell_loss_rate"`
	// Compressed marks runs that pushed each file through the
	// internal/lz payload stage before packetization (the Table 7
	// axis).  CompressRatio is that run's aggregate compressed/raw byte
	// ratio, and CompressMBPerS the standalone throughput of the lz
	// stage over this corpus (raw MB consumed per second), timed once
	// per invocation and repeated on every compressed record.
	Compressed     bool    `json:"compressed,omitempty"`
	CompressRatio  float64 `json:"compress_ratio,omitempty"`
	CompressMBPerS float64 `json:"compress_mb_per_s,omitempty"`
	// Retrans marks runs that closed the retransmission loop (detected
	// corruptions retransmitted through the re-rolled channel up to
	// MaxRetries attempts).  RetransMeanTx is the tcp lane's mean
	// transmissions per delivered PDU and RetransResidualPerGB its
	// residual corrupt bytes per delivered GB — the closed-loop price and
	// leakage of the paper's weakest bellwether check.
	Retrans              bool    `json:"retrans,omitempty"`
	MaxRetries           int     `json:"max_retries,omitempty"`
	RetransMeanTx        float64 `json:"retrans_mean_tx_per_pdu,omitempty"`
	RetransResidualPerGB float64 `json:"retrans_residual_b_per_gb,omitempty"`
}

// benchCompressor times the lz stage alone over the scaled corpus,
// returning raw MB/s consumed — the price of the compression axis
// independent of any channel or checksum work.
func benchCompressor(scale float64, seed uint64) float64 {
	p := corpus.StanfordU1().Scale(scale)
	p.Seed ^= seed
	fs := p.Build()
	c := lz.NewCompressor()
	var buf []byte
	var raw uint64
	start := time.Now()
	fs.Walk(func(_ string, data []byte) error {
		c.Reset()
		buf = c.Compress(buf[:0], data)
		raw += uint64(len(data))
		return nil
	})
	return float64(raw) / time.Since(start).Seconds() / 1e6
}

// runBenchNetsimJSON times the netsim pipeline per (fault model ×
// checksum placement) and writes the records to path, at one worker and
// at GOMAXPROCS workers.
func runBenchNetsimJSON(ctx context.Context, path string, scale float64, seed uint64, iters int, placements []netsim.Placement) error {
	if iters < 1 {
		return fmt.Errorf("-benchiters must be >= 1 (got %d)", iters)
	}
	if len(placements) == 0 {
		placements = netsim.AllPlacements()
	}
	workerCounts := []int{1}
	if maxw := runtime.GOMAXPROCS(0); maxw > 1 {
		workerCounts = append(workerCounts, maxw)
	}

	lzMBPerS := benchCompressor(scale, seed)
	fmt.Fprintf(os.Stderr, "[benchnetsim lz stage: %.1f raw MB/s]\n", lzMBPerS)

	// Variants per (channel × placement): raw payload, raw with the
	// retransmission loop closed, and lz-compressed.  Retrans is priced
	// on the raw side only — the loop's cost is the retried channel
	// passes and checksum rejudging, which the compression stage would
	// only obscure.
	variants := []struct{ compress, retrans bool }{
		{false, false},
		{false, true},
		{true, false},
	}
	var records []benchNetsimRecord
	for _, spec := range netsim.DefaultChannels() {
		for _, pl := range placements {
			for _, v := range variants {
				var oneWorkerNs float64
				for _, nw := range workerCounts {
					var trials, bytes, cellsSent, cellsDelivered uint64
					var rawB, compB uint64
					var retTx, retAccepted, retResid, retDelivered uint64
					var maxRetries int
					runtime.GC()
					var m0, m1 runtime.MemStats
					runtime.ReadMemStats(&m0)
					start := time.Now()
					for it := 0; it < iters; it++ {
						p := corpus.StanfordU1().Scale(scale)
						p.Seed ^= seed
						tally, err := netsim.Run(ctx, p.Build(), netsim.Config{
							Seed:       seed,
							Channels:   []netsim.ChannelSpec{spec},
							Placements: []netsim.Placement{pl},
							Workers:    nw,
							Compress:   v.compress,
							Retrans:    v.retrans,
						})
						if err != nil {
							return err
						}
						trials += tally.Channels[0].Trials
						bytes += tally.Channels[0].Bytes
						cellsSent += tally.Channels[0].CellsSent
						cellsDelivered += tally.Channels[0].CellsDelivered
						rawB += tally.Comp.RawBytes
						compB += tally.Comp.CompBytes
						if v.retrans {
							maxRetries = tally.MaxRetries
							pt := &tally.Channels[0].Placements[0]
							for a := range pt.Algos {
								if pt.Algos[a].Name == "tcp" {
									r := pt.Retrans[a]
									retTx += r.Transmissions
									retAccepted += r.Accepted
									retResid += r.ResidualBytes
									retDelivered += r.DeliveredBytes
								}
							}
						}
					}
					elapsed := time.Since(start)
					runtime.ReadMemStats(&m1)

					sec := elapsed.Seconds()
					nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
					rec := benchNetsimRecord{
						Name:           "netsim_" + spec.Name,
						Scale:          scale,
						Placement:      pl.String(),
						Workers:        nw,
						Trials:         trials / uint64(iters),
						TrialsPerS:     float64(trials) / sec,
						MBPerS:         float64(bytes) / sec / 1e6,
						AllocsPerTrial: float64(m1.Mallocs-m0.Mallocs) / float64(trials),
						Compressed:     v.compress,
						Retrans:        v.retrans,
					}
					if cellsSent > 0 {
						rec.CellLossRate = 1 - float64(cellsDelivered)/float64(cellsSent)
					}
					if v.compress && rawB > 0 {
						rec.CompressRatio = float64(compB) / float64(rawB)
						rec.CompressMBPerS = lzMBPerS
					}
					if v.retrans {
						rec.MaxRetries = maxRetries
						if retAccepted > 0 {
							rec.RetransMeanTx = float64(retTx) / float64(retAccepted)
						}
						if retDelivered > 0 {
							rec.RetransResidualPerGB = float64(retResid) / float64(retDelivered) * 1e9
						}
					}
					if nw == 1 {
						oneWorkerNs = nsPerOp
					}
					if oneWorkerNs > 0 {
						rec.Speedup = oneWorkerNs / nsPerOp
					}
					records = append(records, rec)
					tag := ""
					if v.compress {
						tag = "+lz"
					}
					if v.retrans {
						tag = "+ret"
					}
					fmt.Fprintf(os.Stderr, "[benchnetsim %s%s/%s w=%d: %.0f trials/s, %.1f MB/s, %.1f allocs/trial, loss %.4f, speedup %.2fx]\n",
						rec.Name, tag, rec.Placement, nw, rec.TrialsPerS, rec.MBPerS, rec.AllocsPerTrial, rec.CellLossRate, rec.Speedup)
				}
			}
		}
	}

	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
