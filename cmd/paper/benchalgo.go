package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"time"

	"realsum/internal/algo"
)

// benchAlgoRecord is one line of BENCH_algo.json: the one-shot
// throughput of a registry algorithm at one input size, in the units
// `go test -bench -benchmem` reports.  CRC records additionally name
// the raced bulk kernel and, at the bulk size, carry the slicing-by-8
// baseline the kernel layer is measured against.
type benchAlgoRecord struct {
	Algo        string  `json:"algo"`
	WidthBits   int     `json:"width_bits"`
	SizeBytes   int     `json:"size_bytes"`
	Kernel      string  `json:"kernel,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	GBPerS      float64 `json:"gb_per_s"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Slicing8NsPerOp and the speedup ratio are recorded for CRC
	// algorithms on bulk input: the same buffer timed with the kernel
	// layer pinned to slicing-by-8, the pre-kernel-layer engine.
	Slicing8NsPerOp float64 `json:"slicing8_ns_per_op,omitempty"`
	KernelSpeedup   float64 `json:"kernel_speedup_vs_slicing8,omitempty"`
}

// benchAlgoSizes are the input sizes BENCH_algo.json tracks: an ATM
// cell payload's worth, an Ethernet MTU, and bulk.
var benchAlgoSizes = []int{64, 1500, 64 << 10}

// runBenchAlgoJSON times every registry algorithm's one-shot Sum at
// each size and writes the records to path.  Each measurement is the
// fastest of iters rounds; a round repeats Sum often enough to process
// a fixed byte budget, so small-buffer records are not timer-bound.
func runBenchAlgoJSON(path string, iters int) error {
	if iters < 1 {
		return fmt.Errorf("-benchiters must be >= 1 (got %d)", iters)
	}
	rng := rand.New(rand.NewPCG(42, 42))
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(rng.Uint32())
	}

	var records []benchAlgoRecord
	for _, a := range algo.All() {
		for _, size := range benchAlgoSizes {
			buf := data[:size]
			rec := benchAlgoRecord{
				Algo:       a.Name(),
				WidthBits:  a.Width(),
				SizeBytes:  size,
				Iterations: iters,
			}
			kc, hasKernel := a.(algo.KernelControl)
			if hasKernel {
				rec.Kernel = kc.Kernel()
			}
			var allocs float64
			rec.NsPerOp, allocs = timeSum(a, buf, iters)
			rec.GBPerS = float64(size) / rec.NsPerOp
			rec.AllocsPerOp = allocs
			if hasKernel && size == 64<<10 {
				selected := kc.Kernel()
				if err := kc.SetKernel("slicing8"); err != nil {
					return fmt.Errorf("%s: pinning slicing8 baseline: %w", a.Name(), err)
				}
				rec.Slicing8NsPerOp, _ = timeSum(a, buf, iters)
				if err := kc.SetKernel(selected); err != nil {
					return fmt.Errorf("%s: restoring kernel %s: %w", a.Name(), selected, err)
				}
				rec.KernelSpeedup = rec.Slicing8NsPerOp / rec.NsPerOp
			}
			records = append(records, rec)
			fmt.Fprintf(os.Stderr, "[benchalgo %s/%d: %.0f ns/op, %.3f GB/s, %.1f allocs/op%s]\n",
				rec.Algo, size, rec.NsPerOp, rec.GBPerS, rec.AllocsPerOp, benchAlgoKernelNote(rec))
		}
	}

	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

func benchAlgoKernelNote(rec benchAlgoRecord) string {
	if rec.Kernel == "" {
		return ""
	}
	if rec.KernelSpeedup != 0 {
		return fmt.Sprintf(", kernel %s %.2fx vs slicing8", rec.Kernel, rec.KernelSpeedup)
	}
	return ", kernel " + rec.Kernel
}

// timeSum returns the ns/op and allocs/op of a.Sum over buf: the best
// of iters rounds, each covering at least benchAlgoRoundBytes so the
// per-call overhead of the clock disappears.
func timeSum(a algo.Algorithm, buf []byte, iters int) (nsPerOp, allocsPerOp float64) {
	const benchAlgoRoundBytes = 1 << 22
	reps := benchAlgoRoundBytes / len(buf)
	if reps < 1 {
		reps = 1
	}
	var sink uint64
	runtime.GC()
	// Warm the kernel scratch pools after the GC purge, so the timed
	// region sees only steady-state behavior.
	sink ^= algo.Sum(a, buf)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	best := time.Duration(1 << 62)
	for it := 0; it < iters; it++ {
		start := time.Now()
		for r := 0; r < reps; r++ {
			sink ^= algo.Sum(a, buf)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	runtime.ReadMemStats(&m1)
	benchAlgoSink ^= sink
	return float64(best.Nanoseconds()) / float64(reps),
		float64(m1.Mallocs-m0.Mallocs) / float64(iters*reps)
}

// benchAlgoSink keeps the timing loops' checksums live.
var benchAlgoSink uint64
