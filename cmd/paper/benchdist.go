package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"realsum/internal/experiments"
	"realsum/internal/sim"
)

// benchDistRecord is one line of BENCH_dist.json: the cost metrics of
// one distribution pass (Figures 2–3, Tables 4–5) at one worker count.
// Speedup is ns/op at one worker divided by ns/op at this record's
// worker count, so multi-core wins land in the perf trajectory next to
// the absolute numbers.
type benchDistRecord struct {
	Name        string  `json:"name"`
	Scale       float64 `json:"scale"`
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"corpus_bytes_per_op"`
	Speedup     float64 `json:"speedup_vs_1worker"`
}

// runBenchDistJSON times the distribution-collection passes and writes
// the records to path.  Every pass runs at one worker and again at
// GOMAXPROCS workers (when that differs), exploiting the engine's
// guarantee that the output is byte-identical at any worker count.
func runBenchDistJSON(ctx context.Context, path string, scale float64, iters int) error {
	if iters < 1 {
		return fmt.Errorf("-benchiters must be >= 1 (got %d)", iters)
	}
	passes := []struct {
		name string
		run  func(cfg experiments.Config)
	}{
		{"Figure2_dist", func(cfg experiments.Config) { experiments.Figure2(cfg) }},
		{"Figure3_dist", func(cfg experiments.Config) { experiments.Figure3(cfg) }},
		{"Table4_dist", func(cfg experiments.Config) { experiments.Table4(cfg) }},
		{"Table5_dist", func(cfg experiments.Config) { experiments.Table5(cfg) }},
	}
	workerCounts := []int{1}
	if maxw := runtime.GOMAXPROCS(0); maxw > 1 {
		workerCounts = append(workerCounts, maxw)
	}

	var records []benchDistRecord
	for _, pass := range passes {
		var oneWorkerNs float64
		for _, nw := range workerCounts {
			prog := &sim.Progress{}
			cfg := experiments.Config{Scale: scale, Workers: nw, Progress: prog, Ctx: ctx}
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			start := time.Now()
			for it := 0; it < iters; it++ {
				pass.run(cfg)
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&m1)
			if err := ctx.Err(); err != nil {
				return err
			}

			nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
			bytesPerOp := prog.Bytes() / uint64(iters)
			rec := benchDistRecord{
				Name:        pass.name,
				Scale:       scale,
				Workers:     nw,
				Iterations:  iters,
				NsPerOp:     nsPerOp,
				MBPerS:      float64(bytesPerOp) / (nsPerOp / 1e9) / 1e6,
				AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(iters),
				BytesPerOp:  bytesPerOp,
			}
			if nw == 1 {
				oneWorkerNs = nsPerOp
			}
			if oneWorkerNs > 0 {
				rec.Speedup = oneWorkerNs / nsPerOp
			}
			records = append(records, rec)
			fmt.Fprintf(os.Stderr, "[benchdist %s w=%d: %.0f ms/op, %.1f MB/s, %.0f allocs/op, speedup %.2fx]\n",
				pass.name, nw, nsPerOp/1e6, rec.MBPerS, rec.AllocsPerOp, rec.Speedup)
		}
	}

	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
