// Command splicesim runs the packet-splice simulation (§3.2 of the
// paper) over a synthetic site profile or a real directory tree and
// prints the Tables 1–3-style classification.
//
// Usage:
//
//	splicesim -profile sics.se:/opt [-alg tcp|f255|f256]
//	          [-placement header|trailer] [-compress] [-nocrc]
//	          [-segment 256] [-scale 1.0]
//	splicesim -dir /some/path
//	splicesim -profiles           # list known profiles
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"realsum/internal/corpus"
	"realsum/internal/report"
	"realsum/internal/sim"
	"realsum/internal/tcpip"
)

func main() {
	profile := flag.String("profile", "", "synthetic site profile name (see -profiles)")
	dir := flag.String("dir", "", "scan a real directory instead of a profile")
	alg := flag.String("alg", "tcp", "checksum algorithm: tcp, f255, f256")
	placement := flag.String("placement", "header", "checksum placement: header, trailer")
	compress := flag.Bool("compress", false, "LZW-compress every file first (Table 7)")
	nocrc := flag.Bool("nocrc", false, "skip the AAL5 CRC check (faster)")
	noinvert := flag.Bool("noinvert", false, "store the raw sum instead of its complement (§6.3)")
	zeroip := flag.Bool("zeroip", false, "reproduce the §6.2 zeroed-IP-header artifact")
	segment := flag.Int("segment", sim.DefaultSegmentSize, "TCP payload bytes per packet")
	scale := flag.Float64("scale", 1.0, "profile scale factor")
	workers := flag.Int("workers", 0, "parallel workers (default GOMAXPROCS)")
	worst := flag.Int("worst", 0, "report the N files with the most checksum misses (§5.5)")
	listProfiles := flag.Bool("profiles", false, "list known profiles and exit")
	flag.Parse()

	if *listProfiles {
		for _, p := range corpus.AllProfiles() {
			fmt.Println(p.Name)
		}
		return
	}

	opt := sim.Options{
		SegmentSize: *segment,
		CheckCRC:    !*nocrc,
		Compress:    *compress,
		Workers:     *workers,
		TrackWorst:  *worst,
	}
	builderAlg, ok := tcpip.AlgByName(*alg)
	if !ok {
		fatal("unknown -alg %q", *alg)
	}
	opt.Build.Alg = builderAlg
	switch *placement {
	case "header":
	case "trailer":
		opt.Build.Placement = tcpip.PlacementTrailer
	default:
		fatal("unknown -placement %q", *placement)
	}
	opt.Build.NoInvert = *noinvert
	opt.Build.ZeroIPHeader = *zeroip

	var w corpus.Walker
	var name string
	switch {
	case *dir != "":
		w, name = corpus.DirWalker(*dir), *dir
	case *profile != "":
		p, ok := corpus.ByName(*profile)
		if !ok {
			fatal("unknown profile %q (try -profiles)", *profile)
		}
		w, name = p.Scale(*scale).Build(), p.Name
	default:
		fatal("one of -profile or -dir is required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := sim.Run(ctx, w, name, opt)
	if err != nil {
		fatal("simulation failed: %v", err)
	}
	fmt.Print(report.SpliceTable([]sim.Result{res}, opt.Build.Alg.String()))
	fmt.Printf("\n(%d files, %s packets, %s bytes, checksum=%v placement=%v compress=%v)\n",
		res.Files, report.Count(res.Packets), report.Count(res.Bytes),
		opt.Build.Alg, opt.Build.Placement, *compress)
	if len(res.WorstFiles) > 0 {
		fmt.Printf("\nworst files by checksum misses:\n")
		for _, f := range res.WorstFiles {
			fmt.Printf("  %8d missed / %8d remaining  %s\n", f.Missed, f.Remaining, f.Path)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "splicesim: "+format+"\n", args...)
	os.Exit(2)
}
