// Command mkcorpus materializes a synthetic file system onto disk so
// the generated corpora can be inspected or fed to external tools.
//
// Usage:
//
//	mkcorpus -profile smeg.stanford.edu:/u1 -out /tmp/u1 [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"realsum/internal/corpus"
)

func main() {
	profile := flag.String("profile", "", "synthetic site profile name")
	out := flag.String("out", "", "output directory")
	scale := flag.Float64("scale", 1.0, "profile scale factor")
	listProfiles := flag.Bool("profiles", false, "list known profiles and exit")
	flag.Parse()

	if *listProfiles {
		for _, p := range corpus.AllProfiles() {
			fmt.Println(p.Name)
		}
		return
	}
	if *profile == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "mkcorpus: -profile and -out are required")
		os.Exit(2)
	}
	p, ok := corpus.ByName(*profile)
	if !ok {
		fmt.Fprintf(os.Stderr, "mkcorpus: unknown profile %q (try -profiles)\n", *profile)
		os.Exit(2)
	}
	fs := p.Scale(*scale).Build()
	var files int
	var bytes int64
	err := fs.Walk(func(path string, data []byte) error {
		full := filepath.Join(*out, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(full, data, 0o644); err != nil {
			return err
		}
		files++
		bytes += int64(len(data))
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkcorpus: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d files (%d bytes) under %s\n", files, bytes, *out)
}
