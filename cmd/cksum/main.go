// Command cksum computes the study's checksums and CRCs over files or
// standard input — a cksum(1) built on the library, and a quick way to
// see the algorithms disagree about the same bytes.
//
// Usage:
//
//	cksum [-a tcp|f255|f256|adler32|crc32|crc32c|crc10|crc16|crc16-ccitt|crc8|crc64|all] [file ...]
//
// With no files, reads standard input.  With -a all (the default),
// prints every algorithm for each input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"realsum/internal/adler"
	"realsum/internal/crc"
	"realsum/internal/fletcher"
	"realsum/internal/inet"
)

// algo is one selectable algorithm.
type algo struct {
	name string
	bits int
	sum  func(data []byte) uint64
}

func algorithms() []algo {
	mk := func(p crc.Params, name string) algo {
		t := crc.New(p)
		return algo{name: name, bits: int(p.Width), sum: t.Checksum}
	}
	return []algo{
		{"tcp", 16, func(d []byte) uint64 { return uint64(inet.Checksum(d)) }},
		{"f255", 16, func(d []byte) uint64 { return uint64(fletcher.Mod255.Sum(d).Checksum16()) }},
		{"f256", 16, func(d []byte) uint64 { return uint64(fletcher.Mod256.Sum(d).Checksum16()) }},
		{"adler32", 32, func(d []byte) uint64 { return uint64(adler.Checksum(d)) }},
		mk(crc.CRC32, "crc32"),
		mk(crc.CRC32C, "crc32c"),
		mk(crc.CRC10, "crc10"),
		mk(crc.CRC16, "crc16"),
		mk(crc.CRC16CCITT, "crc16-ccitt"),
		mk(crc.CRC8, "crc8"),
		mk(crc.CRC64, "crc64"),
	}
}

func main() {
	algName := flag.String("a", "all", "algorithm (or \"all\")")
	flag.Parse()

	var selected []algo
	for _, a := range algorithms() {
		if *algName == "all" || a.name == *algName {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "cksum: unknown algorithm %q\n", *algName)
		os.Exit(2)
	}

	emit := func(name string, data []byte) {
		for _, a := range selected {
			width := (a.bits + 3) / 4
			fmt.Printf("%-12s %0*x  %8d  %s\n", a.name, width, a.sum(data), len(data), name)
		}
	}

	if flag.NArg() == 0 {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cksum: stdin: %v\n", err)
			os.Exit(1)
		}
		emit("-", data)
		return
	}
	exit := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cksum: %v\n", err)
			exit = 1
			continue
		}
		emit(path, data)
	}
	os.Exit(exit)
}
