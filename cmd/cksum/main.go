// Command cksum computes the study's checksums and CRCs over files or
// standard input — a cksum(1) built on the library, and a quick way to
// see the algorithms disagree about the same bytes.
//
// Usage:
//
//	cksum [-a <name>|all] [-kernel nguyen] [file ...]
//
// The algorithm set comes from the internal/algo registry; run with
// -a list to see the names.  With no files, reads standard input.
// With -a all (the default), prints every algorithm for each input.
// -kernel pins the CRC bulk engine (slicing8, scalar, chorba, nguyen,
// or auto) instead of the default verified per-algorithm race.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"realsum/internal/algo"
)

func main() {
	algName := flag.String("a", "all", "algorithm name, \"all\", or \"list\"")
	kernel := flag.String("kernel", "", "force a CRC bulk kernel (slicing8, scalar, chorba, nguyen, or auto; default: verified per-algorithm racing)")
	flag.Parse()

	if *kernel != "" {
		if err := algo.SetCRCKernel(*kernel); err != nil {
			fmt.Fprintf(os.Stderr, "cksum: %v\n", err)
			os.Exit(2)
		}
	}

	if *algName == "list" {
		fmt.Println(strings.Join(algo.Names(), "\n"))
		return
	}
	var selected []algo.Algorithm
	if *algName == "all" {
		selected = algo.All()
	} else if a, ok := algo.Lookup(*algName); ok {
		selected = []algo.Algorithm{a}
	} else {
		fmt.Fprintf(os.Stderr, "cksum: unknown algorithm %q (known: %s)\n",
			*algName, strings.Join(algo.Names(), ", "))
		os.Exit(2)
	}

	emit := func(name string, r io.Reader) error {
		// One streaming pass: every selected digest sees the same bytes
		// without the file ever being held in memory.
		digests := make([]algo.Digest, len(selected))
		writers := make([]io.Writer, len(selected))
		for i, a := range selected {
			digests[i] = a.New()
			writers[i] = digests[i]
		}
		n, err := io.Copy(io.MultiWriter(writers...), r)
		if err != nil {
			return err
		}
		for i, a := range selected {
			width := (a.Width() + 3) / 4
			fmt.Printf("%-12s %0*x  %8d  %s\n", a.Name(), width, digests[i].Sum64(), n, name)
		}
		return nil
	}

	if flag.NArg() == 0 {
		if err := emit("-", os.Stdin); err != nil {
			fmt.Fprintf(os.Stderr, "cksum: stdin: %v\n", err)
			os.Exit(1)
		}
		return
	}
	exit := 0
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cksum: %v\n", err)
			exit = 1
			continue
		}
		err = emit(path, f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cksum: %s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}
